// Command oicd serves the objinline compiler over HTTP: POST /v1/compile,
// /v1/explain, and /v1/run against a content-addressed result cache with
// singleflight deduplication, a bounded worker pool with load shedding,
// and per-request deadlines enforced through the compiler and VM. See
// docs/SERVER.md for the API.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"objinline/internal/server"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr, nil))
}

// run is main in testable form: it serves until ctx is canceled, then
// drains gracefully. When ready is non-nil it receives the bound address
// once the listener is accepting (so tests can use ":0").
func run(ctx context.Context, args []string, stdout, stderr io.Writer, ready chan<- string) int {
	fs := flag.NewFlagSet("oicd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:8372", "listen address")
	pool := fs.Int("pool", 0, "concurrent compile/run workers (0 = GOMAXPROCS)")
	queue := fs.Int("queue", 0, "requests queued beyond the pool before shedding with 429 (0 = 4x pool)")
	cacheEntries := fs.Int("cache-entries", 0, "result-cache LRU bound (0 = 256)")
	deadline := fs.Duration("deadline", 0, "default per-request deadline (0 = 10s)")
	maxDeadline := fs.Duration("max-deadline", 0, "cap on requested deadlines (0 = 60s)")
	maxSource := fs.Int("max-source-bytes", 0, "largest accepted source, in bytes (0 = 1 MiB)")
	analysisJobs := fs.Int("analysis-jobs", 0, "per-request parallel-solver worker cap (0 = GOMAXPROCS)")
	nativeCacheEntries := fs.Int("native-cache-entries", 0, "native-run result-cache LRU bound (0 = 64)")
	sessionEntries := fs.Int("session-entries", 0, "live incremental-session LRU bound (0 = 64)")
	sessionTTL := fs.Duration("session-ttl", 0, "idle incremental sessions expire after this long (0 = 15m)")
	grace := fs.Duration("grace", 10*time.Second, "shutdown drain budget for in-flight requests")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "oicd: unexpected argument %q\n", fs.Arg(0))
		return 2
	}

	srv := server.New(server.Config{
		PoolSize:           *pool,
		QueueDepth:         *queue,
		CacheEntries:       *cacheEntries,
		DefaultDeadline:    *deadline,
		MaxDeadline:        *maxDeadline,
		MaxSourceBytes:     *maxSource,
		AnalysisJobs:       *analysisJobs,
		NativeCacheEntries: *nativeCacheEntries,
		SessionEntries:     *sessionEntries,
		SessionTTL:         *sessionTTL,
	})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "oicd: %v\n", err)
		return 1
	}
	hs := &http.Server{Handler: srv}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	fmt.Fprintf(stdout, "oicd: listening on http://%s\n", ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	select {
	case err := <-serveErr:
		fmt.Fprintf(stderr, "oicd: %v\n", err)
		return 1
	case <-ctx.Done():
	}
	// Graceful shutdown: stop accepting, then wait out in-flight requests
	// (each holds its handler goroutine, so Shutdown returns only once
	// they finish) up to the grace budget.
	fmt.Fprintln(stdout, "oicd: shutting down, draining in-flight requests")
	sctx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		fmt.Fprintf(stderr, "oicd: drain incomplete: %v\n", err)
		hs.Close()
		srv.Close()
		return 1
	}
	// Drained: release the pinned incremental sessions before exiting.
	srv.Close()
	fmt.Fprintln(stdout, "oicd: bye")
	return 0
}
