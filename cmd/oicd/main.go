// Command oicd serves the objinline compiler over HTTP: POST /v1/compile,
// /v1/explain, and /v1/run against a content-addressed result cache with
// singleflight deduplication, a bounded worker pool with load shedding,
// and per-request deadlines enforced through the compiler and VM. See
// docs/SERVER.md for the API and docs/OBSERVABILITY.md for operating it:
// structured access logs (-log-format, -log-level), request tracing
// behind /debug/requests, Prometheus metrics at
// /metrics?format=prometheus, and pprof on a separate -debug-addr
// listener so profiles never ship on the serving port.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"objinline/internal/cluster"
	"objinline/internal/server"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr, nil))
}

// run is main in testable form: it serves until ctx is canceled, then
// drains gracefully. When ready is non-nil it receives the bound address
// once the listener is accepting (so tests can use ":0").
func run(ctx context.Context, args []string, stdout, stderr io.Writer, ready chan<- string) int {
	fs := flag.NewFlagSet("oicd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:8372", "listen address")
	pool := fs.Int("pool", 0, "concurrent compile/run workers (0 = GOMAXPROCS)")
	queue := fs.Int("queue", 0, "requests queued beyond the pool before shedding with 429 (0 = 4x pool)")
	cacheEntries := fs.Int("cache-entries", 0, "result-cache LRU bound (0 = 256)")
	deadline := fs.Duration("deadline", 0, "default per-request deadline (0 = 10s)")
	maxDeadline := fs.Duration("max-deadline", 0, "cap on requested deadlines (0 = 60s)")
	maxSource := fs.Int("max-source-bytes", 0, "largest accepted source, in bytes (0 = 1 MiB)")
	analysisJobs := fs.Int("analysis-jobs", 0, "per-request parallel-solver worker cap (0 = GOMAXPROCS)")
	nativeCacheEntries := fs.Int("native-cache-entries", 0, "native-run result-cache LRU bound (0 = 64)")
	sessionEntries := fs.Int("session-entries", 0, "live incremental-session LRU bound (0 = 64)")
	sessionTTL := fs.Duration("session-ttl", 0, "idle incremental sessions expire after this long (0 = 15m)")
	grace := fs.Duration("grace", 10*time.Second, "shutdown drain budget for in-flight requests")
	requestRing := fs.Int("request-ring", 0, "per-request trace ring behind /debug/requests (0 = 128, negative disables)")
	logFormat := fs.String("log-format", "text", "access/operational log format: text or json")
	logLevel := fs.String("log-level", "info", "log level: debug, info, warn, or error (access logs emit at info)")
	debugAddr := fs.String("debug-addr", "", "listen address for the debug surface (pprof + /debug/requests); empty disables it")
	peers := fs.String("peers", "", "comma-separated base URLs of every cluster instance (this one included); empty runs standalone")
	self := fs.String("self", "", "this instance's base URL as peers reach it (defaults to http://<addr>)")
	cacheDir := fs.String("cache-dir", "", "directory for the persistent cache tier (WAL + snapshot); empty disables it")
	probeInterval := fs.Duration("probe-interval", time.Second, "cluster peer health-probe interval")
	noHedge := fs.Bool("no-hedge", false, "disable hedged reads on cluster forwards")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "oicd: unexpected argument %q\n", fs.Arg(0))
		return 2
	}
	logger, err := newLogger(stderr, *logFormat, *logLevel)
	if err != nil {
		fmt.Fprintf(stderr, "oicd: %v\n", err)
		return 2
	}

	// Listen before building the server: with -peers and no -self the
	// instance's own URL is derived from the bound address (":0" included).
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "oicd: %v\n", err)
		return 1
	}

	// Persistent cache tier: open (and replay) before the server seeds
	// from it; closed last, after the final compaction in srv.Close.
	var store *cluster.Store
	if *cacheDir != "" {
		store, err = cluster.OpenStore(*cacheDir, cluster.StoreOptions{Logger: logger})
		if err != nil {
			fmt.Fprintf(stderr, "oicd: cache dir: %v\n", err)
			ln.Close()
			return 1
		}
		defer store.Close()
	}

	// Cluster membership: static peer list, probed for health. Self must
	// be a URL the peers can reach; the bound address is only a usable
	// default when -addr names a reachable interface.
	var cl *cluster.Cluster
	if *peers != "" {
		selfURL := *self
		if selfURL == "" {
			selfURL = "http://" + ln.Addr().String()
		}
		cl = cluster.New(cluster.Config{
			Self:          selfURL,
			Peers:         cluster.ParsePeers(*peers),
			ProbeInterval: *probeInterval,
			Logger:        logger,
		})
		cl.Start()
		defer cl.Close()
	}

	srv := server.New(server.Config{
		PoolSize:           *pool,
		QueueDepth:         *queue,
		CacheEntries:       *cacheEntries,
		DefaultDeadline:    *deadline,
		MaxDeadline:        *maxDeadline,
		MaxSourceBytes:     *maxSource,
		AnalysisJobs:       *analysisJobs,
		NativeCacheEntries: *nativeCacheEntries,
		SessionEntries:     *sessionEntries,
		SessionTTL:         *sessionTTL,
		RequestRingEntries: *requestRing,
		AccessLog:          logger,
		Cluster:            cl,
		Disk:               store,
		DisableHedge:       *noHedge,
	})
	hs := &http.Server{Handler: srv}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	fmt.Fprintf(stdout, "oicd: listening on http://%s\n", ln.Addr())

	// The debug surface (pprof, request introspection) binds its own
	// listener so profiles and traces never ship on the serving port —
	// operators firewall or port-forward it separately.
	var dhs *http.Server
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fmt.Fprintf(stderr, "oicd: debug listener: %v\n", err)
			hs.Close()
			return 1
		}
		dhs = &http.Server{Handler: srv.DebugHandler()}
		go func() {
			if err := dhs.Serve(dln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug listener failed", "err", err)
			}
		}()
		fmt.Fprintf(stdout, "oicd: debug surface on http://%s\n", dln.Addr())
	}
	if ready != nil {
		ready <- ln.Addr().String()
	}

	select {
	case err := <-serveErr:
		fmt.Fprintf(stderr, "oicd: %v\n", err)
		return 1
	case <-ctx.Done():
	}
	// Graceful shutdown: flip /healthz to 503 first so load-balancer
	// probes over kept-alive connections stop routing here, then stop
	// accepting and wait out in-flight requests (each holds its handler
	// goroutine, so Shutdown returns only once they finish) up to the
	// grace budget.
	srv.BeginDrain()
	fmt.Fprintln(stdout, "oicd: shutting down, draining in-flight requests")
	sctx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if dhs != nil {
		dhs.Close()
	}
	if err := hs.Shutdown(sctx); err != nil {
		fmt.Fprintf(stderr, "oicd: drain incomplete: %v\n", err)
		hs.Close()
		srv.Close()
		return 1
	}
	// Drained: release the pinned incremental sessions before exiting.
	srv.Close()
	fmt.Fprintln(stdout, "oicd: bye")
	return 0
}

// newLogger builds the process logger from the -log-format and -log-level
// flags. Logs go to stderr: stdout stays a clean line protocol (listen
// addresses, lifecycle messages) for supervisors and tests.
func newLogger(w io.Writer, format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("invalid -log-level %q (want debug, info, warn, or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("invalid -log-format %q (want text or json)", format)
	}
}
