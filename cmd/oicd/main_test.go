package main

// End-to-end daemon test: boot on an ephemeral port, serve a compile,
// then shut down gracefully on context cancellation (the SIGTERM path)
// with exit code 0.

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestDaemonServesAndDrains(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var stdout, stderr bytes.Buffer
	ready := make(chan string, 1)
	exited := make(chan int, 1)
	go func() {
		exited <- run(ctx, []string{"-addr", "127.0.0.1:0"}, &stdout, &stderr, ready)
	}()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case code := <-exited:
		t.Fatalf("daemon exited early with %d: %s", code, stderr.String())
	case <-time.After(5 * time.Second):
		t.Fatal("daemon never became ready")
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}

	body, _ := json.Marshal(map[string]any{"source": "func main() { print(41 + 1); }"})
	resp, err = http.Post(base+"/v1/compile", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	envBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compile: status %d: %s", resp.StatusCode, envBody)
	}
	var env struct {
		Mode     string `json:"mode"`
		CodeSize int    `json:"code_size"`
	}
	if err := json.Unmarshal(envBody, &env); err != nil || env.Mode != "inline" || env.CodeSize == 0 {
		t.Errorf("compile envelope = %s", envBody)
	}

	cancel() // the SIGTERM path
	select {
	case code := <-exited:
		if code != 0 {
			t.Fatalf("exit code %d, want 0; stderr: %s", code, stderr.String())
		}
	case <-time.After(5 * time.Second):
		t.Fatal("daemon did not shut down")
	}
	if !strings.Contains(stdout.String(), "draining") {
		t.Errorf("no drain message on stdout: %q", stdout.String())
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Error("daemon still accepting connections after shutdown")
	}
}

func TestDaemonFlagErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(context.Background(), []string{"-bogus"}, &stdout, &stderr, nil); code != 2 {
		t.Errorf("bad flag: exit %d, want 2", code)
	}
	if code := run(context.Background(), []string{"extra"}, &stdout, &stderr, nil); code != 2 {
		t.Errorf("stray arg: exit %d, want 2", code)
	}
}
