package main

// End-to-end daemon test: boot on an ephemeral port, serve a compile,
// then shut down gracefully on context cancellation (the SIGTERM path)
// with exit code 0.

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestDaemonServesAndDrains(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var stdout, stderr bytes.Buffer
	ready := make(chan string, 1)
	exited := make(chan int, 1)
	go func() {
		exited <- run(ctx, []string{"-addr", "127.0.0.1:0"}, &stdout, &stderr, ready)
	}()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case code := <-exited:
		t.Fatalf("daemon exited early with %d: %s", code, stderr.String())
	case <-time.After(5 * time.Second):
		t.Fatal("daemon never became ready")
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}

	body, _ := json.Marshal(map[string]any{"source": "func main() { print(41 + 1); }"})
	resp, err = http.Post(base+"/v1/compile", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	envBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compile: status %d: %s", resp.StatusCode, envBody)
	}
	var env struct {
		Mode     string `json:"mode"`
		CodeSize int    `json:"code_size"`
	}
	if err := json.Unmarshal(envBody, &env); err != nil || env.Mode != "inline" || env.CodeSize == 0 {
		t.Errorf("compile envelope = %s", envBody)
	}

	cancel() // the SIGTERM path
	select {
	case code := <-exited:
		if code != 0 {
			t.Fatalf("exit code %d, want 0; stderr: %s", code, stderr.String())
		}
	case <-time.After(5 * time.Second):
		t.Fatal("daemon did not shut down")
	}
	if !strings.Contains(stdout.String(), "draining") {
		t.Errorf("no drain message on stdout: %q", stdout.String())
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Error("daemon still accepting connections after shutdown")
	}
}

func TestDaemonFlagErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(context.Background(), []string{"-bogus"}, &stdout, &stderr, nil); code != 2 {
		t.Errorf("bad flag: exit %d, want 2", code)
	}
	if code := run(context.Background(), []string{"extra"}, &stdout, &stderr, nil); code != 2 {
		t.Errorf("stray arg: exit %d, want 2", code)
	}
	if code := run(context.Background(), []string{"-log-format", "xml"}, &stdout, &stderr, nil); code != 2 {
		t.Errorf("bad log format: exit %d, want 2", code)
	}
	if code := run(context.Background(), []string{"-log-level", "loud"}, &stdout, &stderr, nil); code != 2 {
		t.Errorf("bad log level: exit %d, want 2", code)
	}
}

// TestDaemonDebugSurface boots with -debug-addr and checks the debug
// listener serves pprof and request introspection while the serving port
// does not expose pprof, and that JSON access logs land on stderr with
// the request id the response carried.
func TestDaemonDebugSurface(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var stdout, stderr bytes.Buffer
	ready := make(chan string, 1)
	exited := make(chan int, 1)
	go func() {
		exited <- run(ctx, []string{
			"-addr", "127.0.0.1:0", "-debug-addr", "127.0.0.1:0",
			"-log-format", "json",
		}, &stdout, &stderr, ready)
	}()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case code := <-exited:
		t.Fatalf("daemon exited early with %d: %s", code, stderr.String())
	case <-time.After(5 * time.Second):
		t.Fatal("daemon never became ready")
	}
	// The debug address is announced on stdout before ready is signaled.
	var debugBase string
	for _, line := range strings.Split(stdout.String(), "\n") {
		if rest, ok := strings.CutPrefix(line, "oicd: debug surface on "); ok {
			debugBase = rest
		}
	}
	if debugBase == "" {
		t.Fatalf("no debug surface announcement on stdout: %q", stdout.String())
	}

	body, _ := json.Marshal(map[string]any{"source": "func main() { print(1); }"})
	resp, err := http.Post(base+"/v1/compile", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	reqID := resp.Header.Get("X-Oicd-Request-Id")
	if reqID == "" {
		t.Fatal("compile response missing X-Oicd-Request-Id")
	}

	for path, wantType := range map[string]string{
		"/debug/pprof/cmdline": "", // pprof responds 200
		"/debug/requests":      "application/json",
	} {
		resp, err := http.Get(debugBase + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
		if wantType != "" && !strings.HasPrefix(resp.Header.Get("Content-Type"), wantType) {
			t.Errorf("GET %s: content-type %q, want %q", path, resp.Header.Get("Content-Type"), wantType)
		}
	}
	// pprof must not be reachable on the serving port.
	resp, err = http.Get(base + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Error("pprof exposed on the serving port")
	}

	cancel()
	select {
	case code := <-exited:
		if code != 0 {
			t.Fatalf("exit code %d, want 0; stderr: %s", code, stderr.String())
		}
	case <-time.After(5 * time.Second):
		t.Fatal("daemon did not shut down")
	}

	// The access log is JSON on stderr; find the compile record and check
	// its request id matches the response header.
	var logged bool
	for _, line := range strings.Split(stderr.String(), "\n") {
		if line == "" {
			continue
		}
		var rec struct {
			Msg       string `json:"msg"`
			RequestID string `json:"request_id"`
			Route     string `json:"route"`
			Status    int    `json:"status"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			continue
		}
		if rec.Msg == "request" && rec.Route == "/v1/compile" {
			logged = true
			if rec.RequestID != reqID {
				t.Errorf("access log request_id = %q, response header = %q", rec.RequestID, reqID)
			}
			if rec.Status != http.StatusOK {
				t.Errorf("access log status = %d, want 200", rec.Status)
			}
		}
	}
	if !logged {
		t.Errorf("no access-log record for /v1/compile on stderr: %q", stderr.String())
	}
}

// startDaemon boots one daemon with args and returns its base URL plus
// the channels to stop it and await its exit code.
func startDaemon(t *testing.T, args []string) (base string, stop context.CancelFunc, exited chan int, stderr *bytes.Buffer) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	var out bytes.Buffer
	errBuf := &bytes.Buffer{}
	ready := make(chan string, 1)
	exited = make(chan int, 1)
	go func() {
		exited <- run(ctx, args, &out, errBuf, ready)
	}()
	select {
	case addr := <-ready:
		base = "http://" + addr
	case code := <-exited:
		cancel()
		t.Fatalf("daemon exited early with %d: %s", code, errBuf.String())
	case <-time.After(5 * time.Second):
		cancel()
		t.Fatal("daemon never became ready")
	}
	return base, cancel, exited, errBuf
}

func stopDaemon(t *testing.T, stop context.CancelFunc, exited chan int, stderr *bytes.Buffer) {
	t.Helper()
	stop()
	select {
	case code := <-exited:
		if code != 0 {
			t.Fatalf("daemon exit code %d, want 0; stderr: %s", code, stderr.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down")
	}
}

func compileVia(t *testing.T, base, source string) (*http.Response, []byte) {
	t.Helper()
	body, _ := json.Marshal(map[string]any{"source": source})
	resp, err := http.Post(base+"/v1/compile", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	got, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, got
}

// TestDaemonCacheDirWarmRestart restarts a disk-backed daemon and
// expects the second boot to answer the same compile as a warm,
// byte-identical cache hit without recompiling.
func TestDaemonCacheDirWarmRestart(t *testing.T) {
	dir := t.TempDir()
	const source = "func main() { print(6 * 7); }"
	args := []string{"-addr", "127.0.0.1:0", "-cache-dir", dir}

	base, stop, exited, stderr := startDaemon(t, args)
	resp, cold := compileVia(t, base, source)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold compile: status %d: %s", resp.StatusCode, cold)
	}
	if got := resp.Header.Get("X-Oicd-Cache"); got != "miss" {
		t.Fatalf("cold compile X-Oicd-Cache = %q, want miss", got)
	}
	stopDaemon(t, stop, exited, stderr)

	base2, stop2, exited2, stderr2 := startDaemon(t, args)
	resp2, warm := compileVia(t, base2, source)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("warm compile: status %d: %s", resp2.StatusCode, warm)
	}
	if got := resp2.Header.Get("X-Oicd-Cache"); got != "hit" {
		t.Errorf("restarted daemon X-Oicd-Cache = %q, want hit (warm from disk)", got)
	}
	if string(warm) != string(cold) {
		t.Errorf("warm body differs from cold body:\n%s\nvs\n%s", warm, cold)
	}
	stopDaemon(t, stop2, exited2, stderr2)
}

// TestDaemonClusterForwarding boots two daemons that peer with each
// other and checks a compile through either front lands on one owner:
// the second front's read is a byte-identical forwarded cache hit.
func TestDaemonClusterForwarding(t *testing.T) {
	// Reserve two ports so each daemon can name the other before boot.
	addrs := make([]string, 2)
	for i := range addrs {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = l.Addr().String()
		l.Close()
	}
	peers := "http://" + addrs[0] + ",http://" + addrs[1]

	const source = "func main() { print(1000 - 7); }"
	type daemon struct {
		base   string
		stop   context.CancelFunc
		exited chan int
		stderr *bytes.Buffer
	}
	var ds []daemon
	for _, addr := range addrs {
		base, stop, exited, stderr := startDaemon(t, []string{"-addr", addr, "-peers", peers})
		ds = append(ds, daemon{base, stop, exited, stderr})
	}
	defer func() {
		for _, d := range ds {
			stopDaemon(t, d.stop, d.exited, d.stderr)
		}
	}()

	respA, bodyA := compileVia(t, ds[0].base, source)
	if respA.StatusCode != http.StatusOK {
		t.Fatalf("compile via A: status %d: %s", respA.StatusCode, bodyA)
	}
	owner := respA.Header.Get("X-Oicd-Owner")
	if owner == "" {
		t.Fatal("compile via A: missing X-Oicd-Owner")
	}
	respB, bodyB := compileVia(t, ds[1].base, source)
	if respB.StatusCode != http.StatusOK {
		t.Fatalf("compile via B: status %d: %s", respB.StatusCode, bodyB)
	}
	if got := respB.Header.Get("X-Oicd-Cache"); got != "hit" {
		t.Errorf("compile via B X-Oicd-Cache = %q, want hit (same owner)", got)
	}
	if got := respB.Header.Get("X-Oicd-Owner"); got != owner {
		t.Errorf("owner disagreement: A says %q, B says %q", owner, got)
	}
	if string(bodyB) != string(bodyA) {
		t.Errorf("fronts returned different bytes:\n%s\nvs\n%s", bodyB, bodyA)
	}
}
