// Command oic is the object-inlining compiler driver: it compiles and runs
// Mini-ICC programs under the direct, baseline, or inlining pipeline and
// can dump the IR, the analysis state, and the inlining decision.
//
// Usage:
//
//	oic [flags] program.icc
//
// Flags:
//
//	-mode direct|baseline|inline   pipeline (default inline)
//	-parallel                      use the parallel inlined-array layout
//	-dump ir|analysis|report       print internals instead of metrics
//	-metrics                       print dynamic metrics after the run
//	-norun                         compile only
package main

import (
	"flag"
	"fmt"
	"os"

	"objinline"
)

func main() {
	mode := flag.String("mode", "inline", "pipeline: direct, baseline, or inline")
	parallel := flag.Bool("parallel", false, "use the parallel inlined-array layout")
	dump := flag.String("dump", "", "dump internals: ir, analysis, or report")
	metrics := flag.Bool("metrics", false, "print dynamic metrics after the run")
	noRun := flag.Bool("norun", false, "compile only; do not execute")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: oic [flags] program.icc")
		flag.Usage()
		os.Exit(2)
	}
	file := flag.Arg(0)
	src, err := os.ReadFile(file)
	if err != nil {
		fatal(err)
	}

	cfg := objinline.Config{ParallelArrays: *parallel}
	switch *mode {
	case "direct":
		cfg.Mode = objinline.Direct
	case "baseline":
		cfg.Mode = objinline.Baseline
	case "inline":
		cfg.Mode = objinline.Inline
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}

	prog, err := objinline.Compile(file, string(src), cfg)
	if err != nil {
		fatal(err)
	}

	switch *dump {
	case "ir":
		fmt.Print(prog.IR())
		return
	case "analysis":
		fmt.Print(prog.AnalysisReport())
		return
	case "report":
		fmt.Print(prog.Report())
		return
	case "":
	default:
		fatal(fmt.Errorf("unknown dump kind %q", *dump))
	}

	if *noRun {
		fmt.Fprintf(os.Stderr, "compiled %s: %d instructions\n", file, prog.CodeSize())
		return
	}
	m, err := prog.Run(objinline.RunOptions{Output: os.Stdout})
	if err != nil {
		fatal(err)
	}
	if *metrics {
		fmt.Fprintf(os.Stderr, "cycles: %d\n", m.Cycles)
		fmt.Fprintf(os.Stderr, "instructions: %d\n", m.Instructions)
		fmt.Fprintf(os.Stderr, "dereferences: %d (dynamic lookups %d)\n", m.Dereferences, m.DynFieldLookups)
		fmt.Fprintf(os.Stderr, "dispatches: %d, static calls: %d\n", m.Dispatches, m.StaticCalls)
		fmt.Fprintf(os.Stderr, "heap objects: %d, stack temporaries: %d, arrays: %d (%d bytes)\n",
			m.HeapObjects, m.StackObjects, m.Arrays, m.BytesAllocated)
		fmt.Fprintf(os.Stderr, "cache: %d hits, %d misses\n", m.CacheHits, m.CacheMisses)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "oic:", err)
	os.Exit(1)
}
