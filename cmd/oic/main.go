// Command oic is the object-inlining compiler driver: it compiles and runs
// Mini-ICC programs under the direct, baseline, or inlining pipeline and
// can dump the IR, the analysis state, the inlining decision, per-phase
// timings, and the provenance of a single field's verdict.
//
// Usage:
//
//	oic [flags] program.icc
//
// Flags:
//
//	-mode direct|baseline|inline   pipeline (default inline)
//	-parallel                      use the parallel inlined-array layout
//	-dump ir|analysis|report       print internals instead of metrics
//	-explain Class.field           explain one field's inlining decision
//	-trace                         record and print per-phase compile times
//	-json                          emit explain/metrics/stats as JSON
//	-metrics                       print dynamic metrics after the run
//	-norun                         compile only
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"objinline"
	"objinline/internal/trace"
)

// envelope is the -json output: only the sections the flags requested are
// present.
type envelope struct {
	File     string                  `json:"file"`
	Mode     string                  `json:"mode"`
	CodeSize int                     `json:"code_size"`
	Inlined  []string                `json:"inlined,omitempty"`
	Explain  *objinline.Decision     `json:"explain,omitempty"`
	Stats    *objinline.CompileStats `json:"stats,omitempty"`
	Metrics  *objinline.Metrics      `json:"metrics,omitempty"`
}

func main() {
	modeName := flag.String("mode", "inline", "pipeline: direct, baseline, or inline")
	parallel := flag.Bool("parallel", false, "use the parallel inlined-array layout")
	dump := flag.String("dump", "", "dump internals: ir, analysis, or report")
	explain := flag.String("explain", "", "explain one field's inlining decision (e.g. Rectangle.lower_left)")
	doTrace := flag.Bool("trace", false, "record per-phase compile (and run) times")
	asJSON := flag.Bool("json", false, "emit explain/metrics/stats as JSON on stdout")
	metrics := flag.Bool("metrics", false, "print dynamic metrics after the run")
	noRun := flag.Bool("norun", false, "compile only; do not execute")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: oic [flags] program.icc")
		flag.Usage()
		os.Exit(2)
	}
	file := flag.Arg(0)
	src, err := os.ReadFile(file)
	if err != nil {
		fatal(err)
	}

	mode, err := objinline.ParseMode(*modeName)
	if err != nil {
		fatal(err)
	}
	cfg := objinline.Config{Mode: mode, ParallelArrays: *parallel}
	var opts []objinline.Option
	if *doTrace {
		opts = append(opts, objinline.WithTracing())
	}

	prog, err := objinline.Compile(file, string(src), cfg, opts...)
	if err != nil {
		fatal(err)
	}

	switch *dump {
	case "ir":
		fmt.Print(prog.IR())
		return
	case "analysis":
		fmt.Print(prog.AnalysisReport())
		return
	case "report":
		fmt.Print(prog.Report())
		return
	case "":
	default:
		fatal(fmt.Errorf("unknown dump kind %q", *dump))
	}

	env := envelope{File: file, Mode: prog.Mode().String(), CodeSize: prog.CodeSize()}
	if *asJSON {
		env.Inlined = prog.InlinedFields()
	}

	if *explain != "" {
		d, err := prog.Explain(*explain)
		if err != nil {
			fatal(err)
		}
		if *asJSON {
			env.Explain = &d
		} else {
			printExplain(d)
		}
	}

	// A program being explained is being inspected, not executed;
	// everything else runs unless -norun.
	run := !*noRun && *explain == ""
	if run {
		// Under -json, stdout must be exactly the envelope; the program's
		// own output moves to stderr.
		out := io.Writer(os.Stdout)
		if *asJSON {
			out = os.Stderr
		}
		m, err := prog.Run(objinline.RunOptions{Output: out})
		if err != nil {
			fatal(err)
		}
		if *asJSON {
			env.Metrics = &m
		} else if *metrics {
			printMetrics(m)
		}
	} else if !*asJSON && *explain == "" {
		fmt.Fprintf(os.Stderr, "compiled %s: %d instructions\n", file, prog.CodeSize())
	}

	if *doTrace {
		st := prog.CompileStats()
		if *asJSON {
			env.Stats = &st
		} else {
			trace.WriteTable(os.Stderr, st.Phases)
		}
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(env); err != nil {
			fatal(err)
		}
	}
}

func printExplain(d objinline.Decision) {
	fmt.Printf("%s: %s", d.Field, d.Verdict)
	if d.Code != "" && d.Verdict != objinline.VerdictInlined {
		fmt.Printf(" [%s]", d.Code)
	}
	fmt.Println()
	if d.Reason != "" {
		fmt.Printf("  reason: %s\n", d.Reason)
	}
	for _, s := range d.Evidence {
		fmt.Printf("  - %s", s.What)
		if s.Where != "" {
			fmt.Printf(" @ %s", s.Where)
		}
		if s.Detail != "" {
			fmt.Printf(": %s", s.Detail)
		}
		fmt.Println()
	}
}

func printMetrics(m objinline.Metrics) {
	fmt.Fprintf(os.Stderr, "cycles: %d\n", m.Cycles)
	fmt.Fprintf(os.Stderr, "instructions: %d\n", m.Instructions)
	fmt.Fprintf(os.Stderr, "dereferences: %d (dynamic lookups %d)\n", m.Dereferences, m.DynFieldLookups)
	fmt.Fprintf(os.Stderr, "dispatches: %d, static calls: %d\n", m.Dispatches, m.StaticCalls)
	fmt.Fprintf(os.Stderr, "heap objects: %d, stack temporaries: %d, arrays: %d (%d bytes)\n",
		m.HeapObjects, m.StackObjects, m.Arrays, m.BytesAllocated)
	fmt.Fprintf(os.Stderr, "cache: %d hits, %d misses\n", m.CacheHits, m.CacheMisses)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "oic:", err)
	os.Exit(1)
}
