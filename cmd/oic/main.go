// Command oic is the object-inlining compiler driver: it compiles and runs
// Mini-ICC programs under the direct, baseline, or inlining pipeline and
// can dump the IR, the analysis state, the inlining decision, per-phase
// timings, a run's allocation-site profile, and the provenance of a single
// field's verdict.
//
// Usage:
//
//	oic [flags] program.icc
//	oic [flags] -              # read the program from stdin
//	oic [flags] bench:richards # compile a bundled benchmark program
//
// Flags:
//
//	-mode direct|baseline|inline   pipeline (default inline)
//	-engine vm|native              execution tier (default vm): native
//	                               emits the optimized IR as a Go
//	                               package, builds it, and runs the
//	                               binary, reporting real wall time and
//	                               allocator deltas instead of modeled
//	                               cycles
//	-reps N                        native engine: run the program body N
//	                               times in one process (printing muted
//	                               after the first) for stable timing
//	-emit-dir DIR                  native engine: keep the emitted Go
//	                               package and binary in DIR for
//	                               inspection
//	-timeout 5s                    abort compilation or execution after
//	                               this long (default: no limit); the
//	                               deadline is enforced inside the
//	                               analysis solvers and the VM step loop
//	-parallel                      use the parallel inlined-array layout
//	-solver worklist|sweep|parallel
//	                               contour-analysis fixpoint engine
//	                               (default worklist); all three produce
//	                               byte-identical results
//	-jobs N                        worker count for -solver parallel
//	                               (default GOMAXPROCS; ignored by the
//	                               sequential solvers)
//	-dump ir|analysis|report       print internals instead of metrics
//	-explain Class.field           explain one field's inlining decision
//	-trace                         record and print per-phase compile times
//	-trace-out trace.json          write the phases as a Chrome trace-event
//	                               file (implies -trace); load it in
//	                               Perfetto (ui.perfetto.dev) or
//	                               chrome://tracing. Written on every exit
//	                               path, compile errors included.
//	-profile                       attribute the run's allocations and
//	                               cache misses to allocation sites and
//	                               Class.field paths
//	-json                          emit explain/metrics/stats/profile as JSON
//	-metrics                       print dynamic metrics after the run
//	-norun                         compile only
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"objinline"
	"objinline/internal/server/api"
	"objinline/internal/trace"
)

// The -json output is the service's api.Envelope, shared by construction
// with oicd's endpoints so the two surfaces cannot drift apart; only the
// sections the flags requested are present.

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// run is the driver behind main, factored so tests can invoke the CLI
// in-process with captured streams and so every exit path — compile
// errors included — flows through the trace-file flush instead of
// bypassing it via os.Exit.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) (code int) {
	fs := flag.NewFlagSet("oic", flag.ContinueOnError)
	fs.SetOutput(stderr)
	modeName := fs.String("mode", "inline", "pipeline: direct, baseline, or inline")
	engineName := fs.String("engine", "", "execution engine: vm (default) or native")
	reps := fs.Int("reps", 0, "native engine: repetitions inside one process (0 = 1)")
	emitDir := fs.String("emit-dir", "", "native engine: keep the emitted Go package here")
	timeout := fs.Duration("timeout", 0, "abort compilation or execution after this long (0 = no limit)")
	parallel := fs.Bool("parallel", false, "use the parallel inlined-array layout")
	solver := fs.String("solver", "", "analysis solver: worklist, sweep, or parallel (default worklist)")
	jobs := fs.Int("jobs", 0, "worker count for -solver parallel (0 = GOMAXPROCS)")
	dump := fs.String("dump", "", "dump internals: ir, analysis, or report")
	explain := fs.String("explain", "", "explain one field's inlining decision (e.g. Rectangle.lower_left)")
	doTrace := fs.Bool("trace", false, "record per-phase compile (and run) times")
	traceOut := fs.String("trace-out", "", "write phases as a Chrome trace-event file (implies -trace)")
	profile := fs.Bool("profile", false, "attribute the run to allocation sites and field paths")
	asJSON := fs.Bool("json", false, "emit explain/metrics/stats/profile as JSON on stdout")
	metrics := fs.Bool("metrics", false, "print dynamic metrics after the run")
	noRun := fs.Bool("norun", false, "compile only; do not execute")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: oic [flags] program.icc   (use - to read from stdin)")
		fs.Usage()
		return 2
	}
	file := fs.Arg(0)

	fail := func(err error) int {
		fmt.Fprintln(stderr, "oic:", err)
		return 1
	}

	// The trace sink is owned here, not by the Program, so whatever phases
	// completed are exported even when a later stage fails. The deferred
	// flush writes the Chrome trace (or removes a stale file) on every
	// return past this point.
	var sink *objinline.TraceSink
	var opts []objinline.Option
	if *doTrace || *traceOut != "" {
		sink = &objinline.TraceSink{}
		opts = append(opts, objinline.WithTraceSink(sink))
	}
	if *traceOut != "" {
		defer func() {
			if err := writeTraceFile(*traceOut, sink); err != nil {
				fmt.Fprintln(stderr, "oic:", err)
				if code == 0 {
					code = 1
				}
			}
		}()
	}

	var src []byte
	var err error
	if file == "-" {
		// The conventional stdin name: pipe a program straight in
		// (`generate | oic -json -`). The label matches what the
		// diagnostics and source positions will say.
		file = "<stdin>"
		src, err = io.ReadAll(stdin)
	} else if name, ok := strings.CutPrefix(file, "bench:"); ok {
		// A bundled benchmark by name ("bench:richards"); the label keeps
		// the scheme so diagnostics say where the source came from.
		var text string
		text, err = objinline.BenchmarkSource(name, false)
		src = []byte(text)
	} else {
		src, err = os.ReadFile(file)
	}
	if err != nil {
		return fail(err)
	}

	mode, err := objinline.ParseMode(*modeName)
	if err != nil {
		return fail(err)
	}
	engine, err := objinline.ParseEngine(*engineName)
	if err != nil {
		return fail(err)
	}
	if engine == objinline.EngineNative && *profile {
		return fail(fmt.Errorf("-profile requires the vm engine: site attribution is VM instrumentation"))
	}
	switch *solver {
	case "", objinline.SolverWorklist, objinline.SolverSweep, objinline.SolverParallel:
	default:
		return fail(fmt.Errorf("unknown solver %q (want worklist, sweep, or parallel)", *solver))
	}
	cfg := objinline.Config{Mode: mode, ParallelArrays: *parallel, Solver: *solver, Jobs: *jobs}

	// The -timeout budget is one end-to-end deadline across compilation
	// and execution, enforced inside the analysis solvers and the VM step
	// loop — a pathological program cannot blow past it in either place.
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	deadlined := func(err error) int {
		return fail(fmt.Errorf("exceeded the -timeout budget of %v: %w", *timeout, err))
	}

	prog, err := objinline.CompileContext(ctx, file, string(src), cfg, opts...)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			return deadlined(err)
		}
		return fail(err)
	}

	switch *dump {
	case "ir":
		fmt.Fprint(stdout, prog.IR())
		return 0
	case "analysis":
		fmt.Fprint(stdout, prog.AnalysisReport())
		return 0
	case "report":
		fmt.Fprint(stdout, prog.Report())
		return 0
	case "":
	default:
		return fail(fmt.Errorf("unknown dump kind %q", *dump))
	}

	env := api.Envelope{File: file, Mode: prog.Mode().String(), CodeSize: prog.CodeSize()}
	if *asJSON {
		env.Inlined = prog.InlinedFields()
		env.Rejected = prog.RejectedFields()
	}

	if *explain != "" {
		d, err := prog.Explain(*explain)
		if err != nil {
			return fail(err)
		}
		if *asJSON {
			env.Explain = &d
		} else {
			printExplain(stdout, d)
		}
	}

	// A program being explained is being inspected, not executed;
	// everything else runs unless -norun.
	doRun := !*noRun && *explain == ""
	if doRun {
		// Under -json, stdout must be exactly the envelope; the program's
		// own output moves to stderr.
		out := stdout
		if *asJSON {
			out = stderr
		}
		res, err := prog.Execute(ctx, objinline.RunOptions{
			Output:     out,
			Profile:    *profile,
			Engine:     engine,
			NativeReps: *reps,
			EmitDir:    *emitDir,
		})
		if err != nil {
			if errors.Is(err, context.DeadlineExceeded) {
				return deadlined(err)
			}
			return fail(err)
		}
		if *asJSON {
			env.Engine = res.Engine.String()
			env.Metrics = res.Metrics
			env.Native = res.Native
			env.Profile = prog.Profile()
		} else {
			if *metrics && res.Metrics != nil {
				printMetrics(stderr, *res.Metrics)
			}
			if *metrics && res.Native != nil {
				printNativeMetrics(stderr, res.Native)
			}
			if *profile {
				printProfile(stderr, prog.Profile())
			}
		}
	} else if !*asJSON && *explain == "" {
		fmt.Fprintf(stderr, "compiled %s: %d instructions\n", file, prog.CodeSize())
	}

	// The envelope always carries the compile stats under -json: the
	// analysis work counters (solver effort) are recorded unconditionally,
	// and phase timings join them when -trace is on.
	if *asJSON {
		st := prog.CompileStats()
		env.Stats = &st
	} else if *doTrace {
		st := prog.CompileStats()
		trace.WriteTable(stderr, st.Phases)
	}

	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(env); err != nil {
			return fail(err)
		}
	}
	return 0
}

// writeTraceFile serializes the sink's events as a Chrome trace. With no
// events recorded (tracing requested but nothing ran — bad flags, say) a
// stale file from an earlier invocation is removed rather than left lying
// around to mislead.
func writeTraceFile(path string, sink *objinline.TraceSink) error {
	events := sink.Events()
	if len(events) == 0 {
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("trace-out: %w", err)
		}
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace-out: %w", err)
	}
	werr := objinline.WriteChromeTrace(f, events)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("trace-out: %w", werr)
	}
	return nil
}

func printExplain(w io.Writer, d objinline.Decision) {
	fmt.Fprintf(w, "%s: %s", d.Field, d.Verdict)
	if d.Code != "" && d.Verdict != objinline.VerdictInlined {
		fmt.Fprintf(w, " [%s]", d.Code)
	}
	fmt.Fprintln(w)
	if d.Reason != "" {
		fmt.Fprintf(w, "  reason: %s\n", d.Reason)
	}
	for _, s := range d.Evidence {
		fmt.Fprintf(w, "  - %s", s.What)
		if s.Where != "" {
			fmt.Fprintf(w, " @ %s", s.Where)
		}
		if s.Detail != "" {
			fmt.Fprintf(w, ": %s", s.Detail)
		}
		fmt.Fprintln(w)
	}
}

func printMetrics(w io.Writer, m objinline.Metrics) {
	fmt.Fprintf(w, "cycles: %d\n", m.Cycles)
	fmt.Fprintf(w, "instructions: %d\n", m.Instructions)
	fmt.Fprintf(w, "dereferences: %d (dynamic lookups %d)\n", m.Dereferences, m.DynFieldLookups)
	fmt.Fprintf(w, "dispatches: %d, static calls: %d\n", m.Dispatches, m.StaticCalls)
	fmt.Fprintf(w, "heap objects: %d, stack temporaries: %d, arrays: %d (%d bytes)\n",
		m.HeapObjects, m.StackObjects, m.Arrays, m.BytesAllocated)
	fmt.Fprintf(w, "cache: %d hits, %d misses\n", m.CacheHits, m.CacheMisses)
}

func printNativeMetrics(w io.Writer, n *objinline.NativeMetrics) {
	fmt.Fprintf(w, "native wall time: %v over %d reps (build %v)\n",
		time.Duration(n.WallNanos), n.Reps, time.Duration(n.BuildNanos))
	fmt.Fprintf(w, "native allocations: %d (%d bytes)\n", n.Mallocs, n.AllocBytes)
}

func printProfile(w io.Writer, p *objinline.RunProfile) {
	if p == nil {
		return
	}
	fmt.Fprintf(w, "heap peak: %d bytes; dispatch: %d header reads, %d misses\n",
		p.HeapPeakBytes, p.DispatchAccesses, p.DispatchMisses)
	fmt.Fprintf(w, "%-24s %-12s %8s %8s %10s %10s %8s\n",
		"site", "class", "allocs", "stack", "bytes", "accesses", "misses")
	for _, s := range p.Sites {
		name := s.Class
		if s.Array {
			name = "[array]"
			if s.Class != "" {
				name = "[]" + s.Class
			}
		}
		fmt.Fprintf(w, "%-24s %-12s %8d %8d %10d %10d %8d\n",
			s.Pos, name, s.Allocs, s.StackAllocs, s.Bytes, s.Accesses, s.Misses)
	}
	fmt.Fprintf(w, "%-24s %8s %8s %8s\n", "field path", "reads", "writes", "misses")
	for _, f := range p.Fields {
		fmt.Fprintf(w, "%-24s %8d %8d %8d\n", f.Class+"."+f.Field, f.Reads, f.Writes, f.Misses)
	}
}
