package main

// End-to-end tests for the oic driver, invoking run() in-process with
// captured streams. The -json envelope is a golden contract: compile →
// run → exact envelope bytes on stdout with the program's own output on
// stderr. The trace-out tests pin the every-exit-path flush, compile
// errors included.

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

const fixture = "../../testdata/explain.icc"

// TestJSONEnvelopeGolden pins the full -json contract: stdout carries
// exactly the envelope (byte-for-byte, it is deterministic without
// -trace), stderr carries the program's print output.
func TestJSONEnvelopeGolden(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-json", fixture}, strings.NewReader(""), &stdout, &stderr); code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, stderr.String())
	}
	want, err := os.ReadFile("testdata/json_envelope.golden")
	if err != nil {
		t.Fatal(err)
	}
	if stdout.String() != string(want) {
		t.Errorf("envelope drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", stdout.String(), want)
	}
	if got := stderr.String(); got != "21\ntrue\n" {
		t.Errorf("program output on stderr = %q, want %q", got, "21\ntrue\n")
	}
}

// TestJSONEnvelopeWithProfile checks -profile surfaces the run profile in
// the envelope with reconcilable numbers.
func TestJSONEnvelopeWithProfile(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-json", "-profile", fixture}, strings.NewReader(""), &stdout, &stderr); code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, stderr.String())
	}
	var env struct {
		Metrics struct {
			HeapObjects    uint64 `json:"heap_objects"`
			Arrays         uint64 `json:"arrays"`
			BytesAllocated uint64 `json:"bytes_allocated"`
		} `json:"metrics"`
		Profile struct {
			Sites []struct {
				Allocs uint64 `json:"allocs"`
			} `json:"sites"`
			HeapPeakBytes uint64 `json:"heap_peak_bytes"`
		} `json:"profile"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &env); err != nil {
		t.Fatalf("envelope is not valid JSON: %v", err)
	}
	if len(env.Profile.Sites) == 0 {
		t.Fatal("-profile produced no sites in the envelope")
	}
	var allocs uint64
	for _, s := range env.Profile.Sites {
		allocs += s.Allocs
	}
	if want := env.Metrics.HeapObjects + env.Metrics.Arrays; allocs != want {
		t.Errorf("profile site allocs %d != metrics allocations %d", allocs, want)
	}
	if env.Profile.HeapPeakBytes != env.Metrics.BytesAllocated {
		t.Errorf("heap peak %d != bytes allocated %d", env.Profile.HeapPeakBytes, env.Metrics.BytesAllocated)
	}
}

// TestTraceOutWritesChromeTrace checks a successful compile+run writes a
// Perfetto-loadable trace file with compile and run spans.
func TestTraceOutWritesChromeTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-trace-out", path, fixture}, strings.NewReader(""), &stdout, &stderr); code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, stderr.String())
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	names := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		names[ev.Name] = true
	}
	for _, want := range []string{"parse", "analysis", "run"} {
		if !names[want] {
			t.Errorf("trace missing %q span", want)
		}
	}
}

// TestTraceOutFlushedOnCompileError pins the bug fix: a compile error must
// still write the trace file with the phases that completed.
func TestTraceOutFlushedOnCompileError(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.icc")
	if err := os.WriteFile(bad, []byte("func main() { return undefined_name; }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "trace.json")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-trace-out", path, bad}, strings.NewReader(""), &stdout, &stderr); code != 1 {
		t.Fatalf("exit code %d, want 1; stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "oic:") {
		t.Errorf("no error reported on stderr: %q", stderr.String())
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("compile error did not flush the trace file: %v", err)
	}
	if !strings.Contains(string(raw), `"parse"`) {
		t.Errorf("flushed trace has no parse span: %s", raw)
	}
}

// TestTraceOutRemovesStaleFileWhenNothingRan checks the other side of the
// flush contract: when tracing was requested but no phase ever ran (the
// source file is unreadable), a stale trace file from an earlier
// invocation is removed instead of being left behind to mislead.
func TestTraceOutRemovesStaleFileWhenNothingRan(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.json")
	if err := os.WriteFile(path, []byte(`{"stale":true}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-trace-out", path, filepath.Join(dir, "missing.icc")}, strings.NewReader(""), &stdout, &stderr); code != 1 {
		t.Fatalf("exit code %d, want 1", code)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("stale trace file was not removed (err=%v)", err)
	}
}

// TestStdinProgram checks `oic -` compiles the program from stdin,
// labeling diagnostics and output with "<stdin>".
func TestStdinProgram(t *testing.T) {
	var stdout, stderr bytes.Buffer
	stdin := strings.NewReader("func main() { print(6 * 7); }")
	if code := run([]string{"-json", "-"}, stdin, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, stderr.String())
	}
	var env struct {
		File string `json:"file"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &env); err != nil {
		t.Fatalf("envelope is not valid JSON: %v", err)
	}
	if env.File != "<stdin>" {
		t.Errorf("file = %q, want %q", env.File, "<stdin>")
	}
	if got := stderr.String(); got != "42\n" {
		t.Errorf("program output = %q, want %q", got, "42\n")
	}
}

// TestStdinErrorNamesStdin checks a bad stdin program's diagnostic points
// at <stdin>, not a file.
func TestStdinErrorNamesStdin(t *testing.T) {
	var stdout, stderr bytes.Buffer
	stdin := strings.NewReader("func main() { return undefined_name; }")
	if code := run([]string{"-"}, stdin, &stdout, &stderr); code != 1 {
		t.Fatalf("exit code %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "<stdin>") {
		t.Errorf("diagnostic does not name <stdin>: %q", stderr.String())
	}
}

// TestTimeoutCancelsRunawayProgram checks -timeout aborts an infinite
// loop promptly with a diagnostic that names the budget.
func TestTimeoutCancelsRunawayProgram(t *testing.T) {
	var stdout, stderr bytes.Buffer
	stdin := strings.NewReader("func main() { var i = 0; while (true) { i = i + 1; } }")
	start := time.Now()
	code := run([]string{"-timeout", "50ms", "-"}, stdin, &stdout, &stderr)
	elapsed := time.Since(start)
	if code != 1 {
		t.Fatalf("exit code %d, want 1; stderr: %s", code, stderr.String())
	}
	if elapsed > time.Second {
		t.Errorf("timeout took %v to fire", elapsed)
	}
	if !strings.Contains(stderr.String(), "-timeout budget of 50ms") {
		t.Errorf("diagnostic does not name the budget: %q", stderr.String())
	}
}

// TestExplainStillWorks guards the inspection path through the refactored
// driver.
func TestExplainStillWorks(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-explain", "Rect.p", fixture}, strings.NewReader(""), &stdout, &stderr); code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "Rect.p: inlined") {
		t.Errorf("explain output: %q", stdout.String())
	}
}

// TestBenchSourceScheme checks "bench:NAME" compiles a bundled benchmark
// and keeps the scheme as the diagnostic label.
func TestBenchSourceScheme(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-norun", "-json", "bench:richards"}, strings.NewReader(""), &stdout, &stderr); code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, stderr.String())
	}
	var env struct {
		File     string `json:"file"`
		CodeSize int    `json:"code_size"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &env); err != nil {
		t.Fatalf("envelope is not valid JSON: %v", err)
	}
	if env.File != "bench:richards" || env.CodeSize == 0 {
		t.Errorf("envelope = %+v", env)
	}
	// An unknown benchmark fails with its name in the diagnostic.
	stderr.Reset()
	if code := run([]string{"-norun", "bench:nosuch"}, strings.NewReader(""), &stdout, &stderr); code != 1 {
		t.Fatalf("exit code %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "nosuch") {
		t.Errorf("diagnostic does not name the benchmark: %q", stderr.String())
	}
}

// TestNativeEngineFlag runs a program on the native tier and checks the
// envelope reports the engine and its real measurements in place of the
// VM's modeled metrics.
func TestNativeEngineFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a native binary")
	}
	var stdout, stderr bytes.Buffer
	stdin := strings.NewReader("func main() { print(6 * 7); }")
	if code := run([]string{"-json", "-engine", "native", "-reps", "2", "-"}, stdin, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, stderr.String())
	}
	var env struct {
		Engine  string `json:"engine"`
		Metrics any    `json:"metrics"`
		Native  struct {
			WallNanos  int64 `json:"wall_nanos"`
			BuildNanos int64 `json:"build_nanos"`
			Reps       int   `json:"reps"`
		} `json:"native"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &env); err != nil {
		t.Fatalf("envelope is not valid JSON: %v", err)
	}
	if env.Engine != "native" || env.Metrics != nil {
		t.Errorf("engine = %q, metrics = %v; want native with no VM metrics", env.Engine, env.Metrics)
	}
	if env.Native.Reps != 2 || env.Native.WallNanos <= 0 || env.Native.BuildNanos <= 0 {
		t.Errorf("implausible native measurements: %+v", env.Native)
	}
	if got := stderr.String(); got != "42\n" {
		t.Errorf("program output = %q, want %q (reps must not multiply it)", got, "42\n")
	}
}

// TestNativeEngineRejectsProfile pins the fail-fast path: -profile is VM
// instrumentation.
func TestNativeEngineRejectsProfile(t *testing.T) {
	var stdout, stderr bytes.Buffer
	stdin := strings.NewReader("func main() { print(1); }")
	if code := run([]string{"-engine", "native", "-profile", "-"}, stdin, &stdout, &stderr); code != 1 {
		t.Fatalf("exit code %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "vm engine") {
		t.Errorf("diagnostic = %q", stderr.String())
	}
}
