// Command objbench regenerates the paper's evaluation: every table and
// figure of §6 plus the ablations documented in DESIGN.md.
//
// Usage:
//
//	objbench [-fig 14|15|16|17|A1|A2|A3|all] [-scale small|medium|default] [-json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"objinline/internal/bench"
)

func main() {
	fig := flag.String("fig", "all", "which figure to regenerate: 14, 15, 16, 17, A1, A2, A3, or all")
	scaleName := flag.String("scale", "default", "workload scale: small, medium, or default")
	asJSON := flag.Bool("json", false, "emit machine-readable JSON instead of tables")
	flag.Parse()

	var scale bench.Scale
	switch *scaleName {
	case "small":
		scale = bench.ScaleSmall
	case "medium":
		scale = bench.ScaleMedium
	case "default":
		scale = bench.ScaleDefault
	default:
		fatal(fmt.Errorf("unknown scale %q", *scaleName))
	}

	run := func(name string) bool { return *fig == "all" || *fig == name }
	ranAny := false

	if *asJSON {
		out := map[string]any{}
		collect := func(name string, rows any, err error) {
			if err != nil {
				fatal(err)
			}
			out["fig"+name] = rows
			ranAny = true
		}
		if run("14") {
			rows, err := bench.Fig14(scale)
			collect("14", rows, err)
		}
		if run("15") {
			rows, err := bench.Fig15(scale)
			collect("15", rows, err)
		}
		if run("16") {
			rows, err := bench.Fig16(scale)
			collect("16", rows, err)
		}
		if run("17") {
			rows, err := bench.Fig17(scale)
			collect("17", rows, err)
		}
		if run("A1") {
			rows, err := bench.AblationLayout(scale)
			collect("A1", rows, err)
		}
		if run("A2") {
			rows, err := bench.AblationCostModel(scale)
			collect("A2", rows, err)
		}
		if run("A3") {
			rows, err := bench.AblationTagDepth(scale)
			collect("A3", rows, err)
		}
		if !ranAny {
			fatal(fmt.Errorf("unknown figure %q", *fig))
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}
		return
	}

	if run("14") {
		ranAny = true
		rows, err := bench.Fig14(scale)
		if err != nil {
			fatal(err)
		}
		bench.PrintFig14(os.Stdout, rows)
		fmt.Println()
	}
	if run("15") {
		ranAny = true
		rows, err := bench.Fig15(scale)
		if err != nil {
			fatal(err)
		}
		bench.PrintFig15(os.Stdout, rows)
		fmt.Println()
	}
	if run("16") {
		ranAny = true
		rows, err := bench.Fig16(scale)
		if err != nil {
			fatal(err)
		}
		bench.PrintFig16(os.Stdout, rows)
		fmt.Println()
	}
	if run("17") {
		ranAny = true
		rows, err := bench.Fig17(scale)
		if err != nil {
			fatal(err)
		}
		bench.PrintFig17(os.Stdout, rows)
		fmt.Println()
	}
	if run("A1") {
		ranAny = true
		rows, err := bench.AblationLayout(scale)
		if err != nil {
			fatal(err)
		}
		fmt.Println("Ablation A1: inlined-array layout (OOPACK)")
		for _, r := range rows {
			fmt.Printf("  %-13s cycles=%d cache misses=%d\n", r.Layout, r.Cycles, r.CacheMisses)
		}
		fmt.Println()
	}
	if run("A2") {
		ranAny = true
		rows, err := bench.AblationCostModel(scale)
		if err != nil {
			fatal(err)
		}
		bench.PrintAblationCost(os.Stdout, rows)
		fmt.Println()
	}
	if run("A3") {
		ranAny = true
		rows, err := bench.AblationTagDepth(scale)
		if err != nil {
			fatal(err)
		}
		fmt.Println("Ablation A3: tag-depth cap vs fields inlined")
		for _, r := range rows {
			fmt.Printf("  %-14s depth=%d inlined=%d\n", r.Program, r.Depth, r.Inlined)
		}
		fmt.Println()
	}
	if !ranAny {
		fatal(fmt.Errorf("unknown figure %q", *fig))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "objbench:", err)
	os.Exit(1)
}
