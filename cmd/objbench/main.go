// Command objbench regenerates the paper's evaluation: every table and
// figure of §6 plus the ablations documented in DESIGN.md.
//
// Figures are computed concurrently on a shared measurement engine
// (internal/bench) that memoizes compilations and executions, so -fig all
// builds each configuration exactly once; tables are printed in figure
// order from submission-ordered rows, making the output byte-identical at
// any -jobs setting.
//
// Usage:
//
//	objbench [-fig 14|15|16|17|A1|A2|A3|analysis|phases|serve|payoff|incremental|calibration|cluster|all] [-scale small|medium|default]
//	         [-jobs N] [-json] [-stats] [-cpuprofile f] [-memprofile f]
//
// The extra "analysis" figure benchmarks the analysis phase itself
// (worklist vs sweep solver; see DESIGN.md), and "phases" breaks every
// compilation down by pipeline phase using the trace sink. Both are
// timing-sensitive, so -fig all skips them: request them explicitly
// (`make bench-analysis` emits the former as BENCH_analysis.json).
// "payoff" joins profiled inlining-on/off runs into a per-field table of
// measured savings (`make payoff` emits it as BENCH_payoff.json).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"

	"objinline/internal/bench"
	"objinline/internal/bench/clusterbench"
	"objinline/internal/bench/serve"
)

// figure is one regenerable table: its -fig name, how to compute its rows
// on the engine, and how to render them as text.
type figure struct {
	name    string
	compute func(*bench.Engine, bench.Scale) (any, error)
	print   func(io.Writer, any)
	// explicitOnly excludes the figure from -fig all (wall-clock
	// benchmarks whose numbers are only meaningful run alone).
	explicitOnly bool
}

// figures lists every figure in the paper's reporting order (the order
// tables are printed, whatever order they finish computing in).
var figures = []figure{
	{
		name:    "14",
		compute: func(e *bench.Engine, s bench.Scale) (any, error) { return e.Fig14(s) },
		print:   func(w io.Writer, rows any) { bench.PrintFig14(w, rows.([]bench.Fig14Row)) },
	},
	{
		name:    "15",
		compute: func(e *bench.Engine, s bench.Scale) (any, error) { return e.Fig15(s) },
		print:   func(w io.Writer, rows any) { bench.PrintFig15(w, rows.([]bench.Fig15Row)) },
	},
	{
		name:    "16",
		compute: func(e *bench.Engine, s bench.Scale) (any, error) { return e.Fig16(s) },
		print:   func(w io.Writer, rows any) { bench.PrintFig16(w, rows.([]bench.Fig16Row)) },
	},
	{
		name:    "17",
		compute: func(e *bench.Engine, s bench.Scale) (any, error) { return e.Fig17(s) },
		print:   func(w io.Writer, rows any) { bench.PrintFig17(w, rows.([]bench.Fig17Row)) },
	},
	{
		name:    "A1",
		compute: func(e *bench.Engine, s bench.Scale) (any, error) { return e.AblationLayout(s) },
		print: func(w io.Writer, rows any) {
			fmt.Fprintln(w, "Ablation A1: inlined-array layout (OOPACK)")
			for _, r := range rows.([]bench.AblationLayoutRow) {
				fmt.Fprintf(w, "  %-13s cycles=%d cache misses=%d\n", r.Layout, r.Cycles, r.CacheMisses)
			}
		},
	},
	{
		name:    "A2",
		compute: func(e *bench.Engine, s bench.Scale) (any, error) { return e.AblationCostModel(s) },
		print:   func(w io.Writer, rows any) { bench.PrintAblationCost(w, rows.([]bench.AblationCostRow)) },
	},
	{
		name:    "A3",
		compute: func(e *bench.Engine, s bench.Scale) (any, error) { return e.AblationTagDepth(s) },
		print: func(w io.Writer, rows any) {
			fmt.Fprintln(w, "Ablation A3: tag-depth cap vs fields inlined")
			for _, r := range rows.([]bench.AblationTagDepthRow) {
				fmt.Fprintf(w, "  %-14s depth=%d inlined=%d\n", r.Program, r.Depth, r.Inlined)
			}
		},
	},
	{
		name:         "analysis",
		compute:      func(e *bench.Engine, s bench.Scale) (any, error) { return e.AnalysisBench(s) },
		print:        func(w io.Writer, rows any) { bench.PrintAnalysisBench(w, rows.([]bench.AnalysisBenchRow)) },
		explicitOnly: true,
	},
	{
		name:         "phases",
		compute:      func(e *bench.Engine, s bench.Scale) (any, error) { return e.Phases(s) },
		print:        func(w io.Writer, rows any) { bench.PrintPhases(w, rows.([]bench.PhaseRow)) },
		explicitOnly: true,
	},
	{
		// The oicd service benchmark: cold vs warm compile throughput at
		// fixed concurrency against an in-process server. Wall-clock, so
		// explicit-only like "analysis" and "phases".
		name: "serve",
		compute: func(e *bench.Engine, s bench.Scale) (any, error) {
			return serve.Run(serve.Options{Scale: s, Concurrency: 8})
		},
		print:        func(w io.Writer, rows any) { serve.Print(w, rows.(*serve.Result)) },
		explicitOnly: true,
	},
	{
		// The incremental-recompilation benchmark: cold pipeline vs a
		// session absorbing payload edits, with byte-identity checked
		// before any timing is reported. Wall-clock, so explicit-only
		// (`make bench-incremental` emits BENCH_incremental.json).
		name: "incremental",
		compute: func(e *bench.Engine, s bench.Scale) (any, error) {
			return e.IncrementalBench(s)
		},
		print:        func(w io.Writer, rows any) { bench.PrintIncremental(w, rows.([]bench.IncrementalRow)) },
		explicitOnly: true,
	},
	{
		// The cost-model cross-validation: predicted inlining speedups and
		// allocation deltas (VM) vs measured ones (native tier). Builds
		// and times real binaries, so explicit-only like the other
		// wall-clock figures (`make bench-calibration` emits
		// BENCH_calibration.json).
		name: "calibration",
		compute: func(e *bench.Engine, s bench.Scale) (any, error) {
			return e.Calibration(s)
		},
		print:        func(w io.Writer, rows any) { bench.PrintCalibration(w, rows.(*bench.Calibration)) },
		explicitOnly: true,
	},
	{
		// Explicit-only not for timing reasons but because the profiled
		// runs live in their own cache: folding them into -fig all would
		// double every benchmark execution for figures that don't need
		// the attribution.
		name:         "payoff",
		compute:      func(e *bench.Engine, s bench.Scale) (any, error) { return e.PayoffAll(s) },
		print:        func(w io.Writer, rows any) { bench.PrintPayoff(w, rows.([]*bench.ProgramPayoff)) },
		explicitOnly: true,
	},
	{
		// The distributed-oicd benchmark: a real multi-process cluster
		// exercised for cross-instance dedup, byte-identity through every
		// front, SIGKILL failover, and warm-from-disk restart. Builds and
		// boots the oicd binary, so explicit-only (`make bench-cluster`
		// emits BENCH_cluster.json).
		name: "cluster",
		compute: func(e *bench.Engine, s bench.Scale) (any, error) {
			return clusterbench.Run(clusterbench.Options{Scale: s})
		},
		print:        func(w io.Writer, rows any) { clusterbench.Print(w, rows.(*clusterbench.Result)) },
		explicitOnly: true,
	},
}

func main() {
	fig := flag.String("fig", "all", "which figure to regenerate: 14, 15, 16, 17, A1, A2, A3, analysis, phases, serve, payoff, incremental, calibration, cluster, or all")
	scaleName := flag.String("scale", "default", "workload scale: small, medium, or default")
	jobs := flag.Int("jobs", 0, "worker-pool size for the measurement engine (0 = GOMAXPROCS)")
	asJSON := flag.Bool("json", false, "emit machine-readable JSON instead of tables")
	stats := flag.Bool("stats", false, "report engine cache statistics on stderr")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file")
	flag.Parse()

	scale, err := bench.ParseScale(*scaleName)
	if err != nil {
		fatal(err)
	}

	var wanted []figure
	for _, f := range figures {
		if *fig == f.name || (*fig == "all" && !f.explicitOnly) {
			wanted = append(wanted, f)
		}
	}
	if len(wanted) == 0 {
		fatal(fmt.Errorf("unknown figure %q", *fig))
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	engine := bench.NewEngine(*jobs)

	// Compute every requested figure concurrently — the engine bounds the
	// parallelism and deduplicates shared configurations — then print in
	// figure order.
	results, err := bench.Collect(len(wanted), func(i int) (any, error) {
		return wanted[i].compute(engine, scale)
	})
	if err != nil {
		fatal(err)
	}

	if *asJSON {
		out := map[string]any{}
		for i, f := range wanted {
			out["fig"+f.name] = results[i]
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}
	} else {
		for i, f := range wanted {
			f.print(os.Stdout, results[i])
			fmt.Println()
		}
	}

	if *stats {
		s := engine.Stats()
		fmt.Fprintf(os.Stderr, "objbench: jobs=%d compiles=%d (hits %d) runs=%d (hits %d)\n",
			engine.Jobs(), s.Compiles, s.CompileHits, s.Runs, s.RunHits)
	}

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "objbench:", err)
	os.Exit(1)
}
