module objinline

go 1.24
