package objinline_test

// The Engine API contract: Execute selects the tier (per-run option,
// then the compile-time default, then the VM), both tiers agree on
// program output, the deprecated Run wrappers stay VM-only, and the
// engine names round-trip through their wire encoding.

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"objinline"
)

func TestEngineNames(t *testing.T) {
	cases := []struct {
		e    objinline.Engine
		name string
	}{
		{objinline.EngineDefault, "default"},
		{objinline.EngineVM, "vm"},
		{objinline.EngineNative, "native"},
	}
	for _, c := range cases {
		if c.e.String() != c.name {
			t.Errorf("Engine(%d).String() = %q, want %q", c.e, c.e.String(), c.name)
		}
		got, err := objinline.ParseEngine(c.name)
		if err != nil || got != c.e {
			t.Errorf("ParseEngine(%q) = %v, %v; want %v", c.name, got, err, c.e)
		}
	}
	// The empty string is EngineDefault so wire formats can omit the field.
	if got, err := objinline.ParseEngine(""); err != nil || got != objinline.EngineDefault {
		t.Errorf("ParseEngine(\"\") = %v, %v", got, err)
	}
	if _, err := objinline.ParseEngine("jit"); err == nil {
		t.Error("ParseEngine(\"jit\") succeeded")
	}
	// Engine fields are JSON-friendly in both directions.
	data, err := json.Marshal(objinline.EngineNative)
	if err != nil || string(data) != `"native"` {
		t.Errorf("Marshal(EngineNative) = %s, %v", data, err)
	}
	var e objinline.Engine
	if err := json.Unmarshal([]byte(`"vm"`), &e); err != nil || e != objinline.EngineVM {
		t.Errorf("Unmarshal(\"vm\") = %v, %v", e, err)
	}
}

func TestExecuteDefaultsToVM(t *testing.T) {
	p := compileAPI(t, objinline.Inline)
	var out strings.Builder
	res, err := p.Execute(context.Background(), objinline.RunOptions{Output: &out})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if res.Engine != objinline.EngineVM {
		t.Errorf("Engine = %v, want vm", res.Engine)
	}
	if res.Metrics == nil || res.Metrics.Cycles <= 0 {
		t.Errorf("VM result lacks metrics: %+v", res)
	}
	if res.Native != nil {
		t.Errorf("VM result carries native measurements: %+v", res.Native)
	}
	if out.String() != "17\n" {
		t.Errorf("output = %q", out.String())
	}
}

func TestExecuteNative(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a native binary")
	}
	p := compileAPI(t, objinline.Inline)
	var out strings.Builder
	res, err := p.Execute(context.Background(), objinline.RunOptions{
		Output:     &out,
		Engine:     objinline.EngineNative,
		NativeReps: 3,
	})
	if err != nil {
		t.Fatalf("Execute(native): %v", err)
	}
	if res.Engine != objinline.EngineNative {
		t.Errorf("Engine = %v, want native", res.Engine)
	}
	if res.Metrics != nil {
		t.Errorf("native result carries VM metrics: %+v", res.Metrics)
	}
	n := res.Native
	if n == nil {
		t.Fatal("native result lacks measurements")
	}
	if n.Reps != 3 || n.WallNanos <= 0 || n.BuildNanos <= 0 {
		t.Errorf("implausible native measurements: %+v", n)
	}
	// Reps > 1 must not multiply output.
	if out.String() != "17\n" {
		t.Errorf("output = %q, want %q", out.String(), "17\n")
	}
}

func TestExecuteConfigEngineDefault(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a native binary")
	}
	p, err := objinline.Compile("demo.icc", apiDemo,
		objinline.Config{Mode: objinline.Inline, Engine: objinline.EngineNative})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	// EngineDefault in the run options defers to the compile-time default.
	res, err := p.Execute(context.Background(), objinline.RunOptions{})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if res.Engine != objinline.EngineNative || res.Native == nil {
		t.Errorf("compile-time engine default not honored: %+v", res)
	}
	// An explicit per-run engine overrides it.
	res, err = p.Execute(context.Background(), objinline.RunOptions{Engine: objinline.EngineVM})
	if err != nil {
		t.Fatalf("Execute(vm): %v", err)
	}
	if res.Engine != objinline.EngineVM || res.Metrics == nil {
		t.Errorf("per-run engine override not honored: %+v", res)
	}
	// The deprecated wrappers stay VM-only regardless of the default.
	m, err := p.Run(objinline.RunOptions{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if m.Cycles <= 0 {
		t.Errorf("Run returned empty metrics: %+v", m)
	}
}

func TestExecuteNativeRejectsProfile(t *testing.T) {
	p := compileAPI(t, objinline.Inline)
	_, err := p.Execute(context.Background(), objinline.RunOptions{
		Engine:  objinline.EngineNative,
		Profile: true,
	})
	if err == nil || !strings.Contains(err.Error(), "VM engine") {
		t.Errorf("Profile+native error = %v, want a VM-engine complaint", err)
	}
}
