# Tier-1 gate: `make check` is what every PR must keep green (build,
# vet, and the full test suite under the race detector — the engine's
# worker pool makes concurrency a correctness feature, so -race is not
# optional).

GO ?= go

.PHONY: check build test race vet bench figs

check: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x ./...

# Regenerate the full evaluation (figure-sized workloads).
figs:
	$(GO) run ./cmd/objbench -fig all -scale default -stats
