# Tier-1 gate: `make check` is what every PR must keep green (build,
# vet, and the full test suite under the race detector — the engine's
# worker pool makes concurrency a correctness feature, so -race is not
# optional).

GO ?= go

.PHONY: check build test race vet check-json bench bench-analysis bench-incremental bench-calibration bench-serve bench-cluster payoff figs serve

check: build vet race check-json

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Golden JSON schema check: the serialized shapes of Explain decisions,
# CompileStats, and the structured rejection reasons are public contract
# (evidence steps, reason codes, field ordering). Wall times are the one
# nondeterministic field and the tests normalize them.
check-json:
	$(GO) test . -run 'JSON|Golden' -count=1

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x ./...

# Benchmark the analysis phase itself: the Go benchmarks (worklist vs
# sweep solver on every program at both Tags settings), then the
# engine's table of the same comparison with solver work counters,
# saved as BENCH_analysis.json.
bench-analysis:
	$(GO) test ./internal/bench -run '^$$' -bench BenchmarkAnalyze -benchtime 3x
	$(GO) run ./cmd/objbench -fig analysis -json > BENCH_analysis.json
	$(GO) run ./cmd/objbench -fig analysis

# Incremental recompilation: cold pipeline vs a session absorbing payload
# edits (docs/SERVER.md, DESIGN.md §12), with byte-identity checked before
# any timing is reported. Saved as BENCH_incremental.json plus the table.
bench-incremental:
	$(GO) run ./cmd/objbench -fig incremental -json > BENCH_incremental.json
	$(GO) run ./cmd/objbench -fig incremental

# Cost-model cross-validation: the VM's predicted inlining speedups and
# allocation deltas vs the native tier's measured wall-time and
# allocator deltas (EXPERIMENTS.md has the methodology and caveats).
# Saved as BENCH_calibration.json plus the human-readable table.
bench-calibration:
	$(GO) run ./cmd/objbench -fig calibration -json > BENCH_calibration.json
	$(GO) run ./cmd/objbench -fig calibration

# Per-field payoff attribution: profiled inlining-on vs inlining-off runs
# joined against the optimizer's decision (docs/OBSERVABILITY.md), saved
# as BENCH_payoff.json plus the human-readable table.
payoff:
	$(GO) run ./cmd/objbench -fig payoff -json > BENCH_payoff.json
	$(GO) run ./cmd/objbench -fig payoff

# Regenerate the full evaluation (figure-sized workloads).
figs:
	$(GO) run ./cmd/objbench -fig all -scale default -stats

# Run the oicd compile-and-explain service locally (docs/SERVER.md).
serve:
	$(GO) run ./cmd/oicd

# Benchmark the service: cold vs warm compile throughput, latency
# percentiles, cache hit rate, and byte-identity at concurrency 8.
bench-serve:
	$(GO) run ./cmd/objbench -fig serve

# Benchmark the cluster tier: a real 3-process cluster measured for
# cross-instance dedup, per-instance and cluster-wide latency,
# byte-identity through every front, SIGKILL failover, and
# warm-from-disk restart.
bench-cluster:
	$(GO) run ./cmd/objbench -fig cluster -json > BENCH_cluster.json
	$(GO) run ./cmd/objbench -fig cluster
