// Rectangles walks through the paper's running example (Figures 1–5):
// Points and Point3Ds flow into polymorphic Rectangles whose corners are
// read both directly and through unrelated List containers. The example
// prints which fields the optimizer inlined, the rejection reasons for the
// rest, and the analysis report showing the specialized contours of
// Figures 6–9.
package main

import (
	"fmt"
	"log"
	"os"

	"objinline"
)

const src = `
class Point {
  x_pos; y_pos;
  def init(x, y) { self.x_pos = x; self.y_pos = y; }
  def area(p) { return abs(self.x_pos - p.x_pos) * abs(self.y_pos - p.y_pos); }
  def absv() { return sqrt(self.x_pos*self.x_pos + self.y_pos*self.y_pos); }
}
class Point3D : Point {
  z_pos;
  def init(x, y, z) { self.x_pos = x; self.y_pos = y; self.z_pos = z; }
  def absv() { return sqrt(self.x_pos*self.x_pos + self.y_pos*self.y_pos + self.z_pos*self.z_pos); }
}
class Rectangle {
  lower_left; upper_right;
  def init(ll, ur) { self.lower_left = ll; self.upper_right = ur; }
  def area() { return self.lower_left.area(self.upper_right); }
}
class Parallelogram : Rectangle {
  upper_left;
  def init(ll, ur, ul) { self.lower_left = ll; self.upper_right = ur; self.upper_left = ul; }
}
class List {
  data; next;
  def init(d, n) { self.data = d; self.next = n; }
}
func head(l) { return l.data; }
func do_rectangle(ll, ur) {
  var r = new Rectangle(ll, ur);
  print(r.area());
  var l1 = new List(r.lower_left, nil);
  var l2 = new List(r.upper_right, nil);
  print(head(l1).absv());
  print(head(l2).absv());
}
func main() {
  var p1 = new Point(1.0, 2.0);
  var p2 = new Point(3.0, 4.0);
  do_rectangle(p1, p2);
  var p3 = new Point3D(1.0, 2.0, 3.0);
  var p4 = new Point3D(4.0, 5.0, 6.0);
  do_rectangle(p3, p4);
  var para = new Parallelogram(new Point(0.0, 0.0), new Point(2.0, 2.0), new Point(0.0, 2.0));
  print(para.area());
}
`

func main() {
	prog, err := objinline.Compile("rectangles.icc", src, objinline.Config{Mode: objinline.Inline})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== inlining decision ==")
	for _, f := range prog.InlinedFields() {
		fmt.Println("inlined:", f)
	}
	for f, why := range prog.RejectedFields() {
		fmt.Printf("kept as reference: %s (%s)\n", f, why)
	}

	fmt.Println("\n== program output (identical to the uninlined run) ==")
	if _, err := prog.Run(objinline.RunOptions{Output: os.Stdout}); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n== optimizer report ==")
	fmt.Print(prog.Report())
}
