// Richards runs the OS-simulator benchmark under all three pipelines and
// shows the paper's headline Richards result: the polymorphic per-subclass
// private data record — which C++ cannot declare inline (it is a void*) —
// is inline allocated automatically, one container version per subclass.
package main

import (
	"fmt"
	"log"
	"strings"

	"objinline"
)

func main() {
	src, err := objinline.BenchmarkSource("richards", false)
	if err != nil {
		log.Fatal(err)
	}

	type result struct {
		mode    objinline.Mode
		metrics objinline.Metrics
		output  string
		prog    *objinline.Program
	}
	var results []result
	for _, mode := range []objinline.Mode{objinline.Direct, objinline.Baseline, objinline.Inline} {
		prog, err := objinline.Compile("richards.icc", src, objinline.Config{Mode: mode})
		if err != nil {
			log.Fatalf("%v: %v", mode, err)
		}
		var out strings.Builder
		m, err := prog.Run(objinline.RunOptions{Output: &out})
		if err != nil {
			log.Fatalf("%v: %v", mode, err)
		}
		results = append(results, result{mode, m, out.String(), prog})
	}

	fmt.Println("richards result (identical in every mode):", strings.TrimSpace(results[0].output))
	for _, r := range results {
		if r.output != results[0].output {
			log.Fatalf("mode %v changed program behavior!", r.mode)
		}
	}

	fmt.Printf("\n%-10s %14s %14s %12s %12s\n", "mode", "cycles", "dereferences", "dispatches", "heap objs")
	for _, r := range results {
		fmt.Printf("%-10s %14d %14d %12d %12d\n",
			r.mode, r.metrics.Cycles, r.metrics.Dereferences, r.metrics.Dispatches, r.metrics.HeapObjects)
	}

	inl := results[2].prog
	fmt.Println("\ninlined automatically (impossible to declare inline in C++):")
	for _, f := range inl.InlinedFields() {
		fmt.Println("  ", f)
	}
	fmt.Printf("\nspeedup over baseline: %.3fx\n",
		float64(results[1].metrics.Cycles)/float64(results[2].metrics.Cycles))
}
