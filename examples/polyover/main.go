// Polyover runs the polygon-map-overlay benchmark (the paper's strongest
// result) in both its array and list versions, and demonstrates the
// inlined-array layout option: element-major versus parallel
// (struct-of-arrays) storage.
package main

import (
	"fmt"
	"log"
	"strings"

	"objinline"
)

func run(name string, src string, cfg objinline.Config) (objinline.Metrics, string, *objinline.Program) {
	prog, err := objinline.Compile(name, src, cfg)
	if err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	var out strings.Builder
	m, err := prog.Run(objinline.RunOptions{Output: &out})
	if err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	return m, out.String(), prog
}

func main() {
	for _, version := range []string{"polyover-arr", "polyover-list"} {
		src, err := objinline.BenchmarkSource(version, false)
		if err != nil {
			log.Fatal(err)
		}
		base, baseOut, _ := run(version, src, objinline.Config{Mode: objinline.Baseline})
		inl, inlOut, prog := run(version, src, objinline.Config{Mode: objinline.Inline})
		if baseOut != inlOut {
			log.Fatalf("%s: inlining changed the result!", version)
		}
		fmt.Printf("== %s ==\n", version)
		fmt.Println("result:", strings.TrimSpace(inlOut))
		fmt.Println("inlined:", strings.Join(prog.InlinedFields(), ", "))
		fmt.Printf("cycles: %d -> %d (%.2fx), heap objects: %d -> %d, cache misses: %d -> %d\n\n",
			base.Cycles, inl.Cycles, float64(base.Cycles)/float64(inl.Cycles),
			base.HeapObjects, inl.HeapObjects, base.CacheMisses, inl.CacheMisses)
	}

	// Layout ablation on the array version.
	src, err := objinline.BenchmarkSource("polyover-arr", false)
	if err != nil {
		log.Fatal(err)
	}
	rowMajor, _, _ := run("polyover-arr", src, objinline.Config{Mode: objinline.Inline})
	parallel, _, _ := run("polyover-arr", src, objinline.Config{Mode: objinline.Inline, ParallelArrays: true})
	fmt.Println("== inlined-array layout (polyover-arr) ==")
	fmt.Printf("element-major: %d cycles (%d misses)\n", rowMajor.Cycles, rowMajor.CacheMisses)
	fmt.Printf("parallel:      %d cycles (%d misses)\n", parallel.Cycles, parallel.CacheMisses)
}
