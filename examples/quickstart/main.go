// Quickstart: compile a small Mini-ICC program with object inlining and
// compare it against the uninlined baseline.
package main

import (
	"fmt"
	"log"
	"os"

	"objinline"
)

const src = `
class Point {
  x; y;
  def init(x, y) { self.x = x; self.y = y; }
  def dist2() { return self.x*self.x + self.y*self.y; }
}
class Particle {
  pos; vel;
  def init(p, v) { self.pos = p; self.vel = v; }
  def step() {
    self.pos.x = self.pos.x + self.vel.x;
    self.pos.y = self.pos.y + self.vel.y;
  }
}
func main() {
  var n = 64;
  var ps = new [n];
  for (var i = 0; i < n; i = i + 1) {
    ps[i] = new Particle(new Point(floatof(i), 0.0), new Point(0.5, 1.0));
  }
  for (var t = 0; t < 100; t = t + 1) {
    for (var i = 0; i < n; i = i + 1) { ps[i].step(); }
  }
  var sum = 0.0;
  for (var i = 0; i < n; i = i + 1) { sum = sum + ps[i].pos.dist2(); }
  print("energy:", sum);
}
`

func main() {
	fmt.Println("== compiling with object inlining ==")
	inlined, err := objinline.Compile("particles.icc", src, objinline.Config{Mode: objinline.Inline})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(inlined.Report())

	fmt.Println("\n== program output ==")
	im, err := inlined.Run(objinline.RunOptions{Output: os.Stdout})
	if err != nil {
		log.Fatal(err)
	}

	baseline, err := objinline.Compile("particles.icc", src, objinline.Config{Mode: objinline.Baseline})
	if err != nil {
		log.Fatal(err)
	}
	bm, err := baseline.Run(objinline.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n== baseline vs inlined ==")
	fmt.Printf("%-22s %12s %12s\n", "", "baseline", "inlined")
	fmt.Printf("%-22s %12d %12d\n", "modeled cycles", bm.Cycles, im.Cycles)
	fmt.Printf("%-22s %12d %12d\n", "heap objects", bm.HeapObjects, im.HeapObjects)
	fmt.Printf("%-22s %12d %12d\n", "dereferences", bm.Dereferences, im.Dereferences)
	fmt.Printf("%-22s %12d %12d\n", "cache misses", bm.CacheMisses, im.CacheMisses)
	fmt.Printf("speedup: %.2fx\n", float64(bm.Cycles)/float64(im.Cycles))
}
