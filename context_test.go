package objinline_test

// End-to-end cancellation coverage: a deadline must stop a pathological
// compile inside the analysis fixpoint (all three solvers, including the
// parallel pool) and a runaway program inside the VM step loop, promptly
// — the oicd server's per-request deadlines are only as good as these
// guarantees.

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"objinline"
)

// cancelSlack is how far past its deadline a cancellation may return and
// still count as prompt (the service-level acceptance bound).
const cancelSlack = 100 * time.Millisecond

// cancelSolvers enumerates the solver configurations the cancellation
// tests cover: both sequential engines and the parallel engine with an
// explicit multi-worker pool (Jobs: 4 forces real workers even on a
// single-CPU runner, where the GOMAXPROCS default would degenerate to
// the sequential path).
var cancelSolvers = []struct {
	name   string
	solver string
	jobs   int
}{
	{objinline.SolverWorklist, objinline.SolverWorklist, 0},
	{objinline.SolverSweep, objinline.SolverSweep, 0},
	{objinline.SolverParallel, objinline.SolverParallel, 0},
	{objinline.SolverParallel + "-jobs4", objinline.SolverParallel, 4},
}

// contourBlowupSource generates a program whose contour analysis is
// pathologically expensive: n classes × n mutually recursive methods,
// with an n×n megamorphic call matrix in main, so the context-sensitive
// analysis chases receiver-type combinations for hundreds of
// milliseconds. (Workload scale is irrelevant here — analysis cost
// depends on the code's shape, not its runtime constants.)
func contourBlowupSource(n int) string {
	var b strings.Builder
	for c := 0; c < n; c++ {
		fmt.Fprintf(&b, "class C%d {\n  v;\n  def init(v) { self.v = v; }\n", c)
		for m := 0; m < n; m++ {
			fmt.Fprintf(&b, "  def m%d(x, d) { if (d <= 0) { return self.v; } return x.m%d(self, d - 1); }\n", m, (m+1)%n)
		}
		b.WriteString("}\n")
	}
	b.WriteString("func main() {\n")
	for c := 0; c < n; c++ {
		fmt.Fprintf(&b, "  var o%d = new C%d(%d);\n", c, c, c)
	}
	for c := 0; c < n; c++ {
		for d := 0; d < n; d++ {
			fmt.Fprintf(&b, "  print(o%d.m0(o%d, %d));\n", c, d, n)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// TestCompileCancelInAnalysis checks every fixpoint solver honors the
// deadline mid-analysis: the blowup compile must return
// context.DeadlineExceeded within cancelSlack of the deadline instead of
// running the analysis (hundreds of milliseconds) to completion.
func TestCompileCancelInAnalysis(t *testing.T) {
	src := contourBlowupSource(20)
	for _, sc := range cancelSolvers {
		t.Run(sc.name, func(t *testing.T) {
			const deadline = 20 * time.Millisecond
			ctx, cancel := context.WithTimeout(context.Background(), deadline)
			defer cancel()
			start := time.Now()
			_, err := objinline.CompileContext(ctx, "blowup.icc", src,
				objinline.Config{Mode: objinline.Inline, Solver: sc.solver, Jobs: sc.jobs})
			elapsed := time.Since(start)
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("err = %v, want context.DeadlineExceeded", err)
			}
			if elapsed > deadline+cancelSlack {
				t.Errorf("cancellation took %v, want under %v", elapsed, deadline+cancelSlack)
			}
		})
	}
}

// TestCompileCancelExpiredContext checks an already-expired context stops
// the compile before any work, in both solver modes.
func TestCompileCancelExpiredContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, sc := range cancelSolvers {
		_, err := objinline.CompileContext(ctx, "x.icc", "func main() { print(1); }",
			objinline.Config{Mode: objinline.Inline, Solver: sc.solver, Jobs: sc.jobs})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("solver %s: err = %v, want context.Canceled", sc.name, err)
		}
	}
}

// TestRunCancelInfiniteLoop checks the VM's step loop honors the
// deadline: an infinite loop must return context.DeadlineExceeded within
// cancelSlack instead of grinding to the four-billion-step limit. Both
// solver modes compile the loop, pinning the whole pipeline path.
func TestRunCancelInfiniteLoop(t *testing.T) {
	const src = "func main() { var i = 0; while (true) { i = i + 1; } }"
	for _, sc := range cancelSolvers {
		t.Run(sc.name, func(t *testing.T) {
			prog, err := objinline.Compile("loop.icc", src,
				objinline.Config{Mode: objinline.Inline, Solver: sc.solver, Jobs: sc.jobs})
			if err != nil {
				t.Fatal(err)
			}
			const deadline = 50 * time.Millisecond
			ctx, cancel := context.WithTimeout(context.Background(), deadline)
			defer cancel()
			start := time.Now()
			_, err = prog.RunContext(ctx, objinline.RunOptions{})
			elapsed := time.Since(start)
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("err = %v, want context.DeadlineExceeded", err)
			}
			if elapsed > deadline+cancelSlack {
				t.Errorf("cancellation took %v, want under %v", elapsed, deadline+cancelSlack)
			}
		})
	}
}

// TestRunCancelExpiredContext checks a run with an expired context does
// not execute at all (the program would print if it ran).
func TestRunCancelExpiredContext(t *testing.T) {
	prog, err := objinline.Compile("p.icc", "func main() { print(7); }",
		objinline.Config{Mode: objinline.Inline})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out strings.Builder
	_, err = prog.RunContext(ctx, objinline.RunOptions{Output: &out})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if out.Len() != 0 {
		t.Errorf("program produced output %q despite expired context", out.String())
	}
}
