package objinline_test

// Tests for the runtime-profiling surface: RunOptions.Profile feeding
// Program.Profile, the Chrome trace export, the caller-owned trace sink,
// and PayoffReport joining an inline and a baseline run.

import (
	"encoding/json"
	"os"
	"strings"
	"testing"

	"objinline"
)

func fixtureSource(t *testing.T) string {
	t.Helper()
	src, err := os.ReadFile("testdata/explain.icc")
	if err != nil {
		t.Fatal(err)
	}
	return string(src)
}

func runProfiled(t *testing.T, mode objinline.Mode) *objinline.Program {
	t.Helper()
	p, err := objinline.Compile("explain.icc", fixtureSource(t), objinline.Config{Mode: mode})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(objinline.RunOptions{Profile: true}); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRunProfile(t *testing.T) {
	p, err := objinline.Compile("explain.icc", fixtureSource(t), objinline.Config{Mode: objinline.Direct})
	if err != nil {
		t.Fatal(err)
	}
	if p.Profile() != nil {
		t.Fatal("Profile non-nil before any profiled run")
	}
	if _, err := p.Run(objinline.RunOptions{}); err != nil {
		t.Fatal(err)
	}
	if p.Profile() != nil {
		t.Fatal("unprofiled run produced a profile")
	}
	m, err := p.Run(objinline.RunOptions{Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	prof := p.Profile()
	if prof == nil {
		t.Fatal("profiled run produced no profile")
	}
	var siteAllocs uint64
	for _, s := range prof.Sites {
		siteAllocs += s.Allocs
	}
	if want := m.HeapObjects + m.Arrays; siteAllocs != want {
		t.Errorf("site allocs %d != counters %d", siteAllocs, want)
	}
	var seen []string
	for _, f := range prof.Fields {
		seen = append(seen, f.Class+"."+f.Field)
	}
	joined := strings.Join(seen, " ")
	for _, want := range []string{"Point.x", "Rect.p", "Holder.v"} {
		if !strings.Contains(joined, want) {
			t.Errorf("field paths missing %s (got %v)", want, seen)
		}
	}
	if prof.HeapPeakBytes != m.BytesAllocated {
		t.Errorf("heap peak %d != bytes allocated %d", prof.HeapPeakBytes, m.BytesAllocated)
	}
	// The profile is JSON-serializable for tooling.
	if _, err := json.Marshal(prof); err != nil {
		t.Fatal(err)
	}
}

func TestPayoffReport(t *testing.T) {
	on := runProfiled(t, objinline.Inline)
	off := runProfiled(t, objinline.Baseline)

	rep, err := objinline.PayoffReport(on, off)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Fields) == 0 {
		t.Fatal("payoff report names no inlined fields")
	}
	var allocs, bytes, misses int64
	for _, f := range rep.Fields {
		allocs += f.AllocsEliminated
		bytes += f.BytesSaved
		misses += f.MissesAvoided
	}
	allocs += rep.Unattributed.AllocsEliminated
	bytes += rep.Unattributed.BytesSaved
	misses += rep.Unattributed.MissesAvoided
	if allocs != rep.AllocsDelta {
		t.Errorf("allocs rows %d != delta %d", allocs, rep.AllocsDelta)
	}
	if bytes != rep.BytesDelta {
		t.Errorf("bytes rows %d != delta %d", bytes, rep.BytesDelta)
	}
	if got := misses + rep.DispatchMissesAvoided; got != rep.MissesDelta {
		t.Errorf("misses rows %d != delta %d", got, rep.MissesDelta)
	}

	// Swapped arguments must be rejected, as must unprofiled programs.
	if _, err := objinline.PayoffReport(off, on); err == nil {
		t.Error("PayoffReport accepted a non-inline 'on' program")
	}
	plain, err := objinline.Compile("explain.icc", fixtureSource(t), objinline.Config{Mode: objinline.Inline})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := objinline.PayoffReport(plain, off); err == nil {
		t.Error("PayoffReport accepted an unprofiled program")
	}
}

func TestWriteChromeTraceJSON(t *testing.T) {
	sink := &objinline.TraceSink{}
	p, err := objinline.Compile("explain.icc", fixtureSource(t),
		objinline.Config{Mode: objinline.Inline}, objinline.WithTraceSink(sink))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(objinline.RunOptions{}); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := objinline.WriteChromeTrace(&b, sink.Events()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	names := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		names[ev.Name] = true
	}
	for _, want := range []string{"parse", "analysis", "optimize", "run"} {
		if !names[want] {
			t.Errorf("chrome trace missing %q span (have %v)", want, names)
		}
	}
	// The caller-owned sink kept its events even though the export
	// consumed them — WithTraceSink's whole point is sink ownership.
	if len(sink.Events()) == 0 {
		t.Error("sink lost its events")
	}
}

// TestWithTraceSinkSurvivesCompileError pins the contract the oic CLI
// relies on: when compilation fails partway, the caller-owned sink holds
// the phases that did complete, so the trace file can still be written.
func TestWithTraceSinkSurvivesCompileError(t *testing.T) {
	sink := &objinline.TraceSink{}
	_, err := objinline.Compile("bad.icc", "func main() { return undefined_name; }",
		objinline.Config{Mode: objinline.Inline}, objinline.WithTraceSink(sink))
	if err == nil {
		t.Fatal("expected a compile error")
	}
	events := sink.Events()
	if len(events) == 0 {
		t.Fatal("sink recorded nothing from the failed compilation")
	}
	if events[0].Phase != "parse" {
		t.Errorf("first recorded phase = %q, want parse", events[0].Phase)
	}
}
