package vm_test

// VM-level semantics of the transformation's runtime support: inlined
// arrays (element-major and parallel layouts), interior references, and
// their error paths — tested on hand-built IR, independent of the
// transformation that normally emits these ops.

import (
	"strings"
	"testing"

	"objinline/internal/ir"
	"objinline/internal/vm"
)

// buildInlinedArrayProg constructs:
//
//	main:
//	  a = newarray.inl[layout] 3 of Pt      (Pt has fields x,y)
//	  it = &a[1]
//	  it.x(slot0) = 7 ; it.y(slot1) = 9
//	  r = it.x + it.y
//	  print(r)
//	  it2 = &a[1]
//	  print(it == it2)
//	  print(len-check via plain index error? no) return
func buildInlinedArrayProg(parallel bool) *ir.Program {
	p := ir.NewProgram()
	pt := p.AddClass(&ir.Class{Name: "Pt", Methods: map[string]*ir.Func{}})
	pt.Fields = []*ir.Field{
		{Name: "x", Slot: 0, Owner: pt},
		{Name: "y", Slot: 1, Owner: pt},
	}
	relX := &ir.Field{Name: "x", Slot: 0, Synthetic: true}
	relY := &ir.Field{Name: "y", Slot: 1, Synthetic: true}

	aux := int64(0)
	if parallel {
		aux = 1
	}
	main := &ir.Func{Name: "main", NumRegs: 10}
	main.Blocks = []*ir.Block{{ID: 0, Instrs: []*ir.Instr{
		{Op: ir.OpConstInt, Dst: 0, Aux: 3},
		{Op: ir.OpNewArrayInl, Dst: 1, Args: []ir.Reg{0}, Class: pt, Aux: aux},
		{Op: ir.OpConstInt, Dst: 2, Aux: 1},
		{Op: ir.OpArrInterior, Dst: 3, Args: []ir.Reg{1, 2}},
		{Op: ir.OpConstInt, Dst: 4, Aux: 7},
		{Op: ir.OpSetField, Dst: ir.NoReg, Args: []ir.Reg{3, 4}, Field: relX},
		{Op: ir.OpConstInt, Dst: 5, Aux: 9},
		{Op: ir.OpSetField, Dst: ir.NoReg, Args: []ir.Reg{3, 5}, Field: relY},
		{Op: ir.OpGetField, Dst: 6, Args: []ir.Reg{3}, Field: relX},
		{Op: ir.OpGetField, Dst: 7, Args: []ir.Reg{3}, Field: relY},
		{Op: ir.OpBin, Dst: 8, Args: []ir.Reg{6, 7}, Aux: int64(ir.BinAdd)},
		{Op: ir.OpBuiltin, Dst: 9, Args: []ir.Reg{8}, Aux: int64(ir.BPrint)},
		// Interior identity: a fresh interior ref to the same element is
		// identical.
		{Op: ir.OpArrInterior, Dst: 6, Args: []ir.Reg{1, 2}},
		{Op: ir.OpBin, Dst: 7, Args: []ir.Reg{3, 6}, Aux: int64(ir.BinEq)},
		{Op: ir.OpBuiltin, Dst: 9, Args: []ir.Reg{7}, Aux: int64(ir.BPrint)},
		{Op: ir.OpReturn, Dst: ir.NoReg, Args: []ir.Reg{0}},
	}}}
	p.AddFunc(main)
	p.Main = main
	if err := p.Verify(); err != nil {
		panic(err)
	}
	return p
}

func TestInlinedArrayLayouts(t *testing.T) {
	for _, parallel := range []bool{false, true} {
		p := buildInlinedArrayProg(parallel)
		var out strings.Builder
		if _, err := vm.New(p, vm.Options{Out: &out}).Run(); err != nil {
			t.Fatalf("parallel=%v: %v", parallel, err)
		}
		if out.String() != "16\ntrue\n" {
			t.Errorf("parallel=%v output %q", parallel, out.String())
		}
	}
}

func TestInteriorErrors(t *testing.T) {
	pt := &ir.Class{Name: "Pt", Methods: map[string]*ir.Func{}}
	pt.Fields = []*ir.Field{{Name: "x", Slot: 0, Owner: pt}}

	build := func(mk func(p *ir.Program, c *ir.Class) []*ir.Instr) *ir.Program {
		p := ir.NewProgram()
		c := p.AddClass(&ir.Class{Name: "Pt", Methods: map[string]*ir.Func{}})
		c.Fields = []*ir.Field{{Name: "x", Slot: 0, Owner: c}}
		main := &ir.Func{Name: "main", NumRegs: 8}
		main.Blocks = []*ir.Block{{ID: 0, Instrs: mk(p, c)}}
		p.AddFunc(main)
		p.Main = main
		if err := p.Verify(); err != nil {
			panic(err)
		}
		return p
	}

	cases := []struct {
		name string
		mk   func(p *ir.Program, c *ir.Class) []*ir.Instr
		frag string
	}{
		{
			"interior into plain array",
			func(p *ir.Program, c *ir.Class) []*ir.Instr {
				return []*ir.Instr{
					{Op: ir.OpConstInt, Dst: 0, Aux: 2},
					{Op: ir.OpNewArray, Dst: 1, Args: []ir.Reg{0}},
					{Op: ir.OpConstInt, Dst: 2, Aux: 0},
					{Op: ir.OpArrInterior, Dst: 3, Args: []ir.Reg{1, 2}},
					{Op: ir.OpReturn, Dst: ir.NoReg, Args: []ir.Reg{0}},
				}
			},
			"interior reference into a plain array",
		},
		{
			"plain load from inlined array",
			func(p *ir.Program, c *ir.Class) []*ir.Instr {
				return []*ir.Instr{
					{Op: ir.OpConstInt, Dst: 0, Aux: 2},
					{Op: ir.OpNewArrayInl, Dst: 1, Args: []ir.Reg{0}, Class: c},
					{Op: ir.OpConstInt, Dst: 2, Aux: 0},
					{Op: ir.OpArrGet, Dst: 3, Args: []ir.Reg{1, 2}},
					{Op: ir.OpReturn, Dst: ir.NoReg, Args: []ir.Reg{0}},
				}
			},
			"plain load from inlined array",
		},
		{
			"interior index out of range",
			func(p *ir.Program, c *ir.Class) []*ir.Instr {
				return []*ir.Instr{
					{Op: ir.OpConstInt, Dst: 0, Aux: 2},
					{Op: ir.OpNewArrayInl, Dst: 1, Args: []ir.Reg{0}, Class: c},
					{Op: ir.OpConstInt, Dst: 2, Aux: 5},
					{Op: ir.OpArrInterior, Dst: 3, Args: []ir.Reg{1, 2}},
					{Op: ir.OpReturn, Dst: ir.NoReg, Args: []ir.Reg{0}},
				}
			},
			"out of range",
		},
		{
			"name-only access on interior",
			func(p *ir.Program, c *ir.Class) []*ir.Instr {
				nameOnly := &ir.Field{Name: "x", Slot: -1}
				return []*ir.Instr{
					{Op: ir.OpConstInt, Dst: 0, Aux: 2},
					{Op: ir.OpNewArrayInl, Dst: 1, Args: []ir.Reg{0}, Class: c},
					{Op: ir.OpConstInt, Dst: 2, Aux: 0},
					{Op: ir.OpArrInterior, Dst: 3, Args: []ir.Reg{1, 2}},
					{Op: ir.OpGetField, Dst: 4, Args: []ir.Reg{3}, Field: nameOnly},
					{Op: ir.OpReturn, Dst: ir.NoReg, Args: []ir.Reg{0}},
				}
			},
			"unspecialized field access",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := build(tc.mk)
			_, err := vm.New(p, vm.Options{}).Run()
			if err == nil || !strings.Contains(err.Error(), tc.frag) {
				t.Errorf("err = %v, want mention of %q", err, tc.frag)
			}
		})
	}
}

func TestStackWindowReuse(t *testing.T) {
	// Many stacked temporaries must cycle within the stack window rather
	// than consuming unbounded address space: their addresses repeat.
	p := ir.NewProgram()
	c := p.AddClass(&ir.Class{Name: "T", Methods: map[string]*ir.Func{}})
	c.Fields = []*ir.Field{{Name: "x", Slot: 0, Owner: c}}
	main := &ir.Func{Name: "main", NumRegs: 4}
	// Loop allocating 1000 stacked objects.
	main.Blocks = []*ir.Block{
		{ID: 0, Instrs: []*ir.Instr{
			{Op: ir.OpConstInt, Dst: 0, Aux: 0},
			{Op: ir.OpJump, Dst: ir.NoReg, Target: 1},
		}},
		{ID: 1, Instrs: []*ir.Instr{
			{Op: ir.OpConstInt, Dst: 1, Aux: 1000},
			{Op: ir.OpBin, Dst: 2, Args: []ir.Reg{0, 1}, Aux: int64(ir.BinLt)},
			{Op: ir.OpBranch, Dst: ir.NoReg, Args: []ir.Reg{2}, Target: 2, Else: 3},
		}},
		{ID: 2, Instrs: []*ir.Instr{
			{Op: ir.OpNewObject, Dst: 3, Class: c, Aux: 1}, // stacked
			{Op: ir.OpConstInt, Dst: 1, Aux: 1},
			{Op: ir.OpBin, Dst: 0, Args: []ir.Reg{0, 1}, Aux: int64(ir.BinAdd)},
			{Op: ir.OpJump, Dst: ir.NoReg, Target: 1},
		}},
		{ID: 3, Instrs: []*ir.Instr{
			{Op: ir.OpReturn, Dst: ir.NoReg, Args: []ir.Reg{0}},
		}},
	}
	p.AddFunc(main)
	p.Main = main
	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
	m := vm.New(p, vm.Options{})
	counters, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if counters.StackAllocated != 1000 {
		t.Errorf("StackAllocated = %d", counters.StackAllocated)
	}
	if counters.ObjectsAllocated != 0 {
		t.Errorf("heap objects = %d, want 0", counters.ObjectsAllocated)
	}
	if counters.BytesAllocated != 0 {
		t.Errorf("stacked allocations counted as heap bytes: %d", counters.BytesAllocated)
	}
}
