package vm

// CostModel charges deterministic cycle costs per VM operation. The
// absolute numbers are not calibrated to any real machine; they are chosen
// so that the relative weight of dispatch, allocation, and memory traffic
// is realistic for a mid-90s RISC workstation, which is what Figure 17's
// *shape* depends on.
type CostModel struct {
	Base          int64 // every executed instruction
	Arith         int64 // extra for arithmetic/compare
	FieldAccess   int64 // extra for a resolved (slot-bound) field access
	DynFieldExtra int64 // extra for a by-name field lookup (unoptimized model)
	ArrayAccess   int64 // extra for an array element access
	Dispatch      int64 // dynamic method lookup + indirect call
	StaticCall    int64 // devirtualized call
	CallFrame     int64 // per-call frame setup/teardown
	AllocBase     int64 // per heap allocation
	AllocPerSlot  int64 // per allocated slot
	StackAlloc    int64 // per stack/arena allocation of an elided temporary
	CacheHit      int64 // per simulated memory access that hits
	CacheMiss     int64 // per simulated memory access that misses
	Builtin       int64 // per builtin invocation
}

// DefaultCostModel is used by all experiments unless overridden.
var DefaultCostModel = CostModel{
	Base:          1,
	Arith:         0,
	FieldAccess:   1,
	DynFieldExtra: 3,
	ArrayAccess:   1,
	Dispatch:      12,
	StaticCall:    2,
	CallFrame:     3,
	AllocBase:     60,
	AllocPerSlot:  2,
	StackAlloc:    3,
	CacheHit:      1,
	CacheMiss:     40,
	Builtin:       2,
}

// Counters accumulates dynamic execution metrics; these are the raw data
// behind EXPERIMENTS.md and Figure 17.
type Counters struct {
	Instructions uint64
	Cycles       int64

	Dereferences    uint64 // heap loads/stores of object fields & array elems
	DynFieldLookups uint64 // field accesses resolved by name at run time
	Dispatches      uint64 // dynamic method calls
	StaticCalls     uint64
	Calls           uint64 // all function/method calls
	Builtins        uint64

	ObjectsAllocated uint64 // heap objects
	StackAllocated   uint64 // elided temporaries (cheap stack/arena allocation)
	ArraysAllocated  uint64
	SlotsAllocated   uint64
	BytesAllocated   uint64

	CacheHits   uint64
	CacheMisses uint64
}
