package vm

// CostModel charges deterministic cycle costs per VM operation. The
// absolute numbers are not calibrated to any real machine; they are chosen
// so that the relative weight of dispatch, allocation, and memory traffic
// is realistic for a mid-90s RISC workstation, which is what Figure 17's
// *shape* depends on.
type CostModel struct {
	Base          int64 // every executed instruction
	Arith         int64 // extra for arithmetic/compare
	FieldAccess   int64 // extra for a resolved (slot-bound) field access
	DynFieldExtra int64 // extra for a by-name field lookup (unoptimized model)
	ArrayAccess   int64 // extra for an array element access
	Dispatch      int64 // dynamic method lookup + indirect call
	StaticCall    int64 // devirtualized call
	CallFrame     int64 // per-call frame setup/teardown
	AllocBase     int64 // per heap allocation
	AllocPerSlot  int64 // per allocated slot
	StackAlloc    int64 // per stack/arena allocation of an elided temporary
	CacheHit      int64 // per simulated memory access that hits
	CacheMiss     int64 // per simulated memory access that misses
	Builtin       int64 // per builtin invocation
}

// CostDim indexes one dimension of the cost model. The VM counts events
// per dimension (Counters.CostEvents) as it charges them, which makes
// total cycles a dot product of the event vector and the model's
// constants — so a run measured once can be *replayed* under any other
// cost model without re-executing (see Counters.CyclesUnder).
type CostDim int

// Cost-model dimensions, one per CostModel field.
const (
	DimBase CostDim = iota
	DimArith
	DimFieldAccess
	DimDynFieldExtra
	DimArrayAccess
	DimDispatch
	DimStaticCall
	DimCallFrame
	DimAllocBase
	DimAllocPerSlot
	DimStackAlloc
	DimCacheHit
	DimCacheMiss
	DimBuiltin
	NumCostDims
)

// Vec returns the model's constants indexed by dimension.
func (c *CostModel) Vec() [NumCostDims]int64 {
	return [NumCostDims]int64{
		DimBase:          c.Base,
		DimArith:         c.Arith,
		DimFieldAccess:   c.FieldAccess,
		DimDynFieldExtra: c.DynFieldExtra,
		DimArrayAccess:   c.ArrayAccess,
		DimDispatch:      c.Dispatch,
		DimStaticCall:    c.StaticCall,
		DimCallFrame:     c.CallFrame,
		DimAllocBase:     c.AllocBase,
		DimAllocPerSlot:  c.AllocPerSlot,
		DimStackAlloc:    c.StackAlloc,
		DimCacheHit:      c.CacheHit,
		DimCacheMiss:     c.CacheMiss,
		DimBuiltin:       c.Builtin,
	}
}

// DefaultCostModel is used by all experiments unless overridden.
var DefaultCostModel = CostModel{
	Base:          1,
	Arith:         0,
	FieldAccess:   1,
	DynFieldExtra: 3,
	ArrayAccess:   1,
	Dispatch:      12,
	StaticCall:    2,
	CallFrame:     3,
	AllocBase:     60,
	AllocPerSlot:  2,
	StackAlloc:    3,
	CacheHit:      1,
	CacheMiss:     40,
	Builtin:       2,
}

// Counters accumulates dynamic execution metrics; these are the raw data
// behind EXPERIMENTS.md and Figure 17.
type Counters struct {
	Instructions uint64
	Cycles       int64

	Dereferences    uint64 // heap loads/stores of object fields & array elems
	DynFieldLookups uint64 // field accesses resolved by name at run time
	Dispatches      uint64 // dynamic method calls
	StaticCalls     uint64
	Calls           uint64 // all function/method calls
	Builtins        uint64

	ObjectsAllocated uint64 // heap objects
	StackAllocated   uint64 // elided temporaries (cheap stack/arena allocation)
	ArraysAllocated  uint64
	SlotsAllocated   uint64
	BytesAllocated   uint64

	CacheHits   uint64
	CacheMisses uint64

	// CostEvents counts, per cost-model dimension, how many times that
	// dimension was charged (for DimAllocPerSlot, the number of slots).
	// Cycles is always the dot product of this vector and the run's cost
	// model, which is what CyclesUnder exploits.
	CostEvents [NumCostDims]uint64
}

// CyclesUnder replays the run's charge events against a different cost
// model and returns the cycle total that model would have produced. The
// event stream of an execution is independent of the cost constants (the
// program path, allocations, and cache behaviour do not consult them), so
// the replayed total is exactly what a fresh run under model would
// measure — at none of the cost.
func (c *Counters) CyclesUnder(model *CostModel) int64 {
	vec := model.Vec()
	var total int64
	for d, n := range c.CostEvents {
		total += int64(n) * vec[d]
	}
	return total
}
