package vm_test

import (
	"strings"
	"testing"

	"objinline/internal/vm"
)

func TestNestedArrays(t *testing.T) {
	src := `
func main() {
  var grid = new [3];
  for (var i = 0; i < 3; i = i + 1) {
    grid[i] = new [3];
    for (var j = 0; j < 3; j = j + 1) { grid[i][j] = i * 3 + j; }
  }
  var s = 0;
  for (var i = 0; i < 3; i = i + 1) {
    for (var j = 0; j < 3; j = j + 1) { s = s + grid[i][j]; }
  }
  print(s);
}
`
	wantOut(t, src, "36\n")
}

func TestArrayInObjectField(t *testing.T) {
	src := `
class Buf {
  data; n;
  def init(cap) { self.data = new [cap]; self.n = 0; }
  def push(v) { self.data[self.n] = v; self.n = self.n + 1; }
  def sum() {
    var s = 0;
    for (var i = 0; i < self.n; i = i + 1) { s = s + self.data[i]; }
    return s;
  }
}
func main() {
  var b = new Buf(8);
  b.push(10); b.push(20); b.push(12);
  print(b.sum(), b.n, len(b.data));
}
`
	wantOut(t, src, "42 3 8\n")
}

func TestStringOrdering(t *testing.T) {
	wantOut(t, `func main() { print("abc" < "abd", "b" > "a", "x" <= "x", "z" >= "za"); }`,
		"true true true false\n")
}

func TestMethodsOnSelfChaining(t *testing.T) {
	src := `
class Counter {
  n;
  def init() { self.n = 0; }
  def inc() { self.n = self.n + 1; return self; }
  def value() { return self.n; }
}
func main() {
  var c = new Counter();
  print(c.inc().inc().inc().value());
}
`
	wantOut(t, src, "3\n")
}

func TestDeepRecursionWithObjects(t *testing.T) {
	src := `
class V { x; def init(x) { self.x = x; } }
func depth(n) {
  if (n == 0) { return new V(0); }
  var inner = depth(n - 1);
  return new V(inner.x + 1);
}
func main() { print(depth(200).x); }
`
	wantOut(t, src, "200\n")
}

func TestNegativeModAndDivSemantics(t *testing.T) {
	// Go semantics: truncated division.
	wantOut(t, `func main() { print(-7 / 2, -7 % 2, 7 / -2, 7 % -2); }`, "-3 -1 -3 1\n")
}

func TestRuntimeErrorPositions(t *testing.T) {
	err := runErr(t, "func main() {\n  var a = new [1];\n  print(a[3]);\n}")
	if !strings.Contains(err.Error(), "test.icc:3:") {
		t.Errorf("error lacks position: %v", err)
	}
	var re *vm.RuntimeError
	if !asRuntimeError(err, &re) {
		t.Errorf("error is %T, want *vm.RuntimeError", err)
	}
}

func asRuntimeError(err error, out **vm.RuntimeError) bool {
	re, ok := err.(*vm.RuntimeError)
	if ok {
		*out = re
	}
	return ok
}

func TestCountersDistinguishCallKinds(t *testing.T) {
	p := compile(t, `
class C { def m() { return 1; } }
func f() { return 2; }
func main() {
  var c = new C();
  c.m(); c.m();
  f();
}
`)
	m := vm.New(p, vm.Options{})
	counters, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if counters.Dispatches != 2 {
		t.Errorf("Dispatches = %d, want 2", counters.Dispatches)
	}
	// f() + the implicit constructor-less new (no call) = 1 static call.
	if counters.StaticCalls != 1 {
		t.Errorf("StaticCalls = %d, want 1", counters.StaticCalls)
	}
	// main + f + 2×m = 4 activations.
	if counters.Calls != 4 {
		t.Errorf("Calls = %d, want 4", counters.Calls)
	}
}

func TestBytesAllocatedTracksBins(t *testing.T) {
	p := compile(t, `
class One { a; }
func main() {
  var x = new One();   // 16B header + 8B slot -> one 32B bin
  var a = new [10];    // 16 + 80 -> 96B (three bins)
  print(1);
}
`)
	m := vm.New(p, vm.Options{})
	counters, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if counters.BytesAllocated != 32+96 {
		t.Errorf("BytesAllocated = %d, want 128", counters.BytesAllocated)
	}
}

func TestGlobalInitializerOrder(t *testing.T) {
	src := `
var a = 1;
var b = a + 1;
var c = b * 10;
func main() { print(a, b, c); }
`
	wantOut(t, src, "1 2 20\n")
}

func TestWhileConditionReevaluated(t *testing.T) {
	src := `
var limit = 3;
func main() {
  var i = 0;
  while (i < limit) {
    i = i + 1;
    if (i == 2) { limit = 5; }
  }
  print(i);
}
`
	wantOut(t, src, "5\n")
}

func TestPrintObjectAndArrayForms(t *testing.T) {
	src := `
class Thing { v; }
func main() {
  var x = new Thing();
  var a = new [2];
  print(x, a);
}
`
	wantOut(t, src, "<Thing> <array len=2>\n")
}
