package vm

// Tests for the site profiler: the disabled path allocates nothing (the
// AllocsPerRun contract the trace sink also pins), profiling perturbs no
// counters, and the attribution partitions the run's traffic exactly.

import (
	"testing"

	"objinline/internal/cachesim"
	"objinline/internal/ir"
	"objinline/internal/lang/parser"
	"objinline/internal/lang/sem"
	"objinline/internal/lower"
)

// TestNilProfileHooksAllocateNothing asserts the disabled-profiling
// contract: every hook the machine calls on a nil *Profile — allocation,
// field access, element access, dispatch, finish — does nothing and
// allocates nothing, so an unprofiled run pays zero for the
// instrumentation.
func TestNilProfileHooksAllocateNothing(t *testing.T) {
	var p *Profile
	allocs := testing.AllocsPerRun(500, func() {
		p.noteObjAlloc(nil, nil, false, 64)
		p.noteObjAlloc(nil, nil, true, 0)
		p.noteArrAlloc(nil, nil, 8, 96)
		p.noteFieldAccess(nil, 0, false, true)
		p.noteFieldAccess(nil, 0, true, false)
		p.noteElemAccess(nil, true)
		p.noteDispatch(true)
		p.finish(1 << 20)
	})
	if allocs != 0 {
		t.Errorf("nil-profile hook sequence allocates %v allocs/op, want 0", allocs)
	}
	if p.Sites() != nil || p.FieldPaths() != nil || p.HeapPeakBytes() != 0 {
		t.Error("nil profile reported data")
	}
}

const profileTestSrc = `
class Point {
  x; y;
  def init(x, y) { self.x = x; self.y = y; }
  def sum() { return self.x + self.y; }
}

func main() {
  var arr = new [64];
  var i = 0;
  while (i < 64) {
    arr[i] = new Point(i, i + 1);
    i = i + 1;
  }
  var total = 0;
  i = 0;
  while (i < 64) {
    total = total + arr[i].sum();
    i = i + 1;
  }
  print(total);
}
`

func compileProfSrc(t *testing.T) *ir.Program {
	t.Helper()
	tree, err := parser.Parse("prof.icc", profileTestSrc)
	if err != nil {
		t.Fatal(err)
	}
	info, err := sem.Check(tree)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := lower.Lower(info)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// TestProfilingDoesNotPerturbCounters runs the same program with and
// without a profile attached; every measured counter must be identical.
func TestProfilingDoesNotPerturbCounters(t *testing.T) {
	prog := compileProfSrc(t)
	cache := cachesim.Config{SizeBytes: 1 << 10, LineBytes: 32, Ways: 2}

	plain := New(prog, Options{Cache: &cache})
	base, err := plain.Run()
	if err != nil {
		t.Fatal(err)
	}

	prof := NewProfile()
	profiled := New(prog, Options{Cache: &cache, Profile: prof})
	got, err := profiled.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got != base {
		t.Errorf("profiling changed the measurement:\nwithout: %+v\nwith:    %+v", base, got)
	}
}

// TestProfileAttributionPartitionsTraffic pins the exact-partition
// identity: field-path misses + array-site element misses + dispatch
// misses equal the run's CacheMisses counter, object-site misses mirror
// the field-path misses, and the allocation totals reconcile with the
// aggregate counters.
func TestProfileAttributionPartitionsTraffic(t *testing.T) {
	prog := compileProfSrc(t)
	// A tiny cache so misses actually occur.
	cache := cachesim.Config{SizeBytes: 1 << 9, LineBytes: 32, Ways: 1}
	prof := NewProfile()
	m := New(prog, Options{Cache: &cache, Profile: prof})
	c, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if c.CacheMisses == 0 {
		t.Fatal("tiny cache produced no misses; the partition test is vacuous")
	}

	var fieldMisses, fieldAccesses uint64
	for _, f := range prof.FieldPaths() {
		fieldMisses += f.Misses
		fieldAccesses += f.Reads + f.Writes
	}
	var objSiteMisses, arrMisses uint64
	var objAllocs, arrAllocs, heapBytes, heapSlots uint64
	for _, s := range prof.Sites() {
		if s.Array {
			arrMisses += s.Misses
			arrAllocs += s.Allocs
		} else {
			objSiteMisses += s.Misses
			objAllocs += s.Allocs
		}
		heapBytes += s.Bytes
		heapSlots += s.Slots
	}
	_, dispatchMisses := prof.Dispatch()

	if got := fieldMisses + arrMisses + dispatchMisses; got != c.CacheMisses {
		t.Errorf("miss partition: fields %d + arrays %d + dispatch %d = %d, want CacheMisses %d",
			fieldMisses, arrMisses, dispatchMisses, got, c.CacheMisses)
	}
	if objSiteMisses != fieldMisses {
		t.Errorf("object-site misses %d != field-path misses %d", objSiteMisses, fieldMisses)
	}
	if objAllocs != c.ObjectsAllocated {
		t.Errorf("site object allocs %d != counter %d", objAllocs, c.ObjectsAllocated)
	}
	if arrAllocs != c.ArraysAllocated {
		t.Errorf("site array allocs %d != counter %d", arrAllocs, c.ArraysAllocated)
	}
	if heapBytes != c.BytesAllocated {
		t.Errorf("site bytes %d != BytesAllocated %d", heapBytes, c.BytesAllocated)
	}
	if heapSlots != c.SlotsAllocated {
		t.Errorf("site slots %d != SlotsAllocated %d", heapSlots, c.SlotsAllocated)
	}
	// Bump allocation makes the high-water mark the total heap footprint.
	if prof.HeapPeakBytes() != c.BytesAllocated {
		t.Errorf("heap peak %d != BytesAllocated %d", prof.HeapPeakBytes(), c.BytesAllocated)
	}

	// The field table must name the source-level class and both fields.
	seen := map[string]bool{}
	for _, f := range prof.FieldPaths() {
		seen[f.Class+"."+f.Field] = true
	}
	if !seen["Point.x"] || !seen["Point.y"] {
		t.Errorf("field paths missing Point.x/Point.y: %+v", prof.FieldPaths())
	}
	// 64 Point allocations at one site, one array site.
	var pointSite, arraySite bool
	for _, s := range prof.Sites() {
		if !s.Array && s.Class == "Point" && s.Allocs == 64 {
			pointSite = true
		}
		if s.Array && s.Allocs == 1 {
			arraySite = true
		}
	}
	if !pointSite || !arraySite {
		t.Errorf("expected a 64-alloc Point site and one array site: %+v", prof.Sites())
	}
}

// BenchmarkRun compares a profiled against an unprofiled execution; the
// allocation numbers make the disabled-path overhead visible.
func BenchmarkRun(b *testing.B) {
	tree, err := parser.Parse("prof.icc", profileTestSrc)
	if err != nil {
		b.Fatal(err)
	}
	info, err := sem.Check(tree)
	if err != nil {
		b.Fatal(err)
	}
	prog, err := lower.Lower(info)
	if err != nil {
		b.Fatal(err)
	}
	cache := cachesim.DefaultConfig
	b.Run("unprofiled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := New(prog, Options{Cache: &cache}).Run(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("profiled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := New(prog, Options{Cache: &cache, Profile: NewProfile()}).Run(); err != nil {
				b.Fatal(err)
			}
		}
	})
}
