package vm_test

import (
	"strings"
	"testing"

	"objinline/internal/ir"
	"objinline/internal/lang/parser"
	"objinline/internal/lang/sem"
	"objinline/internal/lower"
	"objinline/internal/vm"
)

// compile builds IR from source, failing the test on any error.
func compile(t *testing.T, src string) *ir.Program {
	t.Helper()
	prog, err := parser.Parse("test.icc", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := sem.Check(prog)
	if err != nil {
		t.Fatalf("sem: %v", err)
	}
	p, err := lower.Lower(info)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return p
}

// run executes source and returns its printed output.
func run(t *testing.T, src string) string {
	t.Helper()
	p := compile(t, src)
	var out strings.Builder
	m := vm.New(p, vm.Options{Out: &out, MaxSteps: 50_000_000})
	if _, err := m.Run(); err != nil {
		t.Fatalf("run: %v\nIR:\n%s", err, p.String())
	}
	return out.String()
}

// runErr executes source expecting a runtime error.
func runErr(t *testing.T, src string) error {
	t.Helper()
	p := compile(t, src)
	m := vm.New(p, vm.Options{MaxSteps: 1_000_000})
	_, err := m.Run()
	if err == nil {
		t.Fatalf("expected runtime error, got none")
	}
	return err
}

func wantOut(t *testing.T, src, want string) {
	t.Helper()
	got := run(t, src)
	if got != want {
		t.Errorf("output mismatch:\n got: %q\nwant: %q", got, want)
	}
}

func TestArithmetic(t *testing.T) {
	wantOut(t, `func main() { print(1 + 2 * 3); }`, "7\n")
	wantOut(t, `func main() { print((1 + 2) * 3); }`, "9\n")
	wantOut(t, `func main() { print(7 / 2, 7 % 2); }`, "3 1\n")
	wantOut(t, `func main() { print(7.0 / 2); }`, "3.5\n")
	wantOut(t, `func main() { print(-3, -(1.5)); }`, "-3 -1.5\n")
	wantOut(t, `func main() { print(1 < 2, 2 <= 2, 3 > 4, 4 >= 4); }`, "true true false true\n")
	wantOut(t, `func main() { print(1 == 1.0, 1 != 2); }`, "true true\n")
	wantOut(t, `func main() { print("a" + "b"); }`, "ab\n")
}

func TestShortCircuit(t *testing.T) {
	// The right operand must not run when the left decides.
	src := `
var hits = 0;
func bump() { hits = hits + 1; return true; }
func main() {
  var a = false && bump();
  var b = true || bump();
  print(a, b, hits);
  var c = true && bump();
  var d = false || bump();
  print(c, d, hits);
}`
	wantOut(t, src, "false true 0\ntrue true 2\n")
}

func TestControlFlow(t *testing.T) {
	wantOut(t, `
func main() {
  var i = 0;
  var sum = 0;
  while (i < 5) { sum = sum + i; i = i + 1; }
  print(sum);
}`, "10\n")

	wantOut(t, `
func main() {
  var sum = 0;
  for (var i = 0; i < 10; i = i + 1) {
    if (i % 2 == 0) { continue; }
    if (i > 7) { break; }
    sum = sum + i;
  }
  print(sum);
}`, "16\n")

	wantOut(t, `
func classify(n) {
  if (n < 0) { return "neg"; } else if (n == 0) { return "zero"; }
  return "pos";
}
func main() { print(classify(-1), classify(0), classify(5)); }`, "neg zero pos\n")
}

func TestFunctionsAndRecursion(t *testing.T) {
	wantOut(t, `
func fib(n) {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}
func main() { print(fib(15)); }`, "610\n")
}

func TestObjectsAndDispatch(t *testing.T) {
	src := `
class Point {
  x; y;
  def init(x0, y0) { self.x = x0; self.y = y0; }
  def norm() { return sqrt(self.x * self.x + self.y * self.y); }
  def kind() { return "point"; }
}
class Point3D : Point {
  z;
  def init(x0, y0, z0) { self.x = x0; self.y = y0; self.z = z0; }
  def norm() { return sqrt(self.x * self.x + self.y * self.y + self.z * self.z); }
  def kind() { return "point3d"; }
}
func describe(p) { print(p.kind(), p.norm()); }
func main() {
  describe(new Point(3.0, 4.0));
  describe(new Point3D(1.0, 2.0, 2.0));
}`
	wantOut(t, src, "point 5\npoint3d 3\n")
}

func TestInheritedFieldsAndMethods(t *testing.T) {
	src := `
class A { a; def geta() { return self.a; } }
class B : A { b; def init() { self.a = 1; self.b = 2; } }
func main() {
  var o = new B();
  print(o.geta(), o.a, o.b);
}`
	wantOut(t, src, "1 1 2\n")
}

func TestArrays(t *testing.T) {
	src := `
func main() {
  var a = new [4];
  for (var i = 0; i < len(a); i = i + 1) { a[i] = i * i; }
  var sum = 0;
  for (var i = 0; i < len(a); i = i + 1) { sum = sum + a[i]; }
  print(sum, len(a), a[3]);
}`
	wantOut(t, src, "14 4 9\n")
}

func TestGlobals(t *testing.T) {
	src := `
var counter = 100;
var label = "c";
func bump(n) { counter = counter + n; }
func main() { bump(5); bump(7); print(label, counter); }`
	wantOut(t, src, "c 112\n")
}

func TestBuiltins(t *testing.T) {
	wantOut(t, `func main() { print(sqrt(16.0), floor(2.9), abs(-4), abs(-2.5)); }`, "4 2 4 2.5\n")
	wantOut(t, `func main() { print(min(3, 9), max(3, 9), min(2.5, 2), max(-1, -2)); }`, "3 9 2 -1\n")
	wantOut(t, `func main() { print(intof(3.9), floatof(2), len("hello")); }`, "3 2 5\n")
	wantOut(t, `func main() { print(strcat("n=", 4)); }`, "n=4\n")
}

func TestReferenceSemantics(t *testing.T) {
	src := `
class Box { v; def init(v0) { self.v = v0; } }
func mutate(b) { b.v = 99; }
func main() {
  var b = new Box(1);
  var alias = b;
  mutate(alias);
  print(b.v, b == alias, b == new Box(1));
}`
	wantOut(t, src, "99 true false\n")
}

func TestNilSemantics(t *testing.T) {
	wantOut(t, `func main() { var x; print(x, x == nil, nil == nil); }`, "nil true true\n")
}

func TestRuntimeErrors(t *testing.T) {
	cases := []struct {
		name, src, frag string
	}{
		{"nil field", `class C { x; } func main() { var c; print(c.x); }`, "field x of nil"},
		{"div zero", `func main() { print(1 / 0); }`, "division by zero"},
		{"index range", `func main() { var a = new [2]; print(a[5]); }`, "out of range"},
		{"no method", `class C { x; } func main() { var c = new C(); c.nope(); }`, "no method nope"},
		{"missing field", `class C { x; } class D { y; } func main() { var d = new D(); print(d.x); }`, "no field x"},
		{"assert", `func main() { assert(1 == 2); }`, "assertion failed"},
		{"arity", `class C { def m(a) { return a; } } func main() { var c = new C(); c.m(); }`, "takes 1 arguments"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := runErr(t, tc.src)
			if !strings.Contains(err.Error(), tc.frag) {
				t.Errorf("error %q does not mention %q", err, tc.frag)
			}
		})
	}
}

func TestStepLimit(t *testing.T) {
	p := compile(t, `func main() { while (true) { } }`)
	m := vm.New(p, vm.Options{MaxSteps: 1000})
	if _, err := m.Run(); err == nil || !strings.Contains(err.Error(), "step limit") {
		t.Fatalf("want step-limit error, got %v", err)
	}
}

func TestCountersTrackWork(t *testing.T) {
	p := compile(t, `
class C { x; def init() { self.x = 1; } }
func main() {
  var c = new C();
  var i = 0;
  while (i < 10) { c.x = c.x + c.x; i = i + 1; }
  print(c.x);
}`)
	var out strings.Builder
	m := vm.New(p, vm.Options{Out: &out})
	c, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.String() != "1024\n" {
		t.Fatalf("output %q", out.String())
	}
	if c.ObjectsAllocated != 1 {
		t.Errorf("ObjectsAllocated = %d, want 1", c.ObjectsAllocated)
	}
	// init store + 10 * (load+load+store) = 31 dereferences, plus the final
	// print load.
	if c.Dereferences != 32 {
		t.Errorf("Dereferences = %d, want 32", c.Dereferences)
	}
	if c.Cycles <= 0 || c.Instructions == 0 {
		t.Errorf("cycles/instructions not accumulated: %+v", c)
	}
}

func TestConstructorChainsToSuperInit(t *testing.T) {
	// A subclass without its own init uses the inherited one.
	src := `
class A { v; def init(v0) { self.v = v0; } }
class B : A { }
func main() { var b = new B(42); print(b.v); }`
	wantOut(t, src, "42\n")
}
