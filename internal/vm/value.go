// Package vm executes IR programs on an explicit uniform object model:
// a heap of objects and arrays with synthetic addresses, reference values,
// dynamic dispatch, and — after the inlining transformation — interior
// references into inlined array storage. The VM doubles as the measurement
// substrate: it counts dereferences, allocations, and dispatches, and it
// charges a deterministic cycle cost per operation with a simulated data
// cache (see DESIGN.md §2 for why this stands in for the paper's
// SparcStation + G++ testbed).
package vm

import (
	"fmt"
	"strconv"

	"objinline/internal/ir"
)

// Kind discriminates runtime values.
type Kind uint8

// Runtime value kinds.
const (
	KNil Kind = iota
	KInt
	KFloat
	KBool
	KStr
	KObj
	KArr
	KInterior // reference into an inlined array's element storage
)

var kindNames = [...]string{"nil", "int", "float", "bool", "string", "object", "array", "interior"}

func (k Kind) String() string { return kindNames[k] }

// Value is one runtime value. It is passed by value; only Obj/Arr point at
// shared state.
type Value struct {
	Kind Kind
	I    int64 // int payload; bool uses 0/1
	F    float64
	S    string
	Obj  *Object
	Arr  *Array
	Base int // interior reference: first slot of the element's inlined state
}

// Convenience constructors.

// NilValue returns the nil reference.
func NilValue() Value { return Value{Kind: KNil} }

// IntValue boxes an int.
func IntValue(i int64) Value { return Value{Kind: KInt, I: i} }

// FloatValue boxes a float.
func FloatValue(f float64) Value { return Value{Kind: KFloat, F: f} }

// BoolValue boxes a bool.
func BoolValue(b bool) Value {
	if b {
		return Value{Kind: KBool, I: 1}
	}
	return Value{Kind: KBool}
}

// StrValue boxes a string.
func StrValue(s string) Value { return Value{Kind: KStr, S: s} }

// ObjValue boxes an object reference.
func ObjValue(o *Object) Value { return Value{Kind: KObj, Obj: o} }

// ArrValue boxes an array reference.
func ArrValue(a *Array) Value { return Value{Kind: KArr, Arr: a} }

// InteriorValue references the inlined state of element slot base in a.
func InteriorValue(a *Array, base int) Value { return Value{Kind: KInterior, Arr: a, Base: base} }

// Truthy reports the boolean interpretation used by branches: false, nil,
// and numeric zero are false.
func (v Value) Truthy() bool {
	switch v.Kind {
	case KNil:
		return false
	case KBool, KInt:
		return v.I != 0
	case KFloat:
		return v.F != 0
	default:
		return true
	}
}

// String renders the value the way the print builtin does.
func (v Value) String() string {
	switch v.Kind {
	case KNil:
		return "nil"
	case KInt:
		return strconv.FormatInt(v.I, 10)
	case KFloat:
		return formatFloat(v.F)
	case KBool:
		if v.I != 0 {
			return "true"
		}
		return "false"
	case KStr:
		return v.S
	case KObj:
		// Print the source-level class name: restructured class versions
		// must be observationally identical to the original program.
		c := v.Obj.Class
		if c.Origin != nil {
			c = c.Origin
		}
		return "<" + c.Name + ">"
	case KArr:
		return fmt.Sprintf("<array len=%d>", v.Arr.Length)
	case KInterior:
		return "<interior>"
	default:
		return "<?>"
	}
}

// formatFloat prints floats with a stable format shared by the original
// and transformed programs (differential tests compare output text).
func formatFloat(f float64) string {
	s := strconv.FormatFloat(f, 'g', 10, 64)
	return s
}

// Identical implements reference identity (==) on values. Inlined objects
// compare by (container, base) so identity is preserved by the
// transformation.
func Identical(a, b Value) bool {
	if a.Kind != b.Kind {
		// Numeric cross-kind comparison is value equality.
		if isNum(a) && isNum(b) {
			return numEq(a, b)
		}
		return false
	}
	switch a.Kind {
	case KNil:
		return true
	case KInt, KBool:
		return a.I == b.I
	case KFloat:
		return a.F == b.F
	case KStr:
		return a.S == b.S
	case KObj:
		return a.Obj == b.Obj
	case KArr:
		return a.Arr == b.Arr
	case KInterior:
		return a.Arr == b.Arr && a.Base == b.Base
	}
	return false
}

func isNum(v Value) bool { return v.Kind == KInt || v.Kind == KFloat }

func numEq(a, b Value) bool {
	return toF(a) == toF(b)
}

func toF(v Value) float64 {
	if v.Kind == KFloat {
		return v.F
	}
	return float64(v.I)
}

// Object is a heap object: a class pointer and one slot per field.
type Object struct {
	Class *ir.Class
	Slots []Value
	Addr  uint64 // synthetic byte address of the object header

	// site is the profiler's allocation-site tag (1-based; 0 when the run
	// is unprofiled). Only the Profile that allocated the object reads it.
	site int32
}

// SlotAddr returns the synthetic address of slot i.
func (o *Object) SlotAddr(i int) uint64 { return o.Addr + headerBytes + uint64(i)*slotBytes }

// Array is a heap array. Plain arrays hold one Value per element
// (Stride == 0). Inlined arrays hold the flattened object state of each
// element: Stride slots per element in object order, or — with the
// parallel layout — Stride column vectors of Length values each.
type Array struct {
	Length int
	Elems  []Value   // plain: len == Length; inlined object-order: len == Length*Stride
	Stride int       // 0 for plain arrays
	Cols   [][]Value // parallel layout: Stride columns of Length slots
	Class  *ir.Class // element class for inlined arrays
	Addr   uint64

	// site is the profiler's allocation-site tag (see Object.site).
	site int32
}

// Parallel reports whether the array uses the parallel-column layout.
func (a *Array) Parallel() bool { return a.Cols != nil }

// SlotAddr returns the synthetic address of flat slot i (object-order
// layout) or of column c, row r (parallel layout, via ColAddr).
func (a *Array) SlotAddr(i int) uint64 { return a.Addr + headerBytes + uint64(i)*slotBytes }

// ColAddr returns the synthetic address of column c, row r for the
// parallel layout; columns are laid out one after another.
func (a *Array) ColAddr(c, r int) uint64 {
	return a.Addr + headerBytes + uint64(c*a.Length+r)*slotBytes
}

// Synthetic memory layout constants: a two-word object header (class
// pointer + allocator word, typical for mid-90s runtimes) plus 8-byte
// slots. Heap allocations are additionally rounded up to 32-byte
// allocator bins (binPad), which is what makes arrays of small heap
// objects so much less cache-dense than inlined storage — the effect
// behind the paper's polyover and OOPACK numbers.
const (
	headerBytes = 16
	slotBytes   = 8
	binBytes    = 32
)

// padAlloc rounds a heap allocation to its allocator bin.
func padAlloc(size uint64) uint64 {
	return (size + binBytes - 1) / binBytes * binBytes
}

// Exported layout geometry for tooling: the payoff attribution derives its
// static per-field predictions from the same allocator geometry the VM
// charges.
const (
	// HeaderBytes is the object/array header size.
	HeaderBytes = headerBytes
	// SlotBytes is the size of one field or element slot.
	SlotBytes = slotBytes
	// BinBytes is the allocator bin granularity heap sizes round up to.
	BinBytes = binBytes
)

// PadAlloc rounds a heap allocation size to its allocator bin, exactly as
// the VM's allocator does.
func PadAlloc(size uint64) uint64 { return padAlloc(size) }

// Stack-page modeling for elided temporaries: a small window of addresses
// far from the heap that stays cache-hot, like a real call stack.
const (
	stackBase   uint64 = 1 << 40
	stackWindow uint64 = 4096
)
