package vm

// The site profiler: optional per-run attribution of allocations, field
// traffic, and cache misses to allocation sites and Class.field paths.
// The payoff harness (internal/bench) joins two of these — one from an
// inlining-on run, one from an inlining-off run — against the optimizer's
// decision to measure what each inlined field actually saved.
//
// Disabled profiling is free: the machine calls the note* hooks
// unconditionally, every hook is nil-receiver-safe, and the nil path
// performs no work and no allocations (asserted by AllocsPerRun tests,
// like the trace sink's contract). Attribution happens at interned
// per-instruction records on the hot path; the exported Sites/FieldPaths
// views aggregate and sort only when asked.
//
// Cache misses are partitioned exactly: every simulated memory access is
// either an object field access (attributed to a Class.field path and to
// the object's allocation site), an element access into array storage
// (attributed to the array's allocation site), or a dispatch header touch
// (attributed to the dispatch bucket). The per-path misses, per-array-site
// element misses, and dispatch misses therefore sum to the run's
// CacheMisses counter — the identity the payoff reconciliation tests pin.

import (
	"sort"

	"objinline/internal/ir"
	"objinline/internal/lang/source"
)

// Profile accumulates one run's attribution. Create with NewProfile, pass
// via Options.Profile, and read the aggregated views after Run. A nil
// *Profile is valid everywhere and records nothing.
type Profile struct {
	byInstr map[*ir.Instr]*siteRec
	recs    []*siteRec // recs[i] has index i+1 (0 marks "no site")
	fields  map[fieldPathKey]*fieldRec

	dispatchReads  uint64
	dispatchMisses uint64
	heapPeak       uint64
}

// NewProfile returns an empty profile ready to attach to a run.
func NewProfile() *Profile {
	return &Profile{
		byInstr: make(map[*ir.Instr]*siteRec),
		fields:  make(map[fieldPathKey]*fieldRec),
	}
}

// siteRec is the hot-path record of one allocation instruction.
type siteRec struct {
	pos   source.Pos
	class *ir.Class // allocated class; nil for plain arrays
	array bool
	idx   int32 // 1-based index in recs, the tag stored on objects/arrays

	allocs  uint64 // heap allocations
	stacked uint64 // stack-elided allocations
	slots   uint64 // heap slots
	bytes   uint64 // heap bytes, allocator-bin padded

	accesses uint64 // memory accesses into this site's storage
	misses   uint64 // cache misses among them
}

// fieldPathKey identifies one field path at runtime: the declaring class
// (a version class while the run executes; aggregation resolves origins)
// and the slot's layout name (synthetic names like "p$x" included).
type fieldPathKey struct {
	owner *ir.Class
	name  string
}

type fieldRec struct {
	reads  uint64
	writes uint64
	misses uint64
}

// siteOf interns the record for one allocation instruction.
func (p *Profile) siteOf(in *ir.Instr, class *ir.Class, array bool) *siteRec {
	if r, ok := p.byInstr[in]; ok {
		return r
	}
	r := &siteRec{pos: in.Pos, class: class, array: array}
	p.byInstr[in] = r
	p.recs = append(p.recs, r)
	r.idx = int32(len(p.recs))
	return r
}

// noteObjAlloc records one object allocation at in and tags o with its
// site so later field accesses can find it.
func (p *Profile) noteObjAlloc(in *ir.Instr, o *Object, stacked bool, size uint64) {
	if p == nil {
		return
	}
	r := p.siteOf(in, o.Class, false)
	o.site = r.idx
	if stacked {
		r.stacked++
		return
	}
	r.allocs++
	r.slots += uint64(len(o.Slots))
	r.bytes += size
}

// noteArrAlloc records one array allocation at in and tags a with its
// site so element accesses can find it.
func (p *Profile) noteArrAlloc(in *ir.Instr, a *Array, slots int, size uint64) {
	if p == nil {
		return
	}
	r := p.siteOf(in, a.Class, true)
	a.site = r.idx
	r.allocs++
	r.slots += uint64(slots)
	r.bytes += size
}

// noteFieldAccess records one object field access: slot is the resolved
// layout slot of o.Class. Attributed to the Class.field path and, via the
// object's site tag, to the allocation site.
func (p *Profile) noteFieldAccess(o *Object, slot int, write, miss bool) {
	if p == nil {
		return
	}
	lf := o.Class.Fields[slot]
	owner := lf.Owner
	if owner == nil {
		owner = o.Class
	}
	fr := p.fields[fieldPathKey{owner, lf.Name}]
	if fr == nil {
		fr = &fieldRec{}
		p.fields[fieldPathKey{owner, lf.Name}] = fr
	}
	if write {
		fr.writes++
	} else {
		fr.reads++
	}
	if miss {
		fr.misses++
	}
	if s := o.site; s > 0 {
		r := p.recs[s-1]
		r.accesses++
		if miss {
			r.misses++
		}
	}
}

// noteElemAccess records one access into array element storage (a plain
// element slot or an inlined element's interior slot), attributed to the
// array's allocation site.
func (p *Profile) noteElemAccess(a *Array, miss bool) {
	if p == nil {
		return
	}
	if s := a.site; s > 0 {
		r := p.recs[s-1]
		r.accesses++
		if miss {
			r.misses++
		}
	}
}

// noteDispatch records one dispatch header touch.
func (p *Profile) noteDispatch(miss bool) {
	if p == nil {
		return
	}
	p.dispatchReads++
	if miss {
		p.dispatchMisses++
	}
}

// finish records the run's final heap extent (the allocator bumps
// addresses monotonically, so the final extent is the high-water mark).
func (p *Profile) finish(heapBytes uint64) {
	if p == nil {
		return
	}
	if heapBytes > p.heapPeak {
		p.heapPeak = heapBytes
	}
}

// originName resolves a (possibly cloned/restructured) class to its
// source-level name, so profiles from differently-specialized runs of the
// same program join on the same class names.
func originName(c *ir.Class) string {
	if c == nil {
		return ""
	}
	for c.Origin != nil {
		c = c.Origin
	}
	return c.Name
}

// SiteProfile is one allocation site's aggregated attribution: all records
// with the same source position and source-level class merged (clones of
// the same source instruction report as one site).
type SiteProfile struct {
	// Pos is the allocation instruction's source position ("file:line:col").
	Pos string `json:"pos"`
	// Class is the source-level class name; empty for plain arrays.
	Class string `json:"class,omitempty"`
	// Array marks array allocation sites.
	Array bool `json:"array,omitempty"`

	// Allocs counts heap allocations; StackAllocs counts stack-elided
	// temporaries (only the inlining transformation produces those).
	Allocs      uint64 `json:"allocs"`
	StackAllocs uint64 `json:"stack_allocs,omitempty"`
	// Slots and Bytes are the heap slots and allocator-bin-padded bytes
	// the site's heap allocations consumed.
	Slots uint64 `json:"slots"`
	Bytes uint64 `json:"bytes"`

	// Accesses and Misses count simulated memory accesses into this
	// site's storage: field slots for object sites, element storage for
	// array sites.
	Accesses uint64 `json:"accesses"`
	Misses   uint64 `json:"misses"`
}

// FieldProfile is one Class.field path's aggregated traffic, keyed by the
// source-level declaring class. Restructured container classes report
// their synthetic slots (e.g. "p$x") under the container's source name.
type FieldProfile struct {
	Class  string `json:"class"`
	Field  string `json:"field"`
	Reads  uint64 `json:"reads"`
	Writes uint64 `json:"writes"`
	Misses uint64 `json:"misses"`
}

// Sites returns the aggregated allocation-site table, sorted by source
// position, then class name.
func (p *Profile) Sites() []SiteProfile {
	if p == nil {
		return nil
	}
	type aggKey struct {
		pos   source.Pos
		class string
		array bool
	}
	agg := make(map[aggKey]*SiteProfile)
	var order []aggKey
	for _, r := range p.recs {
		k := aggKey{r.pos, originName(r.class), r.array}
		s := agg[k]
		if s == nil {
			s = &SiteProfile{Pos: r.pos.String(), Class: k.class, Array: r.array}
			agg[k] = s
			order = append(order, k)
		}
		s.Allocs += r.allocs
		s.StackAllocs += r.stacked
		s.Slots += r.slots
		s.Bytes += r.bytes
		s.Accesses += r.accesses
		s.Misses += r.misses
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if a.pos != b.pos {
			if a.pos.File != b.pos.File {
				return a.pos.File < b.pos.File
			}
			if a.pos.Line != b.pos.Line {
				return a.pos.Line < b.pos.Line
			}
			return a.pos.Col < b.pos.Col
		}
		if a.class != b.class {
			return a.class < b.class
		}
		return !a.array && b.array
	})
	out := make([]SiteProfile, 0, len(order))
	for _, k := range order {
		out = append(out, *agg[k])
	}
	return out
}

// FieldPaths returns the aggregated field-path table, sorted by class then
// field name.
func (p *Profile) FieldPaths() []FieldProfile {
	if p == nil {
		return nil
	}
	type aggKey struct{ class, field string }
	agg := make(map[aggKey]*FieldProfile)
	for k, r := range p.fields {
		ak := aggKey{originName(k.owner), k.name}
		f := agg[ak]
		if f == nil {
			f = &FieldProfile{Class: ak.class, Field: ak.field}
			agg[ak] = f
		}
		f.Reads += r.reads
		f.Writes += r.writes
		f.Misses += r.misses
	}
	out := make([]FieldProfile, 0, len(agg))
	for _, f := range agg {
		out = append(out, *f)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Class != out[j].Class {
			return out[i].Class < out[j].Class
		}
		return out[i].Field < out[j].Field
	})
	return out
}

// HeapPeakBytes returns the heap-footprint high-water mark of the run.
func (p *Profile) HeapPeakBytes() uint64 {
	if p == nil {
		return 0
	}
	return p.heapPeak
}

// Dispatch returns the dispatch header-touch traffic: every dynamic
// dispatch reads the receiver's header, and some of those reads miss.
func (p *Profile) Dispatch() (accesses, misses uint64) {
	if p == nil {
		return 0, 0
	}
	return p.dispatchReads, p.dispatchMisses
}
