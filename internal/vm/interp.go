package vm

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"strings"

	"objinline/internal/cachesim"
	"objinline/internal/ir"
	"objinline/internal/lang/source"
	"objinline/internal/lower"
	"objinline/internal/trace"
)

// Options configures a Machine.
type Options struct {
	Out      io.Writer        // print target; defaults to io.Discard
	Cost     *CostModel       // defaults to DefaultCostModel
	Cache    *cachesim.Config // nil disables the cache model (hits assumed)
	MaxSteps uint64           // 0 means the default limit
	Trace    *trace.Sink      // optional phase-event sink; nil records nothing
	// Profile, when non-nil, attributes allocations, field traffic, and
	// cache misses to allocation sites and Class.field paths. A nil
	// profile costs nothing (the hooks are nil-receiver no-ops).
	Profile *Profile
}

// DefaultMaxSteps bounds runaway programs.
const DefaultMaxSteps = 4_000_000_000

// Machine executes one IR program.
type Machine struct {
	prog    *ir.Program
	out     io.Writer
	cost    CostModel
	costVec [NumCostDims]int64
	cache   *cachesim.Cache
	maxStep uint64

	globals  []Value
	counts   Counters
	nextAdr  uint64
	stackAdr uint64

	tr   *trace.Sink
	prof *Profile

	// Cancellation state for RunContext: done is ctx.Done(), cached so a
	// background context costs one nil comparison per checked instruction.
	ctx  context.Context
	done <-chan struct{}

	slotMaps map[*ir.Class]map[string]int
}

// cancelCheckMask throttles the step loop's context polling: the Done
// channel is selected once every (mask+1) instructions, bounding both the
// polling overhead and how far past a deadline a runaway program can run
// (a few thousand interpreted instructions — microseconds).
const cancelCheckMask = 0x3FF

// New prepares a machine for prog.
func New(prog *ir.Program, opts Options) *Machine {
	m := &Machine{
		prog:     prog,
		out:      opts.Out,
		cost:     DefaultCostModel,
		maxStep:  opts.MaxSteps,
		globals:  make([]Value, len(prog.Globals)),
		nextAdr:  binBytes, // bin-aligned; keep address 0 unused
		stackAdr: stackBase,
		tr:       opts.Trace,
		prof:     opts.Profile,
		slotMaps: make(map[*ir.Class]map[string]int),
	}
	if m.out == nil {
		m.out = io.Discard
	}
	if opts.Cost != nil {
		m.cost = *opts.Cost
	}
	if opts.Cache != nil {
		m.cache = cachesim.New(*opts.Cache)
	}
	if m.maxStep == 0 {
		m.maxStep = DefaultMaxSteps
	}
	m.costVec = m.cost.Vec()
	return m
}

// Counters returns the metrics accumulated so far.
func (m *Machine) Counters() Counters { return m.counts }

// RuntimeError is a Mini-ICC runtime failure with a source position.
type RuntimeError struct {
	Pos source.Pos
	Msg string
}

// Error implements the error interface.
func (e *RuntimeError) Error() string {
	if e.Pos.IsValid() {
		return fmt.Sprintf("runtime error at %s: %s", e.Pos, e.Msg)
	}
	return "runtime error: " + e.Msg
}

type vmPanic struct{ err *RuntimeError }

// cancelPanic unwinds the step loop when the run context is canceled; the
// carried error wraps ctx.Err() so callers can match it with errors.Is.
type cancelPanic struct{ err error }

func (m *Machine) fail(pos source.Pos, format string, args ...any) {
	panic(vmPanic{&RuntimeError{Pos: pos, Msg: fmt.Sprintf(format, args...)}})
}

// Run executes $init (if present) and then main, returning the accumulated
// counters.
func (m *Machine) Run() (Counters, error) {
	return m.RunContext(context.Background())
}

// RunContext is Run with cancellation: the step loop polls the context
// every few thousand instructions, so an infinite loop (or any runaway
// program) returns an error wrapping ctx.Err() within microseconds of the
// deadline instead of running to the step limit. The counters accumulated
// up to the cancellation are returned alongside the error.
func (m *Machine) RunContext(ctx context.Context) (c Counters, err error) {
	m.ctx = ctx
	m.done = ctx.Done()
	sp := m.tr.Start(trace.PhaseRun)
	defer func() {
		sp.Counter("instructions", int64(m.counts.Instructions))
		sp.Counter("cycles", m.counts.Cycles)
		sp.Counter("cache-misses", int64(m.counts.CacheMisses))
		sp.End()
		m.prof.finish(m.nextAdr - binBytes)
	}()
	defer func() {
		if r := recover(); r != nil {
			if vp, ok := r.(vmPanic); ok {
				err = vp.err
				c = m.counts
				return
			}
			if cp, ok := r.(cancelPanic); ok {
				err = cp.err
				c = m.counts
				return
			}
			panic(r)
		}
	}()
	if m.prog.Main == nil {
		return m.counts, errors.New("vm: program has no main")
	}
	// The step loop only polls every cancelCheckMask+1 instructions, so a
	// context that is already dead would let a short program run to
	// completion; check once up front.
	if err := ctx.Err(); err != nil {
		return m.counts, fmt.Errorf("vm: execution canceled: %w", err)
	}
	if init := m.prog.FuncNamed(lower.InitFuncName); init != nil {
		m.exec(init, nil)
	}
	m.exec(m.prog.Main, nil)
	return m.counts, nil
}

// charge records n events on cost dimension d and adds their cycles.
func (m *Machine) charge(d CostDim, n int64) {
	m.counts.CostEvents[d] += uint64(n)
	m.counts.Cycles += n * m.costVec[d]
}

// mem simulates one memory access at addr, charges its cost, and reports
// whether the access missed (for the profiler's attribution).
func (m *Machine) mem(addr uint64) bool {
	if m.cache == nil {
		m.charge(DimCacheHit, 1)
		return false
	}
	if m.cache.Access(addr) {
		m.counts.CacheHits++
		m.charge(DimCacheHit, 1)
		return false
	}
	m.counts.CacheMisses++
	m.charge(DimCacheMiss, 1)
	return true
}

func (m *Machine) slotByName(c *ir.Class, name string) (int, bool) {
	sm := m.slotMaps[c]
	if sm == nil {
		sm = make(map[string]int, len(c.Fields))
		for _, f := range c.Fields {
			sm[f.Name] = f.Slot
		}
		m.slotMaps[c] = sm
	}
	s, ok := sm[name]
	return s, ok
}

// allocObject creates a heap object of class c with nil slots. Stacked
// allocations are the inlining transformation's elided temporaries: their
// contents are copied into a container and the original dies, so they are
// charged only a cheap stack/arena cost (DESIGN.md §2).
func (m *Machine) allocObject(in *ir.Instr, c *ir.Class, stacked bool) *Object {
	n := c.NumSlots()
	if stacked {
		// Elided temporaries live on a hot stack page: their addresses
		// cycle within a small window instead of consuming heap address
		// space (they are dead after the inlining copy).
		size := uint64(headerBytes + n*slotBytes)
		if m.stackAdr+size > stackBase+stackWindow {
			m.stackAdr = stackBase
		}
		o := &Object{Class: c, Slots: make([]Value, n), Addr: m.stackAdr}
		m.stackAdr += size
		m.counts.StackAllocated++
		m.charge(DimStackAlloc, 1)
		m.prof.noteObjAlloc(in, o, true, 0)
		return o
	}
	o := &Object{Class: c, Slots: make([]Value, n), Addr: m.nextAdr}
	size := padAlloc(uint64(headerBytes + n*slotBytes))
	m.nextAdr += size
	m.counts.ObjectsAllocated++
	m.counts.SlotsAllocated += uint64(n)
	m.counts.BytesAllocated += size
	m.charge(DimAllocBase, 1)
	m.charge(DimAllocPerSlot, int64(n))
	m.prof.noteObjAlloc(in, o, false, size)
	return o
}

func (m *Machine) allocArray(in *ir.Instr, length, stride int, parallel bool, elem *ir.Class) *Array {
	slots := length
	if stride > 0 {
		slots = length * stride
	}
	a := &Array{Length: length, Stride: stride, Class: elem, Addr: m.nextAdr}
	_ = slots
	if parallel {
		a.Cols = make([][]Value, stride)
		for i := range a.Cols {
			a.Cols[i] = make([]Value, length)
		}
	} else {
		a.Elems = make([]Value, slots)
	}
	size := padAlloc(uint64(headerBytes + slots*slotBytes))
	m.nextAdr += size
	m.counts.ArraysAllocated++
	m.counts.SlotsAllocated += uint64(slots)
	m.counts.BytesAllocated += size
	m.charge(DimAllocBase, 1)
	m.charge(DimAllocPerSlot, int64(slots))
	m.prof.noteArrAlloc(in, a, slots, size)
	return a
}

// exec runs one function activation and returns its result.
func (m *Machine) exec(fn *ir.Func, args []Value) Value {
	m.counts.Calls++
	m.charge(DimCallFrame, 1)
	regs := make([]Value, fn.NumRegs)
	copy(regs, args)
	blk := fn.Blocks[0]
	ip := 0
	for {
		if ip >= len(blk.Instrs) {
			m.fail(source.Pos{}, "fell off block b%d in %s", blk.ID, fn.FullName())
		}
		in := blk.Instrs[ip]
		ip++
		m.counts.Instructions++
		if m.counts.Instructions > m.maxStep {
			m.fail(in.Pos, "step limit exceeded (%d)", m.maxStep)
		}
		if m.done != nil && m.counts.Instructions&cancelCheckMask == 0 {
			select {
			case <-m.done:
				panic(cancelPanic{fmt.Errorf("vm: execution canceled at %s: %w", in.Pos, m.ctx.Err())})
			default:
			}
		}
		m.charge(DimBase, 1)

		switch in.Op {
		case ir.OpConstInt:
			regs[in.Dst] = IntValue(in.Aux)
		case ir.OpConstFloat:
			regs[in.Dst] = FloatValue(in.F)
		case ir.OpConstStr:
			regs[in.Dst] = StrValue(in.S)
		case ir.OpConstBool:
			regs[in.Dst] = BoolValue(in.Aux != 0)
		case ir.OpConstNil:
			regs[in.Dst] = NilValue()
		case ir.OpMove:
			regs[in.Dst] = regs[in.Args[0]]
		case ir.OpBin:
			regs[in.Dst] = m.binop(in, regs[in.Args[0]], regs[in.Args[1]])
		case ir.OpUn:
			regs[in.Dst] = m.unop(in, regs[in.Args[0]])
		case ir.OpNewObject:
			regs[in.Dst] = ObjValue(m.allocObject(in, in.Class, in.Aux == 1))
		case ir.OpNewArray:
			n := m.wantInt(in, regs[in.Args[0]])
			if n < 0 {
				m.fail(in.Pos, "negative array length %d", n)
			}
			regs[in.Dst] = ArrValue(m.allocArray(in, int(n), 0, false, nil))
		case ir.OpNewArrayInl:
			n := m.wantInt(in, regs[in.Args[0]])
			if n < 0 {
				m.fail(in.Pos, "negative array length %d", n)
			}
			stride := in.Class.NumSlots()
			regs[in.Dst] = ArrValue(m.allocArray(in, int(n), stride, in.Aux == 1, in.Class))
		case ir.OpGetField:
			regs[in.Dst] = m.getField(in, regs[in.Args[0]])
		case ir.OpSetField:
			m.setField(in, regs[in.Args[0]], regs[in.Args[1]])
		case ir.OpArrGet:
			regs[in.Dst] = m.arrGet(in, regs[in.Args[0]], regs[in.Args[1]])
		case ir.OpArrSet:
			m.arrSet(in, regs[in.Args[0]], regs[in.Args[1]], regs[in.Args[2]])
		case ir.OpArrInterior:
			regs[in.Dst] = m.arrInterior(in, regs[in.Args[0]], regs[in.Args[1]])
		case ir.OpCall:
			callArgs := make([]Value, len(in.Args))
			for i, a := range in.Args {
				callArgs[i] = regs[a]
			}
			m.counts.StaticCalls++
			m.charge(DimStaticCall, 1)
			regs[in.Dst] = m.exec(in.Callee, callArgs)
		case ir.OpCallStatic:
			callArgs := make([]Value, len(in.Args))
			for i, a := range in.Args {
				callArgs[i] = regs[a]
			}
			m.counts.StaticCalls++
			m.charge(DimStaticCall, 1)
			regs[in.Dst] = m.exec(in.Callee, callArgs)
		case ir.OpCallMethod:
			recv := regs[in.Args[0]]
			if recv.Kind != KObj {
				m.fail(in.Pos, "method %s called on %s value", in.Method, recv.Kind)
			}
			target := recv.Obj.Class.LookupMethod(in.Method)
			if target == nil {
				m.fail(in.Pos, "class %s has no method %s", recv.Obj.Class.Name, in.Method)
			}
			if target.NumParams != len(in.Args)-1 {
				m.fail(in.Pos, "%s takes %d arguments, got %d", target.FullName(), target.NumParams, len(in.Args)-1)
			}
			m.counts.Dispatches++
			m.charge(DimDispatch, 1)
			// Touch the object header (the class pointer read the lookup
			// needs).
			m.prof.noteDispatch(m.mem(recv.Obj.Addr))
			callArgs := make([]Value, len(in.Args))
			for i, a := range in.Args {
				callArgs[i] = regs[a]
			}
			regs[in.Dst] = m.exec(target, callArgs)
		case ir.OpGetGlobal:
			regs[in.Dst] = m.globals[in.Global]
		case ir.OpSetGlobal:
			m.globals[in.Global] = regs[in.Args[0]]
		case ir.OpBuiltin:
			regs[in.Dst] = m.builtin(in, regs)
		case ir.OpJump:
			blk = fn.Blocks[in.Target]
			ip = 0
		case ir.OpBranch:
			if regs[in.Args[0]].Truthy() {
				blk = fn.Blocks[in.Target]
			} else {
				blk = fn.Blocks[in.Else]
			}
			ip = 0
		case ir.OpReturn:
			if len(in.Args) > 0 {
				return regs[in.Args[0]]
			}
			return NilValue()
		case ir.OpTrap:
			m.fail(in.Pos, "%s", in.S)
		default:
			m.fail(in.Pos, "unknown op %v", in.Op)
		}
	}
}

func (m *Machine) wantInt(in *ir.Instr, v Value) int64 {
	if v.Kind != KInt {
		m.fail(in.Pos, "expected int, got %s", v.Kind)
	}
	return v.I
}

// getField loads a field from an object or interior reference.
func (m *Machine) getField(in *ir.Instr, recv Value) Value {
	m.counts.Dereferences++
	switch recv.Kind {
	case KObj:
		slot := m.resolveSlot(in, recv.Obj.Class)
		m.charge(DimFieldAccess, 1)
		miss := m.mem(recv.Obj.SlotAddr(slot))
		m.prof.noteFieldAccess(recv.Obj, slot, false, miss)
		return recv.Obj.Slots[slot]
	case KInterior:
		rel := in.Field.Slot
		if rel < 0 || in.Field.Owner != nil {
			m.fail(in.Pos, "unspecialized field access %q on interior reference", in.Field.Name)
		}
		m.charge(DimFieldAccess, 1)
		a := recv.Arr
		if a.Parallel() {
			m.prof.noteElemAccess(a, m.mem(a.ColAddr(rel, recv.Base)))
			return a.Cols[rel][recv.Base]
		}
		m.prof.noteElemAccess(a, m.mem(a.SlotAddr(recv.Base+rel)))
		return a.Elems[recv.Base+rel]
	case KNil:
		m.fail(in.Pos, "field %s of nil", in.Field.Name)
	}
	m.fail(in.Pos, "field %s of %s value", in.Field.Name, recv.Kind)
	return Value{}
}

func (m *Machine) setField(in *ir.Instr, recv, v Value) {
	m.counts.Dereferences++
	switch recv.Kind {
	case KObj:
		slot := m.resolveSlot(in, recv.Obj.Class)
		m.charge(DimFieldAccess, 1)
		miss := m.mem(recv.Obj.SlotAddr(slot))
		m.prof.noteFieldAccess(recv.Obj, slot, true, miss)
		recv.Obj.Slots[slot] = v
		return
	case KInterior:
		rel := in.Field.Slot
		if rel < 0 || in.Field.Owner != nil {
			m.fail(in.Pos, "unspecialized field store %q on interior reference", in.Field.Name)
		}
		m.charge(DimFieldAccess, 1)
		a := recv.Arr
		if a.Parallel() {
			m.prof.noteElemAccess(a, m.mem(a.ColAddr(rel, recv.Base)))
			a.Cols[rel][recv.Base] = v
			return
		}
		m.prof.noteElemAccess(a, m.mem(a.SlotAddr(recv.Base+rel)))
		a.Elems[recv.Base+rel] = v
		return
	case KNil:
		m.fail(in.Pos, "store to field %s of nil", in.Field.Name)
	}
	m.fail(in.Pos, "store to field %s of %s value", in.Field.Name, recv.Kind)
}

// resolveSlot maps the instruction's field reference to a slot of class c.
// Slot-bound references (the optimizer's work) go straight to the slot;
// name-only references pay the dynamic lookup cost of the uniform model.
func (m *Machine) resolveSlot(in *ir.Instr, c *ir.Class) int {
	f := in.Field
	if f.Slot >= 0 && f.Owner != nil {
		if c.IsSubclassOf(f.Owner) {
			return f.Slot
		}
		// Bound to a different class version: fall back to by-name lookup.
	}
	m.counts.DynFieldLookups++
	m.charge(DimDynFieldExtra, 1)
	if s, ok := m.slotByName(c, f.Name); ok {
		return s
	}
	m.fail(in.Pos, "class %s has no field %s", c.Name, f.Name)
	return 0
}

func (m *Machine) checkIndex(in *ir.Instr, a *Array, i int64) int {
	if i < 0 || int(i) >= a.Length {
		m.fail(in.Pos, "array index %d out of range [0,%d)", i, a.Length)
	}
	return int(i)
}

func (m *Machine) arrGet(in *ir.Instr, av, iv Value) Value {
	if av.Kind != KArr {
		m.fail(in.Pos, "indexing a %s value", av.Kind)
	}
	a := av.Arr
	i := m.checkIndex(in, a, m.wantInt(in, iv))
	if a.Stride != 0 {
		m.fail(in.Pos, "plain load from inlined array (unspecialized access)")
	}
	m.counts.Dereferences++
	m.charge(DimArrayAccess, 1)
	m.prof.noteElemAccess(a, m.mem(a.SlotAddr(i)))
	return a.Elems[i]
}

func (m *Machine) arrSet(in *ir.Instr, av, iv, v Value) {
	if av.Kind != KArr {
		m.fail(in.Pos, "indexing a %s value", av.Kind)
	}
	a := av.Arr
	i := m.checkIndex(in, a, m.wantInt(in, iv))
	if a.Stride != 0 {
		m.fail(in.Pos, "plain store to inlined array (unspecialized access)")
	}
	m.counts.Dereferences++
	m.charge(DimArrayAccess, 1)
	m.prof.noteElemAccess(a, m.mem(a.SlotAddr(i)))
	a.Elems[i] = v
}

func (m *Machine) arrInterior(in *ir.Instr, av, iv Value) Value {
	if av.Kind != KArr {
		m.fail(in.Pos, "indexing a %s value", av.Kind)
	}
	a := av.Arr
	i := m.checkIndex(in, a, m.wantInt(in, iv))
	if a.Stride == 0 {
		m.fail(in.Pos, "interior reference into a plain array")
	}
	m.charge(DimArrayAccess, 1)
	if a.Parallel() {
		return InteriorValue(a, i)
	}
	return InteriorValue(a, i*a.Stride)
}

func (m *Machine) binop(in *ir.Instr, x, y Value) Value {
	op := ir.BinOp(in.Aux)
	m.charge(DimArith, 1)
	switch op {
	case ir.BinEq:
		return BoolValue(Identical(x, y))
	case ir.BinNe:
		return BoolValue(!Identical(x, y))
	}
	if x.Kind == KStr && y.Kind == KStr {
		switch op {
		case ir.BinAdd:
			return StrValue(x.S + y.S)
		case ir.BinLt:
			return BoolValue(x.S < y.S)
		case ir.BinLe:
			return BoolValue(x.S <= y.S)
		case ir.BinGt:
			return BoolValue(x.S > y.S)
		case ir.BinGe:
			return BoolValue(x.S >= y.S)
		}
		m.fail(in.Pos, "operator %s not defined on strings", op)
	}
	if !isNum(x) || !isNum(y) {
		m.fail(in.Pos, "operator %s on %s and %s", op, x.Kind, y.Kind)
	}
	if x.Kind == KInt && y.Kind == KInt {
		a, b := x.I, y.I
		switch op {
		case ir.BinAdd:
			return IntValue(a + b)
		case ir.BinSub:
			return IntValue(a - b)
		case ir.BinMul:
			return IntValue(a * b)
		case ir.BinDiv:
			if b == 0 {
				m.fail(in.Pos, "integer division by zero")
			}
			return IntValue(a / b)
		case ir.BinMod:
			if b == 0 {
				m.fail(in.Pos, "integer modulo by zero")
			}
			return IntValue(a % b)
		case ir.BinLt:
			return BoolValue(a < b)
		case ir.BinLe:
			return BoolValue(a <= b)
		case ir.BinGt:
			return BoolValue(a > b)
		case ir.BinGe:
			return BoolValue(a >= b)
		}
	}
	a, b := toF(x), toF(y)
	switch op {
	case ir.BinAdd:
		return FloatValue(a + b)
	case ir.BinSub:
		return FloatValue(a - b)
	case ir.BinMul:
		return FloatValue(a * b)
	case ir.BinDiv:
		return FloatValue(a / b)
	case ir.BinMod:
		return FloatValue(math.Mod(a, b))
	case ir.BinLt:
		return BoolValue(a < b)
	case ir.BinLe:
		return BoolValue(a <= b)
	case ir.BinGt:
		return BoolValue(a > b)
	case ir.BinGe:
		return BoolValue(a >= b)
	}
	m.fail(in.Pos, "unknown binary operator")
	return Value{}
}

func (m *Machine) unop(in *ir.Instr, x Value) Value {
	m.charge(DimArith, 1)
	switch ir.UnOp(in.Aux) {
	case ir.UnNeg:
		switch x.Kind {
		case KInt:
			return IntValue(-x.I)
		case KFloat:
			return FloatValue(-x.F)
		}
		m.fail(in.Pos, "negating a %s value", x.Kind)
	case ir.UnNot:
		return BoolValue(!x.Truthy())
	}
	m.fail(in.Pos, "unknown unary operator")
	return Value{}
}

func (m *Machine) builtin(in *ir.Instr, regs []Value) Value {
	m.counts.Builtins++
	m.charge(DimBuiltin, 1)
	b := ir.Builtin(in.Aux)
	arg := func(i int) Value { return regs[in.Args[i]] }
	switch b {
	case ir.BPrint:
		parts := make([]string, len(in.Args))
		for i := range in.Args {
			parts[i] = arg(i).String()
		}
		fmt.Fprintln(m.out, strings.Join(parts, " "))
		return NilValue()
	case ir.BSqrt:
		return FloatValue(math.Sqrt(m.wantNum(in, arg(0))))
	case ir.BFloor:
		return FloatValue(math.Floor(m.wantNum(in, arg(0))))
	case ir.BAbs:
		v := arg(0)
		switch v.Kind {
		case KInt:
			if v.I < 0 {
				return IntValue(-v.I)
			}
			return v
		case KFloat:
			return FloatValue(math.Abs(v.F))
		}
		m.fail(in.Pos, "abs of %s value", v.Kind)
	case ir.BMin, ir.BMax:
		x, y := arg(0), arg(1)
		if x.Kind == KInt && y.Kind == KInt {
			if (b == ir.BMin) == (x.I < y.I) {
				return x
			}
			return y
		}
		a, c := m.wantNum(in, x), m.wantNum(in, y)
		if (b == ir.BMin) == (a < c) {
			return FloatValue(a)
		}
		return FloatValue(c)
	case ir.BLen:
		v := arg(0)
		switch v.Kind {
		case KArr:
			return IntValue(int64(v.Arr.Length))
		case KStr:
			return IntValue(int64(len(v.S)))
		}
		m.fail(in.Pos, "len of %s value", v.Kind)
	case ir.BIntOf:
		v := arg(0)
		switch v.Kind {
		case KInt:
			return v
		case KFloat:
			return IntValue(int64(v.F))
		}
		m.fail(in.Pos, "intof of %s value", v.Kind)
	case ir.BFloatOf:
		return FloatValue(m.wantNum(in, arg(0)))
	case ir.BAssert:
		if !arg(0).Truthy() {
			m.fail(in.Pos, "assertion failed")
		}
		return NilValue()
	case ir.BStrCat:
		x, y := arg(0), arg(1)
		return StrValue(x.String() + y.String())
	case ir.BXor:
		x, y := arg(0), arg(1)
		if x.Kind != KInt || y.Kind != KInt {
			m.fail(in.Pos, "bxor needs ints, got %s and %s", x.Kind, y.Kind)
		}
		return IntValue(x.I ^ y.I)
	}
	m.fail(in.Pos, "unknown builtin")
	return Value{}
}

func (m *Machine) wantNum(in *ir.Instr, v Value) float64 {
	if !isNum(v) {
		m.fail(in.Pos, "expected number, got %s", v.Kind)
	}
	return toF(v)
}
