package vm_test

// Property tests: the VM's arithmetic must agree with Go's on random
// operands, and identity must be an equivalence relation.

import (
	"fmt"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

// evalBinop runs "print(<a> <op> <b>)" through the whole pipeline and
// returns the printed text.
func evalBinop(t *testing.T, a, op, b string) string {
	t.Helper()
	return strings.TrimSpace(run(t, fmt.Sprintf("func main() { print(%s %s %s); }", a, op, b)))
}

func goFloatString(f float64) string {
	// Mirror vm.formatFloat.
	return fmt.Sprintf("%.10g", f)
}

// floatLit renders f so it lexes as a float literal (a bare "2897" would
// parse as an int and take the integer-division path).
func floatLit(f float64) string {
	s := goFloatString(f)
	if !strings.ContainsAny(s, ".eE") {
		s += ".0"
	}
	return s
}

func TestIntArithmeticMatchesGo(t *testing.T) {
	ops := []struct {
		op string
		fn func(a, b int64) (int64, bool)
	}{
		{"+", func(a, b int64) (int64, bool) { return a + b, true }},
		{"-", func(a, b int64) (int64, bool) { return a - b, true }},
		{"*", func(a, b int64) (int64, bool) { return a * b, true }},
		{"/", func(a, b int64) (int64, bool) {
			if b == 0 {
				return 0, false
			}
			return a / b, true
		}},
		{"%", func(a, b int64) (int64, bool) {
			if b == 0 {
				return 0, false
			}
			return a % b, true
		}},
	}
	for _, o := range ops {
		o := o
		f := func(a16, b16 int16) bool {
			a, b := int64(a16), int64(b16)
			want, ok := o.fn(a, b)
			if !ok {
				return true // division by zero handled separately
			}
			got := evalBinop(t, fmt.Sprint(a), o.op, fmt.Sprintf("(%d)", b))
			return got == fmt.Sprint(want)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
			t.Errorf("op %s: %v", o.op, err)
		}
	}
}

func TestIntComparisonsMatchGo(t *testing.T) {
	f := func(a8, b8 int8) bool {
		a, b := int64(a8), int64(b8)
		checks := []struct {
			op   string
			want bool
		}{
			{"<", a < b}, {"<=", a <= b}, {">", a > b}, {">=", a >= b},
			{"==", a == b}, {"!=", a != b},
		}
		for _, c := range checks {
			got := evalBinop(t, fmt.Sprint(a), c.op, fmt.Sprintf("(%d)", b))
			if got != fmt.Sprint(c.want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestFloatArithmeticMatchesGo(t *testing.T) {
	f := func(an, bn int16) bool {
		a := float64(an) / 8
		b := float64(bn)/8 + 0.5 // avoid zero divisors most of the time
		if b == 0 {
			return true
		}
		checks := []struct {
			op   string
			want float64
		}{
			{"+", a + b}, {"-", a - b}, {"*", a * b}, {"/", a / b},
		}
		for _, c := range checks {
			got := evalBinop(t, floatLit(a), c.op, fmt.Sprintf("(%s)", floatLit(b)))
			if got != goFloatString(c.want) {
				t.Logf("%v %s %v: got %s want %s", a, c.op, b, got, goFloatString(c.want))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMixedArithmeticPromotes(t *testing.T) {
	if got := evalBinop(t, "1", "+", "2.5"); got != "3.5" {
		t.Errorf("1 + 2.5 = %s", got)
	}
	if got := evalBinop(t, "5", "/", "2.0"); got != "2.5" {
		t.Errorf("5 / 2.0 = %s", got)
	}
	if got := evalBinop(t, "7.0", "%", "2"); got != goFloatString(math.Mod(7, 2)) {
		t.Errorf("7.0 %% 2 = %s", got)
	}
}

func TestBxorMatchesGo(t *testing.T) {
	f := func(a, b uint16) bool {
		got := strings.TrimSpace(run(t, fmt.Sprintf("func main() { print(bxor(%d, %d)); }", a, b)))
		return got == fmt.Sprint(a^b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestIdentityIsEquivalenceOnObjects(t *testing.T) {
	src := `
class C { v; def init(v) { self.v = v; } }
func main() {
  var a = new C(1);
  var b = new C(1);
  var c = a;
  print(a == a, a == c, c == a);         // reflexive + symmetric
  print(a == b, b == a);                 // distinct objects
  print((a == c) && (c == a) && (a == a)); // transitivity witness
}
`
	wantOut(t, src, "true true true\nfalse false\ntrue\n")
}

func TestTruthinessTable(t *testing.T) {
	src := `
class C { x; }
func main() {
  if (0) { print("0t"); } else { print("0f"); }
  if (0.0) { print("ft"); } else { print("ff"); }
  if ("") { print("st"); } else { print("sf"); }
  if (nil) { print("nt"); } else { print("nf"); }
  if (new C()) { print("ot"); } else { print("of"); }
  if (-1) { print("mt"); } else { print("mf"); }
}
`
	// Empty strings are truthy (only nil, false, and numeric zero are
	// falsy).
	wantOut(t, src, "0f\nff\nst\nnf\not\nmt\n")
}
