// Package obs is oicd's service observability layer: request-scoped
// context (request IDs honored or minted per request), per-request trace
// span trees recorded into a bounded ring buffer, log-bucketed latency
// histograms keyed by {endpoint, cache status, engine, session tier},
// structured access logging via log/slog, and the debug surface that
// exposes all of it (GET /debug/requests as JSON, per-request Chrome
// traces for Perfetto, /metrics in Prometheus text exposition format,
// and net/http/pprof on a separate listener).
//
// The design lifts the compiler-observability discipline of
// internal/trace (DESIGN.md §9) to the service layer: tracing a request
// costs a handful of span records, the access-log call is a single nil
// check when logging is off (pinned at zero allocations by a test), and
// nothing here is on any compile or VM hot path — the middleware brackets
// the handler, it never interleaves with it.
package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sync"
	"time"

	"objinline/internal/trace"
)

// Service-level span phases, joining the compiler's phase names on a
// request's timeline. Values are stable identifiers: they appear in
// /debug/requests trace exports.
const (
	// SpanHTTP covers the whole request, middleware to middleware.
	SpanHTTP trace.Phase = "http"
	// SpanAdmission is time spent queued for a worker token (only
	// recorded when the fast path missed and the request actually waited).
	SpanAdmission trace.Phase = "admission"
	// SpanAwait is a coalesced request waiting on another request's
	// in-flight compilation or native run.
	SpanAwait trace.Phase = "await"
	// SpanNative covers a native-engine build-and-run execution.
	SpanNative trace.Phase = "native"
	// SpanSession covers a session create's cold compile; SpanPatch one
	// incremental patch (its tier lands on the span as a counter).
	SpanSession trace.Phase = "session"
	SpanPatch   trace.Phase = "patch"
	// SpanForward covers proxying a request to its key's owner instance
	// on the cluster ring; SpanHedge marks that a hedged read fired to
	// the next replica while the primary forward was still in flight.
	SpanForward trace.Phase = "forward"
	SpanHedge   trace.Phase = "hedge"
)

// TierCounterPrefix marks span counters that carry cumulative
// session-tier totals (e.g. "tier_patch"). The Chrome trace export folds
// counters with this prefix into one multi-series "session/tiers" track
// so Perfetto shows the incremental-tier mix over time.
const TierCounterPrefix = "tier_"

// NewRequestID mints a 64-bit random request id (16 hex chars). Random,
// not sequential: ids must be unguessable enough that /debug/requests
// lookups can't be enumerated and log correlation across instances never
// collides in practice.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Platform entropy failure; ids are correlation keys, not secrets
		// of record, so a fixed fallback beats crashing the request path.
		return "rand-unavailable"
	}
	return hex.EncodeToString(b[:])
}

// maxRequestIDLen bounds client-supplied ids so a hostile header cannot
// bloat logs or the ring buffer.
const maxRequestIDLen = 64

// SanitizeRequestID validates a client-supplied X-Oicd-Request-Id:
// printable ASCII without spaces, at most maxRequestIDLen bytes.
// Anything else returns "" and the server mints its own.
func SanitizeRequestID(id string) string {
	if id == "" || len(id) > maxRequestIDLen {
		return ""
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if c <= ' ' || c > '~' || c == '"' {
			return ""
		}
	}
	return id
}

// Request is one in-flight request's observability state, carried in the
// request context so handlers deep in the call chain (admission, the
// compile leader, the session patch path) can annotate it. Fields are
// written by the handler goroutine and read by the middleware after the
// handler returns — same goroutine, so no lock.
type Request struct {
	// ID is the request id echoed in X-Oicd-Request-Id.
	ID string
	// Start is when the middleware first saw the request.
	Start time.Time
	// Sink records the request's span tree (nil when request tracing is
	// disabled; every annotation point is nil-safe through trace.Sink).
	Sink *trace.Sink

	// Cache is the compile-cache status ("hit"/"miss"), Engine the
	// execution tier of a run, Tier the session tier that absorbed a
	// patch; empty when not applicable.
	Cache  string
	Engine string
	Tier   string
	// QueueWait accumulates time spent waiting for worker tokens.
	QueueWait time.Duration
}

type requestKey struct{}

// WithRequest returns ctx carrying req.
func WithRequest(ctx context.Context, req *Request) context.Context {
	return context.WithValue(ctx, requestKey{}, req)
}

// FromContext returns the request's observability state, or nil when the
// context does not carry one (library use outside the server).
func FromContext(ctx context.Context) *Request {
	req, _ := ctx.Value(requestKey{}).(*Request)
	return req
}

// RequestRecord is one completed request as the ring buffer keeps it and
// GET /debug/requests serves it. Events (the span tree) are exported
// through the per-request trace endpoint rather than inlined in the
// listing — a listing is a scan, a trace is a drill-down.
type RequestRecord struct {
	ID     string    `json:"id"`
	Time   time.Time `json:"time"`
	Method string    `json:"method"`
	Route  string    `json:"route"`
	Path   string    `json:"path"`
	Status int       `json:"status"`

	Cache  string `json:"cache,omitempty"`
	Engine string `json:"engine,omitempty"`
	Tier   string `json:"tier,omitempty"`

	QueueWaitNanos int64 `json:"queue_wait_ns"`
	DurationNanos  int64 `json:"duration_ns"`
	Bytes          int64 `json:"bytes"`

	Events []trace.Event `json:"-"`
}

// Ring is a bounded buffer of the most recent completed requests. Fixed
// capacity, overwrite-oldest: the introspection surface must never be
// the memory leak it exists to find.
type Ring struct {
	mu    sync.Mutex
	buf   []*RequestRecord
	next  int
	total uint64
}

// NewRing returns a ring holding the last n requests (n >= 1).
func NewRing(n int) *Ring {
	if n < 1 {
		n = 1
	}
	return &Ring{buf: make([]*RequestRecord, 0, n)}
}

// Add records one completed request, evicting the oldest at capacity.
func (r *Ring) Add(rec *RequestRecord) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.total++
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, rec)
		return
	}
	r.buf[r.next] = rec
	r.next = (r.next + 1) % cap(r.buf)
}

// Snapshot returns the buffered records, most recent first.
func (r *Ring) Snapshot() []*RequestRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*RequestRecord, 0, len(r.buf))
	// Entries [next, len) are older than [0, next) once the ring wraps.
	for i := len(r.buf) - 1; i >= 0; i-- {
		out = append(out, r.buf[(r.next+i)%len(r.buf)])
	}
	return out
}

// Get returns the record with the given id, or nil if it has been
// evicted (or never existed).
func (r *Ring) Get(id string) *RequestRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, rec := range r.buf {
		if rec.ID == id {
			return rec
		}
	}
	return nil
}

// Total counts every record ever added (eviction does not decrement),
// so tests can assert eviction happened.
func (r *Ring) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}
