package obs

import (
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"

	"objinline/internal/trace"
)

// RequestIDHeader is the request-id header, honored on requests (after
// sanitization) and echoed on every response, error paths included.
const RequestIDHeader = "X-Oicd-Request-Id"

// Options configures an observability layer.
type Options struct {
	// RingEntries bounds the request ring buffer (and with it how far
	// back /debug/requests can see). 0 means the default (128); negative
	// disables per-request tracing and the ring entirely — request ids,
	// histograms, and access logs still work.
	RingEntries int
	// Logger receives one structured access-log record per request at
	// Info level. nil disables access logging; the disabled path is a
	// single nil check and allocates nothing.
	Logger *slog.Logger
}

// DefaultRingEntries is how many completed requests the ring keeps when
// Options.RingEntries is 0.
const DefaultRingEntries = 128

// Obs is one server's observability state: the latency histogram vec,
// the request ring, and the access logger. Create with New, wrap the
// server's mux with Middleware, and mount the debug handlers.
type Obs struct {
	ring    *Ring // nil when tracing is disabled
	latency *HistogramVec
	log     *slog.Logger
}

// New builds an observability layer.
func New(opts Options) *Obs {
	o := &Obs{latency: NewHistogramVec(), log: opts.Logger}
	if opts.RingEntries >= 0 {
		n := opts.RingEntries
		if n == 0 {
			n = DefaultRingEntries
		}
		o.ring = NewRing(n)
	}
	return o
}

// Latency exposes the histogram vec (the server's /metrics renders it).
func (o *Obs) Latency() *HistogramVec { return o.latency }

// responseWriter captures the status code and body size the handler
// produced, so the middleware can label histograms and logs after the
// fact.
type responseWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *responseWriter) WriteHeader(status int) {
	if w.status == 0 {
		w.status = status
	}
	w.ResponseWriter.WriteHeader(status)
}

func (w *responseWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// orNone maps an unset label field to the bounded "none" value.
func orNone(s string) string {
	if s == "" {
		return "none"
	}
	return s
}

// routeOf returns the bounded endpoint label for a handled request: the
// mux route pattern without its method prefix ("POST /v1/compile" →
// "/v1/compile"), or "other" for unmatched requests, so histogram
// cardinality never tracks raw client paths.
func routeOf(r *http.Request) string {
	pat := r.Pattern
	if pat == "" {
		return "other"
	}
	if i := strings.IndexByte(pat, ' '); i >= 0 {
		pat = pat[i+1:]
	}
	return pat
}

// Middleware wraps next with the full request observability bracket:
// request-id assignment and echo, the request's root span, latency
// histogram observation, ring-buffer recording, and the access log.
func (o *Obs) Middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := SanitizeRequestID(r.Header.Get(RequestIDHeader))
		if id == "" {
			id = NewRequestID()
		}
		// Set the echo header before the handler runs: every write path —
		// 200, 422, 429 shed, 504 deadline, 500 internal — then carries it.
		w.Header().Set(RequestIDHeader, id)

		req := &Request{ID: id, Start: start}
		var span trace.Span
		if o.ring != nil {
			req.Sink = &trace.Sink{}
			span = req.Sink.Start(SpanHTTP)
		}
		rw := &responseWriter{ResponseWriter: w}
		// Keep the derived request: the mux sets r.Pattern on the request
		// it serves, and routeOf must read it after the handler returns.
		r = r.WithContext(WithRequest(r.Context(), req))
		next.ServeHTTP(rw, r)
		span.End()

		dur := time.Since(start)
		route := routeOf(r)
		o.latency.Observe(Labels{
			Endpoint: route,
			Cache:    orNone(req.Cache),
			Engine:   orNone(req.Engine),
			Tier:     orNone(req.Tier),
		}, dur)
		if rw.status == 0 {
			// Handler wrote nothing; net/http will send 200 on return.
			rw.status = http.StatusOK
		}
		rec := &RequestRecord{
			ID:             id,
			Time:           start,
			Method:         r.Method,
			Route:          route,
			Path:           r.URL.Path,
			Status:         rw.status,
			Cache:          req.Cache,
			Engine:         req.Engine,
			Tier:           req.Tier,
			QueueWaitNanos: int64(req.QueueWait),
			DurationNanos:  int64(dur),
			Bytes:          rw.bytes,
		}
		if o.ring != nil {
			rec.Events = req.Sink.Events()
			o.ring.Add(rec)
		}
		o.logAccess(rec)
	})
}

// logAccess emits one structured access-log record. With logging
// disabled (nil logger) this is a nil check and nothing else — the
// zero-alloc contract is pinned by TestLogAccessDisabledAllocs.
func (o *Obs) logAccess(rec *RequestRecord) {
	lg := o.log
	if lg == nil {
		return
	}
	ctx := context.Background()
	if !lg.Enabled(ctx, slog.LevelInfo) {
		return
	}
	lg.LogAttrs(ctx, slog.LevelInfo, "request",
		slog.String("request_id", rec.ID),
		slog.String("method", rec.Method),
		slog.String("route", rec.Route),
		slog.Int("status", rec.Status),
		slog.String("cache", orNone(rec.Cache)),
		slog.String("engine", orNone(rec.Engine)),
		slog.String("tier", orNone(rec.Tier)),
		slog.Int64("queue_wait_ns", rec.QueueWaitNanos),
		slog.Int64("duration_ns", rec.DurationNanos),
		slog.Int64("bytes", rec.Bytes),
	)
}

// requestsResponse is the GET /debug/requests body.
type requestsResponse struct {
	Total    uint64           `json:"total"`
	Requests []*RequestRecord `json:"requests"`
}

// ServeRequests is GET /debug/requests: the ring's records, most recent
// first, as JSON.
func (o *Obs) ServeRequests(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if o.ring == nil {
		json.NewEncoder(w).Encode(requestsResponse{Requests: []*RequestRecord{}})
		return
	}
	resp := requestsResponse{Total: o.ring.Total(), Requests: o.ring.Snapshot()}
	if resp.Requests == nil {
		resp.Requests = []*RequestRecord{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(resp)
}

// ServeRequestTrace is GET /debug/requests/{id}/trace: one request's
// span tree as Chrome trace-event JSON, loadable in Perfetto.
func (o *Obs) ServeRequestTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var rec *RequestRecord
	if o.ring != nil {
		rec = o.ring.Get(id)
	}
	if rec == nil {
		http.Error(w, "unknown request id "+id+" (evicted from the ring, or never seen)", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	trace.WriteChromeTracks(w, []trace.Track{{
		Name:   rec.ID + " " + rec.Method + " " + rec.Route,
		Tid:    1,
		Events: rec.Events,
	}})
}

// ServeRequestsTrace is GET /debug/requests/trace: every buffered
// request as one combined Chrome trace, one track per request, placed on
// a shared timeline so request overlap (and the session-tier counter
// mix) is visible over time.
func (o *Obs) ServeRequestsTrace(w http.ResponseWriter, r *http.Request) {
	var recs []*RequestRecord
	if o.ring != nil {
		recs = o.ring.Snapshot()
	}
	if len(recs) == 0 {
		http.Error(w, "no requests buffered", http.StatusNotFound)
		return
	}
	// Oldest first, offset onto the earliest record's timeline.
	epoch := recs[len(recs)-1].Time
	tracks := make([]trace.Track, 0, len(recs))
	for i := len(recs) - 1; i >= 0; i-- {
		rec := recs[i]
		tracks = append(tracks, trace.Track{
			Name:   rec.ID + " " + rec.Method + " " + rec.Route,
			Tid:    len(recs) - i,
			Offset: int64(rec.Time.Sub(epoch)),
			Events: rec.Events,
		})
	}
	w.Header().Set("Content-Type", "application/json")
	trace.WriteChromeTracks(w, tracks)
}

// Mount registers the introspection endpoints on mux. Safe for the
// serving mux: everything here is bounded reads of in-memory state.
func (o *Obs) Mount(mux *http.ServeMux) {
	mux.HandleFunc("GET /debug/requests", o.ServeRequests)
	mux.HandleFunc("GET /debug/requests/trace", o.ServeRequestsTrace)
	mux.HandleFunc("GET /debug/requests/{id}/trace", o.ServeRequestTrace)
}

// DebugHandler returns the separate debug surface: net/http/pprof plus
// the request-introspection endpoints. Serve it on its own listener
// (oicd's -debug-addr) — pprof can block and dump goroutine stacks, so
// it must never ship on the serving port by accident.
func (o *Obs) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	o.Mount(mux)
	return mux
}
