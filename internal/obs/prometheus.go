package obs

// Prometheus text exposition (version 0.0.4), written by hand: the
// repository's no-new-dependencies rule means no client_golang, and the
// format is three line shapes — `# HELP`, `# TYPE`, and
// `name{labels} value` — which a scraper, the CI well-formedness check,
// and the serve benchmark's parser all agree on. Output is fully
// deterministic for a given state: metrics sort by name, histogram
// cells by label tuple.

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// MetricNamespace prefixes every exposed series.
const MetricNamespace = "oicd"

// CounterValue is one flat server counter or gauge handed to
// WritePrometheus (the server collects them from its expvar map).
type CounterValue struct {
	Name  string
	Value float64
	// Gauge marks point-in-time values (queue depth, cache entries);
	// everything else is exposed as a counter.
	Gauge bool
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// formatValue renders a sample value. Integral values print without a
// decimal point (matching what scrape parsers and the CI regex expect);
// non-integral values use the shortest round-trip form.
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders the flat counters plus the latency histogram
// vec in exposition format. The histogram is exposed as
// oicd_request_duration_seconds with labels
// {endpoint, cache, engine, tier} and the fixed log-spaced `le`
// boundaries of BucketBounds.
func WritePrometheus(w io.Writer, counters []CounterValue, latency *HistogramVec) {
	sorted := make([]CounterValue, len(counters))
	copy(sorted, counters)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	for _, c := range sorted {
		name := MetricNamespace + "_" + c.Name
		kind := "counter"
		if c.Gauge {
			kind = "gauge"
		}
		fmt.Fprintf(w, "# HELP %s %s\n", name, counterHelp(c.Name))
		fmt.Fprintf(w, "# TYPE %s %s\n", name, kind)
		fmt.Fprintf(w, "%s %s\n", name, formatValue(c.Value))
	}

	if latency == nil {
		return
	}
	cells := latency.Snapshots()
	if len(cells) == 0 {
		return
	}
	name := MetricNamespace + "_request_duration_seconds"
	fmt.Fprintf(w, "# HELP %s Request latency by endpoint, cache status, engine, and session tier.\n", name)
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	bounds := BucketBounds()
	for _, cell := range cells {
		l := cell.Labels
		base := fmt.Sprintf(`endpoint="%s",cache="%s",engine="%s",tier="%s"`,
			escapeLabel(l.Endpoint), escapeLabel(l.Cache), escapeLabel(l.Engine), escapeLabel(l.Tier))
		var cum uint64
		for i, b := range bounds {
			cum += cell.Snapshot.Counts[i]
			fmt.Fprintf(w, "%s_bucket{%s,le=\"%s\"} %d\n",
				name, base, formatValue(b.Seconds()), cum)
		}
		cum += cell.Snapshot.Counts[len(bounds)]
		fmt.Fprintf(w, "%s_bucket{%s,le=\"+Inf\"} %d\n", name, base, cum)
		fmt.Fprintf(w, "%s_sum{%s} %s\n", name, base,
			formatValue(float64(cell.Snapshot.SumNanos)/1e9))
		fmt.Fprintf(w, "%s_count{%s} %d\n", name, base, cell.Snapshot.Count)
	}
}

// counterHelp gives each flat counter a stable one-line description;
// unknown names get a generic line so the exposition never breaks on a
// new counter.
func counterHelp(name string) string {
	if h, ok := counterHelpText[name]; ok {
		return h
	}
	return "oicd server counter " + name + "."
}

var counterHelpText = map[string]string{
	"requests_total":            "HTTP requests received.",
	"compiles_total":            "Compilations executed (cache misses that ran).",
	"runs_total":                "VM executions.",
	"native_runs_total":         "Native build-and-run executions.",
	"shed_total":                "Requests shed with 429 (worker queue full).",
	"deadline_exceeded_total":   "Requests canceled by their deadline.",
	"inflight":                  "Requests currently being served.",
	"workers_busy":              "Worker-pool tokens currently held.",
	"queue_depth":               "Requests currently queued for a worker token.",
	"cache_entries":             "Compile result-cache entries resident.",
	"cache_hits_total":          "Compile result-cache hits.",
	"cache_misses_total":        "Compile result-cache misses.",
	"cache_evictions_total":     "Compile result-cache LRU evictions.",
	"native_cache_entries":      "Native-run result-cache entries resident.",
	"native_cache_hits_total":   "Native-run result-cache hits.",
	"native_cache_misses_total": "Native-run result-cache misses.",
	"sessions_active":           "Incremental sessions resident.",
	"sessions_created_total":    "Incremental sessions created.",
	"session_patches_total":     "Session patches absorbed.",
	"session_evictions_total":   "Sessions evicted by the LRU bound.",
	"session_expirations_total": "Sessions expired by the idle TTL.",

	// Cluster tier.
	"cache_bytes":                    "Compile result-cache resident body bytes.",
	"native_cache_bytes":             "Native-run result-cache resident body bytes.",
	"forwards_total":                 "Requests forwarded to the key's ring owner.",
	"forward_errors_total":           "Forward attempts that failed (network or peer error).",
	"forward_local_fallback_total":   "Forwards abandoned in favor of local compute.",
	"hedges_total":                   "Hedged second requests launched after the p95 delay.",
	"hedge_wins_total":               "Hedged requests that answered before the primary.",
	"disk_upgrades_total":            "Disk-seeded cache entries recompiled on demand.",
	"disk_wal_bytes":                 "Persistent cache write-ahead log size on disk.",
	"disk_snapshot_bytes":            "Persistent cache snapshot size on disk.",
	"disk_appends_total":             "Records appended to the persistent cache WAL.",
	"disk_replayed_total":            "Records replayed from disk at boot.",
	"disk_corrupt_tails_total":       "Corrupt WAL tails detected and truncated.",
	"disk_compactions_total":         "Persistent cache compactions completed.",
	"cluster_peers_up":               "Cluster peers currently passing health probes.",
	"cluster_peers_total":            "Cluster peers configured.",
	"cluster_transitions_total":      "Cluster peer up/down transitions observed.",
	"native_batch_invocations_total": "Go toolchain invocations by the native build batcher.",
	"native_batched_programs_total":  "Programs built through shared batched invocations.",
}
