package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestBucketIndex(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{-time.Second, 0},
		{time.Microsecond, 0},
		{10 * time.Microsecond, 0},
		{10*time.Microsecond + 1, 1},
		{20 * time.Microsecond, 1},
		{40 * time.Microsecond, 2},
		{41 * time.Microsecond, 3},
		{histMinBound << (histBounds - 1), histBounds - 1},
		{(histMinBound << (histBounds - 1)) + 1, histBounds},
		{24 * time.Hour, histBounds},
	}
	for _, c := range cases {
		if got := bucketIndex(c.d); got != c.want {
			t.Errorf("bucketIndex(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}

func TestBucketBoundsMatchIndex(t *testing.T) {
	bounds := BucketBounds()
	if len(bounds) != histBounds {
		t.Fatalf("got %d bounds, want %d", len(bounds), histBounds)
	}
	for i, b := range bounds {
		// A value exactly at a boundary must land in that boundary's bucket.
		if got := bucketIndex(b); got != i {
			t.Errorf("bucketIndex(bound[%d]=%v) = %d", i, b, got)
		}
	}
}

// TestHistogramConcurrent hammers one histogram from many goroutines and
// checks the count/sum/bucket invariants hold once writers quiesce. Run
// under -race this also proves the lock-free Observe path is sound.
func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(time.Duration(w*i%5000) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*perWorker {
		t.Errorf("count = %d, want %d", s.Count, workers*perWorker)
	}
	var bucketSum uint64
	for _, c := range s.Counts {
		bucketSum += c
	}
	if bucketSum != s.Count {
		t.Errorf("bucket sum %d != count %d", bucketSum, s.Count)
	}
	if s.SumNanos <= 0 {
		t.Errorf("sum = %d, want > 0", s.SumNanos)
	}
}

func TestQuantile(t *testing.T) {
	var h Histogram
	if q := h.Snapshot().Quantile(0.5); q != 0 {
		t.Errorf("empty histogram p50 = %v, want 0", q)
	}
	// 100 observations at 1ms: every quantile must land within the
	// bucket that contains 1ms (640µs..1.28ms).
	for i := 0; i < 100; i++ {
		h.Observe(time.Millisecond)
	}
	s := h.Snapshot()
	for _, q := range []float64{0.5, 0.95, 0.99} {
		got := s.Quantile(q)
		lo, hi := 640*time.Microsecond, 1280*time.Microsecond
		if got < lo || got > hi {
			t.Errorf("p%v = %v, want within bucket [%v, %v]", q*100, got, lo, hi)
		}
	}
	// Monotonicity across quantiles of a mixed distribution.
	var m Histogram
	for i := 1; i <= 1000; i++ {
		m.Observe(time.Duration(i) * 100 * time.Microsecond)
	}
	ms := m.Snapshot()
	p50, p95, p99 := ms.Quantile(0.5), ms.Quantile(0.95), ms.Quantile(0.99)
	if !(p50 <= p95 && p95 <= p99) {
		t.Errorf("quantiles not monotone: p50=%v p95=%v p99=%v", p50, p95, p99)
	}
	// Interpolated estimates must sit within 2x of the true order
	// statistic (the documented bucket-resolution bound).
	trueP50 := 500 * 100 * time.Microsecond
	if p50 > 2*trueP50 || p50 < trueP50/2 {
		t.Errorf("p50 = %v, true %v: outside the 2x bound", p50, trueP50)
	}
}

func TestQuantileOverflowClamps(t *testing.T) {
	var h Histogram
	h.Observe(300 * time.Hour)
	want := histMinBound << (histBounds - 1)
	if got := h.Snapshot().Quantile(0.99); got != want {
		t.Errorf("overflow p99 = %v, want clamp to %v", got, want)
	}
}

// TestQuantileFromScrapeMatchesSnapshot checks the scrape-side estimator
// agrees with the server-side one on the same data — the property the
// serve benchmark's comparison rests on.
func TestQuantileFromScrapeMatchesSnapshot(t *testing.T) {
	var h Histogram
	for i := 1; i <= 500; i++ {
		h.Observe(time.Duration(i) * 37 * time.Microsecond)
	}
	s := h.Snapshot()

	bounds := BucketBounds()
	les := make([]float64, 0, numBuckets)
	cum := make([]uint64, 0, numBuckets)
	var running uint64
	for i, b := range bounds {
		running += s.Counts[i]
		les = append(les, b.Seconds())
		cum = append(cum, running)
	}
	running += s.Counts[histBounds]
	les = append(les, math.Inf(1))
	cum = append(cum, running)

	for _, q := range []float64{0.5, 0.95, 0.99} {
		want := s.Quantile(q)
		got := QuantileFromScrape(les, cum, q)
		diff := want - got
		if diff < 0 {
			diff = -diff
		}
		// Identical interpolation over float seconds vs integer nanos:
		// tolerate rounding only.
		if diff > time.Microsecond {
			t.Errorf("q=%v: scrape %v vs snapshot %v", q, got, want)
		}
	}
}

func TestQuantileFromScrapeDegenerate(t *testing.T) {
	if got := QuantileFromScrape(nil, nil, 0.5); got != 0 {
		t.Errorf("empty scrape = %v", got)
	}
	if got := QuantileFromScrape([]float64{0.1}, []uint64{0}, 0.5); got != 0 {
		t.Errorf("zero-count scrape = %v", got)
	}
	if got := QuantileFromScrape([]float64{0.1, 0.2}, []uint64{1}, 0.5); got != 0 {
		t.Errorf("mismatched lengths = %v", got)
	}
}

func TestHistogramVec(t *testing.T) {
	v := NewHistogramVec()
	a := Labels{Endpoint: "/v1/compile", Cache: "hit", Engine: "none", Tier: "none"}
	b := Labels{Endpoint: "/v1/compile", Cache: "miss", Engine: "none", Tier: "none"}
	c := Labels{Endpoint: "/v1/run", Cache: "hit", Engine: "vm", Tier: "none"}
	v.Observe(a, time.Millisecond)
	v.Observe(a, time.Millisecond)
	v.Observe(b, 10*time.Millisecond)
	v.Observe(c, time.Second)

	if got := v.Get(a).Snapshot().Count; got != 2 {
		t.Errorf("cell a count = %d, want 2", got)
	}
	snaps := v.Snapshots()
	if len(snaps) != 3 {
		t.Fatalf("got %d cells, want 3", len(snaps))
	}
	// Deterministic order: endpoint, then cache.
	if snaps[0].Labels != a || snaps[1].Labels != b || snaps[2].Labels != c {
		t.Errorf("snapshot order = %+v", snaps)
	}
	// Endpoint aggregates across the other labels.
	if got := v.Endpoint("/v1/compile").Count; got != 3 {
		t.Errorf("endpoint aggregate count = %d, want 3", got)
	}
	if got := v.Endpoint("/nope").Count; got != 0 {
		t.Errorf("unknown endpoint count = %d", got)
	}
}

func TestHistogramVecConcurrent(t *testing.T) {
	v := NewHistogramVec()
	labels := []Labels{
		{Endpoint: "/v1/compile", Cache: "hit"},
		{Endpoint: "/v1/compile", Cache: "miss"},
		{Endpoint: "/v1/run", Engine: "vm"},
		{Endpoint: "/v1/run", Engine: "native"},
	}
	const workers = 8
	const perWorker = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				v.Observe(labels[(w+i)%len(labels)], time.Millisecond)
			}
		}()
	}
	wg.Wait()
	var total uint64
	for _, s := range v.Snapshots() {
		total += s.Snapshot.Count
	}
	if total != workers*perWorker {
		t.Errorf("total observations = %d, want %d", total, workers*perWorker)
	}
}
