package obs

// Log-bucketed latency histograms. The service-level counterpart of the
// compiler's phase tracing: every request's end-to-end latency lands in
// one histogram cell keyed by {endpoint, cache status, engine, session
// tier}, cheap enough to run on every request (atomic bucket increments,
// lock-striped label lookup) and rich enough to answer "what is p99 for
// warm compile hits" without a client-side measurement.
//
// Buckets are fixed at construction: powers of two from 10µs up, so two
// histograms are always mergeable and the Prometheus exposition's `le`
// boundaries never move between scrapes. The price is bounded quantile
// resolution — an estimate is exact to its bucket and linearly
// interpolated within it, so it can sit up to one bucket width (2×) off
// the true order statistic. The serve benchmark's server-vs-client
// comparison accounts for exactly that.

import (
	"hash/fnv"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// histMinBound is the first bucket boundary. Warm cache hits on modern
// hardware land around tens of microseconds, so the scale starts there.
const histMinBound = 10 * time.Microsecond

// histBounds is the number of finite bucket boundaries: 10µs × 2^i for
// i in [0, histBounds). The last finite boundary is ~2.8 minutes, past
// the server's maximum request deadline, so the overflow bucket is
// reserved for clock anomalies rather than real traffic.
const histBounds = 25

// numBuckets counts the histogram's cells: one per finite boundary plus
// the +Inf overflow.
const numBuckets = histBounds + 1

// BucketBounds returns the finite bucket boundaries, smallest first.
// Shared by the exposition writer and its consumers (the serve benchmark
// parses a scrape back into these).
func BucketBounds() []time.Duration {
	b := make([]time.Duration, histBounds)
	for i := range b {
		b[i] = histMinBound << i
	}
	return b
}

// bucketIndex maps a duration to the index of the smallest boundary that
// contains it (histBounds for the overflow bucket). Negative durations
// clamp to the first bucket.
func bucketIndex(d time.Duration) int {
	if d <= histMinBound {
		return 0
	}
	// Index = ceil(log2(d / histMinBound)): count the doublings of the
	// first boundary needed to cover d.
	n := uint64(d)
	base := uint64(histMinBound)
	q := (n + base - 1) / base
	idx := 0
	for v := uint64(1); v < q; v <<= 1 {
		idx++
	}
	if idx >= histBounds {
		return histBounds
	}
	return idx
}

// Histogram is one latency distribution: atomic per-bucket counts plus a
// running sum, safe for concurrent Observe with no lock on the hot path.
type Histogram struct {
	buckets  [numBuckets]atomic.Uint64
	count    atomic.Uint64
	sumNanos atomic.Int64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	h.buckets[bucketIndex(d)].Add(1)
	h.count.Add(1)
	h.sumNanos.Add(int64(d))
}

// Snapshot copies the histogram's current state. Concurrent Observes may
// land between field reads, so Count can momentarily disagree with the
// bucket sum by in-flight observations; callers needing an exact
// invariant quiesce writers first (the tests do).
func (h *Histogram) Snapshot() Snapshot {
	var s Snapshot
	for i := range h.buckets {
		s.Counts[i] = h.buckets[i].Load()
	}
	s.Count = h.count.Load()
	s.SumNanos = h.sumNanos.Load()
	return s
}

// Snapshot is a point-in-time copy of one histogram, mergeable and
// queryable without further synchronization.
type Snapshot struct {
	// Counts holds per-bucket (non-cumulative) observation counts; the
	// last cell is the +Inf overflow.
	Counts   [numBuckets]uint64
	Count    uint64
	SumNanos int64
}

// Merge adds other's observations into s.
func (s *Snapshot) Merge(other Snapshot) {
	for i := range s.Counts {
		s.Counts[i] += other.Counts[i]
	}
	s.Count += other.Count
	s.SumNanos += other.SumNanos
}

// Quantile estimates the q-th quantile (0 < q <= 1) by linear
// interpolation inside the bucket holding the target rank. Returns 0 on
// an empty snapshot. Overflow-bucket estimates clamp to the largest
// finite boundary — the histogram cannot see past it.
func (s Snapshot) Quantile(q float64) time.Duration {
	var total uint64
	for _, c := range s.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum float64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		prev := cum
		cum += float64(c)
		if cum < rank {
			continue
		}
		if i >= histBounds {
			return histMinBound << (histBounds - 1)
		}
		hi := float64(histMinBound << i)
		lo := 0.0
		if i > 0 {
			lo = float64(histMinBound << (i - 1))
		}
		frac := (rank - prev) / float64(c)
		if frac < 0 {
			frac = 0
		}
		return time.Duration(lo + (hi-lo)*frac)
	}
	return histMinBound << (histBounds - 1)
}

// QuantileFromScrape estimates a quantile from Prometheus-style
// cumulative histogram buckets: les are the `le` boundaries in seconds
// (ascending, +Inf as math.Inf(1)) and cum the cumulative counts at each.
// The serve benchmark uses it to turn a /metrics?format=prometheus
// scrape back into the same estimate the server would compute.
func QuantileFromScrape(les []float64, cum []uint64, q float64) time.Duration {
	if len(les) == 0 || len(les) != len(cum) {
		return 0
	}
	total := cum[len(cum)-1]
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var prevCum uint64
	prevLe := 0.0
	for i, c := range cum {
		if float64(c) >= rank {
			le := les[i]
			if math.IsInf(le, 1) {
				// Clamp to the last finite boundary, as Snapshot.Quantile does.
				if i > 0 {
					return time.Duration(les[i-1] * float64(time.Second))
				}
				return 0
			}
			inBucket := float64(c - prevCum)
			frac := 0.0
			if inBucket > 0 {
				frac = (rank - float64(prevCum)) / inBucket
			}
			return time.Duration((prevLe + (le-prevLe)*frac) * float64(time.Second))
		}
		prevCum = c
		if !math.IsInf(les[i], 1) {
			prevLe = les[i]
		}
	}
	return time.Duration(prevLe * float64(time.Second))
}

// Labels keys one histogram cell. Every field is bounded: Endpoint is a
// mux route pattern (not a raw path), the rest are small enums, so the
// vec's cardinality is a product of small constants, never
// client-controlled.
type Labels struct {
	Endpoint string // route pattern, e.g. "/v1/compile" or "/v1/session/{id}"
	Cache    string // "hit", "miss", or "none" for uncached endpoints
	Engine   string // "vm", "native", or "none" for non-run requests
	Tier     string // session tier (reuse/patch/reopt/solve/cold) or "none"
}

// vecStripes is the lock-stripe count: label lookups hash onto one of
// these shards so concurrent requests with different labels rarely
// contend. Power of two for cheap masking.
const vecStripes = 16

type vecStripe struct {
	mu sync.RWMutex
	m  map[Labels]*Histogram
}

// HistogramVec is a set of Histograms keyed by Labels, lock-striped so
// Observe contends only within one label-hash shard (and there only on
// first creation — steady-state lookups take a read lock).
type HistogramVec struct {
	stripes [vecStripes]vecStripe
}

// NewHistogramVec returns an empty vec.
func NewHistogramVec() *HistogramVec {
	v := &HistogramVec{}
	for i := range v.stripes {
		v.stripes[i].m = make(map[Labels]*Histogram)
	}
	return v
}

func (v *HistogramVec) stripe(l Labels) *vecStripe {
	h := fnv.New32a()
	h.Write([]byte(l.Endpoint))
	h.Write([]byte{0})
	h.Write([]byte(l.Cache))
	h.Write([]byte{0})
	h.Write([]byte(l.Engine))
	h.Write([]byte{0})
	h.Write([]byte(l.Tier))
	return &v.stripes[h.Sum32()&(vecStripes-1)]
}

// Get returns the histogram for l, creating it on first use.
func (v *HistogramVec) Get(l Labels) *Histogram {
	st := v.stripe(l)
	st.mu.RLock()
	h := st.m[l]
	st.mu.RUnlock()
	if h != nil {
		return h
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if h = st.m[l]; h == nil {
		h = &Histogram{}
		st.m[l] = h
	}
	return h
}

// Observe records d under l.
func (v *HistogramVec) Observe(l Labels, d time.Duration) {
	v.Get(l).Observe(d)
}

// LabeledSnapshot pairs a label set with its snapshot.
type LabeledSnapshot struct {
	Labels   Labels
	Snapshot Snapshot
}

// Snapshots returns every cell's snapshot in a deterministic label
// order (the Prometheus exposition depends on scrape stability).
func (v *HistogramVec) Snapshots() []LabeledSnapshot {
	var out []LabeledSnapshot
	for i := range v.stripes {
		st := &v.stripes[i]
		st.mu.RLock()
		for l, h := range st.m {
			out = append(out, LabeledSnapshot{Labels: l, Snapshot: h.Snapshot()})
		}
		st.mu.RUnlock()
	}
	sort.Slice(out, func(a, b int) bool {
		la, lb := out[a].Labels, out[b].Labels
		if la.Endpoint != lb.Endpoint {
			return la.Endpoint < lb.Endpoint
		}
		if la.Cache != lb.Cache {
			return la.Cache < lb.Cache
		}
		if la.Engine != lb.Engine {
			return la.Engine < lb.Engine
		}
		return la.Tier < lb.Tier
	})
	return out
}

// Endpoint aggregates every cell of one endpoint (across cache, engine,
// and tier) into a single snapshot — the /metrics JSON's per-endpoint
// p50/p95/p99 come from here.
func (v *HistogramVec) Endpoint(endpoint string) Snapshot {
	var agg Snapshot
	for i := range v.stripes {
		st := &v.stripes[i]
		st.mu.RLock()
		for l, h := range st.m {
			if l.Endpoint == endpoint {
				agg.Merge(h.Snapshot())
			}
		}
		st.mu.RUnlock()
	}
	return agg
}
