package obs

import (
	"fmt"
	"strings"
	"testing"
)

func TestNewRequestID(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 100; i++ {
		id := NewRequestID()
		if len(id) != 16 {
			t.Fatalf("id %q: want 16 hex chars", id)
		}
		if SanitizeRequestID(id) != id {
			t.Fatalf("minted id %q does not survive sanitization", id)
		}
		if seen[id] {
			t.Fatalf("duplicate id %q", id)
		}
		seen[id] = true
	}
}

func TestSanitizeRequestID(t *testing.T) {
	cases := []struct {
		in, want string
	}{
		{"", ""},
		{"abc-123_XY.z", "abc-123_XY.z"},
		{"has space", ""},
		{"tab\there", ""},
		{"newline\n", ""},
		{`quote"inside`, ""},
		{"ünïcode", ""},
		{"control\x01", ""},
		{strings.Repeat("a", 64), strings.Repeat("a", 64)},
		{strings.Repeat("a", 65), ""},
	}
	for _, c := range cases {
		if got := SanitizeRequestID(c.in); got != c.want {
			t.Errorf("SanitizeRequestID(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestRingEviction(t *testing.T) {
	r := NewRing(3)
	for i := 0; i < 5; i++ {
		r.Add(&RequestRecord{ID: fmt.Sprintf("r%d", i)})
	}
	if got := r.Total(); got != 5 {
		t.Errorf("total = %d, want 5", got)
	}
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot len = %d, want capacity 3", len(snap))
	}
	// Most recent first; r0 and r1 evicted.
	for i, want := range []string{"r4", "r3", "r2"} {
		if snap[i].ID != want {
			t.Errorf("snap[%d] = %q, want %q", i, snap[i].ID, want)
		}
	}
	if r.Get("r0") != nil || r.Get("r1") != nil {
		t.Error("evicted records still reachable by id")
	}
	if r.Get("r4") == nil {
		t.Error("live record not reachable by id")
	}
	if r.Get("never") != nil {
		t.Error("unknown id returned a record")
	}
}

func TestRingPartialFill(t *testing.T) {
	r := NewRing(8)
	r.Add(&RequestRecord{ID: "a"})
	r.Add(&RequestRecord{ID: "b"})
	snap := r.Snapshot()
	if len(snap) != 2 || snap[0].ID != "b" || snap[1].ID != "a" {
		t.Errorf("partial snapshot = %+v", snap)
	}
}

func TestRingMinimumCapacity(t *testing.T) {
	r := NewRing(0)
	r.Add(&RequestRecord{ID: "x"})
	r.Add(&RequestRecord{ID: "y"})
	snap := r.Snapshot()
	if len(snap) != 1 || snap[0].ID != "y" {
		t.Errorf("capacity-1 ring snapshot = %+v", snap)
	}
}

func TestRingConcurrent(t *testing.T) {
	r := NewRing(16)
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		w := w
		go func() {
			for i := 0; i < 200; i++ {
				r.Add(&RequestRecord{ID: fmt.Sprintf("w%d-%d", w, i)})
				r.Snapshot()
				r.Get("w0-0")
			}
			done <- struct{}{}
		}()
	}
	for w := 0; w < 4; w++ {
		<-done
	}
	if got := r.Total(); got != 800 {
		t.Errorf("total = %d, want 800", got)
	}
	if got := len(r.Snapshot()); got != 16 {
		t.Errorf("snapshot len = %d, want 16", got)
	}
}
