package obs

import (
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"
)

// newTestMux wraps a Go 1.22-style mux in the middleware, mirroring how
// the server composes them (the mux sets r.Pattern, routeOf reads it).
func newTestMux(o *Obs) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/compile", func(w http.ResponseWriter, r *http.Request) {
		if req := FromContext(r.Context()); req != nil {
			req.Cache = "miss"
		}
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "compiled\n")
	})
	mux.HandleFunc("GET /v1/thing/{id}", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, r.PathValue("id"))
	})
	return o.Middleware(mux)
}

func TestMiddlewareMintsAndEchoesRequestID(t *testing.T) {
	o := New(Options{})
	ts := httptest.NewServer(newTestMux(o))
	defer ts.Close()

	// No client id: the server mints one.
	resp, err := http.Post(ts.URL+"/v1/compile", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	minted := resp.Header.Get(RequestIDHeader)
	if minted == "" || SanitizeRequestID(minted) != minted {
		t.Errorf("minted id %q invalid", minted)
	}

	// Client-supplied id: honored verbatim.
	req, _ := http.NewRequest("POST", ts.URL+"/v1/compile", nil)
	req.Header.Set(RequestIDHeader, "client-chose-this-1")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get(RequestIDHeader); got != "client-chose-this-1" {
		t.Errorf("client id not honored: %q", got)
	}

	// Hostile id: replaced, not echoed.
	req, _ = http.NewRequest("POST", ts.URL+"/v1/compile", nil)
	req.Header.Set(RequestIDHeader, strings.Repeat("x", 200))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get(RequestIDHeader); got == "" || len(got) > 64 {
		t.Errorf("hostile id echoed or dropped: %q", got)
	}
}

func TestMiddlewareRecordsRouteAndRing(t *testing.T) {
	o := New(Options{RingEntries: 4})
	ts := httptest.NewServer(newTestMux(o))
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/compile", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	// A wildcard route must be recorded as its pattern, not the raw path.
	resp, err = http.Get(ts.URL + "/v1/thing/secret-42")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	// An unrouted path lands in "other".
	resp, err = http.Get(ts.URL + "/nope/" + strings.Repeat("z", 100))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	snap := o.ring.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("ring has %d records, want 3", len(snap))
	}
	// Most recent first.
	if snap[0].Route != "other" {
		t.Errorf("unrouted request route = %q, want other", snap[0].Route)
	}
	if snap[1].Route != "/v1/thing/{id}" {
		t.Errorf("wildcard route = %q, want pattern", snap[1].Route)
	}
	if snap[2].Route != "/v1/compile" || snap[2].Cache != "miss" || snap[2].Status != http.StatusOK {
		t.Errorf("compile record = %+v", snap[2])
	}
	if snap[2].Bytes != int64(len("compiled\n")) {
		t.Errorf("bytes = %d", snap[2].Bytes)
	}
	if len(snap[2].Events) == 0 || snap[2].Events[0].Phase != SpanHTTP {
		t.Errorf("no http span recorded: %+v", snap[2].Events)
	}

	// The histogram observed each route under its label.
	if got := o.Latency().Endpoint("/v1/compile").Count; got != 1 {
		t.Errorf("compile histogram count = %d", got)
	}
	if got := o.Latency().Endpoint("other").Count; got != 1 {
		t.Errorf("other histogram count = %d", got)
	}
}

func TestMiddlewareRingDisabled(t *testing.T) {
	o := New(Options{RingEntries: -1})
	ts := httptest.NewServer(newTestMux(o))
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/v1/compile", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.Header.Get(RequestIDHeader) == "" {
		t.Error("request id missing with tracing disabled")
	}
	if o.ring != nil {
		t.Error("ring allocated despite being disabled")
	}
	// Histograms still work.
	if got := o.Latency().Endpoint("/v1/compile").Count; got != 1 {
		t.Errorf("histogram count = %d with ring disabled", got)
	}
	// The debug listing degrades to an empty set, not a panic.
	rec := httptest.NewRecorder()
	o.ServeRequests(rec, httptest.NewRequest("GET", "/debug/requests", nil))
	var listing struct {
		Total    uint64            `json:"total"`
		Requests []json.RawMessage `json:"requests"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &listing); err != nil {
		t.Fatalf("disabled-ring listing not JSON: %v", err)
	}
	if rec.Code != http.StatusOK || listing.Requests == nil || len(listing.Requests) != 0 {
		t.Errorf("disabled-ring listing: %d %s", rec.Code, rec.Body.String())
	}
}

// TestLogAccessDisabledAllocs pins the disabled access-log path at zero
// allocations — observability must cost nothing when turned off.
func TestLogAccessDisabledAllocs(t *testing.T) {
	o := New(Options{})
	rec := &RequestRecord{ID: "x", Method: "POST", Route: "/v1/compile", Status: 200}
	if n := testing.AllocsPerRun(100, func() { o.logAccess(rec) }); n != 0 {
		t.Errorf("disabled logAccess allocates %v per call, want 0", n)
	}
	// A logger below Info level must also stay allocation-free: the
	// Enabled check runs before any attr is built.
	quiet := New(Options{Logger: slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.LevelError}))})
	if n := testing.AllocsPerRun(100, func() { quiet.logAccess(rec) }); n != 0 {
		t.Errorf("below-level logAccess allocates %v per call, want 0", n)
	}
}

// BenchmarkLogAccess pairs the logged and unlogged paths so the access
// log's per-request overhead is pinned in review: compare
// BenchmarkLogAccess/disabled with /enabled-json.
func BenchmarkLogAccess(b *testing.B) {
	rec := &RequestRecord{
		ID: "bench-request-id", Method: "POST", Route: "/v1/compile",
		Status: 200, Cache: "hit", DurationNanos: 123456, Bytes: 1024,
	}
	b.Run("disabled", func(b *testing.B) {
		o := New(Options{})
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			o.logAccess(rec)
		}
	})
	b.Run("enabled-json", func(b *testing.B) {
		o := New(Options{Logger: slog.New(slog.NewJSONHandler(io.Discard, nil))})
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			o.logAccess(rec)
		}
	})
	b.Run("enabled-text", func(b *testing.B) {
		o := New(Options{Logger: slog.New(slog.NewTextHandler(io.Discard, nil))})
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			o.logAccess(rec)
		}
	})
}

func TestServeRequestTrace(t *testing.T) {
	o := New(Options{RingEntries: 4})
	mux := http.NewServeMux()
	o.Mount(mux)
	ts := httptest.NewServer(o.Middleware(mux))
	defer ts.Close()

	// Drive one request through the middleware so the ring has a record.
	resp, err := http.Get(ts.URL + "/debug/requests")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	id := resp.Header.Get(RequestIDHeader)

	resp, err = http.Get(ts.URL + "/debug/requests/" + id + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace status %d: %s", resp.StatusCode, body)
	}
	var parsed struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &parsed); err != nil {
		t.Fatalf("trace not valid JSON: %v\n%s", err, body)
	}
	var hasMeta, hasSpan bool
	for _, ev := range parsed.TraceEvents {
		if ev.Ph == "M" && ev.Name == "thread_name" {
			hasMeta = true
		}
		if ev.Ph == "X" && ev.Name == string(SpanHTTP) {
			hasSpan = true
		}
	}
	if !hasMeta || !hasSpan {
		t.Errorf("trace missing track name or http span: %s", body)
	}

	// Unknown id: 404.
	resp, err = http.Get(ts.URL + "/debug/requests/deadbeef/trace")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown trace id: status %d, want 404", resp.StatusCode)
	}

	// Combined timeline: one track per buffered request.
	resp, err = http.Get(ts.URL + "/debug/requests/trace")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !json.Valid(body) {
		t.Errorf("combined trace: status %d valid=%v", resp.StatusCode, json.Valid(body))
	}
}

// TestDebugHandlerNoGoroutineLeak drives the pprof and introspection mux
// and checks no goroutines outlive the requests.
func TestDebugHandlerNoGoroutineLeak(t *testing.T) {
	o := New(Options{})
	ts := httptest.NewServer(o.DebugHandler())
	before := runtime.NumGoroutine()
	for _, path := range []string{
		"/debug/pprof/", "/debug/pprof/cmdline", "/debug/requests",
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
	}
	ts.Close()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines: %d after, %d before", runtime.NumGoroutine(), before)
}
