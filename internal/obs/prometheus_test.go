package obs

import (
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

// promLine is the CI well-formedness check's contract: every non-empty
// line is a comment (# HELP / # TYPE) or a `name{labels} value` sample.
var promLine = regexp.MustCompile(`^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .*|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [0-9eE.+-]+(Inf)?)$`)

func TestWritePrometheusWellFormed(t *testing.T) {
	v := NewHistogramVec()
	v.Observe(Labels{Endpoint: "/v1/compile", Cache: "miss", Engine: "none", Tier: "none"}, 3*time.Millisecond)
	v.Observe(Labels{Endpoint: "/v1/compile", Cache: "hit", Engine: "none", Tier: "none"}, 40*time.Microsecond)

	var b strings.Builder
	WritePrometheus(&b, []CounterValue{
		{Name: "requests_total", Value: 7},
		{Name: "queue_depth", Value: 2, Gauge: true},
		{Name: "a_fractional_value", Value: 1.5},
	}, v)
	out := b.String()

	for _, line := range strings.Split(out, "\n") {
		if line == "" {
			continue
		}
		if !promLine.MatchString(line) {
			t.Errorf("malformed exposition line: %q", line)
		}
	}
	// Counters sort by name and carry HELP/TYPE with the right kind.
	if !strings.Contains(out, "# TYPE oicd_requests_total counter") {
		t.Error("missing counter TYPE line")
	}
	if !strings.Contains(out, "# TYPE oicd_queue_depth gauge") {
		t.Error("missing gauge TYPE line")
	}
	if !strings.Contains(out, "oicd_a_fractional_value 1.5") {
		t.Error("fractional value mangled")
	}
	if !strings.Contains(out, "# TYPE oicd_request_duration_seconds histogram") {
		t.Error("missing histogram TYPE line")
	}
	if strings.Index(out, "oicd_a_fractional_value") > strings.Index(out, "oicd_queue_depth") {
		t.Error("counters not sorted by name")
	}
}

func TestWritePrometheusHistogramCumulative(t *testing.T) {
	v := NewHistogramVec()
	l := Labels{Endpoint: "/v1/run", Cache: "none", Engine: "vm", Tier: "none"}
	v.Observe(l, 15*time.Microsecond)  // bucket le=2e-05
	v.Observe(l, 100*time.Millisecond) // higher bucket
	v.Observe(l, 300*time.Hour)        // overflow

	var b strings.Builder
	WritePrometheus(&b, nil, v)
	out := b.String()

	base := `endpoint="/v1/run",cache="none",engine="vm",tier="none"`
	var lastCum uint64
	var bucketLines int
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "oicd_request_duration_seconds_bucket{"+base) {
			continue
		}
		bucketLines++
		val := line[strings.LastIndexByte(line, ' ')+1:]
		n, err := strconv.ParseUint(val, 10, 64)
		if err != nil {
			t.Fatalf("bucket value %q: %v", val, err)
		}
		if n < lastCum {
			t.Fatalf("buckets not cumulative: %d after %d in %q", n, lastCum, line)
		}
		lastCum = n
	}
	if bucketLines != numBuckets {
		t.Errorf("got %d bucket lines, want %d", bucketLines, numBuckets)
	}
	if lastCum != 3 {
		t.Errorf("+Inf cumulative = %d, want 3 (overflow observation lost)", lastCum)
	}
	if !strings.Contains(out, "oicd_request_duration_seconds_count{"+base+"} 3") {
		t.Error("missing _count sample")
	}
	if !strings.Contains(out, "oicd_request_duration_seconds_sum{"+base+"}") {
		t.Error("missing _sum sample")
	}
	if !strings.Contains(out, `le="+Inf"`) {
		t.Error("missing +Inf bucket")
	}
}

func TestEscapeLabel(t *testing.T) {
	if got := escapeLabel(`a"b\c` + "\nd"); got != `a\"b\\c\nd` {
		t.Errorf("escapeLabel = %q", got)
	}
}

func TestFormatValue(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		3:       "3",
		1.5:     "1.5",
		1e-05:   "1e-05",
		0.00064: "0.00064",
	}
	for in, want := range cases {
		if got := formatValue(in); got != want {
			t.Errorf("formatValue(%v) = %q, want %q", in, got, want)
		}
	}
}
