package ir_test

import (
	"strings"
	"testing"

	"objinline/internal/ir"
)

// tinyProgram builds a minimal valid program: main returns nil.
func tinyProgram() (*ir.Program, *ir.Func) {
	p := ir.NewProgram()
	main := &ir.Func{Name: "main", NumRegs: 1}
	main.Blocks = []*ir.Block{{ID: 0, Instrs: []*ir.Instr{
		{Op: ir.OpConstNil, Dst: 0},
		{Op: ir.OpReturn, Dst: ir.NoReg, Args: []ir.Reg{0}},
	}}}
	p.AddFunc(main)
	p.Main = main
	return p, main
}

func TestVerifyAcceptsTiny(t *testing.T) {
	p, _ := tinyProgram()
	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyRejectsMissingTerminator(t *testing.T) {
	p, main := tinyProgram()
	main.Blocks[0].Instrs = main.Blocks[0].Instrs[:1] // drop the return
	if err := p.Verify(); err == nil || !strings.Contains(err.Error(), "terminator") {
		t.Fatalf("err = %v", err)
	}
}

func TestVerifyRejectsMidBlockTerminator(t *testing.T) {
	p, main := tinyProgram()
	main.Blocks[0].Instrs = []*ir.Instr{
		{Op: ir.OpReturn, Dst: ir.NoReg, Args: []ir.Reg{0}},
		{Op: ir.OpConstNil, Dst: 0},
	}
	if err := p.Verify(); err == nil {
		t.Fatal("mid-block terminator accepted")
	}
}

func TestVerifyRejectsBadRegister(t *testing.T) {
	p, main := tinyProgram()
	main.Blocks[0].Instrs[0].Dst = 5 // out of range (NumRegs == 1)
	if err := p.Verify(); err == nil || !strings.Contains(err.Error(), "register") {
		t.Fatalf("err = %v", err)
	}
}

func TestVerifyRejectsBadJumpTarget(t *testing.T) {
	p, main := tinyProgram()
	main.Blocks[0].Instrs[1] = &ir.Instr{Op: ir.OpJump, Dst: ir.NoReg, Target: 7}
	if err := p.Verify(); err == nil || !strings.Contains(err.Error(), "unknown block") {
		t.Fatalf("err = %v", err)
	}
}

func TestVerifyRejectsForeignCallee(t *testing.T) {
	p, main := tinyProgram()
	foreign := &ir.Func{Name: "foreign"}
	main.Blocks[0].Instrs[0] = &ir.Instr{Op: ir.OpCall, Dst: 0, Callee: foreign}
	if err := p.Verify(); err == nil || !strings.Contains(err.Error(), "unknown function") {
		t.Fatalf("err = %v", err)
	}
}

func TestVerifyRequiresMain(t *testing.T) {
	p, _ := tinyProgram()
	p.Main = nil
	if err := p.Verify(); err == nil || !strings.Contains(err.Error(), "no main") {
		t.Fatalf("err = %v", err)
	}
}

func TestRenumberAssignsStableIDs(t *testing.T) {
	_, main := tinyProgram()
	main.Renumber()
	if main.NumInstrs != 2 {
		t.Fatalf("NumInstrs = %d", main.NumInstrs)
	}
	ids := []int{}
	main.Instrs(func(_ *ir.Block, in *ir.Instr) { ids = append(ids, in.ID) })
	if ids[0] != 0 || ids[1] != 1 {
		t.Errorf("ids = %v", ids)
	}
}

func TestClassHierarchyHelpers(t *testing.T) {
	a := &ir.Class{Name: "A", Methods: map[string]*ir.Func{}}
	a.Fields = []*ir.Field{{Name: "x", Slot: 0, Owner: a}}
	b := &ir.Class{Name: "B", Super: a, Methods: map[string]*ir.Func{}}
	b.Fields = append(append([]*ir.Field{}, a.Fields...), &ir.Field{Name: "y", Slot: 1, Owner: b})

	if !b.IsSubclassOf(a) || !b.IsSubclassOf(b) || a.IsSubclassOf(b) {
		t.Error("IsSubclassOf broken")
	}
	if b.FieldNamed("x") != a.Fields[0] || b.FieldNamed("y").Slot != 1 || b.FieldNamed("z") != nil {
		t.Error("FieldNamed broken")
	}

	ma := &ir.Func{Name: "m", Class: a}
	a.Methods["m"] = ma
	if b.LookupMethod("m") != ma {
		t.Error("inherited lookup broken")
	}
	mb := &ir.Func{Name: "m", Class: b}
	b.Methods["m"] = mb
	if b.LookupMethod("m") != mb || a.LookupMethod("m") != ma {
		t.Error("override lookup broken")
	}
	if b.LookupMethod("nope") != nil {
		t.Error("missing method lookup broken")
	}
}

func TestRegisterConventions(t *testing.T) {
	c := &ir.Class{Name: "C", Methods: map[string]*ir.Func{}}
	m := &ir.Func{Name: "m", Class: c, NumParams: 2}
	if m.SelfReg() != 0 || m.ParamReg(0) != 1 || m.ParamReg(1) != 2 {
		t.Error("method register conventions broken")
	}
	f := &ir.Func{Name: "f", NumParams: 2}
	if f.SelfReg() != ir.NoReg || f.ParamReg(0) != 0 || f.ParamReg(1) != 1 {
		t.Error("function register conventions broken")
	}
	if m.FullName() != "C::m" || f.FullName() != "f" {
		t.Error("FullName broken")
	}
}

func TestInstrClone(t *testing.T) {
	in := &ir.Instr{Op: ir.OpBin, Dst: 3, Args: []ir.Reg{1, 2}, Aux: int64(ir.BinAdd)}
	cp := in.Clone()
	cp.Args[0] = 9
	if in.Args[0] != 1 {
		t.Error("Clone shares Args")
	}
}

func TestBuiltinLookup(t *testing.T) {
	if b, ok := ir.BuiltinByName("sqrt"); !ok || b != ir.BSqrt {
		t.Error("sqrt lookup")
	}
	if _, ok := ir.BuiltinByName("nosuch"); ok {
		t.Error("bogus builtin resolved")
	}
	if lo, hi := ir.BuiltinArity(ir.BPrint); lo != 0 || hi != -1 {
		t.Errorf("print arity %d %d", lo, hi)
	}
	if lo, hi := ir.BuiltinArity(ir.BMin); lo != 2 || hi != 2 {
		t.Errorf("min arity %d %d", lo, hi)
	}
	if lo, hi := ir.BuiltinArity(ir.BSqrt); lo != 1 || hi != 1 {
		t.Errorf("sqrt arity %d %d", lo, hi)
	}
}

func TestPrinting(t *testing.T) {
	p, main := tinyProgram()
	c := p.AddClass(&ir.Class{Name: "K", Methods: map[string]*ir.Func{}})
	c.Fields = []*ir.Field{{Name: "f", Slot: 0, Owner: c}}
	s := p.String()
	for _, frag := range []string{"class K", "f@0", "func main", "const nil", "return r0"} {
		if !strings.Contains(s, frag) {
			t.Errorf("program print missing %q:\n%s", frag, s)
		}
	}
	main.Renumber()
	got := main.Blocks[0].Instrs[0].String()
	if got != "r0 = const nil" {
		t.Errorf("instr print = %q", got)
	}
}

func TestCodeSize(t *testing.T) {
	p, main := tinyProgram()
	if main.CodeSize() != 2 || p.CodeSize() != 2 {
		t.Errorf("code size %d/%d", main.CodeSize(), p.CodeSize())
	}
}

func TestFieldStringForms(t *testing.T) {
	c := &ir.Class{Name: "C"}
	cases := []struct {
		f    *ir.Field
		want string
	}{
		{nil, "<nil-field>"},
		{&ir.Field{Name: "x", Slot: -1}, ".x"},
		{&ir.Field{Name: "x", Slot: 2}, ".x@+2"},
		{&ir.Field{Name: "x", Slot: 1, Owner: c}, "C.x@1"},
	}
	for _, tc := range cases {
		if got := tc.f.String(); got != tc.want {
			t.Errorf("Field.String() = %q, want %q", got, tc.want)
		}
	}
}
