package ir_test

import (
	"strings"
	"testing"

	"objinline/internal/ir"
)

// TestInstrStringAllOps renders every op form once, pinning the printer's
// coverage (the dumps are a primary debugging tool).
func TestInstrStringAllOps(t *testing.T) {
	cls := &ir.Class{Name: "K", Methods: map[string]*ir.Func{}}
	cls.Fields = []*ir.Field{{Name: "f", Slot: 0, Owner: cls}}
	callee := &ir.Func{Name: "g"}
	method := &ir.Func{Name: "m", Class: cls}

	cases := []struct {
		in   *ir.Instr
		want string
	}{
		{&ir.Instr{Op: ir.OpConstInt, Dst: 0, Aux: 5}, "r0 = const 5"},
		{&ir.Instr{Op: ir.OpConstFloat, Dst: 0, F: 2.5}, "r0 = const 2.5"},
		{&ir.Instr{Op: ir.OpConstStr, Dst: 0, S: "hi"}, `r0 = const "hi"`},
		{&ir.Instr{Op: ir.OpConstBool, Dst: 0, Aux: 1}, "r0 = const true"},
		{&ir.Instr{Op: ir.OpConstNil, Dst: 0}, "r0 = const nil"},
		{&ir.Instr{Op: ir.OpMove, Dst: 1, Args: []ir.Reg{0}}, "r1 = move r0"},
		{&ir.Instr{Op: ir.OpBin, Dst: 2, Args: []ir.Reg{0, 1}, Aux: int64(ir.BinMul)}, "r2 = r0 * r1"},
		{&ir.Instr{Op: ir.OpUn, Dst: 1, Args: []ir.Reg{0}, Aux: int64(ir.UnNeg)}, "r1 = neg r0"},
		{&ir.Instr{Op: ir.OpUn, Dst: 1, Args: []ir.Reg{0}, Aux: int64(ir.UnNot)}, "r1 = not r0"},
		{&ir.Instr{Op: ir.OpNewObject, Dst: 0, Class: cls}, "r0 = new K"},
		{&ir.Instr{Op: ir.OpNewArray, Dst: 1, Args: []ir.Reg{0}}, "r1 = newarray r0"},
		{&ir.Instr{Op: ir.OpGetField, Dst: 1, Args: []ir.Reg{0}, Field: cls.Fields[0]}, "r1 = r0.f[slot 0]"},
		{&ir.Instr{Op: ir.OpSetField, Dst: ir.NoReg, Args: []ir.Reg{0, 1}, Field: cls.Fields[0]}, "r0.f[slot 0] = r1"},
		{&ir.Instr{Op: ir.OpArrGet, Dst: 2, Args: []ir.Reg{0, 1}}, "r2 = r0[r1]"},
		{&ir.Instr{Op: ir.OpArrSet, Dst: ir.NoReg, Args: []ir.Reg{0, 1, 2}}, "r0[r1] = r2"},
		{&ir.Instr{Op: ir.OpCall, Dst: 0, Args: []ir.Reg{1}, Callee: callee}, "r0 = call g(r1)"},
		{&ir.Instr{Op: ir.OpCallMethod, Dst: 0, Args: []ir.Reg{1, 2}, Method: "m"}, "r0 = dispatch r1.m(r2)"},
		{&ir.Instr{Op: ir.OpCallStatic, Dst: 0, Args: []ir.Reg{1}, Callee: method}, "r0 = callstatic K::m(r1)"},
		{&ir.Instr{Op: ir.OpGetGlobal, Dst: 0, Global: 2}, "r0 = global[2]"},
		{&ir.Instr{Op: ir.OpSetGlobal, Dst: ir.NoReg, Args: []ir.Reg{0}, Global: 2}, "global[2] = r0"},
		{&ir.Instr{Op: ir.OpBuiltin, Dst: 0, Args: []ir.Reg{1}, Aux: int64(ir.BSqrt)}, "r0 = sqrt(r1)"},
		{&ir.Instr{Op: ir.OpJump, Dst: ir.NoReg, Target: 3}, "jump b3"},
		{&ir.Instr{Op: ir.OpBranch, Dst: ir.NoReg, Args: []ir.Reg{0}, Target: 1, Else: 2}, "branch r0 b1 b2"},
		{&ir.Instr{Op: ir.OpReturn, Dst: ir.NoReg, Args: []ir.Reg{0}}, "return r0"},
		{&ir.Instr{Op: ir.OpReturn, Dst: ir.NoReg}, "return"},
		{&ir.Instr{Op: ir.OpTrap, Dst: ir.NoReg, S: "boom"}, `trap "boom"`},
		{&ir.Instr{Op: ir.OpNewArrayInl, Dst: 1, Args: []ir.Reg{0}, Class: cls}, "r1 = newarray.inl[obj] r0 of K"},
		{&ir.Instr{Op: ir.OpNewArrayInl, Dst: 1, Args: []ir.Reg{0}, Class: cls, Aux: 1}, "r1 = newarray.inl[par] r0 of K"},
		{&ir.Instr{Op: ir.OpArrInterior, Dst: 2, Args: []ir.Reg{0, 1}}, "r2 = &r0[r1]"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestOpNames(t *testing.T) {
	// Every op must have a distinct printable name.
	seen := map[string]bool{}
	for op := ir.OpConstInt; op <= ir.OpArrInterior; op++ {
		name := op.String()
		if name == "" || strings.HasPrefix(name, "token") {
			t.Errorf("op %d has bad name %q", op, name)
		}
		if seen[name] {
			t.Errorf("duplicate op name %q", name)
		}
		seen[name] = true
	}
}

func TestBinOpNames(t *testing.T) {
	want := []string{"+", "-", "*", "/", "%", "==", "!=", "<", "<=", ">", ">="}
	for i, w := range want {
		if ir.BinOp(i).String() != w {
			t.Errorf("BinOp(%d) = %q, want %q", i, ir.BinOp(i).String(), w)
		}
	}
}

func TestNoRegPrintsUnderscore(t *testing.T) {
	in := &ir.Instr{Op: ir.OpBuiltin, Dst: 0, Args: []ir.Reg{1}, Aux: int64(ir.BPrint)}
	if got := in.String(); got != "r0 = print(r1)" {
		t.Errorf("print instr = %q", got)
	}
}
