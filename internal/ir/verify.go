package ir

import "fmt"

// Verify checks structural invariants of the program and renumbers every
// function's instructions. It returns the first violation found.
//
// Invariants:
//   - every block ends with exactly one terminator, which is its last
//     instruction;
//   - branch/jump targets are valid block IDs;
//   - register operands are within the function's register count;
//   - field operands belong to (a superclass of) some class layout slot;
//   - static callees are functions of the same program.
func (p *Program) Verify() error {
	funcByID := make(map[*Func]bool, len(p.Funcs))
	for _, f := range p.Funcs {
		funcByID[f] = true
	}
	for _, f := range p.Funcs {
		f.Renumber()
		if err := f.verify(funcByID, len(p.Globals)); err != nil {
			return fmt.Errorf("%s: %w", f.FullName(), err)
		}
	}
	if p.Main == nil {
		return fmt.Errorf("ir: program has no main function")
	}
	return nil
}

func (f *Func) verify(funcs map[*Func]bool, numGlobals int) error {
	if len(f.Blocks) == 0 {
		return fmt.Errorf("no blocks")
	}
	blockIDs := make(map[int]bool, len(f.Blocks))
	for i, b := range f.Blocks {
		if b.ID != i {
			return fmt.Errorf("block %d has ID %d; want index order", i, b.ID)
		}
		blockIDs[b.ID] = true
	}
	checkReg := func(r Reg, in *Instr) error {
		if r < 0 || int(r) >= f.NumRegs {
			return fmt.Errorf("instr %q: register %d out of range [0,%d)", in, r, f.NumRegs)
		}
		return nil
	}
	for _, b := range f.Blocks {
		if len(b.Instrs) == 0 {
			return fmt.Errorf("block b%d empty", b.ID)
		}
		for i, in := range b.Instrs {
			isLast := i == len(b.Instrs)-1
			if in.IsTerminator() != isLast {
				return fmt.Errorf("block b%d instr %d (%s): terminator placement", b.ID, i, in)
			}
			if in.Dst != NoReg {
				if err := checkReg(in.Dst, in); err != nil {
					return err
				}
			}
			for _, a := range in.Args {
				if err := checkReg(a, in); err != nil {
					return err
				}
			}
			switch in.Op {
			case OpJump:
				if !blockIDs[in.Target] {
					return fmt.Errorf("jump to unknown block b%d", in.Target)
				}
			case OpBranch:
				if !blockIDs[in.Target] || !blockIDs[in.Else] {
					return fmt.Errorf("branch to unknown block b%d/b%d", in.Target, in.Else)
				}
				if len(in.Args) != 1 {
					return fmt.Errorf("branch needs one condition arg")
				}
			case OpGetField, OpSetField:
				if in.Field == nil {
					return fmt.Errorf("field op without field")
				}
				// Three legal shapes: name-only (Owner nil, Slot -1),
				// synthetic relative (Owner nil, Slot >= 0), and slot-bound
				// (Owner set, Slot within the owner's layout).
				if owner := in.Field.Owner; owner != nil {
					if in.Field.Slot < 0 || in.Field.Slot >= owner.NumSlots() {
						return fmt.Errorf("field %s has bad slot", in.Field)
					}
				}
			case OpCall, OpCallStatic:
				if in.Callee == nil || !funcs[in.Callee] {
					return fmt.Errorf("call to unknown function")
				}
			case OpCallMethod:
				if len(in.Args) == 0 {
					return fmt.Errorf("method call without receiver")
				}
				if in.Method == "" {
					return fmt.Errorf("method call without name")
				}
			case OpNewObject:
				if in.Class == nil {
					return fmt.Errorf("new without class")
				}
			case OpGetGlobal, OpSetGlobal:
				if in.Global < 0 || in.Global >= numGlobals {
					return fmt.Errorf("global index %d out of range", in.Global)
				}
			}
		}
	}
	return nil
}
