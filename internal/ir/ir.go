// Package ir defines the intermediate representation the optimizer works
// on: a register-based control-flow-graph IR with an explicit uniform
// object model (every object access is a reference dereference, every
// method call is a dynamic dispatch until cloning devirtualizes it).
//
// The IR mirrors what the Concert compiler's analyses consume: a program is
// a set of classes with flat slot layouts plus a set of functions; each
// function is a list of basic blocks of three-address instructions over
// virtual registers. Instructions carry stable per-function IDs so the
// contour-based analyses can key facts by (contour, instruction).
package ir

import (
	"fmt"

	"objinline/internal/lang/source"
)

// Reg is a virtual register index within a function. NoReg means "none".
type Reg int

// NoReg marks an absent register operand or destination.
const NoReg Reg = -1

// Class is a class with a flattened slot layout: superclass fields first,
// then this class's own fields. Subclass layouts extend superclass layouts,
// so a *Field's Slot is valid for every subclass instance.
type Class struct {
	ID      int
	Name    string
	Super   *Class
	Fields  []*Field         // full layout; Fields[i].Slot == i
	Methods map[string]*Func // methods declared by this class (not inherited)

	// Origin points at the class this one was cloned from, nil for
	// source-level classes. Clone metadata is attached by the cloning
	// framework.
	Origin *Class
}

// NumSlots returns the instance size in slots.
func (c *Class) NumSlots() int { return len(c.Fields) }

// FieldNamed returns the field with the given source name, or nil. For
// restructured classes the original field may have been removed; see
// package core for the slot maps that replace it.
func (c *Class) FieldNamed(name string) *Field {
	for _, f := range c.Fields {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// LookupMethod resolves a method name against the class chain, returning
// the overriding definition nearest to c, or nil.
func (c *Class) LookupMethod(name string) *Func {
	for k := c; k != nil; k = k.Super {
		if m, ok := k.Methods[name]; ok {
			return m
		}
	}
	return nil
}

// IsSubclassOf reports whether c equals or descends from k.
func (c *Class) IsSubclassOf(k *Class) bool {
	for x := c; x != nil; x = x.Super {
		if x == k {
			return true
		}
	}
	return false
}

// Field is one instance-variable slot of a class layout.
type Field struct {
	Name  string
	Slot  int
	Owner *Class // class that declared the field

	// Synthetic marks slots introduced by the inlining transformation
	// (the flattened state of an inlined child object).
	Synthetic bool
}

func (f *Field) String() string {
	switch {
	case f == nil:
		return "<nil-field>"
	case f.Owner == nil && f.Slot < 0:
		return "." + f.Name // name-only reference
	case f.Owner == nil:
		return fmt.Sprintf(".%s@+%d", f.Name, f.Slot) // interior-relative
	default:
		return fmt.Sprintf("%s.%s@%d", f.Owner.Name, f.Name, f.Slot)
	}
}

// Func is a function or method in three-address CFG form.
//
// Register conventions: for a method, register 0 is self and registers
// 1..NumParams hold the parameters; for a top-level function registers
// 0..NumParams-1 hold the parameters.
type Func struct {
	ID        int
	Name      string
	Class     *Class // nil for a top-level function
	NumParams int    // not counting self
	NumRegs   int
	Blocks    []*Block

	// Origin points at the function this one was cloned from, nil for
	// source-level functions.
	Origin *Func

	// NumInstrs is the number of instructions after Renumber.
	NumInstrs int
}

// FullName renders Class::Name for methods and Name for functions.
func (f *Func) FullName() string {
	if f.Class != nil {
		return f.Class.Name + "::" + f.Name
	}
	return f.Name
}

// SelfReg returns the register holding the receiver, or NoReg.
func (f *Func) SelfReg() Reg {
	if f.Class == nil {
		return NoReg
	}
	return 0
}

// ParamReg returns the register holding parameter i (0-based).
func (f *Func) ParamReg(i int) Reg {
	if f.Class != nil {
		return Reg(i + 1)
	}
	return Reg(i)
}

// Block is a basic block. The last instruction must be a terminator
// (Jump, Branch, Return, or Trap); Verify checks this.
type Block struct {
	ID     int
	Instrs []*Instr
}

// Op enumerates IR operations.
type Op int

// IR operations.
const (
	OpConstInt   Op = iota // Dst = Aux
	OpConstFloat           // Dst = F
	OpConstStr             // Dst = S
	OpConstBool            // Dst = (Aux != 0)
	OpConstNil             // Dst = nil
	OpMove                 // Dst = Args[0]
	OpBin                  // Dst = Args[0] <BinOp(Aux)> Args[1]
	OpUn                   // Dst = <UnOp(Aux)> Args[0]
	OpNewObject            // Dst = new Class (constructor call is separate)
	OpNewArray             // Dst = new array of length Args[0]
	OpGetField             // Dst = Args[0].Field
	OpSetField             // Args[0].Field = Args[1]
	OpArrGet               // Dst = Args[0][Args[1]]
	OpArrSet               // Args[0][Args[1]] = Args[2]
	OpCall                 // Dst = Callee(Args...)          (top-level)
	OpCallMethod           // Dst = Args[0].Method(Args[1:]) (dynamic)
	OpCallStatic           // Dst = Callee(Args[0]=self, Args[1:]) (devirtualized)
	OpGetGlobal            // Dst = globals[Global]
	OpSetGlobal            // globals[Global] = Args[0]
	OpBuiltin              // Dst = builtin(Aux)(Args...)
	OpJump                 // goto Target
	OpBranch               // if Args[0] goto Target else goto Else
	OpReturn               // return Args[0] (or nil if len(Args)==0)
	OpTrap                 // runtime error with message S

	// Ops introduced by the inlining transformation (package core).
	OpNewArrayInl // Dst = inlined array of Class elements; Args[0]=len; Aux=1 selects the parallel layout
	OpArrInterior // Dst = interior reference to Args[0][Args[1]]'s inlined state
)

var opNames = [...]string{
	"const.int", "const.float", "const.str", "const.bool", "const.nil",
	"move", "bin", "un", "new", "newarray", "getfield", "setfield",
	"arrget", "arrset", "call", "callmethod", "callstatic",
	"getglobal", "setglobal", "builtin", "jump", "branch", "return", "trap",
	"newarray.inl", "arrinterior",
}

func (o Op) String() string { return opNames[o] }

// BinOp enumerates IR binary operators (short-circuit operators are
// lowered to control flow, so they do not appear here).
type BinOp int

// IR binary operators.
const (
	BinAdd BinOp = iota
	BinSub
	BinMul
	BinDiv
	BinMod
	BinEq
	BinNe
	BinLt
	BinLe
	BinGt
	BinGe
)

var binNames = [...]string{"+", "-", "*", "/", "%", "==", "!=", "<", "<=", ">", ">="}

func (b BinOp) String() string { return binNames[b] }

// UnOp enumerates IR unary operators.
type UnOp int

// IR unary operators.
const (
	UnNeg UnOp = iota
	UnNot
)

// Builtin enumerates intrinsic functions.
type Builtin int

// Builtins callable from Mini-ICC source.
const (
	BPrint   Builtin = iota // print(args...): space-separated, newline
	BSqrt                   // sqrt(x) float
	BFloor                  // floor(x) float
	BAbs                    // abs(x) same numeric kind
	BMin                    // min(x, y)
	BMax                    // max(x, y)
	BLen                    // len(array or string) int
	BIntOf                  // intof(x) truncate to int
	BFloatOf                // floatof(x) widen to float
	BAssert                 // assert(cond) traps when false
	BStrCat                 // strcat(a, b) string concatenation
	BXor                    // bxor(a, b) bitwise xor on ints
)

var builtinNames = [...]string{
	"print", "sqrt", "floor", "abs", "min", "max", "len", "intof",
	"floatof", "assert", "strcat", "bxor",
}

func (b Builtin) String() string { return builtinNames[b] }

// BuiltinByName maps a source identifier to a builtin.
func BuiltinByName(name string) (Builtin, bool) {
	for i, n := range builtinNames {
		if n == name {
			return Builtin(i), true
		}
	}
	return 0, false
}

// BuiltinArity returns the (min, max) argument counts for b; max<0 means
// variadic.
func BuiltinArity(b Builtin) (int, int) {
	switch b {
	case BPrint:
		return 0, -1
	case BMin, BMax, BStrCat, BXor:
		return 2, 2
	default:
		return 1, 1
	}
}

// Instr is one IR instruction. A single struct (rather than one type per
// op) keeps cloning and rewriting simple.
type Instr struct {
	ID   int // stable per-function id, assigned by Renumber
	Op   Op
	Dst  Reg
	Args []Reg

	Class  *Class  // OpNewObject
	Field  *Field  // OpGetField/OpSetField
	Callee *Func   // OpCall/OpCallStatic
	Method string  // OpCallMethod
	Global int     // OpGetGlobal/OpSetGlobal
	Aux    int64   // const int / bool, BinOp, UnOp, Builtin
	F      float64 // OpConstFloat
	S      string  // OpConstStr, OpTrap message
	B      bool

	Target int // OpJump/OpBranch: block id taken when true
	Else   int // OpBranch: block id when false

	Pos source.Pos

	// Origin is the source-program instruction this one was (transitively)
	// cloned from, recorded by Clone for incremental recompilation: when a
	// payload-only edit updates the source instructions in place, the
	// optimized output is refreshed by re-copying constant payloads from
	// each instruction's origin (Program.RefreshConstPayloads) instead of
	// re-running the optimizer. Nil for instructions the optimizer
	// synthesized from whole cloth. Never printed, verified, or compared.
	Origin *Instr
}

// IsTerminator reports whether the instruction ends a basic block.
func (in *Instr) IsTerminator() bool {
	switch in.Op {
	case OpJump, OpBranch, OpReturn, OpTrap:
		return true
	}
	return false
}

// IsCall reports whether the instruction transfers control to another
// function (used by the valuability analysis).
func (in *Instr) IsCall() bool {
	switch in.Op {
	case OpCall, OpCallMethod, OpCallStatic:
		return true
	}
	return false
}

// Clone returns a deep copy of the instruction (Args are copied; payload
// pointers are shared until a rewrite retargets them). The clone's Origin
// chain collapses to the root instruction, so clones of clones still point
// at the original.
func (in *Instr) Clone() *Instr {
	cp := *in
	cp.Args = append([]Reg(nil), in.Args...)
	if cp.Origin == nil {
		cp.Origin = in
	}
	return &cp
}

// RefreshConstPayloads re-copies the constant payload fields (Aux of
// OpConstInt/OpConstBool, F, S, B) from each instruction's Origin, for
// instructions whose origin still has the same opcode. It is the
// incremental patch tier's output fix-up: after a payload-only source
// edit updates the analyzed program's instructions in place, the
// already-optimized output program — whose shape, analysis, and decisions
// provably cannot depend on those values — is brought current by
// forwarding the new constants through the clone provenance. Instructions
// the optimizer synthesized (nil Origin) or retyped (opcode mismatch,
// e.g. OpNewArray→OpNewArrayInl, whose Aux became a layout flag) keep
// their payloads.
func (p *Program) RefreshConstPayloads() {
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				o := in.Origin
				if o == nil || o.Op != in.Op {
					continue
				}
				switch in.Op {
				case OpConstInt, OpConstBool:
					in.Aux = o.Aux
				case OpConstFloat:
					in.F = o.F
				case OpConstStr, OpTrap:
					in.S = o.S
				}
				in.B = o.B
			}
		}
	}
}

// Program is a complete IR program.
type Program struct {
	Classes []*Class
	Funcs   []*Func
	Globals []string
	Main    *Func

	nextClassID int
	nextFuncID  int
}

// NewProgram returns an empty program.
func NewProgram() *Program { return &Program{} }

// AddClass registers a class and assigns its ID.
func (p *Program) AddClass(c *Class) *Class {
	c.ID = p.nextClassID
	p.nextClassID++
	p.Classes = append(p.Classes, c)
	return c
}

// AddFunc registers a function and assigns its ID.
func (p *Program) AddFunc(f *Func) *Func {
	f.ID = p.nextFuncID
	p.nextFuncID++
	p.Funcs = append(p.Funcs, f)
	return f
}

// ClassNamed finds a class by name, or nil.
func (p *Program) ClassNamed(name string) *Class {
	for _, c := range p.Classes {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// FuncNamed finds a top-level function by name, or nil.
func (p *Program) FuncNamed(name string) *Func {
	for _, f := range p.Funcs {
		if f.Class == nil && f.Name == name {
			return f
		}
	}
	return nil
}

// Renumber assigns stable instruction IDs for f and recomputes NumInstrs.
func (f *Func) Renumber() {
	id := 0
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			in.ID = id
			id++
		}
	}
	f.NumInstrs = id
}

// Instrs calls fn for every instruction in f.
func (f *Func) Instrs(fn func(*Block, *Instr)) {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			fn(b, in)
		}
	}
}

// CodeSize returns the number of instructions in the function.
func (f *Func) CodeSize() int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Instrs)
	}
	return n
}

// CodeSize returns the total instruction count of the program, the unit of
// the Fig. 15 code-size measurements.
func (p *Program) CodeSize() int {
	n := 0
	for _, f := range p.Funcs {
		n += f.CodeSize()
	}
	return n
}
