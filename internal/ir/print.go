package ir

import (
	"fmt"
	"sort"
	"strings"
)

// String renders the whole program for debugging and golden tests.
func (p *Program) String() string {
	var b strings.Builder
	for _, c := range p.Classes {
		b.WriteString(c.LayoutString())
	}
	for _, f := range p.Funcs {
		b.WriteString(f.String())
	}
	return b.String()
}

// LayoutString renders a class's slot layout.
func (c *Class) LayoutString() string {
	var b strings.Builder
	fmt.Fprintf(&b, "class %s", c.Name)
	if c.Super != nil {
		fmt.Fprintf(&b, " : %s", c.Super.Name)
	}
	b.WriteString(" {")
	for _, f := range c.Fields {
		fmt.Fprintf(&b, " %s@%d", f.Name, f.Slot)
	}
	b.WriteString(" }\n")
	names := make([]string, 0, len(c.Methods))
	for n := range c.Methods {
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) > 0 {
		fmt.Fprintf(&b, "  methods: %s\n", strings.Join(names, ", "))
	}
	return b.String()
}

// String renders the function body.
func (f *Func) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "func %s(params=%d regs=%d) {\n", f.FullName(), f.NumParams, f.NumRegs)
	for _, blk := range f.Blocks {
		fmt.Fprintf(&b, " b%d:\n", blk.ID)
		for _, in := range blk.Instrs {
			fmt.Fprintf(&b, "   %s\n", in.String())
		}
	}
	b.WriteString("}\n")
	return b.String()
}

func regString(r Reg) string {
	if r == NoReg {
		return "_"
	}
	return fmt.Sprintf("r%d", r)
}

// String renders one instruction.
func (in *Instr) String() string {
	var b strings.Builder
	if in.Dst != NoReg {
		fmt.Fprintf(&b, "%s = ", regString(in.Dst))
	}
	args := make([]string, len(in.Args))
	for i, a := range in.Args {
		args[i] = regString(a)
	}
	switch in.Op {
	case OpConstInt:
		fmt.Fprintf(&b, "const %d", in.Aux)
	case OpConstFloat:
		fmt.Fprintf(&b, "const %g", in.F)
	case OpConstStr:
		fmt.Fprintf(&b, "const %q", in.S)
	case OpConstBool:
		fmt.Fprintf(&b, "const %v", in.Aux != 0)
	case OpConstNil:
		b.WriteString("const nil")
	case OpMove:
		fmt.Fprintf(&b, "move %s", args[0])
	case OpBin:
		fmt.Fprintf(&b, "%s %s %s", args[0], BinOp(in.Aux), args[1])
	case OpUn:
		if UnOp(in.Aux) == UnNeg {
			fmt.Fprintf(&b, "neg %s", args[0])
		} else {
			fmt.Fprintf(&b, "not %s", args[0])
		}
	case OpNewObject:
		fmt.Fprintf(&b, "new %s", in.Class.Name)
	case OpNewArray:
		fmt.Fprintf(&b, "newarray %s", args[0])
	case OpGetField:
		fmt.Fprintf(&b, "%s.%s[slot %d]", args[0], in.Field.Name, in.Field.Slot)
	case OpSetField:
		fmt.Fprintf(&b, "%s.%s[slot %d] = %s", args[0], in.Field.Name, in.Field.Slot, args[1])
	case OpArrGet:
		fmt.Fprintf(&b, "%s[%s]", args[0], args[1])
	case OpArrSet:
		fmt.Fprintf(&b, "%s[%s] = %s", args[0], args[1], args[2])
	case OpCall:
		fmt.Fprintf(&b, "call %s(%s)", in.Callee.FullName(), strings.Join(args, ", "))
	case OpCallMethod:
		fmt.Fprintf(&b, "dispatch %s.%s(%s)", args[0], in.Method, strings.Join(args[1:], ", "))
	case OpCallStatic:
		fmt.Fprintf(&b, "callstatic %s(%s)", in.Callee.FullName(), strings.Join(args, ", "))
	case OpGetGlobal:
		fmt.Fprintf(&b, "global[%d]", in.Global)
	case OpSetGlobal:
		fmt.Fprintf(&b, "global[%d] = %s", in.Global, args[0])
	case OpBuiltin:
		fmt.Fprintf(&b, "%s(%s)", Builtin(in.Aux), strings.Join(args, ", "))
	case OpJump:
		fmt.Fprintf(&b, "jump b%d", in.Target)
	case OpBranch:
		fmt.Fprintf(&b, "branch %s b%d b%d", args[0], in.Target, in.Else)
	case OpReturn:
		if len(in.Args) > 0 {
			fmt.Fprintf(&b, "return %s", args[0])
		} else {
			b.WriteString("return")
		}
	case OpTrap:
		fmt.Fprintf(&b, "trap %q", in.S)
	case OpNewArrayInl:
		layout := "obj"
		if in.Aux == 1 {
			layout = "par"
		}
		fmt.Fprintf(&b, "newarray.inl[%s] %s of %s", layout, args[0], in.Class.Name)
	case OpArrInterior:
		fmt.Fprintf(&b, "&%s[%s]", args[0], args[1])
	default:
		fmt.Fprintf(&b, "?op%d", in.Op)
	}
	return b.String()
}
