package emit

// runtimeSrc is the static runtime preamble shared by every emitted
// package: the tagged value type, the object interface the generated
// structs implement, and helpers that replicate the reference VM's
// observable semantics — trap messages, print rendering, float
// formatting, identity — character for character (differential tests
// compare engine output byte-wise). The program-specific parts (class
// structs, metadata tables, dispatchers, globals, runOnce) are generated
// by emit.go; main() here drives them through the harness protocol:
//
//	prog [-reps=N] [-measure=FILE]
//
// runs the program N times (only the first reprint is unmuted), writes a
// small JSON measurement record (wall time and runtime.MemStats deltas)
// to FILE, and exits 3 with the trap message on stderr when the program
// raises a runtime error.
const runtimeSrc = `// ---- runtime preamble (static) ----

type value struct {
	k    uint8
	i    int64
	f    float64
	s    string
	o    obj
	a    *array
	base int
}

const (
	kNil      uint8 = 0
	kInt      uint8 = 1
	kFloat    uint8 = 2
	kBool     uint8 = 3
	kStr      uint8 = 4
	kObj      uint8 = 5
	kArr      uint8 = 6
	kInterior uint8 = 7
)

var kindNames = [...]string{"nil", "int", "float", "bool", "string", "object", "array", "interior"}

// obj is implemented by every generated class struct.
type obj interface {
	cid() int32
	cname() string
	pname() string
	get(slot int) value
	set(slot int, v value)
	slotOf(name string) int
}

// array backs both plain arrays (stride 0, one value per element) and
// inlined arrays (stride slots of flattened element state, object-order
// in elems or as parallel column vectors in cols).
type array struct {
	length int
	elems  []value
	stride int
	cols   [][]value
}

func ival(i int64) value   { return value{k: kInt, i: i} }
func fval(f float64) value { return value{k: kFloat, f: f} }
func sval(s string) value  { return value{k: kStr, s: s} }
func oval(o obj) value     { return value{k: kObj, o: o} }
func aval(a *array) value  { return value{k: kArr, a: a} }

func bval(b bool) value {
	if b {
		return value{k: kBool, i: 1}
	}
	return value{k: kBool}
}

// rtError is a Mini-ICC runtime failure; its text matches the VM's
// RuntimeError.Error() exactly.
type rtError struct {
	pos string
	msg string
}

func (e *rtError) Error() string {
	if e.pos == "" {
		return "runtime error: " + e.msg
	}
	return "runtime error at " + e.pos + ": " + e.msg
}

func rte(pos, msg string) *rtError { return &rtError{pos: pos, msg: msg} }

func truthy(v value) bool {
	switch v.k {
	case kNil:
		return false
	case kBool, kInt:
		return v.i != 0
	case kFloat:
		return v.f != 0
	default:
		return true
	}
}

func isnum(v value) bool { return v.k == kInt || v.k == kFloat }

func tofloat(v value) float64 {
	if v.k == kFloat {
		return v.f
	}
	return float64(v.i)
}

// identical is reference identity (==): numeric cross-kind comparison is
// value equality, interior references compare by (container, base).
func identical(a, b value) bool {
	if a.k != b.k {
		if isnum(a) && isnum(b) {
			return tofloat(a) == tofloat(b)
		}
		return false
	}
	switch a.k {
	case kNil:
		return true
	case kInt, kBool:
		return a.i == b.i
	case kFloat:
		return a.f == b.f
	case kStr:
		return a.s == b.s
	case kObj:
		return a.o == b.o
	case kArr:
		return a.a == b.a
	case kInterior:
		return a.a == b.a && a.base == b.base
	}
	return false
}

// vstring renders a value the way the print builtin does.
func vstring(v value) string {
	switch v.k {
	case kNil:
		return "nil"
	case kInt:
		return strconv.FormatInt(v.i, 10)
	case kFloat:
		return strconv.FormatFloat(v.f, 'g', 10, 64)
	case kBool:
		if v.i != 0 {
			return "true"
		}
		return "false"
	case kStr:
		return v.s
	case kObj:
		return "<" + v.o.pname() + ">"
	case kArr:
		return "<array len=" + strconv.Itoa(v.a.length) + ">"
	case kInterior:
		return "<interior>"
	}
	return "<?>"
}

func issub(c, owner int32) bool {
	for ; c >= 0; c = supers[c] {
		if c == owner {
			return true
		}
	}
	return false
}

// getfield loads a field from an object or interior reference. Slot-bound
// references (slot >= 0, owner >= 0) hit the struct member directly when
// the receiver's class descends from the binding owner; otherwise the
// dynamic by-name path runs, exactly like the VM's resolveSlot fallback.
func getfield(recv value, slot, owner int, name, pos string) value {
	switch recv.k {
	case kObj:
		o := recv.o
		if slot >= 0 && owner >= 0 && issub(o.cid(), int32(owner)) {
			return o.get(slot)
		}
		s := o.slotOf(name)
		if s < 0 {
			panic(rte(pos, "class "+o.cname()+" has no field "+name))
		}
		return o.get(s)
	case kInterior:
		if slot < 0 || owner >= 0 {
			panic(rte(pos, "unspecialized field access "+strconv.Quote(name)+" on interior reference"))
		}
		a := recv.a
		if a.cols != nil {
			return a.cols[slot][recv.base]
		}
		return a.elems[recv.base+slot]
	case kNil:
		panic(rte(pos, "field "+name+" of nil"))
	}
	panic(rte(pos, "field "+name+" of "+kindNames[recv.k]+" value"))
}

func setfield(recv, v value, slot, owner int, name, pos string) {
	switch recv.k {
	case kObj:
		o := recv.o
		if slot >= 0 && owner >= 0 && issub(o.cid(), int32(owner)) {
			o.set(slot, v)
			return
		}
		s := o.slotOf(name)
		if s < 0 {
			panic(rte(pos, "class "+o.cname()+" has no field "+name))
		}
		o.set(s, v)
		return
	case kInterior:
		if slot < 0 || owner >= 0 {
			panic(rte(pos, "unspecialized field store "+strconv.Quote(name)+" on interior reference"))
		}
		a := recv.a
		if a.cols != nil {
			a.cols[slot][recv.base] = v
			return
		}
		a.elems[recv.base+slot] = v
		return
	case kNil:
		panic(rte(pos, "store to field "+name+" of nil"))
	}
	panic(rte(pos, "store to field "+name+" of "+kindNames[recv.k]+" value"))
}

func wantint(v value, pos string) int64 {
	if v.k != kInt {
		panic(rte(pos, "expected int, got "+kindNames[v.k]))
	}
	return v.i
}

func wantnum(v value, pos string) float64 {
	if !isnum(v) {
		panic(rte(pos, "expected number, got "+kindNames[v.k]))
	}
	return tofloat(v)
}

func newarr(n value, pos string) value {
	ln := wantint(n, pos)
	if ln < 0 {
		panic(rte(pos, "negative array length "+strconv.FormatInt(ln, 10)))
	}
	return aval(&array{length: int(ln), elems: make([]value, int(ln))})
}

func newinl(n value, stride int, parallel bool, pos string) value {
	ln := wantint(n, pos)
	if ln < 0 {
		panic(rte(pos, "negative array length "+strconv.FormatInt(ln, 10)))
	}
	a := &array{length: int(ln), stride: stride}
	if parallel {
		a.cols = make([][]value, stride)
		for i := range a.cols {
			a.cols[i] = make([]value, int(ln))
		}
	} else {
		a.elems = make([]value, int(ln)*stride)
	}
	return aval(a)
}

func index(a *array, iv value, pos string) int {
	i := wantint(iv, pos)
	if i < 0 || int(i) >= a.length {
		panic(rte(pos, "array index "+strconv.FormatInt(i, 10)+" out of range [0,"+strconv.Itoa(a.length)+")"))
	}
	return int(i)
}

func arrget(av, iv value, pos string) value {
	if av.k != kArr {
		panic(rte(pos, "indexing a "+kindNames[av.k]+" value"))
	}
	a := av.a
	i := index(a, iv, pos)
	if a.stride != 0 {
		panic(rte(pos, "plain load from inlined array (unspecialized access)"))
	}
	return a.elems[i]
}

func arrset(av, iv, v value, pos string) {
	if av.k != kArr {
		panic(rte(pos, "indexing a "+kindNames[av.k]+" value"))
	}
	a := av.a
	i := index(a, iv, pos)
	if a.stride != 0 {
		panic(rte(pos, "plain store to inlined array (unspecialized access)"))
	}
	a.elems[i] = v
}

func arrinterior(av, iv value, pos string) value {
	if av.k != kArr {
		panic(rte(pos, "indexing a "+kindNames[av.k]+" value"))
	}
	a := av.a
	i := index(a, iv, pos)
	if a.stride == 0 {
		panic(rte(pos, "interior reference into a plain array"))
	}
	if a.cols != nil {
		return value{k: kInterior, a: a, base: i}
	}
	return value{k: kInterior, a: a, base: i * a.stride}
}

// Binary operator codes; order mirrors the IR's BinOp enum.
const (
	opAdd = 0
	opSub = 1
	opMul = 2
	opDiv = 3
	opMod = 4
	opEq  = 5
	opNe  = 6
	opLt  = 7
	opLe  = 8
	opGt  = 9
	opGe  = 10
)

var opSyms = [...]string{"+", "-", "*", "/", "%", "==", "!=", "<", "<=", ">", ">="}

func arith(op int, x, y value, pos string) value {
	switch op {
	case opEq:
		return bval(identical(x, y))
	case opNe:
		return bval(!identical(x, y))
	}
	if x.k == kStr && y.k == kStr {
		switch op {
		case opAdd:
			return sval(x.s + y.s)
		case opLt:
			return bval(x.s < y.s)
		case opLe:
			return bval(x.s <= y.s)
		case opGt:
			return bval(x.s > y.s)
		case opGe:
			return bval(x.s >= y.s)
		}
		panic(rte(pos, "operator "+opSyms[op]+" not defined on strings"))
	}
	if !isnum(x) || !isnum(y) {
		panic(rte(pos, "operator "+opSyms[op]+" on "+kindNames[x.k]+" and "+kindNames[y.k]))
	}
	if x.k == kInt && y.k == kInt {
		a, b := x.i, y.i
		switch op {
		case opAdd:
			return ival(a + b)
		case opSub:
			return ival(a - b)
		case opMul:
			return ival(a * b)
		case opDiv:
			if b == 0 {
				panic(rte(pos, "integer division by zero"))
			}
			return ival(a / b)
		case opMod:
			if b == 0 {
				panic(rte(pos, "integer modulo by zero"))
			}
			return ival(a % b)
		case opLt:
			return bval(a < b)
		case opLe:
			return bval(a <= b)
		case opGt:
			return bval(a > b)
		case opGe:
			return bval(a >= b)
		}
	}
	a, b := tofloat(x), tofloat(y)
	switch op {
	case opAdd:
		return fval(a + b)
	case opSub:
		return fval(a - b)
	case opMul:
		return fval(a * b)
	case opDiv:
		return fval(a / b)
	case opMod:
		return fval(math.Mod(a, b))
	case opLt:
		return bval(a < b)
	case opLe:
		return bval(a <= b)
	case opGt:
		return bval(a > b)
	case opGe:
		return bval(a >= b)
	}
	panic(rte(pos, "unknown binary operator"))
}

func uneg(x value, pos string) value {
	switch x.k {
	case kInt:
		return ival(-x.i)
	case kFloat:
		return fval(-x.f)
	}
	panic(rte(pos, "negating a "+kindNames[x.k]+" value"))
}

var (
	out   = bufio.NewWriter(os.Stdout)
	muted bool
)

func bprint(args ...value) value {
	if !muted {
		for i, a := range args {
			if i > 0 {
				out.WriteByte(' ')
			}
			out.WriteString(vstring(a))
		}
		out.WriteByte('\n')
	}
	return value{}
}

func bsqrt(v value, pos string) value  { return fval(math.Sqrt(wantnum(v, pos))) }
func bfloor(v value, pos string) value { return fval(math.Floor(wantnum(v, pos))) }

func babs(v value, pos string) value {
	switch v.k {
	case kInt:
		if v.i < 0 {
			return ival(-v.i)
		}
		return v
	case kFloat:
		return fval(math.Abs(v.f))
	}
	panic(rte(pos, "abs of "+kindNames[v.k]+" value"))
}

func bminmax(isMin bool, x, y value, pos string) value {
	if x.k == kInt && y.k == kInt {
		if isMin == (x.i < y.i) {
			return x
		}
		return y
	}
	a := wantnum(x, pos)
	c := wantnum(y, pos)
	if isMin == (a < c) {
		return fval(a)
	}
	return fval(c)
}

func blen(v value, pos string) value {
	switch v.k {
	case kArr:
		return ival(int64(v.a.length))
	case kStr:
		return ival(int64(len(v.s)))
	}
	panic(rte(pos, "len of "+kindNames[v.k]+" value"))
}

func bintof(v value, pos string) value {
	switch v.k {
	case kInt:
		return v
	case kFloat:
		return ival(int64(v.f))
	}
	panic(rte(pos, "intof of "+kindNames[v.k]+" value"))
}

func bfloatof(v value, pos string) value { return fval(wantnum(v, pos)) }

func bassert(v value, pos string) value {
	if !truthy(v) {
		panic(rte(pos, "assertion failed"))
	}
	return value{}
}

func bstrcat(x, y value) value { return sval(vstring(x) + vstring(y)) }

func bbxor(x, y value, pos string) value {
	if x.k != kInt || y.k != kInt {
		panic(rte(pos, "bxor needs ints, got "+kindNames[x.k]+" and "+kindNames[y.k]))
	}
	return ival(x.i ^ y.i)
}

// main drives the generated program through the harness protocol: run
// -reps times (output muted after the first), write the measurement
// record, and exit 3 with the trap text on stderr if the program trapped.
func main() {
	reps := 1
	measure := ""
	for _, a := range os.Args[1:] {
		switch {
		case strings.HasPrefix(a, "-reps="):
			if n, err := strconv.Atoi(a[len("-reps="):]); err == nil && n > 0 {
				reps = n
			}
		case strings.HasPrefix(a, "-measure="):
			measure = a[len("-measure="):]
		}
	}
	runtime.GC()
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	trap := ""
	for rep := 0; rep < reps; rep++ {
		muted = rep > 0
		resetGlobals()
		if trap = runOnce(); trap != "" {
			break
		}
	}
	wall := time.Since(start).Nanoseconds()
	runtime.ReadMemStats(&ms1)
	out.Flush()
	if measure != "" {
		f, err := os.Create(measure)
		if err == nil {
			fmt.Fprintf(f, "{\"wall_nanos\":%d,\"reps\":%d,\"mallocs\":%d,\"alloc_bytes\":%d,\"trapped\":%t}\n",
				wall, reps, ms1.Mallocs-ms0.Mallocs, ms1.TotalAlloc-ms0.TotalAlloc, trap != "")
			f.Close()
		}
	}
	if trap != "" {
		fmt.Fprintln(os.Stderr, trap)
		os.Exit(3)
	}
}

// ---- generated program ----
`
