package emit_test

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"objinline/internal/emit"
	"objinline/internal/pipeline"
)

// compileN compiles n distinct tiny programs, each printing a different
// constant so their outputs are distinguishable.
func compileN(t *testing.T, n int) []*pipeline.Compiled {
	t.Helper()
	out := make([]*pipeline.Compiled, n)
	for i := range out {
		src := fmt.Sprintf("func main() { print(%d); }", 1000+i)
		c, err := pipeline.Compile(fmt.Sprintf("b%d.icc", i), src, pipeline.Config{Mode: pipeline.ModeInline})
		if err != nil {
			t.Fatalf("compile %d: %v", i, err)
		}
		out[i] = c
	}
	return out
}

// TestBatchBuilderCoalesces is the satellite's contract: N concurrent
// distinct programs must trigger fewer toolchain invocations than N, and
// every program must still run correctly from its shared-module binary.
func TestBatchBuilderCoalesces(t *testing.T) {
	t.Parallel()
	const n = 4
	progs := compileN(t, n)
	b := emit.NewBatchBuilder()
	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()

	outs := make([]string, n)
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i, c := range progs {
		wg.Add(1)
		go func(i int, c *pipeline.Compiled) {
			defer wg.Done()
			built, err := b.Build(ctx, c.Prog, emit.BuildOptions{})
			if err != nil {
				errs[i] = err
				return
			}
			defer built.Close()
			var buf bytes.Buffer
			if _, err := built.Run(ctx, &buf, 1); err != nil {
				errs[i] = err
				return
			}
			outs[i] = buf.String()
		}(i, c)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("program %d: %v", i, err)
		}
	}
	for i, out := range outs {
		want := fmt.Sprintf("%d\n", 1000+i)
		if out != want {
			t.Errorf("program %d printed %q, want %q", i, out, want)
		}
	}
	if inv := b.ToolchainInvocations(); inv >= n {
		t.Fatalf("%d concurrent programs took %d toolchain invocations; batching should need fewer", n, inv)
	}
}

// TestBatchBuilderSharedDirLifetime: the shared module directory must
// survive until the LAST member closes, and disappear after.
func TestBatchBuilderSharedDirLifetime(t *testing.T) {
	t.Parallel()
	progs := compileN(t, 3)
	b := emit.NewBatchBuilder()
	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()

	builts := make([]*emit.Built, len(progs))
	var wg sync.WaitGroup
	for i, c := range progs {
		wg.Add(1)
		go func(i int, c *pipeline.Compiled) {
			defer wg.Done()
			built, err := b.Build(ctx, c.Prog, emit.BuildOptions{})
			if err != nil {
				t.Errorf("build %d: %v", i, err)
				return
			}
			builts[i] = built
		}(i, c)
	}
	wg.Wait()
	for _, built := range builts {
		if built == nil {
			t.Fatal("a build failed")
		}
	}
	// Close all but one; every binary must still exist (they may share a
	// module, and a batchmate's Close must not pull it out from under us).
	for _, built := range builts[:len(builts)-1] {
		built.Close()
	}
	last := builts[len(builts)-1]
	if _, err := os.Stat(last.Bin); err != nil {
		t.Fatalf("binary vanished while its Built was still open: %v", err)
	}
	var buf bytes.Buffer
	if _, err := last.Run(ctx, &buf, 1); err != nil {
		t.Fatalf("run after batchmates closed: %v", err)
	}
	last.Close()
}

// TestBatchBuilderSequentialUnbatched: with no concurrency each build is
// its own cycle — exactly one invocation per program, nothing queued.
func TestBatchBuilderSequentialUnbatched(t *testing.T) {
	t.Parallel()
	progs := compileN(t, 2)
	b := emit.NewBatchBuilder()
	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()
	for i, c := range progs {
		built, err := b.Build(ctx, c.Prog, emit.BuildOptions{})
		if err != nil {
			t.Fatalf("build %d: %v", i, err)
		}
		built.Close()
	}
	if inv := b.ToolchainInvocations(); inv != 2 {
		t.Fatalf("sequential builds took %d invocations, want 2", inv)
	}
	if bp := b.BatchedPrograms(); bp != 0 {
		t.Fatalf("sequential builds counted %d batched programs, want 0", bp)
	}
}

// TestBatchBuilderExplicitDirBypasses: a caller pinning the emit dir gets
// a standalone module, not a slice of the shared one.
func TestBatchBuilderExplicitDirBypasses(t *testing.T) {
	t.Parallel()
	progs := compileN(t, 1)
	b := emit.NewBatchBuilder()
	dir := t.TempDir() + "/kept"
	built, err := b.Build(context.Background(), progs[0].Prog, emit.BuildOptions{Dir: dir})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	built.Close()
	if _, err := os.Stat(dir + "/main.go"); err != nil {
		t.Fatalf("explicit dir not kept: %v", err)
	}
}
