// Package emit is the native execution tier: it walks the optimized IR
// and emits one self-contained, compilable Go package per program, then
// (native.go) builds and runs it on real hardware.
//
// The emission mapping realizes the paper's claim physically:
//
//   - every class — including the optimizer's restructured versions —
//     becomes a Go struct with one flat member per slot, so synthetic
//     slots (the flattened state of inlined children) are true inline
//     allocation: no header words, no indirection, one contiguous block;
//   - inlined arrays become flat []value buffers (or parallel column
//     vectors), matching the VM's object-order and parallel layouts;
//   - dynamic dispatch becomes a generated tag-switch function per
//     (method name, arity): a Go type switch over the concrete receiver
//     structs whose arms are direct calls to the resolved target, i.e.
//     the dispatch table is compiled into branchable code;
//   - devirtualized calls (OpCallStatic) become plain Go calls.
//
// The emitted program replicates the VM's observable semantics exactly —
// print rendering, float formatting, trap messages, identity semantics —
// so differential tests can require byte-identical stdout and identical
// runtime-error text across engines. The only modeled behavior with no
// native equivalent is the VM's step limit (a runaway program is bounded
// by the harness deadline instead) and its synthetic cycle/cache-miss
// accounting (the point of the native tier is to measure real wall-clock
// and allocator behavior; see the calibration figure in internal/bench).
//
// Emission is deterministic: identical IR produces byte-identical Go
// source, so the solver differential guarantees (sweep ≡ worklist ≡
// parallel) carry over to the native tier by construction.
package emit

import (
	"bytes"
	"fmt"
	"go/format"
	"math"
	"sort"
	"strconv"
	"strings"

	"objinline/internal/ir"
	"objinline/internal/lower"
)

// dispatchKey identifies one generated tag-switch dispatch function.
type dispatchKey struct {
	method string
	arity  int // argument count not counting the receiver
}

type emitter struct {
	prog *ir.Program
	buf  bytes.Buffer

	classes  []*ir.Class
	classIdx map[*ir.Class]int

	funcName map[*ir.Func]string

	dispatch     map[dispatchKey]string
	dispatchKeys []dispatchKey
}

// Emit renders prog as a self-contained Go main package. The result is
// gofmt-formatted and deterministic: the same IR yields the same bytes.
func Emit(prog *ir.Program) ([]byte, error) {
	if prog.Main == nil {
		return nil, fmt.Errorf("emit: program has no main")
	}
	e := &emitter{
		prog:     prog,
		classIdx: make(map[*ir.Class]int),
		funcName: make(map[*ir.Func]string),
		dispatch: make(map[dispatchKey]string),
	}
	e.indexClasses()
	e.indexFuncs()
	e.indexDispatch()

	e.header()
	e.tables()
	for i, c := range e.classes {
		e.classDecl(i, c)
	}
	for _, k := range e.dispatchKeys {
		e.dispatchFunc(k)
	}
	for _, f := range prog.Funcs {
		if err := e.function(f); err != nil {
			return nil, err
		}
	}
	e.mainScaffold()

	src, err := format.Source(e.buf.Bytes())
	if err != nil {
		// A formatting failure means the generator produced invalid Go —
		// surface the raw source for diagnosis.
		return nil, fmt.Errorf("emit: generated source does not parse: %v\n%s", err, e.buf.Bytes())
	}
	return src, nil
}

// indexClasses assigns a dense id to every class reachable from the
// program in deterministic order: declared classes first, then anything
// discovered through function metadata (defensive; the optimizer
// registers its class versions, so this normally adds nothing).
func (e *emitter) indexClasses() {
	var add func(c *ir.Class)
	add = func(c *ir.Class) {
		if c == nil {
			return
		}
		if _, ok := e.classIdx[c]; ok {
			return
		}
		e.classIdx[c] = len(e.classes)
		e.classes = append(e.classes, c)
		add(c.Super)
	}
	for _, c := range e.prog.Classes {
		add(c)
	}
	for _, f := range e.prog.Funcs {
		add(f.Class)
		f.Instrs(func(_ *ir.Block, in *ir.Instr) {
			add(in.Class)
			if in.Field != nil {
				add(in.Field.Owner)
			}
		})
	}
}

func (e *emitter) indexFuncs() {
	for _, f := range e.prog.Funcs {
		e.funcName[f] = fmt.Sprintf("fn%d_%s", f.ID, san(f.FullName()))
	}
}

func (e *emitter) indexDispatch() {
	for _, f := range e.prog.Funcs {
		f.Instrs(func(_ *ir.Block, in *ir.Instr) {
			if in.Op != ir.OpCallMethod {
				return
			}
			k := dispatchKey{method: in.Method, arity: len(in.Args) - 1}
			if _, ok := e.dispatch[k]; !ok {
				e.dispatch[k] = ""
				e.dispatchKeys = append(e.dispatchKeys, k)
			}
		})
	}
	sort.Slice(e.dispatchKeys, func(i, j int) bool {
		a, b := e.dispatchKeys[i], e.dispatchKeys[j]
		if a.method != b.method {
			return a.method < b.method
		}
		return a.arity < b.arity
	})
	for i, k := range e.dispatchKeys {
		e.dispatch[k] = fmt.Sprintf("dyn%d_%s_%d", i, san(k.method), k.arity)
	}
}

func (e *emitter) className(c *ir.Class) string {
	return fmt.Sprintf("c%d_%s", e.classIdx[c], san(c.Name))
}

// fieldMember names the struct member for slot i of class c.
func fieldMember(f *ir.Field) string {
	return fmt.Sprintf("s%d_%s", f.Slot, san(f.Name))
}

func (e *emitter) p(format string, args ...any) {
	fmt.Fprintf(&e.buf, format, args...)
	e.buf.WriteByte('\n')
}

func (e *emitter) header() {
	e.p("// Code generated from optimized IR by objinline (internal/emit). DO NOT EDIT.")
	e.p("//")
	e.p("// Classes are structs with one flat member per slot (synthetic slots are")
	e.p("// the inlined state of child objects), dynamic dispatch is a type switch")
	e.p("// per (method, arity), and observable behavior matches the reference VM.")
	e.p("package main")
	e.p("")
	e.p("import (")
	for _, imp := range []string{"bufio", "fmt", "math", "os", "runtime", "strconv", "strings", "time"} {
		e.p("\t%q", imp)
	}
	e.p(")")
	e.p("")
	e.buf.WriteString(runtimeSrc)
	e.p("")
}

// tables emits the class metadata the runtime helpers consult: the super
// table for subclass tests and the name tables for errors and printing.
func (e *emitter) tables() {
	e.p("// Class metadata, indexed by dense class id.")
	e.p("var supers = []int32{")
	for _, c := range e.classes {
		sup := int32(-1)
		if c.Super != nil {
			sup = int32(e.classIdx[c.Super])
		}
		e.p("\t%d, // %s", sup, c.Name)
	}
	e.p("}")
	e.p("")
	e.p("var classNames = []string{")
	for _, c := range e.classes {
		e.p("\t%s,", strconv.Quote(c.Name))
	}
	e.p("}")
	e.p("")
	e.p("// printNames are the source-level class names print renders (class")
	e.p("// versions must be observationally identical to their origin).")
	e.p("var printNames = []string{")
	for _, c := range e.classes {
		pn := c.Name
		if c.Origin != nil {
			pn = c.Origin.Name
		}
		e.p("\t%s,", strconv.Quote(pn))
	}
	e.p("}")
	e.p("")
}

func (e *emitter) classDecl(idx int, c *ir.Class) {
	tn := e.className(c)
	e.p("type %s struct {", tn)
	if len(c.Fields) == 0 {
		// A zero-size struct would let Go place distinct instances at the
		// same address, breaking reference identity; pad to one byte.
		e.p("\t_ byte")
	}
	for _, f := range c.Fields {
		e.p("\t%s value", fieldMember(f))
	}
	e.p("}")
	e.p("")
	e.p("func (o *%s) cid() int32     { return %d }", tn, idx)
	e.p("func (o *%s) cname() string  { return classNames[%d] }", tn, idx)
	e.p("func (o *%s) pname() string  { return printNames[%d] }", tn, idx)

	e.p("func (o *%s) get(slot int) value {", tn)
	if len(c.Fields) > 0 {
		e.p("\tswitch slot {")
		for _, f := range c.Fields {
			e.p("\tcase %d:", f.Slot)
			e.p("\t\treturn o.%s", fieldMember(f))
		}
		e.p("\t}")
	}
	e.p("\tpanic(\"bad slot\")")
	e.p("}")

	e.p("func (o *%s) set(slot int, v value) {", tn)
	e.p("\tswitch slot {")
	for _, f := range c.Fields {
		e.p("\tcase %d:", f.Slot)
		e.p("\t\to.%s = v", fieldMember(f))
	}
	e.p("\tdefault:")
	e.p("\t\tpanic(\"bad slot\")")
	e.p("\t}")
	e.p("}")

	// Name lookup mirrors the VM's slotByName map: last declaration wins
	// for a repeated name, cases emitted in first-encounter order.
	names := []string{}
	slotByName := map[string]int{}
	for _, f := range c.Fields {
		if _, ok := slotByName[f.Name]; !ok {
			names = append(names, f.Name)
		}
		slotByName[f.Name] = f.Slot
	}
	e.p("func (o *%s) slotOf(name string) int {", tn)
	if len(names) > 0 {
		e.p("\tswitch name {")
		for _, n := range names {
			e.p("\tcase %s:", strconv.Quote(n))
			e.p("\t\treturn %d", slotByName[n])
		}
		e.p("\t}")
	}
	e.p("\treturn -1")
	e.p("}")
	e.p("")
}

// dispatchFunc emits the tag-switch dispatcher for one (method, arity):
// a type switch over every concrete receiver class, with each arm either
// a direct call to the statically resolved override or the exact arity
// trap the VM raises; lookup failure traps in the default arm. The trap
// order (lookup before arity) matches the interpreter.
func (e *emitter) dispatchFunc(k dispatchKey) {
	name := e.dispatch[k]
	params := make([]string, 0, k.arity+2)
	params = append(params, "pos string", "r0 value")
	args := []string{"r0"}
	for i := 1; i <= k.arity; i++ {
		params = append(params, fmt.Sprintf("a%d value", i))
		args = append(args, fmt.Sprintf("a%d", i))
	}
	e.p("func %s(%s) value {", name, strings.Join(params, ", "))
	e.p("\tif r0.k != kObj {")
	e.p("\t\tpanic(rte(pos, \"method %s called on \"+kindNames[r0.k]+\" value\"))", k.method)
	e.p("\t}")
	e.p("\tswitch r0.o.(type) {")
	for _, c := range e.classes {
		target := c.LookupMethod(k.method)
		if target == nil {
			continue
		}
		e.p("\tcase *%s:", e.className(c))
		if target.NumParams != k.arity {
			e.p("\t\tpanic(rte(pos, %s))", strconv.Quote(fmt.Sprintf(
				"%s takes %d arguments, got %d", target.FullName(), target.NumParams, k.arity)))
			continue
		}
		call := e.funcName[target] + "(" + strings.Join(args, ", ") + ")"
		e.p("\t\treturn %s", call)
	}
	e.p("\tdefault:")
	e.p("\t\tpanic(rte(pos, \"class \"+r0.o.cname()+\" has no method %s\"))", k.method)
	e.p("\t}")
	e.p("}")
	e.p("")
}

// paramCount returns the Go parameter count of f's emitted signature.
func paramCount(f *ir.Func) int {
	if f.Class != nil {
		return f.NumParams + 1
	}
	return f.NumParams
}

func (e *emitter) function(f *ir.Func) error {
	nparams := paramCount(f)

	// Reachability from the entry block: unreachable blocks are dropped
	// (emitting them would trip go vet's unreachable-code analyzer), and
	// only jump targets get labels (unused labels are compile errors).
	reach := map[int]bool{}
	targets := map[int]bool{}
	var walk func(id int)
	walk = func(id int) {
		if id < 0 || id >= len(f.Blocks) || reach[id] {
			return
		}
		reach[id] = true
		b := f.Blocks[id]
		if len(b.Instrs) == 0 {
			return
		}
		last := b.Instrs[len(b.Instrs)-1]
		switch last.Op {
		case ir.OpJump:
			targets[last.Target] = true
			walk(last.Target)
		case ir.OpBranch:
			targets[last.Target] = true
			targets[last.Else] = true
			walk(last.Target)
			walk(last.Else)
		}
	}
	if len(f.Blocks) == 0 {
		return fmt.Errorf("emit: function %s has no blocks", f.FullName())
	}
	walk(0)

	// Registers beyond the parameters are locals; declare the ones the
	// reachable body touches up front (Go forbids goto over declarations)
	// with a blank use (assignment alone does not count as use).
	used := map[ir.Reg]bool{}
	note := func(r ir.Reg) {
		if int(r) >= nparams && r != ir.NoReg {
			used[r] = true
		}
	}
	for id := range f.Blocks {
		if !reach[id] {
			continue
		}
		for _, in := range f.Blocks[id].Instrs {
			note(in.Dst)
			for _, a := range in.Args {
				note(a)
			}
		}
	}
	var locals []ir.Reg
	for r := range used {
		locals = append(locals, r)
	}
	sort.Slice(locals, func(i, j int) bool { return locals[i] < locals[j] })

	params := make([]string, nparams)
	for i := range params {
		params[i] = fmt.Sprintf("r%d value", i)
	}
	e.p("func %s(%s) value {", e.funcName[f], strings.Join(params, ", "))
	if len(locals) > 0 {
		decls := make([]string, len(locals))
		blanks := make([]string, len(locals))
		for i, r := range locals {
			decls[i] = fmt.Sprintf("r%d", r)
			blanks[i] = "_"
		}
		e.p("\tvar %s value", strings.Join(decls, ", "))
		e.p("\t%s = %s", strings.Join(blanks, ", "), strings.Join(decls, ", "))
	}

	for id := range f.Blocks {
		if !reach[id] {
			continue
		}
		b := f.Blocks[id]
		if targets[id] {
			e.p("b%d:", id)
		}
		if len(b.Instrs) == 0 || !b.Instrs[len(b.Instrs)-1].IsTerminator() {
			return fmt.Errorf("emit: block b%d in %s does not end in a terminator", id, f.FullName())
		}
		for _, in := range b.Instrs {
			if err := e.instr(f, in); err != nil {
				return err
			}
		}
	}
	e.p("}")
	e.p("")
	return nil
}

// posLit renders an instruction's source position as the string literal
// the runtime error constructor expects ("" for an unknown position).
func posLit(in *ir.Instr) string {
	if !in.Pos.IsValid() {
		return `""`
	}
	return strconv.Quote(in.Pos.String())
}

// binOpConst maps an ir.BinOp to the preamble's operator constant.
var binOpConst = [...]string{
	ir.BinAdd: "opAdd", ir.BinSub: "opSub", ir.BinMul: "opMul",
	ir.BinDiv: "opDiv", ir.BinMod: "opMod", ir.BinEq: "opEq",
	ir.BinNe: "opNe", ir.BinLt: "opLt", ir.BinLe: "opLe",
	ir.BinGt: "opGt", ir.BinGe: "opGe",
}

func (e *emitter) instr(f *ir.Func, in *ir.Instr) error {
	r := func(i int) string { return fmt.Sprintf("r%d", in.Args[i]) }
	dst := fmt.Sprintf("r%d", in.Dst)
	switch in.Op {
	case ir.OpConstInt:
		e.p("\t%s = ival(%d)", dst, in.Aux)
	case ir.OpConstFloat:
		e.p("\t%s = fval(%s)", dst, floatLit(in.F))
	case ir.OpConstStr:
		e.p("\t%s = sval(%s)", dst, strconv.Quote(in.S))
	case ir.OpConstBool:
		e.p("\t%s = bval(%t)", dst, in.Aux != 0)
	case ir.OpConstNil:
		e.p("\t%s = value{}", dst)
	case ir.OpMove:
		if in.Dst != in.Args[0] {
			e.p("\t%s = %s", dst, r(0))
		}
	case ir.OpBin:
		e.p("\t%s = arith(%s, %s, %s, %s)", dst, binOpConst[ir.BinOp(in.Aux)], r(0), r(1), posLit(in))
	case ir.OpUn:
		if ir.UnOp(in.Aux) == ir.UnNot {
			e.p("\t%s = bval(!truthy(%s))", dst, r(0))
		} else {
			e.p("\t%s = uneg(%s, %s)", dst, r(0), posLit(in))
		}
	case ir.OpNewObject:
		e.p("\t%s = oval(&%s{})", dst, e.className(in.Class))
	case ir.OpNewArray:
		e.p("\t%s = newarr(%s, %s)", dst, r(0), posLit(in))
	case ir.OpNewArrayInl:
		e.p("\t%s = newinl(%s, %d, %t, %s)", dst, r(0), in.Class.NumSlots(), in.Aux == 1, posLit(in))
	case ir.OpGetField:
		slot, owner := e.fieldRef(in.Field)
		e.p("\t%s = getfield(%s, %d, %d, %s, %s)", dst, r(0), slot, owner, strconv.Quote(in.Field.Name), posLit(in))
	case ir.OpSetField:
		slot, owner := e.fieldRef(in.Field)
		e.p("\tsetfield(%s, %s, %d, %d, %s, %s)", r(0), r(1), slot, owner, strconv.Quote(in.Field.Name), posLit(in))
	case ir.OpArrGet:
		e.p("\t%s = arrget(%s, %s, %s)", dst, r(0), r(1), posLit(in))
	case ir.OpArrSet:
		e.p("\tarrset(%s, %s, %s, %s)", r(0), r(1), r(2), posLit(in))
	case ir.OpArrInterior:
		e.p("\t%s = arrinterior(%s, %s, %s)", dst, r(0), r(1), posLit(in))
	case ir.OpCall, ir.OpCallStatic:
		callee := in.Callee
		if callee == nil {
			return fmt.Errorf("emit: %s with nil callee in %s", in.Op, f.FullName())
		}
		n := paramCount(callee)
		args := make([]string, n)
		for i := 0; i < n; i++ {
			if i < len(in.Args) {
				args[i] = r(i)
			} else {
				args[i] = "value{}" // the VM leaves missing params nil
			}
		}
		e.p("\t%s = %s(%s)", dst, e.funcName[callee], strings.Join(args, ", "))
	case ir.OpCallMethod:
		k := dispatchKey{method: in.Method, arity: len(in.Args) - 1}
		args := make([]string, 0, len(in.Args)+1)
		args = append(args, posLit(in))
		for i := range in.Args {
			args = append(args, r(i))
		}
		e.p("\t%s = %s(%s)", dst, e.dispatch[k], strings.Join(args, ", "))
	case ir.OpGetGlobal:
		e.p("\t%s = globals[%d]", dst, in.Global)
	case ir.OpSetGlobal:
		e.p("\tglobals[%d] = %s", in.Global, r(0))
	case ir.OpBuiltin:
		e.builtin(in, dst, r)
	case ir.OpJump:
		e.p("\tgoto b%d", in.Target)
	case ir.OpBranch:
		e.p("\tif truthy(%s) {", r(0))
		e.p("\t\tgoto b%d", in.Target)
		e.p("\t}")
		e.p("\tgoto b%d", in.Else)
	case ir.OpReturn:
		if len(in.Args) > 0 {
			e.p("\treturn %s", r(0))
		} else {
			e.p("\treturn value{}")
		}
	case ir.OpTrap:
		e.p("\tpanic(rte(%s, %s))", posLit(in), strconv.Quote(in.S))
	default:
		return fmt.Errorf("emit: unknown op %v in %s", in.Op, f.FullName())
	}
	return nil
}

// fieldRef encodes a field reference the way the runtime helpers expect:
// slot < 0 or owner < 0 forces the dynamic by-name path, exactly like the
// VM's resolveSlot fallback for unbound or stale references.
func (e *emitter) fieldRef(f *ir.Field) (slot, owner int) {
	slot, owner = f.Slot, -1
	if f.Owner != nil {
		owner = e.classIdx[f.Owner]
	}
	return slot, owner
}

func (e *emitter) builtin(in *ir.Instr, dst string, r func(int) string) {
	pos := posLit(in)
	switch ir.Builtin(in.Aux) {
	case ir.BPrint:
		args := make([]string, len(in.Args))
		for i := range in.Args {
			args[i] = r(i)
		}
		e.p("\t%s = bprint(%s)", dst, strings.Join(args, ", "))
	case ir.BSqrt:
		e.p("\t%s = bsqrt(%s, %s)", dst, r(0), pos)
	case ir.BFloor:
		e.p("\t%s = bfloor(%s, %s)", dst, r(0), pos)
	case ir.BAbs:
		e.p("\t%s = babs(%s, %s)", dst, r(0), pos)
	case ir.BMin:
		e.p("\t%s = bminmax(true, %s, %s, %s)", dst, r(0), r(1), pos)
	case ir.BMax:
		e.p("\t%s = bminmax(false, %s, %s, %s)", dst, r(0), r(1), pos)
	case ir.BLen:
		e.p("\t%s = blen(%s, %s)", dst, r(0), pos)
	case ir.BIntOf:
		e.p("\t%s = bintof(%s, %s)", dst, r(0), pos)
	case ir.BFloatOf:
		e.p("\t%s = bfloatof(%s, %s)", dst, r(0), pos)
	case ir.BAssert:
		e.p("\t%s = bassert(%s, %s)", dst, r(0), pos)
	case ir.BStrCat:
		e.p("\t%s = bstrcat(%s, %s)", dst, r(0), r(1))
	case ir.BXor:
		e.p("\t%s = bbxor(%s, %s, %s)", dst, r(0), r(1), pos)
	default:
		e.p("\tpanic(rte(%s, \"unknown builtin\"))", pos)
	}
}

// mainScaffold emits the program-specific entry points the static
// preamble's main() drives: the global register file, per-rep reset, and
// runOnce ($init then main, traps recovered to their message text).
func (e *emitter) mainScaffold() {
	ng := len(e.prog.Globals)
	e.p("var globals [%d]value", ng)
	e.p("")
	e.p("func resetGlobals() {")
	e.p("\tglobals = [%d]value{}", ng)
	e.p("}")
	e.p("")
	e.p("func runOnce() (trap string) {")
	e.p("\tdefer func() {")
	e.p("\t\tif r := recover(); r != nil {")
	e.p("\t\t\tif e, ok := r.(*rtError); ok {")
	e.p("\t\t\t\ttrap = e.Error()")
	e.p("\t\t\t\treturn")
	e.p("\t\t\t}")
	e.p("\t\t\tpanic(r)")
	e.p("\t\t}")
	e.p("\t}()")
	if init := e.prog.FuncNamed(lower.InitFuncName); init != nil {
		e.p("\t%s", callWithNilArgs(e.funcName[init], paramCount(init)))
	}
	e.p("\t%s", callWithNilArgs(e.funcName[e.prog.Main], paramCount(e.prog.Main)))
	e.p("\treturn \"\"")
	e.p("}")
}

// callWithNilArgs renders a call statement passing nil values for every
// parameter (the VM invokes $init and main with no arguments).
func callWithNilArgs(name string, nparams int) string {
	args := make([]string, nparams)
	for i := range args {
		args[i] = "value{}"
	}
	return name + "(" + strings.Join(args, ", ") + ")"
}

// floatLit renders a float64 as a Go expression that reproduces the exact
// bit pattern (FormatFloat -1 round-trips; the special values need help).
func floatLit(f float64) string {
	switch {
	case math.IsNaN(f):
		return "math.NaN()"
	case math.IsInf(f, 1):
		return "math.Inf(1)"
	case math.IsInf(f, -1):
		return "math.Inf(-1)"
	case f == 0 && math.Signbit(f):
		return "math.Copysign(0, -1)"
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// san maps an IR name (which may contain the cloner's $ decorations or
// :: separators) to a Go identifier fragment; uniqueness comes from the
// numeric prefixes callers add.
func san(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch {
		case r == '_', r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "x"
	}
	return b.String()
}
