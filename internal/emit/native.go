package emit

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"objinline/internal/ir"
)

// RuntimeError is a Mini-ICC runtime failure raised by a natively
// compiled program. Its Error() text is exactly what vm.RuntimeError
// produces for the same failure, so differential tests can compare the
// two engines' errors as strings.
type RuntimeError struct{ Msg string }

func (e *RuntimeError) Error() string { return e.Msg }

// BuildOptions configures Build.
type BuildOptions struct {
	// Dir, when non-empty, is where the package is emitted (created if
	// needed, kept after Close — useful for inspection and CI's go vet).
	// Empty selects a fresh temp directory that Close removes.
	Dir string
}

// Built is a compiled native program: an emitted package directory plus
// its executable. Callers must Close it to release the temp directory.
type Built struct {
	Dir        string // package directory (main.go, go.mod, binary)
	Bin        string // executable path
	BuildNanos int64  // emit + go build wall time

	keep bool
	// cleanup, when non-nil, releases a shared batch directory instead of
	// the Dir/keep policy (see BatchBuilder).
	cleanup func()
}

// goModSrc pins the emitted package's module identity; it has no
// dependencies, so builds never touch the network.
const goModSrc = "module oicnative\n\ngo 1.24\n"

// Build emits prog as a Go package and compiles it with the go
// toolchain. The context bounds the build (exec.CommandContext kills the
// compiler on cancellation).
func Build(ctx context.Context, prog *ir.Program, opts BuildOptions) (*Built, error) {
	src, err := Emit(prog)
	if err != nil {
		return nil, err
	}
	dir := opts.Dir
	keep := dir != ""
	if keep {
		if err := os.MkdirAll(dir, 0o777); err != nil {
			return nil, fmt.Errorf("emit: create output dir: %w", err)
		}
		// The -o path below is resolved relative to cmd.Dir, and Bin
		// relative to the caller's cwd; an absolute dir keeps them the
		// same place.
		if dir, err = filepath.Abs(dir); err != nil {
			return nil, fmt.Errorf("emit: resolve output dir: %w", err)
		}
	} else {
		dir, err = os.MkdirTemp("", "oicnative-")
		if err != nil {
			return nil, fmt.Errorf("emit: create temp dir: %w", err)
		}
	}
	fail := func(err error) (*Built, error) {
		if !keep {
			os.RemoveAll(dir)
		}
		return nil, err
	}
	if err := os.WriteFile(filepath.Join(dir, "main.go"), src, 0o666); err != nil {
		return fail(fmt.Errorf("emit: write package: %w", err))
	}
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte(goModSrc), 0o666); err != nil {
		return fail(fmt.Errorf("emit: write go.mod: %w", err))
	}
	bin := filepath.Join(dir, "prog")
	start := time.Now()
	cmd := exec.CommandContext(ctx, "go", "build", "-buildvcs=false", "-o", bin, ".")
	cmd.Dir = dir
	var buildOut bytes.Buffer
	cmd.Stdout = &buildOut
	cmd.Stderr = &buildOut
	if err := cmd.Run(); err != nil {
		if ctx.Err() != nil {
			return fail(fmt.Errorf("emit: native build canceled: %w", context.Cause(ctx)))
		}
		return fail(fmt.Errorf("emit: go build failed: %v\n%s", err, buildOut.Bytes()))
	}
	return &Built{Dir: dir, Bin: bin, BuildNanos: time.Since(start).Nanoseconds(), keep: keep}, nil
}

// RunStats is one native execution's measurement record.
type RunStats struct {
	WallNanos  int64  `json:"wall_nanos"`  // total across all reps
	Reps       int    `json:"reps"`        // repetitions executed
	Mallocs    uint64 `json:"mallocs"`     // MemStats.Mallocs delta, all reps
	AllocBytes uint64 `json:"alloc_bytes"` // MemStats.TotalAlloc delta, all reps
	Trapped    bool   `json:"trapped"`
}

// Run executes the built program. Program stdout goes to out (io.Discard
// when nil); reps > 1 re-runs the program with printing muted after the
// first repetition so timing loops don't multiply output. A program trap
// returns a *RuntimeError whose text matches the VM's; cancellation kills
// the process and returns the context's error.
func (b *Built) Run(ctx context.Context, out io.Writer, reps int) (*RunStats, error) {
	if reps < 1 {
		reps = 1
	}
	mf, err := os.CreateTemp(b.Dir, "measure-")
	if err != nil {
		return nil, fmt.Errorf("emit: create measure file: %w", err)
	}
	mpath := mf.Name()
	mf.Close()
	defer os.Remove(mpath)

	cmd := exec.CommandContext(ctx, b.Bin, "-reps="+strconv.Itoa(reps), "-measure="+mpath)
	if out == nil {
		out = io.Discard
	}
	cmd.Stdout = out
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	cmd.WaitDelay = 5 * time.Second
	runErr := cmd.Run()
	if runErr != nil {
		if ctx.Err() != nil {
			return nil, fmt.Errorf("emit: native run canceled: %w", context.Cause(ctx))
		}
		var ee *exec.ExitError
		if errors.As(runErr, &ee) && ee.ExitCode() == 3 {
			return nil, &RuntimeError{Msg: strings.TrimSpace(stderr.String())}
		}
		return nil, fmt.Errorf("emit: native run failed: %v\n%s", runErr, stderr.Bytes())
	}
	data, err := os.ReadFile(mpath)
	if err != nil {
		return nil, fmt.Errorf("emit: read measurement: %w", err)
	}
	stats := &RunStats{}
	if err := json.Unmarshal(data, stats); err != nil {
		return nil, fmt.Errorf("emit: parse measurement: %w", err)
	}
	return stats, nil
}

// Close removes the package directory unless Build was given an explicit
// output directory to keep. A batch-built artifact instead drops its
// reference on the shared module directory, which is removed when the
// last batch member closes.
func (b *Built) Close() error {
	if b.cleanup != nil {
		b.cleanup()
		return nil
	}
	if b.keep {
		return nil
	}
	return os.RemoveAll(b.Dir)
}
