package emit_test

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"objinline/internal/analysis"
	"objinline/internal/bench"
	"objinline/internal/emit"
	"objinline/internal/pipeline"
	"objinline/internal/vm"
)

var allModes = []pipeline.Mode{pipeline.ModeDirect, pipeline.ModeBaseline, pipeline.ModeInline}

// runVM executes c on the reference VM, returning stdout and the
// runtime-error text ("" on success).
func runVM(t *testing.T, c *pipeline.Compiled) (string, string) {
	t.Helper()
	var buf bytes.Buffer
	_, err := c.RunContext(context.Background(), pipeline.RunOptions{Out: &buf, MaxSteps: bench.RunMaxSteps})
	if err != nil {
		var re *vm.RuntimeError
		if !errors.As(err, &re) {
			t.Fatalf("vm run failed: %v", err)
		}
		return buf.String(), re.Error()
	}
	return buf.String(), ""
}

// runNative builds and executes c on the native tier, returning stdout
// and the runtime-error text ("" on success).
func runNative(t *testing.T, c *pipeline.Compiled) (string, string) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	built, err := emit.Build(ctx, c.Prog, emit.BuildOptions{})
	if err != nil {
		t.Fatalf("native build failed: %v", err)
	}
	defer built.Close()
	var buf bytes.Buffer
	_, err = built.Run(ctx, &buf, 1)
	if err != nil {
		var re *emit.RuntimeError
		if !errors.As(err, &re) {
			t.Fatalf("native run failed: %v", err)
		}
		return buf.String(), re.Error()
	}
	return buf.String(), ""
}

// assertEngineIdentical compiles src at every mode and requires the
// native engine's observable behavior (stdout bytes and runtime-error
// text) to match the VM's exactly.
func assertEngineIdentical(t *testing.T, file, src string) {
	t.Helper()
	for _, mode := range allModes {
		c, err := pipeline.Compile(file, src, pipeline.Config{Mode: mode})
		if err != nil {
			t.Fatalf("%s: compile failed: %v", mode, err)
		}
		vmOut, vmErr := runVM(t, c)
		natOut, natErr := runNative(t, c)
		if natOut != vmOut {
			t.Errorf("%s: stdout differs\nvm:\n%q\nnative:\n%q", mode, vmOut, natOut)
		}
		if natErr != vmErr {
			t.Errorf("%s: runtime error differs\nvm:     %q\nnative: %q", mode, vmErr, natErr)
		}
	}
}

func TestNativeMatchesVMBasics(t *testing.T) {
	t.Parallel()
	assertEngineIdentical(t, "basics.icc", `
class Point {
  x; y;
  def init(a, b) { self.x = a; self.y = b; }
  def norm2() { return self.x * self.x + self.y * self.y; }
}
class Point3 : Point {
  z;
  def init(a, b, c) { self.x = a; self.y = b; self.z = c; }
  def norm2() { return self.x * self.x + self.y * self.y + self.z * self.z; }
}
func main() {
  var p = new Point(3, 4);
  var q = new Point3(1, 2, 2);
  print(p.norm2(), q.norm2());
  print(p, q, p == p, p == q, p != q);
  var acc = 0;
  for (var i = 0; i < 10; i = i + 1) { acc = acc + i * i; }
  print(acc, acc / 7, acc % 7, 0 - acc);
  print(1.5 + 2, 7 / 2, 7.0 / 2, 2 < 3, "a" + "b", "x" < "y");
  print(sqrt(2.0), floor(3.7), abs(0 - 4), abs(-4.5), min(3, 9), max(3, 9), min(2.5, 2), len("hello"));
  print(intof(3.9), floatof(2), strcat("n=", 42), bxor(12, 10));
  print(nil, true, false, !true, 0.1 + 0.2);
}
`)
}

func TestNativeMatchesVMContainers(t *testing.T) {
	t.Parallel()
	assertEngineIdentical(t, "containers.icc", `
class Inner {
  a; b;
  def init(x, y) { self.a = x; self.b = y; }
  def sum() { return self.a + self.b; }
}
class Outer {
  left; right; tag;
  def init(n) {
    self.left = new Inner(n, n + 1);
    self.right = new Inner(n * 2, n * 3);
    self.tag = n;
  }
  def total() { return self.left.sum() + self.right.sum() + self.tag; }
}
func main() {
  var arr = new [8];
  for (var i = 0; i < len(arr); i = i + 1) {
    arr[i] = new Outer(i);
  }
  var sum = 0;
  for (var j = 0; j < len(arr); j = j + 1) {
    sum = sum + arr[j].total();
  }
  print("total", sum);
  print(arr, arr[3].left.sum());
}
`)
}

func TestNativeMatchesVMTraps(t *testing.T) {
	t.Parallel()
	cases := map[string]string{
		"divzero.icc":   `func main() { var a = 10; var b = 0; print(a / b); }`,
		"modzero.icc":   `func main() { var a = 10; var b = 0; print(a % b); }`,
		"nilfield.icc":  `class C { x; } func main() { var c = nil; print(c.x); }`,
		"oob.icc":       `func main() { var a = new [3]; print(a[5]); }`,
		"negarr.icc":    `func main() { var n = 0 - 2; var a = new [n]; print(a); }`,
		"assert.icc":    `func main() { assert(1 < 1); }`,
		"badmeth.icc":   `class C { x; } func main() { var c = new C(); c.nope(); }`,
		"badarith.icc":  `func main() { var s = "a"; print(s * 2); }`,
		"badindex.icc":  `func main() { var a = new [3]; var i = 1.5; print(a[i]); }`,
		"intfield.icc":  `class C { x; } func main() { var i = 3; print(i.x); }`,
		"badcallee.icc": `func main() { var i = 3; i.m(); }`,
	}
	for file, src := range cases {
		t.Run(strings.TrimSuffix(file, ".icc"), func(t *testing.T) {
			t.Parallel()
			assertEngineIdentical(t, file, src)
		})
	}
}

// TestNativeMatchesVMBench is the acceptance gate: every bench program,
// inlining on and off, byte-identical stdout across engines.
func TestNativeMatchesVMBench(t *testing.T) {
	if testing.Short() {
		t.Skip("builds one native binary per configuration")
	}
	for _, p := range bench.Programs {
		for _, mode := range []pipeline.Mode{pipeline.ModeBaseline, pipeline.ModeInline} {
			t.Run(p.Name+"/"+mode.String(), func(t *testing.T) {
				t.Parallel()
				src, err := p.Source(bench.VariantAuto, bench.ScaleSmall)
				if err != nil {
					t.Fatal(err)
				}
				c, err := pipeline.Compile(p.Name+".icc", src, pipeline.Config{Mode: mode})
				if err != nil {
					t.Fatal(err)
				}
				vmOut, vmErr := runVM(t, c)
				natOut, natErr := runNative(t, c)
				if vmErr != "" || natErr != "" {
					t.Fatalf("bench program trapped: vm=%q native=%q", vmErr, natErr)
				}
				if natOut != vmOut {
					t.Errorf("stdout differs\nvm:\n%s\nnative:\n%s", vmOut, natOut)
				}
			})
		}
	}
}

// TestEmitDeterministicAcrossSolvers pins the native tier's solver
// invariance: all three fixpoint engines produce byte-identical IR
// (established by the solver differential suites), so the emitted Go
// source must be byte-identical too — no per-solver native builds needed.
func TestEmitDeterministicAcrossSolvers(t *testing.T) {
	t.Parallel()
	p, err := bench.ByName("richards")
	if err != nil {
		t.Fatal(err)
	}
	src, err := p.Source(bench.VariantAuto, bench.ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	var want []byte
	for _, solver := range []string{analysis.SolverWorklist, analysis.SolverSweep, analysis.SolverParallel} {
		cfg := pipeline.Config{Mode: pipeline.ModeInline}
		cfg.Analysis.Solver = solver
		if solver == analysis.SolverParallel {
			cfg.Analysis.Jobs = 4
		}
		c, err := pipeline.Compile("richards.icc", src, cfg)
		if err != nil {
			t.Fatalf("%s: %v", solver, err)
		}
		got, err := emit.Emit(c.Prog)
		if err != nil {
			t.Fatalf("%s: emit: %v", solver, err)
		}
		if want == nil {
			want = got
			continue
		}
		if !bytes.Equal(got, want) {
			t.Errorf("emitted source for solver %s differs from worklist's", solver)
		}
	}
	// And twice through the same compile must be byte-identical.
	c, err := pipeline.Compile("richards.icc", src, pipeline.Config{Mode: pipeline.ModeInline})
	if err != nil {
		t.Fatal(err)
	}
	a, err := emit.Emit(c.Prog)
	if err != nil {
		t.Fatal(err)
	}
	b, err := emit.Emit(c.Prog)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("Emit is not deterministic for identical input")
	}
}

// TestHarnessLeaks pins the build-and-run harness's hygiene: no temp
// directories survive Close, and no goroutines leak across a full
// build/run/close cycle (exec's copy goroutines must drain).
func TestHarnessLeaks(t *testing.T) {
	tmp := t.TempDir()
	t.Setenv("TMPDIR", tmp)

	c, err := pipeline.Compile("leak.icc", `func main() { print("ok"); }`, pipeline.Config{Mode: pipeline.ModeInline})
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		built, err := emit.Build(context.Background(), c.Prog, emit.BuildOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := built.Run(context.Background(), nil, 1); err != nil {
			t.Fatal(err)
		}
		if err := built.Close(); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(tmp)
	if err != nil {
		t.Fatal(err)
	}
	var leaked []string
	for _, e := range entries {
		// go build's own scratch space is outside TMPDIR control on some
		// platforms; we only assert our oicnative-* dirs are gone.
		if strings.HasPrefix(e.Name(), "oicnative-") {
			leaked = append(leaked, filepath.Join(tmp, e.Name()))
		}
	}
	if len(leaked) > 0 {
		t.Errorf("temp dirs leaked after Close: %v", leaked)
	}
	// Allow the runtime a moment to retire exec's internal goroutines.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutines leaked: %d before, %d after", before, after)
	}
}

// TestBuildKeepsExplicitDir pins the EmitDir contract the CLI and CI
// rely on: the package and binary stay on disk after Close.
func TestBuildKeepsExplicitDir(t *testing.T) {
	t.Parallel()
	c, err := pipeline.Compile("keep.icc", `func main() { print(7); }`, pipeline.Config{Mode: pipeline.ModeInline})
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "emitted")
	built, err := emit.Build(context.Background(), c.Prog, emit.BuildOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := built.Run(context.Background(), &buf, 1); err != nil {
		t.Fatal(err)
	}
	if err := built.Close(); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "7\n" {
		t.Errorf("output = %q, want %q", got, "7\n")
	}
	for _, f := range []string{"main.go", "go.mod", "prog"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("expected %s to survive Close: %v", f, err)
		}
	}
}

// TestBuildRelativeDir pins the case CI's native-smoke job exercises:
// BuildOptions.Dir given as a path relative to the process's working
// directory. go build's -o flag resolves relative to the package
// directory, not the cwd, so Build must absolutize the dir or the
// binary lands in a nested copy of the path and Run can't find it.
func TestBuildRelativeDir(t *testing.T) {
	c, err := pipeline.Compile("rel.icc", `func main() { print(11); }`, pipeline.Config{Mode: pipeline.ModeInline})
	if err != nil {
		t.Fatal(err)
	}
	t.Chdir(t.TempDir())
	built, err := emit.Build(context.Background(), c.Prog, emit.BuildOptions{Dir: "emitted"})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := built.Run(context.Background(), &buf, 1); err != nil {
		t.Fatalf("run from relative emit dir: %v", err)
	}
	if got := buf.String(); got != "11\n" {
		t.Errorf("output = %q, want %q", got, "11\n")
	}
	if _, err := os.Stat(filepath.Join("emitted", "prog")); err != nil {
		t.Errorf("binary not at emitted/prog: %v", err)
	}
	if _, err := os.Stat(filepath.Join("emitted", "emitted")); err == nil {
		t.Error("nested emitted/emitted directory created — -o path resolved relative to the package dir")
	}
}

// TestRunDeadline pins deadline enforcement: an infinite loop is killed
// by the context, and the error wraps context.DeadlineExceeded.
func TestRunDeadline(t *testing.T) {
	t.Parallel()
	c, err := pipeline.Compile("spin.icc", `func main() { var i = 0; while (1) { i = i + 1; } }`,
		pipeline.Config{Mode: pipeline.ModeDirect})
	if err != nil {
		t.Fatal(err)
	}
	built, err := emit.Build(context.Background(), c.Prog, emit.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer built.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = built.Run(ctx, nil, 1)
	if err == nil {
		t.Fatal("expected a cancellation error")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("error does not wrap DeadlineExceeded: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("kill took too long: %v", elapsed)
	}
}

// TestNativeRepsMuting pins the measurement protocol: reps > 1 must not
// multiply program output.
func TestNativeRepsMuting(t *testing.T) {
	t.Parallel()
	c, err := pipeline.Compile("reps.icc", `func main() { print("once"); }`, pipeline.Config{Mode: pipeline.ModeInline})
	if err != nil {
		t.Fatal(err)
	}
	built, err := emit.Build(context.Background(), c.Prog, emit.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer built.Close()
	var buf bytes.Buffer
	stats, err := built.Run(context.Background(), &buf, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "once\n" {
		t.Errorf("output = %q, want %q (muted reps)", got, "once\n")
	}
	if stats.Reps != 5 {
		t.Errorf("stats.Reps = %d, want 5", stats.Reps)
	}
	if stats.WallNanos <= 0 {
		t.Errorf("stats.WallNanos = %d, want > 0", stats.WallNanos)
	}
}
