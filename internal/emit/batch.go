package emit

// Build batching: concurrent native builds coalesce into one go-build
// invocation per drain cycle. The toolchain's fixed overhead (process
// start, module load, linking runtime) dominates a single tiny program's
// build, so N concurrent cache misses paying it once is close to N× off
// the critical path. Each program is emitted as its own main package in
// a subdirectory of one shared module and `go build ./...` compiles them
// all; the shared directory is removed when the last member Closes.

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"objinline/internal/ir"
)

// Builder abstracts Build so callers can route native builds through a
// batcher (or anything else). Build's contract: emit prog, compile it,
// return the runnable artifact; the context bounds the toolchain.
type Builder interface {
	Build(ctx context.Context, prog *ir.Program, opts BuildOptions) (*Built, error)
}

// DirectBuilder is the identity Builder: one toolchain invocation per
// call, exactly the package-level Build.
type DirectBuilder struct{}

// Build implements Builder.
func (DirectBuilder) Build(ctx context.Context, prog *ir.Program, opts BuildOptions) (*Built, error) {
	return Build(ctx, prog, opts)
}

// BatchBuilder coalesces concurrent Build calls into one go-build per
// drain cycle. The first caller in a quiet period becomes the cycle's
// leader and builds immediately (no added latency when there is no
// concurrency); calls arriving while that build runs queue up and are
// compiled together in the next cycle. Safe for concurrent use.
type BatchBuilder struct {
	mu       sync.Mutex
	pending  []*batchReq
	draining bool

	invocations atomic.Int64
	batched     atomic.Int64 // programs built in multi-member cycles
}

// NewBatchBuilder returns an empty batcher.
func NewBatchBuilder() *BatchBuilder { return &BatchBuilder{} }

// ToolchainInvocations reports how many times this batcher has run the
// go toolchain. With N concurrent distinct programs it is < N — that is
// the batcher's entire point, and the regression test pins it.
func (b *BatchBuilder) ToolchainInvocations() int64 { return b.invocations.Load() }

// BatchedPrograms reports how many programs were compiled as part of a
// multi-member cycle (for metrics; 0 under purely sequential load).
func (b *BatchBuilder) BatchedPrograms() int64 { return b.batched.Load() }

type batchReq struct {
	ctx  context.Context
	prog *ir.Program
	done chan struct{}

	built *Built
	err   error
}

func (r *batchReq) settle(built *Built, err error) {
	r.built, r.err = built, err
	close(r.done)
}

// Build implements Builder. A call with an explicit opts.Dir (a caller
// that wants the emitted package kept somewhere specific) bypasses the
// batch — its artifact cannot live inside the shared module.
func (b *BatchBuilder) Build(ctx context.Context, prog *ir.Program, opts BuildOptions) (*Built, error) {
	if opts.Dir != "" {
		b.invocations.Add(1)
		return Build(ctx, prog, opts)
	}
	r := &batchReq{ctx: ctx, prog: prog, done: make(chan struct{})}
	b.mu.Lock()
	b.pending = append(b.pending, r)
	if !b.draining {
		b.draining = true
		go b.drain()
	}
	b.mu.Unlock()
	<-r.done
	return r.built, r.err
}

// drain runs build cycles until the queue is empty, then retires; the
// next Build call starts a fresh drainer.
func (b *BatchBuilder) drain() {
	for {
		b.mu.Lock()
		batch := b.pending
		b.pending = nil
		if len(batch) == 0 {
			b.draining = false
			b.mu.Unlock()
			return
		}
		b.mu.Unlock()
		b.buildBatch(batch)
	}
}

func (b *BatchBuilder) buildBatch(batch []*batchReq) {
	if len(batch) == 1 {
		r := batch[0]
		b.invocations.Add(1)
		built, err := Build(r.ctx, r.prog, BuildOptions{})
		r.settle(built, err)
		return
	}
	b.batched.Add(int64(len(batch)))
	if err := b.buildShared(batch); err != nil {
		// The shared build failed (or could not be set up). One bad
		// program poisons a shared `go build ./...`, so retry every member
		// individually under its own context; each gets its own error.
		for _, r := range batch {
			b.invocations.Add(1)
			built, err := Build(r.ctx, r.prog, BuildOptions{})
			r.settle(built, err)
		}
	}
}

// buildShared emits every member into one module and compiles them with
// a single toolchain invocation. On success every member is settled and
// the error is nil; a non-nil error means NO member was settled and the
// caller must fall back.
func (b *BatchBuilder) buildShared(batch []*batchReq) error {
	dir, err := os.MkdirTemp("", "oicnative-batch-")
	if err != nil {
		return err
	}
	cleanupNow := func() { os.RemoveAll(dir) }
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte(goModSrc), 0o666); err != nil {
		cleanupNow()
		return err
	}
	binDir := filepath.Join(dir, "bin")
	if err := os.MkdirAll(binDir, 0o777); err != nil {
		cleanupNow()
		return err
	}
	subdirs := make([]string, len(batch))
	for i, r := range batch {
		src, err := Emit(r.prog)
		if err != nil {
			cleanupNow()
			return err
		}
		sub := "p" + strconv.Itoa(i)
		subdirs[i] = sub
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o777); err != nil {
			cleanupNow()
			return err
		}
		if err := os.WriteFile(filepath.Join(dir, sub, "main.go"), src, 0o666); err != nil {
			cleanupNow()
			return err
		}
	}

	// The shared build runs under its own context, cancelled only when
	// every member's context has died — one impatient caller must not
	// kill the compile its batchmates are still waiting on.
	buildCtx, cancel := context.WithCancel(context.Background())
	defer cancel()
	buildDone := make(chan struct{})
	go func() {
		for _, r := range batch {
			select {
			case <-r.ctx.Done():
			case <-buildDone:
				return
			}
		}
		cancel()
	}()

	start := time.Now()
	b.invocations.Add(1)
	cmd := exec.CommandContext(buildCtx, "go", "build", "-buildvcs=false",
		"-o", binDir+string(os.PathSeparator), "./...")
	cmd.Dir = dir
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	runErr := cmd.Run()
	close(buildDone)
	if runErr != nil {
		cleanupNow()
		if buildCtx.Err() != nil {
			// All members gave up; settle them with their own context
			// errors rather than retrying builds nobody wants.
			for _, r := range batch {
				r.settle(nil, fmt.Errorf("emit: native build canceled: %w", context.Cause(r.ctx)))
			}
			return nil
		}
		return fmt.Errorf("emit: batched go build failed: %v\n%s", runErr, out.Bytes())
	}
	elapsed := time.Since(start).Nanoseconds()

	// The module directory is shared: it disappears when the last member
	// Closes its Built.
	var refs atomic.Int32
	refs.Store(int32(len(batch)))
	release := func() {
		if refs.Add(-1) == 0 {
			os.RemoveAll(dir)
		}
	}
	for i, r := range batch {
		r.settle(&Built{
			Dir:        filepath.Join(dir, subdirs[i]),
			Bin:        filepath.Join(binDir, subdirs[i]),
			BuildNanos: elapsed,
			cleanup:    release,
		}, nil)
	}
	return nil
}
