package core

import (
	"errors"
	"fmt"

	"objinline/internal/analysis"
	"objinline/internal/clone"
	"objinline/internal/ir"
)

// Options configures the optimizer.
type Options struct {
	// Inline enables object inlining. With Inline false the optimizer
	// still runs type-directed cloning — devirtualization and field-slot
	// binding — which is the paper's "Concert without inlining" baseline.
	Inline bool
	// ArrayLayout selects the inlined-array layout (object-order by
	// default; parallel reproduces the paper's OOPACK observation).
	ArrayLayout Layout
}

// Result is the optimizer's output.
type Result struct {
	Prog     *ir.Program // the specialized program
	Decision *Decision
	Analysis *analysis.Result

	// Metrics for the evaluation harness.
	CloneStats    clone.Stats
	ClassVersions int
	StackSites    int
	Attempts      int

	// StackProvenance lists every stack-elided allocation site with the
	// inlined fields that consume its objects. The payoff attribution
	// joins this against runtime allocation-site profiles to credit
	// eliminated allocations to individual fields.
	StackProvenance []StackSite
}

// StackSite is one stack-elided allocation site in the source program.
type StackSite struct {
	// Pos is the allocation instruction's source position ("file:line:col").
	Pos string `json:"pos"`
	// Class is the allocated class's source-level name.
	Class string `json:"class"`
	// Fields are the inlined-field keys ("Class.field" or array-site
	// strings) whose copies consume this site's objects, sorted.
	Fields []string `json:"fields"`
}

// Optimize runs the full pipeline of the paper's §5 over an analyzed
// program: decide inlinability, build restructured class versions, clone
// methods per compatible contour group, and rewrite every use and
// assignment of the inlined fields. The loop retries with a smaller
// candidate set (or finer class versions) when a rewrite turns out to be
// unrealizable — the moral equivalent of the paper's demand-driven
// iteration between analysis, cloning, and transformation.
func Optimize(prog *ir.Program, res *analysis.Result, opts Options) (*Result, error) {
	val := newValuability(prog, res)
	var d *Decision
	if opts.Inline {
		d = decide(prog, res, val)
	} else {
		d = newDecision()
		d.ObjectFields = append(res.ObjectFields(), res.ObjectArraySites()...)
	}

	subver := make(map[*analysis.ObjContour]int)
	nextSub := 1
	const maxAttempts = 64
	for attempt := 1; attempt <= maxAttempts; attempt++ {
		vs := newVersionSpace(res, d, opts.ArrayLayout)
		vs.subver = subver
		if !vs.build() {
			changed := false
			for k, conflict := range vs.conflicts {
				if d.Inlined[k] {
					d.reject(k, because(ReasonLayoutConflict, conflict,
						Step{What: "layout-conflict", Where: k.String(), Detail: conflict}))
					changed = true
				}
			}
			if !changed {
				return nil, fmt.Errorf("core: version conflicts did not involve candidates: %v", vs.conflicts)
			}
			pruneInconsistent(prog, res, d)
			continue
		}
		tr := newTransformer(prog, res, d, vs, val, opts)
		m, err := tr.materialize()
		if err != nil {
			return nil, err
		}
		switch {
		case m.prog != nil:
			return &Result{
				Prog:            m.prog,
				Decision:        d,
				Analysis:        res,
				CloneStats:      m.grouping.Stats(),
				ClassVersions:   len(vs.Versions()),
				StackSites:      len(tr.stackable),
				Attempts:        attempt,
				StackProvenance: tr.stackProvenance(),
			}, nil
		case len(m.rejects) > 0:
			changed := false
			for k, reason := range m.rejects {
				if d.Inlined[k] {
					d.reject(k, reason)
					changed = true
				}
			}
			if !changed {
				return nil, fmt.Errorf("core: rewrite rejected non-candidates: %v", m.rejects)
			}
			pruneInconsistent(prog, res, d)
		case len(m.splitOCs) > 0:
			for _, oc := range m.splitOCs {
				if subver[oc] == 0 {
					subver[oc] = nextSub
					nextSub++
				}
			}
		default:
			return nil, errors.New("core: materialization made no progress")
		}
	}
	return nil, errors.New("core: transformation did not converge")
}
