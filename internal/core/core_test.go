package core_test

import (
	"strings"
	"testing"

	"objinline/internal/analysis"
	"objinline/internal/core"
	"objinline/internal/ir"
	"objinline/internal/lang/parser"
	"objinline/internal/lang/sem"
	"objinline/internal/lower"
	"objinline/internal/vm"
)

func optimize(t *testing.T, src string) (*ir.Program, *core.Result) {
	t.Helper()
	tree, err := parser.Parse("t.icc", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := sem.Check(tree)
	if err != nil {
		t.Fatalf("sem: %v", err)
	}
	prog, err := lower.Lower(info)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	res := analysis.Analyze(prog, analysis.Options{Tags: true})
	opt, err := core.Optimize(prog, res, core.Options{Inline: true})
	if err != nil {
		t.Fatalf("optimize: %v\nanalysis:\n%s", err, res)
	}
	return prog, opt
}

// runBoth executes the source unoptimized and optimized and checks output
// equality, returning the optimizer result.
func runBoth(t *testing.T, src string) *core.Result {
	t.Helper()
	tree, _ := parser.Parse("t.icc", src)
	info, err := sem.Check(tree)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := lower.Lower(info)
	if err != nil {
		t.Fatal(err)
	}
	var wantOut strings.Builder
	if _, err := vm.New(prog, vm.Options{Out: &wantOut, MaxSteps: 10_000_000}).Run(); err != nil {
		t.Fatalf("direct run: %v", err)
	}
	_, opt := optimize(t, src)
	var gotOut strings.Builder
	if _, err := vm.New(opt.Prog, vm.Options{Out: &gotOut, MaxSteps: 10_000_000}).Run(); err != nil {
		t.Fatalf("optimized run: %v\nprogram:\n%s", err, opt.Prog.String())
	}
	if gotOut.String() != wantOut.String() {
		t.Fatalf("output mismatch:\n direct: %q\n optimized: %q\nprogram:\n%s",
			wantOut.String(), gotOut.String(), opt.Prog.String())
	}
	return opt
}

func inlined(opt *core.Result) map[string]bool {
	out := make(map[string]bool)
	for _, k := range opt.Decision.InlinedKeys() {
		out[k.String()] = true
	}
	return out
}

// --- assignment specialization (valuability) scenarios ---

func TestFactoryFunctionEnablesInlining(t *testing.T) {
	// The stored value comes from a fresh-returning factory, the
	// FreshReturn extension of the CallByValue chain.
	opt := runBoth(t, `
class P { x; def init(x) { self.x = x; } }
class H { p; def init(p) { self.p = p; } def get() { return self.p.x; } }
func mk(v) { return new P(v); }
func main() {
  var h = new H(mk(7));
  print(h.get());
}
`)
	if !inlined(opt)["H.p"] {
		t.Errorf("H.p not inlined via factory; rejected: %v", opt.Decision.Rejected)
	}
}

func TestDeepParameterChain(t *testing.T) {
	// The value passes through three levels of by-value parameters before
	// the mutator stores it.
	opt := runBoth(t, `
class P { x; def init(x) { self.x = x; } }
class H { p; def init(p) { self.p = p; } }
func lvl1(p) { return lvl2(p); }
func lvl2(p) { return lvl3(p); }
func lvl3(p) { return new H(p); }
func main() {
  var h = lvl1(new P(3));
  print(h.p.x);
}
`)
	if !inlined(opt)["H.p"] {
		t.Errorf("H.p not inlined through parameter chain; rejected: %v", opt.Decision.Rejected)
	}
}

func TestLoopCarriedStoreInlines(t *testing.T) {
	// A fresh object stored each iteration: the "use after handoff" is a
	// new value (killed by the redefinition), so the store is safe.
	opt := runBoth(t, `
class P { x; def init(x) { self.x = x; } }
class H { p; def init(p) { self.p = p; } }
func main() {
  var last = nil;
  for (var i = 0; i < 5; i = i + 1) {
    last = new H(new P(i));
  }
  print(last.p.x);
}
`)
	if !inlined(opt)["H.p"] {
		t.Errorf("loop-carried store not inlined; rejected: %v", opt.Decision.Rejected)
	}
}

func TestValueReadBeforeStoreIsFine(t *testing.T) {
	opt := runBoth(t, `
class P { x; def init(x) { self.x = x; } }
class H { p; def init(p) { self.p = p; } }
func main() {
  var v = new P(4);
  print(v.x);        // read before the handoff: allowed
  var h = new H(v);
  print(h.p.x);
}
`)
	if !inlined(opt)["H.p"] {
		t.Errorf("read-before-store rejected; rejected: %v", opt.Decision.Rejected)
	}
}

func TestValueReturnedAfterStoreBlocks(t *testing.T) {
	opt := runBoth(t, `
class P { x; def init(x) { self.x = x; } }
class H { p; def init(p) { self.p = p; } }
func makeBoth(v) {
  var h = new H(v);
  return v; // the original escapes after the store
}
func main() {
  var v = new P(1);
  var w = makeBoth(v);
  print(w.x);
}
`)
	if inlined(opt)["H.p"] {
		t.Error("H.p inlined although the stored value escapes via return")
	}
}

func TestGlobalAliasBlocks(t *testing.T) {
	opt := runBoth(t, `
var keep;
class P { x; def init(x) { self.x = x; } }
class H { p; def init(p) { self.p = p; } }
func main() {
  var v = new P(9);
  keep = v;
  var h = new H(v);
  keep.x = 5;
  print(h.p.x);
}
`)
	if inlined(opt)["H.p"] {
		t.Error("H.p inlined although the value is aliased through a global")
	}
}

func TestConditionalOtherStoreBlocks(t *testing.T) {
	// The alternate branch stores the value elsewhere; flow-insensitive
	// "no other stores" must reject.
	opt := runBoth(t, `
var g;
class P { x; def init(x) { self.x = x; } }
class H { p; def init(p) { self.p = p; } }
func main() {
  var v = new P(2);
  if (1 < 2) {
    var h = new H(v);
    print(h.p.x);
  } else {
    g = v;
  }
}
`)
	if inlined(opt)["H.p"] {
		t.Error("H.p inlined although another branch stores the value")
	}
}

// --- class versioning and cloning scenarios ---

func TestPolymorphicContainerVersions(t *testing.T) {
	opt := runBoth(t, `
class Small { v; def init(v) { self.v = v; } def size() { return 1; } }
class Big { a; b; c; def init(a, b, c) { self.a = a; self.b = b; self.c = c; } def size() { return 3; } }
class Box { it; def init(it) { self.it = it; } def size() { return self.it.size(); } }
func main() {
  var b1 = new Box(new Small(1));
  var b2 = new Box(new Big(1, 2, 3));
  print(b1.size(), b2.size());
}
`)
	if !inlined(opt)["Box.it"] {
		t.Fatalf("polymorphic Box.it not inlined; rejected: %v", opt.Decision.Rejected)
	}
	// Two differently-shaped Box versions must exist.
	boxVersions := 0
	for _, c := range opt.Prog.Classes {
		if c.Origin != nil && c.Origin.Name == "Box" {
			boxVersions++
		}
	}
	if boxVersions < 2 {
		t.Errorf("Box versions = %d, want >= 2", boxVersions)
	}
}

func TestClassSubversionForDispatch(t *testing.T) {
	// Box.p is NOT inlinable (aliased), so both boxes share a layout;
	// but probe()'s body dispatches differently per box, so the class must
	// still be cloned "based upon the object contours" for the merged
	// dispatch site to pick the right probe clone.
	opt := runBoth(t, `
var g1; var g2;
class P1 { def tag() { return 1; } }
class P2 { def tag() { return 2; } }
class Box {
  p;
  def init(x) { self.p = x; }
  def probe() { return self.p.tag(); }
}
func pick(a, b, f) { if (f) { return a; } return b; }
func main() {
  var x1 = new P1();
  var x2 = new P2();
  g1 = x1;
  g2 = x2;
  var b1 = new Box(x1);
  var b2 = new Box(x2);
  print(pick(b1, b2, true).probe());
  print(pick(b1, b2, false).probe());
  print(b1.probe(), b2.probe());
}
`)
	if got := inlined(opt); got["Box.p"] {
		t.Errorf("Box.p must not inline (aliased): %v", got)
	}
}

func TestBaselineModeStillCleansDispatch(t *testing.T) {
	src := `
class A { def m() { return 1; } }
class B : A { def m() { return 2; } }
func call(o) { return o.m(); }
func main() {
  print(call(new A()), call(new B()));
}
`
	tree, _ := parser.Parse("t.icc", src)
	info, err := sem.Check(tree)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := lower.Lower(info)
	if err != nil {
		t.Fatal(err)
	}
	res := analysis.Analyze(prog, analysis.Options{})
	opt, err := core.Optimize(prog, res, core.Options{Inline: false})
	if err != nil {
		t.Fatal(err)
	}
	// call is split per receiver class, so each clone's dispatch site is
	// statically bound.
	dynamic := 0
	for _, f := range opt.Prog.Funcs {
		f.Instrs(func(_ *ir.Block, in *ir.Instr) {
			if in.Op == ir.OpCallMethod {
				dynamic++
			}
		})
	}
	if dynamic != 0 {
		t.Errorf("dynamic dispatches remain: %d\n%s", dynamic, opt.Prog.String())
	}
}

func TestStackSitesCounted(t *testing.T) {
	_, opt := optimize(t, `
class P { x; def init(x) { self.x = x; } }
class H { p; def init(p) { self.p = p; } }
func main() {
  var h = new H(new P(1));
  print(h.p.x);
}
`)
	if opt.StackSites == 0 {
		t.Error("no stackable allocation sites found")
	}
}

func TestNestedVersionLayouts(t *testing.T) {
	// Outer contains Mid contains Inner: the outer version's slot count
	// must equal the fully flattened size.
	_, opt := optimize(t, `
class Inner { a; b; def init(a, b) { self.a = a; self.b = b; } }
class Mid { in; tag; def init(i, t) { self.in = i; self.tag = t; } }
class Outer { m; def init(m) { self.m = m; } }
func main() {
  var o = new Outer(new Mid(new Inner(1, 2), 3));
  print(o.m.in.a + o.m.in.b + o.m.tag);
}
`)
	var outer *ir.Class
	for _, c := range opt.Prog.Classes {
		if c.Origin != nil && c.Origin.Name == "Outer" {
			outer = c
		}
	}
	if outer == nil {
		t.Fatal("no Outer version")
	}
	// Outer.m -> Mid{Inner{a,b}, tag} -> 3 flattened slots.
	if outer.NumSlots() != 3 {
		t.Errorf("Outer flattened slots = %d, want 3 (layout: %s)", outer.NumSlots(), outer.LayoutString())
	}
}

func TestSubclassVersionConformance(t *testing.T) {
	// Restructured subclass layouts must still extend their superclass
	// version's layout (prefix property).
	_, opt := optimize(t, `
class P { x; y; def init(x, y) { self.x = x; self.y = y; } }
class R { ll; def init(a) { self.ll = a; } def get() { return self.ll.x; } }
class S : R { extra; def init(a, e) { self.ll = a; self.extra = e; } }
func main() {
  var r = new R(new P(1, 2));
  var s = new S(new P(3, 4), 5);
  print(r.get(), s.get(), s.extra);
}
`)
	for _, c := range opt.Prog.Classes {
		if c.Super == nil {
			continue
		}
		for i, f := range c.Super.Fields {
			if c.Fields[i] != f {
				t.Errorf("class %s slot %d does not extend its super %s", c.Name, i, c.Super.Name)
			}
		}
	}
}

func TestDecisionReportsRejections(t *testing.T) {
	_, opt := optimize(t, `
class P { x; def init(x) { self.x = x; } }
class H { p; def init(p) { self.p = p; } }
func main() {
  var v = new P(1);
  var h1 = new H(v);
  var h2 = new H(v);
  print(h1.p == h2.p);
}
`)
	found := false
	for k, why := range opt.Decision.Rejected {
		if k.String() == "H.p" && why.Message != "" && why.Code != "" {
			found = true
		}
	}
	if !found {
		t.Errorf("H.p rejection not recorded: %v", opt.Decision.Rejected)
	}
}

func TestOptimizeIsIdempotentOnEmptyPrograms(t *testing.T) {
	_, opt := optimize(t, `func main() { print("hi"); }`)
	if len(opt.Decision.Inlined) != 0 {
		t.Errorf("inlined something in an object-free program: %v", opt.Decision.Inlined)
	}
	var out strings.Builder
	if _, err := vm.New(opt.Prog, vm.Options{Out: &out}).Run(); err != nil {
		t.Fatal(err)
	}
	if out.String() != "hi\n" {
		t.Errorf("output %q", out.String())
	}
}
