package core

import (
	"fmt"
	"sort"

	"objinline/internal/analysis"
	"objinline/internal/clone"
	"objinline/internal/ir"
	"objinline/internal/lower"
)

// materializeResult is the output of one materialization attempt.
type materializeResult struct {
	prog     *ir.Program
	grouping *clone.Grouping
	// rejects lists candidates that must be dropped before retrying.
	rejects map[analysis.FieldKey]Reason
	// splitOCs lists object contours that need their own class subversion
	// (dynamic dispatch could not discriminate clones otherwise).
	splitOCs []*analysis.ObjContour
}

// materialize turns the transformer's plans into a new program: one
// function clone per compatible contour group, class versions with
// restructured layouts, statically bound calls wherever the analysis
// proved a single target, and per-site mangled dispatch names where
// several clones must coexist (§5.1).
func (t *transformer) materialize() (*materializeResult, error) {
	res := &materializeResult{rejects: make(map[analysis.FieldKey]Reason)}

	// Build plans for every contour; plan failures reject candidates.
	for _, mc := range t.res.Mcs {
		if _, err := t.plan(mc); err != nil {
			if len(err.keys) == 0 {
				return nil, fmt.Errorf("core: unattributable rewrite failure in %s: %s", mc.Fn.FullName(), err.reason)
			}
			for _, k := range sortKeys(err.keys) {
				res.rejects[k] = because(ReasonRewriteFailure, err.reason,
					Step{What: "rewrite-unrealizable", Where: mc.Fn.FullName(), Detail: err.reason})
			}
		}
	}
	if len(res.rejects) > 0 {
		return res, nil
	}

	grouping := clone.Partition(t.res, func(mc *analysis.MethodContour) string {
		p, err := t.plan(mc)
		if err != nil {
			return "<error>"
		}
		return p.sig
	})
	res.grouping = grouping

	// Dispatch-consistency pass: every dynamic site must discriminate its
	// callee groups by receiver class version. Where one version maps to
	// two groups, the class contours must split (the paper's class
	// cloning "based upon the object contours").
	needSplit := make(map[*analysis.ObjContour]bool)
	for _, grp := range grouping.Groups {
		mc := grp.Rep()
		p, _ := t.plan(mc)
		for cp, origID := range p.callOrig {
			if cp.Op != ir.OpCallMethod {
				continue
			}
			groups := grouping.CalleeGroups(grp, origID)
			if len(groups) <= 1 {
				continue
			}
			if keys := p.dynRep[cp]; len(keys) > 0 {
				for _, k := range keys {
					res.rejects[k] = because(ReasonPolyDispatch,
						"polymorphic dispatch on inlined value at "+cp.Pos.String(),
						Step{What: "polymorphic-dispatch", Where: cp.Pos.String(),
							Detail: "dynamic dispatch site cannot discriminate clones of an inlined receiver"})
				}
				continue
			}
			// Raw receiver: version -> group must be a function.
			verGroup := make(map[*ClassVersion]*clone.Group)
			for callee := range mc.Callees[origID] {
				cg := grouping.GroupOf(callee)
				for _, oc := range callee.Regs[0].TS.ObjList() {
					v := t.vs.versionOf(oc)
					if prev, ok := verGroup[v]; ok && prev != cg {
						// Split every OC of this version by group.
						for callee2 := range mc.Callees[origID] {
							for _, oc2 := range callee2.Regs[0].TS.ObjList() {
								if t.vs.versionOf(oc2) == v {
									needSplit[oc2] = true
								}
							}
						}
					}
					verGroup[v] = cg
				}
			}
		}
	}
	if len(res.rejects) > 0 {
		return res, nil
	}
	if len(needSplit) > 0 {
		for oc := range needSplit {
			res.splitOCs = append(res.splitOCs, oc)
		}
		sort.Slice(res.splitOCs, func(i, j int) bool { return res.splitOCs[i].ID < res.splitOCs[j].ID })
		return res, nil
	}

	// Emit the new program.
	out := ir.NewProgram()
	for _, v := range t.vs.Versions() {
		out.AddClass(v.New)
	}
	out.Globals = append(out.Globals, t.prog.Globals...)

	// Shells first so calls can reference clones.
	perFn := make(map[*ir.Func]int)
	for _, grp := range grouping.Groups {
		perFn[grp.Fn]++
	}
	var unreachableFn *ir.Func
	getUnreachable := func() *ir.Func {
		if unreachableFn == nil {
			unreachableFn = &ir.Func{Name: "$unreachable", NumRegs: 1}
			unreachableFn.Blocks = []*ir.Block{{ID: 0, Instrs: []*ir.Instr{
				{Op: ir.OpTrap, Dst: ir.NoReg, S: "call site the analysis proved unreachable"},
			}}}
			out.AddFunc(unreachableFn)
		}
		return unreachableFn
	}
	for _, grp := range grouping.Groups {
		p, _ := t.plan(grp.Rep())
		name := grp.Fn.Name
		if perFn[grp.Fn] > 1 {
			name = fmt.Sprintf("%s$g%d", grp.Fn.Name, grp.ID)
		}
		var cls *ir.Class
		if grp.Fn.Class != nil {
			if len(p.selfVersions) > 0 {
				cls = p.selfVersions[0].New
			} else {
				// Method never actually invoked with a receiver; bind to
				// any version of the original class, or drop.
				cls = t.anyVersionOf(grp.Fn.Class)
			}
		}
		nf := &ir.Func{
			Name: name, Class: cls, NumParams: grp.Fn.NumParams,
			NumRegs: p.numRegs, Origin: grp.Fn,
		}
		out.AddFunc(nf)
		grp.NewFn = nf
	}

	// Bodies.
	for _, grp := range grouping.Groups {
		p, _ := t.plan(grp.Rep())
		nf := grp.NewFn
		for bi, instrs := range p.blocks {
			nb := &ir.Block{ID: bi}
			for _, in := range instrs {
				cp := in // plans are per-contour; safe to reuse for the single clone
				if origID, isCall := p.callOrig[in]; isCall {
					cp = t.resolveCall(grouping, grp, in, origID, getUnreachable)
				}
				nb.Instrs = append(nb.Instrs, cp)
			}
			nf.Blocks = append(nf.Blocks, nb)
		}
	}

	// Dispatch registration: dynamic sites got mangled names during
	// resolveCall via pendingDispatch.
	for _, reg := range t.pendingDispatch {
		reg.ver.New.Methods[reg.name] = reg.target
	}
	t.pendingDispatch = nil
	for _, c := range t.deadVersions {
		out.AddClass(c)
	}
	t.deadVersions = nil

	// Entry points.
	for _, grp := range grouping.Groups {
		if grp.Fn == t.prog.Main {
			out.Main = grp.NewFn
			out.Main.Name = "main"
		}
		if grp.Fn.Class == nil && grp.Fn.Name == lower.InitFuncName {
			grp.NewFn.Name = lower.InitFuncName
		}
	}
	if out.Main == nil {
		return nil, fmt.Errorf("core: main was not materialized")
	}
	if err := out.Verify(); err != nil {
		return nil, fmt.Errorf("core: materialized program invalid: %w", err)
	}
	res.prog = out
	return res, nil
}

type dispatchReg struct {
	ver    *ClassVersion
	name   string
	target *ir.Func
}

// resolveCall fixes a call instruction's target against the grouping.
func (t *transformer) resolveCall(grouping *clone.Grouping, grp *clone.Group, in *ir.Instr, origID int, unreachable func() *ir.Func) *ir.Instr {
	groups := grouping.CalleeGroups(grp, origID)
	cp := in.Clone()
	switch {
	case len(groups) == 0:
		// The analysis never bound this site: it is dead or a guaranteed
		// runtime error. Keep the original runtime behaviour for method
		// calls on nil (a useful error), otherwise trap via $unreachable.
		if in.Op == ir.OpCallMethod {
			return cp // dispatch will fail with the original message
		}
		cp.Op = ir.OpCall
		cp.Callee = unreachable()
		cp.Method = ""
		return cp
	case len(groups) == 1:
		if in.Op == ir.OpCallMethod {
			cp.Op = ir.OpCallStatic
			cp.Method = ""
		}
		cp.Callee = groups[0].NewFn
		return cp
	default:
		// Several clones: keep the dispatch dynamic under a site-specific
		// mangled name registered on each receiver class version.
		mangled := fmt.Sprintf("%s$d%d_%d", in.Method, grp.ID, origID)
		mc := grp.Rep()
		for callee := range mc.Callees[origID] {
			cg := grouping.GroupOf(callee)
			for _, oc := range callee.Regs[0].TS.ObjList() {
				t.pendingDispatch = append(t.pendingDispatch, dispatchReg{
					ver: t.vs.versionOf(oc), name: mangled, target: cg.NewFn,
				})
			}
		}
		cp.Method = mangled
		return cp
	}
}

// anyVersionOf returns some version class of c (for methods whose
// receiver set is empty — dead code kept for verification).
func (t *transformer) anyVersionOf(c *ir.Class) *ir.Class {
	for _, v := range t.vs.Versions() {
		if v.Orig == c {
			return v.New
		}
	}
	// No instance of the class was ever created; synthesize a plain
	// version so the method clone stays well-formed.
	nc := &ir.Class{Name: c.Name + "'dead", Methods: make(map[string]*ir.Func), Origin: c}
	for _, f := range c.Fields {
		nc.Fields = append(nc.Fields, &ir.Field{Name: f.Name, Slot: f.Slot, Owner: nc})
	}
	t.deadVersions = append(t.deadVersions, nc)
	return nc
}
