package core

// Decision provenance: every inlining verdict carries a stable machine-
// readable code and the structured evidence chain that produced it, so a
// rejection can be traced back to the exact tag confusion, store, or use
// that caused it (the observability the paper's §6.1 discussion performs
// by hand). The free-text messages of the original implementation are
// preserved verbatim as Reason.Message — Report() output is unchanged.

// ReasonCode classifies an inlining verdict. The values are stable
// identifiers: they appear in JSON output and golden tests.
type ReasonCode string

// Verdict and rejection codes, grouped by the paper's analysis that
// produces them.
const (
	// ReasonInlined marks an accepted candidate (Explain's positive
	// verdict; never appears in Decision.Rejected).
	ReasonInlined ReasonCode = "inlined"

	// Local content checks over the analyzed field/element states.
	ReasonHoldsPrimitives ReasonCode = "holds-primitives"
	ReasonHoldsArrays     ReasonCode = "holds-arrays"
	ReasonPolymorphic     ReasonCode = "polymorphic-content"
	ReasonConfusedStores  ReasonCode = "confused-store-provenance"
	ReasonNotOriginal     ReasonCode = "not-original-objects"
	ReasonNeverStored     ReasonCode = "never-stored"

	// Assignment specialization (§4.2): a store could not be converted to
	// a copy (NoStore / PassByValue failure).
	ReasonUnsafeStore ReasonCode = "store-not-by-value"

	// Structural constraint: flattening would nest a class into itself.
	ReasonContainmentCycle ReasonCode = "containment-cycle"

	// Use-specialization consistency (§4.1): tag-based representation
	// resolution failed somewhere the value flows.
	ReasonTagConfusion    ReasonCode = "tag-confusion"
	ReasonRawOrInlined    ReasonCode = "raw-or-inlined"
	ReasonMultipleFields  ReasonCode = "multiple-inlined-fields"
	ReasonEscapesBuiltin  ReasonCode = "escapes-to-builtin"
	ReasonIdentityCompare ReasonCode = "identity-comparison"
	ReasonPolyDispatch    ReasonCode = "polymorphic-dispatch"

	// Transformation-stage failures (version construction / rewrite).
	ReasonLayoutConflict ReasonCode = "layout-conflict"
	ReasonRewriteFailure ReasonCode = "rewrite-unrealizable"
)

// Step is one link in a decision's evidence chain: what was established or
// violated, at which program point or contour, with supporting detail
// (tag paths, class names, instruction positions).
type Step struct {
	What   string `json:"what"`
	Where  string `json:"where,omitempty"`
	Detail string `json:"detail,omitempty"`
}

// Reason is one structured inlining verdict: a stable code, the
// human-readable message (the exact report text), and the evidence chain
// behind it.
type Reason struct {
	Code     ReasonCode `json:"code"`
	Message  string     `json:"message"`
	Evidence []Step     `json:"evidence,omitempty"`
}

// String returns the human-readable message, preserving the pre-structured
// report format wherever a Reason is printed.
func (r Reason) String() string { return r.Message }

// because builds a Reason.
func because(code ReasonCode, message string, evidence ...Step) Reason {
	return Reason{Code: code, Message: message, Evidence: evidence}
}
