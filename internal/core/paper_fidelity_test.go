package core_test

// Paper-fidelity tests: check that the transformation performs the exact
// code changes of the paper's Figures 10-13 on the running example — not
// just that the output is right, but that accesses were elided, redirected
// to the container's inlined state, and assignments expanded into copies.

import (
	"strings"
	"testing"

	"objinline/internal/ir"
)

const rectangleSrc = `
class Point {
  x_pos; y_pos;
  def init(x, y) { self.x_pos = x; self.y_pos = y; }
  def area(p) { return abs(self.x_pos - p.x_pos) * abs(self.y_pos - p.y_pos); }
}
class Rectangle {
  lower_left; upper_right;
  def init(ll, ur) { self.lower_left = ll; self.upper_right = ur; }
  def area() { return self.lower_left.area(self.upper_right); }
}
func main() {
  var r = new Rectangle(new Point(1.0, 2.0), new Point(4.0, 6.0));
  print(r.area());
  print(r.area());
}
`

// findClones returns the transformed functions originating from the named
// source function.
func findClones(p *ir.Program, fullName string) []*ir.Func {
	var out []*ir.Func
	for _, f := range p.Funcs {
		origin := f
		if f.Origin != nil {
			origin = f.Origin
		}
		if origin.FullName() == fullName {
			out = append(out, f)
		}
	}
	return out
}

func TestFig12AccessesElided(t *testing.T) {
	opt := runBoth(t, rectangleSrc)
	if !inlined(opt)["Rectangle.lower_left"] || !inlined(opt)["Rectangle.upper_right"] {
		t.Fatalf("corners not inlined: %v", opt.Decision.Rejected)
	}

	// Figure 12: in Rectangle::area, the loads of lower_left/upper_right
	// are elided — the clone must contain no GetField of those names.
	areas := findClones(opt.Prog, "Rectangle::area")
	if len(areas) == 0 {
		t.Fatal("no Rectangle::area clone")
	}
	for _, f := range areas {
		f.Instrs(func(_ *ir.Block, in *ir.Instr) {
			if in.Op == ir.OpGetField &&
				(in.Field.Name == "lower_left" || in.Field.Name == "upper_right") {
				t.Errorf("%s still loads %s: %s", f.FullName(), in.Field.Name, in)
			}
		})
	}

	// Figure 12: the specialized Point::area reads the container's
	// inlined state — mangled slots like lower_left$x_pos.
	pointAreas := findClones(opt.Prog, "Point::area")
	sawContainerSlot := false
	for _, f := range pointAreas {
		f.Instrs(func(_ *ir.Block, in *ir.Instr) {
			if in.Op == ir.OpGetField && strings.Contains(in.Field.Name, "$") {
				sawContainerSlot = true
			}
		})
	}
	if !sawContainerSlot {
		t.Errorf("no Point::area clone reads container slots\n%s", opt.Prog.String())
	}
}

func TestFig11ClassRestructured(t *testing.T) {
	opt := runBoth(t, rectangleSrc)
	var rect *ir.Class
	for _, c := range opt.Prog.Classes {
		if c.Origin != nil && c.Origin.Name == "Rectangle" {
			rect = c
		}
	}
	if rect == nil {
		t.Fatal("no Rectangle version")
	}
	// Figure 11: both point fields are replaced by the points' state —
	// 2+2 slots, no reference slots left.
	if rect.NumSlots() != 4 {
		t.Errorf("Rectangle' slots = %d, want 4:\n%s", rect.NumSlots(), rect.LayoutString())
	}
	for _, f := range rect.Fields {
		if !f.Synthetic {
			t.Errorf("non-synthetic slot %s survived restructuring", f)
		}
	}
}

func TestFig10AssignmentExpandedToCopies(t *testing.T) {
	opt := runBoth(t, rectangleSrc)
	// §5.4: the constructor's stores into the inlined fields become
	// per-slot copies: Rectangle::init must contain 4 SetFields (x/y per
	// corner) and no store of a whole reference to lower_left.
	inits := findClones(opt.Prog, "Rectangle::init")
	if len(inits) == 0 {
		t.Fatal("no Rectangle::init clone")
	}
	for _, f := range inits {
		stores := 0
		f.Instrs(func(_ *ir.Block, in *ir.Instr) {
			if in.Op == ir.OpSetField {
				stores++
				if in.Field.Name == "lower_left" || in.Field.Name == "upper_right" {
					t.Errorf("%s still stores a reference into %s", f.FullName(), in.Field.Name)
				}
			}
		})
		if stores != 4 {
			t.Errorf("%s has %d stores, want 4 per-slot copies:\n%s", f.FullName(), stores, f.String())
		}
	}
}

func TestFig13ArrayAccessesUseInterior(t *testing.T) {
	src := `
class P { x; y; def init(x, y) { self.x = x; self.y = y; } def s() { return self.x + self.y; } }
func main() {
  var a = new [8];
  for (var i = 0; i < 8; i = i + 1) { a[i] = new P(i, i + 1); }
  var t = 0;
  for (var i = 0; i < 8; i = i + 1) { t = t + a[i].s(); }
  print(t);
}
`
	opt := runBoth(t, src)
	foundInlArray, foundInterior, foundPlainGet := false, false, false
	for _, f := range opt.Prog.Funcs {
		f.Instrs(func(_ *ir.Block, in *ir.Instr) {
			switch in.Op {
			case ir.OpNewArrayInl:
				foundInlArray = true
			case ir.OpArrInterior:
				foundInterior = true
			case ir.OpArrGet:
				foundPlainGet = true
			}
		})
	}
	if !foundInlArray {
		t.Error("array allocation not rewritten to inlined form")
	}
	if !foundInterior {
		t.Error("no interior references emitted (Figure 13's index-passing)")
	}
	if foundPlainGet {
		t.Error("plain array loads survive on the inlined array")
	}
}

func TestStackedTemporariesMarked(t *testing.T) {
	opt := runBoth(t, rectangleSrc)
	stacked := 0
	for _, f := range opt.Prog.Funcs {
		f.Instrs(func(_ *ir.Block, in *ir.Instr) {
			if in.Op == ir.OpNewObject && in.Aux == 1 {
				stacked++
			}
		})
	}
	if stacked != 2 {
		t.Errorf("stack-allocated temporaries = %d, want 2 (the corner points)", stacked)
	}
}
