package core

import (
	"fmt"
	"sort"
	"strings"

	"objinline/internal/analysis"
	"objinline/internal/ir"
)

// Layout selects how an inlined array lays out its element state.
type Layout int

// Array layouts (§5.3 and the OOPACK discussion in §6.3).
const (
	// LayoutObjectOrder stores each element's fields contiguously
	// (array-of-structs).
	LayoutObjectOrder Layout = iota
	// LayoutParallel stores one column per field (struct-of-arrays — the
	// "parallel arrays (Fortran style)" layout the paper credits for
	// OOPACK's cache behaviour).
	LayoutParallel
)

func (l Layout) String() string {
	if l == LayoutParallel {
		return "parallel"
	}
	return "object-order"
}

// SlotInfo describes where one original field of a class version lives.
type SlotInfo struct {
	// Plain fields map to one slot.
	Plain   bool
	NewSlot int
	// Inlined fields expand to the child version's flattened state
	// starting at Base.
	Child *ClassVersion
	Base  int
}

// ClassVersion is one restructured variant of a source class: the same
// class may get several versions when a polymorphic inlined field needs
// different containee layouts (§5.1's class cloning).
type ClassVersion struct {
	Orig  *ir.Class
	Shape string
	Super *ClassVersion
	New   *ir.Class

	// Slots maps every original field name (inherited included) to its
	// location in the version's layout.
	Slots map[string]SlotInfo
}

func (v *ClassVersion) String() string {
	return fmt.Sprintf("%s{%s}", v.Orig.Name, v.Shape)
}

// ArrVersion is the inlined layout of one array allocation site.
type ArrVersion struct {
	Key    analysis.FieldKey
	Elem   *ClassVersion
	Layout Layout
}

// versionSpace builds and interns class versions for a decision.
type versionSpace struct {
	res      *analysis.Result
	decision *Decision
	layout   Layout

	byShape map[string]*ClassVersion // class name + shape -> version
	ocShape map[*analysis.ObjContour]string
	list    []*ClassVersion
	arrs    map[analysis.FieldKey]*ArrVersion

	// subver forces selected object contours into their own class
	// versions — the paper's class cloning "based upon the object
	// contours", demanded when dynamic dispatch must discriminate method
	// clones that layout shape alone cannot separate.
	subver map[*analysis.ObjContour]int

	// conflict records candidates whose child contours disagree on shape;
	// the optimizer rejects them and re-runs the decision.
	conflicts map[analysis.FieldKey]string
}

func newVersionSpace(res *analysis.Result, d *Decision, layout Layout) *versionSpace {
	return &versionSpace{
		res:       res,
		decision:  d,
		layout:    layout,
		byShape:   make(map[string]*ClassVersion),
		ocShape:   make(map[*analysis.ObjContour]string),
		arrs:      make(map[analysis.FieldKey]*ArrVersion),
		conflicts: make(map[analysis.FieldKey]string),
	}
}

// build computes versions for every object contour and every inlined array
// site. It returns false when shape conflicts require candidate rejection
// (recorded in vs.conflicts).
func (vs *versionSpace) build() bool {
	// Deterministic order.
	for _, oc := range vs.res.Objs {
		vs.shapeOf(oc, nil)
	}
	if len(vs.conflicts) > 0 {
		return false
	}
	for _, oc := range vs.res.Objs {
		vs.versionOf(oc)
	}
	if len(vs.conflicts) > 0 {
		return false
	}
	for _, ac := range vs.res.Arrs {
		k := arrKey(ac)
		if !vs.decision.Has(k) {
			continue
		}
		elems := ac.Elem.TS.ObjList()
		var elemVer *ClassVersion
		for _, child := range elems {
			v := vs.versionOf(child)
			if elemVer == nil {
				elemVer = v
			} else if elemVer != v {
				vs.conflicts[k] = "array elements disagree on inlined layout"
			}
		}
		if elemVer == nil {
			vs.conflicts[k] = "array has no element contour"
			continue
		}
		if prev, ok := vs.arrs[k]; ok {
			if prev.Elem != elemVer {
				vs.conflicts[k] = "array site contours disagree on element layout"
			}
			continue
		}
		vs.arrs[k] = &ArrVersion{Key: k, Elem: elemVer, Layout: vs.layout}
	}
	return len(vs.conflicts) == 0
}

// shapeOf computes the canonical layout shape of an object contour:
// the class name plus, for each inlined field in layout order, the child
// shape.
func (vs *versionSpace) shapeOf(oc *analysis.ObjContour, path []*analysis.ObjContour) string {
	if s, ok := vs.ocShape[oc]; ok {
		return s
	}
	for _, p := range path {
		if p == oc {
			// Containment cycle at the contour level; the class-level
			// check should have caught it, but stay safe.
			return "<cycle>"
		}
	}
	path = append(path, oc)
	var b strings.Builder
	b.WriteString(oc.Class.Name)
	for _, f := range oc.Class.Fields {
		k := analysis.FieldKey{Class: f.Owner, Name: f.Name}
		if !vs.decision.Has(k) {
			continue
		}
		st := &oc.Fields[f.Slot]
		childShape := ""
		for _, child := range st.TS.ObjList() {
			cs := vs.shapeOf(child, path)
			if childShape == "" {
				childShape = cs
			} else if childShape != cs {
				vs.conflicts[k] = "containee contours disagree on layout shape"
			}
		}
		fmt.Fprintf(&b, "|%s=%s", f.Name, childShape)
	}
	if n := vs.subver[oc]; n != 0 {
		fmt.Fprintf(&b, "~%d", n)
	}
	s := b.String()
	vs.ocShape[oc] = s
	return s
}

// versionOf interns the class version of an object contour.
func (vs *versionSpace) versionOf(oc *analysis.ObjContour) *ClassVersion {
	return vs.versionFor(oc.Class, oc, len(oc.Class.Fields))
}

// versionFor builds the version of class c covering the first `upto`
// original fields of oc's layout (used recursively so a subclass version
// extends its superclass version).
func (vs *versionSpace) versionFor(c *ir.Class, oc *analysis.ObjContour, upto int) *ClassVersion {
	shape := vs.prefixShape(c, oc)
	key := c.Name + "\x00" + shape
	if v, ok := vs.byShape[key]; ok {
		return v
	}
	v := &ClassVersion{Orig: c, Shape: shape, Slots: make(map[string]SlotInfo)}
	vs.byShape[key] = v

	newClass := &ir.Class{
		Name:    versionName(c.Name, len(vs.list)),
		Methods: make(map[string]*ir.Func),
		Origin:  c,
	}
	v.New = newClass
	if c.Super != nil {
		v.Super = vs.versionFor(c.Super, oc, len(c.Super.Fields))
		newClass.Super = v.Super.New
		newClass.Fields = append(newClass.Fields, v.Super.New.Fields...)
		for name, si := range v.Super.Slots {
			v.Slots[name] = si
		}
	}
	// This class's own fields.
	for _, f := range c.Fields {
		if f.Owner != c {
			continue
		}
		k := analysis.FieldKey{Class: c, Name: f.Name}
		if vs.decision.Has(k) {
			st := &oc.Fields[f.Slot]
			var childVer *ClassVersion
			for _, child := range st.TS.ObjList() {
				cv := vs.versionOf(child)
				if childVer == nil {
					childVer = cv
				} else if childVer != cv {
					vs.conflicts[k] = "containee contours disagree on layout"
				}
			}
			if childVer == nil {
				// Candidate with no content in this contour: should have
				// been filtered, but degrade to a plain slot.
				slot := len(newClass.Fields)
				newClass.Fields = append(newClass.Fields, &ir.Field{Name: f.Name, Slot: slot, Owner: newClass})
				v.Slots[f.Name] = SlotInfo{Plain: true, NewSlot: slot}
				continue
			}
			base := len(newClass.Fields)
			for _, cf := range childVer.New.Fields {
				slot := len(newClass.Fields)
				newClass.Fields = append(newClass.Fields, &ir.Field{
					Name: f.Name + "$" + cf.Name, Slot: slot, Owner: newClass, Synthetic: true,
				})
			}
			v.Slots[f.Name] = SlotInfo{Child: childVer, Base: base}
		} else {
			slot := len(newClass.Fields)
			newClass.Fields = append(newClass.Fields, &ir.Field{Name: f.Name, Slot: slot, Owner: newClass})
			v.Slots[f.Name] = SlotInfo{Plain: true, NewSlot: slot}
		}
	}
	_ = upto
	vs.list = append(vs.list, v)
	return v
}

// prefixShape is shapeOf restricted to the fields of class c (an ancestor
// of oc.Class, or the class itself).
func (vs *versionSpace) prefixShape(c *ir.Class, oc *analysis.ObjContour) string {
	var b strings.Builder
	b.WriteString(c.Name)
	for _, f := range c.Fields {
		k := analysis.FieldKey{Class: f.Owner, Name: f.Name}
		if !vs.decision.Has(k) {
			continue
		}
		st := &oc.Fields[f.Slot]
		childShape := ""
		for _, child := range st.TS.ObjList() {
			cs := vs.shapeOf(child, nil)
			if childShape == "" {
				childShape = cs
			}
		}
		fmt.Fprintf(&b, "|%s=%s", f.Name, childShape)
	}
	if c == oc.Class {
		if n := vs.subver[oc]; n != 0 {
			fmt.Fprintf(&b, "~%d", n)
		}
	}
	return b.String()
}

func versionName(base string, n int) string {
	return fmt.Sprintf("%s'%d", base, n)
}

// Versions returns all versions in creation order.
func (vs *versionSpace) Versions() []*ClassVersion { return vs.list }

// ArrVersions returns array versions sorted by site.
func (vs *versionSpace) ArrVersions() []*ArrVersion {
	out := make([]*ArrVersion, 0, len(vs.arrs))
	for _, av := range vs.arrs {
		out = append(out, av)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key.ASiteUID < out[j].Key.ASiteUID })
	return out
}

// relSlot returns the flattened offset of field name within a version
// (used for interior references into inlined arrays). It reports false
// when the field is itself inlined in this version (the access must then
// extend the interior base instead).
func (v *ClassVersion) relSlot(name string) (SlotInfo, bool) {
	si, ok := v.Slots[name]
	return si, ok
}
