// Package core implements the paper's primary contribution: the object-
// inlining decision (use specialization §4.1 + assignment specialization
// §4.2) and the program transformation (§5) that restructures classes,
// redirects uses of inlined fields to the container's inlined state, and
// turns assignments into copies.
package core

import (
	"sort"

	"objinline/internal/analysis"
	"objinline/internal/ir"
)

// valuability implements the paper's assignment-specialization analysis
// (§4.2): a store into an inlinable field becomes a copy, which is safe
// only when the stored value could have been passed *by value* — it was
// created locally (or itself received by value at every call site), it is
// never stored anywhere else, and it is never used after the handoff.
//
// The predicates mirror the paper's: NoStore / DontStore over uses,
// UsesBefore/UsesAfter over the intraprocedural CFG, PassByValue over a
// handoff use, and CallByValue over every call edge of a parameter.
type valuability struct {
	prog *ir.Program
	res  *analysis.Result

	// callees maps (fn, call-instr ID) to the possible target functions
	// (union over all contours).
	callees map[*ir.Func]map[int][]*ir.Func
	// callers lists, per function, the call sites that may invoke it.
	callers map[*ir.Func][]callSite

	after map[*ir.Func][][]bool // after[fn][i][j]: instr j can run after instr i

	readOnly  map[paramKey]bool
	fresh     map[*ir.Func]int8 // 0 unknown, 1 yes, -1 no (FreshReturn)
	byValue   map[paramKey]int8
	byValMemo map[paramKey]bool
}

type paramKey struct {
	fn  *ir.Func
	reg ir.Reg // the parameter's register (self included)
}

type callSite struct {
	fn *ir.Func
	in *ir.Instr
}

func newValuability(prog *ir.Program, res *analysis.Result) *valuability {
	v := &valuability{
		prog:      prog,
		res:       res,
		callees:   make(map[*ir.Func]map[int][]*ir.Func),
		callers:   make(map[*ir.Func][]callSite),
		after:     make(map[*ir.Func][][]bool),
		readOnly:  make(map[paramKey]bool),
		fresh:     make(map[*ir.Func]int8),
		byValue:   make(map[paramKey]int8),
		byValMemo: make(map[paramKey]bool),
	}
	v.buildCallGraph()
	v.computeReadOnly()
	return v
}

// buildCallGraph flattens the contour-level call bindings to function
// level.
func (v *valuability) buildCallGraph() {
	type siteKey struct {
		fn *ir.Func
		id int
	}
	seen := make(map[siteKey]map[*ir.Func]bool)
	for _, mc := range v.res.Mcs {
		for id, callees := range mc.Callees {
			k := siteKey{mc.Fn, id}
			set := seen[k]
			if set == nil {
				set = make(map[*ir.Func]bool)
				seen[k] = set
			}
			for callee := range callees {
				set[callee.Fn] = true
			}
		}
	}
	instrOf := make(map[siteKey]*ir.Instr)
	for _, fn := range v.prog.Funcs {
		fn.Instrs(func(_ *ir.Block, in *ir.Instr) {
			if in.IsCall() {
				instrOf[siteKey{fn, in.ID}] = in
			}
		})
	}
	for k, set := range seen {
		targets := make([]*ir.Func, 0, len(set))
		for fn := range set {
			targets = append(targets, fn)
		}
		sort.Slice(targets, func(i, j int) bool { return targets[i].ID < targets[j].ID })
		m := v.callees[k.fn]
		if m == nil {
			m = make(map[int][]*ir.Func)
			v.callees[k.fn] = m
		}
		m[k.id] = targets
		if in := instrOf[k]; in != nil {
			for _, t := range targets {
				v.callers[t] = append(v.callers[t], callSite{fn: k.fn, in: in})
			}
		}
	}
	// The seen map iterates in random order; sort each caller list so
	// everything derived from it — including the explain walker's choice
	// of which failing call site to show — is deterministic.
	for _, sites := range v.callers {
		sort.Slice(sites, func(i, j int) bool {
			if sites[i].fn.ID != sites[j].fn.ID {
				return sites[i].fn.ID < sites[j].fn.ID
			}
			return sites[i].in.ID < sites[j].in.ID
		})
	}
}

// afterMatrix returns (building lazily) the instruction-level "may execute
// after" relation of fn: after[i][j] is true when instruction j can
// execute after instruction i in some run (same-block later instructions
// plus everything in reachable successor blocks; loops make blocks
// self-reachable).
func (v *valuability) afterMatrix(fn *ir.Func) [][]bool {
	if m, ok := v.after[fn]; ok {
		return m
	}
	nb := len(fn.Blocks)
	succ := make([][]int, nb)
	for _, b := range fn.Blocks {
		last := b.Instrs[len(b.Instrs)-1]
		switch last.Op {
		case ir.OpJump:
			succ[b.ID] = []int{last.Target}
		case ir.OpBranch:
			succ[b.ID] = []int{last.Target, last.Else}
		}
	}
	// Block-level reachability (strictly "via an edge", so a block is
	// after itself only when on a cycle).
	reach := make([][]bool, nb)
	for i := range reach {
		reach[i] = make([]bool, nb)
		work := append([]int(nil), succ[i]...)
		for len(work) > 0 {
			b := work[len(work)-1]
			work = work[:len(work)-1]
			if reach[i][b] {
				continue
			}
			reach[i][b] = true
			work = append(work, succ[b]...)
		}
	}
	m := make([][]bool, fn.NumInstrs)
	for i := range m {
		m[i] = make([]bool, fn.NumInstrs)
	}
	for _, b := range fn.Blocks {
		for i, in := range b.Instrs {
			// Later instructions in the same block.
			for j := i + 1; j < len(b.Instrs); j++ {
				m[in.ID][b.Instrs[j].ID] = true
			}
			// All instructions of blocks reachable from here.
			for _, ob := range fn.Blocks {
				if reach[b.ID][ob.ID] {
					for _, oin := range ob.Instrs {
						m[in.ID][oin.ID] = true
					}
				}
			}
		}
	}
	v.after[fn] = m
	return m
}

// computeReadOnly computes, to a greatest fixpoint, whether each parameter
// is treated as read-only by its function: never stored into persistent
// state (the paper's DontStore), never returned, and only passed on to
// parameters that are themselves read-only.
func (v *valuability) computeReadOnly() {
	// Optimistically mark every parameter read-only, then invalidate.
	for _, fn := range v.prog.Funcs {
		for _, r := range paramRegs(fn) {
			v.readOnly[paramKey{fn, r}] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range v.prog.Funcs {
			for _, r := range paramRegs(fn) {
				k := paramKey{fn, r}
				if !v.readOnly[k] {
					continue
				}
				if !v.paramIsReadOnly(fn, r) {
					v.readOnly[k] = false
					changed = true
				}
			}
		}
	}
}

func paramRegs(fn *ir.Func) []ir.Reg {
	n := fn.NumParams
	if fn.Class != nil {
		n++
	}
	regs := make([]ir.Reg, n)
	for i := range regs {
		regs[i] = ir.Reg(i)
	}
	return regs
}

// paramIsReadOnly checks one parameter against the current assumptions.
// Copying the parameter into a local (OpMove) extends the check to the
// copy.
func (v *valuability) paramIsReadOnly(fn *ir.Func, reg ir.Reg) bool {
	aliases := v.aliasSet(fn, reg)
	ok := true
	fn.Instrs(func(_ *ir.Block, in *ir.Instr) {
		if !ok {
			return
		}
		if !usesAny(in, aliases) {
			return
		}
		if v.useStores(fn, in, aliases) {
			ok = false
		}
	})
	return ok
}

// aliasSet returns reg plus every register that is only ever a Move-copy
// of it (transitively).
func (v *valuability) aliasSet(fn *ir.Func, reg ir.Reg) map[ir.Reg]bool {
	aliases := map[ir.Reg]bool{reg: true}
	for changed := true; changed; {
		changed = false
		fn.Instrs(func(_ *ir.Block, in *ir.Instr) {
			if in.Op == ir.OpMove && aliases[in.Args[0]] && !aliases[in.Dst] {
				// Only a pure alias if the destination has no other defs.
				if v.singleDef(fn, in.Dst, in) {
					aliases[in.Dst] = true
					changed = true
				}
			}
		})
	}
	return aliases
}

func (v *valuability) singleDef(fn *ir.Func, r ir.Reg, def *ir.Instr) bool {
	count := 0
	fn.Instrs(func(_ *ir.Block, in *ir.Instr) {
		if in.Dst == r {
			count++
		}
	})
	return count == 1 && def.Dst == r
}

func usesAny(in *ir.Instr, regs map[ir.Reg]bool) bool {
	for _, a := range in.Args {
		if regs[a] {
			return true
		}
	}
	return false
}

// useStores reports whether use `in` may store one of the aliased
// registers into persistent state (or lets it escape in a way we cannot
// track): the negation of the paper's DontStore, extended through calls.
func (v *valuability) useStores(fn *ir.Func, in *ir.Instr, aliases map[ir.Reg]bool) bool {
	switch in.Op {
	case ir.OpMove:
		// Alias moves were folded into the set; a move to a multiply-
		// defined register is an untracked copy.
		return !aliases[in.Dst]
	case ir.OpSetField:
		return aliases[in.Args[1]] // storing the value (receiver use is fine)
	case ir.OpArrSet:
		return aliases[in.Args[2]]
	case ir.OpSetGlobal:
		return aliases[in.Args[0]]
	case ir.OpReturn:
		return len(in.Args) > 0 && aliases[in.Args[0]]
	case ir.OpCall, ir.OpCallStatic, ir.OpCallMethod:
		// Passing on is fine only into read-only parameters of every
		// possible callee.
		targets := v.callees[fn][in.ID]
		if len(targets) == 0 {
			return false // unreached call
		}
		for argIdx, a := range in.Args {
			if !aliases[a] {
				continue
			}
			for _, t := range targets {
				pr := calleeParamReg(in, t, argIdx)
				if pr == ir.NoReg || !v.readOnly[paramKey{t, pr}] {
					return true
				}
			}
		}
		return false
	case ir.OpBuiltin:
		// Builtins read their arguments (print formats, len measures);
		// none retains a reference.
		return false
	default:
		return false
	}
}

// calleeParamReg maps an argument index at a call instruction to the
// callee's parameter register.
func calleeParamReg(in *ir.Instr, callee *ir.Func, argIdx int) ir.Reg {
	switch in.Op {
	case ir.OpCall:
		if argIdx < callee.NumParams {
			return callee.ParamReg(argIdx)
		}
	case ir.OpCallStatic, ir.OpCallMethod:
		if callee.Class == nil {
			return ir.NoReg
		}
		if argIdx == 0 {
			return 0
		}
		if argIdx-1 < callee.NumParams {
			return callee.ParamReg(argIdx - 1)
		}
	}
	return ir.NoReg
}

// FreshReturn reports whether every value fn returns is a locally created
// object that has not been stored and is not otherwise retained — the
// factory-function extension noted in DESIGN.md.
func (v *valuability) FreshReturn(fn *ir.Func) bool {
	switch v.fresh[fn] {
	case 1:
		return true
	case -1:
		return false
	}
	v.fresh[fn] = -1 // pessimistic for recursion
	ok := true
	fn.Instrs(func(_ *ir.Block, in *ir.Instr) {
		if !ok || in.Op != ir.OpReturn || len(in.Args) == 0 {
			return
		}
		if !v.safeHandoff(fn, in.Args[0], in, true) {
			ok = false
		}
	})
	if ok {
		v.fresh[fn] = 1
	}
	return ok
}

// SafeStore reports whether the value stored by `store` (a SetField or
// ArrSet instruction in fn) may be converted into a copy: the paper's
// PassByValue condition applied at the mutator's store site.
func (v *valuability) SafeStore(fn *ir.Func, store *ir.Instr) bool {
	var valReg ir.Reg
	switch store.Op {
	case ir.OpSetField:
		valReg = store.Args[1]
	case ir.OpArrSet:
		valReg = store.Args[2]
	default:
		return false
	}
	return v.safeHandoff(fn, valReg, store, false)
}

// safeHandoff checks the paper's PassByValue conditions for handing the
// value in register reg to `handoff` (a store, call, or return): every
// definition is by-value-producible, no other use stores it, and no use
// can execute after the handoff.
func (v *valuability) safeHandoff(fn *ir.Func, reg ir.Reg, handoff *ir.Instr, isReturn bool) bool {
	chain := v.defChain(fn, reg)
	if chain == nil {
		return false
	}
	// Origin check: every root definition must produce a fresh value or a
	// by-value parameter.
	for _, def := range chain.roots {
		switch def.Op {
		case ir.OpNewObject:
			// Locally created.
		case ir.OpCall:
			if !v.FreshReturn(def.Callee) {
				return false
			}
		case ir.OpConstNil:
			// A nil initializer on a declaration; harmless.
		default:
			return false
		}
	}
	for _, pr := range chain.params {
		if !v.ParamByValue(fn, pr) {
			return false
		}
	}
	// Use checks.
	safe := true
	fn.Instrs(func(_ *ir.Block, in *ir.Instr) {
		if !safe || in == handoff {
			return
		}
		if !usesAny(in, chain.regs) {
			return
		}
		if chain.chainDefs[in] {
			return // the internal moves of the chain
		}
		if v.useStores(fn, in, chain.regs) {
			safe = false
			return
		}
		// No use of the *same value* may run after the handoff (the copy
		// would expose stale state). A use is only dangerous when it is
		// reachable from the handoff without the used register being
		// redefined on the way — loop-carried re-creations are new values.
		for _, a := range in.Args {
			if chain.regs[a] && v.liveUseAfter(fn, handoff, in, a) {
				safe = false
				return
			}
		}
	})
	_ = isReturn
	return safe
}

// liveUseAfter reports whether instruction `use` (reading register x) can
// execute after `handoff` while x still holds the handed-off value — i.e.
// whether a path handoff→use exists that does not redefine x.
func (v *valuability) liveUseAfter(fn *ir.Func, handoff, use *ir.Instr, x ir.Reg) bool {
	// Locate the handoff's position.
	type pos struct {
		b   *ir.Block
		idx int
	}
	var start *pos
	for _, b := range fn.Blocks {
		for i, in := range b.Instrs {
			if in == handoff {
				start = &pos{b, i}
			}
		}
	}
	if start == nil {
		return true // unknown position: stay conservative
	}
	visited := make(map[int]bool) // by instruction ID
	var walk func(b *ir.Block, idx int) bool
	walk = func(b *ir.Block, idx int) bool {
		for i := idx; i < len(b.Instrs); i++ {
			in := b.Instrs[i]
			if visited[in.ID] {
				return false
			}
			visited[in.ID] = true
			if in == use {
				return true
			}
			if in.Dst == x {
				return false // value killed on this path
			}
			if in.IsTerminator() {
				switch in.Op {
				case ir.OpJump:
					return walk(fn.Blocks[in.Target], 0)
				case ir.OpBranch:
					return walk(fn.Blocks[in.Target], 0) || walk(fn.Blocks[in.Else], 0)
				default:
					return false // return/trap: nothing after
				}
			}
		}
		return false
	}
	return walk(start.b, start.idx+1)
}

// defChain gathers the registers holding the value (through Move copies),
// the root (non-move) definitions, and any parameter origins. It returns
// nil when the flow is too tangled to track.
type chainInfo struct {
	regs      map[ir.Reg]bool
	roots     []*ir.Instr
	params    []ir.Reg
	chainDefs map[*ir.Instr]bool
}

func (v *valuability) defChain(fn *ir.Func, reg ir.Reg) *chainInfo {
	c := &chainInfo{regs: map[ir.Reg]bool{reg: true}, chainDefs: make(map[*ir.Instr]bool)}
	work := []ir.Reg{reg}
	visited := map[ir.Reg]bool{reg: true}
	for len(work) > 0 {
		r := work[len(work)-1]
		work = work[:len(work)-1]
		defs := v.defsOf(fn, r)
		if len(defs) == 0 {
			// No definition: a parameter register.
			if isParamReg(fn, r) {
				c.params = append(c.params, r)
				continue
			}
			return nil
		}
		for _, def := range defs {
			switch def.Op {
			case ir.OpMove:
				c.chainDefs[def] = true
				src := def.Args[0]
				if !visited[src] {
					visited[src] = true
					c.regs[src] = true
					work = append(work, src)
				}
			default:
				c.chainDefs[def] = true
				c.roots = append(c.roots, def)
			}
		}
		// Parameters can also be reassigned; if r is a param with defs it
		// still carries the incoming value.
		if isParamReg(fn, r) {
			c.params = append(c.params, r)
		}
	}
	return c
}

func isParamReg(fn *ir.Func, r ir.Reg) bool {
	n := fn.NumParams
	if fn.Class != nil {
		n++
	}
	return int(r) < n
}

func (v *valuability) defsOf(fn *ir.Func, r ir.Reg) []*ir.Instr {
	var out []*ir.Instr
	fn.Instrs(func(_ *ir.Block, in *ir.Instr) {
		if in.Dst == r {
			out = append(out, in)
		}
	})
	return out
}

// CollectRoots gathers the OpNewObject instructions (and FreshReturn
// factories' allocations) whose values feed the given safe store,
// following by-value parameters into every caller. The transformation
// stack-allocates these sites: after the copy the original is dead, so no
// heap allocation is needed — this is how the reproduction realizes the
// paper's "sub-objects are allocated with the container" savings (see
// DESIGN.md §2).
func (v *valuability) CollectRoots(fn *ir.Func, store *ir.Instr) []AllocSite {
	var valReg ir.Reg
	switch store.Op {
	case ir.OpSetField:
		valReg = store.Args[1]
	case ir.OpArrSet:
		valReg = store.Args[2]
	default:
		return nil
	}
	var out []AllocSite
	visited := make(map[paramKey]bool)
	var walk func(fn *ir.Func, reg ir.Reg)
	walk = func(fn *ir.Func, reg ir.Reg) {
		chain := v.defChain(fn, reg)
		if chain == nil {
			return
		}
		for _, def := range chain.roots {
			switch def.Op {
			case ir.OpNewObject:
				out = append(out, AllocSite{Fn: fn, Instr: def})
			case ir.OpCall:
				// Fresh factory: collect its returned allocations.
				callee := def.Callee
				callee.Instrs(func(_ *ir.Block, in *ir.Instr) {
					if in.Op == ir.OpReturn && len(in.Args) > 0 {
						walk(callee, in.Args[0])
					}
				})
			}
		}
		for _, pr := range chain.params {
			k := paramKey{fn, pr}
			if visited[k] {
				continue
			}
			visited[k] = true
			for _, site := range v.callers[fn] {
				idx := argIndexFor(site.in, fn, pr)
				if idx >= 0 && idx < len(site.in.Args) {
					walk(site.fn, site.in.Args[idx])
				}
			}
		}
	}
	walk(fn, valReg)
	return out
}

// AllocSite names one allocation instruction within a function.
type AllocSite struct {
	Fn    *ir.Func
	Instr *ir.Instr
}

// ParamByValue implements the paper's CallByValue: parameter reg of fn may
// be passed by value if at *every* call site the argument could be handed
// off safely. Recursion is resolved pessimistically.
func (v *valuability) ParamByValue(fn *ir.Func, reg ir.Reg) bool {
	k := paramKey{fn, reg}
	switch v.byValue[k] {
	case 1:
		return true
	case -1:
		return false
	}
	v.byValue[k] = -1 // pessimistic while in progress
	sites := v.callers[fn]
	if len(sites) == 0 {
		// Never called (dead code): vacuously safe.
		v.byValue[k] = 1
		return true
	}
	for _, site := range sites {
		argIdx := argIndexFor(site.in, fn, reg)
		if argIdx < 0 || argIdx >= len(site.in.Args) {
			v.byValue[k] = -1
			return false
		}
		if !v.safeHandoff(site.fn, site.in.Args[argIdx], site.in, false) {
			v.byValue[k] = -1
			return false
		}
	}
	v.byValue[k] = 1
	return true
}

// argIndexFor maps a callee parameter register back to the argument index
// at a call instruction.
func argIndexFor(in *ir.Instr, callee *ir.Func, reg ir.Reg) int {
	switch in.Op {
	case ir.OpCall:
		return int(reg)
	case ir.OpCallStatic, ir.OpCallMethod:
		return int(reg) // self is Args[0], params follow
	}
	return -1
}
