package core

import (
	"fmt"
	"sort"

	"objinline/internal/analysis"
	"objinline/internal/ir"
)

// Decision is the outcome of the inlinability analysis: the set of fields
// (and array-allocation sites) that will be inline allocated, plus the
// reasons rejected candidates were dropped (reported in Figure 14 and
// EXPERIMENTS.md).
type Decision struct {
	// Inlined is the final candidate set.
	Inlined map[analysis.FieldKey]bool
	// Initial is the candidate set before global consistency pruning.
	Initial map[analysis.FieldKey]bool
	// Rejected maps each rejected candidate (or non-candidate object
	// field) to the reason.
	Rejected map[analysis.FieldKey]string
	// ObjectFields is the Figure 14 denominator: every field that holds
	// objects, plus every array site holding objects.
	ObjectFields []analysis.FieldKey
}

// Has reports whether key was selected for inlining.
func (d *Decision) Has(k analysis.FieldKey) bool { return d.Inlined[k] }

// InlinedKeys returns the selected keys in deterministic order.
func (d *Decision) InlinedKeys() []analysis.FieldKey {
	out := make([]analysis.FieldKey, 0, len(d.Inlined))
	for k := range d.Inlined {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// decide runs use-specialization consistency plus assignment-
// specialization safety over the analysis result.
func decide(prog *ir.Program, res *analysis.Result, val *valuability) *Decision {
	d := &Decision{
		Inlined:  make(map[analysis.FieldKey]bool),
		Initial:  make(map[analysis.FieldKey]bool),
		Rejected: make(map[analysis.FieldKey]string),
	}
	d.ObjectFields = append(res.ObjectFields(), res.ObjectArraySites()...)

	reject := func(k analysis.FieldKey, reason string) {
		if d.Inlined[k] {
			delete(d.Inlined, k)
		}
		if _, dup := d.Rejected[k]; !dup {
			d.Rejected[k] = reason
		}
	}

	// Local candidate filters: field contents must be a single class of
	// plain objects, stored values must be original objects (NoField), and
	// every store must be convertible to a copy.
	ocsByKey := make(map[analysis.FieldKey][]*analysis.ObjContour)
	for _, oc := range res.Objs {
		for _, f := range oc.Class.Fields {
			k := analysis.FieldKey{Class: f.Owner, Name: f.Name}
			ocsByKey[k] = append(ocsByKey[k], oc)
		}
	}
	for _, k := range res.ObjectFields() {
		reason := fieldLocallyInlinable(k, ocsByKey[k])
		if reason != "" {
			reject(k, reason)
			continue
		}
		d.Inlined[k] = true
	}
	acsByKey := make(map[analysis.FieldKey][]*analysis.ArrContour)
	for _, ac := range res.Arrs {
		k := arrKey(ac)
		acsByKey[k] = append(acsByKey[k], ac)
	}
	for _, k := range res.ObjectArraySites() {
		reason := arrayLocallyInlinable(acsByKey[k])
		if reason != "" {
			reject(k, reason)
			continue
		}
		d.Inlined[k] = true
	}

	// Assignment specialization: every store into a candidate must pass
	// the by-value check.
	checkStores(prog, res, val, d, reject)

	// Containment cycles cannot be flattened.
	rejectContainmentCycles(res, ocsByKey, d, reject)

	for k := range d.Inlined {
		d.Initial[k] = true
	}

	// Global consistency: iterate until every value's representation is
	// unambiguous under the surviving candidate set (the paper's "tags of
	// the given field must not be confused with tags from any other
	// field").
	pruneInconsistent(prog, res, d)
	return d
}

func arrKey(ac *analysis.ArrContour) analysis.FieldKey {
	return analysis.FieldKey{Array: true, ASiteUID: ac.SiteFn.ID*1_000_000 + ac.Site.ID}
}

// fieldLocallyInlinable checks the per-contour content conditions for an
// object field; it returns a rejection reason or "".
func fieldLocallyInlinable(k analysis.FieldKey, ocs []*analysis.ObjContour) string {
	sawContent := false
	for _, oc := range ocs {
		st := oc.FieldState(k.Name)
		if st == nil {
			continue
		}
		if st.TS.IsEmpty() {
			continue // this contour never stores the field
		}
		if st.TS.Prims != 0 {
			if st.TS.Prims == analysis.PNil && !st.TS.HasObjects() {
				continue
			}
			return "field may hold nil or primitives"
		}
		if len(st.TS.Arrs) > 0 {
			return "field holds arrays (array-into-object inlining unsupported)"
		}
		classes := st.TS.Classes()
		if len(classes) != 1 {
			return fmt.Sprintf("field polymorphic within one contour (%v)", classes)
		}
		heads, noField, top := st.Tags.Heads()
		if top {
			return "stored values have confused provenance"
		}
		if len(heads) > 0 || !noField {
			return "stored values are not original objects"
		}
		sawContent = true
	}
	if !sawContent {
		return "field never stores an object"
	}
	return ""
}

func arrayLocallyInlinable(acs []*analysis.ArrContour) string {
	elemClass := ""
	for _, ac := range acs {
		st := &ac.Elem
		if st.TS.IsEmpty() {
			continue
		}
		if st.TS.Prims != 0 || len(st.TS.Arrs) > 0 {
			return "elements may hold nil, primitives, or arrays"
		}
		classes := st.TS.Classes()
		if len(classes) != 1 {
			return fmt.Sprintf("array polymorphic (%v)", classes)
		}
		if elemClass == "" {
			elemClass = classes[0]
		} else if elemClass != classes[0] {
			return "array site polymorphic across contours"
		}
		heads, noField, top := st.Tags.Heads()
		if top || len(heads) > 0 || !noField {
			return "stored elements are not original objects"
		}
	}
	if elemClass == "" {
		return "array never stores an object"
	}
	return ""
}

// checkStores applies assignment specialization (§4.2) to every store
// into a candidate field or array.
func checkStores(prog *ir.Program, res *analysis.Result, val *valuability, d *Decision, reject func(analysis.FieldKey, string)) {
	// Receiver type info is contour-level; collect, per function and
	// instruction, the union of receiver contours.
	for _, mc := range res.Mcs {
		fn := mc.Fn
		fn.Instrs(func(_ *ir.Block, in *ir.Instr) {
			switch in.Op {
			case ir.OpSetField:
				base := mc.Reg(in.Args[0])
				for _, oc := range base.TS.ObjList() {
					owner := fieldOwner(oc.Class, in.Field.Name)
					if owner == nil {
						continue
					}
					k := analysis.FieldKey{Class: owner, Name: in.Field.Name}
					if !d.Inlined[k] {
						continue
					}
					if !val.SafeStore(fn, in) {
						reject(k, fmt.Sprintf("store at %s not convertible to a copy (value may be aliased or used later)", in.Pos))
					}
				}
			case ir.OpArrSet:
				base := mc.Reg(in.Args[0])
				for _, ac := range base.TS.ArrList() {
					k := arrKey(ac)
					if !d.Inlined[k] {
						continue
					}
					if !val.SafeStore(fn, in) {
						reject(k, fmt.Sprintf("element store at %s not convertible to a copy", in.Pos))
					}
				}
			}
		})
	}
}

func fieldOwner(c *ir.Class, name string) *ir.Class {
	for _, f := range c.Fields {
		if f.Name == name {
			return f.Owner
		}
	}
	return nil
}

// rejectContainmentCycles drops candidates that would flatten a class into
// itself (directly or transitively).
func rejectContainmentCycles(res *analysis.Result, ocsByKey map[analysis.FieldKey][]*analysis.ObjContour, d *Decision, reject func(analysis.FieldKey, string)) {
	// Edges: container class -> child class per candidate field.
	for changed := true; changed; {
		changed = false
		// child classes per candidate.
		type edge struct {
			key   analysis.FieldKey
			from  *ir.Class
			child *ir.Class
		}
		var edges []edge
		for k := range d.Inlined {
			if k.Array {
				continue // arrays are not classes; they cannot close a cycle
			}
			for _, oc := range ocsByKey[k] {
				st := oc.FieldState(k.Name)
				if st == nil {
					continue
				}
				for _, child := range st.TS.ObjList() {
					edges = append(edges, edge{k, k.Class, child.Class})
				}
			}
		}
		// DFS cycle detection over class containment.
		adj := make(map[*ir.Class][]edge)
		for _, e := range edges {
			adj[e.from] = append(adj[e.from], e)
		}
		var stack []*ir.Class
		onStack := make(map[*ir.Class]bool)
		visited := make(map[*ir.Class]bool)
		var dfs func(c *ir.Class) *analysis.FieldKey
		dfs = func(c *ir.Class) *analysis.FieldKey {
			visited[c] = true
			onStack[c] = true
			stack = append(stack, c)
			for _, e := range adj[c] {
				// Containment applies to the child's whole family: a
				// subclass instance stored in the field closes the cycle
				// too.
				for target := e.child; target != nil; target = target.Super {
					if onStack[target] {
						k := e.key
						return &k
					}
				}
				if !visited[e.child] {
					if bad := dfs(e.child); bad != nil {
						return bad
					}
				}
			}
			onStack[c] = false
			stack = stack[:len(stack)-1]
			return nil
		}
		classes := make([]*ir.Class, 0, len(adj))
		for c := range adj {
			classes = append(classes, c)
		}
		sort.Slice(classes, func(i, j int) bool { return classes[i].ID < classes[j].ID })
		for _, c := range classes {
			if visited[c] {
				continue
			}
			stack = stack[:0]
			clear(onStack)
			if bad := dfs(c); bad != nil {
				reject(*bad, "containment cycle (class would inline into itself)")
				changed = true
				break
			}
		}
	}
}

// candidateContentClasses maps class names to the candidates whose content
// may be of that class. When confusion cannot be attributed through tags
// (a fully saturated tag set), any candidate whose containee classes
// overlap the value's classes could be involved and must go.
func candidateContentClasses(res *analysis.Result, d *Decision) map[string][]analysis.FieldKey {
	out := make(map[string][]analysis.FieldKey)
	add := func(k analysis.FieldKey, st *analysis.VarState) {
		for _, cls := range st.TS.Classes() {
			out[cls] = append(out[cls], k)
		}
	}
	for _, oc := range res.Objs {
		for _, f := range oc.Class.Fields {
			k := analysis.FieldKey{Class: f.Owner, Name: f.Name}
			if d.Has(k) {
				add(k, &oc.Fields[f.Slot])
			}
		}
	}
	for _, ac := range res.Arrs {
		if k := arrKey(ac); d.Has(k) {
			add(k, &ac.Elem)
		}
	}
	return out
}

// pruneInconsistent removes candidates until every object value's
// representation is unambiguous, and opaque uses (builtins, mixed identity
// comparisons, dynamic dispatch on array interiors) are rep-free.
func pruneInconsistent(prog *ir.Program, res *analysis.Result, d *Decision) {
	has := func(k analysis.FieldKey) bool { return d.Inlined[k] }
	for round := 0; round < len(d.Initial)+2; round++ {
		removedAny := false
		byClass := candidateContentClasses(res, d)
		repable := repableContours(res, d)
		couldBeRep := func(ts *analysis.TypeSet) bool {
			for oc := range ts.Objs {
				if repable[oc] {
					return true
				}
			}
			return false
		}
		var confusedTS *analysis.TypeSet
		remove := func(rep analysis.Rep, tags *analysis.TagSet, reason string) {
			victims := rep.Involved
			if len(victims) == 0 {
				victims = rep.Fields
			}
			if len(victims) == 0 {
				// Confusion without attribution: fall back to raw heads.
				heads, _, _ := tags.Heads()
				victims = make(map[analysis.FieldKey]bool)
				for _, h := range heads {
					victims[h] = true
				}
			}
			if len(victims) == 0 && confusedTS != nil {
				// Fully saturated tags: attribute by class overlap.
				victims = make(map[analysis.FieldKey]bool)
				for _, cls := range confusedTS.Classes() {
					for _, k := range byClass[cls] {
						victims[k] = true
					}
				}
			}
			keys := make([]analysis.FieldKey, 0, len(victims))
			for k := range victims {
				keys = append(keys, k)
			}
			sort.Slice(keys, func(i, j int) bool { return keys[i].String() < keys[j].String() })
			for _, k := range keys {
				if d.Inlined[k] {
					delete(d.Inlined, k)
					d.Rejected[k] = reason
					removedAny = true
				}
			}
		}
		checkValue := func(v *analysis.VarState, where string) {
			if !v.TS.HasObjects() || !couldBeRep(&v.TS) {
				return
			}
			confusedTS = &v.TS
			rep := res.RepsOf(&v.Tags, has)
			switch {
			case rep.Confused:
				remove(rep, &v.Tags, "value with confused provenance at "+where)
			case rep.Raw && len(rep.Fields) > 0:
				remove(rep, &v.Tags, "value may be original object or inlined state at "+where)
			case len(rep.Fields) > 1:
				remove(rep, &v.Tags, "value may come from several inlined fields at "+where)
			}
		}
		for _, mc := range res.Mcs {
			for i := range mc.Regs {
				checkValue(&mc.Regs[i], mc.Fn.FullName())
			}
			checkValue(&mc.Ret, mc.Fn.FullName()+" return")
		}
		for _, oc := range res.Objs {
			for i := range oc.Fields {
				checkValue(&oc.Fields[i], oc.Class.Name+" field")
			}
		}
		for _, ac := range res.Arrs {
			checkValue(&ac.Elem, "array element")
		}
		for i := range res.Globals {
			checkValue(&res.Globals[i], "global")
		}

		// Opaque uses.
		for _, mc := range res.Mcs {
			mc.Fn.Instrs(func(_ *ir.Block, in *ir.Instr) {
				switch in.Op {
				case ir.OpBuiltin:
					for _, a := range in.Args {
						v := mc.Reg(a)
						if !v.TS.HasObjects() || !couldBeRep(&v.TS) {
							continue
						}
						confusedTS = &v.TS
						rep := res.RepsOf(&v.Tags, has)
						if !rep.PureRaw() && (len(rep.Fields) > 0 || rep.Confused) {
							remove(rep, &v.Tags, "inlined value escapes to a builtin at "+in.Pos.String())
						}
					}
				case ir.OpBin:
					op := ir.BinOp(in.Aux)
					if op != ir.BinEq && op != ir.BinNe {
						return
					}
					x, y := mc.Reg(in.Args[0]), mc.Reg(in.Args[1])
					if !x.TS.HasObjects() && !y.TS.HasObjects() {
						return
					}
					confusedTS = &x.TS
					repX := res.RepsOf(&x.Tags, has)
					repY := res.RepsOf(&y.Tags, has)
					if len(repX.Fields) == 0 && len(repY.Fields) == 0 {
						return
					}
					// Identity is preserved only when both sides are reps
					// of the same single field, or one side can never be
					// an object.
					fx, okX := repX.Unique()
					fy, okY := repY.Unique()
					if okX && okY && fx == fy {
						return
					}
					if okX && !y.TS.HasObjects() {
						return
					}
					if okY && !x.TS.HasObjects() {
						return
					}
					repX.Add(repY)
					remove(repX, &x.Tags, "identity comparison mixes inlined and other values at "+in.Pos.String())
				case ir.OpCallMethod:
					// Dispatch on an array-interior rep must be statically
					// bound: require one tag and one target.
					recv := mc.Reg(in.Args[0])
					if !recv.TS.HasObjects() {
						return
					}
					confusedTS = &recv.TS
					rep := res.RepsOf(&recv.Tags, has)
					k, ok := rep.Unique()
					if !ok || !k.Array {
						return
					}
					if len(mc.Targets[in.ID]) > 1 || recv.Tags.Len() > 1 {
						remove(rep, &recv.Tags, "polymorphic dispatch on array-inlined value at "+in.Pos.String())
					}
				}
			})
		}
		if !removedAny {
			return
		}
	}
}
