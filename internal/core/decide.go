package core

import (
	"fmt"
	"sort"
	"strings"

	"objinline/internal/analysis"
	"objinline/internal/ir"
)

// Decision is the outcome of the inlinability analysis: the set of fields
// (and array-allocation sites) that will be inline allocated, plus a
// structured provenance record per candidate — the reasons rejected
// candidates were dropped (reported in Figure 14 and EXPERIMENTS.md) and
// the evidence accepted candidates passed on.
type Decision struct {
	// Inlined is the final candidate set.
	Inlined map[analysis.FieldKey]bool
	// Initial is the candidate set before global consistency pruning.
	Initial map[analysis.FieldKey]bool
	// Rejected maps each rejected candidate (or non-candidate object
	// field) to the structured reason.
	Rejected map[analysis.FieldKey]Reason
	// Accepted maps each surviving candidate to the evidence chain it
	// passed: content checks, per-store PassByValue proofs, and global
	// consistency.
	Accepted map[analysis.FieldKey][]Step
	// ObjectFields is the Figure 14 denominator: every field that holds
	// objects, plus every array site holding objects.
	ObjectFields []analysis.FieldKey
}

func newDecision() *Decision {
	return &Decision{
		Inlined:  make(map[analysis.FieldKey]bool),
		Initial:  make(map[analysis.FieldKey]bool),
		Rejected: make(map[analysis.FieldKey]Reason),
		Accepted: make(map[analysis.FieldKey][]Step),
	}
}

// Has reports whether key was selected for inlining.
func (d *Decision) Has(k analysis.FieldKey) bool { return d.Inlined[k] }

// InlinedKeys returns the selected keys in deterministic order.
func (d *Decision) InlinedKeys() []analysis.FieldKey {
	out := make([]analysis.FieldKey, 0, len(d.Inlined))
	for k := range d.Inlined {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// reject drops a candidate, recording the first reason it was dropped for
// (later rejections of an already-rejected key keep the original record).
func (d *Decision) reject(k analysis.FieldKey, r Reason) {
	if d.Inlined[k] {
		delete(d.Inlined, k)
	}
	delete(d.Accepted, k)
	if _, dup := d.Rejected[k]; !dup {
		d.Rejected[k] = r
	}
}

// note appends evidence to a (still) accepted candidate's chain.
func (d *Decision) note(k analysis.FieldKey, s Step) {
	if d.Inlined[k] {
		d.Accepted[k] = append(d.Accepted[k], s)
	}
}

// decide runs use-specialization consistency plus assignment-
// specialization safety over the analysis result.
func decide(prog *ir.Program, res *analysis.Result, val *valuability) *Decision {
	d := newDecision()
	d.ObjectFields = append(res.ObjectFields(), res.ObjectArraySites()...)

	// Local candidate filters: field contents must be a single class of
	// plain objects, stored values must be original objects (NoField), and
	// every store must be convertible to a copy.
	ocsByKey := make(map[analysis.FieldKey][]*analysis.ObjContour)
	for _, oc := range res.Objs {
		for _, f := range oc.Class.Fields {
			k := analysis.FieldKey{Class: f.Owner, Name: f.Name}
			ocsByKey[k] = append(ocsByKey[k], oc)
		}
	}
	for _, k := range res.ObjectFields() {
		accept, rej := fieldLocallyInlinable(k, ocsByKey[k])
		if rej.Code != "" {
			d.reject(k, rej)
			continue
		}
		d.Inlined[k] = true
		d.Accepted[k] = accept
	}
	acsByKey := make(map[analysis.FieldKey][]*analysis.ArrContour)
	for _, ac := range res.Arrs {
		k := arrKey(ac)
		acsByKey[k] = append(acsByKey[k], ac)
	}
	for _, k := range res.ObjectArraySites() {
		accept, rej := arrayLocallyInlinable(acsByKey[k])
		if rej.Code != "" {
			d.reject(k, rej)
			continue
		}
		d.Inlined[k] = true
		d.Accepted[k] = accept
	}

	// Assignment specialization: every store into a candidate must pass
	// the by-value check.
	checkStores(prog, res, val, d)

	// Containment cycles cannot be flattened.
	rejectContainmentCycles(res, ocsByKey, d)

	for k := range d.Inlined {
		d.Initial[k] = true
	}

	// Global consistency: iterate until every value's representation is
	// unambiguous under the surviving candidate set (the paper's "tags of
	// the given field must not be confused with tags from any other
	// field").
	pruneInconsistent(prog, res, d)
	for k := range d.Inlined {
		d.note(k, Step{
			What:   "globally-consistent",
			Detail: "every value the field's contents flow into resolves to a single representation",
		})
	}
	return d
}

func arrKey(ac *analysis.ArrContour) analysis.FieldKey {
	return analysis.FieldKey{Array: true, ASiteUID: ac.SiteFn.ID*1_000_000 + ac.Site.ID}
}

// fieldLocallyInlinable checks the per-contour content conditions for an
// object field, returning either the evidence chain the field passed or
// the structured rejection.
func fieldLocallyInlinable(k analysis.FieldKey, ocs []*analysis.ObjContour) ([]Step, Reason) {
	sawContent := false
	contentClass := ""
	contours := 0
	for _, oc := range ocs {
		st := oc.FieldState(k.Name)
		if st == nil {
			continue
		}
		if st.TS.IsEmpty() {
			continue // this contour never stores the field
		}
		where := oc.String() + "." + k.Name
		if st.TS.Prims != 0 {
			if st.TS.Prims == analysis.PNil && !st.TS.HasObjects() {
				continue
			}
			return nil, because(ReasonHoldsPrimitives, "field may hold nil or primitives",
				Step{What: "content-primitives", Where: where, Detail: "abstract content " + st.TS.String()})
		}
		if len(st.TS.Arrs) > 0 {
			return nil, because(ReasonHoldsArrays, "field holds arrays (array-into-object inlining unsupported)",
				Step{What: "content-array", Where: where, Detail: "abstract content " + st.TS.String()})
		}
		classes := st.TS.Classes()
		if len(classes) != 1 {
			return nil, because(ReasonPolymorphic, fmt.Sprintf("field polymorphic within one contour (%v)", classes),
				Step{What: "content-polymorphic", Where: where,
					Detail: "one contour stores classes " + strings.Join(classes, ", ")})
		}
		heads, noField, top := st.Tags.Heads()
		if top {
			return nil, because(ReasonConfusedStores, "stored values have confused provenance",
				Step{What: "tag-confusion", Where: where, Detail: "stored-value tags " + st.Tags.String()})
		}
		if len(heads) > 0 || !noField {
			return nil, because(ReasonNotOriginal, "stored values are not original objects",
				Step{What: "stored-from-field", Where: where,
					Detail: "stored values carry field provenance " + st.Tags.String()})
		}
		sawContent = true
		contentClass = classes[0]
		contours++
	}
	if !sawContent {
		return nil, because(ReasonNeverStored, "field never stores an object")
	}
	return []Step{{
		What:   "content-monomorphic",
		Where:  k.String(),
		Detail: fmt.Sprintf("all stores hold class %s (checked over %d object contours)", contentClass, contours),
	}, {
		What:   "original-stores",
		Where:  k.String(),
		Detail: "every stored value is an original object (NoField provenance)",
	}}, Reason{}
}

func arrayLocallyInlinable(acs []*analysis.ArrContour) ([]Step, Reason) {
	elemClass := ""
	contours := 0
	for _, ac := range acs {
		st := &ac.Elem
		if st.TS.IsEmpty() {
			continue
		}
		where := ac.String()
		if st.TS.Prims != 0 || len(st.TS.Arrs) > 0 {
			return nil, because(ReasonHoldsPrimitives, "elements may hold nil, primitives, or arrays",
				Step{What: "content-primitives", Where: where, Detail: "abstract element content " + st.TS.String()})
		}
		classes := st.TS.Classes()
		if len(classes) != 1 {
			return nil, because(ReasonPolymorphic, fmt.Sprintf("array polymorphic (%v)", classes),
				Step{What: "content-polymorphic", Where: where,
					Detail: "one contour's elements hold classes " + strings.Join(classes, ", ")})
		}
		if elemClass == "" {
			elemClass = classes[0]
		} else if elemClass != classes[0] {
			return nil, because(ReasonPolymorphic, "array site polymorphic across contours",
				Step{What: "content-polymorphic", Where: where,
					Detail: fmt.Sprintf("contours disagree on the element class (%s vs %s)", elemClass, classes[0])})
		}
		heads, noField, top := st.Tags.Heads()
		if top || len(heads) > 0 || !noField {
			return nil, because(ReasonNotOriginal, "stored elements are not original objects",
				Step{What: "stored-from-field", Where: where,
					Detail: "stored elements carry field provenance " + st.Tags.String()})
		}
		contours++
	}
	if elemClass == "" {
		return nil, because(ReasonNeverStored, "array never stores an object")
	}
	return []Step{{
		What:   "content-monomorphic",
		Detail: fmt.Sprintf("all element stores hold class %s (checked over %d array contours)", elemClass, contours),
	}, {
		What:   "original-stores",
		Detail: "every stored element is an original object (NoField provenance)",
	}}, Reason{}
}

// checkStores applies assignment specialization (§4.2) to every store
// into a candidate field or array, recording per-store evidence either
// way: a failing store carries the exact PassByValue violation, a passing
// one the positive proof.
func checkStores(prog *ir.Program, res *analysis.Result, val *valuability, d *Decision) {
	// Receiver type info is contour-level; collect, per function and
	// instruction, the union of receiver contours. Evidence is recorded
	// once per (candidate, store instruction), not per contour pair.
	type storeKey struct {
		k  analysis.FieldKey
		in *ir.Instr
	}
	noted := make(map[storeKey]bool)
	check := func(fn *ir.Func, in *ir.Instr, k analysis.FieldKey, failMsg string) {
		if !d.Inlined[k] || noted[storeKey{k, in}] {
			return
		}
		noted[storeKey{k, in}] = true
		if val.SafeStore(fn, in) {
			d.note(k, Step{
				What:   "store-convertible",
				Where:  in.Pos.String(),
				Detail: "store passes PassByValue and becomes a copy",
			})
			return
		}
		d.reject(k, because(ReasonUnsafeStore, failMsg, val.ExplainStore(fn, in)...))
	}
	for _, mc := range res.Mcs {
		fn := mc.Fn
		fn.Instrs(func(_ *ir.Block, in *ir.Instr) {
			switch in.Op {
			case ir.OpSetField:
				base := mc.Reg(in.Args[0])
				for _, oc := range base.TS.ObjList() {
					owner := fieldOwner(oc.Class, in.Field.Name)
					if owner == nil {
						continue
					}
					k := analysis.FieldKey{Class: owner, Name: in.Field.Name}
					check(fn, in, k,
						fmt.Sprintf("store at %s not convertible to a copy (value may be aliased or used later)", in.Pos))
				}
			case ir.OpArrSet:
				base := mc.Reg(in.Args[0])
				for _, ac := range base.TS.ArrList() {
					check(fn, in, arrKey(ac),
						fmt.Sprintf("element store at %s not convertible to a copy", in.Pos))
				}
			}
		})
	}
}

func fieldOwner(c *ir.Class, name string) *ir.Class {
	for _, f := range c.Fields {
		if f.Name == name {
			return f.Owner
		}
	}
	return nil
}

// rejectContainmentCycles drops candidates that would flatten a class into
// itself (directly or transitively).
func rejectContainmentCycles(res *analysis.Result, ocsByKey map[analysis.FieldKey][]*analysis.ObjContour, d *Decision) {
	// Edges: container class -> child class per candidate field.
	for changed := true; changed; {
		changed = false
		// child classes per candidate.
		type edge struct {
			key   analysis.FieldKey
			from  *ir.Class
			child *ir.Class
		}
		var edges []edge
		for k := range d.Inlined {
			if k.Array {
				continue // arrays are not classes; they cannot close a cycle
			}
			for _, oc := range ocsByKey[k] {
				st := oc.FieldState(k.Name)
				if st == nil {
					continue
				}
				for _, child := range st.TS.ObjList() {
					edges = append(edges, edge{k, k.Class, child.Class})
				}
			}
		}
		// DFS cycle detection over class containment.
		adj := make(map[*ir.Class][]edge)
		for _, e := range edges {
			adj[e.from] = append(adj[e.from], e)
		}
		var stack []*ir.Class
		onStack := make(map[*ir.Class]bool)
		visited := make(map[*ir.Class]bool)
		var dfs func(c *ir.Class) *analysis.FieldKey
		dfs = func(c *ir.Class) *analysis.FieldKey {
			visited[c] = true
			onStack[c] = true
			stack = append(stack, c)
			for _, e := range adj[c] {
				// Containment applies to the child's whole family: a
				// subclass instance stored in the field closes the cycle
				// too.
				for target := e.child; target != nil; target = target.Super {
					if onStack[target] {
						k := e.key
						return &k
					}
				}
				if !visited[e.child] {
					if bad := dfs(e.child); bad != nil {
						return bad
					}
				}
			}
			onStack[c] = false
			stack = stack[:len(stack)-1]
			return nil
		}
		classes := make([]*ir.Class, 0, len(adj))
		for c := range adj {
			classes = append(classes, c)
		}
		sort.Slice(classes, func(i, j int) bool { return classes[i].ID < classes[j].ID })
		for _, c := range classes {
			if visited[c] {
				continue
			}
			stack = stack[:0]
			clear(onStack)
			if bad := dfs(c); bad != nil {
				names := make([]string, 0, len(stack))
				for _, sc := range stack {
					names = append(names, sc.Name)
				}
				d.reject(*bad, because(ReasonContainmentCycle,
					"containment cycle (class would inline into itself)",
					Step{What: "containment-cycle", Where: bad.String(),
						Detail: "containment chain " + strings.Join(names, " -> ")}))
				changed = true
				break
			}
		}
	}
}

// candidateContentClasses maps class names to the candidates whose content
// may be of that class. When confusion cannot be attributed through tags
// (a fully saturated tag set), any candidate whose containee classes
// overlap the value's classes could be involved and must go.
func candidateContentClasses(res *analysis.Result, d *Decision) map[string][]analysis.FieldKey {
	out := make(map[string][]analysis.FieldKey)
	add := func(k analysis.FieldKey, st *analysis.VarState) {
		for _, cls := range st.TS.Classes() {
			out[cls] = append(out[cls], k)
		}
	}
	for _, oc := range res.Objs {
		for _, f := range oc.Class.Fields {
			k := analysis.FieldKey{Class: f.Owner, Name: f.Name}
			if d.Has(k) {
				add(k, &oc.Fields[f.Slot])
			}
		}
	}
	for _, ac := range res.Arrs {
		if k := arrKey(ac); d.Has(k) {
			add(k, &ac.Elem)
		}
	}
	return out
}

// pruneInconsistent removes candidates until every object value's
// representation is unambiguous, and opaque uses (builtins, mixed identity
// comparisons, dynamic dispatch on array interiors) are rep-free.
func pruneInconsistent(prog *ir.Program, res *analysis.Result, d *Decision) {
	has := func(k analysis.FieldKey) bool { return d.Inlined[k] }
	// budgetStep flags, on confusion-based rejections, that the analysis
	// ran out of contour budget — the split that would have kept the tags
	// apart never happened, so the confusion may be an artifact of the
	// MaxContours cap rather than true aliasing.
	var budgetStep []Step
	if res.Overflowed {
		budgetStep = []Step{{
			What: "contour-budget-exhausted",
			Detail: fmt.Sprintf("analysis hit MaxContours=%d and stopped splitting; tags from distinct contexts merged conservatively",
				res.Opts.MaxContours),
		}}
	}
	for round := 0; round < len(d.Initial)+2; round++ {
		removedAny := false
		byClass := candidateContentClasses(res, d)
		repable := repableContours(res, d)
		couldBeRep := func(ts *analysis.TypeSet) bool {
			for oc := range ts.Objs {
				if repable[oc] {
					return true
				}
			}
			return false
		}
		var confusedTS *analysis.TypeSet
		remove := func(rep analysis.Rep, tags *analysis.TagSet, code ReasonCode, reason string, ev Step) {
			victims := rep.Involved
			if len(victims) == 0 {
				victims = rep.Fields
			}
			if len(victims) == 0 {
				// Confusion without attribution: fall back to raw heads.
				heads, _, _ := tags.Heads()
				victims = make(map[analysis.FieldKey]bool)
				for _, h := range heads {
					victims[h] = true
				}
			}
			if len(victims) == 0 && confusedTS != nil {
				// Fully saturated tags: attribute by class overlap.
				victims = make(map[analysis.FieldKey]bool)
				for _, cls := range confusedTS.Classes() {
					for _, k := range byClass[cls] {
						victims[k] = true
					}
				}
			}
			keys := make([]analysis.FieldKey, 0, len(victims))
			for k := range victims {
				keys = append(keys, k)
			}
			sort.Slice(keys, func(i, j int) bool { return keys[i].String() < keys[j].String() })
			evidence := append([]Step{ev}, budgetStep...)
			for _, k := range keys {
				if d.Inlined[k] {
					d.reject(k, because(code, reason, evidence...))
					removedAny = true
				}
			}
		}
		checkValue := func(v *analysis.VarState, where string) {
			if !v.TS.HasObjects() || !couldBeRep(&v.TS) {
				return
			}
			confusedTS = &v.TS
			rep := res.RepsOf(&v.Tags, has)
			switch {
			case rep.Confused:
				remove(rep, &v.Tags, ReasonTagConfusion, "value with confused provenance at "+where,
					Step{What: "tag-confusion", Where: where,
						Detail: "value tags " + v.Tags.String() + " resolve to confusion"})
			case rep.Raw && len(rep.Fields) > 0:
				remove(rep, &v.Tags, ReasonRawOrInlined, "value may be original object or inlined state at "+where,
					Step{What: "raw-inlined-mix", Where: where,
						Detail: "value tags " + v.Tags.String() + " resolve to both a raw object and inlined state"})
			case len(rep.Fields) > 1:
				remove(rep, &v.Tags, ReasonMultipleFields, "value may come from several inlined fields at "+where,
					Step{What: "multi-field", Where: where,
						Detail: "value tags " + v.Tags.String() + " resolve to " + fieldNames(rep.Fields)})
			}
		}
		for _, mc := range res.Mcs {
			for i := range mc.Regs {
				checkValue(&mc.Regs[i], mc.Fn.FullName())
			}
			checkValue(&mc.Ret, mc.Fn.FullName()+" return")
		}
		for _, oc := range res.Objs {
			for i := range oc.Fields {
				checkValue(&oc.Fields[i], oc.Class.Name+" field")
			}
		}
		for _, ac := range res.Arrs {
			checkValue(&ac.Elem, "array element")
		}
		for i := range res.Globals {
			checkValue(&res.Globals[i], "global")
		}

		// Opaque uses.
		for _, mc := range res.Mcs {
			mc.Fn.Instrs(func(_ *ir.Block, in *ir.Instr) {
				switch in.Op {
				case ir.OpBuiltin:
					for _, a := range in.Args {
						v := mc.Reg(a)
						if !v.TS.HasObjects() || !couldBeRep(&v.TS) {
							continue
						}
						confusedTS = &v.TS
						rep := res.RepsOf(&v.Tags, has)
						if !rep.PureRaw() && (len(rep.Fields) > 0 || rep.Confused) {
							remove(rep, &v.Tags, ReasonEscapesBuiltin,
								"inlined value escapes to a builtin at "+in.Pos.String(),
								Step{What: "escapes-to-builtin", Where: in.Pos.String(),
									Detail: "builtins take raw references; an inlined rep cannot be handed to one"})
						}
					}
				case ir.OpBin:
					op := ir.BinOp(in.Aux)
					if op != ir.BinEq && op != ir.BinNe {
						return
					}
					x, y := mc.Reg(in.Args[0]), mc.Reg(in.Args[1])
					if !x.TS.HasObjects() && !y.TS.HasObjects() {
						return
					}
					confusedTS = &x.TS
					repX := res.RepsOf(&x.Tags, has)
					repY := res.RepsOf(&y.Tags, has)
					if len(repX.Fields) == 0 && len(repY.Fields) == 0 {
						return
					}
					// Identity is preserved only when both sides are reps
					// of the same single field, or one side can never be
					// an object.
					fx, okX := repX.Unique()
					fy, okY := repY.Unique()
					if okX && okY && fx == fy {
						return
					}
					if okX && !y.TS.HasObjects() {
						return
					}
					if okY && !x.TS.HasObjects() {
						return
					}
					repX.Add(repY)
					remove(repX, &x.Tags, ReasonIdentityCompare,
						"identity comparison mixes inlined and other values at "+in.Pos.String(),
						Step{What: "identity-comparison", Where: in.Pos.String(),
							Detail: "== / != on a value that may be an inlined rep does not preserve object identity"})
				case ir.OpCallMethod:
					// Dispatch on an array-interior rep must be statically
					// bound: require one tag and one target.
					recv := mc.Reg(in.Args[0])
					if !recv.TS.HasObjects() {
						return
					}
					confusedTS = &recv.TS
					rep := res.RepsOf(&recv.Tags, has)
					k, ok := rep.Unique()
					if !ok || !k.Array {
						return
					}
					if len(mc.Targets[in.ID]) > 1 || recv.Tags.Len() > 1 {
						remove(rep, &recv.Tags, ReasonPolyDispatch,
							"polymorphic dispatch on array-inlined value at "+in.Pos.String(),
							Step{What: "polymorphic-dispatch", Where: in.Pos.String(),
								Detail: "dispatch on an array-interior rep needs a single static target"})
					}
				}
			})
		}
		if !removedAny {
			return
		}
	}
}

func fieldNames(fields map[analysis.FieldKey]bool) string {
	names := make([]string, 0, len(fields))
	for k := range fields {
		names = append(names, k.String())
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}
