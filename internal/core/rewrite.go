package core

import (
	"fmt"
	"sort"
	"strings"

	"objinline/internal/analysis"
	"objinline/internal/ir"
)

// carrierKind classifies the runtime representation of a value once
// inlining decisions are fixed.
type carrierKind int

const (
	carrierRaw   carrierKind = iota // the original heap object
	carrierCont                     // a container object holding the inlined state
	carrierInter                    // an interior reference into an inlined array
)

// carrier describes one possible runtime representation of a value.
type carrier struct {
	kind  carrierKind
	ver   *ClassVersion // carrierCont: the runtime container class version
	av    *ArrVersion   // carrierInter: the array's inlined layout
	base  int           // carrierCont: absolute first slot; carrierInter: offset within element state
	path  string        // mangled field-name prefix, e.g. "lower_left$"
	child *ClassVersion // version of the represented (inlined) object
}

// rewriteErr reports which candidates must be rejected for the rewrite to
// become possible.
type rewriteErr struct {
	keys   map[analysis.FieldKey]bool
	reason string
}

func (e *rewriteErr) Error() string { return e.reason }

func errKeys(reason string, keys ...analysis.FieldKey) *rewriteErr {
	m := make(map[analysis.FieldKey]bool, len(keys))
	for _, k := range keys {
		m[k] = true
	}
	return &rewriteErr{keys: m, reason: reason}
}

// regRep is the resolved representation of one register in one contour.
type regRep struct {
	raw    bool
	conts  []carrier
	inters []carrier
}

func (r *regRep) isPlain() bool { return len(r.conts) == 0 && len(r.inters) == 0 }
func (r *regRep) hasReps() bool { return !r.isPlain() }
func (r *regRep) onlyConts() bool {
	return !r.raw && len(r.conts) > 0 && len(r.inters) == 0
}
func (r *regRep) onlyInters() bool {
	return !r.raw && len(r.inters) > 0 && len(r.conts) == 0
}

// transformer rewrites every contour's body under the current decision and
// version space.
type transformer struct {
	prog *ir.Program
	res  *analysis.Result
	d    *Decision
	vs   *versionSpace
	val  *valuability
	opts Options

	stackable map[*ir.Instr]bool // OpNewObject sites elided to cheap stack allocation
	// stackKeys records which inlined fields consume each stackable
	// site's objects — the provenance the payoff attribution joins
	// against runtime site profiles.
	stackKeys map[*ir.Instr][]analysis.FieldKey

	// repable marks object contours that may flow into a candidate field
	// or array — only those can ever be represented by a container. A
	// container contour outside this set is always raw, no matter how
	// confused its own provenance is.
	repable map[*analysis.ObjContour]bool

	tagMemo map[*analysis.Tag]*tagRes
	plans   map[*analysis.MethodContour]*bodyPlan

	// Materialization scratch state.
	pendingDispatch []dispatchReg
	deadVersions    []*ir.Class
}

type tagRes struct {
	raw      bool
	carriers []carrier
	err      *rewriteErr
}

func newTransformer(prog *ir.Program, res *analysis.Result, d *Decision, vs *versionSpace, val *valuability, opts Options) *transformer {
	t := &transformer{
		prog: prog, res: res, d: d, vs: vs, val: val, opts: opts,
		stackable: make(map[*ir.Instr]bool),
		stackKeys: make(map[*ir.Instr][]analysis.FieldKey),
		repable:   repableContours(res, d),
		tagMemo:   make(map[*analysis.Tag]*tagRes),
		plans:     make(map[*analysis.MethodContour]*bodyPlan),
	}
	t.findStackable()
	return t
}

// repableContours collects the object contours stored in candidate fields
// or candidate arrays (the only values whose representation changes).
func repableContours(res *analysis.Result, d *Decision) map[*analysis.ObjContour]bool {
	out := make(map[*analysis.ObjContour]bool)
	for _, oc := range res.Objs {
		for _, f := range oc.Class.Fields {
			k := analysis.FieldKey{Class: f.Owner, Name: f.Name}
			if !d.Has(k) {
				continue
			}
			for _, child := range oc.Fields[f.Slot].TS.ObjList() {
				out[child] = true
			}
		}
	}
	for _, ac := range res.Arrs {
		if !d.Has(arrKey(ac)) {
			continue
		}
		for _, child := range ac.Elem.TS.ObjList() {
			out[child] = true
		}
	}
	return out
}

// findStackable marks allocation sites whose objects are fully consumed by
// an inlined-field copy.
func (t *transformer) findStackable() {
	for _, mc := range t.res.Mcs {
		fn := mc.Fn
		fn.Instrs(func(_ *ir.Block, in *ir.Instr) {
			var keys []analysis.FieldKey
			switch in.Op {
			case ir.OpSetField:
				base := mc.Reg(in.Args[0])
				for _, oc := range base.TS.ObjList() {
					owner := fieldOwner(oc.Class, in.Field.Name)
					if owner == nil {
						continue
					}
					k := analysis.FieldKey{Class: owner, Name: in.Field.Name}
					if t.d.Has(k) {
						keys = appendKeyOnce(keys, k)
					}
				}
			case ir.OpArrSet:
				base := mc.Reg(in.Args[0])
				for _, ac := range base.TS.ArrList() {
					if k := arrKey(ac); t.d.Has(k) {
						keys = appendKeyOnce(keys, k)
					}
				}
			}
			if len(keys) == 0 {
				return
			}
			for _, site := range t.val.CollectRoots(fn, in) {
				t.stackable[site.Instr] = true
				for _, k := range keys {
					t.stackKeys[site.Instr] = appendKeyOnce(t.stackKeys[site.Instr], k)
				}
			}
		})
	}
}

// appendKeyOnce appends k unless already present; stackable sites see only
// a handful of keys, so the linear scan is fine.
func appendKeyOnce(keys []analysis.FieldKey, k analysis.FieldKey) []analysis.FieldKey {
	for _, have := range keys {
		if have == k {
			return keys
		}
	}
	return append(keys, k)
}

// stackProvenance flattens the stackable-site map into the exported
// provenance table, sorted by source position then class.
func (t *transformer) stackProvenance() []StackSite {
	out := make([]StackSite, 0, len(t.stackable))
	for in := range t.stackable {
		class := ""
		if in.Class != nil {
			class = in.Class.Name
		}
		fields := make([]string, 0, len(t.stackKeys[in]))
		for _, k := range t.stackKeys[in] {
			fields = append(fields, k.String())
		}
		sort.Strings(fields)
		out = append(out, StackSite{Pos: in.Pos.String(), Class: class, Fields: fields})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos != out[j].Pos {
			return out[i].Pos < out[j].Pos
		}
		return out[i].Class < out[j].Class
	})
	return out
}

// resolveTag computes the carriers of one tag.
func (t *transformer) resolveTag(tag *analysis.Tag, guard map[*analysis.Tag]bool) *tagRes {
	if r, ok := t.tagMemo[tag]; ok {
		return r
	}
	switch {
	case tag.IsNoField():
		r := &tagRes{raw: true}
		t.tagMemo[tag] = r
		return r
	case tag.IsTop():
		return &tagRes{err: errKeys("confused provenance")}
	}
	if guard[tag] {
		// Least fixpoint: the cycle contributes no carriers (see
		// analysis.RepsOf).
		return &tagRes{}
	}
	guard[tag] = true
	defer delete(guard, tag)

	key := tag.Head()
	var r tagRes
	if t.d.Has(key) {
		r = t.resolveInlinedTag(tag, key, guard)
	} else {
		// Not inlined: the value is whatever was stored; resolve the
		// content tags.
		var content *analysis.TagSet
		if ac := tag.HeadAC(); ac != nil {
			content = &ac.Elem.Tags
		} else if fs := tag.HeadOC().FieldState(tag.Field); fs != nil {
			content = &fs.Tags
		}
		if content == nil || content.Len() == 0 {
			r.raw = true // reads nil at run time
		} else {
			for _, ct := range content.List() {
				cr := t.resolveTag(ct, guard)
				if cr.err != nil {
					r.err = cr.err
					break
				}
				r.raw = r.raw || cr.raw
				r.carriers = append(r.carriers, cr.carriers...)
			}
		}
	}
	if r.err == nil {
		out := r
		t.tagMemo[tag] = &out
		return &out
	}
	return &r
}

// resolveInlinedTag handles tags whose head field is inlined: the value is
// a container rep; the base tag locates the container itself.
func (t *transformer) resolveInlinedTag(tag *analysis.Tag, key analysis.FieldKey, guard map[*analysis.Tag]bool) tagRes {
	var r tagRes
	if ac := tag.HeadAC(); ac != nil {
		av := t.vs.arrs[key]
		if av == nil {
			return tagRes{err: errKeys("array version missing", key)}
		}
		r.carriers = append(r.carriers, carrier{kind: carrierInter, av: av, base: 0, path: "", child: av.Elem})
		return r
	}
	oc := tag.HeadOC()
	ver := t.vs.versionOf(oc)
	si, ok := ver.Slots[tag.Field]
	if !ok || si.Plain {
		// Degraded empty-content candidate; reads nil.
		r.raw = true
		return r
	}
	var base *tagRes
	if !t.repable[oc] {
		// The container can never itself be inlined anywhere, so it is
		// necessarily raw — even when its own provenance tag saturated.
		base = &tagRes{raw: true}
	} else {
		base = t.resolveTag(tag.Base, guard)
		if base.err != nil {
			base.err.keys[key] = true
			return tagRes{err: base.err}
		}
	}
	if base.raw {
		r.carriers = append(r.carriers, carrier{
			kind: carrierCont, ver: ver, base: si.Base,
			path: tag.Field + "$", child: si.Child,
		})
	}
	for _, bc := range base.carriers {
		// The container is itself inlined somewhere: compose offsets.
		csi, ok := bc.child.Slots[tag.Field]
		if !ok || csi.Plain {
			return tagRes{err: errKeys("inconsistent nested layout for "+key.String(), key)}
		}
		nested := carrier{
			kind: bc.kind, ver: bc.ver, av: bc.av,
			base:  bc.base + csi.Base,
			path:  bc.path + tag.Field + "$",
			child: csi.Child,
		}
		r.carriers = append(r.carriers, nested)
	}
	return r
}

// repOf resolves a register's representation within a contour.
func (t *transformer) repOf(mc *analysis.MethodContour, reg ir.Reg) (*regRep, *rewriteErr) {
	st := mc.Reg(reg)
	return t.repOfState(st)
}

func (t *transformer) repOfState(st *analysis.VarState) (*regRep, *rewriteErr) {
	rep := &regRep{}
	if !st.TS.HasObjects() {
		// Arrays and primitives are always plain values; candidate array
		// *elements* appear as object-typed values, not here.
		rep.raw = true
		return rep, nil
	}
	if st.Tags.Len() == 0 {
		rep.raw = true
		return rep, nil
	}
	// A value none of whose possible objects can flow into a candidate is
	// necessarily raw: tags (even saturated ones) cannot make it a rep.
	anyRepable := false
	for oc := range st.TS.Objs {
		if t.repable[oc] {
			anyRepable = true
			break
		}
	}
	if !anyRepable {
		rep.raw = true
		return rep, nil
	}
	guard := make(map[*analysis.Tag]bool)
	for _, tag := range st.Tags.List() {
		r := t.resolveTag(tag, guard)
		if r.err != nil {
			if len(r.err.keys) == 0 {
				// Attribute to the raw heads so the retry loop shrinks.
				heads, _, _ := st.Tags.Heads()
				for _, h := range heads {
					if t.d.Has(h) {
						r.err.keys[h] = true
					}
				}
			}
			if len(r.err.keys) == 0 {
				// Fully saturated tags: attribute by class overlap, the
				// same fallback the decision uses.
				byClass := candidateContentClasses(t.res, t.d)
				for _, cls := range st.TS.Classes() {
					for _, k := range byClass[cls] {
						r.err.keys[k] = true
					}
				}
			}
			return nil, r.err
		}
		rep.raw = rep.raw || r.raw
		for _, c := range r.carriers {
			switch c.kind {
			case carrierCont:
				rep.conts = append(rep.conts, c)
			case carrierInter:
				rep.inters = append(rep.inters, c)
			}
		}
	}
	if err := rep.validate(); err != nil {
		return nil, err
	}
	return rep, nil
}

// validate enforces the representation-consistency rules a rewrite needs.
func (r *regRep) validate() *rewriteErr {
	involved := func() []analysis.FieldKey {
		var keys []analysis.FieldKey
		for _, c := range append(append([]carrier(nil), r.conts...), r.inters...) {
			keys = append(keys, carrierKeyOf(c))
		}
		return keys
	}
	if r.raw && (len(r.conts) > 0 || len(r.inters) > 0) {
		return errKeys("value may be raw or inlined", involved()...)
	}
	if len(r.conts) > 0 && len(r.inters) > 0 {
		return errKeys("value mixes container and array representations", involved()...)
	}
	if len(r.conts) > 1 {
		p := r.conts[0].path
		for _, c := range r.conts[1:] {
			if c.path != p {
				return errKeys("value reachable via different inlined paths", involved()...)
			}
		}
	}
	if len(r.inters) > 1 {
		base, child := r.inters[0].base, r.inters[0].child
		for _, c := range r.inters[1:] {
			if c.base != base || c.child != child {
				return errKeys("interior references disagree on layout", involved()...)
			}
		}
	}
	return nil
}

// carrierKeyOf recovers the candidate key a carrier belongs to (the last
// path segment names the field; the version identifies the class).
func carrierKeyOf(c carrier) analysis.FieldKey {
	if c.kind == carrierInter && c.path == "" {
		return c.av.Key
	}
	// Trim the trailing '$', take the last segment.
	p := strings.TrimSuffix(c.path, "$")
	if i := strings.LastIndex(p, "$"); i >= 0 {
		p = p[i+1:]
	}
	var owner *ir.Class
	if c.kind == carrierCont {
		owner = fieldOwner(c.ver.Orig, rootFieldName(c.path))
		if owner == nil {
			owner = c.ver.Orig
		}
		return analysis.FieldKey{Class: owner, Name: rootFieldName(c.path)}
	}
	return c.av.Key
}

// rootFieldName extracts the first path segment ("a$b$" -> "a").
func rootFieldName(path string) string {
	p := strings.TrimSuffix(path, "$")
	if i := strings.Index(p, "$"); i >= 0 {
		return p[:i]
	}
	return p
}

// bodyPlan is a rewritten function body for one contour, before call
// targets are resolved against the grouping.
type bodyPlan struct {
	mc      *analysis.MethodContour
	blocks  [][]*ir.Instr
	numRegs int
	sig     string
	// callOrig maps rewritten call instructions to the original
	// instruction ID (the key into mc.Callees).
	callOrig map[*ir.Instr]int
	// dynRep marks dispatch sites whose receiver is an inlined rep (must
	// resolve to a single clone).
	dynRep map[*ir.Instr][]analysis.FieldKey
	// selfVersions are the class versions of the receiver (methods only).
	selfVersions []*ClassVersion
}

// plan returns (building and caching) the rewritten body of a contour.
func (t *transformer) plan(mc *analysis.MethodContour) (*bodyPlan, *rewriteErr) {
	if p, ok := t.plans[mc]; ok {
		return p, nil
	}
	p, err := t.buildPlan(mc)
	if err != nil {
		return nil, err
	}
	t.plans[mc] = p
	return p, nil
}

func (t *transformer) buildPlan(mc *analysis.MethodContour) (*bodyPlan, *rewriteErr) {
	fn := mc.Fn
	p := &bodyPlan{
		mc:       mc,
		numRegs:  fn.NumRegs,
		callOrig: make(map[*ir.Instr]int),
		dynRep:   make(map[*ir.Instr][]analysis.FieldKey),
	}
	if fn.Class != nil {
		for _, oc := range mc.Reg(0).TS.ObjList() {
			v := t.vs.versionOf(oc)
			found := false
			for _, sv := range p.selfVersions {
				if sv == v {
					found = true
				}
			}
			if !found {
				p.selfVersions = append(p.selfVersions, v)
			}
		}
	}
	newReg := func() ir.Reg {
		r := ir.Reg(p.numRegs)
		p.numRegs++
		return r
	}
	var sig strings.Builder
	for _, b := range fn.Blocks {
		var out []*ir.Instr
		emit := func(in *ir.Instr) *ir.Instr {
			out = append(out, in)
			return in
		}
		for _, in := range b.Instrs {
			if err := t.rewriteInstr(mc, in, emit, newReg, p); err != nil {
				return nil, err
			}
		}
		p.blocks = append(p.blocks, out)
		for _, in := range out {
			sigInstr(&sig, in)
		}
	}
	// Self versions participate in the signature (clones of different
	// receiver versions must not merge even with identical bodies, since
	// dispatch registration is per version).
	for _, sv := range p.selfVersions {
		sig.WriteString("self:" + sv.New.Name + "\n")
	}
	p.sig = sig.String()
	return p, nil
}

// sigInstr writes a canonical encoding of one rewritten instruction into
// the grouping signature. Unlike Instr.String, it captures the *complete*
// identity of field operands (owner class, slot, synthetic/interior flag):
// a raw access `Leaf.f0@0` and an interior-relative access `.f0@+0` print
// alike but address memory entirely differently, and merging their clones
// would hand one representation's code the other's values.
func sigInstr(b *strings.Builder, in *ir.Instr) {
	fmt.Fprintf(b, "%d %d", int(in.Op), in.Dst)
	for _, a := range in.Args {
		fmt.Fprintf(b, " %d", a)
	}
	if f := in.Field; f != nil {
		owner := "-"
		if f.Owner != nil {
			owner = f.Owner.Name
		}
		fmt.Fprintf(b, " f=%s.%s@%d~%v", owner, f.Name, f.Slot, f.Synthetic)
	}
	if in.Class != nil {
		fmt.Fprintf(b, " c=%s", in.Class.Name)
	}
	if in.Callee != nil {
		fmt.Fprintf(b, " t=%d", in.Callee.ID)
	}
	if in.Method != "" {
		fmt.Fprintf(b, " m=%s", in.Method)
	}
	fmt.Fprintf(b, " x=%d/%g/%q/%d/%d\n", in.Aux, in.F, in.S, in.Target, in.Else)
}

// rewriteInstr translates one instruction, appending the result(s) via
// emit.
func (t *transformer) rewriteInstr(mc *analysis.MethodContour, in *ir.Instr, emit func(*ir.Instr) *ir.Instr, newReg func() ir.Reg, p *bodyPlan) *rewriteErr {
	switch in.Op {
	case ir.OpGetField:
		return t.rewriteGetField(mc, in, emit)
	case ir.OpSetField:
		return t.rewriteSetField(mc, in, emit, newReg)
	case ir.OpArrGet:
		return t.rewriteArrGet(mc, in, emit)
	case ir.OpArrSet:
		return t.rewriteArrSet(mc, in, emit, newReg)
	case ir.OpNewObject:
		oc := mc.NewObjs[in.ID]
		cp := in.Clone()
		if oc != nil {
			cp.Class = t.vs.versionOf(oc).New
		}
		if t.stackable[in] {
			cp.Aux = 1 // cheap stack/arena allocation
		}
		emit(cp)
		return nil
	case ir.OpNewArray:
		ac := mc.NewArrs[in.ID]
		if ac != nil {
			if av := t.vs.arrs[arrKey(ac)]; av != nil {
				cp := in.Clone()
				cp.Op = ir.OpNewArrayInl
				cp.Class = av.Elem.New
				if av.Layout == LayoutParallel {
					cp.Aux = 1
				} else {
					cp.Aux = 0
				}
				emit(cp)
				return nil
			}
		}
		emit(in.Clone())
		return nil
	case ir.OpCall, ir.OpCallStatic, ir.OpCallMethod:
		cp := in.Clone()
		p.callOrig[cp] = in.ID
		if in.Op == ir.OpCallMethod {
			rep, err := t.repOf(mc, in.Args[0])
			if err != nil {
				return err
			}
			if rep.hasReps() {
				var keys []analysis.FieldKey
				for _, c := range append(append([]carrier(nil), rep.conts...), rep.inters...) {
					keys = append(keys, carrierKeyOf(c))
				}
				p.dynRep[cp] = keys
			}
		}
		emit(cp)
		return nil
	default:
		emit(in.Clone())
		return nil
	}
}

// accessTarget computes how to address original field `name` through the
// receiver register, producing either a bound/named field for a direct
// access or the information that the field is inlined (the caller then
// elides or expands).
type accessTarget struct {
	// inlined: the receiver's field is itself inlined; reads become moves
	// and writes become copies.
	inlined bool
	// child is the inlined containee's version (for copies); dstBase and
	// interior describe the target location.
	child *ClassVersion

	// field is the operand for a direct single-slot access.
	field *ir.Field

	// For inlined targets: how to address slot i of the containee.
	slotField func(i int) *ir.Field
}

// fieldAccess resolves a field access on a receiver.
func (t *transformer) fieldAccess(mc *analysis.MethodContour, recvReg ir.Reg, name string) (*accessTarget, *rewriteErr) {
	rep, err := t.repOf(mc, recvReg)
	if err != nil {
		return nil, err
	}
	st := mc.Reg(recvReg)

	switch {
	case rep.isPlain() || !st.TS.HasObjects():
		// Raw object receiver (or unreached). Determine candidate-ness
		// across receiver contours.
		ocs := st.TS.ObjList()
		if len(ocs) == 0 {
			// Unreached: keep a name-only access.
			return &accessTarget{field: &ir.Field{Name: name, Slot: -1}}, nil
		}
		inlinedAny, plainAny := false, false
		var child *ClassVersion
		var bases []int
		var vers []*ClassVersion
		for _, oc := range ocs {
			owner := fieldOwner(oc.Class, name)
			if owner == nil {
				continue
			}
			k := analysis.FieldKey{Class: owner, Name: name}
			ver := t.vs.versionOf(oc)
			si, ok := ver.Slots[name]
			if !ok {
				continue
			}
			if t.d.Has(k) && !si.Plain {
				inlinedAny = true
				if child == nil {
					child = si.Child
				} else if child != si.Child {
					return nil, errKeys("receivers disagree on containee layout for "+name, k)
				}
				bases = append(bases, si.Base)
				vers = append(vers, ver)
			} else {
				plainAny = true
				bases = append(bases, si.NewSlot)
				vers = append(vers, ver)
			}
		}
		if inlinedAny && plainAny {
			// Same name inlined for some receivers, plain for others.
			var keys []analysis.FieldKey
			for _, oc := range ocs {
				if owner := fieldOwner(oc.Class, name); owner != nil {
					keys = append(keys, analysis.FieldKey{Class: owner, Name: name})
				}
			}
			return nil, errKeys("field "+name+" inlined for some receivers only", keys...)
		}
		if !inlinedAny {
			return &accessTarget{field: t.plainField(vers, bases, name)}, nil
		}
		// Inlined on a raw container object.
		at := &accessTarget{inlined: true, child: child}
		base := bases[0]
		uniform := true
		for _, b := range bases {
			if b != base {
				uniform = false
			}
		}
		ver := vers[0]
		at.slotField = func(i int) *ir.Field {
			cf := child.New.Fields[i]
			if uniform && len(vers) >= 1 {
				if f := fieldAt(ver.New, base+i); f != nil && sameOwnerAll(vers, base+i, name+"$"+cf.Name) {
					return f
				}
			}
			return &ir.Field{Name: name + "$" + cf.Name, Slot: -1}
		}
		return at, nil

	case rep.onlyConts():
		// The receiver is itself a container rep: address through the
		// outer container.
		c0 := rep.conts[0]
		si, ok := c0.child.Slots[name]
		if !ok {
			return nil, errKeys("containee version lacks field " + name)
		}
		if !si.Plain {
			// Nested inlined field.
			for _, c := range rep.conts[1:] {
				si2, ok := c.child.Slots[name]
				if !ok || si2.Plain || si2.Child != si.Child {
					return nil, errKeys("nested layouts disagree for "+name, carrierKeyOf(c))
				}
			}
			return &accessTarget{inlined: true, child: si.Child, slotField: t.contSlotFn(rep.conts, name, si)}, nil
		}
		// Plain slot of the containee.
		return &accessTarget{field: t.contField(rep.conts, name, si)}, nil

	case rep.onlyInters():
		c0 := rep.inters[0]
		si, ok := c0.child.Slots[name]
		if !ok {
			return nil, errKeys("array element version lacks field " + name)
		}
		if !si.Plain {
			return &accessTarget{inlined: true, child: si.Child, slotField: func(i int) *ir.Field {
				cf := si.Child.New.Fields[i]
				return &ir.Field{Name: c0.path + name + "$" + cf.Name, Slot: c0.base + si.Base + i, Synthetic: true}
			}}, nil
		}
		return &accessTarget{field: &ir.Field{Name: c0.path + name, Slot: c0.base + si.NewSlot, Synthetic: true}}, nil
	}
	return nil, errKeys("inconsistent receiver representation for field " + name)
}

// plainField binds a plain access: when all receiver versions agree on the
// slot, bind to a concrete field; otherwise fall back to a by-name access
// (correct in every version because plain fields keep their source names).
func (t *transformer) plainField(vers []*ClassVersion, slots []int, name string) *ir.Field {
	if len(vers) == 0 {
		return &ir.Field{Name: name, Slot: -1}
	}
	uniform := true
	for _, s := range slots {
		if s != slots[0] {
			uniform = false
		}
	}
	if uniform {
		if f := fieldAt(vers[0].New, slots[0]); f != nil {
			return f
		}
	}
	return &ir.Field{Name: name, Slot: -1}
}

// contField addresses a plain slot of a containee through its container.
func (t *transformer) contField(conts []carrier, name string, si SlotInfo) *ir.Field {
	abs := conts[0].base + si.NewSlot
	uniform := true
	for _, c := range conts[1:] {
		si2, ok := c.child.Slots[name]
		if !ok || !si2.Plain || c.base+si2.NewSlot != abs {
			uniform = false
		}
	}
	if uniform && len(conts) >= 1 {
		sameVer := true
		for _, c := range conts[1:] {
			if c.ver != conts[0].ver {
				sameVer = false
			}
		}
		if sameVer {
			if f := fieldAt(conts[0].ver.New, abs); f != nil {
				return f
			}
		}
	}
	// Mangled-name fallback: the name resolves per version at run time.
	return &ir.Field{Name: conts[0].path + name, Slot: -1}
}

func (t *transformer) contSlotFn(conts []carrier, name string, si SlotInfo) func(int) *ir.Field {
	return func(i int) *ir.Field {
		cf := si.Child.New.Fields[i]
		mangled := conts[0].path + name + "$" + cf.Name
		if len(conts) == 1 {
			if f := fieldAt(conts[0].ver.New, conts[0].base+si.Base+i); f != nil {
				return f
			}
		}
		return &ir.Field{Name: mangled, Slot: -1}
	}
}

// fieldAt returns the field at a slot of a class, or nil.
func fieldAt(c *ir.Class, slot int) *ir.Field {
	if slot < 0 || slot >= len(c.Fields) {
		return nil
	}
	return c.Fields[slot]
}

// sameOwnerAll reports whether every version has the given mangled name at
// the same slot.
func sameOwnerAll(vers []*ClassVersion, slot int, name string) bool {
	for _, v := range vers {
		f := fieldAt(v.New, slot)
		if f == nil || f.Name != name {
			return false
		}
	}
	return true
}

func (t *transformer) rewriteGetField(mc *analysis.MethodContour, in *ir.Instr, emit func(*ir.Instr) *ir.Instr) *rewriteErr {
	at, err := t.fieldAccess(mc, in.Args[0], in.Field.Name)
	if err != nil {
		return err
	}
	if at.inlined {
		// The access is elided: the loaded value is represented by the
		// receiver itself (§5.3, Figure 12).
		emit(&ir.Instr{Op: ir.OpMove, Dst: in.Dst, Args: []ir.Reg{in.Args[0]}, Pos: in.Pos})
		return nil
	}
	cp := in.Clone()
	cp.Field = at.field
	emit(cp)
	return nil
}

func (t *transformer) rewriteSetField(mc *analysis.MethodContour, in *ir.Instr, emit func(*ir.Instr) *ir.Instr, newReg func() ir.Reg) *rewriteErr {
	at, err := t.fieldAccess(mc, in.Args[0], in.Field.Name)
	if err != nil {
		return err
	}
	if !at.inlined {
		cp := in.Clone()
		cp.Field = at.field
		emit(cp)
		return nil
	}
	// Assignment specialization (§5.4): expand into per-slot copies.
	return t.emitCopy(mc, in, in.Args[0], in.Args[1], at, emit, newReg)
}

// emitCopy copies the value's state into the inlined target location.
func (t *transformer) emitCopy(mc *analysis.MethodContour, in *ir.Instr, dstReg, srcReg ir.Reg, at *accessTarget, emit func(*ir.Instr) *ir.Instr, newReg func() ir.Reg) *rewriteErr {
	srcRep, err := t.repOf(mc, srcReg)
	if err != nil {
		return err
	}
	if srcRep.hasReps() {
		return errKeys("copied value is itself an inlined rep (aliasing unsafe)",
			analysis.FieldKey{Class: nil, Name: in.Field.Name})
	}
	// Source slot layout: the stored object's version must match the
	// containee version (ensured by the shape interning).
	st := mc.Reg(srcReg)
	var srcVer *ClassVersion
	for _, oc := range st.TS.ObjList() {
		v := t.vs.versionOf(oc)
		if srcVer == nil {
			srcVer = v
		} else if srcVer != v {
			return errKeys("stored values disagree on layout")
		}
	}
	if srcVer == nil {
		// Unreached store.
		emit(in.Clone())
		return nil
	}
	if srcVer != at.child {
		return errKeys(fmt.Sprintf("stored version %s != containee version %s", srcVer, at.child))
	}
	n := len(at.child.New.Fields)
	for i := 0; i < n; i++ {
		tmp := newReg()
		emit(&ir.Instr{Op: ir.OpGetField, Dst: tmp, Args: []ir.Reg{srcReg}, Field: srcVer.New.Fields[i], Pos: in.Pos})
		emit(&ir.Instr{Op: ir.OpSetField, Dst: ir.NoReg, Args: []ir.Reg{dstReg, tmp}, Field: at.slotField(i), Pos: in.Pos})
	}
	return nil
}

func (t *transformer) rewriteArrGet(mc *analysis.MethodContour, in *ir.Instr, emit func(*ir.Instr) *ir.Instr) *rewriteErr {
	inl, err := t.arrInlined(mc, in.Args[0])
	if err != nil {
		return err
	}
	if inl == nil {
		emit(in.Clone())
		return nil
	}
	cp := in.Clone()
	cp.Op = ir.OpArrInterior
	emit(cp)
	return nil
}

func (t *transformer) rewriteArrSet(mc *analysis.MethodContour, in *ir.Instr, emit func(*ir.Instr) *ir.Instr, newReg func() ir.Reg) *rewriteErr {
	inl, err := t.arrInlined(mc, in.Args[0])
	if err != nil {
		return err
	}
	if inl == nil {
		emit(in.Clone())
		return nil
	}
	// Interior pointer, then per-slot copies (§5.3, Figure 13).
	itReg := newReg()
	emit(&ir.Instr{Op: ir.OpArrInterior, Dst: itReg, Args: []ir.Reg{in.Args[0], in.Args[1]}, Pos: in.Pos})
	at := &accessTarget{inlined: true, child: inl.Elem, slotField: func(i int) *ir.Field {
		cf := inl.Elem.New.Fields[i]
		return &ir.Field{Name: cf.Name, Slot: i, Synthetic: true}
	}}
	fake := &ir.Instr{Op: ir.OpSetField, Field: &ir.Field{Name: "[]"}, Pos: in.Pos}
	return t.emitCopy(mc, fake, itReg, in.Args[2], at, emit, newReg)
}

// arrInlined reports the array version when the register's arrays are
// inlined; mixing inlined and plain arrays is a rewrite conflict.
func (t *transformer) arrInlined(mc *analysis.MethodContour, reg ir.Reg) (*ArrVersion, *rewriteErr) {
	st := mc.Reg(reg)
	var av *ArrVersion
	plain := false
	for _, ac := range st.TS.ArrList() {
		k := arrKey(ac)
		if t.d.Has(k) {
			v := t.vs.arrs[k]
			if av == nil {
				av = v
			} else if av != v {
				return nil, errKeys("arrays disagree on inlined layout", k, av.Key)
			}
		} else {
			plain = true
		}
	}
	if av != nil && plain {
		return nil, errKeys("value mixes inlined and plain arrays", av.Key)
	}
	return av, nil
}

// sortKeys renders a deterministic key list for error messages.
func sortKeys(m map[analysis.FieldKey]bool) []analysis.FieldKey {
	out := make([]analysis.FieldKey, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}
