package core

// White-box tests for the assignment-specialization predicates (§4.2):
// ReadOnlyParam, FreshReturn, ParamByValue, and the CFG-aware
// use-after-handoff check, exercised directly on small programs.

import (
	"testing"

	"objinline/internal/analysis"
	"objinline/internal/ir"
	"objinline/internal/lang/parser"
	"objinline/internal/lang/sem"
	"objinline/internal/lower"
)

func valFor(t *testing.T, src string) (*ir.Program, *valuability) {
	t.Helper()
	tree, err := parser.Parse("t.icc", src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := sem.Check(tree)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := lower.Lower(info)
	if err != nil {
		t.Fatal(err)
	}
	res := analysis.Analyze(prog, analysis.Options{Tags: true})
	return prog, newValuability(prog, res)
}

func TestReadOnlyParamPredicate(t *testing.T) {
	prog, v := valFor(t, `
var g;
class C { x; def init(x) { self.x = x; } }
func reads(p) { return p.x; }
func stores(p) { g = p; return 0; }
func returns(p) { return p; }
func forwardsToReader(p) { return reads(p); }
func forwardsToStorer(p) { return stores(p); }
func main() {
  var c = new C(1);
  reads(c); stores(c); returns(c); forwardsToReader(c); forwardsToStorer(c);
  print(g == c);
}
`)
	cases := map[string]bool{
		"reads":            true,
		"stores":           false,
		"returns":          false,
		"forwardsToReader": true,
		"forwardsToStorer": false,
	}
	for name, want := range cases {
		fn := prog.FuncNamed(name)
		got := v.readOnly[paramKey{fn, fn.ParamReg(0)}]
		if got != want {
			t.Errorf("readOnly(%s, p) = %v, want %v", name, got, want)
		}
	}
}

func TestFreshReturnPredicate(t *testing.T) {
	prog, v := valFor(t, `
var keep;
class C { x; def init(x) { self.x = x; } }
func fresh() { return new C(1); }
func freshVia() { return fresh(); }
func leaked() { var c = new C(2); keep = c; return c; }
func passthrough(p) { return p; }
func passesRetained(p) { return p; }
func main() {
  // passthrough's only caller hands it a by-value argument, so its
  // result IS fresh (the CallByValue chain); passesRetained receives an
  // aliased value and is not.
  print(fresh().x, freshVia().x, leaked().x, passthrough(new C(3)).x);
  var kept = new C(4);
  keep = kept;
  print(passesRetained(kept).x);
}
`)
	cases := map[string]bool{
		"fresh":          true,
		"freshVia":       true,
		"leaked":         false,
		"passthrough":    true,
		"passesRetained": false,
	}
	for name, want := range cases {
		if got := v.FreshReturn(prog.FuncNamed(name)); got != want {
			t.Errorf("FreshReturn(%s) = %v, want %v", name, got, want)
		}
	}
}

// findStore returns the first SetField instruction of fn.
func findStore(fn *ir.Func) *ir.Instr {
	var out *ir.Instr
	fn.Instrs(func(_ *ir.Block, in *ir.Instr) {
		if in.Op == ir.OpSetField && out == nil {
			out = in
		}
	})
	return out
}

func TestSafeStoreScenarios(t *testing.T) {
	cases := []struct {
		name string
		src  string
		fn   string
		want bool
	}{
		{
			"fresh local store",
			`class C { x; def init(x){ self.x = x; } }
			 class H { p; def init(){ } }
			 func put(h) { h.p = new C(1); }
			 func main() { var h = new H(); put(h); print(h.p.x); }`,
			"put", true,
		},
		{
			"store of globally kept value",
			`var g;
			 class C { x; def init(x){ self.x = x; } }
			 class H { p; def init(){ } }
			 func put(h) { var c = new C(1); g = c; h.p = c; }
			 func main() { var h = new H(); put(h); print(h.p.x); }`,
			"put", false,
		},
		{
			"use after store",
			`class C { x; def init(x){ self.x = x; } }
			 class H { p; def init(){ } }
			 func put(h) { var c = new C(1); h.p = c; c.x = 2; }
			 func main() { var h = new H(); put(h); print(h.p.x); }`,
			"put", false,
		},
		{
			"loop-carried fresh store",
			`class C { x; def init(x){ self.x = x; } }
			 class H { p; def init(){ } }
			 func put(h, n) { for (var i = 0; i < n; i = i + 1) { h.p = new C(i); } }
			 func main() { var h = new H(); put(h, 3); print(h.p.x); }`,
			"put", true,
		},
		{
			"read before store ok",
			`class C { x; def init(x){ self.x = x; } }
			 class H { p; def init(){ } }
			 func put(h) { var c = new C(1); print(c.x); h.p = c; }
			 func main() { var h = new H(); put(h); print(h.p.x); }`,
			"put", true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			prog, v := valFor(t, tc.src)
			fn := prog.FuncNamed(tc.fn)
			store := findStore(fn)
			if store == nil {
				t.Fatal("no store found")
			}
			if got := v.SafeStore(fn, store); got != tc.want {
				t.Errorf("SafeStore = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestCollectRootsFindsAllocations(t *testing.T) {
	prog, v := valFor(t, `
class C { x; def init(x){ self.x = x; } }
class H { p; def init(p){ self.p = p; } }
func main() {
  var h = new H(new C(1));
  print(h.p.x);
}
`)
	init := prog.ClassNamed("H").Methods["init"]
	store := findStore(init)
	roots := v.CollectRoots(init, store)
	if len(roots) != 1 {
		t.Fatalf("roots = %d, want 1", len(roots))
	}
	if roots[0].Fn != prog.Main || roots[0].Instr.Op != ir.OpNewObject {
		t.Errorf("root = %s in %s", roots[0].Instr, roots[0].Fn.FullName())
	}
}

func TestDoubleStoreOfOneVariableRejected(t *testing.T) {
	// Two store sites for the same variable are conservatively rejected
	// ("no other storing use", flow-insensitive), even though each
	// iteration's value is fresh — the single-store-in-loop form is the
	// one that inlines (TestSafeStoreScenarios/loop-carried fresh store).
	prog, v := valFor(t, `
class C { x; def init(x){ self.x = x; } }
class H { p; def init(){ } }
func put(h, n) {
  var c = new C(0);
  h.p = c;
  for (var i = 0; i < n; i = i + 1) {
    c = new C(i);
    h.p = c;
  }
}
func main() { var h = new H(); put(h, 2); print(h.p.x); }
`)
	fn := prog.FuncNamed("put")
	stores := 0
	fn.Instrs(func(_ *ir.Block, in *ir.Instr) {
		if in.Op == ir.OpSetField {
			stores++
			if v.SafeStore(fn, in) {
				t.Errorf("store %s accepted despite a second storing site", in)
			}
		}
	})
	if stores != 2 {
		t.Fatalf("stores = %d", stores)
	}
}
