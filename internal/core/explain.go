package core

import (
	"fmt"

	"objinline/internal/ir"
)

// The assignment-specialization evidence walker: a read-only re-traversal
// of the PassByValue conditions that SafeStore checked, collecting *why*
// the check failed as structured Steps instead of a bare bool. It runs
// only on the diagnostic path (after SafeStore already said no, or to
// record the positive evidence of an accepted store), so the hot decision
// loop pays nothing for it.

// explainMaxDepth bounds how far the walker follows parameters into their
// call sites and factory returns; beyond it the chain ends with a summary
// step. Three levels names the store, the offending call site, and the
// offending use there — enough to act on without unbounded recursion.
const explainMaxDepth = 3

// ExplainStore reconstructs the evidence chain for a store's PassByValue
// check. For a failing store the chain ends at the exact use, origin, or
// call site that killed the conversion; for a passing store it is a short
// positive record.
func (v *valuability) ExplainStore(fn *ir.Func, store *ir.Instr) []Step {
	var valReg ir.Reg
	switch store.Op {
	case ir.OpSetField:
		valReg = store.Args[1]
	case ir.OpArrSet:
		valReg = store.Args[2]
	default:
		return []Step{{What: "not-a-store", Where: store.Pos.String()}}
	}
	if v.SafeStore(fn, store) {
		return []Step{{
			What:   "store-convertible",
			Where:  store.Pos.String(),
			Detail: "stored value passes PassByValue: fresh origin, never stored elsewhere, never used after the copy",
		}}
	}
	steps := []Step{{
		What:   "pass-by-value-failed",
		Where:  store.Pos.String(),
		Detail: fmt.Sprintf("store in %s cannot be converted to a copy", fn.FullName()),
	}}
	return append(steps, v.explainHandoff(fn, valReg, store, explainMaxDepth)...)
}

// explainHandoff mirrors safeHandoff's three condition groups (origins,
// parameter by-value, uses) and reports the violated ones.
func (v *valuability) explainHandoff(fn *ir.Func, reg ir.Reg, handoff *ir.Instr, depth int) []Step {
	if depth <= 0 {
		return []Step{{What: "chain-truncated", Detail: "evidence chain exceeds the explanation depth limit"}}
	}
	chain := v.defChain(fn, reg)
	if chain == nil {
		return []Step{{
			What:   "untracked-flow",
			Where:  fn.FullName(),
			Detail: fmt.Sprintf("r%d's definitions are too tangled to track", reg),
		}}
	}
	var steps []Step

	// Origin check: every root definition must produce a fresh value.
	for _, def := range chain.roots {
		switch def.Op {
		case ir.OpNewObject, ir.OpConstNil:
			// By-value-producible.
		case ir.OpCall:
			if !v.FreshReturn(def.Callee) {
				steps = append(steps, Step{
					What:   "factory-not-fresh",
					Where:  def.Pos.String(),
					Detail: fmt.Sprintf("value returned by %s, whose returns are not all fresh local objects", def.Callee.FullName()),
				})
				steps = append(steps, v.explainFreshReturn(def.Callee, depth-1)...)
			}
		default:
			steps = append(steps, Step{
				What:   "origin-not-fresh",
				Where:  def.Pos.String(),
				Detail: fmt.Sprintf("value defined by %s, not a local allocation", def.Op),
			})
		}
	}

	// Parameter origins: CallByValue must hold at every call site.
	for _, pr := range chain.params {
		if v.ParamByValue(fn, pr) {
			continue
		}
		steps = append(steps, Step{
			What:   "param-not-call-by-value",
			Where:  fn.FullName(),
			Detail: fmt.Sprintf("parameter r%d cannot be passed by value from every call site", pr),
		})
		steps = append(steps, v.explainParam(fn, pr, depth-1)...)
	}

	// Use checks: no other use may store the value (DontStore) or run
	// after the handoff.
	fn.Instrs(func(_ *ir.Block, in *ir.Instr) {
		if in == handoff || !usesAny(in, chain.regs) || chain.chainDefs[in] {
			return
		}
		if v.useStores(fn, in, chain.regs) {
			steps = append(steps, Step{
				What:   "stored-elsewhere",
				Where:  in.Pos.String(),
				Detail: fmt.Sprintf("value also escapes through %s, so the copy would not capture all aliases", in.Op),
			})
			return
		}
		for _, a := range in.Args {
			if chain.regs[a] && v.liveUseAfter(fn, handoff, in, a) {
				steps = append(steps, Step{
					What:   "used-after-handoff",
					Where:  in.Pos.String(),
					Detail: fmt.Sprintf("%s reads the value after the store, where the copy would expose stale state", in.Op),
				})
				return
			}
		}
	})
	if len(steps) == 0 {
		// safeHandoff said no but every local condition re-checks clean:
		// only possible if the caller asked about a passing handoff.
		steps = append(steps, Step{What: "conditions-hold", Where: fn.FullName()})
	}
	return steps
}

// explainFreshReturn finds the first return of fn that fails the fresh-
// value conditions and explains it.
func (v *valuability) explainFreshReturn(fn *ir.Func, depth int) []Step {
	if depth <= 0 {
		return nil
	}
	var steps []Step
	fn.Instrs(func(_ *ir.Block, in *ir.Instr) {
		if steps != nil || in.Op != ir.OpReturn || len(in.Args) == 0 {
			return
		}
		if !v.safeHandoff(fn, in.Args[0], in, true) {
			steps = append([]Step{{
				What:  "return-not-fresh",
				Where: in.Pos.String(),
			}}, v.explainHandoff(fn, in.Args[0], in, depth)...)
		}
	})
	return steps
}

// explainParam finds the first call site where fn's parameter cannot be
// handed off by value and explains that site.
func (v *valuability) explainParam(fn *ir.Func, reg ir.Reg, depth int) []Step {
	if depth <= 0 {
		return nil
	}
	for _, site := range v.callers[fn] {
		argIdx := argIndexFor(site.in, fn, reg)
		if argIdx < 0 || argIdx >= len(site.in.Args) {
			return []Step{{
				What:   "arg-untracked",
				Where:  site.in.Pos.String(),
				Detail: "call site's argument list does not map onto the parameter",
			}}
		}
		if !v.safeHandoff(site.fn, site.in.Args[argIdx], site.in, false) {
			steps := []Step{{
				What:   "call-site-not-by-value",
				Where:  site.in.Pos.String(),
				Detail: fmt.Sprintf("argument %d in %s cannot be handed off by value", argIdx, site.fn.FullName()),
			}}
			return append(steps, v.explainHandoff(site.fn, site.in.Args[argIdx], site.in, depth)...)
		}
	}
	return nil
}
