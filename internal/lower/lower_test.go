package lower_test

import (
	"strings"
	"testing"

	"objinline/internal/ir"
	"objinline/internal/lang/parser"
	"objinline/internal/lang/sem"
	"objinline/internal/lower"
)

func build(t *testing.T, src string) *ir.Program {
	t.Helper()
	prog, err := parser.Parse("t.icc", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := sem.Check(prog)
	if err != nil {
		t.Fatalf("sem: %v", err)
	}
	p, err := lower.Lower(info)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return p
}

func buildErr(t *testing.T, src, frag string) {
	t.Helper()
	prog, err := parser.Parse("t.icc", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := sem.Check(prog)
	if err != nil {
		t.Fatalf("sem: %v", err)
	}
	_, err = lower.Lower(info)
	if err == nil {
		t.Fatalf("expected lowering error mentioning %q", frag)
	}
	if !strings.Contains(err.Error(), frag) {
		t.Fatalf("error %q does not mention %q", err, frag)
	}
}

func countOps(fn *ir.Func, op ir.Op) int {
	n := 0
	fn.Instrs(func(_ *ir.Block, in *ir.Instr) {
		if in.Op == op {
			n++
		}
	})
	return n
}

func TestLayoutsExtendSuperclass(t *testing.T) {
	p := build(t, `
class A { a1; a2; }
class B : A { b1; }
func main() { }
`)
	a := p.ClassNamed("A")
	b := p.ClassNamed("B")
	if a.NumSlots() != 2 || b.NumSlots() != 3 {
		t.Fatalf("slots: A=%d B=%d", a.NumSlots(), b.NumSlots())
	}
	// The superclass prefix is shared: same *Field pointers.
	for i := 0; i < 2; i++ {
		if b.Fields[i] != a.Fields[i] {
			t.Errorf("B slot %d is not A's field", i)
		}
	}
	if b.Fields[2].Name != "b1" || b.Fields[2].Owner != b {
		t.Errorf("B's own field: %v", b.Fields[2])
	}
}

func TestVerifiedOutput(t *testing.T) {
	p := build(t, `
class C { v; def init(v) { self.v = v; } def get() { return self.v; } }
func main() {
  var c = new C(1);
  if (c.get() > 0) { print("pos"); } else { print("neg"); }
  while (c.get() < 10) { c.v = c.v + 1; }
}
`)
	if err := p.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

func TestShortCircuitLowersToBranches(t *testing.T) {
	p := build(t, `func main() { var a = true && false; var b = true || false; }`)
	main := p.Main
	if got := countOps(main, ir.OpBranch); got != 2 {
		t.Errorf("branches = %d, want 2 (one per short-circuit op)", got)
	}
	if got := countOps(main, ir.OpBin); got != 0 {
		t.Errorf("OpBin = %d; short-circuit ops must not become OpBin", got)
	}
}

func TestConstructorCallIsStatic(t *testing.T) {
	p := build(t, `
class C { v; def init(v) { self.v = v; } }
func main() { var c = new C(3); }
`)
	if got := countOps(p.Main, ir.OpCallStatic); got != 1 {
		t.Errorf("OpCallStatic = %d, want 1 (the constructor)", got)
	}
	if got := countOps(p.Main, ir.OpCallMethod); got != 0 {
		t.Errorf("OpCallMethod = %d, want 0", got)
	}
}

func TestMethodCallIsDynamic(t *testing.T) {
	p := build(t, `
class C { def m() { return 1; } }
func main() { var c = new C(); c.m(); }
`)
	if got := countOps(p.Main, ir.OpCallMethod); got != 1 {
		t.Errorf("OpCallMethod = %d, want 1", got)
	}
}

func TestFieldAccessesAreNameOnly(t *testing.T) {
	p := build(t, `
class C { v; def init() { self.v = 1; } }
func main() { var c = new C(); print(c.v); }
`)
	p.Main.Instrs(func(_ *ir.Block, in *ir.Instr) {
		if in.Op == ir.OpGetField {
			if in.Field.Owner != nil || in.Field.Slot != -1 {
				t.Errorf("lowered field access should be name-only, got %v", in.Field)
			}
		}
	})
}

func TestGlobalInitFunction(t *testing.T) {
	p := build(t, `var g = 41; func main() { print(g + 1); }`)
	init := p.FuncNamed(lower.InitFuncName)
	if init == nil {
		t.Fatal("no $init function")
	}
	if got := countOps(init, ir.OpSetGlobal); got != 1 {
		t.Errorf("$init SetGlobal = %d", got)
	}
}

func TestNoInitWithoutInitializers(t *testing.T) {
	p := build(t, `var g; func main() { }`)
	if p.FuncNamed(lower.InitFuncName) != nil {
		t.Error("$init created for uninitialized globals")
	}
}

func TestLoweringErrors(t *testing.T) {
	cases := []struct{ src, frag string }{
		{`func main() { print(x); }`, "undeclared variable x"},
		{`func main() { x = 1; }`, "assignment to undeclared"},
		{`func main() { var x = 1; var x = 2; }`, "redeclared in this scope"},
		{`func main() { break; }`, "break outside loop"},
		{`func main() { continue; }`, "continue outside loop"},
		{`func f() { return self; } func main() { }`, "self outside a method"},
		{`func main() { nope(); }`, "unknown function nope"},
		{`func main() { var x = new Nope(); }`, "unknown class Nope"},
		{`class C { def init(a) { } } func main() { new C(); }`, "takes 1 arguments, got 0"},
		{`class C { } func main() { new C(1); }`, "no init method"},
		{`func f(a) { return a; } func main() { f(1, 2); }`, "takes 1 arguments, got 2"},
		{`func main() { sqrt(1, 2); }`, "wrong number of arguments"},
	}
	for _, c := range cases {
		buildErr(t, c.src, c.frag)
	}
}

func TestScopesShadowInBlocks(t *testing.T) {
	// Shadowing in a nested block is allowed; reuse after the block refers
	// to the outer variable.
	p := build(t, `
func main() {
  var x = 1;
  { var x = 2; print(x); }
  print(x);
}
`)
	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestForLoopScopesItsInit(t *testing.T) {
	p := build(t, `
func main() {
  for (var i = 0; i < 3; i = i + 1) { }
  for (var i = 0; i < 3; i = i + 1) { }
}
`)
	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestImplicitReturnAppended(t *testing.T) {
	p := build(t, `func f() { } func main() { f(); }`)
	f := p.FuncNamed("f")
	last := f.Blocks[len(f.Blocks)-1].Instrs
	if last[len(last)-1].Op != ir.OpReturn {
		t.Errorf("missing implicit return")
	}
}

func TestDeadCodeAfterReturnStillVerifies(t *testing.T) {
	p := build(t, `
func f() { return 1; return 2; }
func main() { f(); }
`)
	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestTemporariesNotReused(t *testing.T) {
	// Distinct temporaries get distinct registers (flow-insensitive
	// analysis precision depends on this).
	p := build(t, `
class A { def m() { return 1; } }
class B { def m() { return 2; } }
func main() {
  var a = new A();
  var b = new B();
  print(a.m() + b.m());
}
`)
	seen := make(map[ir.Reg]int)
	p.Main.Instrs(func(_ *ir.Block, in *ir.Instr) {
		if in.Op == ir.OpNewObject {
			seen[in.Dst]++
		}
	})
	for r, n := range seen {
		if n > 1 {
			t.Errorf("register r%d reused for %d allocations", r, n)
		}
	}
}
