// Package lower translates Mini-ICC syntax trees into IR. It performs
// local name resolution (parameters, locals, globals), lowers short-circuit
// operators to control flow, resolves direct calls, and builds class slot
// layouts (superclass fields first, so subclass layouts conform).
//
// Field accesses are lowered as *name-only* references (Slot == -1): in the
// uniform object model the receiver's class is unknown statically, so the
// VM resolves field names per class at run time. The analysis and cloning
// passes later rebind accesses to concrete slots when the receiver type is
// precise — exactly the progression the Concert compiler follows.
package lower

import (
	"objinline/internal/ir"
	"objinline/internal/lang/ast"
	"objinline/internal/lang/sem"
	"objinline/internal/lang/source"
)

// InitFuncName is the synthetic function holding global initializers; the
// VM runs it before main, and the analysis treats it as a root.
const InitFuncName = "$init"

// Lower converts a checked program into IR. The returned program has been
// verified.
func Lower(info *sem.Info) (*ir.Program, error) {
	prog, _, err := lowerProgram(info)
	return prog, err
}

// lowerProgram is Lower exposing the lowerer itself, whose name tables
// (classes, functions, globals, field anchors) an incremental Snapshot
// retains so that later edits can re-lower single functions against the
// same identities.
func lowerProgram(info *sem.Info) (*ir.Program, *lowerer, error) {
	var errs source.ErrorList
	l := &lowerer{
		info:    info,
		prog:    ir.NewProgram(),
		errs:    &errs,
		classes: make(map[string]*ir.Class),
		funcs:   make(map[string]*ir.Func),
		globals: make(map[string]int),
		anchors: make(map[string]*ir.Field),
	}

	// Class layouts, superclasses first.
	for _, name := range info.Order {
		decl := info.Classes[name]
		c := &ir.Class{Name: name, Methods: make(map[string]*ir.Func)}
		if decl.Super != "" {
			c.Super = l.classes[decl.Super]
			if c.Super != nil {
				c.Fields = append(c.Fields, c.Super.Fields...)
			}
		}
		for _, f := range decl.Fields {
			c.Fields = append(c.Fields, &ir.Field{Name: f.Name, Slot: len(c.Fields), Owner: c})
		}
		l.prog.AddClass(c)
		l.classes[name] = c
	}

	// Globals.
	for i, g := range info.Globals {
		l.prog.Globals = append(l.prog.Globals, g)
		l.globals[g] = i
	}

	// Declare functions and methods before lowering bodies so calls can be
	// resolved directly.
	for _, fd := range info.Program.Funcs {
		if info.Funcs[fd.Name] != fd {
			continue // duplicate, reported by sem
		}
		f := &ir.Func{Name: fd.Name, NumParams: len(fd.Params)}
		l.prog.AddFunc(f)
		l.funcs[fd.Name] = f
	}
	type methodWork struct {
		decl *ast.FuncDecl
		fn   *ir.Func
	}
	var methods []methodWork
	for _, name := range info.Order {
		decl := info.Classes[name]
		c := l.classes[name]
		for _, md := range decl.Methods {
			if _, dup := c.Methods[md.Name]; dup {
				continue
			}
			f := &ir.Func{Name: md.Name, Class: c, NumParams: len(md.Params)}
			l.prog.AddFunc(f)
			c.Methods[md.Name] = f
			methods = append(methods, methodWork{md, f})
		}
	}

	// Lower bodies.
	for _, fd := range info.Program.Funcs {
		if fn := l.funcs[fd.Name]; fn != nil && info.Funcs[fd.Name] == fd {
			l.lowerFunc(fn, fd)
		}
	}
	for _, mw := range methods {
		l.lowerFunc(mw.fn, mw.decl)
	}

	// Global initializers go into a synthetic $init function that runs
	// before main.
	if hasGlobalInits(info.Program.Globals) {
		l.lowerGlobalInit(info.Program.Globals)
	}

	l.prog.Main = l.funcs["main"]

	if err := errs.Err(); err != nil {
		return nil, nil, err
	}
	if err := l.prog.Verify(); err != nil {
		return nil, nil, err
	}
	return l.prog, l, nil
}

func hasGlobalInits(globals []*ast.VarStmt) bool {
	for _, g := range globals {
		if g.Init != nil {
			return true
		}
	}
	return false
}

type lowerer struct {
	info    *sem.Info
	prog    *ir.Program
	errs    *source.ErrorList
	classes map[string]*ir.Class
	funcs   map[string]*ir.Func
	globals map[string]int
	anchors map[string]*ir.Field
}

// anchorField returns the canonical name-only field reference used before
// optimization binds accesses to concrete slots.
func (l *lowerer) anchorField(name string) *ir.Field {
	if f, ok := l.anchors[name]; ok {
		return f
	}
	f := &ir.Field{Name: name, Slot: -1}
	l.anchors[name] = f
	return f
}

func (l *lowerer) lowerGlobalInit(globals []*ast.VarStmt) {
	fn := &ir.Func{Name: InitFuncName}
	l.prog.AddFunc(fn)
	l.funcs[InitFuncName] = fn
	l.lowerGlobalInitInto(fn, globals)
}

// lowerGlobalInitInto lowers the global initializers into fn's body; the
// incremental path reuses it to rebuild $init in place after an edit.
func (l *lowerer) lowerGlobalInitInto(fn *ir.Func, globals []*ast.VarStmt) {
	fb := &funcBuilder{l: l, fn: fn}
	fb.pushScope()
	fb.cur = fb.newBlock()
	for _, g := range globals {
		if g.Init == nil {
			continue
		}
		v := fb.expr(g.Init)
		fb.emit(&ir.Instr{Op: ir.OpSetGlobal, Dst: ir.NoReg, Global: l.globals[g.Name], Args: []ir.Reg{v}, Pos: g.Pos()})
	}
	nilReg := fb.newReg()
	fb.emit(&ir.Instr{Op: ir.OpConstNil, Dst: nilReg})
	fb.emit(&ir.Instr{Op: ir.OpReturn, Dst: ir.NoReg, Args: []ir.Reg{nilReg}})
	fn.NumRegs = int(fb.nextReg)
}

type loopCtx struct {
	breakTo    *ir.Block
	continueTo *ir.Block
}

type funcBuilder struct {
	l       *lowerer
	fn      *ir.Func
	cur     *ir.Block
	nextReg ir.Reg
	scopes  []map[string]ir.Reg
	loops   []loopCtx
}

func (fb *funcBuilder) pushScope() { fb.scopes = append(fb.scopes, make(map[string]ir.Reg)) }
func (fb *funcBuilder) popScope()  { fb.scopes = fb.scopes[:len(fb.scopes)-1] }

func (fb *funcBuilder) declare(name string, pos source.Pos) ir.Reg {
	top := fb.scopes[len(fb.scopes)-1]
	if _, dup := top[name]; dup {
		fb.l.errs.Add(pos, "%s redeclared in this scope", name)
	}
	r := fb.newReg()
	top[name] = r
	return r
}

func (fb *funcBuilder) lookup(name string) (ir.Reg, bool) {
	for i := len(fb.scopes) - 1; i >= 0; i-- {
		if r, ok := fb.scopes[i][name]; ok {
			return r, true
		}
	}
	return ir.NoReg, false
}

func (fb *funcBuilder) newReg() ir.Reg {
	r := fb.nextReg
	fb.nextReg++
	return r
}

func (fb *funcBuilder) newBlock() *ir.Block {
	b := &ir.Block{ID: len(fb.fn.Blocks)}
	fb.fn.Blocks = append(fb.fn.Blocks, b)
	return b
}

func (fb *funcBuilder) emit(in *ir.Instr) *ir.Instr {
	fb.cur.Instrs = append(fb.cur.Instrs, in)
	return in
}

func (fb *funcBuilder) terminated() bool {
	n := len(fb.cur.Instrs)
	return n > 0 && fb.cur.Instrs[n-1].IsTerminator()
}

func (fb *funcBuilder) jump(to *ir.Block, pos source.Pos) {
	if !fb.terminated() {
		fb.emit(&ir.Instr{Op: ir.OpJump, Dst: ir.NoReg, Target: to.ID, Pos: pos})
	}
}

func (l *lowerer) lowerFunc(fn *ir.Func, decl *ast.FuncDecl) {
	fb := &funcBuilder{l: l, fn: fn}
	fb.pushScope()
	if fn.Class != nil {
		fb.nextReg = 1 // r0 = self
	}
	for _, p := range decl.Params {
		fb.declare(p.Name, p.Pos())
	}
	fb.cur = fb.newBlock()
	fb.block(decl.Body)
	if !fb.terminated() {
		nilReg := fb.newReg()
		fb.emit(&ir.Instr{Op: ir.OpConstNil, Dst: nilReg, Pos: decl.Pos()})
		fb.emit(&ir.Instr{Op: ir.OpReturn, Dst: ir.NoReg, Args: []ir.Reg{nilReg}, Pos: decl.Pos()})
	}
	fn.NumRegs = int(fb.nextReg)
	fb.popScope()
}

func (fb *funcBuilder) block(blk *ast.BlockStmt) {
	fb.pushScope()
	for _, s := range blk.Stmts {
		if fb.terminated() {
			// Unreachable code after return/break: lower into a fresh dead
			// block so diagnostics still fire; terminate it afterwards.
			fb.cur = fb.newBlock()
			defer func(dead *ir.Block) {
				if n := len(dead.Instrs); n == 0 || !dead.Instrs[n-1].IsTerminator() {
					dead.Instrs = append(dead.Instrs, &ir.Instr{Op: ir.OpTrap, Dst: ir.NoReg, S: "unreachable"})
				}
			}(fb.cur)
		}
		fb.stmt(s)
	}
	fb.popScope()
}

func (fb *funcBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		fb.block(s)
	case *ast.VarStmt:
		var v ir.Reg = ir.NoReg
		if s.Init != nil {
			v = fb.expr(s.Init)
		}
		r := fb.declare(s.Name, s.Pos())
		if v != ir.NoReg {
			fb.emit(&ir.Instr{Op: ir.OpMove, Dst: r, Args: []ir.Reg{v}, Pos: s.Pos()})
		} else {
			fb.emit(&ir.Instr{Op: ir.OpConstNil, Dst: r, Pos: s.Pos()})
		}
	case *ast.AssignStmt:
		fb.assign(s)
	case *ast.ExprStmt:
		fb.expr(s.X)
	case *ast.IfStmt:
		fb.ifStmt(s)
	case *ast.WhileStmt:
		fb.whileStmt(s)
	case *ast.ForStmt:
		fb.forStmt(s)
	case *ast.ReturnStmt:
		var arg ir.Reg
		if s.Value != nil {
			arg = fb.expr(s.Value)
		} else {
			arg = fb.newReg()
			fb.emit(&ir.Instr{Op: ir.OpConstNil, Dst: arg, Pos: s.Pos()})
		}
		fb.emit(&ir.Instr{Op: ir.OpReturn, Dst: ir.NoReg, Args: []ir.Reg{arg}, Pos: s.Pos()})
	case *ast.BreakStmt:
		if len(fb.loops) == 0 {
			fb.l.errs.Add(s.Pos(), "break outside loop")
			return
		}
		fb.jump(fb.loops[len(fb.loops)-1].breakTo, s.Pos())
	case *ast.ContinueStmt:
		if len(fb.loops) == 0 {
			fb.l.errs.Add(s.Pos(), "continue outside loop")
			return
		}
		fb.jump(fb.loops[len(fb.loops)-1].continueTo, s.Pos())
	default:
		fb.l.errs.Add(s.Pos(), "unsupported statement")
	}
}

func (fb *funcBuilder) assign(s *ast.AssignStmt) {
	switch t := s.Target.(type) {
	case *ast.Ident:
		v := fb.expr(s.Value)
		if r, ok := fb.lookup(t.Name); ok {
			fb.emit(&ir.Instr{Op: ir.OpMove, Dst: r, Args: []ir.Reg{v}, Pos: s.Pos()})
			return
		}
		if g, ok := fb.l.globals[t.Name]; ok {
			fb.emit(&ir.Instr{Op: ir.OpSetGlobal, Dst: ir.NoReg, Global: g, Args: []ir.Reg{v}, Pos: s.Pos()})
			return
		}
		fb.l.errs.Add(t.Pos(), "assignment to undeclared variable %s", t.Name)
	case *ast.FieldExpr:
		obj := fb.expr(t.Recv)
		v := fb.expr(s.Value)
		fb.emit(&ir.Instr{
			Op: ir.OpSetField, Dst: ir.NoReg, Args: []ir.Reg{obj, v},
			Field: fb.l.anchorField(t.Name), Pos: s.Pos(),
		})
	case *ast.IndexExpr:
		arr := fb.expr(t.Arr)
		idx := fb.expr(t.Index)
		v := fb.expr(s.Value)
		fb.emit(&ir.Instr{Op: ir.OpArrSet, Dst: ir.NoReg, Args: []ir.Reg{arr, idx, v}, Pos: s.Pos()})
	default:
		fb.l.errs.Add(s.Pos(), "invalid assignment target")
	}
}

func (fb *funcBuilder) ifStmt(s *ast.IfStmt) {
	cond := fb.expr(s.Cond)
	br := fb.emit(&ir.Instr{Op: ir.OpBranch, Dst: ir.NoReg, Args: []ir.Reg{cond}, Pos: s.Pos()})
	thenBlk := fb.newBlock()
	br.Target = thenBlk.ID
	fb.cur = thenBlk
	fb.block(s.Then)
	thenEnd := fb.cur

	var elseEnd *ir.Block
	if s.Else != nil {
		elseBlk := fb.newBlock()
		br.Else = elseBlk.ID
		fb.cur = elseBlk
		fb.stmt(s.Else)
		elseEnd = fb.cur
	}

	join := fb.newBlock()
	// Fallthrough edges into the join block.
	fb.cur = thenEnd
	fb.jump(join, s.Pos())
	if s.Else != nil {
		fb.cur = elseEnd
		fb.jump(join, s.Pos())
	} else {
		br.Else = join.ID
	}
	fb.cur = join
}

func (fb *funcBuilder) whileStmt(s *ast.WhileStmt) {
	head := fb.newBlock()
	fb.jump(head, s.Pos())
	fb.cur = head
	cond := fb.expr(s.Cond)
	body := fb.newBlock()
	exit := fb.newBlock()
	fb.emit(&ir.Instr{Op: ir.OpBranch, Dst: ir.NoReg, Args: []ir.Reg{cond}, Target: body.ID, Else: exit.ID, Pos: s.Pos()})
	fb.cur = body
	fb.loops = append(fb.loops, loopCtx{breakTo: exit, continueTo: head})
	fb.block(s.Body)
	fb.loops = fb.loops[:len(fb.loops)-1]
	fb.jump(head, s.Pos())
	fb.cur = exit
}

func (fb *funcBuilder) forStmt(s *ast.ForStmt) {
	fb.pushScope()
	if s.Init != nil {
		fb.stmt(s.Init)
	}
	head := fb.newBlock()
	fb.jump(head, s.Pos())
	fb.cur = head
	body := fb.newBlock()
	post := fb.newBlock()
	exit := fb.newBlock()
	if s.Cond != nil {
		// Re-enter head to evaluate the condition each iteration.
		fb.cur = head
		cond := fb.expr(s.Cond)
		fb.emit(&ir.Instr{Op: ir.OpBranch, Dst: ir.NoReg, Args: []ir.Reg{cond}, Target: body.ID, Else: exit.ID, Pos: s.Pos()})
	} else {
		fb.cur = head
		fb.jump(body, s.Pos())
	}
	fb.cur = body
	fb.loops = append(fb.loops, loopCtx{breakTo: exit, continueTo: post})
	fb.block(s.Body)
	fb.loops = fb.loops[:len(fb.loops)-1]
	fb.jump(post, s.Pos())

	fb.cur = post
	if s.Post != nil {
		fb.stmt(s.Post)
	}
	fb.jump(head, s.Pos())
	fb.cur = exit
	fb.popScope()
}
