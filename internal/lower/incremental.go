package lower

// Incremental re-lowering. A Snapshot is the product of one cold Lower
// plus the state needed to absorb edits function-by-function: the
// lowerer's name tables (so re-lowered bodies resolve against the *same*
// class, function, field-anchor, and global identities as the retained
// IR) and a content hash per function declaration.
//
// Patch re-parses nothing itself — the caller hands it the new checked
// sem.Info — and then:
//
//   - a function whose declaration hash is unchanged keeps its prior IR
//     untouched (the hash covers structure, names, literals, and source
//     positions, so "unchanged" means lowering would reproduce it bit for
//     bit);
//   - a changed function is re-lowered into a scratch body and shape-
//     compared against its prior IR. When only payload fields differ —
//     constant values, string/float literals, positions: fields the
//     contour analysis provably never reads — the payloads are patched
//     onto the existing instructions, preserving every pointer the prior
//     analysis result may hold into the program;
//   - a function whose shape changed has its blocks spliced in wholesale
//     (same *ir.Func object, so callers' Callee pointers stay valid),
//     which invalidates the prior analysis;
//   - an edit that changes program *structure* — the class hierarchy or
//     layouts, the global list, the set or signatures of functions and
//     methods — aborts with ErrStructural and the caller falls back to a
//     cold compile. Structure determines contour keys and function IDs,
//     so nothing incremental is worth salvaging there.
//
// The two-phase layout (scratch-lower everything, then apply) means a
// lowering error leaves the snapshot exactly as it was.

import (
	"errors"
	"fmt"
	"hash/fnv"

	"objinline/internal/ir"
	"objinline/internal/lang/ast"
	"objinline/internal/lang/sem"
	"objinline/internal/lang/source"
)

// ErrStructural reports an edit that changed program structure (classes,
// fields, globals, or function signatures); the caller must cold-compile.
var ErrStructural = errors.New("lower: structural edit; full recompile required")

// Snapshot is a lowered program retained across edits.
type Snapshot struct {
	prog       *ir.Program
	l          *lowerer
	structural uint64
	hashes     map[string]uint64 // qualified decl name → ast content hash
}

// PatchStats reports what one Patch did.
type PatchStats struct {
	// Changed lists the qualified names of re-lowered functions
	// (methods as "Class.method"), in declaration order.
	Changed []string
	// Reused counts functions whose prior IR was kept untouched.
	Reused int
	// Patched counts re-lowered functions whose new IR differed from the
	// prior only in analysis-inert payload fields, updated in place.
	Patched int
	// Respliced counts functions whose IR shape changed; any prior
	// analysis of the program is invalid.
	Respliced int
	// PosShifted reports whether any patched instruction's source
	// position moved. When false (a pure value edit: every changed
	// function re-lowered to the same shape at the same positions), every
	// position string the previous compilation baked into its outputs —
	// rejection evidence, stack-site provenance — is still exact, which
	// is what lets the pipeline reuse the prior optimizer result
	// wholesale.
	PosShifted bool
}

// ShapeChanged reports whether the patch invalidated the prior analysis.
func (ps PatchStats) ShapeChanged() bool { return ps.Respliced > 0 }

// NewSnapshot cold-lowers info and retains the incremental state.
func NewSnapshot(info *sem.Info) (*Snapshot, error) {
	prog, l, err := lowerProgram(info)
	if err != nil {
		return nil, err
	}
	return &Snapshot{
		prog:       prog,
		l:          l,
		structural: structuralHash(info),
		hashes:     declHashes(info),
	}, nil
}

// Program returns the snapshot's (verified) program. Patch mutates it in
// place; callers holding it across patches see the updated IR.
func (s *Snapshot) Program() *ir.Program { return s.prog }

// Patch absorbs an edit: info is the newly parsed and checked source.
// On ErrStructural or a lowering error the snapshot is unmodified.
func (s *Snapshot) Patch(info *sem.Info) (PatchStats, error) {
	var ps PatchStats
	if structuralHash(info) != s.structural {
		return ps, ErrStructural
	}

	// Scratch phase: re-lower every changed declaration against the
	// retained name tables, touching nothing yet.
	var errs source.ErrorList
	sl := &lowerer{
		info:    info,
		prog:    s.prog,
		errs:    &errs,
		classes: s.l.classes,
		funcs:   s.l.funcs,
		globals: s.l.globals,
		anchors: s.l.anchors,
	}
	type work struct {
		qname string
		hash  uint64
		fn    *ir.Func // the retained function to update
		tmp   *ir.Func // freshly lowered body
	}
	var pending []work
	newHashes := declHashes(info)
	for _, d := range declsInOrder(info) {
		h := newHashes[d.qname]
		if h == s.hashes[d.qname] {
			ps.Reused++
			continue
		}
		fn := s.lookupFunc(d.qname, d.class)
		if fn == nil {
			// Unreachable given an equal structural hash.
			return PatchStats{}, fmt.Errorf("lower: incremental patch lost function %s", d.qname)
		}
		tmp := &ir.Func{Name: fn.Name, Class: fn.Class, NumParams: fn.NumParams}
		if d.qname == InitFuncName {
			sl.lowerGlobalInitInto(tmp, info.Program.Globals)
		} else {
			sl.lowerFunc(tmp, d.decl)
		}
		pending = append(pending, work{d.qname, h, fn, tmp})
	}
	if err := errs.Err(); err != nil {
		return PatchStats{}, err
	}

	// Apply phase: patch payloads in place where the shape held, splice
	// blocks where it did not.
	for _, w := range pending {
		ps.Changed = append(ps.Changed, w.qname)
		if shapeEqual(w.fn, w.tmp) {
			if patchPayloads(w.fn, w.tmp) {
				ps.PosShifted = true
			}
			ps.Patched++
		} else {
			w.fn.Blocks = w.tmp.Blocks
			w.fn.NumRegs = w.tmp.NumRegs
			ps.Respliced++
		}
		s.hashes[w.qname] = w.hash
	}
	if len(pending) > 0 {
		if err := s.prog.Verify(); err != nil {
			return PatchStats{}, fmt.Errorf("lower: incremental patch broke the program: %w", err)
		}
	}
	return ps, nil
}

func (s *Snapshot) lookupFunc(qname string, class string) *ir.Func {
	if class == "" {
		return s.l.funcs[qname]
	}
	if c := s.l.classes[class]; c != nil {
		return c.Methods[qname[len(class)+1:]]
	}
	return nil
}

// orderedDecl is one function-shaped declaration in program order.
type orderedDecl struct {
	qname string // "f", "Class.m", or InitFuncName
	class string // "" for top-level functions and $init
	decl  *ast.FuncDecl
}

// declsInOrder lists declarations in the exact order Lower assigns
// function IDs: top-level functions, then methods class by class, then
// the synthetic $init.
func declsInOrder(info *sem.Info) []orderedDecl {
	var out []orderedDecl
	for _, fd := range info.Program.Funcs {
		if info.Funcs[fd.Name] == fd {
			out = append(out, orderedDecl{fd.Name, "", fd})
		}
	}
	for _, name := range info.Order {
		decl := info.Classes[name]
		seen := map[string]bool{}
		for _, md := range decl.Methods {
			if seen[md.Name] {
				continue
			}
			seen[md.Name] = true
			out = append(out, orderedDecl{name + "." + md.Name, name, md})
		}
	}
	if hasGlobalInits(info.Program.Globals) {
		out = append(out, orderedDecl{InitFuncName, "", nil})
	}
	return out
}

// declHashes fingerprints every declaration.
func declHashes(info *sem.Info) map[string]uint64 {
	hashes := make(map[string]uint64)
	for _, d := range declsInOrder(info) {
		if d.qname == InitFuncName {
			hashes[d.qname] = ast.HashGlobalInits(info.Program.Globals)
		} else {
			hashes[d.qname] = ast.HashFuncDecl(d.decl)
		}
	}
	return hashes
}

// structuralHash digests everything that shapes program identity beyond
// function bodies: the class order, hierarchy, and field layouts; method
// sets and arities (in declaration order — they fix function IDs); the
// top-level function list and arities; the global list; and whether a
// $init function exists. Any change here perturbs contour keys, slot
// layouts, or ID assignment, so the caller must recompile cold.
func structuralHash(info *sem.Info) uint64 {
	h := fnv.New64a()
	field := func(parts ...string) {
		for _, p := range parts {
			h.Write([]byte(p))
			h.Write([]byte{0})
		}
		h.Write([]byte{1})
	}
	for _, name := range info.Order {
		decl := info.Classes[name]
		field("class", name, decl.Super)
		for _, f := range decl.Fields {
			field("field", f.Name)
		}
		for _, m := range decl.Methods {
			field("method", m.Name, fmt.Sprint(len(m.Params)))
		}
	}
	for _, fd := range info.Program.Funcs {
		if info.Funcs[fd.Name] == fd {
			field("func", fd.Name, fmt.Sprint(len(fd.Params)))
		}
	}
	for _, g := range info.Globals {
		field("global", g)
	}
	if hasGlobalInits(info.Program.Globals) {
		field("init")
	}
	return h.Sum64()
}

// shapeEqual reports whether two lowered bodies are identical in every
// field the contour analysis can observe. Payload fields — const values
// (Aux on OpConstInt/OpConstBool), F, S, B, and Pos — are excluded: the
// analysis dispatches on Aux only for OpBin/OpUn/OpBuiltin opcodes and
// never reads the others (no .Pos/.S/.F/.B access exists in
// internal/analysis), so two shape-equal bodies have byte-identical
// analysis results. Pointer fields must be *identical*, not just
// equivalent: the retained program and the scratch lowering share one set
// of class, function, and field-anchor objects, so any pointer mismatch
// is a real difference.
func shapeEqual(a, b *ir.Func) bool {
	if a.NumParams != b.NumParams || a.NumRegs != b.NumRegs || len(a.Blocks) != len(b.Blocks) {
		return false
	}
	for i, ab := range a.Blocks {
		bb := b.Blocks[i]
		if len(ab.Instrs) != len(bb.Instrs) {
			return false
		}
		for j, ai := range ab.Instrs {
			bi := bb.Instrs[j]
			if ai.Op != bi.Op || ai.Dst != bi.Dst || len(ai.Args) != len(bi.Args) {
				return false
			}
			for k := range ai.Args {
				if ai.Args[k] != bi.Args[k] {
					return false
				}
			}
			if ai.Class != bi.Class || ai.Field != bi.Field || ai.Callee != bi.Callee ||
				ai.Method != bi.Method || ai.Global != bi.Global ||
				ai.Target != bi.Target || ai.Else != bi.Else {
				return false
			}
			if ai.Aux != bi.Aux && !isAuxPayload(ai.Op) {
				return false
			}
		}
	}
	return true
}

// isAuxPayload reports whether Aux carries a constant value rather than
// an operator code for op — the one place Aux is analysis-inert.
func isAuxPayload(op ir.Op) bool {
	return op == ir.OpConstInt || op == ir.OpConstBool
}

// patchPayloads copies the analysis-inert fields of b onto a's
// instructions, which shapeEqual has verified correspond one to one. It
// reports whether any instruction's position moved.
func patchPayloads(a, b *ir.Func) (posShifted bool) {
	for i, ab := range a.Blocks {
		bb := b.Blocks[i]
		for j, ai := range ab.Instrs {
			bi := bb.Instrs[j]
			ai.Aux = bi.Aux
			ai.F = bi.F
			ai.S = bi.S
			ai.B = bi.B
			if ai.Pos != bi.Pos {
				ai.Pos = bi.Pos
				posShifted = true
			}
		}
	}
	return posShifted
}
