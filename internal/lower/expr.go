package lower

import (
	"objinline/internal/ir"
	"objinline/internal/lang/ast"
)

var binOpMap = map[ast.BinaryOp]ir.BinOp{
	ast.OpAdd: ir.BinAdd,
	ast.OpSub: ir.BinSub,
	ast.OpMul: ir.BinMul,
	ast.OpDiv: ir.BinDiv,
	ast.OpMod: ir.BinMod,
	ast.OpEq:  ir.BinEq,
	ast.OpNe:  ir.BinNe,
	ast.OpLt:  ir.BinLt,
	ast.OpLe:  ir.BinLe,
	ast.OpGt:  ir.BinGt,
	ast.OpGe:  ir.BinGe,
}

// expr lowers an expression and returns the register holding its value.
func (fb *funcBuilder) expr(e ast.Expr) ir.Reg {
	switch e := e.(type) {
	case *ast.IntLit:
		dst := fb.newReg()
		fb.emit(&ir.Instr{Op: ir.OpConstInt, Dst: dst, Aux: e.Value, Pos: e.Pos()})
		return dst
	case *ast.FloatLit:
		dst := fb.newReg()
		fb.emit(&ir.Instr{Op: ir.OpConstFloat, Dst: dst, F: e.Value, Pos: e.Pos()})
		return dst
	case *ast.StringLit:
		dst := fb.newReg()
		fb.emit(&ir.Instr{Op: ir.OpConstStr, Dst: dst, S: e.Value, Pos: e.Pos()})
		return dst
	case *ast.BoolLit:
		dst := fb.newReg()
		aux := int64(0)
		if e.Value {
			aux = 1
		}
		fb.emit(&ir.Instr{Op: ir.OpConstBool, Dst: dst, Aux: aux, Pos: e.Pos()})
		return dst
	case *ast.NilLit:
		dst := fb.newReg()
		fb.emit(&ir.Instr{Op: ir.OpConstNil, Dst: dst, Pos: e.Pos()})
		return dst
	case *ast.SelfExpr:
		if fb.fn.Class == nil {
			fb.l.errs.Add(e.Pos(), "self outside a method")
			dst := fb.newReg()
			fb.emit(&ir.Instr{Op: ir.OpConstNil, Dst: dst, Pos: e.Pos()})
			return dst
		}
		return 0
	case *ast.Ident:
		if r, ok := fb.lookup(e.Name); ok {
			return r
		}
		if g, ok := fb.l.globals[e.Name]; ok {
			dst := fb.newReg()
			fb.emit(&ir.Instr{Op: ir.OpGetGlobal, Dst: dst, Global: g, Pos: e.Pos()})
			return dst
		}
		fb.l.errs.Add(e.Pos(), "undeclared variable %s", e.Name)
		dst := fb.newReg()
		fb.emit(&ir.Instr{Op: ir.OpConstNil, Dst: dst, Pos: e.Pos()})
		return dst
	case *ast.BinaryExpr:
		if e.Op == ast.OpAnd || e.Op == ast.OpOr {
			return fb.shortCircuit(e)
		}
		x := fb.expr(e.X)
		y := fb.expr(e.Y)
		dst := fb.newReg()
		fb.emit(&ir.Instr{Op: ir.OpBin, Dst: dst, Args: []ir.Reg{x, y}, Aux: int64(binOpMap[e.Op]), Pos: e.Pos()})
		return dst
	case *ast.UnaryExpr:
		x := fb.expr(e.X)
		dst := fb.newReg()
		aux := int64(ir.UnNeg)
		if e.Op == ast.OpNot {
			aux = int64(ir.UnNot)
		}
		fb.emit(&ir.Instr{Op: ir.OpUn, Dst: dst, Args: []ir.Reg{x}, Aux: aux, Pos: e.Pos()})
		return dst
	case *ast.CallExpr:
		return fb.call(e)
	case *ast.MethodCallExpr:
		recv := fb.expr(e.Recv)
		args := make([]ir.Reg, 0, len(e.Args)+1)
		args = append(args, recv)
		for _, a := range e.Args {
			args = append(args, fb.expr(a))
		}
		dst := fb.newReg()
		fb.emit(&ir.Instr{Op: ir.OpCallMethod, Dst: dst, Args: args, Method: e.Method, Pos: e.Pos()})
		return dst
	case *ast.FieldExpr:
		recv := fb.expr(e.Recv)
		dst := fb.newReg()
		fb.emit(&ir.Instr{Op: ir.OpGetField, Dst: dst, Args: []ir.Reg{recv}, Field: fb.l.anchorField(e.Name), Pos: e.Pos()})
		return dst
	case *ast.IndexExpr:
		arr := fb.expr(e.Arr)
		idx := fb.expr(e.Index)
		dst := fb.newReg()
		fb.emit(&ir.Instr{Op: ir.OpArrGet, Dst: dst, Args: []ir.Reg{arr, idx}, Pos: e.Pos()})
		return dst
	case *ast.NewExpr:
		return fb.newObject(e)
	case *ast.NewArrayExpr:
		n := fb.expr(e.Len)
		dst := fb.newReg()
		fb.emit(&ir.Instr{Op: ir.OpNewArray, Dst: dst, Args: []ir.Reg{n}, Pos: e.Pos()})
		return dst
	default:
		fb.l.errs.Add(e.Pos(), "unsupported expression")
		dst := fb.newReg()
		fb.emit(&ir.Instr{Op: ir.OpConstNil, Dst: dst, Pos: e.Pos()})
		return dst
	}
}

// shortCircuit lowers && and || to control flow with a merged result
// register.
func (fb *funcBuilder) shortCircuit(e *ast.BinaryExpr) ir.Reg {
	dst := fb.newReg()
	x := fb.expr(e.X)
	fb.emit(&ir.Instr{Op: ir.OpMove, Dst: dst, Args: []ir.Reg{x}, Pos: e.Pos()})
	rhs := fb.newBlock()
	join := fb.newBlock()
	br := &ir.Instr{Op: ir.OpBranch, Dst: ir.NoReg, Args: []ir.Reg{dst}, Pos: e.Pos()}
	if e.Op == ast.OpAnd {
		br.Target, br.Else = rhs.ID, join.ID // true: evaluate rhs
	} else {
		br.Target, br.Else = join.ID, rhs.ID // true: already done
	}
	fb.emit(br)
	fb.cur = rhs
	y := fb.expr(e.Y)
	fb.emit(&ir.Instr{Op: ir.OpMove, Dst: dst, Args: []ir.Reg{y}, Pos: e.Pos()})
	fb.jump(join, e.Pos())
	fb.cur = join
	return dst
}

func (fb *funcBuilder) call(e *ast.CallExpr) ir.Reg {
	args := make([]ir.Reg, len(e.Args))
	for i, a := range e.Args {
		args[i] = fb.expr(a)
	}
	dst := fb.newReg()
	if fn, ok := fb.l.funcs[e.Name]; ok && fn.Name != InitFuncName {
		if len(args) != fn.NumParams {
			fb.l.errs.Add(e.Pos(), "%s takes %d arguments, got %d", e.Name, fn.NumParams, len(args))
		}
		fb.emit(&ir.Instr{Op: ir.OpCall, Dst: dst, Args: args, Callee: fn, Pos: e.Pos()})
		return dst
	}
	if b, ok := ir.BuiltinByName(e.Name); ok {
		lo, hi := ir.BuiltinArity(b)
		if len(args) < lo || (hi >= 0 && len(args) > hi) {
			fb.l.errs.Add(e.Pos(), "wrong number of arguments to builtin %s", e.Name)
		}
		fb.emit(&ir.Instr{Op: ir.OpBuiltin, Dst: dst, Args: args, Aux: int64(b), Pos: e.Pos()})
		return dst
	}
	fb.l.errs.Add(e.Pos(), "call to unknown function %s", e.Name)
	fb.emit(&ir.Instr{Op: ir.OpConstNil, Dst: dst, Pos: e.Pos()})
	return dst
}

// newObject lowers "new C(args)": allocate, then statically call the
// class's init method (resolved through the superclass chain) if any.
func (fb *funcBuilder) newObject(e *ast.NewExpr) ir.Reg {
	cls, ok := fb.l.classes[e.Class]
	if !ok {
		fb.l.errs.Add(e.Pos(), "new of unknown class %s", e.Class)
		dst := fb.newReg()
		fb.emit(&ir.Instr{Op: ir.OpConstNil, Dst: dst, Pos: e.Pos()})
		return dst
	}
	args := make([]ir.Reg, len(e.Args))
	for i, a := range e.Args {
		args[i] = fb.expr(a)
	}
	dst := fb.newReg()
	fb.emit(&ir.Instr{Op: ir.OpNewObject, Dst: dst, Class: cls, Pos: e.Pos()})
	initFn := cls.LookupMethod("init")
	if initFn == nil {
		if len(args) > 0 {
			fb.l.errs.Add(e.Pos(), "class %s has no init method but new was given arguments", e.Class)
		}
		return dst
	}
	if len(args) != initFn.NumParams {
		fb.l.errs.Add(e.Pos(), "%s::init takes %d arguments, got %d", e.Class, initFn.NumParams, len(args))
	}
	callArgs := append([]ir.Reg{dst}, args...)
	tmp := fb.newReg()
	fb.emit(&ir.Instr{Op: ir.OpCallStatic, Dst: tmp, Args: callArgs, Callee: initFn, Pos: e.Pos()})
	return dst
}
