package server

import (
	"fmt"
	"strings"
)

// blowupSource generates a program whose contour analysis runs for
// hundreds of milliseconds (n classes × n mutually recursive methods
// under an n×n megamorphic call matrix) — the deadline tests cancel it
// mid-analysis. Mirrors the generator in the root package's cancellation
// tests.
func blowupSource(n int) string {
	var b strings.Builder
	for c := 0; c < n; c++ {
		fmt.Fprintf(&b, "class C%d {\n  v;\n  def init(v) { self.v = v; }\n", c)
		for m := 0; m < n; m++ {
			fmt.Fprintf(&b, "  def m%d(x, d) { if (d <= 0) { return self.v; } return x.m%d(self, d - 1); }\n", m, (m+1)%n)
		}
		b.WriteString("}\n")
	}
	b.WriteString("func main() {\n")
	for c := 0; c < n; c++ {
		fmt.Fprintf(&b, "  var o%d = new C%d(%d);\n", c, c, c)
	}
	for c := 0; c < n; c++ {
		for d := 0; d < n; d++ {
			fmt.Fprintf(&b, "  print(o%d.m0(o%d, %d));\n", c, d, n)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
