// Package api defines the oicd service's wire types: the JSON request
// bodies the /v1 endpoints accept and the response envelope they (and the
// oic CLI's -json flag) emit. The envelope is shared with cmd/oic so the
// two surfaces cannot drift apart — a field added here appears in both,
// and the golden tests on either side pin the serialized shape.
package api

import "objinline"

// Config is the wire form of objinline.Config. Zero values mean defaults
// (mode "inline", solver "worklist", the analysis package's TagDepth and
// MaxPasses defaults), exactly as the library treats them.
type Config struct {
	// Mode is the pipeline: "direct", "baseline", or "inline" (default).
	Mode string `json:"mode,omitempty"`
	// ParallelArrays selects the struct-of-arrays inlined-array layout.
	ParallelArrays bool `json:"parallel_arrays,omitempty"`
	// TagDepth caps use-specialization tag nesting (default 3).
	TagDepth int `json:"tag_depth,omitempty"`
	// MaxPasses bounds the analysis's iterative refinement (default 8).
	MaxPasses int `json:"max_passes,omitempty"`
	// Solver selects the analysis fixpoint engine: "worklist" (default),
	// "sweep", or "parallel".
	Solver string `json:"solver,omitempty"`
	// Jobs is the parallel solver's worker count (0 = GOMAXPROCS; ignored
	// by the sequential solvers). The server clamps it to its configured
	// per-request analysis parallelism. Jobs never changes results — all
	// solvers are byte-identical at any worker count — so it is not part
	// of the compilation cache key.
	Jobs int `json:"jobs,omitempty"`
}

// ToConfig converts the wire config to the library's, parsing the mode.
func (c Config) ToConfig() (objinline.Config, error) {
	mode := objinline.Inline
	if c.Mode != "" {
		var err error
		if mode, err = objinline.ParseMode(c.Mode); err != nil {
			return objinline.Config{}, err
		}
	}
	return objinline.Config{
		Mode:           mode,
		ParallelArrays: c.ParallelArrays,
		TagDepth:       c.TagDepth,
		MaxPasses:      c.MaxPasses,
		Solver:         c.Solver,
		Jobs:           c.Jobs,
	}, nil
}

// CompileRequest is the body of POST /v1/compile.
type CompileRequest struct {
	// Filename labels diagnostics and source positions (default
	// "request.icc"). It is part of the cache key: the same source under
	// a different name produces different position strings.
	Filename string `json:"filename,omitempty"`
	// Source is the Mini-ICC program text.
	Source string `json:"source"`
	// Config shapes the compilation; zero values mean defaults.
	Config Config `json:"config"`
	// DeadlineMillis bounds this request end-to-end, compile included.
	// 0 means the server's default deadline; values above the server's
	// maximum are clamped to it.
	DeadlineMillis int64 `json:"deadline_ms,omitempty"`
}

// ExplainRequest is the body of POST /v1/explain: a compilation plus the
// field to explain, named as InlinedFields/RejectedFields render it
// (e.g. "Rectangle.lower_left", or "arr@<site>[]" for an array site).
type ExplainRequest struct {
	CompileRequest
	Field string `json:"field"`
}

// SessionPatchRequest is the body of PATCH /v1/session/{id}: the edited
// full source text. The filename and config are pinned at session
// creation — an edit is the same program, differently written.
type SessionPatchRequest struct {
	// Source is the complete edited Mini-ICC program text.
	Source string `json:"source"`
	// DeadlineMillis bounds this patch end-to-end (0 = server default;
	// clamped to the server maximum).
	DeadlineMillis int64 `json:"deadline_ms,omitempty"`
}

// RunRequest is the body of POST /v1/run: a compilation plus execution
// options.
type RunRequest struct {
	CompileRequest
	// MaxSteps bounds execution (0 means the VM default); the request
	// deadline applies regardless.
	MaxSteps uint64 `json:"max_steps,omitempty"`
	// DisableCache turns the simulated data cache off.
	DisableCache bool `json:"disable_cache,omitempty"`
	// Profile attaches the site profiler; the envelope then carries the
	// run's allocation-site and field-path attribution.
	Profile bool `json:"profile,omitempty"`
	// IncludeOutput returns the program's print output in the envelope
	// (capped at the server's output limit).
	IncludeOutput bool `json:"include_output,omitempty"`
	// Engine selects the execution tier: "vm" (default) or "native",
	// which emits the optimized IR as Go, builds it, and runs the binary,
	// returning real wall-time and allocator measurements in the
	// envelope's native section. Native results are content-addressed and
	// cached like compilations (a native build is far more expensive than
	// a VM run); a cache hit replays the original execution's
	// measurements byte-for-byte. "native" cannot be combined with
	// Profile — site attribution is VM instrumentation.
	Engine string `json:"engine,omitempty"`
	// NativeReps, for the native engine, is how many times the program
	// body executes inside one process for measurement stability (0 means
	// 1; printing is muted after the first repetition). It is part of the
	// native result's cache key.
	NativeReps int `json:"native_reps,omitempty"`
}

// Stable machine-readable error codes (Error.Code).
const (
	// CodeBadRequest marks a malformed or oversized request (400/413).
	CodeBadRequest = "bad_request"
	// CodeCompileError marks source the compiler rejected (422). The
	// verdict is deterministic, so it is cached like a success.
	CodeCompileError = "compile_error"
	// CodeRuntimeError marks a program the VM aborted (422).
	CodeRuntimeError = "runtime_error"
	// CodeDeadlineExceeded marks a request its deadline canceled (504).
	CodeDeadlineExceeded = "deadline_exceeded"
	// CodeOverloaded marks a request shed because the worker queue was
	// full (429, with Retry-After).
	CodeOverloaded = "overloaded"
	// CodeUnknownField marks an explain request for a field the program
	// does not have (404).
	CodeUnknownField = "unknown_field"
	// CodeUnknownSession marks a patch or delete for a session id the
	// server does not hold — never created, expired, or evicted (404).
	CodeUnknownSession = "unknown_session"
	// CodeInternal marks a nondeterministic server-side failure (500) —
	// e.g. the native tier's go toolchain failing. Never cached, so the
	// request can simply be retried.
	CodeInternal = "internal_error"
)

// Error is one structured service failure; Code is one of the Code*
// constants above.
type Error struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// QueueDepth reports how many requests were queued for a worker when
	// this request was shed (CodeOverloaded only) — the signal clients
	// should size their backoff on.
	QueueDepth int64 `json:"queue_depth,omitempty"`
}

// Envelope is the response body every endpoint (and oic -json) emits;
// only the sections the request produced are present. The serialized
// shape is a golden contract on both surfaces.
type Envelope struct {
	File     string                      `json:"file,omitempty"`
	Mode     string                      `json:"mode,omitempty"`
	CodeSize int                         `json:"code_size,omitempty"`
	Inlined  []string                    `json:"inlined,omitempty"`
	Rejected map[string]objinline.Reason `json:"rejected,omitempty"`
	Explain  *objinline.Decision         `json:"explain,omitempty"`
	Stats    *objinline.CompileStats     `json:"stats,omitempty"`
	Metrics  *objinline.Metrics          `json:"metrics,omitempty"`
	Profile  *objinline.RunProfile       `json:"profile,omitempty"`
	// Engine names the execution tier that produced a run response ("vm"
	// or "native"), echoed in the X-Oicd-Engine header as well; Native
	// carries the native tier's real measurements (wall time, build time,
	// Go allocator deltas) in place of Metrics.
	Engine string                   `json:"engine,omitempty"`
	Native *objinline.NativeMetrics `json:"native,omitempty"`
	// Output is the program's print output (run requests with
	// IncludeOutput); OutputTruncated marks it as cut at the server's
	// output cap.
	Output          string `json:"output,omitempty"`
	OutputTruncated bool   `json:"output_truncated,omitempty"`
	// SessionID names the incremental session the response belongs to
	// (session endpoints only).
	SessionID string `json:"session_id,omitempty"`
	// Incremental reports how a session patch was absorbed: the tier
	// (reuse/patch/reopt/solve/cold), the re-lowered functions, and how
	// much analysis work ran (PATCH /v1/session/{id} only).
	Incremental *objinline.IncrementalStats `json:"incremental,omitempty"`
	Error       *Error                      `json:"error,omitempty"`
}
