// Package server implements oicd, the compile-and-explain service: an
// HTTP/JSON front end over the objinline compiler with a
// content-addressed result cache (singleflight-deduplicated, LRU-bounded),
// a bounded worker pool with queue-depth load shedding, and per-request
// deadlines enforced end-to-end through the compiler's fixpoint solvers
// and the VM's step loop.
//
// Endpoints (see docs/SERVER.md for the full API reference):
//
//	POST   /v1/compile      — diagnostics, inlining decisions, CompileStats
//	POST   /v1/explain      — one field's typed Decision with evidence chain
//	POST   /v1/run          — execution: VM counters (optional profile) or
//	                          the native tier's real measurements, with
//	                          optional program output either way
//	POST   /v1/session      — pin an incremental session (cold compile)
//	PATCH  /v1/session/{id} — recompile the session at edited source,
//	                          reusing prior analysis/optimization where the
//	                          edit allows; byte-identical to a cold compile
//	DELETE /v1/session/{id} — release the session
//	GET    /healthz         — liveness
//	GET    /metrics         — this instance's counters as expvar-style JSON
package server

import (
	"context"
	"errors"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"
)

// Config tunes a server instance. Zero values mean defaults.
type Config struct {
	// PoolSize bounds concurrent compiler/VM work (default GOMAXPROCS).
	PoolSize int
	// QueueDepth bounds requests waiting for a worker; beyond it requests
	// are shed with 429 + Retry-After (default 4×PoolSize).
	QueueDepth int
	// CacheEntries bounds the result cache's LRU (default 256).
	CacheEntries int
	// DefaultDeadline applies when a request names none (default 10s).
	DefaultDeadline time.Duration
	// MaxDeadline clamps requested deadlines (default 60s).
	MaxDeadline time.Duration
	// MaxSourceBytes bounds the source field; larger requests get 413
	// (default 1 MiB).
	MaxSourceBytes int
	// MaxOutputBytes caps the program output a run response carries
	// (default 256 KiB); beyond it the envelope sets output_truncated.
	MaxOutputBytes int
	// SessionEntries bounds live incremental sessions (default 64). Each
	// session pins a compiled program plus its analysis result, so this
	// is a memory bound; beyond it the least recently used session is
	// evicted and later patches to it get 404.
	SessionEntries int
	// SessionTTL expires sessions idle this long (default 15m).
	SessionTTL time.Duration
	// NativeCacheEntries bounds the native-run result cache's LRU
	// (default 64). Native executions are content-addressed like
	// compilations — a go build per miss is too expensive to repeat — but
	// each entry also pins an envelope with program output, so the bound
	// is smaller than the compile cache's.
	NativeCacheEntries int
	// AnalysisJobs bounds one request's parallel-solver worker count
	// (default GOMAXPROCS). A request holds a single admission-pool token
	// however many analysis workers it runs, so this cap is what keeps a
	// parallel-solver request from multiplying the pool's concurrency:
	// effective CPU concurrency is at most PoolSize × AnalysisJobs.
	// Requested jobs values above the cap (or 0, meaning "as many as
	// allowed") clamp to it. Clamping never changes results — the solvers
	// are byte-identical at any worker count.
	AnalysisJobs int
}

func (c Config) withDefaults() Config {
	if c.PoolSize <= 0 {
		c.PoolSize = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.PoolSize
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 256
	}
	if c.NativeCacheEntries <= 0 {
		c.NativeCacheEntries = 64
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 10 * time.Second
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 60 * time.Second
	}
	if c.MaxSourceBytes <= 0 {
		c.MaxSourceBytes = 1 << 20
	}
	if c.MaxOutputBytes <= 0 {
		c.MaxOutputBytes = 256 << 10
	}
	if c.AnalysisJobs <= 0 {
		c.AnalysisJobs = runtime.GOMAXPROCS(0)
	}
	if c.SessionEntries <= 0 {
		c.SessionEntries = 64
	}
	if c.SessionTTL <= 0 {
		c.SessionTTL = 15 * time.Minute
	}
	return c
}

// Server is one oicd instance. It is an http.Handler; plug it into any
// http.Server (whose Shutdown gives graceful draining — in-flight
// requests hold the handler goroutine, so Shutdown waits for them).
type Server struct {
	cfg      Config
	results  *cache
	sessions *sessionStore
	mux      *http.ServeMux
	metrics  *metrics

	// nativeRuns caches native executions' response envelopes, keyed by
	// compile key ⊕ run knobs (nativeRunKey). Kept separate from results
	// so native traffic can never evict compilations.
	nativeRuns *cache

	// workers is the bounded pool: holding a token = doing compiler or VM
	// work. queued counts requests waiting for a token; beyond
	// cfg.QueueDepth, acquire sheds instead of queueing.
	workers chan struct{}
	queued  atomic.Int64
}

// New builds a server with cfg (zero values defaulted).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:        cfg,
		results:    newCache(cfg.CacheEntries),
		nativeRuns: newCache(cfg.NativeCacheEntries),
		sessions:   newSessionStore(cfg.SessionEntries, cfg.SessionTTL),
		workers:    make(chan struct{}, cfg.PoolSize),
		mux:        http.NewServeMux(),
	}
	s.metrics = newMetrics(s)
	s.mux.HandleFunc("POST /v1/compile", s.handleCompile)
	s.mux.HandleFunc("POST /v1/explain", s.handleExplain)
	s.mux.HandleFunc("POST /v1/run", s.handleRun)
	s.mux.HandleFunc("POST /v1/session", s.handleSessionCreate)
	s.mux.HandleFunc("PATCH /v1/session/{id}", s.handleSessionPatch)
	s.mux.HandleFunc("DELETE /v1/session/{id}", s.handleSessionDelete)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// Close releases everything the server pins beyond in-flight requests —
// today, the incremental sessions and their compiled programs. Call it
// after http.Server.Shutdown has drained; the handler itself keeps
// working (patches to released sessions get 404).
func (s *Server) Close() { s.sessions.purge() }

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.metrics.requests.Add(1)
	s.metrics.inflight.Add(1)
	defer s.metrics.inflight.Add(-1)
	s.mux.ServeHTTP(w, r)
}

// errOverloaded reports that the wait queue is full and the request must
// be shed.
var errOverloaded = errors.New("server overloaded: worker queue full")

// acquire claims a worker token, queueing up to cfg.QueueDepth waiters.
// It returns errOverloaded when the queue is full and ctx.Err() when the
// request's deadline lands first. Cache hits never call this — only work
// that will occupy a compiler or VM needs a token.
func (s *Server) acquire(ctx context.Context) error {
	select {
	case s.workers <- struct{}{}:
		return nil
	default:
	}
	if s.queued.Add(1) > int64(s.cfg.QueueDepth) {
		s.queued.Add(-1)
		return errOverloaded
	}
	defer s.queued.Add(-1)
	select {
	case s.workers <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *Server) release() { <-s.workers }
