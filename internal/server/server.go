// Package server implements oicd, the compile-and-explain service: an
// HTTP/JSON front end over the objinline compiler with a
// content-addressed result cache (singleflight-deduplicated, LRU-bounded),
// a bounded worker pool with queue-depth load shedding, and per-request
// deadlines enforced end-to-end through the compiler's fixpoint solvers
// and the VM's step loop.
//
// Endpoints (see docs/SERVER.md for the full API reference):
//
//	POST   /v1/compile      — diagnostics, inlining decisions, CompileStats
//	POST   /v1/explain      — one field's typed Decision with evidence chain
//	POST   /v1/run          — execution: VM counters (optional profile) or
//	                          the native tier's real measurements, with
//	                          optional program output either way
//	POST   /v1/session      — pin an incremental session (cold compile)
//	PATCH  /v1/session/{id} — recompile the session at edited source,
//	                          reusing prior analysis/optimization where the
//	                          edit allows; byte-identical to a cold compile
//	DELETE /v1/session/{id} — release the session
//	GET    /healthz         — liveness + readiness: build info, uptime,
//	                          503 while draining so load balancers stop
//	                          routing before the listener closes
//	GET    /metrics         — this instance's counters as expvar-style
//	                          JSON (with server-computed latency
//	                          percentiles), or Prometheus text exposition
//	                          with ?format=prometheus
//	GET    /debug/requests  — the last N requests (id, route, status,
//	                          cache/engine/tier, queue wait, duration)
//	GET    /debug/requests/{id}/trace — one request's span tree as a
//	                          Chrome trace (Perfetto-loadable)
//	GET    /debug/requests/trace — every buffered request on one shared
//	                          timeline
//
// Every response carries X-Oicd-Request-Id (honored from the request
// when present, minted otherwise), request latency lands in log-bucketed
// histograms keyed {endpoint, cache status, engine, session tier}, and
// each request records a span tree — HTTP span, admission wait, compile
// phases, VM/native execution — into a bounded in-memory ring
// (internal/obs, DESIGN.md §14).
package server

import (
	"context"
	"errors"
	"log/slog"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	"objinline"
	"objinline/internal/cluster"
	"objinline/internal/obs"
	"objinline/internal/trace"
)

// Config tunes a server instance. Zero values mean defaults.
type Config struct {
	// PoolSize bounds concurrent compiler/VM work (default GOMAXPROCS).
	PoolSize int
	// QueueDepth bounds requests waiting for a worker; beyond it requests
	// are shed with 429 + Retry-After (default 4×PoolSize).
	QueueDepth int
	// CacheEntries bounds the result cache's LRU (default 256).
	CacheEntries int
	// DefaultDeadline applies when a request names none (default 10s).
	DefaultDeadline time.Duration
	// MaxDeadline clamps requested deadlines (default 60s).
	MaxDeadline time.Duration
	// MaxSourceBytes bounds the source field; larger requests get 413
	// (default 1 MiB).
	MaxSourceBytes int
	// MaxOutputBytes caps the program output a run response carries
	// (default 256 KiB); beyond it the envelope sets output_truncated.
	MaxOutputBytes int
	// SessionEntries bounds live incremental sessions (default 64). Each
	// session pins a compiled program plus its analysis result, so this
	// is a memory bound; beyond it the least recently used session is
	// evicted and later patches to it get 404.
	SessionEntries int
	// SessionTTL expires sessions idle this long (default 15m).
	SessionTTL time.Duration
	// NativeCacheEntries bounds the native-run result cache's LRU
	// (default 64). Native executions are content-addressed like
	// compilations — a go build per miss is too expensive to repeat — but
	// each entry also pins an envelope with program output, so the bound
	// is smaller than the compile cache's.
	NativeCacheEntries int
	// AnalysisJobs bounds one request's parallel-solver worker count
	// (default GOMAXPROCS). A request holds a single admission-pool token
	// however many analysis workers it runs, so this cap is what keeps a
	// parallel-solver request from multiplying the pool's concurrency:
	// effective CPU concurrency is at most PoolSize × AnalysisJobs.
	// Requested jobs values above the cap (or 0, meaning "as many as
	// allowed") clamp to it. Clamping never changes results — the solvers
	// are byte-identical at any worker count.
	AnalysisJobs int
	// RequestRingEntries bounds the per-request trace ring buffer behind
	// GET /debug/requests (default 128; negative disables per-request
	// tracing and the ring — request ids, histograms, and access logs
	// still work).
	RequestRingEntries int
	// AccessLog receives one structured record per request (request id,
	// method, route, status, cache status, tier, engine, queue wait,
	// duration, bytes) at Info level. nil disables access logging; the
	// disabled path costs one nil check and zero allocations.
	AccessLog *slog.Logger
	// Cluster, when non-nil, puts this instance on a consistent-hash ring:
	// compile/explain/run requests whose content-addressed key another
	// instance owns are forwarded there (with hedged reads), so the
	// owner's in-process singleflight dedups compiles cluster-wide. The
	// caller owns the Cluster's lifecycle (Start before serving, Close
	// after). See docs/CLUSTER.md.
	Cluster *cluster.Cluster
	// Disk, when non-nil, is the persistent cache tier: completed compile
	// envelopes are appended to its WAL, and its replayed records seed the
	// result cache at New so a restart comes up warm. The caller opens the
	// store; Close compacts and closes it.
	Disk *cluster.Store
	// DisableHedge turns off hedged reads on forwards (for benchmarks
	// isolating the hedging policy; default off = hedging on).
	DisableHedge bool
}

func (c Config) withDefaults() Config {
	if c.PoolSize <= 0 {
		c.PoolSize = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.PoolSize
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 256
	}
	if c.NativeCacheEntries <= 0 {
		c.NativeCacheEntries = 64
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 10 * time.Second
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 60 * time.Second
	}
	if c.MaxSourceBytes <= 0 {
		c.MaxSourceBytes = 1 << 20
	}
	if c.MaxOutputBytes <= 0 {
		c.MaxOutputBytes = 256 << 10
	}
	if c.AnalysisJobs <= 0 {
		c.AnalysisJobs = runtime.GOMAXPROCS(0)
	}
	if c.SessionEntries <= 0 {
		c.SessionEntries = 64
	}
	if c.SessionTTL <= 0 {
		c.SessionTTL = 15 * time.Minute
	}
	return c
}

// Server is one oicd instance. It is an http.Handler; plug it into any
// http.Server (whose Shutdown gives graceful draining — in-flight
// requests hold the handler goroutine, so Shutdown waits for them).
type Server struct {
	cfg      Config
	results  *cache
	sessions *sessionStore
	mux      *http.ServeMux
	metrics  *metrics

	// obs is the service observability layer; handler wraps mux with its
	// middleware (request ids, histograms, ring, access log).
	obs     *obs.Obs
	handler http.Handler
	// start anchors /healthz's uptime; draining flips /healthz to 503
	// (set by BeginDrain when shutdown starts).
	start    time.Time
	draining atomic.Bool

	// nativeRuns caches native executions' response envelopes, keyed by
	// compile key ⊕ run knobs (nativeRunKey). Kept separate from results
	// so native traffic can never evict compilations.
	nativeRuns *cache

	// workers is the bounded pool: holding a token = doing compiler or VM
	// work. queued counts requests waiting for a token; beyond
	// cfg.QueueDepth, acquire sheds instead of queueing.
	workers chan struct{}
	queued  atomic.Int64

	// svcRate tracks recent completion throughput; 429 responses derive
	// their Retry-After from it (queue depth / service rate).
	svcRate *rateEstimator

	// Distributed tier (all nil/zero on a standalone instance): cluster
	// routes keys to owners, disk is the WAL-backed warm cache, fwdLat
	// feeds the hedge delay with observed forward latencies, compacting
	// guards the single background compaction, batcher coalesces
	// concurrent native builds into one toolchain invocation.
	cluster    *cluster.Cluster
	disk       *cluster.Store
	fwdLat     *obs.HistogramVec
	compacting atomic.Bool
	batcher    *objinline.NativeBatcher
}

// New builds a server with cfg (zero values defaulted).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:        cfg,
		results:    newCache(cfg.CacheEntries),
		nativeRuns: newCache(cfg.NativeCacheEntries),
		sessions:   newSessionStore(cfg.SessionEntries, cfg.SessionTTL),
		workers:    make(chan struct{}, cfg.PoolSize),
		mux:        http.NewServeMux(),
		start:      time.Now(),
		svcRate:    newRateEstimator(),
		cluster:    cfg.Cluster,
		disk:       cfg.Disk,
		fwdLat:     obs.NewHistogramVec(),
		batcher:    objinline.NewNativeBatcher(),
	}
	s.seedFromDisk()
	s.obs = obs.New(obs.Options{RingEntries: cfg.RequestRingEntries, Logger: cfg.AccessLog})
	s.metrics = newMetrics(s)
	s.mux.HandleFunc("POST /v1/compile", s.handleCompile)
	s.mux.HandleFunc("POST /v1/explain", s.handleExplain)
	s.mux.HandleFunc("POST /v1/run", s.handleRun)
	s.mux.HandleFunc("POST /v1/session", s.handleSessionCreate)
	s.mux.HandleFunc("PATCH /v1/session/{id}", s.handleSessionPatch)
	s.mux.HandleFunc("DELETE /v1/session/{id}", s.handleSessionDelete)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.obs.Mount(s.mux)
	s.handler = s.obs.Middleware(s.mux)
	return s
}

// DebugHandler returns the separate debug surface — net/http/pprof plus
// the request-introspection endpoints — meant for its own listener
// (oicd's -debug-addr), never the serving port.
func (s *Server) DebugHandler() http.Handler { return s.obs.DebugHandler() }

// BeginDrain flips /healthz to 503 so load balancers stop routing here.
// Call it when shutdown starts, before http.Server.Shutdown closes the
// listener: probes over kept-alive connections see "draining" while
// in-flight requests finish.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Close releases everything the server pins beyond in-flight requests —
// the incremental sessions and their compiled programs — and, when a
// disk tier is attached, compacts it so the next boot replays one dense
// snapshot instead of the whole WAL. Call it after http.Server.Shutdown
// has drained; the handler itself keeps working (patches to released
// sessions get 404). The disk store itself stays open for the caller to
// Close (it owns the store's lifecycle, as with Config.Cluster).
func (s *Server) Close() {
	s.sessions.purge()
	if s.disk != nil {
		s.compactDisk()
	}
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.metrics.requests.Add(1)
	s.metrics.inflight.Add(1)
	defer s.metrics.inflight.Add(-1)
	s.handler.ServeHTTP(w, r)
}

// errOverloaded reports that the wait queue is full and the request must
// be shed.
var errOverloaded = errors.New("server overloaded: worker queue full")

// acquire claims a worker token, queueing up to cfg.QueueDepth waiters.
// It returns errOverloaded when the queue is full and ctx.Err() when the
// request's deadline lands first. Cache hits never call this — only work
// that will occupy a compiler or VM needs a token.
func (s *Server) acquire(ctx context.Context) error {
	select {
	case s.workers <- struct{}{}:
		return nil
	default:
	}
	if s.queued.Add(1) > int64(s.cfg.QueueDepth) {
		s.queued.Add(-1)
		return errOverloaded
	}
	defer s.queued.Add(-1)
	// The fast path missed: this request is actually waiting, which is
	// worth a span on its trace and a queue-wait figure in its access-log
	// record. All of it is nil-safe when the request carries no
	// observability state (library callers, tracing disabled).
	req := obs.FromContext(ctx)
	var (
		span trace.Span
		t0   time.Time
	)
	if req != nil {
		span = req.Sink.Start(obs.SpanAdmission)
		t0 = time.Now()
	}
	defer func() {
		if req != nil {
			span.End()
			req.QueueWait += time.Since(t0)
		}
	}()
	select {
	case s.workers <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// release returns the worker token and counts the completion into the
// service-rate estimator that prices Retry-After.
func (s *Server) release() {
	<-s.workers
	s.svcRate.record()
}
