package server

import (
	"expvar"

	"objinline"
)

// metrics is one server instance's counter set, served as the JSON body of
// GET /metrics. Each Server owns its own expvar.Map instead of publishing
// process-global vars, so several servers in one process (the tests, the
// load generator) never collide in the global expvar registry.
type metrics struct {
	vars *expvar.Map

	requests         expvar.Int // requests_total
	compiles         expvar.Int // compiles_total: compiles actually executed (cache misses that ran)
	runs             expvar.Int // runs_total: VM executions
	nativeRuns       expvar.Int // native_runs_total: native build-and-run executions (cache misses that ran)
	shed             expvar.Int // shed_total: requests rejected with 429
	deadlineExceeded expvar.Int // deadline_exceeded_total: requests that hit their deadline
	inflight         expvar.Int // gauge: requests currently being served
}

func newMetrics(s *Server) *metrics {
	m := &metrics{vars: new(expvar.Map).Init()}
	m.vars.Set("requests_total", &m.requests)
	m.vars.Set("compiles_total", &m.compiles)
	m.vars.Set("runs_total", &m.runs)
	m.vars.Set("native_runs_total", &m.nativeRuns)
	m.vars.Set("shed_total", &m.shed)
	m.vars.Set("deadline_exceeded_total", &m.deadlineExceeded)
	m.vars.Set("inflight", &m.inflight)
	m.vars.Set("workers_busy", expvar.Func(func() any { return len(s.workers) }))
	m.vars.Set("queue_depth", expvar.Func(func() any { return s.queued.Load() }))
	m.vars.Set("cache_entries", expvar.Func(func() any {
		n, _, _, _ := s.results.snapshot()
		return n
	}))
	m.vars.Set("cache_hits_total", expvar.Func(func() any {
		_, hits, _, _ := s.results.snapshot()
		return hits
	}))
	m.vars.Set("cache_misses_total", expvar.Func(func() any {
		_, _, misses, _ := s.results.snapshot()
		return misses
	}))
	m.vars.Set("cache_evictions_total", expvar.Func(func() any {
		_, _, _, ev := s.results.snapshot()
		return ev
	}))
	m.vars.Set("native_cache_entries", expvar.Func(func() any {
		n, _, _, _ := s.nativeRuns.snapshot()
		return n
	}))
	m.vars.Set("native_cache_hits_total", expvar.Func(func() any {
		_, hits, _, _ := s.nativeRuns.snapshot()
		return hits
	}))
	m.vars.Set("native_cache_misses_total", expvar.Func(func() any {
		_, _, misses, _ := s.nativeRuns.snapshot()
		return misses
	}))
	m.vars.Set("sessions_active", expvar.Func(func() any {
		n, _, _, _, _, _ := s.sessions.snapshot()
		return n
	}))
	m.vars.Set("sessions_created_total", expvar.Func(func() any {
		_, creates, _, _, _, _ := s.sessions.snapshot()
		return creates
	}))
	m.vars.Set("session_patches_total", expvar.Func(func() any {
		_, _, patches, _, _, _ := s.sessions.snapshot()
		return patches
	}))
	m.vars.Set("session_evictions_total", expvar.Func(func() any {
		_, _, _, ev, _, _ := s.sessions.snapshot()
		return ev
	}))
	m.vars.Set("session_expirations_total", expvar.Func(func() any {
		_, _, _, _, exp, _ := s.sessions.snapshot()
		return exp
	}))
	// Patches by the tier that absorbed them — the service-level view of
	// how much incremental reuse clients are getting. Flat keys keep the
	// /metrics body a single level of numbers.
	for _, tier := range []string{
		objinline.TierReuse, objinline.TierPatch, objinline.TierReopt,
		objinline.TierSolve, objinline.TierCold,
	} {
		tier := tier
		m.vars.Set("session_patch_tier_"+tier+"_total", expvar.Func(func() any {
			_, _, _, _, _, tiers := s.sessions.snapshot()
			return tiers[tier]
		}))
	}
	return m
}
