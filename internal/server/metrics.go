package server

import (
	"expvar"
	"strings"

	"objinline"
	"objinline/internal/obs"
)

// metrics is one server instance's counter set, served as the JSON body of
// GET /metrics. Each Server owns its own expvar.Map instead of publishing
// process-global vars, so several servers in one process (the tests, the
// load generator) never collide in the global expvar registry.
type metrics struct {
	vars *expvar.Map

	requests         expvar.Int // requests_total
	compiles         expvar.Int // compiles_total: compiles actually executed (cache misses that ran)
	runs             expvar.Int // runs_total: VM executions
	nativeRuns       expvar.Int // native_runs_total: native build-and-run executions (cache misses that ran)
	shed             expvar.Int // shed_total: requests rejected with 429
	deadlineExceeded expvar.Int // deadline_exceeded_total: requests that hit their deadline
	inflight         expvar.Int // gauge: requests currently being served

	// Cluster tier.
	forwards         expvar.Int // forwards_total: requests forwarded to the key's owner
	forwardErrors    expvar.Int // forward_errors_total: forward attempts that failed
	forwardFallbacks expvar.Int // forward_local_fallback_total: forwards abandoned for local compute
	hedges           expvar.Int // hedges_total: hedged second requests launched
	hedgeWins        expvar.Int // hedge_wins_total: hedges that answered first
	diskUpgrades     expvar.Int // disk_upgrades_total: disk-seeded entries recompiled on demand
}

func newMetrics(s *Server) *metrics {
	m := &metrics{vars: new(expvar.Map).Init()}
	m.vars.Set("requests_total", &m.requests)
	m.vars.Set("compiles_total", &m.compiles)
	m.vars.Set("runs_total", &m.runs)
	m.vars.Set("native_runs_total", &m.nativeRuns)
	m.vars.Set("shed_total", &m.shed)
	m.vars.Set("deadline_exceeded_total", &m.deadlineExceeded)
	m.vars.Set("inflight", &m.inflight)
	m.vars.Set("forwards_total", &m.forwards)
	m.vars.Set("forward_errors_total", &m.forwardErrors)
	m.vars.Set("forward_local_fallback_total", &m.forwardFallbacks)
	m.vars.Set("hedges_total", &m.hedges)
	m.vars.Set("hedge_wins_total", &m.hedgeWins)
	m.vars.Set("disk_upgrades_total", &m.diskUpgrades)
	m.vars.Set("workers_busy", expvar.Func(func() any { return len(s.workers) }))
	m.vars.Set("queue_depth", expvar.Func(func() any { return s.queued.Load() }))
	m.vars.Set("cache_entries", expvar.Func(func() any {
		n, _, _, _ := s.results.snapshot()
		return n
	}))
	m.vars.Set("cache_hits_total", expvar.Func(func() any {
		_, hits, _, _ := s.results.snapshot()
		return hits
	}))
	m.vars.Set("cache_misses_total", expvar.Func(func() any {
		_, _, misses, _ := s.results.snapshot()
		return misses
	}))
	m.vars.Set("cache_evictions_total", expvar.Func(func() any {
		_, _, _, ev := s.results.snapshot()
		return ev
	}))
	m.vars.Set("native_cache_entries", expvar.Func(func() any {
		n, _, _, _ := s.nativeRuns.snapshot()
		return n
	}))
	m.vars.Set("native_cache_hits_total", expvar.Func(func() any {
		_, hits, _, _ := s.nativeRuns.snapshot()
		return hits
	}))
	m.vars.Set("native_cache_misses_total", expvar.Func(func() any {
		_, _, misses, _ := s.nativeRuns.snapshot()
		return misses
	}))
	// Resident body bytes per cache: the occupancy signal behind the
	// entry-count gauges. O(entries) per scrape, bounded by the LRU max.
	m.vars.Set("cache_bytes", expvar.Func(func() any { return s.results.bytesResident() }))
	m.vars.Set("native_cache_bytes", expvar.Func(func() any { return s.nativeRuns.bytesResident() }))
	// Disk tier sizes and lifetime counters. Registered unconditionally so
	// the exposition shape does not depend on configuration; all zeros when
	// the server runs without a cache dir.
	diskStats := func() (st struct {
		WALBytes, SnapshotBytes, Appends, Replayed, CorruptTails, Compactions int64
	}) {
		if s.disk == nil {
			return st
		}
		d := s.disk.Stats()
		st.WALBytes, st.SnapshotBytes = d.WALBytes, d.SnapshotBytes
		st.Appends, st.Replayed = d.Appends, d.Replayed
		st.CorruptTails, st.Compactions = d.CorruptTails, d.Compactions
		return st
	}
	m.vars.Set("disk_wal_bytes", expvar.Func(func() any { return diskStats().WALBytes }))
	m.vars.Set("disk_snapshot_bytes", expvar.Func(func() any { return diskStats().SnapshotBytes }))
	m.vars.Set("disk_appends_total", expvar.Func(func() any { return diskStats().Appends }))
	m.vars.Set("disk_replayed_total", expvar.Func(func() any { return diskStats().Replayed }))
	m.vars.Set("disk_corrupt_tails_total", expvar.Func(func() any { return diskStats().CorruptTails }))
	m.vars.Set("disk_compactions_total", expvar.Func(func() any { return diskStats().Compactions }))
	m.vars.Set("cluster_peers_up", expvar.Func(func() any {
		if s.cluster == nil {
			return 0
		}
		up, _ := s.cluster.PeersUp()
		return up
	}))
	m.vars.Set("cluster_peers_total", expvar.Func(func() any {
		if s.cluster == nil {
			return 0
		}
		_, total := s.cluster.PeersUp()
		return total
	}))
	m.vars.Set("cluster_transitions_total", expvar.Func(func() any {
		if s.cluster == nil {
			return int64(0)
		}
		return s.cluster.Transitions()
	}))
	m.vars.Set("native_batch_invocations_total", expvar.Func(func() any {
		if s.batcher == nil {
			return int64(0)
		}
		return s.batcher.ToolchainInvocations()
	}))
	m.vars.Set("native_batched_programs_total", expvar.Func(func() any {
		if s.batcher == nil {
			return int64(0)
		}
		return s.batcher.BatchedPrograms()
	}))
	m.vars.Set("sessions_active", expvar.Func(func() any {
		n, _, _, _, _, _ := s.sessions.snapshot()
		return n
	}))
	m.vars.Set("sessions_created_total", expvar.Func(func() any {
		_, creates, _, _, _, _ := s.sessions.snapshot()
		return creates
	}))
	m.vars.Set("session_patches_total", expvar.Func(func() any {
		_, _, patches, _, _, _ := s.sessions.snapshot()
		return patches
	}))
	m.vars.Set("session_evictions_total", expvar.Func(func() any {
		_, _, _, ev, _, _ := s.sessions.snapshot()
		return ev
	}))
	m.vars.Set("session_expirations_total", expvar.Func(func() any {
		_, _, _, _, exp, _ := s.sessions.snapshot()
		return exp
	}))
	// Patches by the tier that absorbed them — the service-level view of
	// how much incremental reuse clients are getting. Flat keys keep the
	// /metrics body a single level of numbers.
	for _, tier := range []string{
		objinline.TierReuse, objinline.TierPatch, objinline.TierReopt,
		objinline.TierSolve, objinline.TierCold,
	} {
		tier := tier
		m.vars.Set("session_patch_tier_"+tier+"_total", expvar.Func(func() any {
			_, _, _, _, _, tiers := s.sessions.snapshot()
			return tiers[tier]
		}))
	}
	// Server-computed latency percentiles per endpoint, aggregated across
	// cache status, engine, and tier. Flat keys (the /metrics body is one
	// level of numbers by contract) in nanoseconds, estimated from the
	// same log-bucketed histograms the Prometheus exposition serves — a
	// client comparing the two sources compares estimators, not data.
	for _, ep := range metricsEndpoints {
		ep := ep
		base := "latency_" + flatEndpointKey(ep) + "_"
		for _, pq := range []struct {
			suffix string
			q      float64
		}{{"p50_ns", 0.50}, {"p95_ns", 0.95}, {"p99_ns", 0.99}} {
			pq := pq
			m.vars.Set(base+pq.suffix, expvar.Func(func() any {
				return int64(s.obs.Latency().Endpoint(ep).Quantile(pq.q))
			}))
		}
	}
	return m
}

// metricsEndpoints are the route patterns given latency-percentile keys in
// /metrics (histogram labels use the same strings; see obs.routeOf).
var metricsEndpoints = []string{
	"/v1/compile", "/v1/explain", "/v1/run",
	"/v1/session", "/v1/session/{id}",
}

// flatEndpointKey turns a route pattern into an expvar-key fragment:
// "/v1/session/{id}" -> "v1_session_id".
func flatEndpointKey(ep string) string {
	r := strings.NewReplacer("/", "_", "{", "", "}", "")
	return r.Replace(strings.TrimPrefix(ep, "/"))
}

// promGauges marks the point-in-time counters for the Prometheus
// exposition; everything else in the expvar map is monotonic.
var promGauges = map[string]bool{
	"inflight":             true,
	"workers_busy":         true,
	"queue_depth":          true,
	"cache_entries":        true,
	"cache_bytes":          true,
	"native_cache_entries": true,
	"native_cache_bytes":   true,
	"sessions_active":      true,
	"disk_wal_bytes":       true,
	"disk_snapshot_bytes":  true,
	"cluster_peers_up":     true,
	"cluster_peers_total":  true,
}

// promCounters snapshots the flat expvar counters for the Prometheus
// exposition. Latency keys are excluded — the histogram series carries
// that data with full fidelity.
func (m *metrics) promCounters() []obs.CounterValue {
	var out []obs.CounterValue
	m.vars.Do(func(kv expvar.KeyValue) {
		if strings.HasPrefix(kv.Key, "latency_") {
			return
		}
		var v float64
		switch x := kv.Value.(type) {
		case *expvar.Int:
			v = float64(x.Value())
		case expvar.Func:
			switch n := x.Value().(type) {
			case int:
				v = float64(n)
			case int64:
				v = float64(n)
			case float64:
				v = n
			default:
				return
			}
		default:
			return
		}
		out = append(out, obs.CounterValue{Name: kv.Key, Value: v, Gauge: promGauges[kv.Key]})
	})
	return out
}
