package server

// The server half of the distributed tier (internal/cluster holds the
// ring, membership, and disk store; this file is where requests meet
// them):
//
//   - forwardIfRemote proxies a request whose content-addressed key is
//     owned by another instance to that owner, so the owner's in-process
//     singleflight becomes cluster-wide dedup. The proxied response is
//     written verbatim — byte-identity holds across front-ends.
//   - After a p95-derived delay a hedged read fires to the key's next
//     ring replica; first answer wins and the loser is cancelled. A fired
//     hedge can duplicate a compile on purpose: tail latency is bought
//     with bounded extra work (hedges fire on ~5% of forwards by
//     construction).
//   - If both owner and hedge replica are unreachable the front-end
//     compiles locally — the compiler is deterministic, so availability
//     costs no correctness.
//   - persist/seed move completed compile envelopes through the WAL-backed
//     disk store so a restart comes up warm; entryProgram lazily rebuilds
//     the *Program behind a disk-seeded entry when explain/run need one.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"time"

	"objinline"
	"objinline/internal/cluster"
	"objinline/internal/obs"
	"objinline/internal/trace"
)

const (
	// headerForwarded marks a request already proxied once; its receiver
	// always serves locally, so forwarding can never loop.
	headerForwarded = "X-Oicd-Forwarded"
	// headerOwner names the instance that owns (or served) the request's
	// key — how operators and the failover smoke test find a key's home.
	headerOwner = "X-Oicd-Owner"
	// headerHedge marks a response won by the hedged replica read rather
	// than the primary forward.
	headerHedge = "X-Oicd-Hedge"
)

// hedgeDefaultDelay is the hedge trigger before the forward-latency
// histogram has enough samples to estimate a p95.
const hedgeDefaultDelay = 50 * time.Millisecond

// hedgeMinSamples is how many forward latencies must be observed before
// the p95 estimate replaces the default delay.
const hedgeMinSamples = 16

// hedgeDelay returns how long the primary forward to an owner runs alone
// before a hedged read fires to the next replica: the p95 of observed
// forward latencies for this endpoint, so hedges fire on roughly the
// slowest 5% of forwards.
func (s *Server) hedgeDelay(endpoint string) time.Duration {
	snap := s.fwdLat.Endpoint(endpoint)
	if snap.Count < hedgeMinSamples {
		return hedgeDefaultDelay
	}
	d := snap.Quantile(0.95)
	if d <= 0 {
		return hedgeDefaultDelay
	}
	return d
}

// forwardIfRemote routes a prepared request to its key's owner when that
// owner is another instance. It returns true when it wrote the response
// (the request was served remotely) and false when the caller should
// proceed locally — because clustering is off, this instance owns the
// key, the request already is a forward, or every remote replica failed
// (availability fallback: local compile).
func (s *Server) forwardIfRemote(w http.ResponseWriter, r *http.Request, p *prepared, endpoint string, payload any) bool {
	if s.cluster == nil {
		return false
	}
	if r.Header.Get(headerForwarded) != "" {
		// Final hop: we own this key as far as the sender could tell.
		w.Header().Set(headerOwner, s.cluster.SelfURL())
		return false
	}
	route := s.cluster.RouteKey(p.key)
	if route.Local {
		w.Header().Set(headerOwner, s.cluster.SelfURL())
		return false
	}
	body, err := json.Marshal(payload)
	if err != nil {
		return false // unreachable for the wire structs; compile locally
	}
	if s.forward(w, r, p, endpoint, body, route) {
		return true
	}
	// Owner (and hedge replica, if any) unreachable: serve locally so the
	// cluster degrades to extra work, not errors. The local compile is
	// deterministic, so the response bytes still match the owner's.
	s.metrics.forwardFallbacks.Add(1)
	w.Header().Set(headerOwner, s.cluster.SelfURL())
	return false
}

// fwdResult is one forward attempt's outcome.
type fwdResult struct {
	resp    *http.Response
	err     error
	hedge   bool
	started time.Time
}

// forward proxies the request to route.Owner, hedging to the next
// distinct replica after hedgeDelay. It returns true once a response has
// been written; false means every attempt failed to produce an HTTP
// response and the caller should fall back.
func (s *Server) forward(w http.ResponseWriter, r *http.Request, p *prepared, endpoint string, body []byte, route cluster.Route) bool {
	oreq := obs.FromContext(r.Context())
	var span trace.Span
	if oreq != nil {
		span = oreq.Sink.Start(obs.SpanForward)
	}
	defer span.End()
	s.metrics.forwards.Add(1)

	// Pick the hedge target: the first replica after the owner that is
	// neither the owner nor this instance.
	hedgeTarget := ""
	for _, rep := range route.Replicas[1:] {
		if rep != route.Owner && rep != s.cluster.SelfURL() {
			hedgeTarget = rep
			break
		}
	}

	// Both attempts share one cancel scope bounded by the request
	// deadline; the loser is cancelled as soon as a winner is chosen.
	ctx, cancel := context.WithCancel(p.ctx)
	results := make(chan fwdResult, 2) // buffered: attempts never block
	outstanding := 1
	go s.attempt(ctx, r, route.Owner, endpoint, body, false, results)

	var hedgeTimer *time.Timer
	var hedgeC <-chan time.Time
	if hedgeTarget != "" && !s.cfg.DisableHedge {
		hedgeTimer = time.NewTimer(s.hedgeDelay(endpoint))
		hedgeC = hedgeTimer.C
		defer hedgeTimer.Stop()
	}

	// reap cancels any attempt still in flight and drains its result so
	// the transport's connection (and the attempt goroutine) is released —
	// the test suite counts goroutines, and a leaked hedge would fail it.
	reap := func(n int) {
		cancel()
		if n == 0 {
			return
		}
		go func() {
			for i := 0; i < n; i++ {
				res := <-results
				if res.resp != nil {
					io.Copy(io.Discard, res.resp.Body)
					res.resp.Body.Close()
				}
			}
		}()
	}

	for {
		select {
		case res := <-results:
			outstanding--
			if res.err != nil {
				s.metrics.forwardErrors.Add(1)
				if outstanding > 0 {
					continue // the other attempt may still answer
				}
				reap(0)
				return false
			}
			// First completed HTTP response wins — the owner's answer is
			// authoritative whatever its status (a cached 422 is as final
			// as a 200).
			s.fwdLat.Observe(obs.Labels{Endpoint: endpoint}, time.Since(res.started))
			if res.hedge {
				s.metrics.hedgeWins.Add(1)
				w.Header().Set(headerHedge, "1")
				if oreq != nil {
					oreq.Sink.Start(obs.SpanHedge).End()
				}
			}
			// Stream the winner before cancelling the shared context: the
			// winner's body read rides the same context, so reaping first
			// would truncate any response not yet fully buffered.
			s.writeForwarded(w, res.resp, route.Owner)
			reap(outstanding)
			return true
		case <-hedgeC:
			hedgeC = nil
			s.metrics.hedges.Add(1)
			outstanding++
			go s.attempt(ctx, r, hedgeTarget, endpoint, body, true, results)
		case <-p.ctx.Done():
			// Deadline while forwarding: fall back to the local path, whose
			// admission check will turn the dead context into the usual 504.
			reap(outstanding)
			return false
		}
	}
}

// attempt runs one proxied request and delivers its outcome. The results
// channel is buffered for every attempt, so this never blocks after the
// caller has moved on.
func (s *Server) attempt(ctx context.Context, src *http.Request, target, endpoint string, body []byte, hedge bool, results chan<- fwdResult) {
	started := time.Now()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, target+endpoint, bytes.NewReader(body))
	if err != nil {
		results <- fwdResult{err: err, hedge: hedge, started: started}
		return
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(headerForwarded, "1")
	if id := src.Header.Get(obs.RequestIDHeader); id != "" {
		// Propagate the caller's request id so the owner's trace ring and
		// access log correlate with this front-end's.
		req.Header.Set(obs.RequestIDHeader, id)
	}
	resp, err := s.cluster.Client().Do(req)
	results <- fwdResult{resp: resp, err: err, hedge: hedge, started: started}
}

// writeForwarded proxies the winning response to the client verbatim:
// same status, same body bytes (byte-identity across front-ends), and
// the response headers a client of this instance would rely on.
func (s *Server) writeForwarded(w http.ResponseWriter, resp *http.Response, owner string) {
	defer resp.Body.Close()
	for _, h := range []string{
		"Content-Type", "Content-Length", "Retry-After",
		"X-Oicd-Cache", "X-Oicd-Cache-Key", "X-Oicd-Run-Cache", "X-Oicd-Engine",
	} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	if v := resp.Header.Get(headerOwner); v != "" {
		w.Header().Set(headerOwner, v)
	} else {
		w.Header().Set(headerOwner, owner)
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

// persist appends a freshly completed compile entry to the disk tier.
// Only settled compile results go to disk: 200s and deterministic 422s.
// Transient statuses (shed 429s, deadline 504s) are never persisted —
// replaying those after a restart would be serving yesterday's overload.
func (s *Server) persist(e *entry) {
	if s.disk == nil {
		return
	}
	if e.status != http.StatusOK && e.status != http.StatusUnprocessableEntity {
		return
	}
	compact, err := s.disk.Append(cluster.Record{Key: e.key, Status: e.status, Body: e.body})
	if err != nil {
		s.diskLog().Warn("oicd: disk cache append failed", "err", err)
		return
	}
	if compact {
		s.scheduleCompact()
	}
}

// scheduleCompact starts one background compaction unless one is already
// running. Compaction rewrites the snapshot from the in-memory LRU's
// live set, so the disk tier inherits the memory tier's size bound.
func (s *Server) scheduleCompact() {
	if !s.compacting.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer s.compacting.Store(false)
		s.compactDisk()
	}()
}

// compactDisk rewrites the disk tier's snapshot from the current cache
// contents. Entries appended after the live set was captured stay in
// memory and re-persist at the next compaction (the disk tier is a
// cache, not a log of record).
func (s *Server) compactDisk() {
	if s.disk == nil {
		return
	}
	live := s.results.live()
	recs := make([]cluster.Record, 0, len(live))
	for _, e := range live {
		if e.status == http.StatusOK || e.status == http.StatusUnprocessableEntity {
			recs = append(recs, cluster.Record{Key: e.key, Status: e.status, Body: e.body})
		}
	}
	if err := s.disk.Compact(recs); err != nil {
		s.diskLog().Warn("oicd: disk cache compaction failed", "err", err)
	}
}

// seedFromDisk replays the disk store's recovered records into the
// result cache, so the instance answers warm from its first request.
// Seeded entries replay their envelopes byte-identically; explain/run
// recompile behind them on demand (entryProgram).
func (s *Server) seedFromDisk() {
	if s.disk == nil {
		return
	}
	for _, rec := range s.disk.Replay() {
		s.results.seed(rec.Key, rec.Status, rec.Body)
	}
}

func (s *Server) diskLog() *slog.Logger {
	if s.cfg.AccessLog != nil {
		return s.cfg.AccessLog
	}
	return slog.Default()
}

// entryProgram returns the compiled program behind a completed cache
// entry, rebuilding it for disk-seeded entries: the disk tier persists
// response bytes, not compiler state, so the first explain/run against a
// replayed key recompiles once (under a worker token) and caches the
// program on the entry. Returns ok=false after writing an error
// response. The caller must know e succeeded (!e.failed()).
func (s *Server) entryProgram(w http.ResponseWriter, p *prepared, e *entry) (*objinline.Program, bool) {
	if !e.fromDisk {
		return e.prog, true
	}
	// progMu serializes the upgrade AND orders this read against a
	// concurrent upgrade's write (done closed at seed time, so the usual
	// happens-before edge is long gone).
	e.progMu.Lock()
	defer e.progMu.Unlock()
	if e.prog != nil {
		return e.prog, true
	}
	if err := s.acquire(p.ctx); err != nil {
		s.writeAdmissionError(w, err)
		return nil, false
	}
	defer s.release()
	s.metrics.diskUpgrades.Add(1)
	prog, err := objinline.CompileContext(p.ctx, p.filename, p.source, p.cfg)
	if err != nil {
		// The persisted status was 200, so the source compiles; this is a
		// deadline (or a config/version skew so deep the replayed entry is
		// lies — surface it rather than guessing).
		s.writeCompileError(w, p.filename, err)
		return nil, false
	}
	e.prog = prog
	e.stats = prog.CompileStats()
	return prog, true
}

// retryAfterSeconds renders the queue-depth-derived Retry-After value.
func (s *Server) retryAfterSeconds() string {
	return fmt.Sprintf("%d", s.svcRate.retryAfter(s.queued.Load()))
}
