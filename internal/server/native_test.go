package server

// The /v1/run engine selection contract: "native" builds and executes
// the emitted program with content-addressed result caching, "vm" (and
// the default) keeps the exact pre-engine behavior, and the invalid
// combinations fail fast with 400 before any work is admitted.

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"objinline/internal/server/api"
)

const nativeDemo = `
class Point {
  x; y;
  def init(x, y) { self.x = x; self.y = y; }
  def sum() { return self.x + self.y; }
}
func main() {
  var p = new Point(20, 22);
  print(p.sum());
}
`

func TestRunEngineVMDefault(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := postJSON(t, ts, "/v1/run", api.RunRequest{
		CompileRequest: api.CompileRequest{Source: nativeDemo},
		IncludeOutput:  true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Oicd-Engine"); got != "vm" {
		t.Errorf("X-Oicd-Engine = %q, want vm", got)
	}
	var env api.Envelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatal(err)
	}
	if env.Engine != "vm" || env.Metrics == nil || env.Native != nil {
		t.Errorf("default engine envelope wrong: engine=%q metrics=%v native=%v", env.Engine, env.Metrics != nil, env.Native)
	}
	if env.Output != "42\n" {
		t.Errorf("output = %q", env.Output)
	}
}

func TestRunEngineUnknown(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := postJSON(t, ts, "/v1/run", api.RunRequest{
		CompileRequest: api.CompileRequest{Source: nativeDemo},
		Engine:         "jit",
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", resp.StatusCode, body)
	}
	var env api.Envelope
	json.Unmarshal(body, &env)
	if env.Error == nil || env.Error.Code != api.CodeBadRequest {
		t.Errorf("error = %+v, want %s", env.Error, api.CodeBadRequest)
	}
}

func TestRunNativeRejectsProfile(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := postJSON(t, ts, "/v1/run", api.RunRequest{
		CompileRequest: api.CompileRequest{Source: nativeDemo},
		Engine:         "native",
		Profile:        true,
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "vm engine") {
		t.Errorf("body does not explain the vm-engine requirement: %s", body)
	}
}

func TestRunNativeEngine(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a native binary")
	}
	_, ts := newTestServer(t, Config{})
	req := api.RunRequest{
		CompileRequest: api.CompileRequest{Source: nativeDemo, DeadlineMillis: 120_000},
		Engine:         "native",
		NativeReps:     2,
		IncludeOutput:  true,
	}
	cold, coldBody := postJSON(t, ts, "/v1/run", req)
	if cold.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", cold.StatusCode, coldBody)
	}
	if got := cold.Header.Get("X-Oicd-Engine"); got != "native" {
		t.Errorf("X-Oicd-Engine = %q, want native", got)
	}
	if got := cold.Header.Get("X-Oicd-Run-Cache"); got != "miss" {
		t.Errorf("cold X-Oicd-Run-Cache = %q, want miss", got)
	}
	var env api.Envelope
	if err := json.Unmarshal(coldBody, &env); err != nil {
		t.Fatal(err)
	}
	if env.Engine != "native" || env.Metrics != nil {
		t.Errorf("native envelope wrong: engine=%q metrics=%v", env.Engine, env.Metrics)
	}
	n := env.Native
	if n == nil {
		t.Fatalf("envelope lacks native measurements: %s", coldBody)
	}
	if n.Reps != 2 || n.WallNanos <= 0 || n.BuildNanos <= 0 {
		t.Errorf("implausible native measurements: %+v", n)
	}
	if env.Output != "42\n" {
		t.Errorf("output = %q, want %q", env.Output, "42\n")
	}

	// The second identical request must replay the cached envelope —
	// original measurements included — without building again.
	warm, warmBody := postJSON(t, ts, "/v1/run", req)
	if warm.StatusCode != http.StatusOK {
		t.Fatalf("warm status %d: %s", warm.StatusCode, warmBody)
	}
	if got := warm.Header.Get("X-Oicd-Run-Cache"); got != "hit" {
		t.Errorf("warm X-Oicd-Run-Cache = %q, want hit", got)
	}
	if string(warmBody) != string(coldBody) {
		t.Errorf("warm native response not byte-identical:\ncold: %s\nwarm: %s", coldBody, warmBody)
	}
	m := getMetrics(t, ts)
	if m["native_runs_total"] != 1 {
		t.Errorf("native_runs_total = %v, want 1 (the warm request must not rebuild)", m["native_runs_total"])
	}
	if m["native_cache_hits_total"] != 1 {
		t.Errorf("native_cache_hits_total = %v, want 1", m["native_cache_hits_total"])
	}

	// A different reps count is a different measurement and must miss.
	req.NativeReps = 3
	again, _ := postJSON(t, ts, "/v1/run", req)
	if got := again.Header.Get("X-Oicd-Run-Cache"); got != "miss" {
		t.Errorf("changed-reps X-Oicd-Run-Cache = %q, want miss", got)
	}
}

func TestRunNativeTrapCached(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a native binary")
	}
	_, ts := newTestServer(t, Config{})
	req := api.RunRequest{
		CompileRequest: api.CompileRequest{Source: "func main() { print(1 / 0); }", DeadlineMillis: 120_000},
		Engine:         "native",
	}
	first, firstBody := postJSON(t, ts, "/v1/run", req)
	if first.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422: %s", first.StatusCode, firstBody)
	}
	var env api.Envelope
	if err := json.Unmarshal(firstBody, &env); err != nil {
		t.Fatal(err)
	}
	if env.Error == nil || env.Error.Code != api.CodeRuntimeError {
		t.Fatalf("error = %+v, want %s", env.Error, api.CodeRuntimeError)
	}
	if !strings.Contains(env.Error.Message, "division by zero") {
		t.Errorf("trap message = %q", env.Error.Message)
	}
	// Traps are deterministic: the retry replays the verdict from cache.
	second, secondBody := postJSON(t, ts, "/v1/run", req)
	if second.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("second status %d: %s", second.StatusCode, secondBody)
	}
	if got := second.Header.Get("X-Oicd-Run-Cache"); got != "hit" {
		t.Errorf("trap retry X-Oicd-Run-Cache = %q, want hit", got)
	}
	if string(secondBody) != string(firstBody) {
		t.Errorf("cached trap not byte-identical:\nfirst:  %s\nsecond: %s", firstBody, secondBody)
	}
}
