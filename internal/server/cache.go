package server

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"net/http"
	"sync"

	"objinline"
)

// cacheKey is the content address of one compilation: SHA-256 over the
// canonical config fingerprint, the filename (it appears in diagnostics
// and source positions, so it is part of the result), and the source
// text, with NUL separators so no field can masquerade as another.
func cacheKey(cfg objinline.Config, filename, source string) string {
	h := sha256.New()
	h.Write([]byte(cfg.Fingerprint()))
	h.Write([]byte{0})
	h.Write([]byte(filename))
	h.Write([]byte{0})
	h.Write([]byte(source))
	return hex.EncodeToString(h.Sum(nil))
}

// nativeRunKey is the content address of one native execution: the
// compilation it runs (already content-addressed by cacheKey) plus every
// request knob that shapes the native response — repetitions and whether
// the output rides along. The engine name is baked into the prefix, so
// native results can never collide with compile entries even if the two
// caches were ever merged.
func nativeRunKey(compileKey string, reps int, includeOutput bool) string {
	h := sha256.New()
	fmt.Fprintf(h, "native-run\x00%s\x00%d\x00%t", compileKey, reps, includeOutput)
	return hex.EncodeToString(h.Sum(nil))
}

// entry is one cached compilation result. The leader that created it
// fills the result fields and closes done; every other request for the
// same key waits on done and reads them. The stored body is the compile
// endpoint's exact response bytes, so warm responses are byte-identical
// to the cold one.
type entry struct {
	key  string
	done chan struct{}

	// Result, immutable after done closes.
	status int    // HTTP status of the compile response
	body   []byte // serialized compile envelope, written verbatim on hits
	prog   *objinline.Program
	stats  objinline.CompileStats

	// runMu serializes profiled runs of prog: Program keeps the last
	// profile as state, so profile extraction must not interleave.
	// Unprofiled runs touch no shared Program state and need no lock.
	runMu sync.Mutex

	// fromDisk marks an entry seeded from the persistent cache tier: it
	// holds the response bytes but no *Program (replay works; explain and
	// run first upgrade it by recompiling — see Server.entryProgram).
	// progMu serializes that lazy upgrade, and every prog access on a
	// fromDisk entry goes through it: the entry's done channel closed at
	// seed time, so the usual done-close happens-before edge does not
	// cover the later prog write.
	fromDisk bool
	progMu   sync.Mutex
}

// failed reports whether the entry holds diagnostics instead of a
// successful compilation. Status, not prog, is the test: a disk-seeded
// success has no program until first use.
func (e *entry) failed() bool { return e.status != http.StatusOK }

// cache is the content-addressed result cache: an LRU bound over
// singleflight entries. Claiming a key either returns the existing entry
// (a hit — possibly still in flight, in which case the caller waits on
// done) or installs a fresh one and names the caller its leader.
type cache struct {
	mu      sync.Mutex
	max     int
	entries map[string]*list.Element // of *entry
	order   *list.List               // front = most recently used

	hits, misses, evictions int64
}

func newCache(maxEntries int) *cache {
	return &cache{
		max:     maxEntries,
		entries: make(map[string]*list.Element),
		order:   list.New(),
	}
}

// claim returns the entry for key, creating it when absent. leader is
// true when the caller installed the entry and must compile, fill it, and
// close done; false means another request is (or was) the leader and the
// caller just waits. Creation evicts the least recently used entry beyond
// the bound.
func (c *cache) claim(key string) (e *entry, leader bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		c.hits++
		return el.Value.(*entry), false
	}
	c.misses++
	e = &entry{key: key, done: make(chan struct{})}
	c.entries[key] = c.order.PushFront(e)
	for c.order.Len() > c.max {
		back := c.order.Back()
		c.order.Remove(back)
		delete(c.entries, back.Value.(*entry).key)
		c.evictions++
	}
	return e, true
}

// drop removes e so future requests for its key start fresh. The leader
// calls it when its compile did not produce a cacheable result — it was
// canceled at the deadline or shed under load — because caching those
// would poison the key: deterministic compile *errors* stay cached,
// transient conditions must not.
func (c *cache) drop(e *entry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[e.key]; ok && el.Value.(*entry) == e {
		c.order.Remove(el)
		delete(c.entries, e.key)
	}
}

// seed installs a completed entry replayed from the disk tier: done is
// already closed, the body replays verbatim, and no program is attached
// (entryProgram upgrades on demand). A later record for the same key
// overwrites the earlier one — WAL replay order is oldest-first, so the
// newest copy wins. Seeding counts as neither hit nor miss and respects
// the LRU bound like any insert.
func (c *cache) seed(key string, status int, body []byte) {
	done := make(chan struct{})
	close(done)
	e := &entry{key: key, done: done, status: status, body: body, fromDisk: true}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value = e
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(e)
	for c.order.Len() > c.max {
		back := c.order.Back()
		c.order.Remove(back)
		delete(c.entries, back.Value.(*entry).key)
		c.evictions++
	}
}

// live returns the completed entries in LRU order (least recently used
// first, so disk replay restores recency) — the disk tier's compaction
// input. In-flight entries are skipped: their result fields are not
// readable yet.
func (c *cache) live() []*entry {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*entry, 0, c.order.Len())
	for el := c.order.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*entry)
		select {
		case <-e.done:
			out = append(out, e)
		default:
		}
	}
	return out
}

// bytesResident sums the cached response bodies, for the cache_bytes
// gauge. O(entries), bounded by the LRU max; called only from /metrics.
func (c *cache) bytesResident() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var n int64
	for el := c.order.Front(); el != nil; el = el.Next() {
		e := el.Value.(*entry)
		// Only completed entries: body is written before done closes, so
		// reading it earlier would race with the leader.
		select {
		case <-e.done:
			n += int64(len(e.body))
		default:
		}
	}
	return n
}

// snapshot returns (entries, hits, misses, evictions) for the metrics
// endpoint.
func (c *cache) snapshot() (int, int64, int64, int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len(), c.hits, c.misses, c.evictions
}
