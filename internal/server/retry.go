package server

// Queue-depth-derived Retry-After. A constant "1" tells a shedding
// client nothing; the admission pool already knows its recent service
// rate, and (queued work) / (service rate) is the expected drain time.
// The estimator keeps a ring of per-second completion counts — release()
// records into it on every worker-token return — and retryAfter divides
// the queue ahead of the client by the observed rate.

import (
	"math"
	"sync"
	"time"
)

// rateWindowSecs is how many one-second buckets the completion ring
// keeps. Long enough to smooth bursts, short enough that the estimate
// tracks a load shift within seconds.
const rateWindowSecs = 16

// retryAfterMax clamps the advertised backoff: past a minute the figure
// is guesswork and clients should re-probe rather than sleep.
const retryAfterMax = 60

// rateEstimator measures recent request-completion throughput. Safe for
// concurrent use; record is a few arithmetic ops under one mutex.
type rateEstimator struct {
	mu  sync.Mutex
	now func() time.Time // injectable for tests

	counts   [rateWindowSecs]int64 // completions per second, ring-indexed
	secs     [rateWindowSecs]int64 // which unix second each slot holds
	firstSec int64                 // unix second of the first record; 0 = none yet
}

func newRateEstimator() *rateEstimator {
	return &rateEstimator{now: time.Now}
}

// record counts one completed unit of work (a released worker token).
func (re *rateEstimator) record() {
	sec := re.now().Unix()
	i := sec % rateWindowSecs
	re.mu.Lock()
	if re.firstSec == 0 {
		re.firstSec = sec
	}
	if re.secs[i] != sec {
		re.secs[i] = sec
		re.counts[i] = 0
	}
	re.counts[i]++
	re.mu.Unlock()
}

// rate returns completions per second over the window, counting only
// FULL seconds — the current second is still accumulating and would bias
// the rate downward. Returns 0 when the window holds no finished second.
func (re *rateEstimator) rate() float64 {
	sec := re.now().Unix()
	re.mu.Lock()
	defer re.mu.Unlock()
	if re.firstSec == 0 || re.firstSec >= sec {
		return 0 // nothing observed over a full second yet
	}
	var total int64
	for i := range re.counts {
		s := re.secs[i]
		// A slot counts if it belongs to the current window and is not
		// the still-accumulating in-progress second.
		if s != 0 && s != sec && s > sec-rateWindowSecs {
			total += re.counts[i]
		}
	}
	// Divide by elapsed full seconds (capped at the window), not by
	// non-empty slots: an idle second is a real zero, and ignoring it
	// would overstate the rate exactly when the server is struggling.
	span := sec - re.firstSec
	if span > rateWindowSecs-1 {
		span = rateWindowSecs - 1
	}
	return float64(total) / float64(span)
}

// retryAfter estimates, in whole seconds, how long until the admission
// queue ahead of a newly shed request would drain: (queued+1) work units
// at the recent service rate, clamped to [1, retryAfterMax]. With no
// rate data it returns 1 — the old constant — so a cold server never
// tells its first clients to back off for a minute.
func (re *rateEstimator) retryAfter(queued int64) int {
	r := re.rate()
	if r <= 0 {
		return 1
	}
	est := int(math.Ceil(float64(queued+1) / r))
	if est < 1 {
		est = 1
	}
	if est > retryAfterMax {
		est = retryAfterMax
	}
	return est
}
