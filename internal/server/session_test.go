package server

// Session endpoint tests: the lifecycle (create → patch → delete), the
// differential contract (every patch response carries the same compile
// verdicts a cold /v1/compile of that source produces), the memory
// discipline (LRU eviction and TTL expiry, including eviction racing an
// in-flight patch under -race), and request validation. The goroutine-
// leak check in newTestServer applies to every test here.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"objinline"
	"objinline/internal/server/api"
)

// doJSON issues a request with an arbitrary method (PATCH, DELETE).
func doJSON(t *testing.T, ts *httptest.Server, method, path string, req any) (*http.Response, []byte) {
	t.Helper()
	var body io.Reader
	if req != nil {
		raw, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		body = bytes.NewReader(raw)
	}
	hreq, err := http.NewRequest(method, ts.URL+path, body)
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := ts.Client().Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	got, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, got
}

// compileSections strips a response envelope down to the sections both
// /v1/compile and the session endpoints must agree on byte for byte:
// everything except the wall-clock phase timings (volatile) and the
// session bookkeeping (session_id, incremental — absent from /v1/compile
// by construction).
func compileSections(t *testing.T, body []byte) string {
	t.Helper()
	var env map[string]any
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("response is not JSON: %v\n%s", err, body)
	}
	delete(env, "session_id")
	delete(env, "incremental")
	if stats, ok := env["stats"].(map[string]any); ok {
		delete(stats, "phases")
		delete(stats, "total_nanos")
	}
	out, err := json.MarshalIndent(env, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

type sessionEnv struct {
	SessionID   string                      `json:"session_id"`
	Mode        string                      `json:"mode"`
	CodeSize    int                         `json:"code_size"`
	Incremental *objinline.IncrementalStats `json:"incremental"`
	Error       *api.Error                  `json:"error"`
}

func decodeSessionEnv(t *testing.T, body []byte) sessionEnv {
	t.Helper()
	var env sessionEnv
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("envelope is not JSON: %v\n%s", err, body)
	}
	return env
}

// TestSessionLifecycle drives one session through the tier ladder —
// create (cold), payload edit (patch), shape edit (solve), structural
// edit (cold) — checking each patch response against a cold /v1/compile
// of the same source, and the tier counters in /metrics at the end.
func TestSessionLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	src := fixtureSource(t)

	resp, body := postJSON(t, ts, "/v1/session", api.CompileRequest{
		Filename: "explain.icc", Source: src,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("create: status %d: %s", resp.StatusCode, body)
	}
	created := decodeSessionEnv(t, body)
	if created.SessionID == "" {
		t.Fatalf("create response has no session_id: %s", body)
	}
	if created.Mode != "inline" || created.CodeSize == 0 {
		t.Fatalf("create envelope is not a compile envelope: %s", body)
	}

	// Three edits, one per incremental tier below reuse. The fixture is
	// testdata/explain.icc; "new Point(1, 2)" appears in its main.
	if !strings.Contains(src, "new Point(1, 2)") {
		t.Fatal("fixture drifted: no Point(1, 2) to edit")
	}
	edits := []struct {
		name, src, tier string
	}{
		{"payload", strings.Replace(src, "new Point(1, 2)", "new Point(9, 2)", 1), objinline.TierPatch},
		{"shape", strings.Replace(src, "print(r.area());", "if (true) { print(r.area()); }", 1), objinline.TierSolve},
		{"structural", src + "\nfunc spare(x) { return x; }\n", objinline.TierCold},
	}
	for _, e := range edits {
		resp, body := doJSON(t, ts, http.MethodPatch, "/v1/session/"+created.SessionID,
			api.SessionPatchRequest{Source: e.src})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s patch: status %d: %s", e.name, resp.StatusCode, body)
		}
		env := decodeSessionEnv(t, body)
		if env.Incremental == nil || env.Incremental.Tier != e.tier {
			t.Errorf("%s patch: incremental = %+v, want tier %q", e.name, env.Incremental, e.tier)
		}
		if env.SessionID != created.SessionID {
			t.Errorf("%s patch: session_id = %q", e.name, env.SessionID)
		}

		coldResp, coldBody := postJSON(t, ts, "/v1/compile", api.CompileRequest{
			Filename: "explain.icc", Source: e.src,
		})
		if coldResp.StatusCode != http.StatusOK {
			t.Fatalf("%s cold compile: status %d: %s", e.name, coldResp.StatusCode, coldBody)
		}
		warm, cold := compileSections(t, body), compileSections(t, coldBody)
		if warm != cold {
			t.Errorf("%s patch diverged from cold /v1/compile\n--- warm ---\n%s\n--- cold ---\n%s",
				e.name, warm, cold)
		}
	}

	// The patch tier reused the analysis without running it. The edit
	// derives from the session's current source (the structural edit
	// above) so only a constant changes.
	resp, body = doJSON(t, ts, http.MethodPatch, "/v1/session/"+created.SessionID,
		api.SessionPatchRequest{Source: strings.Replace(edits[2].src, "new Point(1, 2)", "new Point(7, 2)", 1)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("final patch: status %d: %s", resp.StatusCode, body)
	}
	if env := decodeSessionEnv(t, body); env.Incremental.Tier != objinline.TierPatch ||
		!env.Incremental.AnalysisReused || env.Incremental.AnalysisInstrEvals != 0 {
		t.Errorf("payload patch did not reuse analysis: %+v", env.Incremental)
	}

	m := getMetrics(t, ts)
	if m["sessions_active"] != 1 || m["sessions_created_total"] != 1 {
		t.Errorf("session gauges = active %v, created %v", m["sessions_active"], m["sessions_created_total"])
	}
	if m["session_patches_total"] != 4 {
		t.Errorf("session_patches_total = %v, want 4", m["session_patches_total"])
	}

	// Delete releases it; a second delete and a patch both 404.
	if resp, body := doJSON(t, ts, http.MethodDelete, "/v1/session/"+created.SessionID, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: status %d: %s", resp.StatusCode, body)
	}
	if resp, _ := doJSON(t, ts, http.MethodDelete, "/v1/session/"+created.SessionID, nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("double delete: status %d, want 404", resp.StatusCode)
	}
	resp, body = doJSON(t, ts, http.MethodPatch, "/v1/session/"+created.SessionID,
		api.SessionPatchRequest{Source: src})
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("patch after delete: status %d, want 404", resp.StatusCode)
	}
	if env := decodeSessionEnv(t, body); env.Error == nil || env.Error.Code != api.CodeUnknownSession {
		t.Errorf("patch after delete error = %+v, want %s", env.Error, api.CodeUnknownSession)
	}
}

// TestSessionPatchErrorKeepsSession checks a bad edit reports 422 and the
// session still absorbs the next good edit.
func TestSessionPatchErrorKeepsSession(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	src := fixtureSource(t)
	_, body := postJSON(t, ts, "/v1/session", api.CompileRequest{Source: src})
	id := decodeSessionEnv(t, body).SessionID

	resp, body := doJSON(t, ts, http.MethodPatch, "/v1/session/"+id,
		api.SessionPatchRequest{Source: "func main() { return nope; }"})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("bad edit: status %d: %s", resp.StatusCode, body)
	}
	if env := decodeSessionEnv(t, body); env.Error == nil || env.Error.Code != api.CodeCompileError {
		t.Fatalf("bad edit error = %+v", env.Error)
	}

	resp, body = doJSON(t, ts, http.MethodPatch, "/v1/session/"+id,
		api.SessionPatchRequest{Source: strings.Replace(src, "41", "42", 1)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recovery patch: status %d: %s", resp.StatusCode, body)
	}
}

// TestSessionValidation pins the 400/413/404 discipline.
func TestSessionValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxSourceBytes: 64})
	if resp, _ := doJSON(t, ts, http.MethodPatch, "/v1/session/deadbeef",
		api.SessionPatchRequest{Source: "func main() {}"}); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown session: status %d, want 404", resp.StatusCode)
	}
	_, body := postJSON(t, ts, "/v1/session", api.CompileRequest{Source: "func main() {}"})
	id := decodeSessionEnv(t, body).SessionID
	if resp, _ := doJSON(t, ts, http.MethodPatch, "/v1/session/"+id,
		api.SessionPatchRequest{}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty source: status %d, want 400", resp.StatusCode)
	}
	if resp, _ := doJSON(t, ts, http.MethodPatch, "/v1/session/"+id,
		api.SessionPatchRequest{Source: "func main() { " + strings.Repeat("print(1); ", 20) + "}"}); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized source: status %d, want 413", resp.StatusCode)
	}
}

// TestSessionTTLExpiry checks an idle session expires and later patches
// 404, with the expiration counted.
func TestSessionTTLExpiry(t *testing.T) {
	_, ts := newTestServer(t, Config{SessionTTL: 50 * time.Millisecond})
	_, body := postJSON(t, ts, "/v1/session", api.CompileRequest{Source: "func main() { print(1); }"})
	id := decodeSessionEnv(t, body).SessionID
	time.Sleep(80 * time.Millisecond)
	if resp, _ := doJSON(t, ts, http.MethodPatch, "/v1/session/"+id,
		api.SessionPatchRequest{Source: "func main() { print(2); }"}); resp.StatusCode != http.StatusNotFound {
		t.Errorf("expired session patch: status %d, want 404", resp.StatusCode)
	}
	m := getMetrics(t, ts)
	if m["session_expirations_total"] < 1 {
		t.Errorf("session_expirations_total = %v, want >= 1", m["session_expirations_total"])
	}
	if m["sessions_active"] != 0 {
		t.Errorf("sessions_active = %v, want 0", m["sessions_active"])
	}
}

// TestSessionEvictionRacesInflightPatch hammers one session with
// concurrent patches while creates force LRU evictions (bound 1), under
// the race detector via `make check`. An in-flight patch that won the
// lookup completes normally even when its session is evicted mid-flight;
// patches that lose the lookup 404. Nothing may crash, race, or leak.
func TestSessionEvictionRacesInflightPatch(t *testing.T) {
	_, ts := newTestServer(t, Config{SessionEntries: 1, PoolSize: 4})
	src := "func main() { print(41); }"
	_, body := postJSON(t, ts, "/v1/session", api.CompileRequest{Source: src})
	id := decodeSessionEnv(t, body).SessionID

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			edited := strings.Replace(src, "41", fmt.Sprint(42+i), 1)
			resp, body := doJSON(t, ts, http.MethodPatch, "/v1/session/"+id,
				api.SessionPatchRequest{Source: edited})
			if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNotFound {
				t.Errorf("patch %d: status %d: %s", i, resp.StatusCode, body)
			}
		}(i)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Each create evicts the previous LRU occupant — racing the
			// patches above for the session table.
			resp, body := postJSON(t, ts, "/v1/session", api.CompileRequest{
				Source: fmt.Sprintf("func main() { print(%d); }", 100+i),
			})
			if resp.StatusCode != http.StatusOK {
				t.Errorf("create %d: status %d: %s", i, resp.StatusCode, body)
			}
		}(i)
	}
	wg.Wait()

	m := getMetrics(t, ts)
	if m["sessions_active"] != 1 {
		t.Errorf("sessions_active = %v, want 1 (bound)", m["sessions_active"])
	}
	if m["session_evictions_total"] < 1 {
		t.Errorf("session_evictions_total = %v, want >= 1", m["session_evictions_total"])
	}
}

// TestServerCloseReleasesSessions pins the drain contract: Close purges
// the session table (patches 404 afterwards) without breaking the
// handler.
func TestServerCloseReleasesSessions(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	_, body := postJSON(t, ts, "/v1/session", api.CompileRequest{Source: "func main() { print(1); }"})
	id := decodeSessionEnv(t, body).SessionID
	srv.Close()
	if resp, _ := doJSON(t, ts, http.MethodPatch, "/v1/session/"+id,
		api.SessionPatchRequest{Source: "func main() { print(2); }"}); resp.StatusCode != http.StatusNotFound {
		t.Errorf("patch after Close: status %d, want 404", resp.StatusCode)
	}
	if m := getMetrics(t, ts); m["sessions_active"] != 0 {
		t.Errorf("sessions_active after Close = %v, want 0", m["sessions_active"])
	}
}
