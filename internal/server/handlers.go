package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime/debug"
	"strconv"
	"time"

	"objinline"
	"objinline/internal/emit"
	"objinline/internal/obs"
	"objinline/internal/server/api"
	"objinline/internal/trace"
)

// prepared is a validated request: normalized inputs, the cache key they
// address, and the request-scoped context carrying the end-to-end
// deadline (it covers queueing, compiling, and running alike).
type prepared struct {
	filename string
	source   string
	cfg      objinline.Config
	key      string
	deadline time.Time
	ctx      context.Context
	cancel   context.CancelFunc
}

// prepare decodes and validates a compile request. On failure it writes
// the error response and returns ok=false. On success the caller must
// defer p.cancel().
func (s *Server) prepare(w http.ResponseWriter, r *http.Request, req *api.CompileRequest) (p prepared, ok bool) {
	if req.Source == "" {
		s.writeError(w, http.StatusBadRequest, api.CodeBadRequest, "missing source field")
		return p, false
	}
	if len(req.Source) > s.cfg.MaxSourceBytes {
		s.writeError(w, http.StatusRequestEntityTooLarge, api.CodeBadRequest,
			fmt.Sprintf("source is %d bytes; the limit is %d", len(req.Source), s.cfg.MaxSourceBytes))
		return p, false
	}
	cfg, err := req.Config.ToConfig()
	if err != nil {
		s.writeError(w, http.StatusBadRequest, api.CodeBadRequest, err.Error())
		return p, false
	}
	p.filename = req.Filename
	if p.filename == "" {
		p.filename = "request.icc"
	}
	p.source = req.Source
	// Clamp per-request analysis parallelism to the server's bound (jobs=0
	// means "as many as allowed"). Jobs never changes compilation results,
	// so the clamp only shapes CPU use — and the cache key excludes Jobs
	// entirely, so clamped and unclamped requests share entries.
	if cfg.Solver == objinline.SolverParallel {
		if cfg.Jobs <= 0 || cfg.Jobs > s.cfg.AnalysisJobs {
			cfg.Jobs = s.cfg.AnalysisJobs
		}
	}
	p.cfg = cfg
	p.key = cacheKey(cfg, p.filename, p.source)

	d := s.cfg.DefaultDeadline
	if req.DeadlineMillis > 0 {
		d = time.Duration(req.DeadlineMillis) * time.Millisecond
	}
	if d > s.cfg.MaxDeadline {
		d = s.cfg.MaxDeadline
	}
	p.deadline = time.Now().Add(d)
	p.ctx, p.cancel = context.WithDeadline(r.Context(), p.deadline)
	return p, true
}

// decode unmarshals the request body into dst, bounding its size. It
// writes the error response and returns false on failure.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, dst any) bool {
	// The body bound leaves headroom over MaxSourceBytes for JSON string
	// escaping and the non-source fields; prepare enforces the precise
	// source limit.
	r.Body = http.MaxBytesReader(w, r.Body, 2*int64(s.cfg.MaxSourceBytes)+(64<<10))
	if err := json.NewDecoder(r.Body).Decode(dst); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.writeError(w, http.StatusRequestEntityTooLarge, api.CodeBadRequest, err.Error())
		} else {
			s.writeError(w, http.StatusBadRequest, api.CodeBadRequest, "invalid request body: "+err.Error())
		}
		return false
	}
	return true
}

// ensureCompiled resolves p to a completed cache entry, compiling as the
// singleflight leader when the key is new and waiting on the in-flight
// leader otherwise. It returns ok=false after writing an error response
// (shed, or the deadline landed while waiting). An ok entry may still
// hold a compile failure — check entry.failed().
func (s *Server) ensureCompiled(w http.ResponseWriter, r *http.Request, p *prepared) (*entry, bool) {
	e, leader := s.results.claim(p.key)
	w.Header().Set("X-Oicd-Cache-Key", p.key)
	oreq := obs.FromContext(r.Context())
	if !leader {
		w.Header().Set("X-Oicd-Cache", "hit")
		if oreq != nil {
			oreq.Cache = "hit"
		}
		// Waiting on another request's in-flight compile is its own span:
		// a trace reader should see coalescing, not an unexplained gap.
		var await trace.Span
		if oreq != nil {
			await = oreq.Sink.Start(obs.SpanAwait)
		}
		select {
		case <-e.done:
			await.End()
			return e, true
		case <-p.ctx.Done():
			await.End()
			s.metrics.deadlineExceeded.Add(1)
			s.writeError(w, http.StatusGatewayTimeout, api.CodeDeadlineExceeded,
				"deadline exceeded waiting for in-flight compilation: "+p.ctx.Err().Error())
			return nil, false
		}
	}

	w.Header().Set("X-Oicd-Cache", "miss")
	if oreq != nil {
		oreq.Cache = "miss"
	}
	if err := s.acquire(p.ctx); err != nil {
		// The claim installed an entry other requests may already be
		// waiting on: give it the same fate this request got, then drop
		// it so the key is retried fresh.
		status := http.StatusTooManyRequests
		env := api.Envelope{Error: s.overloadedError(err)}
		if !errors.Is(err, errOverloaded) {
			status = http.StatusGatewayTimeout
			env.Error = &api.Error{Code: api.CodeDeadlineExceeded, Message: "deadline exceeded waiting for a worker: " + err.Error()}
			s.metrics.deadlineExceeded.Add(1)
		} else {
			s.metrics.shed.Add(1)
		}
		e.status = status
		e.body = marshalEnvelope(env)
		s.results.drop(e)
		close(e.done)
		s.replay(w, e)
		return nil, false
	}
	defer s.release()

	// Compile detached from the client connection (WithoutCancel): the
	// result is shared with every coalesced request, so one client
	// hanging up must not cancel it. The deadline still applies.
	ctx, cancel := context.WithDeadline(context.WithoutCancel(r.Context()), p.deadline)
	defer cancel()
	s.compileInto(ctx, e, p)
	return e, true
}

// compileInto runs the compilation and fills e, closing e.done. Compile
// errors are deterministic and stay cached; a deadline-canceled compile
// is dropped from the cache so the key can be retried.
func (s *Server) compileInto(ctx context.Context, e *entry, p *prepared) {
	// Settled results flow to the disk tier once the entry is readable;
	// persist ignores the transient statuses (dropped entries included).
	defer func() {
		close(e.done)
		s.persist(e)
	}()
	s.metrics.compiles.Add(1)
	// The compilation traces into its own sink — the envelope's
	// CompileStats must carry compiler phases only — and the phase spans
	// are then grafted into the owning request's span tree, so a slow
	// request's trace shows which phase made it slow. Merging after the
	// fact (rather than sharing the request sink) also keeps the cached
	// envelope byte-identical however the request was observed.
	sink := &trace.Sink{}
	prog, err := objinline.CompileContext(ctx, p.filename, p.source, p.cfg, objinline.WithTraceSink(sink))
	if oreq := obs.FromContext(ctx); oreq != nil {
		oreq.Sink.Merge(sink.Epoch(), sink.Events())
	}
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			s.metrics.deadlineExceeded.Add(1)
			e.status = http.StatusGatewayTimeout
			e.body = marshalEnvelope(api.Envelope{
				File:  p.filename,
				Error: &api.Error{Code: api.CodeDeadlineExceeded, Message: err.Error()},
			})
			s.results.drop(e)
			return
		}
		e.status = http.StatusUnprocessableEntity
		e.body = marshalEnvelope(api.Envelope{
			File:  p.filename,
			Error: &api.Error{Code: api.CodeCompileError, Message: err.Error()},
		})
		return
	}
	e.prog = prog
	e.stats = prog.CompileStats()
	e.status = http.StatusOK
	e.body = marshalEnvelope(api.Envelope{
		File:     p.filename,
		Mode:     prog.Mode().String(),
		CodeSize: prog.CodeSize(),
		Inlined:  prog.InlinedFields(),
		Rejected: prog.RejectedFields(),
		Stats:    &e.stats,
	})
}

func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	var req api.CompileRequest
	if !s.decode(w, r, &req) {
		return
	}
	p, ok := s.prepare(w, r, &req)
	if !ok {
		return
	}
	defer p.cancel()
	if s.forwardIfRemote(w, r, &p, "/v1/compile", &req) {
		return
	}
	e, ok := s.ensureCompiled(w, r, &p)
	if !ok {
		return
	}
	s.replay(w, e)
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	var req api.ExplainRequest
	if !s.decode(w, r, &req) {
		return
	}
	if req.Field == "" {
		s.writeError(w, http.StatusBadRequest, api.CodeBadRequest, "missing field to explain")
		return
	}
	p, ok := s.prepare(w, r, &req.CompileRequest)
	if !ok {
		return
	}
	defer p.cancel()
	if s.forwardIfRemote(w, r, &p, "/v1/explain", &req) {
		return
	}
	e, ok := s.ensureCompiled(w, r, &p)
	if !ok {
		return
	}
	if e.failed() {
		s.replay(w, e)
		return
	}
	prog, ok := s.entryProgram(w, &p, e)
	if !ok {
		return
	}
	d, err := prog.Explain(req.Field)
	if err != nil {
		s.writeError(w, http.StatusNotFound, api.CodeUnknownField, err.Error())
		return
	}
	s.writeEnvelope(w, http.StatusOK, api.Envelope{
		File:    p.filename,
		Mode:    prog.Mode().String(),
		Explain: &d,
	})
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req api.RunRequest
	if !s.decode(w, r, &req) {
		return
	}
	engine, err := objinline.ParseEngine(req.Engine)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, api.CodeBadRequest, err.Error())
		return
	}
	if engine == objinline.EngineNative && req.Profile {
		s.writeError(w, http.StatusBadRequest, api.CodeBadRequest,
			"profile requires the vm engine: site attribution is VM instrumentation")
		return
	}
	p, ok := s.prepare(w, r, &req.CompileRequest)
	if !ok {
		return
	}
	defer p.cancel()
	if s.forwardIfRemote(w, r, &p, "/v1/run", &req) {
		return
	}
	e, ok := s.ensureCompiled(w, r, &p)
	if !ok {
		return
	}
	if e.failed() {
		s.replay(w, e)
		return
	}
	prog, ok := s.entryProgram(w, &p, e)
	if !ok {
		return
	}
	oreq := obs.FromContext(r.Context())
	if engine == objinline.EngineNative {
		w.Header().Set("X-Oicd-Engine", objinline.EngineNative.String())
		if oreq != nil {
			oreq.Engine = objinline.EngineNative.String()
		}
		s.runNative(w, r, &p, prog, &req)
		return
	}
	w.Header().Set("X-Oicd-Engine", objinline.EngineVM.String())
	if oreq != nil {
		oreq.Engine = objinline.EngineVM.String()
	}

	// VM runs are per-request work (never cached), so each one occupies a
	// worker; the request context keeps the client's cancellation — a
	// run's result is not shared, so hanging up may cancel it.
	if err := s.acquire(p.ctx); err != nil {
		s.writeAdmissionError(w, err)
		return
	}
	defer s.release()
	s.metrics.runs.Add(1)

	// The run phase traces straight into the request's span tree when one
	// exists; a fresh throwaway sink otherwise, so concurrent runs never
	// append to the program's shared compile-time trace.
	runSink := &objinline.TraceSink{}
	if oreq != nil && oreq.Sink != nil {
		runSink = oreq.Sink
	}
	out := capWriter{max: s.cfg.MaxOutputBytes}
	ro := objinline.RunOptions{
		MaxSteps:     req.MaxSteps,
		DisableCache: req.DisableCache,
		Profile:      req.Profile,
		Trace:        runSink,
	}
	if req.IncludeOutput {
		ro.Output = &out
	}
	var (
		m       objinline.Metrics
		profile *objinline.RunProfile
	)
	if req.Profile {
		// Profiled runs read their attribution back off the Program, so
		// they are serialized per entry.
		e.runMu.Lock()
		m, err = prog.RunContext(p.ctx, ro)
		if err == nil {
			profile = prog.Profile()
		}
		e.runMu.Unlock()
	} else {
		m, err = prog.RunContext(p.ctx, ro)
	}
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			s.metrics.deadlineExceeded.Add(1)
			s.writeError(w, http.StatusGatewayTimeout, api.CodeDeadlineExceeded, err.Error())
			return
		}
		s.writeError(w, http.StatusUnprocessableEntity, api.CodeRuntimeError, err.Error())
		return
	}
	env := api.Envelope{
		File:    p.filename,
		Mode:    prog.Mode().String(),
		Engine:  objinline.EngineVM.String(),
		Metrics: &m,
		Profile: profile,
	}
	if req.IncludeOutput {
		env.Output = out.buf.String()
		env.OutputTruncated = out.truncated
	}
	s.writeEnvelope(w, http.StatusOK, env)
}

// runNative serves a native-engine run: emit the compiled program's
// optimized IR as Go, build it, execute the binary, and report real
// measurements. A native build costs orders of magnitude more than a VM
// run, so results are content-addressed and singleflighted exactly like
// compilations — concurrent identical requests coalesce onto one build,
// and a warm request replays the original execution's envelope (its
// measurements included) byte for byte.
func (s *Server) runNative(w http.ResponseWriter, r *http.Request, p *prepared, prog *objinline.Program, req *api.RunRequest) {
	reps := req.NativeReps
	if reps < 1 {
		reps = 1
	}
	key := nativeRunKey(p.key, reps, req.IncludeOutput)
	e, leader := s.nativeRuns.claim(key)
	if !leader {
		w.Header().Set("X-Oicd-Run-Cache", "hit")
		select {
		case <-e.done:
			s.replay(w, e)
		case <-p.ctx.Done():
			s.metrics.deadlineExceeded.Add(1)
			s.writeError(w, http.StatusGatewayTimeout, api.CodeDeadlineExceeded,
				"deadline exceeded waiting for in-flight native run: "+p.ctx.Err().Error())
		}
		return
	}

	w.Header().Set("X-Oicd-Run-Cache", "miss")
	if err := s.acquire(p.ctx); err != nil {
		// Same treatment as a shed compile leader: settle the entry for
		// anyone already waiting, then drop it so the key retries fresh.
		status := http.StatusTooManyRequests
		env := api.Envelope{Error: s.overloadedError(err)}
		if !errors.Is(err, errOverloaded) {
			status = http.StatusGatewayTimeout
			env.Error = &api.Error{Code: api.CodeDeadlineExceeded, Message: "deadline exceeded waiting for a worker: " + err.Error()}
			s.metrics.deadlineExceeded.Add(1)
		} else {
			s.metrics.shed.Add(1)
		}
		e.status = status
		e.body = marshalEnvelope(env)
		s.nativeRuns.drop(e)
		close(e.done)
		s.replay(w, e)
		return
	}
	defer s.release()
	s.metrics.nativeRuns.Add(1)

	// Like a compile, the result is shared with every coalesced request,
	// so the build-and-run detaches from this client's connection; only
	// the deadline cancels it.
	ctx, cancel := context.WithDeadline(context.WithoutCancel(r.Context()), p.deadline)
	defer cancel()
	s.nativeRunInto(ctx, e, prog, p, req, reps)
	s.replay(w, e)
}

// nativeRunInto executes the native run and fills e, closing e.done.
// Program traps are deterministic and stay cached (like compile errors);
// deadline cancellations and toolchain failures are dropped so the key
// can be retried.
func (s *Server) nativeRunInto(ctx context.Context, e *entry, prog *objinline.Program, p *prepared, req *api.RunRequest, reps int) {
	defer close(e.done)
	out := capWriter{max: s.cfg.MaxOutputBytes}
	ro := objinline.RunOptions{
		Engine:     objinline.EngineNative,
		NativeReps: reps,
		// Concurrent native misses coalesce their go-build invocations
		// through the server's shared batcher.
		NativeBatcher: s.batcher,
	}
	if req.IncludeOutput {
		ro.Output = &out
	}
	// The native tier reports its own build/run split in the envelope;
	// the request trace gets one span covering the whole execution.
	var span trace.Span
	if oreq := obs.FromContext(ctx); oreq != nil {
		span = oreq.Sink.Start(obs.SpanNative)
	}
	res, err := prog.Execute(ctx, ro)
	span.End()
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			s.metrics.deadlineExceeded.Add(1)
			e.status = http.StatusGatewayTimeout
			e.body = marshalEnvelope(api.Envelope{
				File:  p.filename,
				Error: &api.Error{Code: api.CodeDeadlineExceeded, Message: err.Error()},
			})
			s.nativeRuns.drop(e)
			return
		}
		var rte *emit.RuntimeError
		if errors.As(err, &rte) {
			e.status = http.StatusUnprocessableEntity
			e.body = marshalEnvelope(api.Envelope{
				File:   p.filename,
				Engine: objinline.EngineNative.String(),
				Error:  &api.Error{Code: api.CodeRuntimeError, Message: err.Error()},
			})
			return
		}
		// Emission or go-build failure: not a property of the program, so
		// never cached.
		e.status = http.StatusInternalServerError
		e.body = marshalEnvelope(api.Envelope{
			File:  p.filename,
			Error: &api.Error{Code: api.CodeInternal, Message: err.Error()},
		})
		s.nativeRuns.drop(e)
		return
	}
	env := api.Envelope{
		File:   p.filename,
		Mode:   prog.Mode().String(),
		Engine: objinline.EngineNative.String(),
		Native: res.Native,
	}
	if req.IncludeOutput {
		env.Output = out.buf.String()
		env.OutputTruncated = out.truncated
	}
	e.status = http.StatusOK
	e.body = marshalEnvelope(env)
}

// healthResponse is the GET /healthz body: readiness plus enough build
// identity to answer "what exactly is running on this box".
type healthResponse struct {
	// Status is "ok" while serving and "draining" once shutdown has begun
	// (the response is then a 503, so load balancers stop routing here
	// before the listener closes).
	Status        string  `json:"status"`
	GoVersion     string  `json:"go"`
	Revision      string  `json:"revision,omitempty"`
	BuildTime     string  `json:"build_time,omitempty"`
	Modified      bool    `json:"modified,omitempty"`
	UptimeSeconds float64 `json:"uptime_seconds"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := healthResponse{
		Status:        "ok",
		UptimeSeconds: time.Since(s.start).Seconds(),
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		h.GoVersion = bi.GoVersion
		for _, kv := range bi.Settings {
			switch kv.Key {
			case "vcs.revision":
				h.Revision = kv.Value
			case "vcs.time":
				h.BuildTime = kv.Value
			case "vcs.modified":
				h.Modified = kv.Value == "true"
			}
		}
	}
	status := http.StatusOK
	if s.draining.Load() {
		h.Status = "draining"
		status = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(h)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "prometheus" {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		obs.WritePrometheus(w, s.metrics.promCounters(), s.obs.Latency())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, s.metrics.vars.String())
}

// marshalEnvelope serializes the response body. Cached bodies are these
// exact bytes, replayed verbatim — a warm response is byte-identical to
// the cold one that populated it.
func marshalEnvelope(env api.Envelope) []byte {
	body, err := json.Marshal(env)
	if err != nil {
		// Envelope contains only marshalable types; this is unreachable
		// short of a programming error in the wire structs.
		body, _ = json.Marshal(api.Envelope{Error: &api.Error{
			Code: api.CodeCompileError, Message: "response serialization failed: " + err.Error(),
		}})
	}
	return append(body, '\n')
}

func (s *Server) writeEnvelope(w http.ResponseWriter, status int, env api.Envelope) {
	body := marshalEnvelope(env)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(status)
	w.Write(body)
}

func (s *Server) writeError(w http.ResponseWriter, status int, code, msg string) {
	e := &api.Error{Code: code, Message: msg}
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", s.retryAfterSeconds())
		e.QueueDepth = s.queued.Load()
	}
	s.writeEnvelope(w, status, api.Envelope{Error: e})
}

// overloadedError builds the 429 error body, including the queue depth
// observed at shed time so clients can size their backoff.
func (s *Server) overloadedError(err error) *api.Error {
	return &api.Error{
		Code:       api.CodeOverloaded,
		Message:    err.Error(),
		QueueDepth: s.queued.Load(),
	}
}

// replay writes a cache entry's stored response verbatim.
func (s *Server) replay(w http.ResponseWriter, e *entry) {
	if e.status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", s.retryAfterSeconds())
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(e.body)))
	w.WriteHeader(e.status)
	w.Write(e.body)
}

// capWriter keeps the first max bytes written and flags truncation.
type capWriter struct {
	buf       bytes.Buffer
	max       int
	truncated bool
}

func (c *capWriter) Write(p []byte) (int, error) {
	if room := c.max - c.buf.Len(); room < len(p) {
		if room > 0 {
			c.buf.Write(p[:room])
		}
		c.truncated = true
	} else {
		c.buf.Write(p)
	}
	return len(p), nil
}
