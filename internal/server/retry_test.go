package server

import (
	"testing"
	"time"
)

// fakeClock steps a rateEstimator through synthetic seconds.
type fakeClock struct{ t time.Time }

func (f *fakeClock) now() time.Time          { return f.t }
func (f *fakeClock) advance(d time.Duration) { f.t = f.t.Add(d) }

func newTestEstimator() (*rateEstimator, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1_000_000, 0)}
	re := newRateEstimator()
	re.now = clk.now
	return re, clk
}

func TestRetryAfterColdServer(t *testing.T) {
	re, _ := newTestEstimator()
	// No completions ever: fall back to the old constant, never a long
	// backoff computed from zero data.
	if got := re.retryAfter(100); got != 1 {
		t.Fatalf("cold retryAfter = %d, want 1", got)
	}
}

func TestRetryAfterTracksServiceRate(t *testing.T) {
	re, clk := newTestEstimator()
	// 10 completions/sec for 5 full seconds.
	for s := 0; s < 5; s++ {
		for i := 0; i < 10; i++ {
			re.record()
		}
		clk.advance(time.Second)
	}
	// 19 queued ahead + this request = 20 units at 10/s → 2 seconds.
	if got := re.retryAfter(19); got != 2 {
		t.Fatalf("retryAfter(19) at 10/s = %d, want 2", got)
	}
	// A short queue rounds up to at least 1.
	if got := re.retryAfter(0); got != 1 {
		t.Fatalf("retryAfter(0) = %d, want 1", got)
	}
}

func TestRetryAfterIgnoresCurrentPartialSecond(t *testing.T) {
	re, clk := newTestEstimator()
	for i := 0; i < 10; i++ {
		re.record()
	}
	clk.advance(time.Second)
	// One burst just landed in the now-current second; only the full
	// second before it should count.
	for i := 0; i < 1000; i++ {
		re.record()
	}
	if got := re.retryAfter(19); got != 2 {
		t.Fatalf("retryAfter with partial-second burst = %d, want 2 (10/s over the full second)", got)
	}
}

func TestRetryAfterCountsIdleSeconds(t *testing.T) {
	re, clk := newTestEstimator()
	// One completion, then 9 idle seconds: the rate is 1/10 per second,
	// not 1 per second — idle time is signal when the server is stuck.
	re.record()
	clk.advance(10 * time.Second)
	re.record() // current partial second; excluded from the rate
	got := re.retryAfter(0)
	if got < 5 {
		t.Fatalf("retryAfter after idle stretch = %d, want >= 5 (idle seconds must dilute the rate)", got)
	}
}

func TestRetryAfterClamped(t *testing.T) {
	re, clk := newTestEstimator()
	re.record()
	clk.advance(time.Second)
	// 1/s rate with 10k queued would be hours; the clamp caps it.
	if got := re.retryAfter(10_000); got != retryAfterMax {
		t.Fatalf("retryAfter(10000) = %d, want clamp %d", got, retryAfterMax)
	}
}

func TestRetryAfterWindowExpiry(t *testing.T) {
	re, clk := newTestEstimator()
	for i := 0; i < 100; i++ {
		re.record()
	}
	// Far in the future every old bucket is stale; back to the default.
	clk.advance(time.Duration(rateWindowSecs+5) * time.Second)
	if got := re.retryAfter(50); got != 1 {
		t.Fatalf("retryAfter after window expiry = %d, want 1", got)
	}
}
