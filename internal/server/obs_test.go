package server

// Service-observability end-to-end tests: request-id propagation on every
// response path, the Prometheus exposition parsed line by line, the
// /debug/requests introspection surface, latency percentiles in /metrics,
// queue depth in 429 bodies, and readiness during drain.

import (
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"objinline"
	"objinline/internal/obs"
	"objinline/internal/server/api"
)

// TestRequestIDOnEveryPath checks X-Oicd-Request-Id is echoed (or minted)
// on success, compile failure, bad request, 404, and shed responses.
func TestRequestIDOnEveryPath(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	do := func(method, path, id string, body string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(method, ts.URL+path, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if id != "" {
			req.Header.Set(obs.RequestIDHeader, id)
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp
	}

	cases := []struct {
		name       string
		method     string
		path       string
		body       string
		wantStatus int
	}{
		{"success", "POST", "/v1/compile", `{"source":"func main() { print(1); }"}`, 200},
		{"compile error", "POST", "/v1/compile", `{"source":"func main() { nope"}`, 422},
		{"bad request", "POST", "/v1/compile", `{`, 400},
		{"unknown session", "DELETE", "/v1/session/nope", "", 404},
		{"metrics", "GET", "/metrics", "", 200},
		{"healthz", "GET", "/healthz", "", 200},
		{"unrouted", "GET", "/nope", "", 404},
	}
	for _, c := range cases {
		// Generated id.
		resp := do(c.method, c.path, "", c.body)
		if resp.StatusCode != c.wantStatus {
			t.Errorf("%s: status %d, want %d", c.name, resp.StatusCode, c.wantStatus)
		}
		if got := resp.Header.Get(obs.RequestIDHeader); got == "" {
			t.Errorf("%s: no generated request id", c.name)
		}
		// Client-supplied id echoed verbatim.
		resp = do(c.method, c.path, "client-id-"+strings.ReplaceAll(c.name, " ", "-"), c.body)
		if got, want := resp.Header.Get(obs.RequestIDHeader), "client-id-"+strings.ReplaceAll(c.name, " ", "-"); got != want {
			t.Errorf("%s: echoed id %q, want %q", c.name, got, want)
		}
	}
}

// TestShedCarriesRequestIDAndQueueDepth saturates a 1-worker server and
// checks the 429 body reports the queue depth and the response still
// carries the request id.
func TestShedCarriesRequestIDAndQueueDepth(t *testing.T) {
	_, ts := newTestServer(t, Config{PoolSize: 1, QueueDepth: 1})

	// Occupy the worker with a slow compile, then a queued one, then force
	// a shed. The big-source compile is slow enough to hold the token.
	slow := strings.Builder{}
	slow.WriteString("func main() { var x int; ")
	for i := 0; i < 4000; i++ {
		slow.WriteString("x = x + 1; ")
	}
	slow.WriteString("print(x); }")

	release := make(chan struct{})
	done := make(chan struct{}, 8)
	for i := 0; i < 6; i++ {
		i := i
		go func() {
			defer func() { done <- struct{}{} }()
			body, _ := json.Marshal(api.CompileRequest{
				Filename: "slow-" + strconv.Itoa(i) + ".icc",
				Source:   slow.String(),
			})
			<-release
			resp, err := ts.Client().Post(ts.URL+"/v1/compile", "application/json", strings.NewReader(string(body)))
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	close(release)

	// Keep firing distinct compiles until one sheds (the background ones
	// saturate pool+queue quickly).
	var shedResp *http.Response
	var shedBody []byte
	deadline := time.Now().Add(10 * time.Second)
	for i := 0; shedResp == nil && time.Now().Before(deadline); i++ {
		reqBody, _ := json.Marshal(api.CompileRequest{
			Filename: "probe-" + strconv.Itoa(i) + ".icc",
			Source:   slow.String(),
		})
		resp, err := ts.Client().Post(ts.URL+"/v1/compile", "application/json", strings.NewReader(string(reqBody)))
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			shedResp, shedBody = resp, b
		}
	}
	for i := 0; i < 6; i++ {
		<-done
	}
	if shedResp == nil {
		t.Skip("could not provoke a shed on this machine")
	}
	if shedResp.Header.Get(obs.RequestIDHeader) == "" {
		t.Error("shed response missing request id")
	}
	if shedResp.Header.Get("Retry-After") == "" {
		t.Error("shed response missing Retry-After")
	}
	var env api.Envelope
	if err := json.Unmarshal(shedBody, &env); err != nil || env.Error == nil {
		t.Fatalf("shed body: %s", shedBody)
	}
	if env.Error.Code != api.CodeOverloaded {
		t.Errorf("shed code = %q", env.Error.Code)
	}
	if env.Error.QueueDepth <= 0 {
		t.Errorf("shed queue_depth = %d, want > 0; body %s", env.Error.QueueDepth, shedBody)
	}
}

// promLine accepts the three legal exposition line shapes — the same
// contract the CI well-formedness check enforces.
var promLine = regexp.MustCompile(`^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .*|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [0-9eE.+-]+(Inf)?)$`)

// TestPrometheusScrape drives traffic, scrapes the exposition, and
// parses it line by line: every line well-formed, the expected series
// present, histogram buckets cumulative.
func TestPrometheusScrape(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// One miss, one hit.
	req := api.CompileRequest{Source: "func main() { print(7); }"}
	for i := 0; i < 2; i++ {
		if resp, body := postJSON(t, ts, "/v1/compile", req); resp.StatusCode != http.StatusOK {
			t.Fatalf("compile: %d %s", resp.StatusCode, body)
		}
	}

	resp, err := ts.Client().Get(ts.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scrape status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("scrape content-type %q", ct)
	}

	var sawRequests, sawHitBucket, sawMissBucket, sawCount bool
	var lastCum = make(map[string]uint64)
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" {
			continue
		}
		if !promLine.MatchString(line) {
			t.Errorf("malformed line: %q", line)
			continue
		}
		if strings.HasPrefix(line, "oicd_requests_total ") {
			sawRequests = true
		}
		if strings.HasPrefix(line, "oicd_request_duration_seconds_count{") {
			sawCount = true
		}
		if strings.HasPrefix(line, "oicd_request_duration_seconds_bucket{") {
			labels := line[:strings.LastIndexByte(line, ' ')]
			series := labels[:strings.Index(labels, `le="`)]
			val, err := strconv.ParseUint(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
			if err != nil {
				t.Fatalf("bucket value in %q: %v", line, err)
			}
			if val < lastCum[series] {
				t.Errorf("non-cumulative bucket in series %q: %d < %d", series, val, lastCum[series])
			}
			lastCum[series] = val
			if strings.Contains(line, `endpoint="/v1/compile"`) {
				if strings.Contains(line, `cache="hit"`) {
					sawHitBucket = true
				}
				if strings.Contains(line, `cache="miss"`) {
					sawMissBucket = true
				}
			}
		}
	}
	if !sawRequests || !sawCount || !sawHitBucket || !sawMissBucket {
		t.Errorf("missing series: requests=%v count=%v hit=%v miss=%v",
			sawRequests, sawCount, sawHitBucket, sawMissBucket)
	}
}

// TestMetricsPercentiles checks the JSON /metrics view stays flat and
// carries server-computed latency percentiles once traffic has flowed.
func TestMetricsPercentiles(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := api.CompileRequest{Source: "func main() { print(9); }"}
	if resp, body := postJSON(t, ts, "/v1/compile", req); resp.StatusCode != http.StatusOK {
		t.Fatalf("compile: %d %s", resp.StatusCode, body)
	}
	m := getMetrics(t, ts)
	for _, key := range []string{
		"latency_v1_compile_p50_ns", "latency_v1_compile_p95_ns", "latency_v1_compile_p99_ns",
	} {
		v, ok := m[key]
		if !ok {
			t.Fatalf("metrics missing %q", key)
		}
		if v <= 0 {
			t.Errorf("%s = %v, want > 0 after traffic", key, v)
		}
	}
	if m["latency_v1_compile_p50_ns"] > m["latency_v1_compile_p99_ns"] {
		t.Errorf("p50 %v above p99 %v", m["latency_v1_compile_p50_ns"], m["latency_v1_compile_p99_ns"])
	}
	// Endpoints with no traffic report zero, not absence.
	if v, ok := m["latency_v1_run_p50_ns"]; !ok || v != 0 {
		t.Errorf("untouched endpoint p50 = %v ok=%v, want 0", v, ok)
	}
}

// TestDebugRequestsAndTrace checks the introspection ring records the
// request with its compile spans grafted in, and the Chrome export is
// valid trace-event JSON carrying both service and compiler phases.
func TestDebugRequestsAndTrace(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := postJSON(t, ts, "/v1/compile", api.CompileRequest{Source: "func main() { print(3); }"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compile: %d %s", resp.StatusCode, body)
	}
	id := resp.Header.Get(obs.RequestIDHeader)

	resp2, err := ts.Client().Get(ts.URL + "/debug/requests")
	if err != nil {
		t.Fatal(err)
	}
	listing, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	var parsed struct {
		Total    uint64 `json:"total"`
		Requests []struct {
			ID     string `json:"id"`
			Route  string `json:"route"`
			Status int    `json:"status"`
			Cache  string `json:"cache"`
		} `json:"requests"`
	}
	if err := json.Unmarshal(listing, &parsed); err != nil {
		t.Fatalf("listing not JSON: %v\n%s", err, listing)
	}
	var found bool
	for _, r := range parsed.Requests {
		if r.ID == id {
			found = true
			if r.Route != "/v1/compile" || r.Status != 200 || r.Cache != "miss" {
				t.Errorf("record = %+v", r)
			}
		}
	}
	if !found {
		t.Fatalf("request %s not in ring: %s", id, listing)
	}

	resp3, err := ts.Client().Get(ts.URL + "/debug/requests/" + id + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	traceBody, _ := io.ReadAll(resp3.Body)
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("trace: %d %s", resp3.StatusCode, traceBody)
	}
	var tr struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(traceBody, &tr); err != nil {
		t.Fatalf("trace not JSON: %v", err)
	}
	want := map[string]bool{"http": false, "parse": false, "analysis": false}
	for _, ev := range tr.TraceEvents {
		if ev.Ph == "X" {
			if _, ok := want[ev.Name]; ok {
				want[ev.Name] = true
			}
		}
	}
	for name, ok := range want {
		if !ok {
			t.Errorf("trace missing %q span (request + grafted compiler phases): %s", name, traceBody)
		}
	}
}

// TestSessionTierObservability patches a session and checks the tier
// shows up in the ring record and as folded counters in the trace.
func TestSessionTierObservability(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	src := fixtureSource(t)
	resp, body := postJSON(t, ts, "/v1/session", api.CompileRequest{Source: src})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("session create: %d %s", resp.StatusCode, body)
	}
	var env api.Envelope
	json.Unmarshal(body, &env)
	if env.SessionID == "" {
		t.Fatal("no session id")
	}

	patchBody, _ := json.Marshal(api.SessionPatchRequest{Source: src + "\n"})
	req, _ := http.NewRequest(http.MethodPatch, ts.URL+"/v1/session/"+env.SessionID, strings.NewReader(string(patchBody)))
	presp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	pbody, _ := io.ReadAll(presp.Body)
	presp.Body.Close()
	if presp.StatusCode != http.StatusOK {
		t.Fatalf("patch: %d %s", presp.StatusCode, pbody)
	}
	var penv api.Envelope
	json.Unmarshal(pbody, &penv)
	if penv.Incremental == nil || penv.Incremental.Tier == "" {
		t.Fatalf("patch envelope missing incremental stats: %s", pbody)
	}
	id := presp.Header.Get(obs.RequestIDHeader)

	// The ring record carries the absorbing tier.
	lresp, err := ts.Client().Get(ts.URL + "/debug/requests")
	if err != nil {
		t.Fatal(err)
	}
	listing, _ := io.ReadAll(lresp.Body)
	lresp.Body.Close()
	var parsed struct {
		Requests []struct {
			ID    string `json:"id"`
			Tier  string `json:"tier"`
			Route string `json:"route"`
		} `json:"requests"`
	}
	if err := json.Unmarshal(listing, &parsed); err != nil {
		t.Fatal(err)
	}
	var rec *struct {
		ID    string `json:"id"`
		Tier  string `json:"tier"`
		Route string `json:"route"`
	}
	for i := range parsed.Requests {
		if parsed.Requests[i].ID == id {
			rec = &parsed.Requests[i]
		}
	}
	if rec == nil {
		t.Fatalf("patch request %s not in ring", id)
	}
	if rec.Tier != penv.Incremental.Tier || rec.Route != "/v1/session/{id}" {
		t.Errorf("ring record = %+v, want tier %q route /v1/session/{id}", rec, penv.Incremental.Tier)
	}

	// The trace export folds the tier counters into one session/tiers
	// counter track.
	tresp, err := ts.Client().Get(ts.URL + "/debug/requests/" + id + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	traceBody, _ := io.ReadAll(tresp.Body)
	tresp.Body.Close()
	var tr struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(traceBody, &tr); err != nil {
		t.Fatal(err)
	}
	var tiers bool
	for _, ev := range tr.TraceEvents {
		if ev.Ph == "C" && ev.Name == "session/tiers" {
			tiers = true
			if ev.Args[penv.Incremental.Tier] != float64(1) {
				t.Errorf("tier counter args = %v, want %s=1", ev.Args, penv.Incremental.Tier)
			}
		}
	}
	if !tiers {
		t.Errorf("no session/tiers counter track in %s", traceBody)
	}

	// The tier also labels the session-patch histogram cell.
	sresp, err := ts.Client().Get(ts.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	scrape, _ := io.ReadAll(sresp.Body)
	sresp.Body.Close()
	if !strings.Contains(string(scrape), `endpoint="/v1/session/{id}"`) ||
		!strings.Contains(string(scrape), `tier="`+penv.Incremental.Tier+`"`) {
		t.Errorf("scrape missing session-patch tier series (tier %q)", penv.Incremental.Tier)
	}
}

// TestHealthzDraining checks readiness flips to 503 with status
// "draining" once BeginDrain is called.
func TestHealthzDraining(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	srv.BeginDrain()
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining healthz status = %d, want 503", resp.StatusCode)
	}
	var h struct {
		Status string `json:"status"`
	}
	if err := json.Unmarshal(body, &h); err != nil || h.Status != "draining" {
		t.Errorf("draining healthz body = %s", body)
	}
}

// TestRingEvictionOverHTTP fills a small ring past capacity and checks
// the listing holds only the most recent requests while total keeps
// counting.
func TestRingEvictionOverHTTP(t *testing.T) {
	_, ts := newTestServer(t, Config{RequestRingEntries: 2})
	for i := 0; i < 5; i++ {
		resp, err := ts.Client().Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	resp, err := ts.Client().Get(ts.URL + "/debug/requests")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var parsed struct {
		Total    uint64            `json:"total"`
		Requests []json.RawMessage `json:"requests"`
	}
	if err := json.Unmarshal(body, &parsed); err != nil {
		t.Fatal(err)
	}
	if len(parsed.Requests) != 2 {
		t.Errorf("ring holds %d records, want 2", len(parsed.Requests))
	}
	if parsed.Total != 5 {
		t.Errorf("total = %d, want 5", parsed.Total)
	}
}

// TestRunEngineLabels checks run requests label their histogram cells
// with the engine.
func TestRunEngineLabels(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := postJSON(t, ts, "/v1/run", api.RunRequest{
		CompileRequest: api.CompileRequest{Source: "func main() { print(2); }"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run: %d %s", resp.StatusCode, body)
	}
	sresp, err := ts.Client().Get(ts.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	scrape, _ := io.ReadAll(sresp.Body)
	sresp.Body.Close()
	if !strings.Contains(string(scrape), `endpoint="/v1/run"`) {
		t.Error("no /v1/run series in scrape")
	}
	found := false
	for _, line := range strings.Split(string(scrape), "\n") {
		if strings.Contains(line, `endpoint="/v1/run"`) && strings.Contains(line, `engine="`+objinline.EngineVM.String()+`"`) {
			found = true
		}
	}
	if !found {
		t.Error("run series not labeled with vm engine")
	}
}
