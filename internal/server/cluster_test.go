package server

// Distributed-tier tests over real HTTP: forwarding must make the
// owner's singleflight a cluster-wide dedup with byte-identical
// responses through every front-end, hedged reads must win against a
// slow owner, a dead owner must degrade to local compute (not errors),
// and the disk tier must bring a restarted instance up warm.

import (
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"objinline/internal/cluster"
	"objinline/internal/server/api"
)

func quietLog() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.LevelError + 1}))
}

// clusterNode is one oicd instance in an in-process cluster.
type clusterNode struct {
	srv *Server
	ts  *httptest.Server
	cl  *cluster.Cluster
	url string
}

// newTestCluster stands up n instances that each know the full peer
// list. Listeners are bound before any server is built so every
// instance's URL is known to all of them from the start. The probe
// loop runs at a one-hour interval — membership is effectively static
// unless a test closes a node and waits, which none of these do (the
// probe-driven ejection path is covered in internal/cluster).
func newTestCluster(t *testing.T, n int, mut func(i int, cfg *Config)) []*clusterNode {
	t.Helper()
	before := runtime.NumGoroutine()
	listeners := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = l
		urls[i] = "http://" + l.Addr().String()
	}
	nodes := make([]*clusterNode, n)
	for i := range nodes {
		cl := cluster.New(cluster.Config{
			Self:          urls[i],
			Peers:         urls,
			ProbeInterval: time.Hour,
			Logger:        quietLog(),
		})
		cl.Start()
		cfg := Config{Cluster: cl}
		if mut != nil {
			mut(i, &cfg)
		}
		srv := New(cfg)
		ts := httptest.NewUnstartedServer(srv)
		ts.Listener.Close()
		ts.Listener = listeners[i]
		ts.Start()
		nodes[i] = &clusterNode{srv: srv, ts: ts, cl: cl, url: urls[i]}
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			nd.ts.Close()
			nd.srv.Close()
			nd.cl.Client().CloseIdleConnections()
			nd.cl.Close()
		}
		deadline := time.Now().Add(5 * time.Second)
		for runtime.NumGoroutine() > before+2 {
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				t.Errorf("goroutine leak: %d before, %d after cluster shutdown\n%s",
					before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	})
	return nodes
}

// defaultRequestKey computes the cache key prepare would assign a
// request with default config — how tests steer a key to a chosen
// owner.
func defaultRequestKey(t *testing.T, filename, source string) string {
	t.Helper()
	cfg, err := api.Config{}.ToConfig()
	if err != nil {
		t.Fatal(err)
	}
	return cacheKey(cfg, filename, source)
}

// filenameOwnedBy searches for a filename whose default-config key the
// given node owns on cl's ring.
func filenameOwnedBy(t *testing.T, cl *cluster.Cluster, owner, source string) string {
	t.Helper()
	for i := 0; i < 4096; i++ {
		fn := fmt.Sprintf("owned%d.icc", i)
		if cl.RouteKey(defaultRequestKey(t, fn, source)).Owner == owner {
			return fn
		}
	}
	t.Fatalf("no filename found whose key is owned by %s", owner)
	return ""
}

// TestClusterForwardDedup compiles the same source through all three
// front-ends; the owner's singleflight must be the only compile in the
// whole cluster and every front must return the same bytes.
func TestClusterForwardDedup(t *testing.T) {
	nodes := newTestCluster(t, 3, nil)
	src := fixtureSource(t)
	req := api.CompileRequest{Source: src}

	var bodies [][]byte
	for _, nd := range nodes {
		resp, body := postJSON(t, nd.ts, "/v1/compile", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("compile via %s: status %d\n%s", nd.url, resp.StatusCode, body)
		}
		if resp.Header.Get("X-Oicd-Owner") == "" {
			t.Errorf("compile via %s: missing X-Oicd-Owner header", nd.url)
		}
		bodies = append(bodies, body)
	}
	for i := 1; i < len(bodies); i++ {
		if string(bodies[i]) != string(bodies[0]) {
			t.Errorf("front %d returned different bytes than front 0:\n%s\nvs\n%s",
				i, bodies[i], bodies[0])
		}
	}

	var compiles, forwards float64
	for _, nd := range nodes {
		m := getMetrics(t, nd.ts)
		compiles += m["compiles_total"]
		forwards += m["forwards_total"]
	}
	if compiles != 1 {
		t.Errorf("cluster-wide compiles_total = %v, want 1 (owner singleflight must dedup)", compiles)
	}
	if forwards != 2 {
		t.Errorf("cluster-wide forwards_total = %v, want 2 (two non-owner fronts)", forwards)
	}
}

// TestClusterWarmHitAcrossFronts pins the smoke-test contract: compile
// through front A, then read through front B — B forwards to the same
// owner and gets a byte-identical cache hit.
func TestClusterWarmHitAcrossFronts(t *testing.T) {
	nodes := newTestCluster(t, 3, nil)
	src := fixtureSource(t)
	// A key owned by node 1, so both front 0 and front 2 must forward.
	fn := filenameOwnedBy(t, nodes[0].cl, nodes[1].url, src)
	req := api.CompileRequest{Filename: fn, Source: src}

	respA, bodyA := postJSON(t, nodes[0].ts, "/v1/compile", req)
	if respA.StatusCode != http.StatusOK {
		t.Fatalf("cold compile: status %d\n%s", respA.StatusCode, bodyA)
	}
	if got := respA.Header.Get("X-Oicd-Cache"); got != "miss" {
		t.Errorf("cold compile X-Oicd-Cache = %q, want miss", got)
	}
	if got := respA.Header.Get("X-Oicd-Owner"); got != nodes[1].url {
		t.Errorf("cold compile X-Oicd-Owner = %q, want %q", got, nodes[1].url)
	}

	respB, bodyB := postJSON(t, nodes[2].ts, "/v1/compile", req)
	if respB.StatusCode != http.StatusOK {
		t.Fatalf("warm compile: status %d\n%s", respB.StatusCode, bodyB)
	}
	if got := respB.Header.Get("X-Oicd-Cache"); got != "hit" {
		t.Errorf("warm compile via other front X-Oicd-Cache = %q, want hit", got)
	}
	if string(bodyB) != string(bodyA) {
		t.Errorf("warm body differs from cold body:\n%s\nvs\n%s", bodyB, bodyA)
	}
	if m := getMetrics(t, nodes[1].ts); m["compiles_total"] != 1 {
		t.Errorf("owner compiles_total = %v, want 1", m["compiles_total"])
	}
}

// TestClusterOwnerDownLocalFallback kills a key's owner outright; the
// surviving front must absorb the forward failure and compile locally.
func TestClusterOwnerDownLocalFallback(t *testing.T) {
	nodes := newTestCluster(t, 2, nil)
	src := fixtureSource(t)
	fn := filenameOwnedBy(t, nodes[0].cl, nodes[1].url, src)

	// The owner dies without draining (its listener just goes away); the
	// front's ring still routes to it because no probe has run.
	nodes[1].ts.Close()

	resp, body := postJSON(t, nodes[0].ts, "/v1/compile", api.CompileRequest{Filename: fn, Source: src})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compile with dead owner: status %d\n%s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Oicd-Owner"); got != nodes[0].url {
		t.Errorf("fallback X-Oicd-Owner = %q, want self %q", got, nodes[0].url)
	}
	m := getMetrics(t, nodes[0].ts)
	if m["forward_local_fallback_total"] != 1 {
		t.Errorf("forward_local_fallback_total = %v, want 1", m["forward_local_fallback_total"])
	}
	if m["compiles_total"] != 1 {
		t.Errorf("local compiles_total = %v, want 1", m["compiles_total"])
	}
}

// TestClusterHedgeWin wires a front-end to two stub peers: the key's
// owner answers slowly, the next replica instantly. The hedge must
// fire after the (default) delay, win, and mark the response.
func TestClusterHedgeWin(t *testing.T) {
	stubBody := func(marker string) string {
		return fmt.Sprintf("{\"file\":\"%s\"}\n", marker)
	}
	newStub := func(delay time.Duration, marker string) *httptest.Server {
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			// Drain the body so the server watches the connection and
			// cancels r.Context() when the reaped loser hangs up.
			io.Copy(io.Discard, r.Body)
			select {
			case <-time.After(delay):
			case <-r.Context().Done():
				return
			}
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("X-Oicd-Cache", "hit")
			io.WriteString(w, stubBody(marker))
		}))
	}
	slow := newStub(2*time.Second, "slow-owner")
	defer slow.Close()
	fast := newStub(0, "fast-replica")
	defer fast.Close()

	before := runtime.NumGoroutine()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	self := "http://" + l.Addr().String()
	cl := cluster.New(cluster.Config{
		Self:          self,
		Peers:         []string{self, slow.URL, fast.URL},
		ProbeInterval: time.Hour,
		Logger:        quietLog(),
	})
	cl.Start()
	srv := New(Config{Cluster: cl})
	ts := httptest.NewUnstartedServer(srv)
	ts.Listener.Close()
	ts.Listener = l
	ts.Start()
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
		cl.Client().CloseIdleConnections()
		cl.Close()
		deadline := time.Now().Add(5 * time.Second)
		for runtime.NumGoroutine() > before+2 {
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				t.Errorf("goroutine leak after hedge test\n%s", buf[:runtime.Stack(buf, true)])
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	})

	src := fixtureSource(t)
	fn := filenameOwnedBy(t, cl, slow.URL, src)
	resp, body := postJSON(t, ts, "/v1/compile", api.CompileRequest{Filename: fn, Source: src})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("hedged compile: status %d\n%s", resp.StatusCode, body)
	}
	if string(body) != stubBody("fast-replica") {
		t.Errorf("hedged response body = %s, want the fast replica's", body)
	}
	if got := resp.Header.Get("X-Oicd-Hedge"); got != "1" {
		t.Errorf("X-Oicd-Hedge = %q, want 1", got)
	}
	m := getMetrics(t, ts)
	if m["hedges_total"] != 1 || m["hedge_wins_total"] != 1 {
		t.Errorf("hedges_total=%v hedge_wins_total=%v, want 1 and 1",
			m["hedges_total"], m["hedge_wins_total"])
	}
}

// TestClusterDiskWarmRestart restarts a disk-backed instance and
// demands a warm, byte-identical, zero-compile replay — then exercises
// the lazy program upgrade behind a replayed entry via /v1/run.
func TestClusterDiskWarmRestart(t *testing.T) {
	dir := t.TempDir()
	src := fixtureSource(t)
	req := api.CompileRequest{Source: src}

	store, err := cluster.OpenStore(dir, cluster.StoreOptions{Logger: quietLog()})
	if err != nil {
		t.Fatal(err)
	}
	srvA := New(Config{Disk: store})
	tsA := httptest.NewServer(srvA)
	respA, bodyA := postJSON(t, tsA, "/v1/compile", req)
	if respA.StatusCode != http.StatusOK {
		t.Fatalf("cold compile: status %d\n%s", respA.StatusCode, bodyA)
	}
	mA := getMetrics(t, tsA)
	if mA["disk_appends_total"] < 1 {
		t.Errorf("disk_appends_total = %v, want >= 1", mA["disk_appends_total"])
	}
	tsA.Close()
	srvA.Close() // compacts the disk tier
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	store2, err := cluster.OpenStore(dir, cluster.StoreOptions{Logger: quietLog()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store2.Close() })
	srvB := New(Config{Disk: store2})
	tsB := httptest.NewServer(srvB)
	t.Cleanup(func() { tsB.Close(); srvB.Close() })

	respB, bodyB := postJSON(t, tsB, "/v1/compile", req)
	if respB.StatusCode != http.StatusOK {
		t.Fatalf("warm compile after restart: status %d\n%s", respB.StatusCode, bodyB)
	}
	if got := respB.Header.Get("X-Oicd-Cache"); got != "hit" {
		t.Errorf("restarted X-Oicd-Cache = %q, want hit (disk-seeded)", got)
	}
	if string(bodyB) != string(bodyA) {
		t.Errorf("restarted body differs from original:\n%s\nvs\n%s", bodyB, bodyA)
	}
	mB := getMetrics(t, tsB)
	if mB["compiles_total"] != 0 {
		t.Errorf("compiles_total after warm replay = %v, want 0", mB["compiles_total"])
	}
	if mB["disk_replayed_total"] < 1 {
		t.Errorf("disk_replayed_total = %v, want >= 1", mB["disk_replayed_total"])
	}

	// Running a replayed key needs the program back: exactly one lazy
	// recompile (under a worker token), then the run proceeds as usual.
	respRun, bodyRun := postJSON(t, tsB, "/v1/run", api.RunRequest{CompileRequest: req})
	if respRun.StatusCode != http.StatusOK {
		t.Fatalf("run on disk-seeded entry: status %d\n%s", respRun.StatusCode, bodyRun)
	}
	if m := getMetrics(t, tsB); m["disk_upgrades_total"] != 1 {
		t.Errorf("disk_upgrades_total = %v, want 1", m["disk_upgrades_total"])
	}
}

// TestClusterMetricsExposition pins the new occupancy and disk gauges
// in both metrics formats.
func TestClusterMetricsExposition(t *testing.T) {
	dir := t.TempDir()
	store, err := cluster.OpenStore(dir, cluster.StoreOptions{Logger: quietLog()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	_, ts := newTestServer(t, Config{Disk: store})

	if resp, body := postJSON(t, ts, "/v1/compile", api.CompileRequest{Source: fixtureSource(t)}); resp.StatusCode != http.StatusOK {
		t.Fatalf("compile: status %d\n%s", resp.StatusCode, body)
	}

	m := getMetrics(t, ts)
	if m["cache_bytes"] <= 0 {
		t.Errorf("cache_bytes = %v, want > 0 after a compile", m["cache_bytes"])
	}
	if m["disk_wal_bytes"] <= 0 {
		t.Errorf("disk_wal_bytes = %v, want > 0 after a persisted compile", m["disk_wal_bytes"])
	}

	resp, err := ts.Client().Get(ts.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	text, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# TYPE oicd_cache_bytes gauge",
		"# TYPE oicd_native_cache_bytes gauge",
		"# TYPE oicd_disk_wal_bytes gauge",
		"# TYPE oicd_cluster_peers_total gauge",
		"oicd_forwards_total 0",
		"oicd_disk_appends_total 1",
		"oicd_native_batch_invocations_total 0",
	} {
		if !strings.Contains(string(text), want) {
			t.Errorf("prometheus exposition missing %q", want)
		}
	}
}
