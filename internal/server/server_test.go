package server

// End-to-end tests over real HTTP: the response envelope is a golden
// contract (same schema as oic -json), the cache must dedupe concurrent
// identical work, saturation must shed with 429, deadlines must cancel
// promptly without poisoning the cache, and nothing may leak goroutines.

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"objinline"
	"objinline/internal/server/api"
)

var update = flag.Bool("update", false, "rewrite golden files")

const fixturePath = "../../testdata/explain.icc"

func fixtureSource(t *testing.T) string {
	t.Helper()
	src, err := os.ReadFile(fixturePath)
	if err != nil {
		t.Fatal(err)
	}
	return string(src)
}

// newTestServer stands a server up behind real HTTP and registers a
// goroutine-leak check: after the server closes, the goroutine count must
// return to its pre-test level (small slack for runtime background
// threads), or a handler or waiter is stuck.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	before := runtime.NumGoroutine()
	srv := New(cfg)
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		deadline := time.Now().Add(5 * time.Second)
		for runtime.NumGoroutine() > before+2 {
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				t.Errorf("goroutine leak: %d before, %d after shutdown\n%s",
					before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	})
	return srv, ts
}

func postJSON(t *testing.T, ts *httptest.Server, path string, req any) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	got, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, got
}

func getMetrics(t *testing.T, ts *httptest.Server) map[string]float64 {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]float64
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("metrics is not flat JSON numbers: %v", err)
	}
	return m
}

// normalizeEnvelope zeroes the wall-clock fields (phase timings) so the
// rest of the envelope can be compared byte for byte.
func normalizeEnvelope(t *testing.T, body []byte) []byte {
	t.Helper()
	var env map[string]any
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("response is not JSON: %v\n%s", err, body)
	}
	if stats, ok := env["stats"].(map[string]any); ok {
		if _, ok := stats["total_nanos"]; ok {
			stats["total_nanos"] = float64(1)
		}
		if phases, ok := stats["phases"].([]any); ok {
			for _, p := range phases {
				if ph, ok := p.(map[string]any); ok {
					ph["nanos"] = float64(1)
					ph["start_nanos"] = float64(0)
				}
			}
		}
	}
	out, err := json.MarshalIndent(env, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(out, '\n')
}

// TestCompileEnvelopeGolden pins the /v1/compile response schema — the
// same envelope oic -json emits, with decisions, rejections, and stats.
func TestCompileEnvelopeGolden(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := postJSON(t, ts, "/v1/compile", api.CompileRequest{
		Filename: "explain.icc",
		Source:   fixtureSource(t),
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Oicd-Cache"); got != "miss" {
		t.Errorf("X-Oicd-Cache = %q, want miss", got)
	}
	if resp.Header.Get("X-Oicd-Cache-Key") == "" {
		t.Error("no X-Oicd-Cache-Key header")
	}
	got := normalizeEnvelope(t, body)
	golden := "testdata/compile_envelope.golden"
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("envelope drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestWarmResponseByteIdentical pins the cache acceptance: a warm
// response replays the cold response's exact bytes, with the cache status
// only in headers.
func TestWarmResponseByteIdentical(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := api.CompileRequest{Filename: "explain.icc", Source: fixtureSource(t)}
	cold, coldBody := postJSON(t, ts, "/v1/compile", req)
	warm, warmBody := postJSON(t, ts, "/v1/compile", req)
	if cold.StatusCode != http.StatusOK || warm.StatusCode != http.StatusOK {
		t.Fatalf("statuses %d/%d", cold.StatusCode, warm.StatusCode)
	}
	if !bytes.Equal(coldBody, warmBody) {
		t.Errorf("warm body differs from cold:\n--- cold ---\n%s\n--- warm ---\n%s", coldBody, warmBody)
	}
	if c, w := cold.Header.Get("X-Oicd-Cache"), warm.Header.Get("X-Oicd-Cache"); c != "miss" || w != "hit" {
		t.Errorf("cache headers cold=%q warm=%q, want miss/hit", c, w)
	}
	if c, w := cold.Header.Get("X-Oicd-Cache-Key"), warm.Header.Get("X-Oicd-Cache-Key"); c != w {
		t.Errorf("cache keys differ: %q vs %q", c, w)
	}
}

// TestSingleflightDedup checks N concurrent identical compiles coalesce
// onto one compilation: every response succeeds with identical bytes and
// compiles_total ends at exactly 1.
func TestSingleflightDedup(t *testing.T) {
	_, ts := newTestServer(t, Config{PoolSize: 4})
	req := api.CompileRequest{Filename: "explain.icc", Source: fixtureSource(t)}
	const n = 16
	bodies := make([][]byte, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, _ := json.Marshal(req)
			resp, err := ts.Client().Post(ts.URL+"/v1/compile", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			bodies[i], _ = io.ReadAll(resp.Body)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("request %d: status %d", i, resp.StatusCode)
			}
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("request %d body differs from request 0", i)
		}
	}
	if m := getMetrics(t, ts); m["compiles_total"] != 1 {
		t.Errorf("compiles_total = %v, want 1 (singleflight should dedupe)", m["compiles_total"])
	}
}

// TestShedUnderSaturation checks the backpressure contract with a
// one-worker, one-slot queue: while one run occupies the worker and one
// waits, a third request is shed with 429 + Retry-After, and requests
// below the limit are never dropped.
func TestShedUnderSaturation(t *testing.T) {
	_, ts := newTestServer(t, Config{PoolSize: 1, QueueDepth: 1})
	const loop = "func main() { var i = 0; while (true) { i = i + 1; } }"
	// Warm the compile cache so the runs below go straight to admission.
	if resp, body := postJSON(t, ts, "/v1/compile", api.CompileRequest{Source: loop}); resp.StatusCode != http.StatusOK {
		t.Fatalf("warmup compile: status %d: %s", resp.StatusCode, body)
	}

	runReq := api.RunRequest{CompileRequest: api.CompileRequest{Source: loop, DeadlineMillis: 1500}}
	results := make(chan int, 2)
	for i := 0; i < 2; i++ {
		go func() {
			resp, _ := postJSON(t, ts, "/v1/run", runReq)
			results <- resp.StatusCode
		}()
	}
	// Wait until the worker is busy and the queue slot is taken.
	deadline := time.Now().Add(2 * time.Second)
	for {
		m := getMetrics(t, ts)
		if m["workers_busy"] >= 1 && m["queue_depth"] >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("saturation never established: %v", getMetrics(t, ts))
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, body := postJSON(t, ts, "/v1/run", runReq)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third request: status %d, want 429: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	var env api.Envelope
	if err := json.Unmarshal(body, &env); err != nil || env.Error == nil || env.Error.Code != api.CodeOverloaded {
		t.Errorf("shed envelope = %s", body)
	}

	// The two admitted runs are infinite loops: their deadlines cancel
	// them (504), but they were never dropped.
	for i := 0; i < 2; i++ {
		if code := <-results; code != http.StatusGatewayTimeout {
			t.Errorf("admitted run %d: status %d, want 504", i, code)
		}
	}
	m := getMetrics(t, ts)
	if m["shed_total"] != 1 {
		t.Errorf("shed_total = %v, want 1", m["shed_total"])
	}
}

// TestCompileDeadlineNotCached checks a deadline-canceled compile returns
// 504 promptly and is NOT cached: retrying the same key compiles again
// (compiles_total advances), unlike a deterministic compile error.
func TestCompileDeadlineNotCached(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := api.CompileRequest{Source: blowupSource(20), DeadlineMillis: 20}
	start := time.Now()
	resp, body := postJSON(t, ts, "/v1/compile", req)
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", resp.StatusCode, body)
	}
	if elapsed > 20*time.Millisecond+500*time.Millisecond {
		t.Errorf("deadline response took %v", elapsed)
	}
	var env api.Envelope
	if err := json.Unmarshal(body, &env); err != nil || env.Error == nil || env.Error.Code != api.CodeDeadlineExceeded {
		t.Errorf("deadline envelope = %s", body)
	}
	if resp, _ = postJSON(t, ts, "/v1/compile", req); resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("retry status %d, want 504 again", resp.StatusCode)
	}
	if m := getMetrics(t, ts); m["compiles_total"] != 2 {
		t.Errorf("compiles_total = %v, want 2 (canceled compiles must not be cached)", m["compiles_total"])
	}
	if m := getMetrics(t, ts); m["deadline_exceeded_total"] < 2 {
		t.Errorf("deadline_exceeded_total = %v, want >= 2", m["deadline_exceeded_total"])
	}
}

// TestCompileErrorCached checks the complementary policy: a deterministic
// compile error is a result like any other — 422, cached, deduped.
func TestCompileErrorCached(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := api.CompileRequest{Source: "func main() { return undefined_name; }"}
	first, firstBody := postJSON(t, ts, "/v1/compile", req)
	if first.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422: %s", first.StatusCode, firstBody)
	}
	var env api.Envelope
	if err := json.Unmarshal(firstBody, &env); err != nil || env.Error == nil || env.Error.Code != api.CodeCompileError {
		t.Fatalf("compile-error envelope = %s", firstBody)
	}
	second, secondBody := postJSON(t, ts, "/v1/compile", req)
	if second.StatusCode != http.StatusUnprocessableEntity || !bytes.Equal(firstBody, secondBody) {
		t.Errorf("cached error replay drifted: status %d body %s", second.StatusCode, secondBody)
	}
	if got := second.Header.Get("X-Oicd-Cache"); got != "hit" {
		t.Errorf("second error response X-Oicd-Cache = %q, want hit", got)
	}
	if m := getMetrics(t, ts); m["compiles_total"] != 1 {
		t.Errorf("compiles_total = %v, want 1", m["compiles_total"])
	}
}

// TestRunEndpoint checks /v1/run returns the program's counters, output,
// and profile.
func TestRunEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := postJSON(t, ts, "/v1/run", api.RunRequest{
		CompileRequest: api.CompileRequest{Filename: "explain.icc", Source: fixtureSource(t)},
		Profile:        true,
		IncludeOutput:  true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var env api.Envelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatal(err)
	}
	if env.Metrics == nil || env.Metrics.Instructions == 0 {
		t.Errorf("run envelope has no metrics: %s", body)
	}
	if env.Output != "21\ntrue\n" {
		t.Errorf("output = %q, want %q", env.Output, "21\ntrue\n")
	}
	if env.Profile == nil || len(env.Profile.Sites) == 0 {
		t.Errorf("profiled run envelope has no sites: %s", body)
	}
}

// TestRunDeadline checks an infinite loop is canceled at the request
// deadline with 504.
func TestRunDeadline(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	start := time.Now()
	resp, body := postJSON(t, ts, "/v1/run", api.RunRequest{
		CompileRequest: api.CompileRequest{
			Source:         "func main() { var i = 0; while (true) { i = i + 1; } }",
			DeadlineMillis: 100,
		},
	})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", resp.StatusCode, body)
	}
	if elapsed := time.Since(start); elapsed > 600*time.Millisecond {
		t.Errorf("deadline response took %v", elapsed)
	}
}

// TestRunOutputTruncated checks the output cap flags truncation instead
// of ballooning the envelope.
func TestRunOutputTruncated(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxOutputBytes: 8})
	resp, body := postJSON(t, ts, "/v1/run", api.RunRequest{
		CompileRequest: api.CompileRequest{Source: "func main() { for (var i = 0; i < 100; i = i + 1) { print(i); } }"},
		IncludeOutput:  true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var env api.Envelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatal(err)
	}
	if !env.OutputTruncated || len(env.Output) != 8 {
		t.Errorf("truncation: output %q (len %d), truncated=%v", env.Output, len(env.Output), env.OutputTruncated)
	}
}

// TestExplainEndpoint checks /v1/explain returns the typed Decision for
// both verdicts and 404s an unknown field.
func TestExplainEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	src := fixtureSource(t)
	resp, body := postJSON(t, ts, "/v1/explain", api.ExplainRequest{
		CompileRequest: api.CompileRequest{Filename: "explain.icc", Source: src},
		Field:          "Rect.p",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var env api.Envelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatal(err)
	}
	if env.Explain == nil || string(env.Explain.Verdict) != "inlined" {
		t.Errorf("explain envelope = %s", body)
	}

	resp, body = postJSON(t, ts, "/v1/explain", api.ExplainRequest{
		CompileRequest: api.CompileRequest{Filename: "explain.icc", Source: src},
		Field:          "Rect.nope",
	})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown field: status %d, want 404: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &env); err != nil || env.Error == nil || env.Error.Code != api.CodeUnknownField {
		t.Errorf("unknown-field envelope = %s", body)
	}
}

// TestBadRequests checks the 400/413 validation surface.
func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxSourceBytes: 64})
	cases := []struct {
		name   string
		path   string
		req    any
		status int
	}{
		{"missing source", "/v1/compile", api.CompileRequest{}, http.StatusBadRequest},
		{"bad mode", "/v1/compile", api.CompileRequest{Source: "func main() {}", Config: api.Config{Mode: "turbo"}}, http.StatusBadRequest},
		{"oversized source", "/v1/compile", api.CompileRequest{Source: strings.Repeat("// pad\n", 64)}, http.StatusRequestEntityTooLarge},
		{"missing field", "/v1/explain", api.ExplainRequest{CompileRequest: api.CompileRequest{Source: "func main() {}"}}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, body := postJSON(t, ts, tc.path, tc.req)
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d: %s", tc.name, resp.StatusCode, tc.status, body)
		}
		var env api.Envelope
		if err := json.Unmarshal(body, &env); err != nil || env.Error == nil {
			t.Errorf("%s: no structured error: %s", tc.name, body)
		}
	}
	// Malformed JSON entirely.
	resp, err := ts.Client().Post(ts.URL+"/v1/compile", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: status %d, want 400", resp.StatusCode)
	}
}

// TestHealthzAndMetrics checks the operational endpoints.
func TestHealthzAndMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var health struct {
		Status        string  `json:"status"`
		GoVersion     string  `json:"go"`
		UptimeSeconds float64 `json:"uptime_seconds"`
	}
	if err := json.Unmarshal(body, &health); err != nil {
		t.Fatalf("healthz: unmarshal %q: %v", body, err)
	}
	if resp.StatusCode != http.StatusOK || health.Status != "ok" {
		t.Errorf("healthz: status %d body %q", resp.StatusCode, body)
	}
	if health.GoVersion == "" {
		t.Errorf("healthz: missing go version in %q", body)
	}
	m := getMetrics(t, ts)
	for _, key := range []string{
		"requests_total", "compiles_total", "runs_total", "shed_total",
		"deadline_exceeded_total", "inflight", "workers_busy", "queue_depth",
		"cache_entries", "cache_hits_total", "cache_misses_total", "cache_evictions_total",
	} {
		if _, ok := m[key]; !ok {
			t.Errorf("metrics missing %q: %v", key, m)
		}
	}
}

// TestLRUEviction checks the cache honors its bound and counts evictions.
func TestLRUEviction(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheEntries: 2})
	for i := 0; i < 4; i++ {
		req := api.CompileRequest{Source: fmt.Sprintf("func main() { print(%d); }", i)}
		if resp, body := postJSON(t, ts, "/v1/compile", req); resp.StatusCode != http.StatusOK {
			t.Fatalf("compile %d: status %d: %s", i, resp.StatusCode, body)
		}
	}
	m := getMetrics(t, ts)
	if m["cache_entries"] > 2 {
		t.Errorf("cache_entries = %v, want <= 2", m["cache_entries"])
	}
	if m["cache_evictions_total"] != 2 {
		t.Errorf("cache_evictions_total = %v, want 2", m["cache_evictions_total"])
	}
}

// TestGracefulShutdownDrain checks http.Server.Shutdown waits for an
// in-flight request (a run pinned by its deadline) to finish and deliver
// its response, while new connections are refused.
func TestGracefulShutdownDrain(t *testing.T) {
	srv := New(Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: srv}
	go hs.Serve(ln)
	base := "http://" + ln.Addr().String()

	// Park a request in the server: an infinite loop that its 800ms
	// deadline will cancel.
	type result struct {
		status int
		err    error
	}
	inflight := make(chan result, 1)
	go func() {
		body, _ := json.Marshal(api.RunRequest{CompileRequest: api.CompileRequest{
			Source:         "func main() { var i = 0; while (true) { i = i + 1; } }",
			DeadlineMillis: 800,
		}})
		resp, err := http.Post(base+"/v1/run", "application/json", bytes.NewReader(body))
		if err != nil {
			inflight <- result{0, err}
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		inflight <- result{resp.StatusCode, nil}
	}()
	// Wait for it to be inside the handler.
	for deadline := time.Now().Add(2 * time.Second); ; {
		resp, err := http.Get(base + "/metrics")
		if err == nil {
			var m map[string]float64
			json.NewDecoder(resp.Body).Decode(&m)
			resp.Body.Close()
			if m["workers_busy"] >= 1 {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("in-flight request never reached the worker")
		}
		time.Sleep(5 * time.Millisecond)
	}

	shutdownStart := time.Now()
	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		t.Fatalf("shutdown did not drain: %v", err)
	}
	drainTime := time.Since(shutdownStart)

	r := <-inflight
	if r.err != nil {
		t.Fatalf("in-flight request was dropped during shutdown: %v", r.err)
	}
	if r.status != http.StatusGatewayTimeout {
		t.Errorf("drained request status %d, want 504 (deadline-canceled run)", r.status)
	}
	// The drain must have waited for the parked request's deadline.
	if drainTime < 100*time.Millisecond {
		t.Errorf("shutdown returned in %v — before the in-flight request finished?", drainTime)
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Error("server still accepting connections after Shutdown")
	}
}

// TestParallelSolverJobsClamp checks the per-request analysis-parallelism
// bound: a parallel-solver request succeeds whatever jobs value it names,
// the server clamps oversized (and zero) values to AnalysisJobs, and —
// because worker count never changes results — every jobs value maps to
// the same cache key, so a clamped request warms the cache for all of
// them.
func TestParallelSolverJobsClamp(t *testing.T) {
	_, ts := newTestServer(t, Config{AnalysisJobs: 2})
	src := fixtureSource(t)
	req := func(jobs int) api.CompileRequest {
		return api.CompileRequest{
			Filename: "explain.icc",
			Source:   src,
			Config:   api.Config{Solver: objinline.SolverParallel, Jobs: jobs},
		}
	}
	var keys []string
	var bodies [][]byte
	for i, jobs := range []int{0, 64, 1, 2} {
		resp, body := postJSON(t, ts, "/v1/compile", req(jobs))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("jobs=%d: status %d: %s", jobs, resp.StatusCode, body)
		}
		keys = append(keys, resp.Header.Get("X-Oicd-Cache-Key"))
		bodies = append(bodies, body)
		wantCache := "hit"
		if i == 0 {
			wantCache = "miss"
		}
		if c := resp.Header.Get("X-Oicd-Cache"); c != wantCache {
			t.Errorf("jobs=%d: cache %q, want %q (jobs must not fragment the cache)", jobs, c, wantCache)
		}
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] != keys[0] {
			t.Errorf("cache keys differ across jobs values: %q vs %q", keys[0], keys[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Errorf("response bodies differ across jobs values")
		}
	}

	// The solver itself is part of the key (its work counters are
	// observable in stats), so worklist and parallel must not share.
	wl, _ := postJSON(t, ts, "/v1/compile", api.CompileRequest{Filename: "explain.icc", Source: src})
	if k := wl.Header.Get("X-Oicd-Cache-Key"); k == keys[0] {
		t.Errorf("worklist and parallel requests share cache key %q", k)
	}
}
