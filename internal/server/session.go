package server

// Incremental sessions: POST /v1/session pins a compilation, PATCH
// /v1/session/{id} feeds it edited source, and the pinned
// objinline.Session absorbs each edit at the cheapest sound tier
// (reuse/patch/reopt/solve/cold — see the objinline.Session docs). The
// store is an LRU with a TTL: sessions hold a full compiled program and
// its analysis state in memory, so both bounds matter. Eviction only
// unlinks a session from the store — a patch already holding the
// session pointer finishes normally and the memory goes when it does;
// later requests for the id get 404.

import (
	"container/list"
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"objinline"
	"objinline/internal/obs"
	"objinline/internal/server/api"
	"objinline/internal/trace"
)

// session is one pinned incremental compilation.
type session struct {
	id       string
	filename string

	// mu serializes patches: the underlying objinline.Session is not
	// safe for concurrent use, and last-writer-wins ordering per session
	// is the API's contract. It is independent of the store's lock — an
	// in-flight patch never blocks store lookups or eviction.
	mu   sync.Mutex
	sess *objinline.Session

	// lastUsed is guarded by the store's mutex, not mu.
	lastUsed time.Time
}

// sessionStore is the server's session table: an LRU bound plus a TTL,
// both protecting memory (each session pins a compiled program and its
// analysis result).
type sessionStore struct {
	mu      sync.Mutex
	max     int
	ttl     time.Duration
	entries map[string]*list.Element // of *session
	order   *list.List               // front = most recently used

	creates, patches, evictions, expirations int64
	tiers                                    map[string]int64
}

func newSessionStore(max int, ttl time.Duration) *sessionStore {
	return &sessionStore{
		max:     max,
		ttl:     ttl,
		entries: make(map[string]*list.Element),
		order:   list.New(),
		tiers:   make(map[string]int64),
	}
}

// put installs a new session, evicting expired sessions and then the
// least recently used beyond the bound.
func (st *sessionStore) put(s *session) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.creates++
	s.lastUsed = time.Now()
	st.entries[s.id] = st.order.PushFront(s)
	st.pruneExpiredLocked()
	for st.order.Len() > st.max {
		back := st.order.Back()
		st.unlinkLocked(back)
		st.evictions++
	}
}

// get returns the session for id, refreshing its recency, or nil when
// the id is unknown, expired, or evicted.
func (st *sessionStore) get(id string) *session {
	st.mu.Lock()
	defer st.mu.Unlock()
	el, ok := st.entries[id]
	if !ok {
		return nil
	}
	s := el.Value.(*session)
	if st.ttl > 0 && time.Since(s.lastUsed) > st.ttl {
		st.unlinkLocked(el)
		st.expirations++
		return nil
	}
	s.lastUsed = time.Now()
	st.order.MoveToFront(el)
	return s
}

// remove deletes id, reporting whether it was present (and alive).
func (st *sessionStore) remove(id string) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	el, ok := st.entries[id]
	if !ok {
		return false
	}
	s := el.Value.(*session)
	expired := st.ttl > 0 && time.Since(s.lastUsed) > st.ttl
	st.unlinkLocked(el)
	if expired {
		st.expirations++
		return false
	}
	return true
}

// purge drops every session; Server.Close calls it so a drained server
// does not keep compiled programs pinned.
func (st *sessionStore) purge() {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.entries = make(map[string]*list.Element)
	st.order.Init()
}

func (st *sessionStore) pruneExpiredLocked() {
	if st.ttl <= 0 {
		return
	}
	for {
		back := st.order.Back()
		if back == nil || time.Since(back.Value.(*session).lastUsed) <= st.ttl {
			return
		}
		st.unlinkLocked(back)
		st.expirations++
	}
}

func (st *sessionStore) unlinkLocked(el *list.Element) {
	st.order.Remove(el)
	delete(st.entries, el.Value.(*session).id)
}

// recordTier counts one absorbed patch by its tier, returning the
// cumulative per-tier totals after the bump. /metrics serves the totals;
// the patch handler also stamps them onto its trace span, so a Chrome
// trace export renders the tier mix over time as a counter track.
func (st *sessionStore) recordTier(tier string) map[string]int64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.patches++
	st.tiers[tier]++
	totals := make(map[string]int64, len(st.tiers))
	for k, v := range st.tiers {
		totals[k] = v
	}
	return totals
}

// snapshot returns (active, creates, patches, evictions, expirations,
// per-tier counts) for the metrics endpoint.
func (st *sessionStore) snapshot() (int, int64, int64, int64, int64, map[string]int64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	tiers := make(map[string]int64, len(st.tiers))
	for k, v := range st.tiers {
		tiers[k] = v
	}
	return st.order.Len(), st.creates, st.patches, st.evictions, st.expirations, tiers
}

// newSessionID mints an unguessable 128-bit session id.
func newSessionID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing means the platform is broken; ids are only
		// lookup keys, so panicking beats serving predictable ones badly.
		panic("session id: " + err.Error())
	}
	return hex.EncodeToString(b[:])
}

// handleSessionCreate is POST /v1/session: a cold compile that pins its
// state for incremental patches. The response is the compile envelope
// plus the session id. Sessions compile without phase tracing — a trace
// sink shared across patches would grow without bound — so their stats
// carry the analysis work counters but no phase timings.
func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	var req api.CompileRequest
	if !s.decode(w, r, &req) {
		return
	}
	p, ok := s.prepare(w, r, &req)
	if !ok {
		return
	}
	defer p.cancel()
	if err := s.acquire(p.ctx); err != nil {
		s.writeAdmissionError(w, err)
		return
	}
	defer s.release()

	// A session create is a cold compile by definition; label the request
	// so its histogram cell and access-log record say so.
	oreq := obs.FromContext(r.Context())
	var span trace.Span
	if oreq != nil {
		oreq.Tier = objinline.TierCold
		span = oreq.Sink.Start(obs.SpanSession)
	}
	sess, err := objinline.NewSessionContext(p.ctx, p.filename, p.source, p.cfg)
	span.End()
	if err != nil {
		s.writeCompileError(w, p.filename, err)
		return
	}
	ss := &session{id: newSessionID(), filename: p.filename, sess: sess}
	s.sessions.put(ss)

	prog := sess.Program()
	cs := prog.CompileStats()
	s.writeEnvelope(w, http.StatusOK, api.Envelope{
		File:      p.filename,
		Mode:      prog.Mode().String(),
		CodeSize:  prog.CodeSize(),
		Inlined:   prog.InlinedFields(),
		Rejected:  prog.RejectedFields(),
		Stats:     &cs,
		SessionID: ss.id,
	})
}

// handleSessionPatch is PATCH /v1/session/{id}: recompile the session at
// the edited source, reusing as much prior work as the edit allows. The
// envelope is the same compile envelope /v1/compile produces for that
// source, plus the incremental stats saying which tier absorbed it.
func (s *Server) handleSessionPatch(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var req api.SessionPatchRequest
	if !s.decode(w, r, &req) {
		return
	}
	if req.Source == "" {
		s.writeError(w, http.StatusBadRequest, api.CodeBadRequest, "missing source field")
		return
	}
	if len(req.Source) > s.cfg.MaxSourceBytes {
		s.writeError(w, http.StatusRequestEntityTooLarge, api.CodeBadRequest,
			fmt.Sprintf("source is %d bytes; the limit is %d", len(req.Source), s.cfg.MaxSourceBytes))
		return
	}
	ss := s.sessions.get(id)
	if ss == nil {
		s.writeError(w, http.StatusNotFound, api.CodeUnknownSession,
			"unknown session "+id+" (expired, evicted, or never created)")
		return
	}

	ctx, cancel := s.deadlineContext(r.Context(), req.DeadlineMillis)
	defer cancel()
	// A patch occupies a compiler worker like any other compile; the
	// per-session mutex then serializes concurrent patches to one
	// session — each holds its token while it waits, which is the
	// honest accounting (it is about to do compiler work).
	if err := s.acquire(ctx); err != nil {
		s.writeAdmissionError(w, err)
		return
	}
	defer s.release()

	oreq := obs.FromContext(r.Context())
	var span trace.Span
	if oreq != nil {
		span = oreq.Sink.Start(obs.SpanPatch)
	}
	ss.mu.Lock()
	prog, st, err := ss.sess.PatchContext(ctx, req.Source)
	ss.mu.Unlock()
	if err != nil {
		span.End()
		s.writeCompileError(w, ss.filename, err)
		return
	}
	totals := s.sessions.recordTier(st.Tier)
	if oreq != nil {
		// The tier that absorbed this patch labels the request's histogram
		// cell and access-log record; the cumulative totals ride on the span
		// as tier_* counters, which the Chrome export folds into one
		// "session/tiers" counter track.
		oreq.Tier = st.Tier
		for _, tier := range []string{
			objinline.TierReuse, objinline.TierPatch, objinline.TierReopt,
			objinline.TierSolve, objinline.TierCold,
		} {
			span.Counter(obs.TierCounterPrefix+tier, totals[tier])
		}
	}
	span.End()
	cs := prog.CompileStats()
	s.writeEnvelope(w, http.StatusOK, api.Envelope{
		File:        ss.filename,
		Mode:        prog.Mode().String(),
		CodeSize:    prog.CodeSize(),
		Inlined:     prog.InlinedFields(),
		Rejected:    prog.RejectedFields(),
		Stats:       &cs,
		SessionID:   id,
		Incremental: &st,
	})
}

// handleSessionDelete is DELETE /v1/session/{id}: release the session.
func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.sessions.remove(id) {
		s.writeError(w, http.StatusNotFound, api.CodeUnknownSession,
			"unknown session "+id+" (expired, evicted, or never created)")
		return
	}
	s.writeEnvelope(w, http.StatusOK, api.Envelope{SessionID: id})
}

// deadlineContext applies the request's deadline discipline (default,
// then clamp to the maximum) without the full compile-request prepare.
func (s *Server) deadlineContext(parent context.Context, deadlineMillis int64) (context.Context, context.CancelFunc) {
	d := s.cfg.DefaultDeadline
	if deadlineMillis > 0 {
		d = time.Duration(deadlineMillis) * time.Millisecond
	}
	if d > s.cfg.MaxDeadline {
		d = s.cfg.MaxDeadline
	}
	return context.WithTimeout(parent, d)
}

// writeAdmissionError maps an acquire failure to 429 (shed) or 504
// (deadline landed while queued), bumping the matching counter.
func (s *Server) writeAdmissionError(w http.ResponseWriter, err error) {
	if errors.Is(err, errOverloaded) {
		s.metrics.shed.Add(1)
		s.writeError(w, http.StatusTooManyRequests, api.CodeOverloaded, err.Error())
		return
	}
	s.metrics.deadlineExceeded.Add(1)
	s.writeError(w, http.StatusGatewayTimeout, api.CodeDeadlineExceeded,
		"deadline exceeded waiting for a worker: "+err.Error())
}

// writeCompileError maps a compile failure to 504 on deadline/cancel and
// 422 otherwise, matching /v1/compile's status discipline.
func (s *Server) writeCompileError(w http.ResponseWriter, filename string, err error) {
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		s.metrics.deadlineExceeded.Add(1)
		s.writeEnvelope(w, http.StatusGatewayTimeout, api.Envelope{
			File:  filename,
			Error: &api.Error{Code: api.CodeDeadlineExceeded, Message: err.Error()},
		})
		return
	}
	s.writeEnvelope(w, http.StatusUnprocessableEntity, api.Envelope{
		File:  filename,
		Error: &api.Error{Code: api.CodeCompileError, Message: err.Error()},
	})
}
