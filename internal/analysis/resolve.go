package analysis

// Rep describes how a value is represented at run time once a set of
// fields has been chosen for inlining. A tag resolves to one or more of:
//
//   - the raw object itself (it did not flow from an inlined field);
//   - the container of an inlined field (identified by its FieldKey);
//   - confusion (the analysis cannot pin the representation down).
//
// This is the resolution step behind the paper's decision rule ("a field
// can be inline allocated only if this analysis is able to distinguish
// exactly where the given field is used"): a value that might be either a
// raw object and a container rep — or containers of two different fields —
// cannot be rewritten consistently, so the involved fields are rejected.
type Rep struct {
	Raw      bool
	Fields   map[FieldKey]bool
	Confused bool

	// Involved collects every candidate field consulted during
	// resolution; when a value turns out inconsistent, these are the
	// candidates the decision must reject.
	Involved map[FieldKey]bool
}

// Add merges another rep into r.
func (r *Rep) Add(o Rep) {
	r.Raw = r.Raw || o.Raw
	r.Confused = r.Confused || o.Confused
	for k := range o.Fields {
		r.addField(k)
	}
	for k := range o.Involved {
		r.involve(k)
	}
}

func (r *Rep) involve(k FieldKey) {
	if r.Involved == nil {
		r.Involved = make(map[FieldKey]bool)
	}
	r.Involved[k] = true
}

func (r *Rep) addField(k FieldKey) {
	if r.Fields == nil {
		r.Fields = make(map[FieldKey]bool)
	}
	r.Fields[k] = true
}

// Unique reports whether the rep is exactly one inlined field's container
// (no raw alternative, no confusion) and returns that field.
func (r *Rep) Unique() (FieldKey, bool) {
	if r.Raw || r.Confused || len(r.Fields) != 1 {
		return FieldKey{}, false
	}
	for k := range r.Fields {
		return k, true
	}
	return FieldKey{}, false
}

// PureRaw reports whether the value is definitely the raw object.
func (r *Rep) PureRaw() bool { return r.Raw && !r.Confused && len(r.Fields) == 0 }

// RepsOf resolves a tag set against a tentative inlining decision:
// inlined(k) reports whether field k is (still) a candidate. Tags of
// non-inlined fields are resolved through the field's recorded content
// tags; cycles in content provenance resolve to Confused.
func (r *Result) RepsOf(tags *TagSet, inlined func(FieldKey) bool) Rep {
	res := &repResolver{result: r, inlined: inlined, memo: make(map[*Tag]Rep), active: make(map[*Tag]bool)}
	var out Rep
	for _, t := range tags.List() {
		out.Add(res.resolve(t))
	}
	return out
}

type repResolver struct {
	result  *Result
	inlined func(FieldKey) bool
	memo    map[*Tag]Rep
	active  map[*Tag]bool
}

func (rr *repResolver) resolve(t *Tag) Rep {
	switch {
	case t == nil:
		return Rep{}
	case t.IsNoField():
		return Rep{Raw: true}
	case t.IsTop():
		return Rep{Confused: true}
	}
	if rep, ok := rr.memo[t]; ok {
		return rep
	}
	if rr.active[t] {
		// Content provenance cycle (e.g. self-referential cons chains):
		// the cycle itself contributes nothing; the finite entry paths
		// into the cycle appear as sibling tags, so the least fixpoint is
		// the empty contribution.
		return Rep{}
	}
	rr.active[t] = true
	defer delete(rr.active, t)

	key := t.Head()
	var rep Rep
	if rr.inlined != nil && rr.inlined(key) {
		rep.involve(key)
		// The field is inlined: the value is the container's rep. The
		// container itself is described by the base tag; its identity is
		// what the *transformation* needs, but for representation
		// consistency the field key suffices.
		rep.addField(key)
	} else {
		// Not inlined: the load returns the stored reference, whose rep
		// is the content's provenance.
		var content *TagSet
		if t.AC != nil {
			content = &t.AC.Elem.Tags
		} else if fs := t.OC.FieldState(t.Field); fs != nil {
			content = &fs.Tags
		}
		if content == nil || content.Len() == 0 {
			// Never stored (or analysis gap): reading yields nil at run
			// time; treat as raw.
			rep.Raw = true
		} else {
			for _, ct := range content.List() {
				rep.Add(rr.resolve(ct))
			}
		}
	}
	rr.memo[t] = rep
	return rep
}
