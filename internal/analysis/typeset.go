// Package analysis implements the Concert-style context-sensitive flow
// analysis the paper builds on (§3.2.1): concrete type inference over
// *method contours* (execution contexts of a method) and *object contours*
// (allocation statements under a creating context), with demand-driven
// contour splitting. With tags enabled it additionally performs the
// paper's use-specialization analysis (§4.1): every value carries the set
// of field paths it may have been loaded from.
package analysis

import (
	"fmt"
	"sort"
	"strings"
)

// PrimMask is a bitset of primitive type kinds.
type PrimMask uint8

// Primitive type bits.
const (
	PInt PrimMask = 1 << iota
	PFloat
	PBool
	PStr
	PNil
)

var primNames = []struct {
	bit  PrimMask
	name string
}{
	{PInt, "int"}, {PFloat, "float"}, {PBool, "bool"}, {PStr, "str"}, {PNil, "nil"},
}

// TypeSet is a set of concrete types: primitive kinds plus object and
// array contours. The zero value is the empty set.
type TypeSet struct {
	Prims PrimMask
	Objs  map[*ObjContour]struct{}
	Arrs  map[*ArrContour]struct{}
}

// AddPrim adds primitive bits, reporting whether the set changed.
func (t *TypeSet) AddPrim(m PrimMask) bool {
	if t.Prims&m == m {
		return false
	}
	t.Prims |= m
	return true
}

// AddObj adds an object contour, reporting whether the set changed.
func (t *TypeSet) AddObj(oc *ObjContour) bool {
	if _, ok := t.Objs[oc]; ok {
		return false
	}
	if t.Objs == nil {
		t.Objs = make(map[*ObjContour]struct{})
	}
	t.Objs[oc] = struct{}{}
	return true
}

// AddArr adds an array contour, reporting whether the set changed.
func (t *TypeSet) AddArr(ac *ArrContour) bool {
	if _, ok := t.Arrs[ac]; ok {
		return false
	}
	if t.Arrs == nil {
		t.Arrs = make(map[*ArrContour]struct{})
	}
	t.Arrs[ac] = struct{}{}
	return true
}

// Union adds all of o into t, reporting whether t changed. This is the
// analysis fixpoint's innermost operation, so the common shapes are
// fast-pathed: aliased or empty sources return without touching the maps,
// and a first union into an empty destination sizes the maps to fit the
// source instead of growing bucket by bucket.
func (t *TypeSet) Union(o *TypeSet) bool {
	if t == o || o.IsEmpty() {
		return false
	}
	changed := t.AddPrim(o.Prims)
	if len(o.Objs) > 0 {
		if t.Objs == nil {
			t.Objs = make(map[*ObjContour]struct{}, len(o.Objs))
		}
		for oc := range o.Objs {
			if _, ok := t.Objs[oc]; !ok {
				t.Objs[oc] = struct{}{}
				changed = true
			}
		}
	}
	if len(o.Arrs) > 0 {
		if t.Arrs == nil {
			t.Arrs = make(map[*ArrContour]struct{}, len(o.Arrs))
		}
		for ac := range o.Arrs {
			if _, ok := t.Arrs[ac]; !ok {
				t.Arrs[ac] = struct{}{}
				changed = true
			}
		}
	}
	return changed
}

// IsEmpty reports whether the set has no members.
func (t *TypeSet) IsEmpty() bool {
	return t.Prims == 0 && len(t.Objs) == 0 && len(t.Arrs) == 0
}

// HasObjects reports whether any object contour is in the set.
func (t *TypeSet) HasObjects() bool { return len(t.Objs) > 0 }

// ObjList returns the object contours sorted by ID (deterministic order).
func (t *TypeSet) ObjList() []*ObjContour {
	out := make([]*ObjContour, 0, len(t.Objs))
	for oc := range t.Objs {
		out = append(out, oc)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ArrList returns the array contours sorted by ID.
func (t *TypeSet) ArrList() []*ArrContour {
	out := make([]*ArrContour, 0, len(t.Arrs))
	for ac := range t.Arrs {
		out = append(out, ac)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Classes returns the distinct object classes in the set, sorted by name.
func (t *TypeSet) Classes() []string {
	seen := make(map[string]bool)
	for oc := range t.Objs {
		seen[oc.Class.Name] = true
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// String renders the set for debugging.
func (t *TypeSet) String() string {
	var parts []string
	for _, p := range primNames {
		if t.Prims&p.bit != 0 {
			parts = append(parts, p.name)
		}
	}
	for _, oc := range t.ObjList() {
		parts = append(parts, fmt.Sprintf("%s#%d", oc.Class.Name, oc.ID))
	}
	for _, ac := range t.ArrList() {
		parts = append(parts, fmt.Sprintf("arr#%d", ac.ID))
	}
	if len(parts) == 0 {
		return "{}"
	}
	return "{" + strings.Join(parts, " ") + "}"
}

// VarState is the abstract state of one value: its concrete types and the
// field tags it may carry (tags empty means "not yet reached"; the
// canonical NoField tag is explicit, as in the paper).
type VarState struct {
	TS   TypeSet
	Tags TagSet

	// Worklist-solver bookkeeping: the (method contour, instruction,
	// slot) readers of this state (its dependents), packed into
	// pointer-free uint64 keys (see solver.go). dep0 inlines the
	// overwhelmingly common single-reader case — one instruction
	// re-reading the register it always reads — so most states never
	// allocate the spill map. Maintained only while solving.
	dep0 uint64
	deps map[uint64]struct{}
}

// Merge unions o into s, reporting change.
func (s *VarState) Merge(o *VarState) bool {
	if s == o {
		return false
	}
	c1 := s.TS.Union(&o.TS)
	c2 := s.Tags.Union(&o.Tags)
	return c1 || c2
}
