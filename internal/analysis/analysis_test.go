package analysis_test

import (
	"strings"
	"testing"

	"objinline/internal/analysis"
	"objinline/internal/ir"
	"objinline/internal/lang/parser"
	"objinline/internal/lang/sem"
	"objinline/internal/lower"
)

func compile(t *testing.T, src string) *ir.Program {
	t.Helper()
	prog, err := parser.Parse("test.icc", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := sem.Check(prog)
	if err != nil {
		t.Fatalf("sem: %v", err)
	}
	p, err := lower.Lower(info)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return p
}

// paperExample is the program of the paper's Figures 1, 3, 4, and 5:
// Points and Point3Ds flowing into Rectangles, whose corners are read both
// directly and through unrelated List containers.
const paperExample = `
class Point {
  x_pos; y_pos;
  def init(x, y) { self.x_pos = x; self.y_pos = y; }
  def area(p) { return abs(self.x_pos - p.x_pos) * abs(self.y_pos - p.y_pos); }
  def absv() { return sqrt(self.x_pos*self.x_pos + self.y_pos*self.y_pos); }
}
class Point3D : Point {
  z_pos;
  def init(x, y, z) { self.x_pos = x; self.y_pos = y; self.z_pos = z; }
  def absv() { return sqrt(self.x_pos*self.x_pos + self.y_pos*self.y_pos + self.z_pos*self.z_pos); }
}
class Rectangle {
  lower_left; upper_right;
  def init(ll, ur) { self.lower_left = ll; self.upper_right = ur; }
  def area() { return self.lower_left.area(self.upper_right); }
}
class List {
  data; next;
  def init(d, n) { self.data = d; self.next = n; }
}
func head(l) { return l.data; }
func do_rectangle(ll, ur) {
  var r = new Rectangle(ll, ur);
  print(r.area());
  var l1 = new List(r.lower_left, nil);
  var l2 = new List(r.upper_right, nil);
  print(head(l1).absv());
  print(head(l2).absv());
}
func main() {
  var p1 = new Point(1.0, 2.0);
  var p2 = new Point(3.0, 4.0);
  do_rectangle(p1, p2);
  var p3 = new Point3D(1.0, 2.0, 3.0);
  var p4 = new Point3D(4.0, 5.0, 6.0);
  do_rectangle(p3, p4);
}
`

// TestPaperFig6And7 checks the type-inference walkthrough of §3.2.1:
// do_rectangle is split per call site (different argument types), and
// Rectangle object contours are split by creator so that each contour's
// lower_left field has a precise type.
func TestPaperFig6And7(t *testing.T) {
	p := compile(t, paperExample)
	res := analysis.Analyze(p, analysis.Options{})

	doRect := p.FuncNamed("do_rectangle")
	if n := len(res.Contours[doRect]); n < 2 {
		t.Fatalf("do_rectangle has %d contours, want >= 2 (one per argument type)\n%s", n, res)
	}

	// Every Rectangle contour's lower_left field must be monomorphic.
	rect := p.ClassNamed("Rectangle")
	sawPoint, sawPoint3D := false, false
	for _, oc := range res.Objs {
		if oc.Class != rect {
			continue
		}
		st := oc.FieldState("lower_left")
		classes := st.TS.Classes()
		if len(classes) != 1 {
			t.Errorf("Rectangle contour %s: lower_left classes = %v, want exactly 1", oc, classes)
		}
		switch classes[0] {
		case "Point":
			sawPoint = true
		case "Point3D":
			sawPoint3D = true
		}
	}
	if !sawPoint || !sawPoint3D {
		t.Errorf("expected Rectangle contours for both Point and Point3D (got point=%v point3d=%v)", sawPoint, sawPoint3D)
	}

	// With precise receiver contours, every dispatch should be
	// monomorphic.
	mono, total := res.MonomorphicSites()
	if mono != total {
		t.Errorf("monomorphic dispatch sites = %d/%d, want all\n%s", mono, total, res)
	}
}

// TestPaperFig8And9Tags checks use specialization: the two List creation
// sites give their data fields distinct tags, and the values returned by
// head carry the tag of exactly one Rectangle corner field.
func TestPaperFig8And9Tags(t *testing.T) {
	p := compile(t, paperExample)
	res := analysis.Analyze(p, analysis.Options{Tags: true})

	rect := p.ClassNamed("Rectangle")
	// Suppose both corners are inlining candidates. Values flowing through
	// List.data resolve (through the data field's content tags) to exactly
	// one corner's container rep per absv contour — the paper's Figure 8/9
	// requirement.
	candidates := func(k analysis.FieldKey) bool {
		return k.Class == rect && (k.Name == "lower_left" || k.Name == "upper_right")
	}
	pointAbs := p.ClassNamed("Point").Methods["absv"]
	cornerContours := 0
	for _, mc := range res.Contours[pointAbs] {
		rep := res.RepsOf(&mc.Regs[0].Tags, candidates)
		if rep.Confused {
			t.Errorf("contour %s: self rep confused (tags %s)", mc, mc.Regs[0].Tags.String())
			continue
		}
		if rep.Raw && len(rep.Fields) > 0 {
			t.Errorf("contour %s: self may be raw or container (tags %s)", mc, mc.Regs[0].Tags.String())
			continue
		}
		if _, ok := rep.Unique(); ok {
			cornerContours++
		}
	}
	if cornerContours < 2 {
		t.Errorf("want >= 2 Point::absv contours specialized to single corners, got %d\n%s", cornerContours, res)
	}

	// Rectangle's corner fields themselves must hold NoField-tagged values
	// (original points), a precondition for assignment specialization.
	for _, oc := range res.Objs {
		if oc.Class != rect {
			continue
		}
		for _, name := range []string{"lower_left", "upper_right"} {
			st := oc.FieldState(name)
			heads, noField, top := st.Tags.Heads()
			if !noField || len(heads) > 0 || top {
				t.Errorf("%s.%s tags = %s, want {NoField}", oc, name, st.Tags.String())
			}
		}
	}
}

func TestTagConfusionDetected(t *testing.T) {
	// The same variable receives values from two different fields: the
	// merged value must carry both heads so the decision can reject both.
	src := `
class Box { a; b; def init(x, y) { self.a = x; self.b = y; } }
class Item { v; def init(v) { self.v = v; } def get() { return self.v; } }
func pick(box, flag) {
  var r = box.a;
  if (flag) { r = box.b; }
  return r.get();
}
func main() {
  var bx = new Box(new Item(1), new Item(2));
  print(pick(bx, true), pick(bx, false));
}
`
	p := compile(t, src)
	res := analysis.Analyze(p, analysis.Options{Tags: true})
	box := p.ClassNamed("Box")
	pick := p.FuncNamed("pick")
	confused := false
	for _, mc := range res.Contours[pick] {
		for i := range mc.Regs {
			heads, _, top := mc.Regs[i].Tags.Heads()
			boxHeads := 0
			for _, h := range heads {
				if h.Class == box {
					boxHeads++
				}
			}
			if boxHeads > 1 || top {
				confused = true
			}
		}
	}
	if !confused {
		t.Errorf("expected a register carrying both Box.a and Box.b tags\n%s", res)
	}
}

func TestAnalysisTerminatesOnRecursion(t *testing.T) {
	src := `
class Node { v; next; def init(v, n) { self.v = v; self.next = n; } }
func build(n) {
  if (n == 0) { return nil; }
  return new Node(n, build(n - 1));
}
func sum(l) {
  if (l == nil) { return 0; }
  return l.v + sum(l.next);
}
func main() { print(sum(build(10))); }
`
	p := compile(t, src)
	res := analysis.Analyze(p, analysis.Options{Tags: true})
	if res.Passes > 8 {
		t.Errorf("Passes = %d", res.Passes)
	}
	node := p.ClassNamed("Node")
	found := false
	for _, oc := range res.Objs {
		if oc.Class == node {
			found = true
			next := oc.FieldState("next")
			if !next.TS.HasObjects() {
				t.Errorf("Node.next lost its object type: %s", next.TS.String())
			}
		}
	}
	if !found {
		t.Fatalf("no Node contour\n%s", res)
	}
}

func TestBaselineVsTagsContourCounts(t *testing.T) {
	// Tag tracking demands extra sensitivity: contour count with tags on
	// must be >= the baseline count (the Figure 16 effect).
	p := compile(t, paperExample)
	base := analysis.Analyze(p, analysis.Options{}).Stats()
	tags := analysis.Analyze(p, analysis.Options{Tags: true}).Stats()
	if tags.MethodContours < base.MethodContours {
		t.Errorf("tags contours %d < baseline %d", tags.MethodContours, base.MethodContours)
	}
	if base.ContoursPerMethod < 1 {
		t.Errorf("baseline contours/method %.2f < 1", base.ContoursPerMethod)
	}
}

func TestObjectFieldsEnumeration(t *testing.T) {
	p := compile(t, paperExample)
	res := analysis.Analyze(p, analysis.Options{Tags: true})
	var names []string
	for _, k := range res.ObjectFields() {
		names = append(names, k.String())
	}
	joined := strings.Join(names, " ")
	for _, want := range []string{"Rectangle.lower_left", "Rectangle.upper_right", "List.data"} {
		if !strings.Contains(joined, want) {
			t.Errorf("ObjectFields() = %v, missing %s", names, want)
		}
	}
	// List.next only ever holds nil in this program, so it must NOT count
	// as an object-holding field.
	if strings.Contains(joined, "List.next") {
		t.Errorf("ObjectFields() = %v, should not include List.next (holds only nil)", names)
	}
}
