package analysis

// Benchmarks proving the siteKey memoization: call-site key construction
// runs once per (caller contour, site) per pass instead of once per
// binding re-evaluation, and the memoized path is allocation-free.

import (
	"testing"

	"objinline/internal/ir"
)

// benchWorker builds a minimal worker with contours whose keys force
// both the short-key and the hash-collapsed (len > 72) paths.
func benchWorker() (*worker, []*MethodContour, *ir.Instr) {
	a := &analyzer{opts: Options{}.WithDefaults()}
	w := newWorker(a, nil)
	fn := &ir.Func{ID: 7, Name: "f"}
	in := &ir.Instr{ID: 13}
	mcs := []*MethodContour{
		{ID: 0, Fn: fn, Key: ""},
		{ID: 1, Fn: fn, Key: "s1.2/s3.4"},
		{ID: 2, Fn: fn, Key: "s1.2/s3.4/s5.6/s7.8/s9.10/s11.12/s13.14/s15.16/s17.18/s19.20/s21.22"},
	}
	return w, mcs, in
}

func BenchmarkSiteKeyMemo(b *testing.B) {
	w, mcs, in := benchWorker()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w.siteKey(mcs[i%len(mcs)], in)
	}
}

func BenchmarkSiteKeyCompute(b *testing.B) {
	_, mcs, in := benchWorker()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mc := mcs[i%len(mcs)]
		computeSiteKey(mc.Fn.ID, mc.Key, in.ID)
	}
}

// TestSiteKeyMemoMatchesCompute pins the memoized keys to the direct
// construction, including the hash-collapse of over-long chains.
func TestSiteKeyMemoMatchesCompute(t *testing.T) {
	w, mcs, in := benchWorker()
	for _, mc := range mcs {
		want := computeSiteKey(mc.Fn.ID, mc.Key, in.ID)
		if got := w.siteKey(mc, in); got != want {
			t.Errorf("siteKey(%q) = %q, want %q", mc.Key, got, want)
		}
		// Second lookup must serve the memo, not recompute.
		if got := w.siteKey(mc, in); got != want {
			t.Errorf("memoized siteKey(%q) = %q, want %q", mc.Key, got, want)
		}
	}
	if len(mcs) > 2 && len(computeSiteKey(mcs[2].Fn.ID, mcs[2].Key, in.ID)) > 72 {
		t.Errorf("long-chain key escaped the hash collapse")
	}
}
