package analysis_test

// Differential tests holding the worklist and parallel solvers to
// byte-identical results against the reference sweep solver — the
// correctness arguments (solver.go, parallel.go) promise not just an
// equal fixpoint but the same contour and tag IDs at any worker count, so
// the full Result dumps must match exactly.

import (
	"fmt"
	"strings"
	"testing"

	"objinline/internal/analysis"
	"objinline/internal/bench"
	"objinline/internal/core"
)

// analyzeBoth runs both sequential solvers on freshly lowered copies of
// src and returns (worklist, sweep) results.
func analyzeBoth(t *testing.T, src string, opts analysis.Options) (*analysis.Result, *analysis.Result) {
	t.Helper()
	optsW, optsS := opts, opts
	optsW.Solver = analysis.SolverWorklist
	optsS.Solver = analysis.SolverSweep
	rw := analysis.Analyze(compile(t, src), optsW)
	rs := analysis.Analyze(compile(t, src), optsS)
	return rw, rs
}

// solverJobs are the worker counts the parallel differentials run at:
// the degenerate pool, the minimal real pool, and an oversubscribed one.
var solverJobs = []int{1, 2, 8}

// checkParallel holds the parallel solver, at every tested worker count,
// to the reference dump.
func checkParallel(t *testing.T, src string, opts analysis.Options, want string) {
	t.Helper()
	for _, jobs := range solverJobs {
		optsP := opts
		optsP.Solver = analysis.SolverParallel
		optsP.Jobs = jobs
		rp := analysis.Analyze(compile(t, src), optsP)
		if dp := rp.String(); dp != want {
			t.Fatalf("parallel solver dump differs at jobs=%d\nparallel:\n%s\nreference:\n%s", jobs, dp, want)
		}
	}
}

// TestSolverDifferentialBench asserts that on every bundled benchmark, at
// both Tags settings, the two solvers produce identical reportable output
// (the full contour/field-state dump) and identical inlining decisions —
// while the worklist applies no more instruction evaluations than the
// sweep.
func TestSolverDifferentialBench(t *testing.T) {
	for _, p := range bench.Programs {
		for _, tags := range []bool{false, true} {
			t.Run(fmt.Sprintf("%s/tags=%v", p.Name, tags), func(t *testing.T) {
				src, err := p.Source(bench.VariantAuto, bench.ScaleSmall)
				if err != nil {
					t.Fatalf("source: %v", err)
				}
				rw, rs := analyzeBoth(t, src, analysis.Options{Tags: tags})

				if dw, ds := rw.String(), rs.String(); dw != ds {
					t.Fatalf("solver dumps differ\nworklist:\n%s\nsweep:\n%s", dw, ds)
				}
				checkParallel(t, src, analysis.Options{Tags: tags}, rs.String())
				if !rw.Converged || !rs.Converged {
					t.Errorf("converged: worklist=%v sweep=%v, want both true", rw.Converged, rs.Converged)
				}
				if rw.Passes != rs.Passes {
					t.Errorf("passes: worklist=%d sweep=%d", rw.Passes, rs.Passes)
				}
				if rw.Work.InstrEvals > rs.Work.InstrEvals {
					t.Errorf("worklist did more instruction evals than the sweep: %d > %d",
						rw.Work.InstrEvals, rs.Work.InstrEvals)
				}
				if rw.Work.InstrEvals == 0 || rs.Work.InstrEvals == 0 {
					t.Errorf("work counters not populated: worklist=%d sweep=%d",
						rw.Work.InstrEvals, rs.Work.InstrEvals)
				}

				// The decision layer must agree too (it consumes contour
				// identity, tags, and edges — everything the dump covers,
				// but through its own resolution logic).
				ow, err := core.Optimize(rw.Prog, rw, core.Options{Inline: tags})
				if err != nil {
					t.Fatalf("optimize(worklist): %v", err)
				}
				os, err := core.Optimize(rs.Prog, rs, core.Options{Inline: tags})
				if err != nil {
					t.Fatalf("optimize(sweep): %v", err)
				}
				if tags {
					kw := fieldKeyStrings(ow.Decision.InlinedKeys())
					ks := fieldKeyStrings(os.Decision.InlinedKeys())
					if kw != ks {
						t.Errorf("inlining decisions differ:\nworklist: %s\nsweep:    %s", kw, ks)
					}
				}
			})
		}
	}
}

// TestSolverDifferentialOverflow holds the solvers to identical results
// in the MaxContours-overflow regime. Once the contour list fills up,
// getMC coerces split keys to the base contour — a behavior change driven
// by the contour *count*, which no VarState dependency observes — so the
// worklist must globally re-dirty call sites at the transition (see
// redirtyCallSites). Small caps force the transition on every program.
func TestSolverDifferentialOverflow(t *testing.T) {
	overflowed := false
	for _, p := range bench.Programs {
		for _, tags := range []bool{false, true} {
			for _, max := range []int{3, 5, 17, 33} {
				t.Run(fmt.Sprintf("%s/tags=%v/max=%d", p.Name, tags, max), func(t *testing.T) {
					src, err := p.Source(bench.VariantAuto, bench.ScaleSmall)
					if err != nil {
						t.Fatalf("source: %v", err)
					}
					rw, rs := analyzeBoth(t, src, analysis.Options{Tags: tags, MaxContours: max})
					if rw.Overflowed != rs.Overflowed {
						t.Fatalf("overflow flags differ: worklist=%v sweep=%v", rw.Overflowed, rs.Overflowed)
					}
					if rw.Overflowed {
						overflowed = true
					}
					if dw, ds := rw.String(), rs.String(); dw != ds {
						t.Fatalf("solver dumps differ at MaxContours=%d (overflowed=%v)\nworklist:\n%s\nsweep:\n%s",
							max, rw.Overflowed, dw, ds)
					}
					checkParallel(t, src, analysis.Options{Tags: tags, MaxContours: max}, rs.String())
					if rw.Work.InstrEvals > rs.Work.InstrEvals {
						t.Errorf("worklist did more instruction evals than the sweep: %d > %d",
							rw.Work.InstrEvals, rs.Work.InstrEvals)
					}
				})
			}
		}
	}
	if !overflowed {
		t.Error("no case reported Overflowed=true; the caps are too large to exercise the transition")
	}
}

func fieldKeyStrings(keys []analysis.FieldKey) string {
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k.String()
	}
	return strings.Join(parts, ", ")
}

// chainSrc needs several fixpoint rounds: return values propagate back
// through a three-deep call chain one round at a time.
const chainSrc = `
class Box { v; def init(v) { self.v = v; } def get() { return self.v; } }
func h() { return new Box(7); }
func g() { return h(); }
func f() { return g(); }
func main() { print(f().get()); }
`

// TestUnconvergedRecorded asserts that exhausting MaxRounds is recorded on
// the Result (and surfaced in its report) rather than silently returning,
// for both solvers.
func TestUnconvergedRecorded(t *testing.T) {
	for _, solver := range []string{analysis.SolverWorklist, analysis.SolverSweep} {
		t.Run(solver, func(t *testing.T) {
			res := analysis.Analyze(compile(t, chainSrc),
				analysis.Options{Tags: true, Solver: solver, MaxRounds: 1})
			if res.Converged {
				t.Fatalf("MaxRounds=1 on a call chain reported Converged=true")
			}
			if !strings.Contains(res.String(), "did not converge") {
				t.Errorf("unconverged result's report carries no warning:\n%s", res.String())
			}
			if st := res.Stats(); st.Converged {
				t.Errorf("Stats().Converged = true, want false")
			}

			full := analysis.Analyze(compile(t, chainSrc),
				analysis.Options{Tags: true, Solver: solver})
			if !full.Converged {
				t.Fatalf("default MaxRounds reported Converged=false")
			}
			if strings.Contains(full.String(), "did not converge") {
				t.Errorf("converged result's report carries a warning")
			}
			if full.Work.Rounds < 2 {
				t.Errorf("call chain converged in %d round(s); the MaxRounds=1 case proves nothing", full.Work.Rounds)
			}
		})
	}
}

// TestSolverDefault asserts the worklist is the default solver and that
// options normalize it explicitly.
func TestSolverDefault(t *testing.T) {
	o := analysis.Options{}.WithDefaults()
	if o.Solver != analysis.SolverWorklist {
		t.Errorf("default solver = %q, want %q", o.Solver, analysis.SolverWorklist)
	}
	if o.MaxRounds != 1000 {
		t.Errorf("default MaxRounds = %d, want 1000", o.MaxRounds)
	}
	res := analysis.Analyze(compile(t, chainSrc), analysis.Options{})
	if got := res.Stats().Solver; got != analysis.SolverWorklist {
		t.Errorf("Stats().Solver = %q, want %q", got, analysis.SolverWorklist)
	}
	if res.Work.Enqueues == 0 {
		t.Errorf("worklist run recorded no enqueues")
	}
}
