package analysis

// The parallel solver: one pass's fixpoint solved by a bounded worker
// pool over the SCC-condensed contour call graph.
//
// # Scheduling
//
// The unit of work is one contour evaluation (the same unit the
// sequential solvers schedule). Contours needing evaluation sit on a
// priority queue ordered by (SCC rank, contour ID): the call graph —
// discovered incrementally, as call edges are bound — is periodically
// condensed into strongly connected components (scc.go), and contours in
// caller components rank ahead of their callees' components. Draining
// callers first means argument states flow down the condensation before
// each callee runs, so callee fixpoints are reached with few re-entries;
// symmetrically, by the time a caller re-reads a callee's return cell the
// callee has usually quiesced — its merged arg/ret cells are then a
// published, effectively immutable *method summary* the caller composes
// with directly (WorkStats.SummaryHits counts these; Result.Summaries
// materializes them). Ranks refresh every condenseInterval new edges;
// WorkStats.ParallelRounds counts the refreshes.
//
// Per-contour scheduling state is a tiny state machine (pstate:
// pQueued/pRunning/pRerun) guarded by the contour's pmu: a contour has at
// most one evaluator at any instant — so all single-evaluator state
// (calleeOrder, NewObjs, siteKeyMemo, out-edge Args cells) stays
// lock-free — and a dependency hit on a running contour degrades to a
// re-run rather than a concurrent evaluation. Quiescence is an active
// count (queued + running): when it reaches zero no contour is dirty and
// no evaluation is in flight, which is exactly the sequential solvers'
// termination condition.
//
// # Memory protocol
//
// Analysis cells (VarStates) are guarded by 256 striped mutexes hashed on
// the cell's address; every access goes through the helpers in solver.go.
// The structure tables (contour/edge maps and lists) take structMu; the
// tag intern table has its own RWMutex (tags.go). Lock order is
//
//	structMu → pmu → qMu,   stripe → qMu (trip only)
//
// and stripe locks never nest with each other except via lockPair's
// address ordering. Reader registration happens before the guarded read
// of a cell's contents (register-then-snapshot, both under the stripe),
// and writers collect a changed cell's readers under the stripe but mark
// them after releasing it — so either the reader's snapshot already
// contains a concurrent write, or the write's marking happens after the
// registration and re-dirties the reader. That is the chaotic-iteration
// invariant: no update is ever lost, stale reads only defer work.
//
// # Determinism
//
// Below the lattice's saturation points every merge is an exact set
// union — associative, commutative, idempotent — so chaotic iteration
// from the same seeds reaches the same least fixpoint under any schedule,
// and canonicalize() relabels contour/tag IDs from schedule-independent
// identities. Three events are order-sensitive, and each is *count*-
// triggered, hence deterministic in whether it occurs (cells and tables
// only grow toward the fixpoint): a tag set reaching maxTagSet (which
// members survive depends on arrival order), the contour table reaching
// Options.MaxContours (which split keys get coerced depends on creation
// order), and the evaluation budget (MaxRounds × contour count)
// exhausting. Each trips the pass: workers drain, the pass state is
// discarded, and the pass re-runs on the sequential worklist engine —
// whose behavior at those events is the defined one. Byte-identical
// output at any -jobs follows: a pass either saturates nothing (exact
// union lfp, equal to sequential) or trips (literally is sequential).

import (
	"container/heap"
	"sync"
	"sync/atomic"
	"unsafe"

	"objinline/internal/ir"
)

// nStripes is the VarState lock-stripe count. Power of two; 256 stripes
// keep the collision probability of two hot cells low while the array
// (~100 bytes of mutexes) stays cache-resident.
const nStripes = 256

// condenseInterval is how many newly bound call edges accumulate before
// the call graph is re-condensed and scheduling ranks refresh.
const condenseInterval = 128

type parState struct {
	a *analyzer

	// structMu guards the contour and edge tables (mcs/ocs/acs/edges maps
	// and their lists) plus mcArr publication.
	structMu sync.RWMutex

	// stripes guard VarState cells, hashed by address (stripeOf).
	stripes [nStripes]sync.Mutex

	// Run queue. qMu guards queue, active, and the flags; qCond signals
	// pushes and broadcast-wakes on stop/quiescence.
	qMu       sync.Mutex
	qCond     *sync.Cond
	queue     mcHeap
	active    int // contours queued or running
	stop      bool
	tripped   bool
	cancelledF bool

	// mcArr maps contour ID → contour for lock-free access in pmark
	// (entries are published under structMu before the contour can gain
	// readers, and the scheduling handoff orders the reads). Fixed at
	// MaxContours: the handful of contours a tripping pass creates past
	// the cap are never marked through it (bounds check), and the pass's
	// state is discarded anyway.
	mcArr []*MethodContour
	nMC   atomic.Int32

	// evals totals contour evaluations across workers, enforcing the
	// MaxRounds budget.
	evals atomic.Int64

	// Call-edge log for SCC condensation: (caller ID, callee ID) pairs in
	// in-pass creation IDs. Never truncated — each condensation runs on
	// the full prefix logged so far.
	edgeMu     sync.Mutex
	edgeLog    [][2]int32
	edgesSince int
	condensing atomic.Bool
	epochs     atomic.Int32
}

// stripeOf returns the mutex guarding vs. The address is shifted past
// allocator alignment so neighboring cells in one contour's Regs slice
// land on different stripes.
func (p *parState) stripeOf(vs *VarState) *sync.Mutex {
	return &p.stripes[(uintptr(unsafe.Pointer(vs))>>6)%nStripes]
}

// lockPair locks two stripes in address order (deadlock-free for
// concurrent merges between arbitrary cell pairs).
func lockPair(a, b *sync.Mutex) {
	if a == b {
		a.Lock()
		return
	}
	if uintptr(unsafe.Pointer(a)) < uintptr(unsafe.Pointer(b)) {
		a.Lock()
		b.Lock()
	} else {
		b.Lock()
		a.Lock()
	}
}

func unlockPair(a, b *sync.Mutex) {
	if a == b {
		a.Unlock()
		return
	}
	a.Unlock()
	b.Unlock()
}

// mcHeap is the run queue: a min-heap on prio (SCC rank in the high
// bits, contour ID as the tiebreaker), captured at push time.
type mcHeap []*MethodContour

func (h mcHeap) Len() int            { return len(h) }
func (h mcHeap) Less(i, j int) bool  { return h[i].prio < h[j].prio }
func (h mcHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *mcHeap) Push(x any)         { *h = append(*h, x.(*MethodContour)) }
func (h *mcHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return x
}

// runParallelPass solves one pass on a worker pool. On a trip (see the
// package comment) it discards the pass and re-runs it sequentially; on
// cancellation it latches the context error and returns with the pass
// state abandoned (AnalyzeContext discards it).
func (a *analyzer) runParallelPass() {
	jobs := a.parJobs()
	p := &parState{a: a, mcArr: make([]*MethodContour, a.opts.MaxContours)}
	p.qCond = sync.NewCond(&p.qMu)
	a.par = p
	a.tt.mu = new(sync.RWMutex)

	seedW := newWorker(a, p)
	a.seed(seedW)

	workers := make([]*worker, jobs)
	var wg sync.WaitGroup
	for i := range workers {
		w := newWorker(a, p)
		workers[i] = w
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.loop()
		}()
	}
	wg.Wait()

	a.par = nil
	a.tt.mu = nil
	a.work.add(seedW.work)
	for _, w := range workers {
		a.work.add(w.work)
	}

	if p.cancelledF {
		a.ctxErr = a.ctx.Err()
		return
	}
	if p.tripped {
		// Exact fallback: discard the pass and re-run it on the
		// sequential worklist engine, which defines the behavior at the
		// order-sensitive event that tripped (including Converged=false
		// for budget exhaustion).
		a.resetPass()
		w := newWorker(a, nil)
		a.seed(w)
		a.runWorklist(w)
		a.work.add(w.work)
		return
	}

	// Final condensation over the complete call graph, for the stats.
	sccs, maxSCC := p.condense()
	// Latest pass wins: SCCs/MaxSCCSize describe the final call graph's
	// condensation, not an accumulation over refinement passes.
	a.work.SCCs = sccs
	a.work.MaxSCCSize = maxSCC
	a.work.ParallelRounds += int(p.epochs.Load())
}

// loop is one worker goroutine: pop, poll cancellation, evaluate, check
// the budget, finish. Runs until the pool stops or quiesces.
func (w *worker) loop() {
	p := w.p
	for {
		mc := p.pop()
		if mc == nil {
			return
		}
		if w.pollCancelled() {
			p.cancelPool()
			return
		}
		w.evalContourPar(mc)
		budget := int64(w.a.opts.MaxRounds) * int64(max(8, p.nMC.Load()))
		if p.evals.Add(1) > budget {
			p.trip()
		}
		p.finish(w, mc)
	}
}

// pop blocks until a contour is available (returning it in pRunning
// state), the pool is stopped, or the pool quiesces (nil).
func (p *parState) pop() *MethodContour {
	p.qMu.Lock()
	for {
		if p.stop {
			p.qMu.Unlock()
			return nil
		}
		if p.queue.Len() > 0 {
			mc := heap.Pop(&p.queue).(*MethodContour)
			p.qMu.Unlock()
			mc.pmu.Lock()
			mc.pstate.Store((mc.pstate.Load() &^ pQueued) | pRunning)
			mc.pmu.Unlock()
			return mc
		}
		if p.active == 0 {
			p.qMu.Unlock()
			return nil
		}
		p.qCond.Wait()
	}
}

// pushLocked enqueues mc; caller holds mc.pmu and has set pQueued. The
// pmu→qMu nesting makes "mark quiescent contour" atomic with respect to
// quiescence detection: active is incremented before pmu releases, so the
// pool cannot observe active==0 between a contour turning pQueued and its
// queue entry appearing.
func (p *parState) pushLocked(mc *MethodContour) {
	p.qMu.Lock()
	p.active++
	mc.prio = int64(mc.rank.Load())<<32 | int64(mc.ID)
	heap.Push(&p.queue, mc)
	p.qCond.Signal()
	p.qMu.Unlock()
}

// schedule activates a freshly created contour.
func (p *parState) schedule(mc *MethodContour) {
	mc.pmu.Lock()
	if mc.pstate.Load() == 0 {
		mc.pstate.Store(pQueued)
		p.pushLocked(mc)
	}
	mc.pmu.Unlock()
}

// finish completes an evaluation: re-queue if the contour was re-marked
// while running, else quiesce it (pstate 0 — its cells are now a
// published summary until some dependency re-dirties it).
func (p *parState) finish(w *worker, mc *MethodContour) {
	mc.pmu.Lock()
	if mc.pstate.Load()&pRerun != 0 {
		mc.pstate.Store(pQueued)
		// Requeue keeps its active slot: the contour stays counted from
		// first activation to quiescence.
		p.qMu.Lock()
		mc.prio = int64(mc.rank.Load())<<32 | int64(mc.ID)
		heap.Push(&p.queue, mc)
		p.qCond.Signal()
		p.qMu.Unlock()
		mc.pmu.Unlock()
		w.work.Enqueues++
		return
	}
	mc.pstate.Store(0)
	mc.pmu.Unlock()
	p.qMu.Lock()
	p.active--
	if p.active == 0 {
		p.qCond.Broadcast()
	}
	p.qMu.Unlock()
}

// trip aborts the pass for an exact sequential re-run. Safe to call while
// holding a stripe lock (no path acquires a stripe under qMu).
func (p *parState) trip() {
	p.qMu.Lock()
	p.tripped = true
	p.stop = true
	p.qCond.Broadcast()
	p.qMu.Unlock()
}

// cancelPool stops the pool on context cancellation.
func (p *parState) cancelPool() {
	p.qMu.Lock()
	p.cancelledF = true
	p.stop = true
	p.qCond.Broadcast()
	p.qMu.Unlock()
}

// getMCPar is getMC for parallel passes: double-checked lookup under
// structMu, with MaxContours overflow tripping to the sequential engine.
// The trip is *count*-triggered — the creation that fills the list to the
// cap trips, because that is the point where the sequential engines enter
// their coercion regime (every subsequent keyed getMC merges into the
// base contour). The contour count at fixpoint is schedule-independent
// (every schedule discovers the same demanded contour set), so whether
// the cap fills — and hence whether the pass trips — is deterministic and
// matches exactly the runs in which the sequential engines report
// Overflowed. Until the pool drains, creations continue uncoerced (the
// pass is discarded); mcArr accesses stay in bounds via explicit checks.
func (w *worker) getMCPar(fn *ir.Func, key string) *MethodContour {
	a, p := w.a, w.p
	id := mcKey{fn, key}
	p.structMu.RLock()
	mc := a.mcs[id]
	p.structMu.RUnlock()
	if mc != nil {
		return mc
	}
	p.structMu.Lock()
	if mc := a.mcs[id]; mc != nil {
		p.structMu.Unlock()
		return mc
	}
	mc = &MethodContour{ID: a.nextMC, Fn: fn, Key: key, Regs: make([]VarState, fn.NumRegs), ctxHash: mcHash(fn, key)}
	mc.dirty = make([]bool, numSlots*a.instrCount(fn))
	for i := 0; i < len(mc.dirty); i += numSlots {
		mc.dirty[i] = true
	}
	a.nextMC++
	a.mcs[id] = mc
	a.mcList = append(a.mcList, mc)
	if mc.ID < len(p.mcArr) {
		p.mcArr[mc.ID] = mc
	}
	p.nMC.Store(int32(len(a.mcList)))
	full := len(a.mcList) >= a.opts.MaxContours
	p.structMu.Unlock()
	if full {
		p.trip()
	}
	w.work.Enqueues++
	p.schedule(mc)
	return mc
}

// evalContourPar is evalContour for parallel passes: the dirty bitmap is
// snapshotted and cleared per instruction under the contour's scheduling
// lock, so concurrent marks either land before the snapshot (evaluated by
// this visit) or after (set pRerun via pmark, re-queueing at finish).
func (w *worker) evalContourPar(mc *MethodContour) {
	w.cur = mc
	w.work.ContourEvals++
	fn := mc.Fn
	pos := 0
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			base := numSlots * pos
			mc.pmu.Lock()
			full := mc.dirty[base]
			args := mc.dirty[base+slotArgs]
			ret := mc.dirty[base+slotRet]
			mc.dirty[base] = false
			mc.dirty[base+slotArgs] = false
			mc.dirty[base+slotRet] = false
			mc.pmu.Unlock()
			if full || args || ret {
				w.curInstr = pos
				if full {
					w.evalInstr(mc, fn, in)
				} else {
					if args {
						w.evalArgs(mc, in)
					}
					if ret {
						w.evalRet(mc, in)
					}
				}
			}
			pos++
		}
	}
	w.curInstr = -1
	w.cur = nil
}

// pmark is the parallel reader re-mark (mark's counterpart): set the
// reader's dirty bit and ensure its contour will run again. Own-contour
// marks behind the evaluation cursor, and any mark on another worker's
// running contour, set pRerun; marks on a quiescent contour activate it.
func (w *worker) pmark(r uint64) {
	p := w.p
	idx := int(r >> 32)
	if idx >= len(p.mcArr) {
		return // created past a MaxContours trip; pass will be discarded
	}
	mc := p.mcArr[idx]
	bit := int(uint32(r)) - 1
	mc.pmu.Lock()
	mc.dirty[bit] = true
	if mc == w.cur {
		// Our own evaluation: positions ahead of the cursor are reached
		// by this very visit; positions behind need a re-run.
		if bit/numSlots <= w.curInstr {
			mc.pstate.Store(mc.pstate.Load() | pRerun)
		}
		mc.pmu.Unlock()
		return
	}
	st := mc.pstate.Load()
	switch {
	case st&pRunning != 0:
		mc.pstate.Store(st | pRerun)
		mc.pmu.Unlock()
	case st&pQueued != 0:
		mc.pmu.Unlock() // queued visit will see the bit
	default:
		mc.pstate.Store(pQueued)
		p.pushLocked(mc)
		mc.pmu.Unlock()
		w.work.Enqueues++
	}
}

// recordEdge logs a newly bound call edge and re-condenses the call graph
// every condenseInterval edges (one condensation at a time; extra
// triggers coalesce into the next).
func (p *parState) recordEdge(from, to int32) {
	p.edgeMu.Lock()
	p.edgeLog = append(p.edgeLog, [2]int32{from, to})
	p.edgesSince++
	due := p.edgesSince >= condenseInterval
	p.edgeMu.Unlock()
	if due && p.condensing.CompareAndSwap(false, true) {
		p.condense()
		p.condensing.Store(false)
	}
}

// condense runs Tarjan over the logged call graph and refreshes every
// contour's scheduling rank: callers (condensation sources) first.
// Returns the component count and largest component size.
func (p *parState) condense() (sccs, maxSCC int) {
	p.edgeMu.Lock()
	edges := make([][2]int32, len(p.edgeLog))
	copy(edges, p.edgeLog)
	p.edgesSince = 0
	p.edgeMu.Unlock()

	n := int(p.nMC.Load())
	if n > len(p.mcArr) {
		n = len(p.mcArr)
	}
	adj := make([][]int32, n)
	for _, e := range edges {
		if int(e[0]) < n && int(e[1]) < n {
			adj[e[0]] = append(adj[e[0]], e[1])
		}
	}
	comp, ncomp := tarjanSCC(n, adj)
	sizes := make([]int, ncomp)
	for i := 0; i < n; i++ {
		// Tarjan numbers components reverse-topologically (callees
		// first); flip so callers rank lower and pop first.
		p.mcArr[i].rank.Store(int32(ncomp) - 1 - comp[i])
		sizes[comp[i]]++
	}
	for _, s := range sizes {
		if s > maxSCC {
			maxSCC = s
		}
	}
	p.epochs.Add(1)
	return ncomp, maxSCC
}
