package analysis

// White-box tests of the amortized cancellation checkpoint: polling must
// cost nothing on the background-context fast path, allocate nothing on
// any path, and touch the context's channel only once every
// cancelPollInterval contour evaluations.

import (
	"context"
	"testing"
)

func pollWorker(ctx context.Context) *worker {
	a := &analyzer{ctx: ctx, done: ctx.Done()}
	return newWorker(a, nil)
}

// TestPollCancelledAllocFree pins the checkpoint to zero allocations, on
// both the background-context fast path and the live-context poll path.
func TestPollCancelledAllocFree(t *testing.T) {
	bg := pollWorker(context.Background())
	if n := testing.AllocsPerRun(1000, func() { bg.pollCancelled() }); n != 0 {
		t.Errorf("background-context poll allocates %v per call, want 0", n)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	live := pollWorker(ctx)
	if n := testing.AllocsPerRun(1000, func() { live.pollCancelled() }); n != 0 {
		t.Errorf("live-context poll allocates %v per call, want 0", n)
	}
}

// TestPollCancelledAmortized checks the channel poll runs once per
// cancelPollInterval checkpoints: after an initial poll, a cancellation
// goes unnoticed for exactly the rest of the interval and is observed at
// the next poll — the bounded-staleness contract the solvers rely on.
func TestPollCancelledAmortized(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	w := pollWorker(ctx)
	if w.pollCancelled() {
		t.Fatal("fresh context reported cancelled")
	}
	cancel()
	for i := 0; i < cancelPollInterval-1; i++ {
		if w.pollCancelled() {
			t.Fatalf("cancellation observed %d checkpoints into the interval; poll is not amortized", i+1)
		}
	}
	if !w.pollCancelled() {
		t.Fatal("cancellation not observed at the interval boundary")
	}
	if w.a.ctxErr == nil {
		t.Fatal("sequential poll did not latch the context error")
	}
}

// TestPollCancelledNilDone checks the background fast path never counts
// down (pollN stays put), so a no-deadline analysis pays one nil
// comparison per checkpoint and nothing else.
func TestPollCancelledNilDone(t *testing.T) {
	w := pollWorker(context.Background())
	before := w.pollN
	for i := 0; i < 3*cancelPollInterval; i++ {
		if w.pollCancelled() {
			t.Fatal("background context reported cancelled")
		}
	}
	if w.pollN != before {
		t.Errorf("background path consumed the poll countdown (%d -> %d)", before, w.pollN)
	}
}

// BenchmarkCancelledPoll measures the checkpoint on both paths; the
// amortized design keeps the live-context path within nanoseconds of the
// background fast path on average.
func BenchmarkCancelledPoll(b *testing.B) {
	b.Run("background", func(b *testing.B) {
		w := pollWorker(context.Background())
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			w.pollCancelled()
		}
	})
	b.Run("live", func(b *testing.B) {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		w := pollWorker(ctx)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			w.pollCancelled()
		}
	})
}
