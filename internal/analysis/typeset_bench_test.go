package analysis

import "testing"

// The Union benchmarks cover the shapes the fixpoint hits most: unioning
// an empty or identical set (no-op), pouring a populated set into an
// empty one (first flow into a fresh contour register), and re-unioning
// an already-converged pair (steady-state passes).

func benchContours(n int) []*ObjContour {
	out := make([]*ObjContour, n)
	for i := range out {
		out[i] = &ObjContour{ID: i}
	}
	return out
}

func populated(ocs []*ObjContour) *TypeSet {
	var t TypeSet
	t.AddPrim(PInt | PNil)
	for _, oc := range ocs {
		t.AddObj(oc)
	}
	return &t
}

func BenchmarkUnionEmptySource(b *testing.B) {
	dst := populated(benchContours(8))
	var empty TypeSet
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dst.Union(&empty)
	}
}

func BenchmarkUnionSelf(b *testing.B) {
	t := populated(benchContours(8))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t.Union(t)
	}
}

func BenchmarkUnionIntoEmpty(b *testing.B) {
	src := populated(benchContours(8))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var dst TypeSet
		dst.Union(src)
	}
}

func BenchmarkUnionConverged(b *testing.B) {
	ocs := benchContours(8)
	src := populated(ocs)
	dst := populated(ocs)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if dst.Union(src) {
			b.Fatal("converged union reported change")
		}
	}
}

func BenchmarkVarStateMergeConverged(b *testing.B) {
	ocs := benchContours(4)
	tt := newTagTable(3)
	mk := func() *VarState {
		s := &VarState{TS: *populated(ocs)}
		for _, oc := range ocs {
			s.Tags.Add(tt.makeObj(oc, "f", tt.noField))
		}
		return s
	}
	src, dst := mk(), mk()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dst.Merge(src)
	}
}
