package analysis

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"objinline/internal/ir"
)

// Tag marks where a value came from, per the paper's use-specialization
// analysis (§4.1):
//
//	NoField            — the value did not flow from a field access;
//	MakeTag(f, base)   — the value was loaded from field f of an object
//	                     whose own origin is base.
//
// The field component identifies the field *instance*: the object or array
// contour that holds it plus the field name (the paper's "special values
// that denote the contents of the field"). Tags are interned; pointer
// equality is tag equality. Tag depth is capped: deeper tags collapse to
// Top ("confused"), which conservatively blocks inlining.
type Tag struct {
	ID    int
	OC    *ObjContour // field of an object contour (nil for array/base tags)
	AC    *ArrContour // element of an array contour
	Field string      // field name; "[]" for array elements
	Base  *Tag        // origin of the holder; nil for NoField/Top
	Depth int

	// uid is the tag's intrinsic identity hash, chained from the holder
	// contour's identity hash, the field name, and the base tag's uid. It
	// never depends on creation order, so contour keys derived from it
	// (the "|t" component in bindReceiverCall) are identical under any
	// evaluation schedule; canonicalize() renumbers IDs from it at the end
	// of every pass.
	uid uint64
}

// Sentinel tag IDs.
const (
	tagNoFieldID = 0
	tagTopID     = 1
)

// IsNoField reports whether t is the NoField sentinel.
func (t *Tag) IsNoField() bool { return t.ID == tagNoFieldID }

// IsTop reports whether t is the confusion sentinel.
func (t *Tag) IsTop() bool { return t.ID == tagTopID }

// Head returns the last field in the tag, i.e. Head(MakeTag(f, b)) = f,
// rendered as a FieldKey. Sentinels return the zero FieldKey.
func (t *Tag) Head() FieldKey {
	if t.IsNoField() || t.IsTop() {
		return FieldKey{}
	}
	if t.AC != nil {
		return FieldKey{Array: true, ASiteUID: siteUID(t.AC.SiteFn, t.AC.Site)}
	}
	return FieldKey{Class: declaringClass(t.OC.Class, t.Field), Name: t.Field}
}

// HeadOC returns the object contour holding the head field (nil for array
// or sentinel tags).
func (t *Tag) HeadOC() *ObjContour { return t.OC }

// HeadAC returns the array contour for array-element tags.
func (t *Tag) HeadAC() *ArrContour { return t.AC }

// String renders the tag as a field path.
func (t *Tag) String() string {
	switch {
	case t == nil:
		return "<nil>"
	case t.IsNoField():
		return "NoField"
	case t.IsTop():
		return "Top"
	}
	var parts []string
	for x := t; x != nil && !x.IsNoField(); x = x.Base {
		if x.IsTop() {
			parts = append(parts, "Top")
			break
		}
		if x.AC != nil {
			parts = append(parts, fmt.Sprintf("arr#%d[]", x.AC.ID))
		} else {
			parts = append(parts, fmt.Sprintf("%s#%d.%s", x.OC.Class.Name, x.OC.ID, x.Field))
		}
	}
	// Path is built innermost-first; reverse for readability.
	for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
		parts[i], parts[j] = parts[j], parts[i]
	}
	return strings.Join(parts, "<-")
}

// FieldKey identifies a source-level field independent of contours: the
// declaring class plus the field name, or one array allocation site's
// elements. It is the unit at which inlinability is decided.
type FieldKey struct {
	Class    *ir.Class // declaring class; nil for array elements
	Name     string
	Array    bool
	ASiteUID int // array allocation site UID (Array only)
}

// IsZero reports whether k identifies nothing (sentinel tags).
func (k FieldKey) IsZero() bool { return k.Class == nil && !k.Array }

// String renders the key.
func (k FieldKey) String() string {
	if k.Array {
		return fmt.Sprintf("arr@%d[]", k.ASiteUID)
	}
	if k.Class == nil {
		return "<none>"
	}
	return k.Class.Name + "." + k.Name
}

// declaringClass walks up from c to the class that declares field name.
func declaringClass(c *ir.Class, name string) *ir.Class {
	var owner *ir.Class
	for _, f := range c.Fields {
		if f.Name == name {
			owner = f.Owner
		}
	}
	if owner == nil {
		return c
	}
	return owner
}

// tagTable interns tags for one analysis pass.
type tagTable struct {
	noField *Tag
	top     *Tag
	byKey   map[tagKey]*Tag
	next    int
	maxDep  int

	// mu guards byKey and next during a parallel pass (nil for the
	// sequential solvers, where interning is single-threaded).
	mu *sync.RWMutex
}

type tagKey struct {
	oc    *ObjContour
	ac    *ArrContour
	field string
	base  *Tag
}

// Sentinel intrinsic identity hashes (Tag.uid); real tags chain theirs
// from contour hashes, which never collide with these small constants.
const (
	tagNoFieldUID = 1
	tagTopUID     = 2
)

func newTagTable(maxDepth int) *tagTable {
	tt := &tagTable{
		noField: &Tag{ID: tagNoFieldID, uid: tagNoFieldUID},
		top:     &Tag{ID: tagTopID, uid: tagTopUID},
		byKey:   make(map[tagKey]*Tag),
		next:    2,
		maxDep:  maxDepth,
	}
	return tt
}

// makeObj builds MakeTag((oc, field), base), collapsing to Top past the
// depth cap.
func (tt *tagTable) makeObj(oc *ObjContour, field string, base *Tag) *Tag {
	return tt.make(tagKey{oc: oc, field: field, base: base})
}

// makeArr builds the tag for an element of array contour ac.
func (tt *tagTable) makeArr(ac *ArrContour, base *Tag) *Tag {
	return tt.make(tagKey{ac: ac, field: "[]", base: base})
}

func (tt *tagTable) make(k tagKey) *Tag {
	depth := 1
	if k.base != nil && !k.base.IsNoField() {
		if k.base.IsTop() {
			depth = tt.maxDep // saturated, but the head stays known
		} else {
			depth = k.base.Depth + 1
		}
	}
	if depth > tt.maxDep {
		// Collapse only the *base* past the depth cap: the head field must
		// stay known or every deep access would conservatively block all
		// inlining. A Top base means "container identity unknown", which
		// rejects only candidates that need that identity.
		k.base = tt.top
		depth = tt.maxDep
	}
	if tt.mu != nil {
		tt.mu.RLock()
		t, ok := tt.byKey[k]
		tt.mu.RUnlock()
		if ok {
			return t
		}
		tt.mu.Lock()
		defer tt.mu.Unlock()
		if t, ok := tt.byKey[k]; ok {
			return t
		}
		return tt.insert(k, depth)
	}
	if t, ok := tt.byKey[k]; ok {
		return t
	}
	return tt.insert(k, depth)
}

func (tt *tagTable) insert(k tagKey, depth int) *Tag {
	holder := uint64(0)
	if k.oc != nil {
		holder = k.oc.ctxHash
	} else if k.ac != nil {
		holder = k.ac.ctxHash
	}
	baseUID := uint64(0)
	if k.base != nil {
		baseUID = k.base.uid
	}
	uid := hashU64(hashStr(hashU64(hashSeed(3), holder), k.field), baseUID)
	t := &Tag{ID: tt.next, OC: k.oc, AC: k.ac, Field: k.field, Base: k.base, Depth: depth, uid: uid}
	tt.next++
	tt.byKey[k] = t
	return t
}

// TagSet is a set of tags, capped in size: overflowing sets collapse to
// {Top} (confused), mirroring the paper's conservative treatment of
// convergent data-flow paths it cannot split.
type TagSet struct {
	m map[*Tag]struct{}
}

// maxTagSet bounds tag sets before collapsing to Top.
const maxTagSet = 12

// Add inserts a tag, reporting change. Past the size cap, new tags are
// summarized by the Top sentinel while established members keep their
// identity (their heads remain known to the decision).
func (s *TagSet) Add(t *Tag) bool {
	if t == nil {
		return false
	}
	if _, ok := s.m[t]; ok {
		return false
	}
	if s.m == nil {
		s.m = make(map[*Tag]struct{})
	}
	if len(s.m) >= maxTagSet && !t.IsTop() {
		return s.Add(topOf(t))
	}
	s.m[t] = struct{}{}
	return true
}

// topOf returns the Top sentinel reachable from any tag's table; since
// sentinels are per-table we reconstruct via a shared instance.
var sharedTop = &Tag{ID: tagTopID, uid: tagTopUID}

func topOf(t *Tag) *Tag {
	if t.IsTop() {
		return t
	}
	return sharedTop
}

// Union adds all of o, reporting change. When the union could saturate,
// iteration is in sorted tag order so that which members establish
// themselves before the cap is deterministic; below the cap the result is
// the exact set union, so the cheaper unordered walk gives the same set.
func (s *TagSet) Union(o *TagSet) bool {
	if s == o || len(o.m) == 0 {
		return false
	}
	changed := false
	if len(s.m)+len(o.m) <= maxTagSet {
		for t := range o.m {
			if s.Add(t) {
				changed = true
			}
		}
		return changed
	}
	for _, t := range o.List() {
		if s.Add(t) {
			changed = true
		}
	}
	return changed
}

// Len returns the number of tags.
func (s *TagSet) Len() int { return len(s.m) }

// Has reports membership.
func (s *TagSet) Has(t *Tag) bool {
	_, ok := s.m[t]
	return ok
}

// HasTop reports whether the set contains the confusion sentinel.
func (s *TagSet) HasTop() bool {
	for t := range s.m {
		if t.IsTop() {
			return true
		}
	}
	return false
}

// HasNoField reports whether the set contains the NoField sentinel.
func (s *TagSet) HasNoField() bool {
	for t := range s.m {
		if t.IsNoField() {
			return true
		}
	}
	return false
}

// List returns tags sorted by ID.
func (s *TagSet) List() []*Tag {
	out := make([]*Tag, 0, len(s.m))
	for t := range s.m {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Heads returns the distinct head field keys of the set's real tags,
// plus flags for NoField and Top members.
func (s *TagSet) Heads() (heads []FieldKey, noField, top bool) {
	seen := make(map[FieldKey]bool)
	for t := range s.m {
		switch {
		case t.IsNoField():
			noField = true
		case t.IsTop():
			top = true
		default:
			k := t.Head()
			if !seen[k] {
				seen[k] = true
				heads = append(heads, k)
			}
		}
	}
	sort.Slice(heads, func(i, j int) bool { return heads[i].String() < heads[j].String() })
	return heads, noField, top
}

// String renders the set.
func (s *TagSet) String() string {
	parts := make([]string, 0, len(s.m))
	for _, t := range s.List() {
		parts = append(parts, t.String())
	}
	return "{" + strings.Join(parts, " ") + "}"
}
