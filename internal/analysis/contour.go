package analysis

import (
	"fmt"
	"sync"
	"sync/atomic"

	"objinline/internal/ir"
)

// MethodContour represents one analyzed execution context of a function —
// the paper's unit of context sensitivity (§3.2.1). The Key encodes which
// discriminators the contour-selection policy applied (caller site,
// receiver object contour, receiver tag).
type MethodContour struct {
	ID  int
	Fn  *ir.Func
	Key string

	// Regs is the abstract state of every virtual register, flow-
	// insensitively within the contour.
	Regs []VarState
	// Ret is the merged return value state.
	Ret VarState

	// Callees maps a call instruction ID to the callee contours bound at
	// that site in this contour.
	Callees map[int]map[*MethodContour]struct{}
	// Targets maps a dynamic-dispatch instruction ID to the resolved
	// target functions (used by cloning to decide static binding).
	Targets map[int]map[*ir.Func]struct{}

	// InEdges are the interprocedural edges that feed this contour.
	InEdges []*Edge

	// NewObjs and NewArrs map allocation instruction IDs to the contour
	// created at that site under this method contour (the transformation
	// needs them to pick class versions for rewritten allocations).
	NewObjs map[int]*ObjContour
	NewArrs map[int]*ArrContour

	// dirty marks, by flattened instruction position, which instructions
	// the worklist solver must re-evaluate on its next visit to this
	// contour. All-true at creation (the first visit runs everything);
	// nil under the sweep solver. See solver.go.
	dirty []bool

	// calleeOrder lists each call site's callees in the order the last
	// full evaluation of the site enumerated them. The partial
	// re-evaluations (evalArgs/evalRet) iterate this list instead of the
	// Callees set so their merges replay in the full evaluation's exact
	// order — tag sets saturate order-sensitively (see TagSet.Add), so
	// matching the order is what keeps the worklist bit-identical to the
	// sweep. Maintained by the worklist and parallel solvers.
	calleeOrder map[int][]*MethodContour

	// ctxHash is the contour's intrinsic identity hash: the function ID
	// chained with the context key. Unlike the creation-order ID, it is
	// the same under any evaluation schedule, so derived contour keys
	// (the "c..." component of creator-split allocations) never leak
	// scheduling order into the partition. canonicalize() renumbers IDs
	// at the end of every pass from schedule-independent sort keys.
	ctxHash uint64

	// siteKeyMemo memoizes this contour's per-call-site context keys;
	// only this contour's evaluator touches it, so it needs no lock even
	// in a parallel pass.
	siteKeyMemo map[int]string

	// Parallel-solver scheduling state (see parallel.go). pmu guards the
	// dirty bitmap and the pstate transitions; pstate is additionally
	// readable via atomic load (pstate == 0 means quiescent — the
	// contour's cells are, at this instant, a published summary). rank is
	// the scheduling priority from the latest SCC condensation; prio is
	// the priority captured when the contour was pushed on the run queue,
	// owned by the queue lock.
	pmu    sync.Mutex
	pstate atomic.Int32
	rank   atomic.Int32
	prio   int64
}

// Parallel scheduling state bits (MethodContour.pstate).
const (
	pQueued  = 1 << iota // on the run queue
	pRunning             // being evaluated by a worker
	pRerun               // changed while running; re-queue at finish
)

// resetCalleeOrder clears a site's enumeration-order list (keeping its
// capacity) before a full evaluation rebuilds it.
func (mc *MethodContour) resetCalleeOrder(instrID int) {
	if mc.calleeOrder == nil {
		mc.calleeOrder = make(map[int][]*MethodContour)
	}
	mc.calleeOrder[instrID] = mc.calleeOrder[instrID][:0]
}

// noteCallee appends a callee to a site's enumeration-order list. Sites
// have few callees, so the dedup (one contour serving several receiver
// contours in one enumeration) is a linear scan.
func (mc *MethodContour) noteCallee(instrID int, callee *MethodContour) {
	list := mc.calleeOrder[instrID]
	for _, c := range list {
		if c == callee {
			return
		}
	}
	mc.calleeOrder[instrID] = append(list, callee)
}

func (mc *MethodContour) String() string {
	return fmt.Sprintf("%s[%d]%s", mc.Fn.FullName(), mc.ID, mc.Key)
}

// Reg returns the state cell for register r.
func (mc *MethodContour) Reg(r ir.Reg) *VarState { return &mc.Regs[r] }

// addCallee records a call binding, reporting whether it is new.
func (mc *MethodContour) addCallee(instrID int, callee *MethodContour) bool {
	if mc.Callees == nil {
		mc.Callees = make(map[int]map[*MethodContour]struct{})
	}
	set := mc.Callees[instrID]
	if set == nil {
		set = make(map[*MethodContour]struct{})
		mc.Callees[instrID] = set
	}
	if _, ok := set[callee]; ok {
		return false
	}
	set[callee] = struct{}{}
	return true
}

// addTarget records a resolved dispatch target.
func (mc *MethodContour) addTarget(instrID int, fn *ir.Func) {
	if mc.Targets == nil {
		mc.Targets = make(map[int]map[*ir.Func]struct{})
	}
	set := mc.Targets[instrID]
	if set == nil {
		set = make(map[*ir.Func]struct{})
		mc.Targets[instrID] = set
	}
	set[fn] = struct{}{}
}

// Edge is one interprocedural call edge between contours. The analysis
// accumulates the argument states it transmitted; the splitting criteria
// compare these across edges to decide where more context is needed.
type Edge struct {
	From  *MethodContour
	Instr *ir.Instr
	To    *MethodContour
	// Args accumulates, per callee register (self included for methods),
	// the state this edge has transmitted.
	Args []VarState
}

// ObjContour represents the objects allocated by one new statement under a
// given creating context (§3.2.1's object contours).
type ObjContour struct {
	ID     int
	Class  *ir.Class
	Site   *ir.Instr
	SiteFn *ir.Func
	Key    string

	// Fields holds the abstract state of each slot of Class.
	Fields []VarState

	// ctxHash is the intrinsic identity hash (site plus key); see
	// MethodContour.ctxHash.
	ctxHash uint64
}

func (oc *ObjContour) String() string {
	return fmt.Sprintf("%s#%d@%s/%d%s", oc.Class.Name, oc.ID, oc.SiteFn.FullName(), oc.Site.ID, oc.Key)
}

// FieldState returns the state cell for the named field, or nil if the
// class has no such field.
func (oc *ObjContour) FieldState(name string) *VarState {
	for _, f := range oc.Class.Fields {
		if f.Name == name {
			return &oc.Fields[f.Slot]
		}
	}
	return nil
}

// ArrContour represents the arrays allocated by one "new [n]" statement
// under a given creating context. All elements share one summary cell, as
// in the paper ("our analysis does not distinguish different array
// elements", §6.1).
type ArrContour struct {
	ID     int
	Site   *ir.Instr
	SiteFn *ir.Func
	Key    string

	// Elem summarizes every element's state.
	Elem VarState

	// ctxHash is the intrinsic identity hash (site plus key); see
	// MethodContour.ctxHash.
	ctxHash uint64
}

func (ac *ArrContour) String() string {
	return fmt.Sprintf("arr#%d@%s/%d%s", ac.ID, ac.SiteFn.FullName(), ac.Site.ID, ac.Key)
}

// fnPolicy records which discriminators the contour-selection function
// applies for one function. Bits only turn on, which guarantees the
// iterative refinement terminates.
type fnPolicy struct {
	splitBySite    bool // one contour per (caller contour, call site)
	splitByRecvOC  bool // one contour per receiver object contour
	splitByRecvTag bool // one contour per receiver tag (tags mode)
}
