package analysis

// Strongly-connected-component condensation of the contour call graph.
// The parallel solver (parallel.go) condenses the evolving graph to rank
// contours — callers before callees, so that by the time a caller's
// worker reads a callee's return cell the callee has usually quiesced and
// the read is a summary hit rather than a future re-mark. The same
// routine backs the exported Result.CondenseCallGraph.

// tarjanSCC computes the strongly connected components of the directed
// graph on vertices [0, n) with adjacency lists adj (duplicate edges
// allowed). It returns a vertex→component mapping and the component
// count. Components are numbered in *reverse* topological order — Tarjan
// finishes a component only after every component it reaches — so callers
// have higher numbers than their callees. Iterative (explicit stacks): a
// deep monomorphic call chain yields a path graph as long as the contour
// list, which would overflow the goroutine stack recursively.
func tarjanSCC(n int, adj [][]int32) (comp []int32, ncomp int) {
	comp = make([]int32, n)
	index := make([]int32, n)
	low := make([]int32, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
		comp[i] = -1
	}
	var stack []int32
	type frame struct {
		v  int32
		ei int
	}
	var frames []frame
	next := int32(0)
	for root := 0; root < n; root++ {
		if index[root] != -1 {
			continue
		}
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, int32(root))
		onStack[root] = true
		frames = append(frames[:0], frame{v: int32(root)})
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			v := f.v
			if f.ei < len(adj[v]) {
				u := adj[v][f.ei]
				f.ei++
				if index[u] == -1 {
					index[u] = next
					low[u] = next
					next++
					stack = append(stack, u)
					onStack[u] = true
					frames = append(frames, frame{v: u})
				} else if onStack[u] && index[u] < low[v] {
					low[v] = index[u]
				}
				continue
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				pf := &frames[len(frames)-1]
				if low[v] < low[pf.v] {
					low[pf.v] = low[v]
				}
			}
			if low[v] == index[v] {
				for {
					u := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[u] = false
					comp[u] = int32(ncomp)
					if u == v {
						break
					}
				}
				ncomp++
			}
		}
	}
	return comp, ncomp
}

// CallGraphSCC is the condensation of a Result's contour call graph into
// strongly connected components, numbered topologically: every call edge
// either stays inside its component or goes from a lower-numbered
// component to a higher-numbered one (callers first). This is the
// partition the parallel solver schedules by; it is exported so tests can
// assert the partition property and so downstream tools can reason about
// recursion groups.
type CallGraphSCC struct {
	// Comp maps contour ID → component number.
	Comp []int
	// NComp is the number of components.
	NComp int
	// Sizes is the contour count of each component.
	Sizes []int
}

// CondenseCallGraph condenses the result's contour call graph (the union
// of every contour's Callees bindings) into SCCs.
func (r *Result) CondenseCallGraph() *CallGraphSCC {
	n := len(r.Mcs)
	adj := make([][]int32, n)
	for _, mc := range r.Mcs {
		for _, set := range mc.Callees {
			for cmc := range set {
				adj[mc.ID] = append(adj[mc.ID], int32(cmc.ID))
			}
		}
	}
	comp32, ncomp := tarjanSCC(n, adj)
	c := &CallGraphSCC{Comp: make([]int, n), NComp: ncomp, Sizes: make([]int, ncomp)}
	for i, k := range comp32 {
		topo := ncomp - 1 - int(k) // flip reverse-topological to topological
		c.Comp[i] = topo
		c.Sizes[topo]++
	}
	return c
}

// MethodSummary is one contour's interface state at the analysis
// fixpoint: the per-parameter states merged across every in-edge (self
// included for methods, at index 0) plus the merged return state. This is
// exactly the boundary at which the parallel solver composes with a
// quiescent callee instead of re-entering its fixpoint (WorkStats.
// SummaryHits counts those compositions); materialized after the fact it
// doubles as a compact per-contour signature for tests and tooling.
type MethodSummary struct {
	Contour *MethodContour
	// Args[i] merges what every call edge transmitted for callee
	// register i. Empty when the contour has no in-edges (roots).
	Args []VarState
	// Ret is the contour's merged return cell.
	Ret *VarState
}

// Summaries returns every contour's summary, in contour-ID order. In-edge
// merge order is the canonical edge order, so the result is deterministic
// across solvers and schedules.
func (r *Result) Summaries() []MethodSummary {
	out := make([]MethodSummary, 0, len(r.Mcs))
	for _, mc := range r.Mcs {
		s := MethodSummary{Contour: mc, Ret: &mc.Ret}
		for _, e := range mc.InEdges {
			for i := range e.Args {
				for len(s.Args) <= i {
					s.Args = append(s.Args, VarState{})
				}
				s.Args[i].Merge(&e.Args[i])
			}
		}
		out = append(out, s)
	}
	return out
}
