package analysis

import (
	"fmt"
	"sort"
	"strings"

	"objinline/internal/ir"
)

// Stats summarizes analysis cost, the Figure 16 metric, plus the solver's
// work counters and convergence status.
type Stats struct {
	ReachedFuncs   int
	MethodContours int
	ObjContours    int
	ArrContours    int
	Passes         int
	// ContoursPerMethod is MethodContours / ReachedFuncs.
	ContoursPerMethod float64
	// Solver names the fixpoint engine that produced the result;
	// Converged is false when the final pass hit Options.MaxRounds.
	Solver    string
	Converged bool
	// Work counts the solver's effort across all passes.
	Work WorkStats
}

// Stats computes the contour statistics of the result.
func (r *Result) Stats() Stats {
	s := Stats{
		ReachedFuncs:   len(r.Contours),
		MethodContours: len(r.Mcs),
		ObjContours:    len(r.Objs),
		ArrContours:    len(r.Arrs),
		Passes:         r.Passes,
		Solver:         r.Opts.Solver,
		Converged:      r.Converged,
		Work:           r.Work,
	}
	if s.ReachedFuncs > 0 {
		s.ContoursPerMethod = float64(s.MethodContours) / float64(s.ReachedFuncs)
	}
	return s
}

// DispatchTargets returns the resolved target functions of a dynamic call
// site within a contour, sorted by name.
func (r *Result) DispatchTargets(mc *MethodContour, instrID int) []*ir.Func {
	set := mc.Targets[instrID]
	out := make([]*ir.Func, 0, len(set))
	for f := range set {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].FullName() < out[j].FullName() })
	return out
}

// Callees returns the callee contours bound at a call site, sorted by ID.
func (r *Result) Callees(mc *MethodContour, instrID int) []*MethodContour {
	set := mc.Callees[instrID]
	out := make([]*MethodContour, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// MonomorphicSites counts dynamic dispatch sites (over all contours) whose
// target set resolved to exactly one function, and the total number of
// dispatch-site/contour pairs — a devirtualization-precision metric.
func (r *Result) MonomorphicSites() (mono, total int) {
	for _, mc := range r.Mcs {
		mc.Fn.Instrs(func(_ *ir.Block, in *ir.Instr) {
			if in.Op != ir.OpCallMethod {
				return
			}
			set := mc.Targets[in.ID]
			if len(set) == 0 {
				return // unreached
			}
			total++
			if len(set) == 1 {
				mono++
			}
		})
	}
	return mono, total
}

// ObjectFields enumerates every (declaring class, field) pair whose
// abstract state ever holds an object or array — the denominator of the
// paper's Figure 14 ("fields which hold objects").
func (r *Result) ObjectFields() []FieldKey {
	seen := make(map[FieldKey]bool)
	var out []FieldKey
	for _, oc := range r.Objs {
		for _, f := range oc.Class.Fields {
			st := &oc.Fields[f.Slot]
			if !st.TS.HasObjects() && len(st.TS.Arrs) == 0 {
				continue
			}
			k := FieldKey{Class: f.Owner, Name: f.Name}
			if !seen[k] {
				seen[k] = true
				out = append(out, k)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// ObjectArraySites enumerates the array allocation sites whose elements
// ever hold objects (candidates for array-element inlining).
func (r *Result) ObjectArraySites() []FieldKey {
	seen := make(map[FieldKey]bool)
	var out []FieldKey
	for _, ac := range r.Arrs {
		if !ac.Elem.TS.HasObjects() {
			continue
		}
		k := FieldKey{Array: true, ASiteUID: siteUID(ac.SiteFn, ac.Site)}
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ASiteUID < out[j].ASiteUID })
	return out
}

// String renders a human-readable dump of the result (used by `oic
// analyze` and tests).
func (r *Result) String() string {
	var b strings.Builder
	st := r.Stats()
	fmt.Fprintf(&b, "passes=%d contours=%d objs=%d arrs=%d funcs=%d (%.2f contours/method)\n",
		st.Passes, st.MethodContours, st.ObjContours, st.ArrContours, st.ReachedFuncs, st.ContoursPerMethod)
	if !r.Converged {
		fmt.Fprintf(&b, "WARNING: analysis did not converge within MaxRounds=%d; result is incomplete\n",
			r.Opts.MaxRounds)
	}
	fns := make([]*ir.Func, 0, len(r.Contours))
	for fn := range r.Contours {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].ID < fns[j].ID })
	for _, fn := range fns {
		for _, mc := range r.Contours[fn] {
			fmt.Fprintf(&b, "contour %s\n", mc)
			for i := range mc.Regs {
				st := &mc.Regs[i]
				if st.TS.IsEmpty() && st.Tags.Len() == 0 {
					continue
				}
				fmt.Fprintf(&b, "  r%d: %s", i, st.TS.String())
				if r.Opts.Tags && st.Tags.Len() > 0 {
					fmt.Fprintf(&b, " tags=%s", st.Tags.String())
				}
				b.WriteString("\n")
			}
			fmt.Fprintf(&b, "  ret: %s\n", mc.Ret.TS.String())
		}
	}
	for _, oc := range r.Objs {
		fmt.Fprintf(&b, "object %s\n", oc)
		for _, f := range oc.Class.Fields {
			st := &oc.Fields[f.Slot]
			if st.TS.IsEmpty() {
				continue
			}
			fmt.Fprintf(&b, "  .%s: %s", f.Name, st.TS.String())
			if r.Opts.Tags && st.Tags.Len() > 0 {
				fmt.Fprintf(&b, " tags=%s", st.Tags.String())
			}
			b.WriteString("\n")
		}
	}
	for _, ac := range r.Arrs {
		fmt.Fprintf(&b, "array %s elem=%s", ac, ac.Elem.TS.String())
		if r.Opts.Tags && ac.Elem.Tags.Len() > 0 {
			fmt.Fprintf(&b, " tags=%s", ac.Elem.Tags.String())
		}
		b.WriteString("\n")
	}
	return b.String()
}
