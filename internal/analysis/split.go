package analysis

import (
	"fmt"
	"sort"
	"strings"
)

// updatePolicies inspects the pass's final state for imprecision that more
// context would remove, and turns on the corresponding contour-selection
// discriminators (§3.2.1's demand-driven contour creation, run as
// iterative refinement). It reports whether any policy changed; if none
// did, the analysis has converged.
func (a *analyzer) updatePolicies() bool {
	if a.overflow {
		return false // refusing to refine further; stay conservative
	}
	changed := false

	// Method contours whose in-edges disagree on argument types or tags
	// want their function split.
	for _, mc := range a.mcList {
		if len(mc.InEdges) < 2 {
			continue
		}
		pol := a.policy(mc.Fn)
		nArgs := 0
		for _, e := range mc.InEdges {
			if len(e.Args) > nArgs {
				nArgs = len(e.Args)
			}
		}
		for i := 0; i < nArgs; i++ {
			sigs := make(map[string]bool)
			tagSigs := make(map[string]bool)
			for _, e := range mc.InEdges {
				if i >= len(e.Args) {
					continue
				}
				sigs[classSig(&e.Args[i].TS)] = true
				if a.opts.Tags {
					tagSigs[tagSig(&e.Args[i].Tags)] = true
				}
			}
			isSelf := i == 0 && mc.Fn.Class != nil
			if len(sigs) > 1 {
				if isSelf {
					if !pol.splitByRecvOC {
						pol.splitByRecvOC = true
						changed = true
					}
				} else if !pol.splitBySite {
					pol.splitBySite = true
					changed = true
				}
			}
			if a.opts.Tags && len(tagSigs) > 1 {
				if isSelf {
					if !pol.splitByRecvTag {
						pol.splitByRecvTag = true
						changed = true
					}
				} else if !pol.splitBySite {
					pol.splitBySite = true
					changed = true
				}
			}
		}
	}

	// Receiver-polymorphic methods benefit from per-receiver-contour
	// analysis even with a single in-edge signature (their self state
	// merges several object contours, blurring field types).
	for _, mc := range a.mcList {
		if mc.Fn.Class == nil || len(mc.Regs) == 0 {
			continue
		}
		if len(mc.Regs[0].TS.Objs) > 1 {
			pol := a.policy(mc.Fn)
			if !pol.splitByRecvOC {
				pol.splitByRecvOC = true
				changed = true
			}
		}
	}

	// Object contours whose fields hold multiple classes — or multiple tag
	// heads — want creator discrimination (the paper's Figure 7 and
	// Figure 9 splits).
	for _, oc := range a.ocList {
		for i := range oc.Fields {
			fs := &oc.Fields[i]
			if fieldNeedsSplit(a, fs) && !a.classSplit[oc.Class] {
				a.classSplit[oc.Class] = true
				changed = true
			}
		}
	}
	for _, ac := range a.acList {
		uid := siteUID(ac.SiteFn, ac.Site)
		if fieldNeedsSplit(a, &ac.Elem) && !a.arrSplit[uid] {
			a.arrSplit[uid] = true
			changed = true
		}
	}
	return changed
}

// fieldNeedsSplit reports whether a field/element summary mixes classes or
// tag heads.
func fieldNeedsSplit(a *analyzer, fs *VarState) bool {
	if len(fs.TS.Classes()) > 1 {
		return true
	}
	if a.opts.Tags {
		heads, noField, _ := fs.Tags.Heads()
		if len(heads) > 1 || (len(heads) == 1 && noField) {
			return true
		}
	}
	return false
}

// classSig canonicalizes the object content of a type set at object-
// contour granularity — the analysis's "concrete types". Primitives are
// collapsed: they never drive splitting.
func classSig(ts *TypeSet) string {
	ids := make([]int, 0, len(ts.Objs)+len(ts.Arrs))
	for oc := range ts.Objs {
		ids = append(ids, oc.ID*2)
	}
	for ac := range ts.Arrs {
		ids = append(ids, ac.ID*2+1)
	}
	sort.Ints(ids)
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = fmt.Sprint(id)
	}
	return strings.Join(parts, ",")
}

// tagSig canonicalizes a tag set at full tag granularity.
func tagSig(tags *TagSet) string {
	ts := tags.List()
	parts := make([]string, len(ts))
	for i, t := range ts {
		parts[i] = fmt.Sprint(t.ID)
	}
	return strings.Join(parts, ",")
}
