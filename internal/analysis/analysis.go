package analysis

import (
	"context"
	"fmt"
	"hash/fnv"
	"strconv"

	"objinline/internal/ir"
	"objinline/internal/lower"
)

// Solver names for Options.Solver (see solver.go for the worklist design).
const (
	// SolverWorklist is the dependency-driven worklist solver: only the
	// contours whose inputs changed are re-evaluated. The default.
	SolverWorklist = "worklist"
	// SolverSweep is the naive global re-sweep: every contour is
	// re-evaluated every round until nothing changes. Kept as the
	// reference implementation for differential testing.
	SolverSweep = "sweep"
)

// Options configures an analysis run.
type Options struct {
	// Tags enables the object-inlining use-specialization analysis: field
	// tags are tracked and contours are additionally split on tag
	// confluences. Off, the analysis is the baseline Concert type
	// inference (the paper's "without inlining" configuration).
	Tags bool
	// MaxPasses bounds the iterative refinement (default 8).
	MaxPasses int
	// MaxContours bounds total method contours per pass (default 6000);
	// on overflow the selection function stops splitting (conservative).
	MaxContours int
	// TagDepth caps tag nesting before collapsing to Top (default 3).
	TagDepth int
	// Solver selects the fixpoint engine: SolverWorklist (default) or
	// SolverSweep. Both compute identical results (differentially
	// tested); the worklist does far less work.
	Solver string
	// MaxRounds bounds the per-pass fixpoint iteration (default 1000).
	// A pass that exhausts it stops with Result.Converged == false.
	MaxRounds int
}

// WithDefaults returns o with zero-valued knobs replaced by their
// defaults. Analyze applies it internally; callers that key caches on
// Options should apply it too, so that an explicit default (TagDepth 3)
// and an implicit one (TagDepth 0) memoize as the same configuration.
func (o Options) WithDefaults() Options {
	if o.MaxPasses == 0 {
		o.MaxPasses = 8
	}
	if o.MaxContours == 0 {
		o.MaxContours = 6000
	}
	if o.TagDepth == 0 {
		o.TagDepth = 3
	}
	if o.Solver == "" {
		o.Solver = SolverWorklist
	}
	if o.MaxRounds == 0 {
		o.MaxRounds = 1000
	}
	return o
}

// Result is the final analysis state consumed by cloning and the inlining
// decision.
type Result struct {
	Prog *ir.Program
	Opts Options

	Contours map[*ir.Func][]*MethodContour
	Mcs      []*MethodContour
	Objs     []*ObjContour
	Arrs     []*ArrContour
	Globals  []VarState

	Passes     int
	Overflowed bool
	// Converged is false when the final pass exhausted Options.MaxRounds
	// before reaching a fixpoint; the result is then a (sound per-round
	// but possibly incomplete) under-approximation and downstream
	// consumers should treat it conservatively.
	Converged bool
	// Work counts the solver's effort across all passes (see WorkStats).
	Work WorkStats
}

// Analyze runs the context-sensitive flow analysis to a fixpoint,
// iteratively refining contour-selection policies between passes (the
// demand-driven splitting of §3.2.1).
func Analyze(prog *ir.Program, opts Options) *Result {
	res, _ := AnalyzeContext(context.Background(), prog, opts)
	return res
}

// AnalyzeContext is Analyze with cancellation: the solvers check the
// context between contour evaluations (their innermost schedulable unit),
// so a pathological contour blowup stops within one evaluation of the
// deadline instead of running the pass to completion. A canceled analysis
// returns a nil Result and an error wrapping ctx.Err(); a background
// context makes the checks free (a nil Done channel is never polled).
func AnalyzeContext(ctx context.Context, prog *ir.Program, opts Options) (*Result, error) {
	opts = opts.WithDefaults()
	a := &analyzer{
		prog:       prog,
		opts:       opts,
		ctx:        ctx,
		done:       ctx.Done(),
		sweep:      opts.Solver == SolverSweep,
		policies:   make(map[*ir.Func]*fnPolicy),
		classSplit: make(map[*ir.Class]bool),
		arrSplit:   make(map[int]bool),
		nInstrs:    make(map[*ir.Func]int),
	}
	for pass := 1; ; pass++ {
		a.runPass()
		if a.ctxErr != nil {
			return nil, fmt.Errorf("analysis canceled in pass %d: %w", pass, a.ctxErr)
		}
		if pass >= a.opts.MaxPasses || !a.updatePolicies() {
			return a.result(pass), nil
		}
	}
}

// mcKey identifies a method contour: the function plus the context key the
// selection policy produced. A comparable struct, not a formatted string —
// contour lookup is the hottest path of the analysis.
type mcKey struct {
	fn  *ir.Func
	ctx string
}

// allocKey identifies an object or array contour: the allocation site plus
// the creating method contour's ID when the site is creator-split
// (creator == -1 otherwise).
type allocKey struct {
	site    int
	creator int
}

// callSite keys the per-pass siteKey memo.
type callSite struct {
	mc    *MethodContour
	instr int
}

type analyzer struct {
	prog  *ir.Program
	opts  Options
	sweep bool

	// Cancellation (see AnalyzeContext). done is ctx.Done(), cached so the
	// background-context case is a single nil comparison per checkpoint;
	// ctxErr latches the first observed cancellation.
	ctx    context.Context
	done   <-chan struct{}
	ctxErr error

	// Cross-pass refinement state (monotone).
	policies   map[*ir.Func]*fnPolicy
	classSplit map[*ir.Class]bool // split object contours by creator
	arrSplit   map[int]bool       // split array contours by creator, by site UID

	// Per-pass state.
	tt       *tagTable
	mcs      map[mcKey]*MethodContour
	mcList   []*MethodContour
	ocs      map[allocKey]*ObjContour
	ocList   []*ObjContour
	acs      map[allocKey]*ArrContour
	acList   []*ArrContour
	globals  []VarState
	edges    map[edgeKey]*Edge
	siteKeys map[callSite]string
	changed  bool
	overflow bool
	nextMC   int
	nextOC   int
	nextAC   int

	// Solver state (see solver.go).
	cur         *MethodContour // contour being evaluated (dep registration)
	curIdx      int            // its ID, or -1 outside an evaluation
	curInstr    int            // flattened position of the instruction being evaluated
	nInstrs     map[*ir.Func]int
	dirtyCur    []bool         // by contour ID: scheduled for this round
	dirtyNext   []bool         // by contour ID: scheduled for the next round
	pendingNext int
	converged   bool
	work        WorkStats
}

type edgeKey struct {
	from  *MethodContour
	instr int
	to    *MethodContour
}

func (a *analyzer) policy(fn *ir.Func) *fnPolicy {
	p := a.policies[fn]
	if p == nil {
		p = &fnPolicy{}
		a.policies[fn] = p
	}
	return p
}

func siteUID(fn *ir.Func, in *ir.Instr) int { return fn.ID*1_000_000 + in.ID }

// instrCount returns (memoized; the IR is immutable) the number of
// instructions in fn, which sizes per-contour dirty bitmaps.
func (a *analyzer) instrCount(fn *ir.Func) int {
	if n, ok := a.nInstrs[fn]; ok {
		return n
	}
	n := 0
	for _, b := range fn.Blocks {
		n += len(b.Instrs)
	}
	a.nInstrs[fn] = n
	return n
}

func (a *analyzer) resetPass() {
	a.tt = newTagTable(a.opts.TagDepth)
	a.mcs = make(map[mcKey]*MethodContour)
	a.mcList = nil
	a.ocs = make(map[allocKey]*ObjContour)
	a.ocList = nil
	a.acs = make(map[allocKey]*ArrContour)
	a.acList = nil
	a.globals = make([]VarState, len(a.prog.Globals))
	a.edges = make(map[edgeKey]*Edge)
	a.siteKeys = make(map[callSite]string)
	a.overflow = false
	a.nextMC, a.nextOC, a.nextAC = 0, 0, 0
	a.cur, a.curIdx, a.curInstr = nil, -1, -1
	a.dirtyCur, a.dirtyNext = nil, nil
	a.pendingNext = 0
	a.converged = true
}

// runPass analyzes the whole program to a fixpoint under the current
// contour-selection policies.
func (a *analyzer) runPass() {
	a.resetPass()
	if init := a.prog.FuncNamed(lower.InitFuncName); init != nil {
		a.getMC(init, "")
	}
	if a.prog.Main != nil {
		a.getMC(a.prog.Main, "")
	}
	if a.sweep {
		a.runSweep()
	} else {
		a.runWorklist()
	}
}

// getMC returns (creating if needed) the contour of fn for the given
// context key.
func (a *analyzer) getMC(fn *ir.Func, key string) *MethodContour {
	if len(a.mcList) >= a.opts.MaxContours {
		a.overflow = true
		key = "" // stop splitting; merge into the base contour
	}
	id := mcKey{fn, key}
	if mc, ok := a.mcs[id]; ok {
		return mc
	}
	mc := &MethodContour{ID: a.nextMC, Fn: fn, Key: key, Regs: make([]VarState, fn.NumRegs)}
	a.nextMC++
	a.mcs[id] = mc
	a.mcList = append(a.mcList, mc)
	a.changed = true
	if !a.sweep {
		// New contours run in the current round (the sweep evaluates list
		// growth within the round; see solver.go for why order matters),
		// with every instruction initially fully dirty.
		mc.dirty = make([]bool, numSlots*a.instrCount(fn))
		for i := 0; i < len(mc.dirty); i += numSlots {
			mc.dirty[i] = true
		}
		a.dirtyCur = append(a.dirtyCur, true)
		a.dirtyNext = append(a.dirtyNext, false)
		a.work.Enqueues++
		if len(a.mcList) == a.opts.MaxContours {
			a.redirtyCallSites()
		}
	}
	return mc
}

// redirtyCallSites re-dirties the slotFull bit of every call instruction
// in every contour and reschedules the contours. Called once per pass, at
// the creation that fills the contour list to Options.MaxContours: from
// that point getMC coerces split keys to the base contour, and the
// coercion is driven by the contour *count* — an input no VarState
// dependency observes — so even call sites with unchanged inputs must
// re-bind. The sweep gets this for free: the filling creation set
// changed, guaranteeing every site a post-transition visit. Re-dirtying
// replays exactly those visits (ahead-of-cursor sites this round, the
// rest next round, per enqueue's routing), keeping the two solvers
// bit-identical through the overflow transition.
func (a *analyzer) redirtyCallSites() {
	for _, mc := range a.mcList {
		sched := false
		pos := 0
		for _, b := range mc.Fn.Blocks {
			for _, in := range b.Instrs {
				switch in.Op {
				case ir.OpCall, ir.OpCallStatic, ir.OpCallMethod:
					mc.dirty[numSlots*pos+slotFull] = true
					// A site ahead of the in-progress scan of the contour
					// currently evaluating is reached by this very visit;
					// any other site needs its contour (re-)scheduled.
					if mc != a.cur || pos <= a.curInstr {
						sched = true
					}
				}
				pos++
			}
		}
		if sched {
			a.enqueue(mc)
		}
	}
}

func (a *analyzer) getOC(fn *ir.Func, in *ir.Instr, mc *MethodContour) *ObjContour {
	creator := -1
	if a.classSplit[in.Class] {
		creator = mc.ID
	}
	id := allocKey{siteUID(fn, in), creator}
	if oc, ok := a.ocs[id]; ok {
		return oc
	}
	key := ""
	if creator >= 0 {
		key = "c" + strconv.Itoa(creator)
	}
	oc := &ObjContour{
		ID: a.nextOC, Class: in.Class, Site: in, SiteFn: fn, Key: key,
		Fields: make([]VarState, in.Class.NumSlots()),
	}
	a.nextOC++
	a.ocs[id] = oc
	a.ocList = append(a.ocList, oc)
	a.changed = true
	return oc
}

func (a *analyzer) getAC(fn *ir.Func, in *ir.Instr, mc *MethodContour) *ArrContour {
	creator := -1
	if a.arrSplit[siteUID(fn, in)] {
		creator = mc.ID
	}
	id := allocKey{siteUID(fn, in), creator}
	if ac, ok := a.acs[id]; ok {
		return ac
	}
	key := ""
	if creator >= 0 {
		key = "c" + strconv.Itoa(creator)
	}
	ac := &ArrContour{ID: a.nextAC, Site: in, SiteFn: fn, Key: key}
	a.nextAC++
	a.acs[id] = ac
	a.acList = append(a.acList, ac)
	a.changed = true
	return ac
}

// merge wraps VarState.Merge with change tracking.
func (a *analyzer) merge(dst, src *VarState) {
	if dst.Merge(src) {
		a.bump(dst)
	}
}

func (a *analyzer) addPrim(dst *VarState, m PrimMask) {
	if dst.TS.AddPrim(m) {
		a.bump(dst)
	}
}

func (a *analyzer) addTag(dst *VarState, t *Tag) {
	if a.opts.Tags && dst.Tags.Add(t) {
		a.bump(dst)
	}
}

// siteKey builds the caller-context component of a callee contour key,
// bounded in length so recursion terminates (deep chains hash-merge).
// Keys are memoized per (caller contour, call site): they are recomputed
// on every re-evaluation of a call instruction, and the inputs (the
// caller's own key and the site) are immutable within a pass.
func (a *analyzer) siteKey(caller *MethodContour, in *ir.Instr) string {
	ck := callSite{caller, in.ID}
	if k, ok := a.siteKeys[ck]; ok {
		return k
	}
	k := computeSiteKey(caller.Fn.ID, caller.Key, in.ID)
	a.siteKeys[ck] = k
	return k
}

// computeSiteKey is the uncached key construction (exercised directly by
// benchmarks; callers go through the memoizing siteKey).
func computeSiteKey(fnID int, callerKey string, instrID int) string {
	k := "s" + strconv.Itoa(fnID) + "." + strconv.Itoa(instrID)
	if callerKey != "" {
		k = callerKey + "/" + k
	}
	if len(k) > 72 {
		h := fnv.New32a()
		h.Write([]byte(k))
		k = fmt.Sprintf("h%x", h.Sum32())
	}
	return k
}

// evalContour applies instruction transfer functions in flattened program
// order. The sweep (mc.dirty == nil) applies every one in full; the
// worklist applies only the dirty slots — a fully dirty instruction
// re-runs whole (subsuming its partial slots), an instruction dirty only
// in a data slot gets the matching partial re-merge, and a clean
// instruction is skipped. Skipped work has unchanged inputs, so skipping
// it is a no-op (see solver.go).
func (a *analyzer) evalContour(mc *MethodContour) {
	a.cur = mc
	a.work.ContourEvals++
	fn := mc.Fn
	if mc.dirty == nil {
		for _, b := range fn.Blocks {
			for _, in := range b.Instrs {
				a.evalInstr(mc, fn, in)
			}
		}
	} else {
		pos := 0
		for _, b := range fn.Blocks {
			for _, in := range b.Instrs {
				base := numSlots * pos
				if mc.dirty[base] {
					mc.dirty[base] = false
					mc.dirty[base+slotArgs] = false
					mc.dirty[base+slotRet] = false
					a.curInstr = pos
					a.evalInstr(mc, fn, in)
				} else {
					// Partial order mirrors the full evaluation: argument
					// merges precede the return merge.
					if mc.dirty[base+slotArgs] {
						mc.dirty[base+slotArgs] = false
						a.curInstr = pos
						a.evalArgs(mc, in)
					}
					if mc.dirty[base+slotRet] {
						mc.dirty[base+slotRet] = false
						a.curInstr = pos
						a.evalRet(mc, in)
					}
				}
				pos++
			}
		}
		a.curInstr = -1
	}
	a.cur = nil
}

// evalArgs is the slotArgs partial evaluation: one of the instruction's
// data inputs changed, while its control inputs (receiver, base,
// operands) did not — so the bindings the full transfer function would
// enumerate are exactly the ones already recorded, and re-merging the
// data through them — in the full evaluation's enumeration order (the
// sorted contour lists for loads, calleeOrder for calls; see solver.go
// on why order matters) — reproduces the full evaluation's effect on
// those cells. Only instructions that register slotArgs readers get
// here.
func (a *analyzer) evalArgs(mc *MethodContour, in *ir.Instr) {
	a.work.PartialEvals++
	switch in.Op {
	case ir.OpGetField:
		base := mc.Reg(in.Args[0]) // registered slotFull by the full eval
		dst := mc.Reg(in.Dst)
		for _, oc := range base.TS.ObjList() {
			fs := oc.FieldState(in.Field.Name)
			if fs == nil {
				continue
			}
			a.useArg(fs)
			if dst.TS.Union(&fs.TS) {
				a.bump(dst)
			}
		}
	case ir.OpArrGet:
		base := mc.Reg(in.Args[0])
		dst := mc.Reg(in.Dst)
		for _, ac := range base.TS.ArrList() {
			a.useArg(&ac.Elem)
			if dst.TS.Union(&ac.Elem.TS) {
				a.bump(dst)
			}
		}
	case ir.OpCall, ir.OpCallStatic, ir.OpCallMethod:
		// The self argument (when present) derives from the receiver — a
		// slotFull input — so it is unchanged here and skipped.
		start := 0
		if in.Op != ir.OpCall {
			start = 1
		}
		for _, cmc := range mc.calleeOrder[in.ID] {
			e := a.edge(mc, in, cmc)
			for i := start; i < len(in.Args); i++ {
				src := a.useArg(mc.Reg(in.Args[i]))
				a.merge(cmc.Reg(cmc.Fn.ParamReg(i-start)), src)
				e.Args[i].Merge(src)
			}
		}
	}
}

// evalRet is the slotRet partial evaluation: a callee's return cell
// changed, so it is re-merged into the call's destination. The receiver
// is unchanged (a receiver change dirties slotFull instead), so the
// callees — and the order a full re-run would merge their returns in —
// are exactly those calleeOrder recorded at the site's last full
// evaluation.
func (a *analyzer) evalRet(mc *MethodContour, in *ir.Instr) {
	a.work.PartialEvals++
	if in.Dst == ir.NoReg {
		return
	}
	dst := mc.Reg(in.Dst)
	for _, cmc := range mc.calleeOrder[in.ID] {
		a.merge(dst, a.useRet(&cmc.Ret))
	}
}

func (a *analyzer) evalInstr(mc *MethodContour, fn *ir.Func, in *ir.Instr) {
	a.work.InstrEvals++
	reg := func(r ir.Reg) *VarState { return mc.Reg(r) }
	// use marks a register as an input of this instruction's evaluation
	// before reading it (dependency registration; see solver.go).
	use := func(r ir.Reg) *VarState { return a.use(mc.Reg(r)) }
	switch in.Op {
	case ir.OpConstInt:
		a.addPrim(reg(in.Dst), PInt)
	case ir.OpConstFloat:
		a.addPrim(reg(in.Dst), PFloat)
	case ir.OpConstStr:
		a.addPrim(reg(in.Dst), PStr)
	case ir.OpConstBool:
		a.addPrim(reg(in.Dst), PBool)
	case ir.OpConstNil:
		a.addPrim(reg(in.Dst), PNil)
	case ir.OpMove:
		a.merge(reg(in.Dst), use(in.Args[0]))
	case ir.OpBin:
		a.evalBin(mc, in)
	case ir.OpUn:
		x := use(in.Args[0])
		if ir.UnOp(in.Aux) == ir.UnNot {
			a.addPrim(reg(in.Dst), PBool)
		} else {
			a.addPrim(reg(in.Dst), x.TS.Prims&(PInt|PFloat))
		}
	case ir.OpNewObject:
		oc := a.getOC(fn, in, mc)
		if mc.NewObjs == nil {
			mc.NewObjs = make(map[int]*ObjContour)
		}
		mc.NewObjs[in.ID] = oc
		dst := reg(in.Dst)
		if dst.TS.AddObj(oc) {
			a.bump(dst)
		}
		a.addTag(dst, a.tt.noField)
	case ir.OpNewArray:
		ac := a.getAC(fn, in, mc)
		if mc.NewArrs == nil {
			mc.NewArrs = make(map[int]*ArrContour)
		}
		mc.NewArrs[in.ID] = ac
		dst := reg(in.Dst)
		if dst.TS.AddArr(ac) {
			a.bump(dst)
		}
		a.addTag(dst, a.tt.noField)
	case ir.OpGetField:
		base := use(in.Args[0])
		dst := reg(in.Dst)
		for _, oc := range base.TS.ObjList() {
			fs := oc.FieldState(in.Field.Name)
			if fs == nil {
				continue
			}
			a.useArg(fs)
			// Types flow through the field; the loaded value is tagged
			// MakeTag(f, tag(o)) per §4.1. Content provenance is *not*
			// unioned in: it stays recorded on the field state and is
			// resolved on demand (Result.RepsOf), exactly as the paper's
			// field-confluence partitions associate a content tag with
			// each split object contour.
			if dst.TS.Union(&fs.TS) {
				a.bump(dst)
			}
			if a.opts.Tags {
				for _, t := range base.Tags.List() {
					a.addTag(dst, a.tt.makeObj(oc, in.Field.Name, t))
				}
			}
		}
	case ir.OpSetField:
		base := use(in.Args[0])
		val := use(in.Args[1])
		for _, oc := range base.TS.ObjList() {
			fs := oc.FieldState(in.Field.Name)
			if fs == nil {
				continue
			}
			a.merge(fs, val)
		}
	case ir.OpArrGet:
		base := use(in.Args[0])
		dst := reg(in.Dst)
		for _, ac := range base.TS.ArrList() {
			a.useArg(&ac.Elem)
			if dst.TS.Union(&ac.Elem.TS) {
				a.bump(dst)
			}
			if a.opts.Tags {
				for _, t := range base.Tags.List() {
					a.addTag(dst, a.tt.makeArr(ac, t))
				}
			}
		}
	case ir.OpArrSet:
		base := use(in.Args[0])
		val := use(in.Args[2])
		for _, ac := range base.TS.ArrList() {
			a.merge(&ac.Elem, val)
		}
	case ir.OpCall:
		if !a.sweep {
			mc.resetCalleeOrder(in.ID)
		}
		a.bindTopLevel(mc, fn, in)
	case ir.OpCallStatic:
		if !a.sweep {
			mc.resetCalleeOrder(in.ID)
		}
		a.bindReceiverCall(mc, fn, in, in.Callee)
	case ir.OpCallMethod:
		if !a.sweep {
			mc.resetCalleeOrder(in.ID)
		}
		a.bindReceiverCall(mc, fn, in, nil)
	case ir.OpGetGlobal:
		a.merge(reg(in.Dst), a.use(&a.globals[in.Global]))
	case ir.OpSetGlobal:
		a.merge(&a.globals[in.Global], use(in.Args[0]))
	case ir.OpBuiltin:
		a.evalBuiltin(mc, in)
	case ir.OpReturn:
		if len(in.Args) > 0 {
			a.merge(&mc.Ret, use(in.Args[0]))
		}
	case ir.OpJump, ir.OpBranch, ir.OpTrap:
		// No value flow.
	case ir.OpNewArrayInl, ir.OpArrInterior:
		// Post-transformation ops; the analysis runs before the transform.
	}
}

func (a *analyzer) evalBin(mc *MethodContour, in *ir.Instr) {
	x, y := a.use(mc.Reg(in.Args[0])), a.use(mc.Reg(in.Args[1]))
	dst := mc.Reg(in.Dst)
	switch ir.BinOp(in.Aux) {
	case ir.BinEq, ir.BinNe, ir.BinLt, ir.BinLe, ir.BinGt, ir.BinGe:
		a.addPrim(dst, PBool)
	default:
		var m PrimMask
		if x.TS.Prims&PInt != 0 && y.TS.Prims&PInt != 0 {
			m |= PInt
		}
		if (x.TS.Prims|y.TS.Prims)&PFloat != 0 {
			m |= PFloat
		}
		if x.TS.Prims&PStr != 0 && y.TS.Prims&PStr != 0 && ir.BinOp(in.Aux) == ir.BinAdd {
			m |= PStr
		}
		a.addPrim(dst, m)
	}
}

func (a *analyzer) evalBuiltin(mc *MethodContour, in *ir.Instr) {
	dst := mc.Reg(in.Dst)
	switch ir.Builtin(in.Aux) {
	case ir.BPrint, ir.BAssert:
		a.addPrim(dst, PNil)
	case ir.BSqrt, ir.BFloor, ir.BFloatOf:
		a.addPrim(dst, PFloat)
	case ir.BLen, ir.BIntOf, ir.BXor:
		a.addPrim(dst, PInt)
	case ir.BStrCat:
		a.addPrim(dst, PStr)
	case ir.BAbs:
		a.addPrim(dst, a.use(mc.Reg(in.Args[0])).TS.Prims&(PInt|PFloat))
	case ir.BMin, ir.BMax:
		m := (a.use(mc.Reg(in.Args[0])).TS.Prims | a.use(mc.Reg(in.Args[1])).TS.Prims) & (PInt | PFloat)
		a.addPrim(dst, m)
	}
}

// bindTopLevel handles calls to top-level functions.
func (a *analyzer) bindTopLevel(mc *MethodContour, fn *ir.Func, in *ir.Instr) {
	callee := in.Callee
	key := ""
	if a.policy(callee).splitBySite {
		key = a.siteKey(mc, in)
	}
	cmc := a.getMC(callee, key)
	if mc.addCallee(in.ID, cmc) {
		a.changed = true
	}
	if !a.sweep {
		mc.noteCallee(in.ID, cmc)
	}
	e := a.edge(mc, in, cmc)
	for i, r := range in.Args {
		src := a.useArg(mc.Reg(r))
		a.merge(cmc.Reg(callee.ParamReg(i)), src)
		e.Args[i].Merge(src)
	}
	if in.Dst != ir.NoReg {
		a.merge(mc.Reg(in.Dst), a.useRet(&cmc.Ret))
	}
}

// bindReceiverCall handles method calls: dynamic dispatches (fixed == nil,
// targets resolved per receiver contour) and devirtualized/constructor
// calls (fixed != nil). Receiver-based contour selection restricts the
// callee's self state to the enumerated (object contour, tag) pair, which
// is what makes the selection monotone within a pass.
func (a *analyzer) bindReceiverCall(mc *MethodContour, fn *ir.Func, in *ir.Instr, fixed *ir.Func) {
	recv := a.use(mc.Reg(in.Args[0]))
	for _, oc := range recv.TS.ObjList() {
		target := fixed
		if target == nil {
			target = oc.Class.LookupMethod(in.Method)
			if target == nil {
				continue // runtime error path
			}
			mc.addTarget(in.ID, target)
		}
		if target.NumParams != len(in.Args)-1 {
			continue // runtime arity error path
		}
		pol := a.policy(target)
		baseKey := ""
		if pol.splitBySite {
			baseKey = a.siteKey(mc, in)
		}
		if pol.splitByRecvOC {
			baseKey += "|o" + strconv.Itoa(oc.ID)
		}
		if pol.splitByRecvTag && a.opts.Tags && recv.Tags.Len() > 0 {
			for _, t := range recv.Tags.List() {
				key := baseKey + "|t" + strconv.Itoa(t.ID)
				self := VarState{}
				self.TS.AddObj(oc)
				self.Tags.Add(t)
				a.bindMethod(mc, in, target, key, &self)
			}
			continue
		}
		self := VarState{}
		self.TS.AddObj(oc)
		for _, t := range recv.Tags.List() {
			self.Tags.Add(t)
		}
		a.bindMethod(mc, in, target, baseKey, &self)
	}
}

func (a *analyzer) bindMethod(mc *MethodContour, in *ir.Instr, target *ir.Func, key string, self *VarState) {
	cmc := a.getMC(target, key)
	if mc.addCallee(in.ID, cmc) {
		a.changed = true
	}
	if !a.sweep {
		mc.noteCallee(in.ID, cmc)
	}
	e := a.edge(mc, in, cmc)
	a.merge(cmc.Reg(0), self)
	e.Args[0].Merge(self)
	for i := 1; i < len(in.Args); i++ {
		src := a.useArg(mc.Reg(in.Args[i]))
		a.merge(cmc.Reg(target.ParamReg(i-1)), src)
		e.Args[i].Merge(src)
	}
	if in.Dst != ir.NoReg {
		a.merge(mc.Reg(in.Dst), a.useRet(&cmc.Ret))
	}
}

func (a *analyzer) edge(from *MethodContour, in *ir.Instr, to *MethodContour) *Edge {
	k := edgeKey{from: from, instr: in.ID, to: to}
	if e, ok := a.edges[k]; ok {
		return e
	}
	n := len(in.Args)
	e := &Edge{From: from, Instr: in, To: to, Args: make([]VarState, n)}
	a.edges[k] = e
	to.InEdges = append(to.InEdges, e)
	return e
}

func (a *analyzer) result(passes int) *Result {
	res := &Result{
		Prog:       a.prog,
		Opts:       a.opts,
		Contours:   make(map[*ir.Func][]*MethodContour),
		Mcs:        a.mcList,
		Objs:       a.ocList,
		Arrs:       a.acList,
		Globals:    a.globals,
		Passes:     passes,
		Overflowed: a.overflow,
		Converged:  a.converged,
		Work:       a.work,
	}
	for _, mc := range a.mcList {
		res.Contours[mc.Fn] = append(res.Contours[mc.Fn], mc)
	}
	return res
}
