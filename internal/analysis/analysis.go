package analysis

import (
	"context"
	"fmt"
	"hash/fnv"
	"runtime"
	"strconv"

	"objinline/internal/ir"
	"objinline/internal/lower"
)

// Solver names for Options.Solver (see solver.go for the worklist design
// and parallel.go for the worker-pool solver).
const (
	// SolverWorklist is the dependency-driven worklist solver: only the
	// contours whose inputs changed are re-evaluated. The default.
	SolverWorklist = "worklist"
	// SolverSweep is the naive global re-sweep: every contour is
	// re-evaluated every round until nothing changes. Kept as the
	// reference implementation for differential testing.
	SolverSweep = "sweep"
	// SolverParallel solves each pass on a bounded worker pool
	// (Options.Jobs), scheduling contours by the SCC condensation of the
	// evolving call graph. Its output is byte-identical to the other
	// solvers at any worker count: below the lattice's saturation points
	// every merge is an exact set union (schedule-independent), contour
	// and tag identities are intrinsic (canonicalize in canon.go), and
	// the order-sensitive events — tag-set saturation, MaxContours
	// overflow — deterministically fall back to a sequential re-run of
	// the pass.
	SolverParallel = "parallel"
)

// Options configures an analysis run.
type Options struct {
	// Tags enables the object-inlining use-specialization analysis: field
	// tags are tracked and contours are additionally split on tag
	// confluences. Off, the analysis is the baseline Concert type
	// inference (the paper's "without inlining" configuration).
	Tags bool
	// MaxPasses bounds the iterative refinement (default 8).
	MaxPasses int
	// MaxContours bounds total method contours per pass (default 6000);
	// on overflow the selection function stops splitting (conservative).
	MaxContours int
	// TagDepth caps tag nesting before collapsing to Top (default 3).
	TagDepth int
	// Solver selects the fixpoint engine: SolverWorklist (default),
	// SolverSweep, or SolverParallel. All compute identical results
	// (differentially tested); the worklist does far less work than the
	// sweep, and the parallel solver spreads the worklist's work over
	// Jobs workers.
	Solver string
	// Jobs bounds the parallel solver's worker pool. 0 (the default)
	// means GOMAXPROCS, resolved when the solver starts — deliberately
	// not materialized by WithDefaults, so cache keys built from Options
	// stay machine-independent. Jobs <= 1 runs the sequential worklist
	// engine (the degenerate pool), which is also the fallback the
	// parallel pass re-runs on an order-sensitivity trip. Ignored by the
	// sequential solvers.
	Jobs int
	// MaxRounds bounds the per-pass fixpoint iteration (default 1000).
	// A pass that exhausts it stops with Result.Converged == false. The
	// parallel solver enforces it as a total-evaluation budget and falls
	// back to the sequential engine when exceeded, reproducing the
	// sequential solvers' non-convergence behavior exactly.
	MaxRounds int
}

// WithDefaults returns o with zero-valued knobs replaced by their
// defaults. Analyze applies it internally; callers that key caches on
// Options should apply it too, so that an explicit default (TagDepth 3)
// and an implicit one (TagDepth 0) memoize as the same configuration.
// Jobs is left as-is: its default (GOMAXPROCS) is machine-dependent and
// does not affect results, so it must not leak into cache keys.
func (o Options) WithDefaults() Options {
	if o.MaxPasses == 0 {
		o.MaxPasses = 8
	}
	if o.MaxContours == 0 {
		o.MaxContours = 6000
	}
	if o.TagDepth == 0 {
		o.TagDepth = 3
	}
	if o.Solver == "" {
		o.Solver = SolverWorklist
	}
	if o.MaxRounds == 0 {
		o.MaxRounds = 1000
	}
	return o
}

// Result is the final analysis state consumed by cloning and the inlining
// decision.
type Result struct {
	Prog *ir.Program
	Opts Options

	Contours map[*ir.Func][]*MethodContour
	Mcs      []*MethodContour
	Objs     []*ObjContour
	Arrs     []*ArrContour
	Globals  []VarState

	Passes     int
	Overflowed bool
	// Converged is false when the final pass exhausted Options.MaxRounds
	// before reaching a fixpoint; the result is then a (sound per-round
	// but possibly incomplete) under-approximation and downstream
	// consumers should treat it conservatively.
	Converged bool
	// Work counts the solver's effort across all passes (see WorkStats).
	Work WorkStats
}

// Analyze runs the context-sensitive flow analysis to a fixpoint,
// iteratively refining contour-selection policies between passes (the
// demand-driven splitting of §3.2.1).
func Analyze(prog *ir.Program, opts Options) *Result {
	res, _ := AnalyzeContext(context.Background(), prog, opts)
	return res
}

// AnalyzeContext is Analyze with cancellation: the solvers check the
// context between contour evaluations (their innermost schedulable unit,
// polled every cancelPollInterval evaluations), so a pathological contour
// blowup stops within a few dozen microsecond-scale evaluations of the
// deadline instead of running the pass to completion. A canceled analysis
// returns a nil Result and an error wrapping ctx.Err(); a background
// context makes the checks free (a nil Done channel is never polled).
func AnalyzeContext(ctx context.Context, prog *ir.Program, opts Options) (*Result, error) {
	opts = opts.WithDefaults()
	a := &analyzer{
		prog:       prog,
		opts:       opts,
		ctx:        ctx,
		done:       ctx.Done(),
		sweep:      opts.Solver == SolverSweep,
		policies:   make(map[*ir.Func]*fnPolicy),
		classSplit: make(map[*ir.Class]bool),
		arrSplit:   make(map[int]bool),
		nInstrs:    make(map[*ir.Func]int),
	}
	// Materialize per-function state up front so the maps are read-only
	// while a pass runs — the parallel workers read them without locks.
	forEachFunc(prog, func(fn *ir.Func) {
		a.policy(fn)
		a.instrCount(fn)
	})
	for pass := 1; ; pass++ {
		a.runPass()
		if a.ctxErr != nil {
			return nil, fmt.Errorf("analysis canceled in pass %d: %w", pass, a.ctxErr)
		}
		if pass >= a.opts.MaxPasses || !a.updatePolicies() {
			return a.result(pass), nil
		}
	}
}

// forEachFunc visits every function of the program, top-level and
// methods.
func forEachFunc(prog *ir.Program, f func(*ir.Func)) {
	for _, fn := range prog.Funcs {
		f(fn)
	}
	for _, c := range prog.Classes {
		for _, m := range c.Methods {
			f(m)
		}
	}
}

// mcKey identifies a method contour: the function plus the context key the
// selection policy produced. A comparable struct, not a formatted string —
// contour lookup is the hottest path of the analysis.
type mcKey struct {
	fn  *ir.Func
	ctx string
}

// allocKey identifies an object or array contour: the allocation site plus
// the creating method contour's in-pass ID when the site is creator-split
// (creator == -1 otherwise). The in-pass ID is a per-run handle only; the
// contour's durable identity is its intrinsic ctxHash.
type allocKey struct {
	site    int
	creator int
}

type analyzer struct {
	prog  *ir.Program
	opts  Options
	sweep bool

	// Cancellation (see AnalyzeContext). done is ctx.Done(), cached so the
	// background-context case is a single nil comparison per checkpoint;
	// ctxErr latches the first observed cancellation.
	ctx    context.Context
	done   <-chan struct{}
	ctxErr error

	// Cross-pass refinement state (monotone).
	policies   map[*ir.Func]*fnPolicy
	classSplit map[*ir.Class]bool // split object contours by creator
	arrSplit   map[int]bool       // split array contours by creator, by site UID
	nInstrs    map[*ir.Func]int   // instruction counts (immutable IR), precomputed

	// Per-pass state. During a parallel pass (par != nil) the contour,
	// edge, and tag tables are guarded by par.structMu and every VarState
	// by par's stripe locks; sequential passes touch them directly.
	tt       *tagTable
	mcs      map[mcKey]*MethodContour
	mcList   []*MethodContour
	ocs      map[allocKey]*ObjContour
	ocList   []*ObjContour
	acs      map[allocKey]*ArrContour
	acList   []*ArrContour
	globals  []VarState
	edges    map[edgeKey]*Edge
	changed  bool
	overflow bool
	nextMC   int
	nextOC   int
	nextAC   int

	// Sequential solver state (see solver.go).
	curIdx      int    // drain cursor (contour ID), or -1 outside a scan
	dirtyCur    []bool // by contour ID: scheduled for this round
	dirtyNext   []bool // by contour ID: scheduled for the next round
	pendingNext int
	converged   bool
	work        WorkStats

	// par is the parallel pass's shared scheduler state, nil otherwise.
	par *parState
}

type edgeKey struct {
	from  *MethodContour
	instr int
	to    *MethodContour
}

func (a *analyzer) policy(fn *ir.Func) *fnPolicy {
	p := a.policies[fn]
	if p == nil {
		p = &fnPolicy{}
		a.policies[fn] = p
	}
	return p
}

func siteUID(fn *ir.Func, in *ir.Instr) int { return fn.ID*1_000_000 + in.ID }

// Intrinsic identity hashing (FNV-1a chaining). Contour and tag keys are
// derived from these hashes instead of creation-order IDs, so the key a
// split produces — and therefore the partition itself — is independent of
// the order a solver schedule happened to create contours in. See
// canon.go for how final IDs are then assigned deterministically.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func hashSeed(kind byte) uint64 { return (fnvOffset64 ^ uint64(kind)) * fnvPrime64 }

func hashU64(h, x uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = (h ^ (x & 0xff)) * fnvPrime64
		x >>= 8
	}
	return h
}

func hashStr(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime64
	}
	return h
}

// hashKeyStr renders an identity hash as a compact key component.
func hashKeyStr(h uint64) string { return strconv.FormatUint(h, 36) }

func mcHash(fn *ir.Func, key string) uint64 {
	return hashStr(hashU64(hashSeed(0), uint64(fn.ID)), key)
}

// instrCount returns (memoized; the IR is immutable) the number of
// instructions in fn, which sizes per-contour dirty bitmaps. Every
// function is precomputed at analyzer construction, so pass-time calls
// are read-only map hits.
func (a *analyzer) instrCount(fn *ir.Func) int {
	if n, ok := a.nInstrs[fn]; ok {
		return n
	}
	n := 0
	for _, b := range fn.Blocks {
		n += len(b.Instrs)
	}
	a.nInstrs[fn] = n
	return n
}

// parJobs resolves the parallel worker count.
func (a *analyzer) parJobs() int {
	if a.opts.Jobs > 0 {
		return a.opts.Jobs
	}
	return runtime.GOMAXPROCS(0)
}

func (a *analyzer) resetPass() {
	a.tt = newTagTable(a.opts.TagDepth)
	a.mcs = make(map[mcKey]*MethodContour)
	a.mcList = nil
	a.ocs = make(map[allocKey]*ObjContour)
	a.ocList = nil
	a.acs = make(map[allocKey]*ArrContour)
	a.acList = nil
	a.globals = make([]VarState, len(a.prog.Globals))
	a.edges = make(map[edgeKey]*Edge)
	a.overflow = false
	a.nextMC, a.nextOC, a.nextAC = 0, 0, 0
	a.curIdx = -1
	a.dirtyCur, a.dirtyNext = nil, nil
	a.pendingNext = 0
	a.converged = true
	a.par = nil
}

// seed creates the root contours every pass starts from.
func (a *analyzer) seed(w *worker) {
	if init := a.prog.FuncNamed(lower.InitFuncName); init != nil {
		w.getMC(init, "")
	}
	if a.prog.Main != nil {
		w.getMC(a.prog.Main, "")
	}
}

// runPass analyzes the whole program to a fixpoint under the current
// contour-selection policies, then renumbers the pass's contours and tags
// canonically (canon.go) so every solver — and every parallel schedule —
// reports identical state.
func (a *analyzer) runPass() {
	a.resetPass()
	if a.opts.Solver == SolverParallel && a.parJobs() > 1 {
		a.runParallelPass()
	} else {
		w := newWorker(a, nil)
		a.seed(w)
		if a.sweep {
			a.runSweep(w)
		} else {
			a.runWorklist(w)
		}
		a.work.add(w.work)
	}
	if a.ctxErr == nil {
		a.canonicalize()
	}
}

// getMC returns (creating if needed) the contour of fn for the given
// context key.
func (w *worker) getMC(fn *ir.Func, key string) *MethodContour {
	if w.p != nil {
		return w.getMCPar(fn, key)
	}
	a := w.a
	if len(a.mcList) >= a.opts.MaxContours {
		a.overflow = true
		key = "" // stop splitting; merge into the base contour
	}
	id := mcKey{fn, key}
	if mc, ok := a.mcs[id]; ok {
		return mc
	}
	mc := &MethodContour{ID: a.nextMC, Fn: fn, Key: key, Regs: make([]VarState, fn.NumRegs), ctxHash: mcHash(fn, key)}
	a.nextMC++
	a.mcs[id] = mc
	a.mcList = append(a.mcList, mc)
	a.changed = true
	if !a.sweep {
		// New contours run in the current round (the sweep evaluates list
		// growth within the round; see solver.go for why order matters),
		// with every instruction initially fully dirty.
		mc.dirty = make([]bool, numSlots*a.instrCount(fn))
		for i := 0; i < len(mc.dirty); i += numSlots {
			mc.dirty[i] = true
		}
		a.dirtyCur = append(a.dirtyCur, true)
		a.dirtyNext = append(a.dirtyNext, false)
		w.work.Enqueues++
		if len(a.mcList) == a.opts.MaxContours {
			w.redirtyCallSites()
		}
	}
	return mc
}

// redirtyCallSites re-dirties the slotFull bit of every call instruction
// in every contour and reschedules the contours. Called once per pass, at
// the creation that fills the contour list to Options.MaxContours: from
// that point getMC coerces split keys to the base contour, and the
// coercion is driven by the contour *count* — an input no VarState
// dependency observes — so even call sites with unchanged inputs must
// re-bind. The sweep gets this for free: the filling creation set
// changed, guaranteeing every site a post-transition visit. Re-dirtying
// replays exactly those visits (ahead-of-cursor sites this round, the
// rest next round, per enqueue's routing), keeping the two solvers
// bit-identical through the overflow transition. The parallel solver
// never gets here: its getMCPar trips the pass to the sequential engine
// at the same count threshold.
func (w *worker) redirtyCallSites() {
	for _, mc := range w.a.mcList {
		sched := false
		pos := 0
		for _, b := range mc.Fn.Blocks {
			for _, in := range b.Instrs {
				switch in.Op {
				case ir.OpCall, ir.OpCallStatic, ir.OpCallMethod:
					mc.dirty[numSlots*pos+slotFull] = true
					// A site ahead of the in-progress scan of the contour
					// currently evaluating is reached by this very visit;
					// any other site needs its contour (re-)scheduled.
					if mc != w.cur || pos <= w.curInstr {
						sched = true
					}
				}
				pos++
			}
		}
		if sched {
			w.enqueue(mc)
		}
	}
}

func (w *worker) getOC(fn *ir.Func, in *ir.Instr, mc *MethodContour) *ObjContour {
	a := w.a
	creator := -1
	key := ""
	if a.classSplit[in.Class] {
		creator = mc.ID
		key = "c" + hashKeyStr(mc.ctxHash)
	}
	id := allocKey{siteUID(fn, in), creator}
	if p := w.p; p != nil {
		p.structMu.RLock()
		oc := a.ocs[id]
		p.structMu.RUnlock()
		if oc != nil {
			return oc
		}
		p.structMu.Lock()
		defer p.structMu.Unlock()
		if oc := a.ocs[id]; oc != nil {
			return oc
		}
		return a.newOC(id, fn, in, key)
	}
	if oc, ok := a.ocs[id]; ok {
		return oc
	}
	a.changed = true
	return a.newOC(id, fn, in, key)
}

func (a *analyzer) newOC(id allocKey, fn *ir.Func, in *ir.Instr, key string) *ObjContour {
	oc := &ObjContour{
		ID: a.nextOC, Class: in.Class, Site: in, SiteFn: fn, Key: key,
		Fields:  make([]VarState, in.Class.NumSlots()),
		ctxHash: hashStr(hashU64(hashSeed(1), uint64(siteUID(fn, in))), key),
	}
	a.nextOC++
	a.ocs[id] = oc
	a.ocList = append(a.ocList, oc)
	return oc
}

func (w *worker) getAC(fn *ir.Func, in *ir.Instr, mc *MethodContour) *ArrContour {
	a := w.a
	creator := -1
	key := ""
	if a.arrSplit[siteUID(fn, in)] {
		creator = mc.ID
		key = "c" + hashKeyStr(mc.ctxHash)
	}
	id := allocKey{siteUID(fn, in), creator}
	if p := w.p; p != nil {
		p.structMu.RLock()
		ac := a.acs[id]
		p.structMu.RUnlock()
		if ac != nil {
			return ac
		}
		p.structMu.Lock()
		defer p.structMu.Unlock()
		if ac := a.acs[id]; ac != nil {
			return ac
		}
		return a.newAC(id, fn, in, key)
	}
	if ac, ok := a.acs[id]; ok {
		return ac
	}
	a.changed = true
	return a.newAC(id, fn, in, key)
}

func (a *analyzer) newAC(id allocKey, fn *ir.Func, in *ir.Instr, key string) *ArrContour {
	ac := &ArrContour{
		ID: a.nextAC, Site: in, SiteFn: fn, Key: key,
		ctxHash: hashStr(hashU64(hashSeed(2), uint64(siteUID(fn, in))), key),
	}
	a.nextAC++
	a.acs[id] = ac
	a.acList = append(a.acList, ac)
	return ac
}

// siteKey builds the caller-context component of a callee contour key,
// bounded in length so recursion terminates (deep chains hash-merge).
// Keys are memoized per call site on the caller contour: they are
// recomputed on every re-evaluation of a call instruction, the inputs
// (the caller's own key and the site) are immutable within a pass, and
// only the caller's evaluator touches the memo.
func (w *worker) siteKey(caller *MethodContour, in *ir.Instr) string {
	if k, ok := caller.siteKeyMemo[in.ID]; ok {
		return k
	}
	k := computeSiteKey(caller.Fn.ID, caller.Key, in.ID)
	if caller.siteKeyMemo == nil {
		caller.siteKeyMemo = make(map[int]string)
	}
	caller.siteKeyMemo[in.ID] = k
	return k
}

// computeSiteKey is the uncached key construction (exercised directly by
// benchmarks; callers go through the memoizing siteKey).
func computeSiteKey(fnID int, callerKey string, instrID int) string {
	k := "s" + strconv.Itoa(fnID) + "." + strconv.Itoa(instrID)
	if callerKey != "" {
		k = callerKey + "/" + k
	}
	if len(k) > 72 {
		h := fnv.New32a()
		h.Write([]byte(k))
		k = fmt.Sprintf("h%x", h.Sum32())
	}
	return k
}

// evalContour applies instruction transfer functions in flattened program
// order. The sweep (mc.dirty == nil) applies every one in full; the
// worklist applies only the dirty slots — a fully dirty instruction
// re-runs whole (subsuming its partial slots), an instruction dirty only
// in a data slot gets the matching partial re-merge, and a clean
// instruction is skipped. Skipped work has unchanged inputs, so skipping
// it is a no-op (see solver.go). The parallel solver's variant is
// evalContourPar in parallel.go, which guards the dirty bitmap with the
// contour's scheduling lock.
func (w *worker) evalContour(mc *MethodContour) {
	w.cur = mc
	w.work.ContourEvals++
	fn := mc.Fn
	if mc.dirty == nil {
		for _, b := range fn.Blocks {
			for _, in := range b.Instrs {
				w.evalInstr(mc, fn, in)
			}
		}
	} else {
		pos := 0
		for _, b := range fn.Blocks {
			for _, in := range b.Instrs {
				base := numSlots * pos
				if mc.dirty[base] {
					mc.dirty[base] = false
					mc.dirty[base+slotArgs] = false
					mc.dirty[base+slotRet] = false
					w.curInstr = pos
					w.evalInstr(mc, fn, in)
				} else {
					// Partial order mirrors the full evaluation: argument
					// merges precede the return merge.
					if mc.dirty[base+slotArgs] {
						mc.dirty[base+slotArgs] = false
						w.curInstr = pos
						w.evalArgs(mc, in)
					}
					if mc.dirty[base+slotRet] {
						mc.dirty[base+slotRet] = false
						w.curInstr = pos
						w.evalRet(mc, in)
					}
				}
				pos++
			}
		}
		w.curInstr = -1
	}
	w.cur = nil
}

// evalArgs is the slotArgs partial evaluation: one of the instruction's
// data inputs changed, while its control inputs (receiver, base,
// operands) did not — so the bindings the full transfer function would
// enumerate are exactly the ones already recorded, and re-merging the
// data through them — in the full evaluation's enumeration order (the
// sorted contour lists for loads, calleeOrder for calls; see solver.go
// on why order matters) — reproduces the full evaluation's effect on
// those cells. Only instructions that register slotArgs readers get
// here.
func (w *worker) evalArgs(mc *MethodContour, in *ir.Instr) {
	w.work.PartialEvals++
	switch in.Op {
	case ir.OpGetField:
		base := mc.Reg(in.Args[0]) // registered slotFull by the full eval
		dst := mc.Reg(in.Dst)
		for _, oc := range w.objList(base) {
			fs := oc.FieldState(in.Field.Name)
			if fs == nil {
				continue
			}
			w.useArg(fs)
			w.unionTS(dst, fs)
		}
	case ir.OpArrGet:
		base := mc.Reg(in.Args[0])
		dst := mc.Reg(in.Dst)
		for _, ac := range w.arrList(base) {
			w.useArg(&ac.Elem)
			w.unionTS(dst, &ac.Elem)
		}
	case ir.OpCall, ir.OpCallStatic, ir.OpCallMethod:
		// The self argument (when present) derives from the receiver — a
		// slotFull input — so it is unchanged here and skipped.
		start := 0
		if in.Op != ir.OpCall {
			start = 1
		}
		for _, cmc := range mc.calleeOrder[in.ID] {
			e := w.edge(mc, in, cmc)
			for i := start; i < len(in.Args); i++ {
				src := w.useArg(mc.Reg(in.Args[i]))
				w.merge(cmc.Reg(cmc.Fn.ParamReg(i-start)), src)
				w.mergeEdgeArg(e, i, src)
			}
		}
	}
}

// evalRet is the slotRet partial evaluation: a callee's return cell
// changed, so it is re-merged into the call's destination. The receiver
// is unchanged (a receiver change dirties slotFull instead), so the
// callees — and the order a full re-run would merge their returns in —
// are exactly those calleeOrder recorded at the site's last full
// evaluation.
func (w *worker) evalRet(mc *MethodContour, in *ir.Instr) {
	w.work.PartialEvals++
	if in.Dst == ir.NoReg {
		return
	}
	dst := mc.Reg(in.Dst)
	for _, cmc := range mc.calleeOrder[in.ID] {
		w.noteSummaryRead(cmc)
		w.merge(dst, w.useRet(&cmc.Ret))
	}
}

func (w *worker) evalInstr(mc *MethodContour, fn *ir.Func, in *ir.Instr) {
	a := w.a
	w.work.InstrEvals++
	reg := func(r ir.Reg) *VarState { return mc.Reg(r) }
	// use marks a register as an input of this instruction's evaluation
	// before reading it (dependency registration; see solver.go).
	use := func(r ir.Reg) *VarState { return w.use(mc.Reg(r)) }
	switch in.Op {
	case ir.OpConstInt:
		w.addPrim(reg(in.Dst), PInt)
	case ir.OpConstFloat:
		w.addPrim(reg(in.Dst), PFloat)
	case ir.OpConstStr:
		w.addPrim(reg(in.Dst), PStr)
	case ir.OpConstBool:
		w.addPrim(reg(in.Dst), PBool)
	case ir.OpConstNil:
		w.addPrim(reg(in.Dst), PNil)
	case ir.OpMove:
		w.merge(reg(in.Dst), use(in.Args[0]))
	case ir.OpBin:
		w.evalBin(mc, in)
	case ir.OpUn:
		x := use(in.Args[0])
		if ir.UnOp(in.Aux) == ir.UnNot {
			w.addPrim(reg(in.Dst), PBool)
		} else {
			w.addPrim(reg(in.Dst), w.prims(x)&(PInt|PFloat))
		}
	case ir.OpNewObject:
		oc := w.getOC(fn, in, mc)
		if mc.NewObjs == nil {
			mc.NewObjs = make(map[int]*ObjContour)
		}
		mc.NewObjs[in.ID] = oc
		dst := reg(in.Dst)
		w.addObj(dst, oc)
		w.addTag(dst, a.tt.noField)
	case ir.OpNewArray:
		ac := w.getAC(fn, in, mc)
		if mc.NewArrs == nil {
			mc.NewArrs = make(map[int]*ArrContour)
		}
		mc.NewArrs[in.ID] = ac
		dst := reg(in.Dst)
		w.addArr(dst, ac)
		w.addTag(dst, a.tt.noField)
	case ir.OpGetField:
		base := use(in.Args[0])
		dst := reg(in.Dst)
		for _, oc := range w.objList(base) {
			fs := oc.FieldState(in.Field.Name)
			if fs == nil {
				continue
			}
			w.useArg(fs)
			// Types flow through the field; the loaded value is tagged
			// MakeTag(f, tag(o)) per §4.1. Content provenance is *not*
			// unioned in: it stays recorded on the field state and is
			// resolved on demand (Result.RepsOf), exactly as the paper's
			// field-confluence partitions associate a content tag with
			// each split object contour.
			w.unionTS(dst, fs)
			if a.opts.Tags {
				for _, t := range w.tagList(base) {
					w.addTag(dst, a.tt.makeObj(oc, in.Field.Name, t))
				}
			}
		}
	case ir.OpSetField:
		base := use(in.Args[0])
		val := use(in.Args[1])
		for _, oc := range w.objList(base) {
			fs := oc.FieldState(in.Field.Name)
			if fs == nil {
				continue
			}
			w.merge(fs, val)
		}
	case ir.OpArrGet:
		base := use(in.Args[0])
		dst := reg(in.Dst)
		for _, ac := range w.arrList(base) {
			w.useArg(&ac.Elem)
			w.unionTS(dst, &ac.Elem)
			if a.opts.Tags {
				for _, t := range w.tagList(base) {
					w.addTag(dst, a.tt.makeArr(ac, t))
				}
			}
		}
	case ir.OpArrSet:
		base := use(in.Args[0])
		val := use(in.Args[2])
		for _, ac := range w.arrList(base) {
			w.merge(&ac.Elem, val)
		}
	case ir.OpCall:
		if !a.sweep {
			mc.resetCalleeOrder(in.ID)
		}
		w.bindTopLevel(mc, fn, in)
	case ir.OpCallStatic:
		if !a.sweep {
			mc.resetCalleeOrder(in.ID)
		}
		w.bindReceiverCall(mc, fn, in, in.Callee)
	case ir.OpCallMethod:
		if !a.sweep {
			mc.resetCalleeOrder(in.ID)
		}
		w.bindReceiverCall(mc, fn, in, nil)
	case ir.OpGetGlobal:
		w.merge(reg(in.Dst), w.use(&a.globals[in.Global]))
	case ir.OpSetGlobal:
		w.merge(&a.globals[in.Global], use(in.Args[0]))
	case ir.OpBuiltin:
		w.evalBuiltin(mc, in)
	case ir.OpReturn:
		if len(in.Args) > 0 {
			w.merge(&mc.Ret, use(in.Args[0]))
		}
	case ir.OpJump, ir.OpBranch, ir.OpTrap:
		// No value flow.
	case ir.OpNewArrayInl, ir.OpArrInterior:
		// Post-transformation ops; the analysis runs before the transform.
	}
}

func (w *worker) evalBin(mc *MethodContour, in *ir.Instr) {
	x, y := w.use(mc.Reg(in.Args[0])), w.use(mc.Reg(in.Args[1]))
	dst := mc.Reg(in.Dst)
	switch ir.BinOp(in.Aux) {
	case ir.BinEq, ir.BinNe, ir.BinLt, ir.BinLe, ir.BinGt, ir.BinGe:
		w.addPrim(dst, PBool)
	default:
		xp, yp := w.prims(x), w.prims(y)
		var m PrimMask
		if xp&PInt != 0 && yp&PInt != 0 {
			m |= PInt
		}
		if (xp|yp)&PFloat != 0 {
			m |= PFloat
		}
		if xp&PStr != 0 && yp&PStr != 0 && ir.BinOp(in.Aux) == ir.BinAdd {
			m |= PStr
		}
		w.addPrim(dst, m)
	}
}

func (w *worker) evalBuiltin(mc *MethodContour, in *ir.Instr) {
	dst := mc.Reg(in.Dst)
	switch ir.Builtin(in.Aux) {
	case ir.BPrint, ir.BAssert:
		w.addPrim(dst, PNil)
	case ir.BSqrt, ir.BFloor, ir.BFloatOf:
		w.addPrim(dst, PFloat)
	case ir.BLen, ir.BIntOf, ir.BXor:
		w.addPrim(dst, PInt)
	case ir.BStrCat:
		w.addPrim(dst, PStr)
	case ir.BAbs:
		w.addPrim(dst, w.prims(w.use(mc.Reg(in.Args[0])))&(PInt|PFloat))
	case ir.BMin, ir.BMax:
		m := (w.prims(w.use(mc.Reg(in.Args[0]))) | w.prims(w.use(mc.Reg(in.Args[1])))) & (PInt | PFloat)
		w.addPrim(dst, m)
	}
}

// bindTopLevel handles calls to top-level functions.
func (w *worker) bindTopLevel(mc *MethodContour, fn *ir.Func, in *ir.Instr) {
	a := w.a
	callee := in.Callee
	key := ""
	if a.policies[callee].splitBySite {
		key = w.siteKey(mc, in)
	}
	cmc := w.getMC(callee, key)
	if mc.addCallee(in.ID, cmc) {
		if w.p == nil {
			a.changed = true
		}
	}
	if !a.sweep {
		mc.noteCallee(in.ID, cmc)
	}
	e := w.edge(mc, in, cmc)
	for i, r := range in.Args {
		src := w.useArg(mc.Reg(r))
		w.merge(cmc.Reg(callee.ParamReg(i)), src)
		w.mergeEdgeArg(e, i, src)
	}
	if in.Dst != ir.NoReg {
		w.noteSummaryRead(cmc)
		w.merge(mc.Reg(in.Dst), w.useRet(&cmc.Ret))
	}
}

// bindReceiverCall handles method calls: dynamic dispatches (fixed == nil,
// targets resolved per receiver contour) and devirtualized/constructor
// calls (fixed != nil). Receiver-based contour selection restricts the
// callee's self state to the enumerated (object contour, tag) pair, which
// is what makes the selection monotone within a pass.
func (w *worker) bindReceiverCall(mc *MethodContour, fn *ir.Func, in *ir.Instr, fixed *ir.Func) {
	a := w.a
	recv := w.use(mc.Reg(in.Args[0]))
	for _, oc := range w.objList(recv) {
		target := fixed
		if target == nil {
			target = oc.Class.LookupMethod(in.Method)
			if target == nil {
				continue // runtime error path
			}
			mc.addTarget(in.ID, target)
		}
		if target.NumParams != len(in.Args)-1 {
			continue // runtime arity error path
		}
		pol := a.policies[target]
		baseKey := ""
		if pol.splitBySite {
			baseKey = w.siteKey(mc, in)
		}
		if pol.splitByRecvOC {
			baseKey += "|o" + hashKeyStr(oc.ctxHash)
		}
		if pol.splitByRecvTag && a.opts.Tags && w.tagsLen(recv) > 0 {
			for _, t := range w.tagList(recv) {
				key := baseKey + "|t" + hashKeyStr(t.uid)
				self := VarState{}
				self.TS.AddObj(oc)
				self.Tags.Add(t)
				w.bindMethod(mc, in, target, key, &self)
			}
			continue
		}
		self := VarState{}
		self.TS.AddObj(oc)
		for _, t := range w.tagList(recv) {
			self.Tags.Add(t)
		}
		w.bindMethod(mc, in, target, baseKey, &self)
	}
}

func (w *worker) bindMethod(mc *MethodContour, in *ir.Instr, target *ir.Func, key string, self *VarState) {
	a := w.a
	cmc := w.getMC(target, key)
	if mc.addCallee(in.ID, cmc) {
		if w.p == nil {
			a.changed = true
		}
	}
	if !a.sweep {
		mc.noteCallee(in.ID, cmc)
	}
	e := w.edge(mc, in, cmc)
	w.mergeLocal(cmc.Reg(0), self)
	w.mergeEdgeArgLocal(e, 0, self)
	for i := 1; i < len(in.Args); i++ {
		src := w.useArg(mc.Reg(in.Args[i]))
		w.merge(cmc.Reg(target.ParamReg(i-1)), src)
		w.mergeEdgeArg(e, i, src)
	}
	if in.Dst != ir.NoReg {
		w.noteSummaryRead(cmc)
		w.merge(mc.Reg(in.Dst), w.useRet(&cmc.Ret))
	}
}

func (w *worker) edge(from *MethodContour, in *ir.Instr, to *MethodContour) *Edge {
	a := w.a
	k := edgeKey{from: from, instr: in.ID, to: to}
	if p := w.p; p != nil {
		p.structMu.RLock()
		e := a.edges[k]
		p.structMu.RUnlock()
		if e != nil {
			return e
		}
		p.structMu.Lock()
		if e := a.edges[k]; e != nil {
			p.structMu.Unlock()
			return e
		}
		e = newEdge(a, k, in, to)
		p.structMu.Unlock()
		// A new call edge refines the call graph; feed the SCC
		// condensation that schedules downstream work.
		p.recordEdge(int32(from.ID), int32(to.ID))
		return e
	}
	if e, ok := a.edges[k]; ok {
		return e
	}
	return newEdge(a, k, in, to)
}

func newEdge(a *analyzer, k edgeKey, in *ir.Instr, to *MethodContour) *Edge {
	e := &Edge{From: k.from, Instr: in, To: to, Args: make([]VarState, len(in.Args))}
	a.edges[k] = e
	to.InEdges = append(to.InEdges, e)
	return e
}

func (a *analyzer) result(passes int) *Result {
	res := &Result{
		Prog:       a.prog,
		Opts:       a.opts,
		Contours:   make(map[*ir.Func][]*MethodContour),
		Mcs:        a.mcList,
		Objs:       a.ocList,
		Arrs:       a.acList,
		Globals:    a.globals,
		Passes:     passes,
		Overflowed: a.overflow,
		Converged:  a.converged,
		Work:       a.work,
	}
	for _, mc := range a.mcList {
		res.Contours[mc.Fn] = append(res.Contours[mc.Fn], mc)
	}
	return res
}
