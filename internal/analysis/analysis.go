package analysis

import (
	"fmt"
	"hash/fnv"

	"objinline/internal/ir"
	"objinline/internal/lower"
)

// Options configures an analysis run.
type Options struct {
	// Tags enables the object-inlining use-specialization analysis: field
	// tags are tracked and contours are additionally split on tag
	// confluences. Off, the analysis is the baseline Concert type
	// inference (the paper's "without inlining" configuration).
	Tags bool
	// MaxPasses bounds the iterative refinement (default 8).
	MaxPasses int
	// MaxContours bounds total method contours per pass (default 6000);
	// on overflow the selection function stops splitting (conservative).
	MaxContours int
	// TagDepth caps tag nesting before collapsing to Top (default 3).
	TagDepth int
}

// WithDefaults returns o with zero-valued knobs replaced by their
// defaults. Analyze applies it internally; callers that key caches on
// Options should apply it too, so that an explicit default (TagDepth 3)
// and an implicit one (TagDepth 0) memoize as the same configuration.
func (o Options) WithDefaults() Options {
	if o.MaxPasses == 0 {
		o.MaxPasses = 8
	}
	if o.MaxContours == 0 {
		o.MaxContours = 6000
	}
	if o.TagDepth == 0 {
		o.TagDepth = 3
	}
	return o
}

// Result is the final analysis state consumed by cloning and the inlining
// decision.
type Result struct {
	Prog *ir.Program
	Opts Options

	Contours map[*ir.Func][]*MethodContour
	Mcs      []*MethodContour
	Objs     []*ObjContour
	Arrs     []*ArrContour
	Globals  []VarState

	Passes     int
	Overflowed bool
}

// Analyze runs the context-sensitive flow analysis to a fixpoint,
// iteratively refining contour-selection policies between passes (the
// demand-driven splitting of §3.2.1).
func Analyze(prog *ir.Program, opts Options) *Result {
	a := &analyzer{
		prog:       prog,
		opts:       opts.WithDefaults(),
		policies:   make(map[*ir.Func]*fnPolicy),
		classSplit: make(map[*ir.Class]bool),
		arrSplit:   make(map[int]bool),
	}
	for pass := 1; ; pass++ {
		a.runPass()
		if pass >= a.opts.MaxPasses || !a.updatePolicies() {
			return a.result(pass)
		}
	}
}

type analyzer struct {
	prog *ir.Program
	opts Options

	// Cross-pass refinement state (monotone).
	policies   map[*ir.Func]*fnPolicy
	classSplit map[*ir.Class]bool // split object contours by creator
	arrSplit   map[int]bool       // split array contours by creator, by site UID

	// Per-pass state.
	tt       *tagTable
	mcs      map[string]*MethodContour
	mcList   []*MethodContour
	ocs      map[string]*ObjContour
	ocList   []*ObjContour
	acs      map[string]*ArrContour
	acList   []*ArrContour
	globals  []VarState
	edges    map[edgeKey]*Edge
	changed  bool
	overflow bool
	nextMC   int
	nextOC   int
	nextAC   int
}

type edgeKey struct {
	from  *MethodContour
	instr int
	to    *MethodContour
}

func (a *analyzer) policy(fn *ir.Func) *fnPolicy {
	p := a.policies[fn]
	if p == nil {
		p = &fnPolicy{}
		a.policies[fn] = p
	}
	return p
}

func siteUID(fn *ir.Func, in *ir.Instr) int { return fn.ID*1_000_000 + in.ID }

func (a *analyzer) resetPass() {
	a.tt = newTagTable(a.opts.TagDepth)
	a.mcs = make(map[string]*MethodContour)
	a.mcList = nil
	a.ocs = make(map[string]*ObjContour)
	a.ocList = nil
	a.acs = make(map[string]*ArrContour)
	a.acList = nil
	a.globals = make([]VarState, len(a.prog.Globals))
	a.edges = make(map[edgeKey]*Edge)
	a.overflow = false
	a.nextMC, a.nextOC, a.nextAC = 0, 0, 0
}

// runPass analyzes the whole program to a fixpoint under the current
// contour-selection policies.
func (a *analyzer) runPass() {
	a.resetPass()
	if init := a.prog.FuncNamed(lower.InitFuncName); init != nil {
		a.getMC(init, "")
	}
	if a.prog.Main != nil {
		a.getMC(a.prog.Main, "")
	}
	const maxRounds = 1000
	for round := 0; round < maxRounds; round++ {
		a.changed = false
		// The list grows while we iterate; newly created contours are
		// evaluated within the same round.
		for i := 0; i < len(a.mcList); i++ {
			a.evalContour(a.mcList[i])
		}
		if !a.changed {
			return
		}
	}
}

// getMC returns (creating if needed) the contour of fn for the given
// context key.
func (a *analyzer) getMC(fn *ir.Func, key string) *MethodContour {
	if len(a.mcList) >= a.opts.MaxContours {
		a.overflow = true
		key = "" // stop splitting; merge into the base contour
	}
	id := fmt.Sprintf("%d|%s", fn.ID, key)
	if mc, ok := a.mcs[id]; ok {
		return mc
	}
	mc := &MethodContour{ID: a.nextMC, Fn: fn, Key: key, Regs: make([]VarState, fn.NumRegs)}
	a.nextMC++
	a.mcs[id] = mc
	a.mcList = append(a.mcList, mc)
	a.changed = true
	return mc
}

func (a *analyzer) getOC(fn *ir.Func, in *ir.Instr, mc *MethodContour) *ObjContour {
	key := ""
	if a.classSplit[in.Class] {
		key = fmt.Sprintf("c%d", mc.ID)
	}
	id := fmt.Sprintf("%d|%s", siteUID(fn, in), key)
	if oc, ok := a.ocs[id]; ok {
		return oc
	}
	oc := &ObjContour{
		ID: a.nextOC, Class: in.Class, Site: in, SiteFn: fn, Key: key,
		Fields: make([]VarState, in.Class.NumSlots()),
	}
	a.nextOC++
	a.ocs[id] = oc
	a.ocList = append(a.ocList, oc)
	a.changed = true
	return oc
}

func (a *analyzer) getAC(fn *ir.Func, in *ir.Instr, mc *MethodContour) *ArrContour {
	key := ""
	if a.arrSplit[siteUID(fn, in)] {
		key = fmt.Sprintf("c%d", mc.ID)
	}
	id := fmt.Sprintf("%d|%s", siteUID(fn, in), key)
	if ac, ok := a.acs[id]; ok {
		return ac
	}
	ac := &ArrContour{ID: a.nextAC, Site: in, SiteFn: fn, Key: key}
	a.nextAC++
	a.acs[id] = ac
	a.acList = append(a.acList, ac)
	a.changed = true
	return ac
}

// merge wraps VarState.Merge with change tracking.
func (a *analyzer) merge(dst, src *VarState) {
	if dst.Merge(src) {
		a.changed = true
	}
}

func (a *analyzer) addPrim(dst *VarState, m PrimMask) {
	if dst.TS.AddPrim(m) {
		a.changed = true
	}
}

func (a *analyzer) addTag(dst *VarState, t *Tag) {
	if a.opts.Tags && dst.Tags.Add(t) {
		a.changed = true
	}
}

// siteKey builds the caller-context component of a callee contour key,
// bounded in length so recursion terminates (deep chains hash-merge).
func (a *analyzer) siteKey(caller *MethodContour, in *ir.Instr) string {
	k := fmt.Sprintf("s%d.%d", caller.Fn.ID, in.ID)
	if caller.Key != "" {
		k = caller.Key + "/" + k
	}
	if len(k) > 72 {
		h := fnv.New32a()
		h.Write([]byte(k))
		k = fmt.Sprintf("h%x", h.Sum32())
	}
	return k
}

// evalContour applies the transfer functions of every instruction in the
// contour's function.
func (a *analyzer) evalContour(mc *MethodContour) {
	fn := mc.Fn
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			a.evalInstr(mc, fn, in)
		}
	}
}

func (a *analyzer) evalInstr(mc *MethodContour, fn *ir.Func, in *ir.Instr) {
	reg := func(r ir.Reg) *VarState { return mc.Reg(r) }
	switch in.Op {
	case ir.OpConstInt:
		a.addPrim(reg(in.Dst), PInt)
	case ir.OpConstFloat:
		a.addPrim(reg(in.Dst), PFloat)
	case ir.OpConstStr:
		a.addPrim(reg(in.Dst), PStr)
	case ir.OpConstBool:
		a.addPrim(reg(in.Dst), PBool)
	case ir.OpConstNil:
		a.addPrim(reg(in.Dst), PNil)
	case ir.OpMove:
		a.merge(reg(in.Dst), reg(in.Args[0]))
	case ir.OpBin:
		a.evalBin(mc, in)
	case ir.OpUn:
		x := reg(in.Args[0])
		if ir.UnOp(in.Aux) == ir.UnNot {
			a.addPrim(reg(in.Dst), PBool)
		} else {
			a.addPrim(reg(in.Dst), x.TS.Prims&(PInt|PFloat))
		}
	case ir.OpNewObject:
		oc := a.getOC(fn, in, mc)
		if mc.NewObjs == nil {
			mc.NewObjs = make(map[int]*ObjContour)
		}
		mc.NewObjs[in.ID] = oc
		dst := reg(in.Dst)
		if dst.TS.AddObj(oc) {
			a.changed = true
		}
		a.addTag(dst, a.tt.noField)
	case ir.OpNewArray:
		ac := a.getAC(fn, in, mc)
		if mc.NewArrs == nil {
			mc.NewArrs = make(map[int]*ArrContour)
		}
		mc.NewArrs[in.ID] = ac
		dst := reg(in.Dst)
		if dst.TS.AddArr(ac) {
			a.changed = true
		}
		a.addTag(dst, a.tt.noField)
	case ir.OpGetField:
		base := reg(in.Args[0])
		dst := reg(in.Dst)
		for _, oc := range base.TS.ObjList() {
			fs := oc.FieldState(in.Field.Name)
			if fs == nil {
				continue
			}
			// Types flow through the field; the loaded value is tagged
			// MakeTag(f, tag(o)) per §4.1. Content provenance is *not*
			// unioned in: it stays recorded on the field state and is
			// resolved on demand (Result.RepsOf), exactly as the paper's
			// field-confluence partitions associate a content tag with
			// each split object contour.
			if dst.TS.Union(&fs.TS) {
				a.changed = true
			}
			if a.opts.Tags {
				for _, t := range base.Tags.List() {
					a.addTag(dst, a.tt.makeObj(oc, in.Field.Name, t))
				}
			}
		}
	case ir.OpSetField:
		base := reg(in.Args[0])
		val := reg(in.Args[1])
		for _, oc := range base.TS.ObjList() {
			fs := oc.FieldState(in.Field.Name)
			if fs == nil {
				continue
			}
			a.merge(fs, val)
		}
	case ir.OpArrGet:
		base := reg(in.Args[0])
		dst := reg(in.Dst)
		for _, ac := range base.TS.ArrList() {
			if dst.TS.Union(&ac.Elem.TS) {
				a.changed = true
			}
			if a.opts.Tags {
				for _, t := range base.Tags.List() {
					a.addTag(dst, a.tt.makeArr(ac, t))
				}
			}
		}
	case ir.OpArrSet:
		base := reg(in.Args[0])
		val := reg(in.Args[2])
		for _, ac := range base.TS.ArrList() {
			a.merge(&ac.Elem, val)
		}
	case ir.OpCall:
		a.bindTopLevel(mc, fn, in)
	case ir.OpCallStatic:
		a.bindReceiverCall(mc, fn, in, in.Callee)
	case ir.OpCallMethod:
		a.bindReceiverCall(mc, fn, in, nil)
	case ir.OpGetGlobal:
		a.merge(reg(in.Dst), &a.globals[in.Global])
	case ir.OpSetGlobal:
		a.merge(&a.globals[in.Global], reg(in.Args[0]))
	case ir.OpBuiltin:
		a.evalBuiltin(mc, in)
	case ir.OpReturn:
		if len(in.Args) > 0 {
			a.merge(&mc.Ret, reg(in.Args[0]))
		}
	case ir.OpJump, ir.OpBranch, ir.OpTrap:
		// No value flow.
	case ir.OpNewArrayInl, ir.OpArrInterior:
		// Post-transformation ops; the analysis runs before the transform.
	}
}

func (a *analyzer) evalBin(mc *MethodContour, in *ir.Instr) {
	x, y := mc.Reg(in.Args[0]), mc.Reg(in.Args[1])
	dst := mc.Reg(in.Dst)
	switch ir.BinOp(in.Aux) {
	case ir.BinEq, ir.BinNe, ir.BinLt, ir.BinLe, ir.BinGt, ir.BinGe:
		a.addPrim(dst, PBool)
	default:
		var m PrimMask
		if x.TS.Prims&PInt != 0 && y.TS.Prims&PInt != 0 {
			m |= PInt
		}
		if (x.TS.Prims|y.TS.Prims)&PFloat != 0 {
			m |= PFloat
		}
		if x.TS.Prims&PStr != 0 && y.TS.Prims&PStr != 0 && ir.BinOp(in.Aux) == ir.BinAdd {
			m |= PStr
		}
		a.addPrim(dst, m)
	}
}

func (a *analyzer) evalBuiltin(mc *MethodContour, in *ir.Instr) {
	dst := mc.Reg(in.Dst)
	switch ir.Builtin(in.Aux) {
	case ir.BPrint, ir.BAssert:
		a.addPrim(dst, PNil)
	case ir.BSqrt, ir.BFloor, ir.BFloatOf:
		a.addPrim(dst, PFloat)
	case ir.BLen, ir.BIntOf, ir.BXor:
		a.addPrim(dst, PInt)
	case ir.BStrCat:
		a.addPrim(dst, PStr)
	case ir.BAbs:
		a.addPrim(dst, mc.Reg(in.Args[0]).TS.Prims&(PInt|PFloat))
	case ir.BMin, ir.BMax:
		m := (mc.Reg(in.Args[0]).TS.Prims | mc.Reg(in.Args[1]).TS.Prims) & (PInt | PFloat)
		a.addPrim(dst, m)
	}
}

// bindTopLevel handles calls to top-level functions.
func (a *analyzer) bindTopLevel(mc *MethodContour, fn *ir.Func, in *ir.Instr) {
	callee := in.Callee
	key := ""
	if a.policy(callee).splitBySite {
		key = a.siteKey(mc, in)
	}
	cmc := a.getMC(callee, key)
	if mc.addCallee(in.ID, cmc) {
		a.changed = true
	}
	e := a.edge(mc, in, cmc)
	for i, r := range in.Args {
		src := mc.Reg(r)
		a.merge(cmc.Reg(callee.ParamReg(i)), src)
		e.Args[i].Merge(src)
	}
	if in.Dst != ir.NoReg {
		a.merge(mc.Reg(in.Dst), &cmc.Ret)
	}
}

// bindReceiverCall handles method calls: dynamic dispatches (fixed == nil,
// targets resolved per receiver contour) and devirtualized/constructor
// calls (fixed != nil). Receiver-based contour selection restricts the
// callee's self state to the enumerated (object contour, tag) pair, which
// is what makes the selection monotone within a pass.
func (a *analyzer) bindReceiverCall(mc *MethodContour, fn *ir.Func, in *ir.Instr, fixed *ir.Func) {
	recv := mc.Reg(in.Args[0])
	for _, oc := range recv.TS.ObjList() {
		target := fixed
		if target == nil {
			target = oc.Class.LookupMethod(in.Method)
			if target == nil {
				continue // runtime error path
			}
			mc.addTarget(in.ID, target)
		}
		if target.NumParams != len(in.Args)-1 {
			continue // runtime arity error path
		}
		pol := a.policy(target)
		baseKey := ""
		if pol.splitBySite {
			baseKey = a.siteKey(mc, in)
		}
		if pol.splitByRecvOC {
			baseKey += fmt.Sprintf("|o%d", oc.ID)
		}
		if pol.splitByRecvTag && a.opts.Tags && recv.Tags.Len() > 0 {
			for _, t := range recv.Tags.List() {
				key := baseKey + fmt.Sprintf("|t%d", t.ID)
				self := VarState{}
				self.TS.AddObj(oc)
				self.Tags.Add(t)
				a.bindMethod(mc, in, target, key, &self)
			}
			continue
		}
		self := VarState{}
		self.TS.AddObj(oc)
		for _, t := range recv.Tags.List() {
			self.Tags.Add(t)
		}
		a.bindMethod(mc, in, target, baseKey, &self)
	}
}

func (a *analyzer) bindMethod(mc *MethodContour, in *ir.Instr, target *ir.Func, key string, self *VarState) {
	cmc := a.getMC(target, key)
	if mc.addCallee(in.ID, cmc) {
		a.changed = true
	}
	e := a.edge(mc, in, cmc)
	a.merge(cmc.Reg(0), self)
	e.Args[0].Merge(self)
	for i := 1; i < len(in.Args); i++ {
		src := mc.Reg(in.Args[i])
		a.merge(cmc.Reg(target.ParamReg(i-1)), src)
		e.Args[i].Merge(src)
	}
	if in.Dst != ir.NoReg {
		a.merge(mc.Reg(in.Dst), &cmc.Ret)
	}
}

func (a *analyzer) edge(from *MethodContour, in *ir.Instr, to *MethodContour) *Edge {
	k := edgeKey{from: from, instr: in.ID, to: to}
	if e, ok := a.edges[k]; ok {
		return e
	}
	n := len(in.Args)
	e := &Edge{From: from, Instr: in, To: to, Args: make([]VarState, n)}
	a.edges[k] = e
	to.InEdges = append(to.InEdges, e)
	return e
}

func (a *analyzer) result(passes int) *Result {
	res := &Result{
		Prog:       a.prog,
		Opts:       a.opts,
		Contours:   make(map[*ir.Func][]*MethodContour),
		Mcs:        a.mcList,
		Objs:       a.ocList,
		Arrs:       a.acList,
		Globals:    a.globals,
		Passes:     passes,
		Overflowed: a.overflow,
	}
	for _, mc := range a.mcList {
		res.Contours[mc.Fn] = append(res.Contours[mc.Fn], mc)
	}
	return res
}
