package analysis

import "sort"

// canonicalize renumbers the pass's contours and tags from
// schedule-independent sort keys, and sorts every contour's in-edge list.
// It runs at the end of every pass, for every solver, before
// updatePolicies reads the pass's state.
//
// Why it exists: the parallel solver creates contours and interns tags in
// whatever order its schedule happens to run, so creation-order IDs would
// differ run to run (and from the sequential solvers) even though the
// *set* of contours and their states are identical. Every contour and tag
// therefore carries an intrinsic identity — the context key it was
// requested under, hashed with its function or site (ctxHash, Tag.uid) —
// and IDs are assigned here by sorting on those identities:
//
//   - method contours by (function ID, context key). Unique: the contour
//     table is keyed by exactly that pair.
//   - object and array contours by (allocation site UID, context key).
//   - tags by their rendered path (String() after contour renumbering, so
//     the rendering uses canonical contour IDs). The rendering walks the
//     full (holder contour, field, base) chain, so it is injective over
//     interned tags; the NoField/Top sentinels keep their fixed IDs 0/1.
//   - each contour's InEdges by (caller contour ID, call instruction ID),
//     unique because the edge table is keyed by caller/instruction/callee.
//
// The sequential solvers get renumbered too — identical schedules yield
// identical creation orders, so for them this is a pure relabeling — which
// keeps all three solvers byte-identical in every ID-bearing report.
//
// Everything downstream of a pass reads canonical IDs: updatePolicies'
// class and tag signatures, TagSet.List (sorted by ID), the Result dump,
// and the clone partition. The per-pass lookup tables (mcs/ocs/acs, whose
// creator-split alloc keys embed in-pass creation IDs) are never read
// after the pass ends and are rebuilt by resetPass.
func (a *analyzer) canonicalize() {
	sort.Slice(a.mcList, func(i, j int) bool {
		x, y := a.mcList[i], a.mcList[j]
		if x.Fn.ID != y.Fn.ID {
			return x.Fn.ID < y.Fn.ID
		}
		return x.Key < y.Key
	})
	for i, mc := range a.mcList {
		mc.ID = i
	}

	sort.Slice(a.ocList, func(i, j int) bool {
		x, y := a.ocList[i], a.ocList[j]
		xs, ys := siteUID(x.SiteFn, x.Site), siteUID(y.SiteFn, y.Site)
		if xs != ys {
			return xs < ys
		}
		return x.Key < y.Key
	})
	for i, oc := range a.ocList {
		oc.ID = i
	}

	sort.Slice(a.acList, func(i, j int) bool {
		x, y := a.acList[i], a.acList[j]
		xs, ys := siteUID(x.SiteFn, x.Site), siteUID(y.SiteFn, y.Site)
		if xs != ys {
			return xs < ys
		}
		return x.Key < y.Key
	})
	for i, ac := range a.acList {
		ac.ID = i
	}

	// Tags, after contours so String() renders canonical contour IDs.
	tags := make([]*Tag, 0, len(a.tt.byKey))
	for _, t := range a.tt.byKey {
		tags = append(tags, t)
	}
	sort.Slice(tags, func(i, j int) bool { return tags[i].String() < tags[j].String() })
	for i, t := range tags {
		t.ID = i + 2 // 0 and 1 are the NoField/Top sentinels
	}

	for _, mc := range a.mcList {
		sort.Slice(mc.InEdges, func(i, j int) bool {
			x, y := mc.InEdges[i], mc.InEdges[j]
			if x.From.ID != y.From.ID {
				return x.From.ID < y.From.ID
			}
			return x.Instr.ID < y.Instr.ID
		})
	}
}
