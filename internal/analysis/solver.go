package analysis

// The fixpoint solvers.
//
// Both solvers evaluate method contours in place (Gauss–Seidel: a change
// made by an earlier contour is visible to later contours in the same
// round) and share every transfer function in analysis.go; they differ
// only in which contours each round evaluates.
//
// The sweep solver re-evaluates *every* contour every round until a full
// round changes nothing. The worklist solver tracks, per VarState, the
// set of instructions (per method contour) whose evaluation has read it;
// when a state actually changes, only those readers are rescheduled:
//
//   - a reader with a higher ID than the contour currently evaluating has
//     not run yet this round, so it is scheduled for the current round —
//     exactly when the sweep would evaluate it with the change visible;
//   - a reader with a lower (or equal) ID already ran this round, so it
//     is scheduled for the next round — exactly when the sweep would
//     revisit it;
//   - a newly created contour joins the current round (the sweep's
//     evaluation loop iterates over the growing contour list).
//
// Rounds drain in ascending contour-ID order. Because a contour none of
// whose inputs changed is a no-op under monotone transfer functions (it
// re-merges values that are already included, re-requests contours and
// tags that are already interned, and re-binds call edges that already
// exist), skipping it is unobservable — so the worklist performs the same
// effectful evaluations in the same order as the sweep and produces a
// bit-identical Result: same contour and tag IDs, same final VarStates,
// same call edges, same inlining decisions. The differential tests in
// solver_test.go and the pipeline fuzz corpus hold the two solvers to
// byte-equal reports.
//
// Dependency granularity is the VarState (one contour register, one
// object-contour field, one array-contour element summary, one global,
// one contour return cell) read by one *instruction* of one contour: a
// reader is a (contour, flattened instruction position) pair, and a
// scheduled contour re-evaluates only its dirty instructions, in program
// order. Skipping a clean instruction is sound by the same no-op
// argument that justifies skipping a clean contour: its transfer
// function is monotone and its inputs are unchanged since its last
// application, so re-applying it could only re-add what is already
// there. An instruction's *first* evaluation always happens (contours
// are created with every instruction dirty), and an instruction whose
// behavior is guarded by some state it has read (e.g. a field load
// iterating the receiver's object contours) is re-run whenever that
// state grows, at which point it registers reads on any newly reachable
// cells — so dependencies stay complete as the state space unfolds.
// One call-site input lives outside any VarState: getMC's coercion of
// split keys to the base contour once the contour list reaches
// Options.MaxContours. That transition is handled globally — the
// filling creation re-dirties every call instruction in every contour
// (redirtyCallSites in analysis.go), replaying the full revisit the
// sweep performs after it anyway.
// This per-instruction refinement is where the solver's work drop
// becomes super-proportional: a rescheduled contour typically re-runs
// one call or field instruction, not its whole body.

// WorkStats counts solver effort. The counters make the solver's
// complexity observable: the worklist's InstrEvals should drop
// super-proportionally versus the sweep's on programs with many contours
// (`objbench -fig analysis` and BENCH_analysis.json report both).
type WorkStats struct {
	// Rounds is the number of fixpoint rounds across all passes.
	Rounds int
	// ContourEvals counts whole-contour evaluations.
	ContourEvals int
	// InstrEvals counts full instruction transfer-function applications —
	// the analysis's innermost unit of work.
	InstrEvals int
	// PartialEvals counts the worklist's partial re-evaluations (argument
	// or return re-merges through existing bindings; see the slot
	// taxonomy below). Always 0 for the sweep, which only applies full
	// transfer functions.
	PartialEvals int
	// Enqueues counts contour activations scheduled by dependency hits
	// (including initial activations at contour creation); always 0 for
	// the sweep solver, which schedules implicitly.
	Enqueues int
}

// cancelled reports whether the analysis context has been canceled,
// latching the context error on first observation. Both solvers call it
// before every contour evaluation — the drain loops' innermost
// schedulable unit — so a canceled analysis stops within one contour
// evaluation of the deadline. With no cancelable context (done == nil)
// the check is a single nil comparison.
func (a *analyzer) cancelled() bool {
	if a.done == nil {
		return false
	}
	if a.ctxErr != nil {
		return true
	}
	select {
	case <-a.done:
		a.ctxErr = a.ctx.Err()
		return true
	default:
		return false
	}
}

// runSweep is the naive solver: global rounds over every contour until a
// whole round changes nothing. Kept as the reference implementation
// (Options.Solver == SolverSweep) for differential testing.
func (a *analyzer) runSweep() {
	for round := 0; round < a.opts.MaxRounds; round++ {
		a.work.Rounds++
		a.changed = false
		// The list grows while we iterate; newly created contours are
		// evaluated within the same round.
		for i := 0; i < len(a.mcList); i++ {
			if a.cancelled() {
				a.converged = false
				return
			}
			a.evalContour(a.mcList[i])
		}
		if !a.changed {
			return
		}
	}
	a.converged = false
}

// runWorklist drains rounds of dirty contours in ascending ID order; see
// the package comment above for why this reproduces the sweep exactly.
func (a *analyzer) runWorklist() {
	for round := 0; round < a.opts.MaxRounds; round++ {
		a.work.Rounds++
		for i := 0; i < len(a.mcList); i++ {
			if !a.dirtyCur[i] {
				continue
			}
			if a.cancelled() {
				a.converged = false
				a.curIdx = -1
				return
			}
			a.dirtyCur[i] = false
			a.curIdx = i
			a.evalContour(a.mcList[i])
		}
		a.curIdx = -1
		if a.pendingNext == 0 {
			return
		}
		// The scan cleared every dirtyCur entry (entries set behind the
		// cursor go to dirtyNext, entries ahead were visited), so the old
		// slice is reusable as the next round's empty next-set.
		a.dirtyCur, a.dirtyNext = a.dirtyNext, a.dirtyCur
		a.pendingNext = 0
	}
	a.converged = false
}

// A reader identifies one dependent of a VarState: one slot of one
// instruction of one method contour, packed as
//
//	contourID<<32 | (3*instrPos + slot + 1)
//
// so that zero (VarState's zero value) means "no reader" and the
// dependency maps stay pointer-free — cheap to hash and invisible to the
// garbage collector. The three slots split an instruction's inputs by
// which partial re-evaluation a change requires:
//
//	slotFull — control inputs (operands, the receiver of a call, the base
//	  of a field or array access): a change can alter which bindings or
//	  contours the instruction touches, so the whole transfer function
//	  re-runs.
//	slotArgs — data flowing through existing bindings (call argument
//	  registers, the field/element source cells of a load): a change
//	  only needs re-merging through the bindings already recorded.
//	slotRet — callee return cells: a change only needs re-merging into
//	  the call's destination register.
//
// The partial evaluations (evalArgs, evalRet in analysis.go) are exact:
// they perform precisely the subset of the full transfer function's
// merges that the changed input feeds. The site's control inputs are
// unchanged (else slotFull would be dirty and the full function would
// run instead), so the bindings a full re-run would enumerate are
// exactly those recorded by the site's last full evaluation — and the
// partials replay them from calleeOrder in that same enumeration order.
// The order matters: tag sets saturate (TagSet.Add collapses members
// past a size cap to Top, keeping established members), so per-cell
// merge *order*, not just the merge set, determines the result. Because
// the partials run at exactly the visits where the sweep would re-run
// the full function, apply the same effective merges per cell in the
// same order, and skip only merges whose inputs are unchanged (no-ops
// even at saturation: re-adding a collapsed tag re-collapses to the
// already-present Top), the worklist's states stay bit-identical to the
// sweep's.
const (
	slotFull = iota
	slotArgs
	slotRet
	numSlots
)

// use registers the currently evaluating instruction as a slotFull
// reader of vs and returns vs. Every transfer function routes its
// *inputs* through use (or useArg/useRet); writes go through bump. The
// common case — an instruction re-reading the register it always reads —
// hits the single-reader fast path (one comparison).
func (a *analyzer) use(vs *VarState) *VarState    { return a.register(vs, slotFull) }
func (a *analyzer) useArg(vs *VarState) *VarState { return a.register(vs, slotArgs) }
func (a *analyzer) useRet(vs *VarState) *VarState { return a.register(vs, slotRet) }

func (a *analyzer) register(vs *VarState, slot int) *VarState {
	if a.sweep || a.cur == nil {
		return vs
	}
	r := uint64(a.cur.ID)<<32 | uint64(numSlots*a.curInstr+slot+1)
	if vs.dep0 == r {
		return vs
	}
	if vs.dep0 == 0 {
		vs.dep0 = r
		return vs
	}
	if _, ok := vs.deps[r]; !ok {
		if vs.deps == nil {
			vs.deps = make(map[uint64]struct{}, 2)
		}
		vs.deps[r] = struct{}{}
	}
	return vs
}

// bump records that vs changed: the sweep flips the global changed bit;
// the worklist reschedules exactly the instruction slots that have read
// vs.
func (a *analyzer) bump(vs *VarState) {
	a.changed = true
	if a.sweep {
		return
	}
	if vs.dep0 != 0 {
		a.mark(vs.dep0)
	}
	for r := range vs.deps {
		a.mark(r)
	}
}

// mark reschedules one reading instruction slot. If the reader sits
// ahead of the in-progress scan of the contour currently being
// evaluated, setting its dirty bit is enough — this very visit will
// reach it with the change applied, exactly the in-place visibility the
// sweep has. Otherwise the reader's contour is (re-)scheduled at round
// granularity and the bit tells its next visit what to re-run.
func (a *analyzer) mark(r uint64) {
	mc := a.mcList[r>>32]
	bit := int(uint32(r)) - 1
	mc.dirty[bit] = true
	if mc == a.cur && bit/numSlots > a.curInstr {
		return
	}
	a.enqueue(mc)
}

// enqueue schedules a contour: into the current round if it has not run
// yet this round (ID above the cursor), else into the next round. Map
// iteration order in bump never matters — marking dirty bits is
// idempotent and the drain order is always ascending ID.
func (a *analyzer) enqueue(mc *MethodContour) {
	id := mc.ID
	if id > a.curIdx {
		if !a.dirtyCur[id] {
			a.dirtyCur[id] = true
			a.work.Enqueues++
		}
	} else if !a.dirtyNext[id] {
		a.dirtyNext[id] = true
		a.pendingNext++
		a.work.Enqueues++
	}
}
