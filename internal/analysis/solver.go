package analysis

// The fixpoint solvers.
//
// All three solvers evaluate method contours in place (Gauss–Seidel: a
// change made by an earlier contour is visible to later contours in the
// same round) and share every transfer function in analysis.go; they
// differ only in which contours are evaluated when, and by whom.
//
// The sweep solver re-evaluates *every* contour every round until a full
// round changes nothing. The worklist solver tracks, per VarState, the
// set of instructions (per method contour) whose evaluation has read it;
// when a state actually changes, only those readers are rescheduled:
//
//   - a reader with a higher ID than the contour currently evaluating has
//     not run yet this round, so it is scheduled for the current round —
//     exactly when the sweep would evaluate it with the change visible;
//   - a reader with a lower (or equal) ID already ran this round, so it
//     is scheduled for the next round — exactly when the sweep would
//     revisit it;
//   - a newly created contour joins the current round (the sweep's
//     evaluation loop iterates over the growing contour list).
//
// Rounds drain in ascending contour-ID order. Because a contour none of
// whose inputs changed is a no-op under monotone transfer functions (it
// re-merges values that are already included, re-requests contours and
// tags that are already interned, and re-binds call edges that already
// exist), skipping it is unobservable — so the worklist performs the same
// effectful evaluations in the same order as the sweep and produces a
// bit-identical Result: same contour and tag IDs, same final VarStates,
// same call edges, same inlining decisions. The differential tests in
// solver_test.go and the pipeline fuzz corpus hold the solvers to
// byte-equal reports.
//
// The parallel solver (parallel.go) runs the same per-contour evaluation
// concurrently on a worker pool, using chaotic iteration: below the
// lattice's saturation points every merge is an exact, order-independent
// set union, so any schedule converges to the same least fixpoint, and
// canonicalize() renumbers contours and tags from schedule-independent
// identities at the end of every pass. The order-*sensitive* events —
// tag-set saturation, the MaxContours overflow coercion, and round-budget
// exhaustion — deterministically trip the parallel pass into an exact
// sequential re-run, which is what makes its output byte-identical to
// the worklist's at any worker count.
//
// Dependency granularity is the VarState (one contour register, one
// object-contour field, one array-contour element summary, one global,
// one contour return cell) read by one *instruction* of one contour: a
// reader is a (contour, flattened instruction position) pair, and a
// scheduled contour re-evaluates only its dirty instructions, in program
// order. Skipping a clean instruction is sound by the same no-op
// argument that justifies skipping a clean contour: its transfer
// function is monotone and its inputs are unchanged since its last
// application, so re-applying it could only re-add what is already
// there. An instruction's *first* evaluation always happens (contours
// are created with every instruction dirty), and an instruction whose
// behavior is guarded by some state it has read (e.g. a field load
// iterating the receiver's object contours) is re-run whenever that
// state grows, at which point it registers reads on any newly reachable
// cells — so dependencies stay complete as the state space unfolds.
// One call-site input lives outside any VarState: getMC's coercion of
// split keys to the base contour once the contour list reaches
// Options.MaxContours. That transition is handled globally — the
// filling creation re-dirties every call instruction in every contour
// (redirtyCallSites in analysis.go), replaying the full revisit the
// sweep performs after it anyway.
// This per-instruction refinement is where the solver's work drop
// becomes super-proportional: a rescheduled contour typically re-runs
// one call or field instruction, not its whole body.

// WorkStats counts solver effort. The counters make the solver's
// complexity observable: the worklist's InstrEvals should drop
// super-proportionally versus the sweep's on programs with many contours
// (`objbench -fig analysis` and BENCH_analysis.json report both). The
// parallel solver's counters additionally describe its scheduling; they
// are the one part of a Result that is *not* schedule-deterministic
// (Result.String deliberately excludes them).
type WorkStats struct {
	// Rounds is the number of fixpoint rounds across all passes.
	Rounds int
	// ContourEvals counts whole-contour evaluations.
	ContourEvals int
	// InstrEvals counts full instruction transfer-function applications —
	// the analysis's innermost unit of work.
	InstrEvals int
	// PartialEvals counts the worklist's partial re-evaluations (argument
	// or return re-merges through existing bindings; see the slot
	// taxonomy below). Always 0 for the sweep, which only applies full
	// transfer functions.
	PartialEvals int
	// Enqueues counts contour activations scheduled by dependency hits
	// (including initial activations at contour creation); always 0 for
	// the sweep solver, which schedules implicitly.
	Enqueues int

	// SCCs is the number of strongly connected components of the contour
	// call graph at the parallel solver's final condensation of the last
	// refinement pass (0 for the sequential engines).
	SCCs int `json:",omitempty"`
	// MaxSCCSize is the largest SCC's contour count at the final
	// condensation.
	MaxSCCSize int `json:",omitempty"`
	// ParallelRounds counts the parallel scheduler's SCC condensation
	// epochs — how many times the evolving call graph was re-condensed to
	// refresh scheduling priorities (the parallel analogue of Rounds).
	ParallelRounds int `json:",omitempty"`
	// SummaryHits counts reads of a quiescent contour's return cell by
	// the parallel solver: the callee had no queued or running work, so
	// its merged arg/ret cells acted as a published summary and the
	// caller proceeded without re-entering the callee's fixpoint.
	SummaryHits int `json:",omitempty"`
}

func (w *WorkStats) add(o WorkStats) {
	w.Rounds += o.Rounds
	w.ContourEvals += o.ContourEvals
	w.InstrEvals += o.InstrEvals
	w.PartialEvals += o.PartialEvals
	w.Enqueues += o.Enqueues
	if o.SCCs > w.SCCs {
		w.SCCs = o.SCCs
	}
	if o.MaxSCCSize > w.MaxSCCSize {
		w.MaxSCCSize = o.MaxSCCSize
	}
	w.ParallelRounds += o.ParallelRounds
	w.SummaryHits += o.SummaryHits
}

// cancelPollInterval is how many contour evaluations a worker runs
// between context polls. Amortizing the poll keeps the channel select off
// the drain loop's hot path while still aborting within a few dozen
// contour evaluations — microseconds each — of the deadline.
const cancelPollInterval = 32

// cancelled reports whether the analysis context has been canceled,
// latching the context error on first observation. Sequential-solver
// workers reach it through pollCancelled, which amortizes the check; it
// must not be called from parallel workers (ctxErr is unsynchronized —
// the parallel pass polls ctx.Done() directly and lets the coordinator
// latch the error after the pool joins).
func (a *analyzer) cancelled() bool {
	if a.done == nil {
		return false
	}
	if a.ctxErr != nil {
		return true
	}
	select {
	case <-a.done:
		a.ctxErr = a.ctx.Err()
		return true
	default:
		return false
	}
}

// worker is one evaluation context: the transfer functions in analysis.go
// run as its methods, reading shared analysis state through w.a and
// keeping everything per-evaluation — the contour and instruction being
// evaluated, work counters, the cancellation poll countdown — on the
// worker itself. The sequential solvers drive a single worker; the
// parallel solver runs one per goroutine (w.p non-nil), in which case the
// helpers below route every shared-cell access through the parallel
// state's stripe locks.
type worker struct {
	a *analyzer
	p *parState // nil for the sequential solvers

	cur      *MethodContour // contour being evaluated (dep registration)
	curInstr int            // flattened position of the instruction being evaluated
	work     WorkStats
	pollN    int      // contour evals until the next context poll
	scratch  []uint64 // reader collection buffer (parallel merges)
}

func newWorker(a *analyzer, p *parState) *worker {
	return &worker{a: a, p: p, curInstr: -1, pollN: 1}
}

// pollCancelled is the amortized cancellation checkpoint, called once per
// contour evaluation (the drain loops' innermost schedulable unit). With
// no cancelable context it is a single nil comparison; with one, the
// channel poll runs every cancelPollInterval evaluations.
func (w *worker) pollCancelled() bool {
	if w.a.done == nil {
		return false
	}
	w.pollN--
	if w.pollN > 0 {
		return false
	}
	w.pollN = cancelPollInterval
	if w.p != nil {
		select {
		case <-w.a.done:
			return true
		default:
			return false
		}
	}
	return w.a.cancelled()
}

// runSweep is the naive solver: global rounds over every contour until a
// whole round changes nothing. Kept as the reference implementation
// (Options.Solver == SolverSweep) for differential testing.
func (a *analyzer) runSweep(w *worker) {
	for round := 0; round < a.opts.MaxRounds; round++ {
		w.work.Rounds++
		a.changed = false
		// The list grows while we iterate; newly created contours are
		// evaluated within the same round.
		for i := 0; i < len(a.mcList); i++ {
			if w.pollCancelled() {
				a.converged = false
				return
			}
			w.evalContour(a.mcList[i])
		}
		if !a.changed {
			return
		}
	}
	a.converged = false
}

// runWorklist drains rounds of dirty contours in ascending ID order; see
// the package comment above for why this reproduces the sweep exactly.
func (a *analyzer) runWorklist(w *worker) {
	for round := 0; round < a.opts.MaxRounds; round++ {
		w.work.Rounds++
		for i := 0; i < len(a.mcList); i++ {
			if !a.dirtyCur[i] {
				continue
			}
			if w.pollCancelled() {
				a.converged = false
				a.curIdx = -1
				return
			}
			a.dirtyCur[i] = false
			a.curIdx = i
			w.evalContour(a.mcList[i])
		}
		a.curIdx = -1
		if a.pendingNext == 0 {
			return
		}
		// The scan cleared every dirtyCur entry (entries set behind the
		// cursor go to dirtyNext, entries ahead were visited), so the old
		// slice is reusable as the next round's empty next-set.
		a.dirtyCur, a.dirtyNext = a.dirtyNext, a.dirtyCur
		a.pendingNext = 0
	}
	a.converged = false
}

// A reader identifies one dependent of a VarState: one slot of one
// instruction of one method contour, packed as
//
//	contourID<<32 | (3*instrPos + slot + 1)
//
// so that zero (VarState's zero value) means "no reader" and the
// dependency maps stay pointer-free — cheap to hash and invisible to the
// garbage collector. The three slots split an instruction's inputs by
// which partial re-evaluation a change requires:
//
//	slotFull — control inputs (operands, the receiver of a call, the base
//	  of a field or array access): a change can alter which bindings or
//	  contours the instruction touches, so the whole transfer function
//	  re-runs.
//	slotArgs — data flowing through existing bindings (call argument
//	  registers, the field/element source cells of a load): a change
//	  only needs re-merging through the bindings already recorded.
//	slotRet — callee return cells: a change only needs re-merging into
//	  the call's destination register.
//
// The partial evaluations (evalArgs, evalRet in analysis.go) are exact:
// they perform precisely the subset of the full transfer function's
// merges that the changed input feeds. The site's control inputs are
// unchanged (else slotFull would be dirty and the full function would
// run instead), so the bindings a full re-run would enumerate are
// exactly those recorded by the site's last full evaluation — and the
// partials replay them from calleeOrder in that same enumeration order.
// The order matters: tag sets saturate (TagSet.Add collapses members
// past a size cap to Top, keeping established members), so per-cell
// merge *order*, not just the merge set, determines the result. Because
// the partials run at exactly the visits where the sweep would re-run
// the full function, apply the same effective merges per cell in the
// same order, and skip only merges whose inputs are unchanged (no-ops
// even at saturation: re-adding a collapsed tag re-collapses to the
// already-present Top), the worklist's states stay bit-identical to the
// sweep's.
const (
	slotFull = iota
	slotArgs
	slotRet
	numSlots
)

// use registers the currently evaluating instruction as a slotFull
// reader of vs and returns vs. Every transfer function routes its
// *inputs* through use (or useArg/useRet); writes go through the merge
// helpers, which bump readers on change. The common case — an
// instruction re-reading the register it always reads — hits the
// single-reader fast path (one comparison).
func (w *worker) use(vs *VarState) *VarState    { return w.register(vs, slotFull) }
func (w *worker) useArg(vs *VarState) *VarState { return w.register(vs, slotArgs) }
func (w *worker) useRet(vs *VarState) *VarState { return w.register(vs, slotRet) }

func (w *worker) register(vs *VarState, slot int) *VarState {
	if w.a.sweep || w.cur == nil {
		return vs
	}
	r := uint64(w.cur.ID)<<32 | uint64(numSlots*w.curInstr+slot+1)
	if p := w.p; p != nil {
		m := p.stripeOf(vs)
		m.Lock()
		registerLocked(vs, r)
		m.Unlock()
		return vs
	}
	registerLocked(vs, r)
	return vs
}

func registerLocked(vs *VarState, r uint64) {
	if vs.dep0 == r {
		return
	}
	if vs.dep0 == 0 {
		vs.dep0 = r
		return
	}
	if _, ok := vs.deps[r]; !ok {
		if vs.deps == nil {
			vs.deps = make(map[uint64]struct{}, 2)
		}
		vs.deps[r] = struct{}{}
	}
}

// bump records that vs changed: the sweep flips the global changed bit;
// the worklist reschedules exactly the instruction slots that have read
// vs. Sequential solvers only — parallel merges collect readers under
// the cell's stripe lock and mark them afterward (see the helpers below).
func (w *worker) bump(vs *VarState) {
	w.a.changed = true
	if w.a.sweep {
		return
	}
	if vs.dep0 != 0 {
		w.mark(vs.dep0)
	}
	for r := range vs.deps {
		w.mark(r)
	}
}

// mark reschedules one reading instruction slot. If the reader sits
// ahead of the in-progress scan of the contour currently being
// evaluated, setting its dirty bit is enough — this very visit will
// reach it with the change applied, exactly the in-place visibility the
// sweep has. Otherwise the reader's contour is (re-)scheduled at round
// granularity and the bit tells its next visit what to re-run.
func (w *worker) mark(r uint64) {
	if w.p != nil {
		w.pmark(r)
		return
	}
	a := w.a
	mc := a.mcList[r>>32]
	bit := int(uint32(r)) - 1
	mc.dirty[bit] = true
	if mc == w.cur && bit/numSlots > w.curInstr {
		return
	}
	w.enqueue(mc)
}

// enqueue schedules a contour: into the current round if it has not run
// yet this round (ID above the cursor), else into the next round. Map
// iteration order in bump never matters — marking dirty bits is
// idempotent and the drain order is always ascending ID.
func (w *worker) enqueue(mc *MethodContour) {
	a := w.a
	id := mc.ID
	if id > a.curIdx {
		if !a.dirtyCur[id] {
			a.dirtyCur[id] = true
			w.work.Enqueues++
		}
	} else if !a.dirtyNext[id] {
		a.dirtyNext[id] = true
		a.pendingNext++
		w.work.Enqueues++
	}
}

// ---- Shared-cell access helpers ----
//
// Every transfer function reads and writes analysis cells exclusively
// through these. Sequentially they compile down to the direct operations
// the solvers have always performed; in a parallel pass they wrap each
// access in the owning stripe lock, pre-check the order-sensitive
// saturation condition (tripping the pass if it would fire), and collect
// the changed cell's readers under the lock so they can be marked after
// it is released (mark acquires scheduling locks, which must never nest
// inside a stripe).

// collectReaders appends vs's reader set to w.scratch (caller resets it).
func (w *worker) collectReaders(vs *VarState) {
	if vs.dep0 != 0 {
		w.scratch = append(w.scratch, vs.dep0)
	}
	for r := range vs.deps {
		w.scratch = append(w.scratch, r)
	}
}

func (w *worker) markCollected() {
	for _, r := range w.scratch {
		w.pmark(r)
	}
	w.scratch = w.scratch[:0]
}

// guardTagAdd trips the parallel pass if inserting t into s would push it
// past the tag-set cap: the cap's collapse-to-Top keeps established
// members, so *which* tags establish themselves depends on arrival order
// — an order the concurrent schedule cannot reproduce. Whether the cap
// is ever exceeded, though, is schedule-independent: cell contents only
// grow toward the least fixpoint, so some schedule exceeds it iff every
// schedule (including the sequential one) does — which makes "trip and
// re-run sequentially" both deterministic and exact.
func (w *worker) guardTagAdd(s *TagSet, t *Tag) {
	if t == nil || s.Has(t) {
		return
	}
	if s.Len()+1 > maxTagSet {
		w.p.trip()
	}
}

func (w *worker) guardTagUnion(dst, src *TagSet) {
	if src.Len() == 0 || dst.Len()+src.Len() <= maxTagSet {
		return
	}
	fresh := 0
	for t := range src.m {
		if !dst.Has(t) {
			fresh++
		}
	}
	if dst.Len()+fresh > maxTagSet {
		w.p.trip()
	}
}

// merge wraps VarState.Merge with change tracking. src must be a shared
// cell; for worker-local sources (the constructed self state of a method
// binding) use mergeLocal.
func (w *worker) merge(dst, src *VarState) {
	if p := w.p; p != nil {
		ds, ss := p.stripeOf(dst), p.stripeOf(src)
		lockPair(ds, ss)
		if w.a.opts.Tags {
			w.guardTagUnion(&dst.Tags, &src.Tags)
		}
		if dst.Merge(src) {
			w.collectReaders(dst)
		}
		unlockPair(ds, ss)
		w.markCollected()
		return
	}
	if dst.Merge(src) {
		w.bump(dst)
	}
}

// mergeLocal merges a worker-local VarState (no other goroutine can see
// it) into a shared cell.
func (w *worker) mergeLocal(dst, src *VarState) {
	if p := w.p; p != nil {
		m := p.stripeOf(dst)
		m.Lock()
		if w.a.opts.Tags {
			w.guardTagUnion(&dst.Tags, &src.Tags)
		}
		if dst.Merge(src) {
			w.collectReaders(dst)
		}
		m.Unlock()
		w.markCollected()
		return
	}
	if dst.Merge(src) {
		w.bump(dst)
	}
}

// unionTS unions src's TypeSet (only) into dst, as the field/element load
// transfer functions do. Object and array sets have no cap, so this is
// always an exact union.
func (w *worker) unionTS(dst, src *VarState) {
	if p := w.p; p != nil {
		ds, ss := p.stripeOf(dst), p.stripeOf(src)
		lockPair(ds, ss)
		if dst.TS.Union(&src.TS) {
			w.collectReaders(dst)
		}
		unlockPair(ds, ss)
		w.markCollected()
		return
	}
	if dst.TS.Union(&src.TS) {
		w.bump(dst)
	}
}

func (w *worker) addPrim(dst *VarState, m PrimMask) {
	if p := w.p; p != nil {
		mu := p.stripeOf(dst)
		mu.Lock()
		if dst.TS.AddPrim(m) {
			w.collectReaders(dst)
		}
		mu.Unlock()
		w.markCollected()
		return
	}
	if dst.TS.AddPrim(m) {
		w.bump(dst)
	}
}

func (w *worker) addObj(dst *VarState, oc *ObjContour) {
	if p := w.p; p != nil {
		mu := p.stripeOf(dst)
		mu.Lock()
		if dst.TS.AddObj(oc) {
			w.collectReaders(dst)
		}
		mu.Unlock()
		w.markCollected()
		return
	}
	if dst.TS.AddObj(oc) {
		w.bump(dst)
	}
}

func (w *worker) addArr(dst *VarState, ac *ArrContour) {
	if p := w.p; p != nil {
		mu := p.stripeOf(dst)
		mu.Lock()
		if dst.TS.AddArr(ac) {
			w.collectReaders(dst)
		}
		mu.Unlock()
		w.markCollected()
		return
	}
	if dst.TS.AddArr(ac) {
		w.bump(dst)
	}
}

func (w *worker) addTag(dst *VarState, t *Tag) {
	if !w.a.opts.Tags {
		return
	}
	if p := w.p; p != nil {
		mu := p.stripeOf(dst)
		mu.Lock()
		w.guardTagAdd(&dst.Tags, t)
		if dst.Tags.Add(t) {
			w.collectReaders(dst)
		}
		mu.Unlock()
		w.markCollected()
		return
	}
	if dst.Tags.Add(t) {
		w.bump(dst)
	}
}

// mergeEdgeArg accumulates a shared source cell into an edge's
// transmitted-argument record. Edge cells are single-writer (only the
// evaluator of the edge's From contour touches them, and a contour has
// at most one evaluator at a time), so only the source needs its stripe;
// edge readers (updatePolicies) run after quiescence.
func (w *worker) mergeEdgeArg(e *Edge, i int, src *VarState) {
	if p := w.p; p != nil {
		mu := p.stripeOf(src)
		mu.Lock()
		if w.a.opts.Tags {
			w.guardTagUnion(&e.Args[i].Tags, &src.Tags)
		}
		e.Args[i].Merge(src)
		mu.Unlock()
		return
	}
	e.Args[i].Merge(src)
}

// mergeEdgeArgLocal is mergeEdgeArg for a worker-local source.
func (w *worker) mergeEdgeArgLocal(e *Edge, i int, src *VarState) {
	if w.p != nil && w.a.opts.Tags {
		w.guardTagUnion(&e.Args[i].Tags, &src.Tags)
	}
	e.Args[i].Merge(src)
}

// objList snapshots vs's object-contour list; arrList, tagList, tagsLen
// and prims snapshot likewise. Registration (use/useArg) precedes these
// reads, so any concurrent growth after the snapshot re-marks the
// reading instruction — the chaotic-iteration invariant that keeps stale
// reads convergent.
func (w *worker) objList(vs *VarState) []*ObjContour {
	if p := w.p; p != nil {
		mu := p.stripeOf(vs)
		mu.Lock()
		l := vs.TS.ObjList()
		mu.Unlock()
		return l
	}
	return vs.TS.ObjList()
}

func (w *worker) arrList(vs *VarState) []*ArrContour {
	if p := w.p; p != nil {
		mu := p.stripeOf(vs)
		mu.Lock()
		l := vs.TS.ArrList()
		mu.Unlock()
		return l
	}
	return vs.TS.ArrList()
}

func (w *worker) tagList(vs *VarState) []*Tag {
	if p := w.p; p != nil {
		mu := p.stripeOf(vs)
		mu.Lock()
		l := vs.Tags.List()
		mu.Unlock()
		return l
	}
	return vs.Tags.List()
}

func (w *worker) tagsLen(vs *VarState) int {
	if p := w.p; p != nil {
		mu := p.stripeOf(vs)
		mu.Lock()
		n := vs.Tags.Len()
		mu.Unlock()
		return n
	}
	return vs.Tags.Len()
}

func (w *worker) prims(vs *VarState) PrimMask {
	if p := w.p; p != nil {
		mu := p.stripeOf(vs)
		mu.Lock()
		m := vs.TS.Prims
		mu.Unlock()
		return m
	}
	return vs.TS.Prims
}

// noteSummaryRead counts a parallel read of a quiescent callee's return
// cell: the callee has no queued or running work, so its arg/ret cells
// are, at this instant, a published method summary and the caller
// composes with it instead of re-entering its fixpoint.
func (w *worker) noteSummaryRead(cmc *MethodContour) {
	if w.p != nil && cmc.pstate.Load() == 0 {
		w.work.SummaryHits++
	}
}
