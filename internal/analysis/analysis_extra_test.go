package analysis_test

import (
	"strings"
	"testing"

	"objinline/internal/analysis"
)

func TestGlobalsTracked(t *testing.T) {
	src := `
var g;
class C { v; def init(v) { self.v = v; } }
func main() {
  g = new C(1);
  print(g.v);
}
`
	p := compile(t, src)
	res := analysis.Analyze(p, analysis.Options{Tags: true})
	if len(res.Globals) != 1 {
		t.Fatalf("globals = %d", len(res.Globals))
	}
	classes := res.Globals[0].TS.Classes()
	if len(classes) != 1 || classes[0] != "C" {
		t.Errorf("global types = %v", classes)
	}
}

func TestArrayContoursTrackElements(t *testing.T) {
	src := `
class C { v; def init(v) { self.v = v; } }
func main() {
  var a = new [4];
  a[0] = new C(1);
  a[1] = 5;
  print(a[0].v + a[1]);
}
`
	p := compile(t, src)
	res := analysis.Analyze(p, analysis.Options{Tags: true})
	if len(res.Arrs) != 1 {
		t.Fatalf("array contours = %d", len(res.Arrs))
	}
	elem := &res.Arrs[0].Elem
	if !elem.TS.HasObjects() || elem.TS.Prims&analysis.PInt == 0 {
		t.Errorf("element summary = %s (want object + int)", elem.TS.String())
	}
}

func TestMonomorphicSitesMetric(t *testing.T) {
	src := `
class A { def m() { return 1; } }
class B { def m() { return 2; } }
func poly(o) { return o.m(); }
func main() {
  var a = new A();
  print(a.m());          // monomorphic site
  print(poly(a), poly(new B()));
}
`
	p := compile(t, src)
	res := analysis.Analyze(p, analysis.Options{})
	mono, total := res.MonomorphicSites()
	if total < 2 {
		t.Fatalf("total dispatch site-contours = %d", total)
	}
	if mono != total {
		// With per-site splitting, poly's two contours are each
		// monomorphic; if not all mono, the splitter regressed.
		t.Errorf("mono=%d total=%d; expected full devirtualization", mono, total)
	}
}

func TestMaxContoursOverflowIsGraceful(t *testing.T) {
	// A tiny contour budget must not break the analysis; it merges into
	// base contours and flags the overflow.
	p := compile(t, paperExample)
	res := analysis.Analyze(p, analysis.Options{Tags: true, MaxContours: 5})
	if !res.Overflowed {
		t.Error("overflow not reported")
	}
	if len(res.Mcs) == 0 {
		t.Error("no contours at all")
	}
	// Main still analyzed.
	if len(res.Contours[p.Main]) == 0 {
		t.Error("main lost")
	}
}

func TestResultStringSmoke(t *testing.T) {
	p := compile(t, paperExample)
	res := analysis.Analyze(p, analysis.Options{Tags: true})
	s := res.String()
	for _, frag := range []string{"contours=", "contour main", "object Rectangle", "tags="} {
		if !strings.Contains(s, frag) {
			t.Errorf("Result.String missing %q", frag)
		}
	}
}

func TestStatsShape(t *testing.T) {
	p := compile(t, paperExample)
	res := analysis.Analyze(p, analysis.Options{})
	st := res.Stats()
	if st.ReachedFuncs == 0 || st.MethodContours < st.ReachedFuncs {
		t.Errorf("stats: %+v", st)
	}
	if st.ContoursPerMethod < 1.0 {
		t.Errorf("contours/method = %f", st.ContoursPerMethod)
	}
	if st.Passes != res.Passes {
		t.Errorf("passes mismatch")
	}
}

func TestDeadFunctionsUnreached(t *testing.T) {
	src := `
func dead() { return 1; }
func main() { print(2); }
`
	p := compile(t, src)
	res := analysis.Analyze(p, analysis.Options{})
	dead := p.FuncNamed("dead")
	if len(res.Contours[dead]) != 0 {
		t.Errorf("dead function analyzed: %v", res.Contours[dead])
	}
}

func TestRepsOfNoCandidates(t *testing.T) {
	p := compile(t, paperExample)
	res := analysis.Analyze(p, analysis.Options{Tags: true})
	// With no candidates at all, everything resolves through content tags
	// down to raw.
	none := func(analysis.FieldKey) bool { return false }
	for _, mc := range res.Mcs {
		for i := range mc.Regs {
			st := &mc.Regs[i]
			if !st.TS.HasObjects() {
				continue
			}
			rep := res.RepsOf(&st.Tags, none)
			if len(rep.Fields) > 0 {
				t.Errorf("%s r%d resolved to fields %v with no candidates", mc, i, rep.Fields)
			}
		}
	}
}

func TestCreatorSplitForArrays(t *testing.T) {
	// The same helper allocates arrays for two differently-typed callers;
	// creator splitting must keep the element types apart.
	src := `
class A { def tag() { return 1; } }
class B { def tag() { return 2; } }
func mk(o) {
  var a = new [1];
  a[0] = o;
  return a;
}
func main() {
  var x = mk(new A());
  var y = mk(new B());
  print(x[0].tag(), y[0].tag());
}
`
	p := compile(t, src)
	res := analysis.Analyze(p, analysis.Options{})
	if len(res.Arrs) < 2 {
		t.Fatalf("array contours = %d, want >= 2 (creator split)\n%s", len(res.Arrs), res)
	}
	for _, ac := range res.Arrs {
		if cs := ac.Elem.TS.Classes(); len(cs) > 1 {
			t.Errorf("array contour %s polymorphic: %v", ac, cs)
		}
	}
}
