package analysis_test

// Tests of the parallel solver's guarantees beyond the differentials in
// solver_test.go: schedule determinism (repeated runs at several worker
// counts serialize identically), the SCC condensation's topological-
// partition property, the scheduling counters, and the budget fallback.

import (
	"fmt"
	"testing"

	"objinline/internal/analysis"
	"objinline/internal/bench"
)

// parOpts returns parallel-solver options at the given worker count.
func parOpts(tags bool, jobs int) analysis.Options {
	return analysis.Options{Tags: tags, Solver: analysis.SolverParallel, Jobs: jobs}
}

// TestParallelDeterminism runs the parallel solver 20 times at jobs 1, 2,
// and 8 and requires every serialized Result to be byte-identical to the
// worklist's — the concurrency-protocol regression net: any lost update,
// schedule-dependent merge, or unstable renumbering shows up as a diff.
func TestParallelDeterminism(t *testing.T) {
	p, err := bench.ByName("richards")
	if err != nil {
		t.Fatal(err)
	}
	src, err := p.Source(bench.VariantAuto, bench.ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	want := analysis.Analyze(compile(t, src),
		analysis.Options{Tags: true, Solver: analysis.SolverWorklist}).String()
	for i := 0; i < 20; i++ {
		for _, jobs := range []int{1, 2, 8} {
			got := analysis.Analyze(compile(t, src), parOpts(true, jobs)).String()
			if got != want {
				t.Fatalf("run %d, jobs=%d: parallel dump diverged from worklist", i, jobs)
			}
		}
	}
}

// TestCondensationIsTopologicalPartition checks the exported SCC
// condensation is a valid topological partition of the contour call
// graph: components partition the contours, and every call edge either
// stays inside its component or crosses forward (caller component before
// callee component). This is the property the parallel scheduler's
// rank-ordering relies on.
func TestCondensationIsTopologicalPartition(t *testing.T) {
	for _, p := range bench.Programs {
		t.Run(p.Name, func(t *testing.T) {
			src, err := p.Source(bench.VariantAuto, bench.ScaleSmall)
			if err != nil {
				t.Fatal(err)
			}
			res := analysis.Analyze(compile(t, src), parOpts(true, 2))
			c := res.CondenseCallGraph()
			if len(c.Comp) != len(res.Mcs) {
				t.Fatalf("Comp covers %d contours, want %d", len(c.Comp), len(res.Mcs))
			}
			total := 0
			for comp, size := range c.Sizes {
				if size <= 0 {
					t.Errorf("component %d has size %d; components must be non-empty", comp, size)
				}
				total += size
			}
			if total != len(res.Mcs) {
				t.Fatalf("component sizes sum to %d, want %d (not a partition)", total, len(res.Mcs))
			}
			edges := 0
			for _, mc := range res.Mcs {
				if c.Comp[mc.ID] < 0 || c.Comp[mc.ID] >= c.NComp {
					t.Fatalf("contour %d assigned out-of-range component %d", mc.ID, c.Comp[mc.ID])
				}
				for _, set := range mc.Callees {
					for cmc := range set {
						edges++
						if c.Comp[mc.ID] > c.Comp[cmc.ID] {
							t.Errorf("edge %s -> %s goes backward: component %d -> %d",
								mc, cmc, c.Comp[mc.ID], c.Comp[cmc.ID])
						}
					}
				}
			}
			if edges == 0 {
				t.Fatalf("no call edges in %s; the property was tested vacuously", p.Name)
			}
		})
	}
}

// TestParallelCounters checks the scheduling counters are populated when
// the pool actually engages (jobs > 1, no trip) and absent for the
// sequential engines.
func TestParallelCounters(t *testing.T) {
	p, err := bench.ByName("richards")
	if err != nil {
		t.Fatal(err)
	}
	src, err := p.Source(bench.VariantAuto, bench.ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	res := analysis.Analyze(compile(t, src), parOpts(false, 2))
	if res.Work.SCCs == 0 {
		t.Errorf("parallel run recorded no SCCs")
	}
	if res.Work.MaxSCCSize < 1 {
		t.Errorf("MaxSCCSize = %d, want >= 1", res.Work.MaxSCCSize)
	}
	if res.Work.ParallelRounds < 1 {
		t.Errorf("ParallelRounds = %d, want >= 1 (final condensation)", res.Work.ParallelRounds)
	}
	if res.Work.SCCs > len(res.Mcs) {
		t.Errorf("SCCs = %d exceeds contour count %d", res.Work.SCCs, len(res.Mcs))
	}

	seq := analysis.Analyze(compile(t, src),
		analysis.Options{Solver: analysis.SolverWorklist})
	if seq.Work.SCCs != 0 || seq.Work.ParallelRounds != 0 || seq.Work.SummaryHits != 0 {
		t.Errorf("sequential run has parallel counters: %+v", seq.Work)
	}

	// Summaries are materializable regardless of solver, one per contour.
	sums := res.Summaries()
	if len(sums) != len(res.Mcs) {
		t.Fatalf("Summaries() returned %d entries, want %d", len(sums), len(res.Mcs))
	}
	for _, s := range sums {
		if s.Contour == nil || s.Ret == nil {
			t.Fatalf("summary missing contour or ret: %+v", s)
		}
	}
}

// TestParallelUnconverged checks the evaluation-budget trip reproduces
// the sequential engines' non-convergence behavior: MaxRounds=1 on a
// multi-round call chain reports Converged=false with the same dump.
func TestParallelUnconverged(t *testing.T) {
	for _, jobs := range []int{2, 8} {
		t.Run(fmt.Sprintf("jobs=%d", jobs), func(t *testing.T) {
			opts := analysis.Options{Tags: true, Solver: analysis.SolverParallel, Jobs: jobs, MaxRounds: 1}
			res := analysis.Analyze(compile(t, chainSrc), opts)
			if res.Converged {
				t.Fatalf("MaxRounds=1 on a call chain reported Converged=true")
			}
			seq := analysis.Analyze(compile(t, chainSrc),
				analysis.Options{Tags: true, Solver: analysis.SolverWorklist, MaxRounds: 1})
			if got, want := res.String(), seq.String(); got != want {
				t.Errorf("budget-tripped parallel dump differs from worklist at MaxRounds=1")
			}
		})
	}
}
