package analysis

// White-box property tests for the analysis lattices: the type-set union
// must behave as a join (commutative, associative, idempotent, monotone),
// and the tag algebra must respect the paper's Head law and the depth cap.

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"objinline/internal/ir"
)

// genOCs builds a pool of object contours to draw from.
func genPool() ([]*ObjContour, []*ArrContour) {
	cls := &ir.Class{Name: "T", Methods: map[string]*ir.Func{}}
	cls.Fields = []*ir.Field{{Name: "f", Slot: 0, Owner: cls}}
	fn := &ir.Func{Name: "site"}
	ocs := make([]*ObjContour, 6)
	for i := range ocs {
		ocs[i] = &ObjContour{ID: i, Class: cls, Site: &ir.Instr{ID: i}, SiteFn: fn, Fields: make([]VarState, 1)}
	}
	acs := make([]*ArrContour, 4)
	for i := range acs {
		acs[i] = &ArrContour{ID: i, Site: &ir.Instr{ID: 100 + i}, SiteFn: fn}
	}
	return ocs, acs
}

var poolOCs, poolACs = genPool()

// randTS draws a random type set.
func randTS(r *rand.Rand) TypeSet {
	var ts TypeSet
	ts.AddPrim(PrimMask(r.Intn(32)))
	for _, oc := range poolOCs {
		if r.Intn(3) == 0 {
			ts.AddObj(oc)
		}
	}
	for _, ac := range poolACs {
		if r.Intn(4) == 0 {
			ts.AddArr(ac)
		}
	}
	return ts
}

func cloneTS(ts *TypeSet) TypeSet {
	var out TypeSet
	out.Union(ts)
	return out
}

func equalTS(a, b *TypeSet) bool {
	if a.Prims != b.Prims || len(a.Objs) != len(b.Objs) || len(a.Arrs) != len(b.Arrs) {
		return false
	}
	for oc := range a.Objs {
		if _, ok := b.Objs[oc]; !ok {
			return false
		}
	}
	for ac := range a.Arrs {
		if _, ok := b.Arrs[ac]; !ok {
			return false
		}
	}
	return true
}

type tsValue struct{ TS TypeSet }

// Generate implements quick.Generator.
func (tsValue) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(tsValue{randTS(r)})
}

func TestTypeSetUnionCommutative(t *testing.T) {
	f := func(a, b tsValue) bool {
		x := cloneTS(&a.TS)
		x.Union(&b.TS)
		y := cloneTS(&b.TS)
		y.Union(&a.TS)
		return equalTS(&x, &y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTypeSetUnionAssociative(t *testing.T) {
	f := func(a, b, c tsValue) bool {
		x := cloneTS(&a.TS)
		x.Union(&b.TS)
		x.Union(&c.TS)
		bc := cloneTS(&b.TS)
		bc.Union(&c.TS)
		y := cloneTS(&a.TS)
		y.Union(&bc)
		return equalTS(&x, &y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTypeSetUnionIdempotentAndReportsChange(t *testing.T) {
	f := func(a, b tsValue) bool {
		x := cloneTS(&a.TS)
		x.Union(&b.TS)
		// Second union of the same operand must be a no-op and report no
		// change.
		if x.Union(&b.TS) {
			return false
		}
		if x.Union(&a.TS) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTypeSetUnionMonotone(t *testing.T) {
	contains := func(big, small *TypeSet) bool {
		if small.Prims&^big.Prims != 0 {
			return false
		}
		for oc := range small.Objs {
			if _, ok := big.Objs[oc]; !ok {
				return false
			}
		}
		for ac := range small.Arrs {
			if _, ok := big.Arrs[ac]; !ok {
				return false
			}
		}
		return true
	}
	f := func(a, b tsValue) bool {
		x := cloneTS(&a.TS)
		x.Union(&b.TS)
		return contains(&x, &a.TS) && contains(&x, &b.TS)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestObjListSortedAndComplete(t *testing.T) {
	f := func(a tsValue) bool {
		l := a.TS.ObjList()
		if len(l) != len(a.TS.Objs) {
			return false
		}
		for i := 1; i < len(l); i++ {
			if l[i-1].ID >= l[i].ID {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// --- tag algebra ---

func TestTagHeadLaw(t *testing.T) {
	tt := newTagTable(3)
	oc := poolOCs[0]
	// Head(MakeTag(f, t)) == f for every base.
	bases := []*Tag{tt.noField, tt.makeObj(poolOCs[1], "f", tt.noField)}
	for _, b := range bases {
		tag := tt.makeObj(oc, "f", b)
		h := tag.Head()
		if h.Class != oc.Class || h.Name != "f" {
			t.Errorf("Head(MakeTag(f,%v)) = %v", b, h)
		}
	}
	at := tt.makeArr(poolACs[0], tt.noField)
	if h := at.Head(); !h.Array {
		t.Errorf("array tag head = %v", h)
	}
}

func TestTagInterning(t *testing.T) {
	tt := newTagTable(3)
	a := tt.makeObj(poolOCs[0], "f", tt.noField)
	b := tt.makeObj(poolOCs[0], "f", tt.noField)
	if a != b {
		t.Error("equal tags not interned")
	}
	c := tt.makeObj(poolOCs[1], "f", tt.noField)
	if a == c {
		t.Error("distinct contours share a tag")
	}
}

func TestTagDepthCapKeepsHead(t *testing.T) {
	tt := newTagTable(3)
	tag := tt.makeObj(poolOCs[0], "f", tt.noField)
	for i := 0; i < 10; i++ {
		oc := poolOCs[i%len(poolOCs)]
		tag = tt.makeObj(oc, "f", tag)
		if tag.IsTop() {
			t.Fatalf("head collapsed to Top at depth %d", i)
		}
		if tag.Depth > 3 {
			t.Fatalf("depth %d exceeds cap", tag.Depth)
		}
	}
	// Saturated tags intern stably too.
	a := tt.makeObj(poolOCs[0], "f", tag)
	b := tt.makeObj(poolOCs[0], "f", tag)
	if a != b {
		t.Error("saturated tags not interned")
	}
}

func TestTagSetSaturatesToTop(t *testing.T) {
	tt := newTagTable(4)
	var s TagSet
	added := 0
	for i := 0; !s.HasTop(); i++ {
		if i > 100 {
			t.Fatal("tag set never saturated")
		}
		oc := poolOCs[i%len(poolOCs)]
		tag := tt.make(tagKey{oc: oc, field: "f" + string(rune('a'+i%26)), base: tt.noField})
		s.Add(tag)
		added++
	}
	// Saturation keeps the established members and summarizes the rest
	// as Top.
	if s.Len() != maxTagSet+1 {
		t.Errorf("saturated set has %d members, want %d", s.Len(), maxTagSet+1)
	}
	// Further additions are absorbed by Top without growth.
	extra := tt.make(tagKey{oc: poolOCs[0], field: "zzz", base: tt.noField})
	if s.Add(extra) {
		t.Error("post-saturation add reported change")
	}
	if s.Len() != maxTagSet+1 {
		t.Errorf("set grew past saturation: %d", s.Len())
	}
	// Heads of established members remain known.
	heads, _, top := s.Heads()
	if !top || len(heads) == 0 {
		t.Errorf("saturation lost heads: %d heads, top=%v", len(heads), top)
	}
}

func TestTagSetUnionIdempotent(t *testing.T) {
	tt := newTagTable(3)
	var a, b TagSet
	a.Add(tt.noField)
	b.Add(tt.makeObj(poolOCs[0], "f", tt.noField))
	b.Add(tt.noField)
	a.Union(&b)
	if a.Union(&b) {
		t.Error("second union reported change")
	}
	if a.Len() != 2 {
		t.Errorf("len = %d", a.Len())
	}
}

func TestHeadsClassification(t *testing.T) {
	tt := newTagTable(3)
	var s TagSet
	s.Add(tt.noField)
	s.Add(tt.makeObj(poolOCs[0], "f", tt.noField))
	s.Add(sharedTop)
	heads, noField, top := s.Heads()
	if len(heads) != 1 || !noField || !top {
		t.Errorf("heads=%v noField=%v top=%v", heads, noField, top)
	}
}
