// Package sem performs program-level semantic analysis on a Mini-ICC
// syntax tree: it builds the class hierarchy, checks for duplicate and
// missing declarations, and rejects inheritance cycles. The lowering pass
// consumes its Info.
package sem

import (
	"objinline/internal/ir"
	"objinline/internal/lang/ast"
	"objinline/internal/lang/source"
)

// Info is the result of semantic analysis.
type Info struct {
	Program *ast.Program
	Classes map[string]*ast.ClassDecl
	Funcs   map[string]*ast.FuncDecl
	Globals []string
	// Order lists class names in a topological order (superclasses first),
	// which lowering uses to build layouts.
	Order []string
}

// Check analyzes prog and returns the program-level tables.
func Check(prog *ast.Program) (*Info, error) {
	var errs source.ErrorList
	info := &Info{
		Program: prog,
		Classes: make(map[string]*ast.ClassDecl),
		Funcs:   make(map[string]*ast.FuncDecl),
	}

	for _, c := range prog.Classes {
		if _, dup := info.Classes[c.Name]; dup {
			errs.Add(c.Pos(), "class %s redeclared", c.Name)
			continue
		}
		info.Classes[c.Name] = c
	}
	for _, f := range prog.Funcs {
		if _, dup := info.Funcs[f.Name]; dup {
			errs.Add(f.Pos(), "function %s redeclared", f.Name)
			continue
		}
		if _, isBuiltin := ir.BuiltinByName(f.Name); isBuiltin {
			errs.Add(f.Pos(), "function %s shadows a builtin", f.Name)
			continue
		}
		info.Funcs[f.Name] = f
	}
	seenGlobal := make(map[string]bool)
	for _, g := range prog.Globals {
		if seenGlobal[g.Name] {
			errs.Add(g.Pos(), "global %s redeclared", g.Name)
			continue
		}
		seenGlobal[g.Name] = true
		info.Globals = append(info.Globals, g.Name)
	}

	// Superclass resolution and cycle detection.
	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := make(map[string]int)
	var visit func(name string) bool
	visit = func(name string) bool {
		switch state[name] {
		case done:
			return true
		case visiting:
			errs.Add(info.Classes[name].Pos(), "inheritance cycle through class %s", name)
			state[name] = done
			return false
		}
		state[name] = visiting
		c := info.Classes[name]
		ok := true
		if c.Super != "" {
			super, exists := info.Classes[c.Super]
			if !exists {
				errs.Add(c.Pos(), "class %s extends unknown class %s", c.Name, c.Super)
				ok = false
			} else {
				ok = visit(super.Name)
			}
		}
		state[name] = done
		if ok {
			info.Order = append(info.Order, name)
		}
		return ok
	}
	for _, c := range prog.Classes {
		if _, claimed := info.Classes[c.Name]; claimed && info.Classes[c.Name] == c {
			visit(c.Name)
		}
	}

	// Per-class member checks: duplicate fields (including inherited ones),
	// duplicate methods within a class.
	for _, name := range info.Order {
		c := info.Classes[name]
		inherited := make(map[string]bool)
		for s := c.Super; s != ""; {
			sc := info.Classes[s]
			if sc == nil {
				break
			}
			for _, f := range sc.Fields {
				inherited[f.Name] = true
			}
			s = sc.Super
		}
		ownFields := make(map[string]bool)
		for _, f := range c.Fields {
			if ownFields[f.Name] {
				errs.Add(f.Pos(), "field %s redeclared in class %s", f.Name, c.Name)
			}
			if inherited[f.Name] {
				errs.Add(f.Pos(), "field %s in class %s shadows an inherited field", f.Name, c.Name)
			}
			ownFields[f.Name] = true
		}
		methods := make(map[string]bool)
		for _, m := range c.Methods {
			if methods[m.Name] {
				errs.Add(m.Pos(), "method %s redeclared in class %s", m.Name, c.Name)
			}
			methods[m.Name] = true
		}
	}

	// Every program needs an entry point.
	if _, ok := info.Funcs["main"]; !ok {
		errs.Add(prog.Pos(), "program has no main function")
	} else if len(info.Funcs["main"].Params) != 0 {
		errs.Add(info.Funcs["main"].Pos(), "main must take no parameters")
	}

	// Structural statement checks (break/continue placement, self usage,
	// duplicate params/locals, unknown names) are performed during
	// lowering, which has the necessary scope information.
	return info, errs.Err()
}
