package sem_test

import (
	"strings"
	"testing"

	"objinline/internal/lang/parser"
	"objinline/internal/lang/sem"
)

func check(t *testing.T, src string) (*sem.Info, error) {
	t.Helper()
	prog, err := parser.Parse("t.icc", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return sem.Check(prog)
}

func wantErr(t *testing.T, src, frag string) {
	t.Helper()
	_, err := check(t, src)
	if err == nil {
		t.Fatalf("expected error mentioning %q", frag)
	}
	if !strings.Contains(err.Error(), frag) {
		t.Fatalf("error %q does not mention %q", err, frag)
	}
}

func TestValidProgram(t *testing.T) {
	info, err := check(t, `
var g = 1;
class A { x; def m() { return self.x; } }
class B : A { y; }
func helper(a) { return a; }
func main() { helper(new B()); }
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Classes) != 2 || len(info.Funcs) != 2 || len(info.Globals) != 1 {
		t.Errorf("info: %d classes, %d funcs, %d globals", len(info.Classes), len(info.Funcs), len(info.Globals))
	}
	// Topological order: A before B.
	ia, ib := -1, -1
	for i, n := range info.Order {
		switch n {
		case "A":
			ia = i
		case "B":
			ib = i
		}
	}
	if ia < 0 || ib < 0 || ia > ib {
		t.Errorf("order = %v", info.Order)
	}
}

func TestDuplicateDeclarations(t *testing.T) {
	wantErr(t, `class A { } class A { } func main() { }`, "class A redeclared")
	wantErr(t, `func f() { } func f() { } func main() { }`, "function f redeclared")
	wantErr(t, `var g; var g; func main() { }`, "global g redeclared")
	wantErr(t, `class A { x; x; } func main() { }`, "field x redeclared")
	wantErr(t, `class A { def m() { } def m() { } } func main() { }`, "method m redeclared")
}

func TestInheritanceChecks(t *testing.T) {
	wantErr(t, `class A : Nope { } func main() { }`, "unknown class Nope")
	wantErr(t, `class A : B { } class B : A { } func main() { }`, "inheritance cycle")
	wantErr(t, `class A : A { } func main() { }`, "inheritance cycle")
	wantErr(t, `class A { x; } class B : A { x; } func main() { }`, "shadows an inherited field")
}

func TestMainRequired(t *testing.T) {
	wantErr(t, `func notmain() { }`, "no main function")
	wantErr(t, `func main(x) { }`, "main must take no parameters")
}

func TestBuiltinShadowing(t *testing.T) {
	wantErr(t, `func sqrt(x) { return x; } func main() { }`, "shadows a builtin")
	wantErr(t, `func print() { } func main() { }`, "shadows a builtin")
}

func TestMethodOverrideAllowed(t *testing.T) {
	_, err := check(t, `
class A { def m() { return 1; } }
class B : A { def m() { return 2; } }
func main() { }
`)
	if err != nil {
		t.Fatalf("override rejected: %v", err)
	}
}

func TestDeepHierarchy(t *testing.T) {
	info, err := check(t, `
class A { a; }
class B : A { b; }
class C : B { c; }
class D : C { d; }
func main() { }
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Order) != 4 || info.Order[0] != "A" || info.Order[3] != "D" {
		t.Errorf("order = %v", info.Order)
	}
}
