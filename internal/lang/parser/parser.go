// Package parser builds Mini-ICC syntax trees by recursive descent.
package parser

import (
	"strconv"

	"objinline/internal/lang/ast"
	"objinline/internal/lang/lexer"
	"objinline/internal/lang/source"
	"objinline/internal/lang/token"
)

// Parse parses one source file into a Program. It returns the (possibly
// partial) tree together with any accumulated diagnostics.
func Parse(file, src string) (*ast.Program, error) {
	var errs source.ErrorList
	p := &parser{lex: lexer.New(file, src, &errs), errs: &errs}
	p.next()
	prog := p.parseProgram(file)
	return prog, errs.Err()
}

type parser struct {
	lex  *lexer.Lexer
	tok  token.Token
	errs *source.ErrorList
	// panicking suppresses cascading diagnostics until resynchronization.
	panicking bool
}

func (p *parser) next() { p.tok = p.lex.Next() }

func (p *parser) errorf(pos source.Pos, format string, args ...any) {
	if p.panicking {
		return
	}
	p.panicking = true
	p.errs.Add(pos, format, args...)
}

func (p *parser) expect(k token.Kind) token.Token {
	t := p.tok
	if t.Kind != k {
		p.errorf(t.Pos, "expected %s, found %s", k, t)
		// Do not consume: let synchronization handle recovery.
		return token.Token{Kind: k, Pos: t.Pos}
	}
	p.panicking = false
	p.next()
	return t
}

func (p *parser) accept(k token.Kind) bool {
	if p.tok.Kind == k {
		p.next()
		return true
	}
	return false
}

// sync skips tokens until a likely statement/declaration boundary.
func (p *parser) sync() {
	for {
		switch p.tok.Kind {
		case token.EOF, token.RBrace, token.KwClass, token.KwFunc, token.KwDef:
			p.panicking = false
			return
		case token.Semicolon:
			p.next()
			p.panicking = false
			return
		}
		p.next()
	}
}

func (p *parser) parseProgram(file string) *ast.Program {
	prog := &ast.Program{File: file}
	for p.tok.Kind != token.EOF {
		switch p.tok.Kind {
		case token.KwClass:
			prog.Classes = append(prog.Classes, p.parseClass())
		case token.KwFunc:
			prog.Funcs = append(prog.Funcs, p.parseFunc(token.KwFunc))
		case token.KwVar:
			g := p.parseVarStmt()
			if g != nil {
				prog.Globals = append(prog.Globals, g)
			}
		default:
			p.errorf(p.tok.Pos, "expected declaration, found %s", p.tok)
			// Consume the offending token before resynchronizing: sync()
			// stops *at* declaration keywords, so a stray `def` (or any
			// other non-declaration token sync treats as a boundary) at top
			// level would otherwise never be consumed and loop forever.
			p.next()
			p.sync()
		}
	}
	return prog
}

func (p *parser) parseClass() *ast.ClassDecl {
	p.expect(token.KwClass)
	name := p.expect(token.Ident)
	d := &ast.ClassDecl{NamePos: name.Pos, Name: name.Lit}
	if p.accept(token.Colon) {
		d.Super = p.expect(token.Ident).Lit
	}
	p.expect(token.LBrace)
	for p.tok.Kind != token.RBrace && p.tok.Kind != token.EOF {
		switch p.tok.Kind {
		case token.KwDef:
			d.Methods = append(d.Methods, p.parseFunc(token.KwDef))
		case token.Ident:
			// One or more comma-separated field names ending in ';'.
			for {
				f := p.expect(token.Ident)
				d.Fields = append(d.Fields, &ast.FieldDecl{NamePos: f.Pos, Name: f.Lit})
				if !p.accept(token.Comma) {
					break
				}
			}
			p.expect(token.Semicolon)
		default:
			p.errorf(p.tok.Pos, "expected field or method, found %s", p.tok)
			p.sync()
		}
	}
	p.expect(token.RBrace)
	return d
}

func (p *parser) parseFunc(kw token.Kind) *ast.FuncDecl {
	p.expect(kw)
	name := p.expect(token.Ident)
	f := &ast.FuncDecl{NamePos: name.Pos, Name: name.Lit}
	p.expect(token.LParen)
	if p.tok.Kind != token.RParen {
		for {
			id := p.expect(token.Ident)
			f.Params = append(f.Params, &ast.Param{NamePos: id.Pos, Name: id.Lit})
			if !p.accept(token.Comma) {
				break
			}
		}
	}
	p.expect(token.RParen)
	f.Body = p.parseBlock()
	return f
}

func (p *parser) parseBlock() *ast.BlockStmt {
	lb := p.expect(token.LBrace)
	blk := &ast.BlockStmt{LBrace: lb.Pos}
	for p.tok.Kind != token.RBrace && p.tok.Kind != token.EOF {
		s := p.parseStmt()
		if s != nil {
			blk.Stmts = append(blk.Stmts, s)
		}
	}
	p.expect(token.RBrace)
	return blk
}

func (p *parser) parseStmt() ast.Stmt {
	switch p.tok.Kind {
	case token.KwVar:
		return p.parseVarStmt()
	case token.KwIf:
		return p.parseIf()
	case token.KwWhile:
		pos := p.tok.Pos
		p.next()
		p.expect(token.LParen)
		cond := p.parseExpr()
		p.expect(token.RParen)
		return &ast.WhileStmt{WhilePos: pos, Cond: cond, Body: p.parseBlock()}
	case token.KwFor:
		return p.parseFor()
	case token.KwReturn:
		pos := p.tok.Pos
		p.next()
		var val ast.Expr
		if p.tok.Kind != token.Semicolon {
			val = p.parseExpr()
		}
		p.expect(token.Semicolon)
		return &ast.ReturnStmt{RetPos: pos, Value: val}
	case token.KwBreak:
		pos := p.tok.Pos
		p.next()
		p.expect(token.Semicolon)
		return &ast.BreakStmt{KwPos: pos}
	case token.KwContinue:
		pos := p.tok.Pos
		p.next()
		p.expect(token.Semicolon)
		return &ast.ContinueStmt{KwPos: pos}
	case token.LBrace:
		return p.parseBlock()
	case token.Semicolon:
		p.next()
		return nil
	default:
		s := p.parseSimpleStmt()
		p.expect(token.Semicolon)
		return s
	}
}

func (p *parser) parseVarStmt() *ast.VarStmt {
	pos := p.tok.Pos
	p.expect(token.KwVar)
	name := p.expect(token.Ident)
	s := &ast.VarStmt{VarPos: pos, Name: name.Lit}
	if p.accept(token.Assign) {
		s.Init = p.parseExpr()
	}
	p.expect(token.Semicolon)
	return s
}

func (p *parser) parseIf() ast.Stmt {
	pos := p.tok.Pos
	p.expect(token.KwIf)
	p.expect(token.LParen)
	cond := p.parseExpr()
	p.expect(token.RParen)
	s := &ast.IfStmt{IfPos: pos, Cond: cond, Then: p.parseBlock()}
	if p.accept(token.KwElse) {
		if p.tok.Kind == token.KwIf {
			s.Else = p.parseIf()
		} else {
			s.Else = p.parseBlock()
		}
	}
	return s
}

func (p *parser) parseFor() ast.Stmt {
	pos := p.tok.Pos
	p.expect(token.KwFor)
	p.expect(token.LParen)
	var init ast.Stmt
	if p.tok.Kind != token.Semicolon {
		if p.tok.Kind == token.KwVar {
			vpos := p.tok.Pos
			p.next()
			name := p.expect(token.Ident)
			v := &ast.VarStmt{VarPos: vpos, Name: name.Lit}
			if p.accept(token.Assign) {
				v.Init = p.parseExpr()
			}
			init = v
		} else {
			init = p.parseSimpleStmt()
		}
	}
	p.expect(token.Semicolon)
	var cond ast.Expr
	if p.tok.Kind != token.Semicolon {
		cond = p.parseExpr()
	}
	p.expect(token.Semicolon)
	var post ast.Stmt
	if p.tok.Kind != token.RParen {
		post = p.parseSimpleStmt()
	}
	p.expect(token.RParen)
	return &ast.ForStmt{ForPos: pos, Init: init, Cond: cond, Post: post, Body: p.parseBlock()}
}

// parseSimpleStmt parses an expression or assignment statement (no
// trailing semicolon).
func (p *parser) parseSimpleStmt() ast.Stmt {
	x := p.parseExpr()
	if p.accept(token.Assign) {
		switch x.(type) {
		case *ast.Ident, *ast.FieldExpr, *ast.IndexExpr:
		default:
			p.errorf(x.Pos(), "cannot assign to this expression")
		}
		return &ast.AssignStmt{Target: x, Value: p.parseExpr()}
	}
	return &ast.ExprStmt{X: x}
}

// Operator precedence, loosest first.
var binPrec = map[token.Kind]int{
	token.OrOr:   1,
	token.AndAnd: 2,
	token.Eq:     3, token.NotEq: 3,
	token.Lt: 4, token.LtEq: 4, token.Gt: 4, token.GtEq: 4,
	token.Plus: 5, token.Minus: 5,
	token.Star: 6, token.Slash: 6, token.Percent: 6,
}

var binOps = map[token.Kind]ast.BinaryOp{
	token.OrOr:    ast.OpOr,
	token.AndAnd:  ast.OpAnd,
	token.Eq:      ast.OpEq,
	token.NotEq:   ast.OpNe,
	token.Lt:      ast.OpLt,
	token.LtEq:    ast.OpLe,
	token.Gt:      ast.OpGt,
	token.GtEq:    ast.OpGe,
	token.Plus:    ast.OpAdd,
	token.Minus:   ast.OpSub,
	token.Star:    ast.OpMul,
	token.Slash:   ast.OpDiv,
	token.Percent: ast.OpMod,
}

func (p *parser) parseExpr() ast.Expr { return p.parseBinary(1) }

func (p *parser) parseBinary(minPrec int) ast.Expr {
	x := p.parseUnary()
	for {
		prec, ok := binPrec[p.tok.Kind]
		if !ok || prec < minPrec {
			return x
		}
		op := binOps[p.tok.Kind]
		p.next()
		y := p.parseBinary(prec + 1)
		x = &ast.BinaryExpr{Op: op, X: x, Y: y}
	}
}

func (p *parser) parseUnary() ast.Expr {
	switch p.tok.Kind {
	case token.Minus:
		pos := p.tok.Pos
		p.next()
		return &ast.UnaryExpr{OpPos: pos, Op: ast.OpNeg, X: p.parseUnary()}
	case token.Not:
		pos := p.tok.Pos
		p.next()
		return &ast.UnaryExpr{OpPos: pos, Op: ast.OpNot, X: p.parseUnary()}
	}
	return p.parsePostfix(p.parsePrimary())
}

func (p *parser) parsePostfix(x ast.Expr) ast.Expr {
	for {
		switch p.tok.Kind {
		case token.Dot:
			p.next()
			name := p.expect(token.Ident)
			if p.tok.Kind == token.LParen {
				args := p.parseArgs()
				x = &ast.MethodCallExpr{Recv: x, Method: name.Lit, Args: args}
			} else {
				x = &ast.FieldExpr{Recv: x, Name: name.Lit}
			}
		case token.LBrack:
			p.next()
			idx := p.parseExpr()
			p.expect(token.RBrack)
			x = &ast.IndexExpr{Arr: x, Index: idx}
		default:
			return x
		}
	}
}

func (p *parser) parseArgs() []ast.Expr {
	p.expect(token.LParen)
	var args []ast.Expr
	if p.tok.Kind != token.RParen {
		for {
			args = append(args, p.parseExpr())
			if !p.accept(token.Comma) {
				break
			}
		}
	}
	p.expect(token.RParen)
	return args
}

func (p *parser) parsePrimary() ast.Expr {
	t := p.tok
	switch t.Kind {
	case token.Int:
		p.next()
		v, err := strconv.ParseInt(t.Lit, 10, 64)
		if err != nil {
			p.errorf(t.Pos, "invalid integer literal %q", t.Lit)
		}
		return &ast.IntLit{LitPos: t.Pos, Value: v}
	case token.Float:
		p.next()
		v, err := strconv.ParseFloat(t.Lit, 64)
		if err != nil {
			p.errorf(t.Pos, "invalid float literal %q", t.Lit)
		}
		return &ast.FloatLit{LitPos: t.Pos, Value: v}
	case token.String:
		p.next()
		return &ast.StringLit{LitPos: t.Pos, Value: t.Lit}
	case token.KwTrue:
		p.next()
		return &ast.BoolLit{LitPos: t.Pos, Value: true}
	case token.KwFalse:
		p.next()
		return &ast.BoolLit{LitPos: t.Pos, Value: false}
	case token.KwNil:
		p.next()
		return &ast.NilLit{LitPos: t.Pos}
	case token.KwSelf:
		p.next()
		return &ast.SelfExpr{LitPos: t.Pos}
	case token.KwNew:
		p.next()
		if p.tok.Kind == token.LBrack {
			p.next()
			n := p.parseExpr()
			p.expect(token.RBrack)
			return &ast.NewArrayExpr{NewPos: t.Pos, Len: n}
		}
		cls := p.expect(token.Ident)
		args := p.parseArgs()
		return &ast.NewExpr{NewPos: t.Pos, Class: cls.Lit, Args: args}
	case token.Ident:
		p.next()
		if p.tok.Kind == token.LParen {
			args := p.parseArgs()
			return &ast.CallExpr{NamePos: t.Pos, Name: t.Lit, Args: args}
		}
		return &ast.Ident{NamePos: t.Pos, Name: t.Lit}
	case token.LParen:
		p.next()
		x := p.parseExpr()
		p.expect(token.RParen)
		return x
	}
	p.errorf(t.Pos, "expected expression, found %s", t)
	p.next()
	return &ast.NilLit{LitPos: t.Pos}
}
