package parser_test

import (
	"strings"
	"testing"

	"objinline/internal/lang/ast"
	"objinline/internal/lang/parser"
)

func parse(t *testing.T, src string) *ast.Program {
	t.Helper()
	prog, err := parser.Parse("t.icc", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return prog
}

func parseErr(t *testing.T, src, frag string) {
	t.Helper()
	_, err := parser.Parse("t.icc", src)
	if err == nil {
		t.Fatalf("expected parse error for %q", src)
	}
	if !strings.Contains(err.Error(), frag) {
		t.Fatalf("error %q does not mention %q", err, frag)
	}
}

// roundTrip checks Print(parse(src)) is a fixpoint under re-parsing.
func roundTrip(t *testing.T, src string) {
	t.Helper()
	p1 := parse(t, src)
	s1 := ast.Print(p1)
	p2, err := parser.Parse("t.icc", s1)
	if err != nil {
		t.Fatalf("reparse failed: %v\nprinted:\n%s", err, s1)
	}
	s2 := ast.Print(p2)
	if s1 != s2 {
		t.Fatalf("print not stable:\nfirst:\n%s\nsecond:\n%s", s1, s2)
	}
}

func TestClassDecls(t *testing.T) {
	p := parse(t, `
class A { x; y, z; def m(a, b) { return a; } }
class B : A { w; }
`)
	if len(p.Classes) != 2 {
		t.Fatalf("classes = %d", len(p.Classes))
	}
	a := p.Classes[0]
	if a.Name != "A" || a.Super != "" || len(a.Fields) != 3 || len(a.Methods) != 1 {
		t.Errorf("A = %+v", a)
	}
	if a.Fields[1].Name != "y" || a.Fields[2].Name != "z" {
		t.Errorf("comma fields broken: %v %v", a.Fields[1].Name, a.Fields[2].Name)
	}
	b := p.Classes[1]
	if b.Super != "A" {
		t.Errorf("B.Super = %q", b.Super)
	}
}

func TestPrecedence(t *testing.T) {
	p := parse(t, `func main() { var x = 1 + 2 * 3 - 4 / 2; }`)
	init := p.Funcs[0].Body.Stmts[0].(*ast.VarStmt).Init
	if got := ast.ExprString(init); got != "((1 + (2 * 3)) - (4 / 2))" {
		t.Errorf("precedence: %s", got)
	}

	p = parse(t, `func main() { var x = a < b && c == d || !e; }`)
	init = p.Funcs[0].Body.Stmts[0].(*ast.VarStmt).Init
	if got := ast.ExprString(init); got != "(((a < b) && (c == d)) || (!e))" {
		t.Errorf("logic precedence: %s", got)
	}

	p = parse(t, `func main() { var x = -a * b; }`)
	init = p.Funcs[0].Body.Stmts[0].(*ast.VarStmt).Init
	if got := ast.ExprString(init); got != "((-a) * b)" {
		t.Errorf("unary precedence: %s", got)
	}
}

func TestPostfixChains(t *testing.T) {
	p := parse(t, `func main() { var x = a.b.c(1).d[2].e(); }`)
	init := p.Funcs[0].Body.Stmts[0].(*ast.VarStmt).Init
	if got := ast.ExprString(init); got != "a.b.c(1).d[2].e()" {
		t.Errorf("postfix chain: %s", got)
	}
}

func TestNewExpressions(t *testing.T) {
	p := parse(t, `func main() { var a = new Foo(1, x); var b = new [n + 1]; }`)
	stmts := p.Funcs[0].Body.Stmts
	ne := stmts[0].(*ast.VarStmt).Init.(*ast.NewExpr)
	if ne.Class != "Foo" || len(ne.Args) != 2 {
		t.Errorf("new expr: %+v", ne)
	}
	na := stmts[1].(*ast.VarStmt).Init.(*ast.NewArrayExpr)
	if ast.ExprString(na.Len) != "(n + 1)" {
		t.Errorf("new array len: %s", ast.ExprString(na.Len))
	}
}

func TestControlFlowForms(t *testing.T) {
	roundTrip(t, `
func main() {
  if (a) { f(); } else if (b) { g(); } else { h(); }
  while (x < 10) { x = x + 1; }
  for (var i = 0; i < 10; i = i + 1) { if (i == 5) { break; } continue; }
  for (; ; ) { break; }
  return 42;
}
`)
}

func TestAssignTargets(t *testing.T) {
	roundTrip(t, `
func main() {
  x = 1;
  o.f = 2;
  a[i] = 3;
  o.f.g = 4;
  a[i].f = 5;
}
`)
}

func TestGlobals(t *testing.T) {
	p := parse(t, `var g = 10; var h; func main() { }`)
	if len(p.Globals) != 2 || p.Globals[0].Init == nil || p.Globals[1].Init != nil {
		t.Errorf("globals: %+v", p.Globals)
	}
}

func TestRoundTripProgram(t *testing.T) {
	roundTrip(t, `
var counter = 0;
class Point {
  x; y;
  def init(x, y) { self.x = x; self.y = y; }
  def norm() { return sqrt(self.x * self.x + self.y * self.y); }
}
class Point3 : Point {
  z;
}
func helper(p, q) {
  var d = p.norm() - q.norm();
  if (d < 0.0) { return -d; }
  return d;
}
func main() {
  var p = new Point(1.0, 2.0);
  var arr = new [4];
  arr[0] = p;
  print(helper(p, new Point(0.5, 0.25)), len(arr), "done", true, false, nil);
}
`)
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ src, frag string }{
		{`func main() { var = 3; }`, "expected IDENT"},
		{`func main() { 1 + ; }`, "expected expression"},
		{`func main() { if a { } }`, "expected ("},
		{`class { }`, "expected IDENT"},
		{`func main() { x = ; }`, "expected expression"},
		{`func main() { f(1,; }`, "expected expression"},
		{`blah`, "expected declaration"},
		{`func main() { 1 = 2; }`, "cannot assign"},
		{`func main() { (a + b) = 2; }`, "cannot assign"},
	}
	for _, c := range cases {
		parseErr(t, c.src, c.frag)
	}
}

func TestRecoveryContinuesAfterError(t *testing.T) {
	// Two independent errors should both be reported.
	_, err := parser.Parse("t.icc", `
func one() { var = 1; }
func two() { var = 2; }
`)
	if err == nil {
		t.Fatal("expected errors")
	}
	if n := strings.Count(err.Error(), "expected IDENT"); n < 2 {
		t.Errorf("want 2 recovered errors, got %d in %q", n, err)
	}
}

func TestSelfAndMethodCalls(t *testing.T) {
	p := parse(t, `class C { v; def m() { return self.v + self.m(); } } func main() { }`)
	m := p.Classes[0].Methods[0]
	ret := m.Body.Stmts[0].(*ast.ReturnStmt)
	if got := ast.ExprString(ret.Value); got != "(self.v + self.m())" {
		t.Errorf("self expr: %s", got)
	}
}

func TestEmptyStatementsTolerated(t *testing.T) {
	p := parse(t, `func main() { ;; x = 1; ; }`)
	if len(p.Funcs[0].Body.Stmts) != 1 {
		t.Errorf("stmts = %d, want 1", len(p.Funcs[0].Body.Stmts))
	}
}

func TestNestedBlocks(t *testing.T) {
	roundTrip(t, `func main() { { var x = 1; { x = 2; } } }`)
}
