// Package token defines the lexical tokens of Mini-ICC.
package token

import "objinline/internal/lang/source"

// Kind identifies a lexical token class.
type Kind int

// Token kinds. Keyword kinds sit between keywordBeg and keywordEnd.
const (
	Illegal Kind = iota
	EOF

	Ident  // x, Rectangle
	Int    // 123
	Float  // 1.5
	String // "abc"

	// Operators and delimiters.
	Plus    // +
	Minus   // -
	Star    // *
	Slash   // /
	Percent // %

	Eq     // ==
	NotEq  // !=
	Lt     // <
	LtEq   // <=
	Gt     // >
	GtEq   // >=
	AndAnd // &&
	OrOr   // ||
	Not    // !

	Assign    // =
	Semicolon // ;
	Comma     // ,
	Dot       // .
	Colon     // :
	LParen    // (
	RParen    // )
	LBrace    // {
	RBrace    // }
	LBrack    // [
	RBrack    // ]

	keywordBeg
	KwClass    // class
	KwDef      // def
	KwFunc     // func
	KwVar      // var
	KwIf       // if
	KwElse     // else
	KwWhile    // while
	KwFor      // for
	KwReturn   // return
	KwBreak    // break
	KwContinue // continue
	KwNew      // new
	KwSelf     // self
	KwTrue     // true
	KwFalse    // false
	KwNil      // nil
	keywordEnd
)

var names = map[Kind]string{
	Illegal:    "ILLEGAL",
	EOF:        "EOF",
	Ident:      "IDENT",
	Int:        "INT",
	Float:      "FLOAT",
	String:     "STRING",
	Plus:       "+",
	Minus:      "-",
	Star:       "*",
	Slash:      "/",
	Percent:    "%",
	Eq:         "==",
	NotEq:      "!=",
	Lt:         "<",
	LtEq:       "<=",
	Gt:         ">",
	GtEq:       ">=",
	AndAnd:     "&&",
	OrOr:       "||",
	Not:        "!",
	Assign:     "=",
	Semicolon:  ";",
	Comma:      ",",
	Dot:        ".",
	Colon:      ":",
	LParen:     "(",
	RParen:     ")",
	LBrace:     "{",
	RBrace:     "}",
	LBrack:     "[",
	RBrack:     "]",
	KwClass:    "class",
	KwDef:      "def",
	KwFunc:     "func",
	KwVar:      "var",
	KwIf:       "if",
	KwElse:     "else",
	KwWhile:    "while",
	KwFor:      "for",
	KwReturn:   "return",
	KwBreak:    "break",
	KwContinue: "continue",
	KwNew:      "new",
	KwSelf:     "self",
	KwTrue:     "true",
	KwFalse:    "false",
	KwNil:      "nil",
}

// String returns the token kind's literal spelling or symbolic name.
func (k Kind) String() string {
	if s, ok := names[k]; ok {
		return s
	}
	return "token(?)"
}

// IsKeyword reports whether k is a reserved word.
func (k Kind) IsKeyword() bool { return k > keywordBeg && k < keywordEnd }

var keywords = func() map[string]Kind {
	m := make(map[string]Kind)
	for k := keywordBeg + 1; k < keywordEnd; k++ {
		m[names[k]] = k
	}
	return m
}()

// Lookup maps an identifier spelling to its keyword kind, or Ident.
func Lookup(ident string) Kind {
	if k, ok := keywords[ident]; ok {
		return k
	}
	return Ident
}

// Token is a single lexeme with its source position.
type Token struct {
	Kind Kind
	Lit  string // literal text for Ident/Int/Float/String
	Pos  source.Pos
}

// String renders a token for diagnostics.
func (t Token) String() string {
	switch t.Kind {
	case Ident, Int, Float:
		return t.Lit
	case String:
		return "\"" + t.Lit + "\""
	default:
		return t.Kind.String()
	}
}
