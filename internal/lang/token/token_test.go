package token_test

import (
	"testing"

	"objinline/internal/lang/source"
	"objinline/internal/lang/token"
)

func TestLookup(t *testing.T) {
	cases := map[string]token.Kind{
		"class":  token.KwClass,
		"def":    token.KwDef,
		"func":   token.KwFunc,
		"while":  token.KwWhile,
		"nil":    token.KwNil,
		"foobar": token.Ident,
		"Class":  token.Ident, // case-sensitive
	}
	for s, want := range cases {
		if got := token.Lookup(s); got != want {
			t.Errorf("Lookup(%q) = %v, want %v", s, got, want)
		}
	}
}

func TestIsKeyword(t *testing.T) {
	if !token.KwClass.IsKeyword() || !token.KwNil.IsKeyword() {
		t.Error("keywords not recognized")
	}
	for _, k := range []token.Kind{token.Ident, token.Plus, token.EOF, token.LBrace} {
		if k.IsKeyword() {
			t.Errorf("%v wrongly IsKeyword", k)
		}
	}
}

func TestKindStrings(t *testing.T) {
	cases := map[token.Kind]string{
		token.Plus:    "+",
		token.Eq:      "==",
		token.KwClass: "class",
		token.EOF:     "EOF",
		token.Ident:   "IDENT",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestTokenString(t *testing.T) {
	pos := source.Pos{Line: 1, Col: 1}
	cases := []struct {
		tok  token.Token
		want string
	}{
		{token.Token{Kind: token.Ident, Lit: "foo", Pos: pos}, "foo"},
		{token.Token{Kind: token.Int, Lit: "42", Pos: pos}, "42"},
		{token.Token{Kind: token.String, Lit: "hi", Pos: pos}, `"hi"`},
		{token.Token{Kind: token.Plus, Pos: pos}, "+"},
		{token.Token{Kind: token.KwWhile, Lit: "while", Pos: pos}, "while"},
	}
	for _, c := range cases {
		if got := c.tok.String(); got != c.want {
			t.Errorf("Token.String() = %q, want %q", got, c.want)
		}
	}
}
