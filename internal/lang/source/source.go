// Package source provides source positions and diagnostics shared by the
// Mini-ICC front end.
//
// Mini-ICC is the uniform-object-model language this repository uses in
// place of ICC++ (see DESIGN.md §2): every object is accessed through a
// reference and every method call is conceptually a dynamic dispatch, which
// is exactly the model the object-inlining optimization targets.
package source

import (
	"fmt"
	"sort"
	"strings"
)

// Pos is a position within a named source file. Line and Col are 1-based;
// the zero Pos means "no position".
type Pos struct {
	File string
	Line int
	Col  int
}

// IsValid reports whether p refers to an actual source location.
func (p Pos) IsValid() bool { return p.Line > 0 }

// String renders the position as file:line:col, omitting missing parts.
func (p Pos) String() string {
	if !p.IsValid() {
		return "-"
	}
	if p.File == "" {
		return fmt.Sprintf("%d:%d", p.Line, p.Col)
	}
	return fmt.Sprintf("%s:%d:%d", p.File, p.Line, p.Col)
}

// Before reports whether p occurs before q in the same file. Positions in
// different files are ordered by file name so sorting is deterministic.
func (p Pos) Before(q Pos) bool {
	if p.File != q.File {
		return p.File < q.File
	}
	if p.Line != q.Line {
		return p.Line < q.Line
	}
	return p.Col < q.Col
}

// Error is a single diagnostic attached to a position.
type Error struct {
	Pos Pos
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string {
	if e.Pos.IsValid() {
		return e.Pos.String() + ": " + e.Msg
	}
	return e.Msg
}

// Errorf constructs a positioned diagnostic.
func Errorf(pos Pos, format string, args ...any) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// ErrorList accumulates diagnostics. The zero value is ready to use.
type ErrorList struct {
	list []*Error
}

// Add appends a diagnostic.
func (l *ErrorList) Add(pos Pos, format string, args ...any) {
	l.list = append(l.list, Errorf(pos, format, args...))
}

// Len reports the number of accumulated diagnostics.
func (l *ErrorList) Len() int { return len(l.list) }

// Sort orders diagnostics by source position.
func (l *ErrorList) Sort() {
	sort.SliceStable(l.list, func(i, j int) bool {
		return l.list[i].Pos.Before(l.list[j].Pos)
	})
}

// Err returns the list as an error, or nil if it is empty.
func (l *ErrorList) Err() error {
	if len(l.list) == 0 {
		return nil
	}
	l.Sort()
	return l
}

// All returns the accumulated diagnostics in order.
func (l *ErrorList) All() []*Error {
	l.Sort()
	return l.list
}

// Error implements the error interface, joining at most ten diagnostics.
func (l *ErrorList) Error() string {
	var b strings.Builder
	for i, e := range l.list {
		if i == 10 {
			fmt.Fprintf(&b, "... and %d more errors", len(l.list)-i)
			break
		}
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(e.Error())
	}
	if b.Len() == 0 {
		return "no errors"
	}
	return b.String()
}
