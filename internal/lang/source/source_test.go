package source_test

import (
	"strings"
	"testing"

	"objinline/internal/lang/source"
)

func TestPosString(t *testing.T) {
	cases := []struct {
		pos  source.Pos
		want string
	}{
		{source.Pos{}, "-"},
		{source.Pos{Line: 3, Col: 7}, "3:7"},
		{source.Pos{File: "a.icc", Line: 1, Col: 2}, "a.icc:1:2"},
	}
	for _, c := range cases {
		if got := c.pos.String(); got != c.want {
			t.Errorf("%+v.String() = %q, want %q", c.pos, got, c.want)
		}
	}
}

func TestPosOrdering(t *testing.T) {
	a := source.Pos{File: "a", Line: 1, Col: 1}
	b := source.Pos{File: "a", Line: 1, Col: 5}
	c := source.Pos{File: "a", Line: 2, Col: 1}
	d := source.Pos{File: "b", Line: 1, Col: 1}
	for _, pair := range [][2]source.Pos{{a, b}, {b, c}, {c, d}} {
		if !pair[0].Before(pair[1]) || pair[1].Before(pair[0]) {
			t.Errorf("ordering broken for %v, %v", pair[0], pair[1])
		}
	}
	if a.Before(a) {
		t.Error("Before not strict")
	}
}

func TestErrorListSortsAndJoins(t *testing.T) {
	var l source.ErrorList
	l.Add(source.Pos{File: "f", Line: 9, Col: 1}, "later")
	l.Add(source.Pos{File: "f", Line: 2, Col: 1}, "earlier %d", 42)
	err := l.Err()
	if err == nil {
		t.Fatal("Err() == nil")
	}
	msg := err.Error()
	if !strings.Contains(msg, "earlier 42") || !strings.Contains(msg, "later") {
		t.Fatalf("message %q", msg)
	}
	if strings.Index(msg, "earlier") > strings.Index(msg, "later") {
		t.Errorf("errors not sorted by position: %q", msg)
	}
	all := l.All()
	if len(all) != 2 || all[0].Pos.Line != 2 {
		t.Errorf("All() = %v", all)
	}
}

func TestErrorListEmpty(t *testing.T) {
	var l source.ErrorList
	if l.Err() != nil || l.Len() != 0 {
		t.Error("empty list is not nil error")
	}
}

func TestErrorListTruncation(t *testing.T) {
	var l source.ErrorList
	for i := 0; i < 15; i++ {
		l.Add(source.Pos{Line: i + 1, Col: 1}, "e%d", i)
	}
	msg := l.Err().Error()
	if !strings.Contains(msg, "and 5 more errors") {
		t.Errorf("truncation marker missing: %q", msg)
	}
}

func TestErrorfFormats(t *testing.T) {
	e := source.Errorf(source.Pos{File: "x", Line: 1, Col: 1}, "boom %s", "now")
	if e.Error() != "x:1:1: boom now" {
		t.Errorf("Errorf = %q", e.Error())
	}
	e2 := source.Errorf(source.Pos{}, "global problem")
	if e2.Error() != "global problem" {
		t.Errorf("unpositioned = %q", e2.Error())
	}
}
