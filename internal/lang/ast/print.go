package ast

import (
	"fmt"
	"strings"
)

// Print renders a program back to (normalized) Mini-ICC source. The output
// re-parses to an equivalent tree, which the parser tests exploit.
func Print(p *Program) string {
	var b strings.Builder
	for _, g := range p.Globals {
		b.WriteString("var " + g.Name)
		if g.Init != nil {
			b.WriteString(" = " + ExprString(g.Init))
		}
		b.WriteString(";\n")
	}
	for _, c := range p.Classes {
		b.WriteString("class " + c.Name)
		if c.Super != "" {
			b.WriteString(" : " + c.Super)
		}
		b.WriteString(" {\n")
		for _, f := range c.Fields {
			b.WriteString("  " + f.Name + ";\n")
		}
		for _, m := range c.Methods {
			printFunc(&b, "def", m, "  ")
		}
		b.WriteString("}\n")
	}
	for _, f := range p.Funcs {
		printFunc(&b, "func", f, "")
	}
	return b.String()
}

func printFunc(b *strings.Builder, kw string, f *FuncDecl, indent string) {
	names := make([]string, len(f.Params))
	for i, p := range f.Params {
		names[i] = p.Name
	}
	fmt.Fprintf(b, "%s%s %s(%s) ", indent, kw, f.Name, strings.Join(names, ", "))
	printBlock(b, f.Body, indent)
	b.WriteString("\n")
}

func printBlock(b *strings.Builder, blk *BlockStmt, indent string) {
	b.WriteString("{\n")
	for _, s := range blk.Stmts {
		printStmt(b, s, indent+"  ")
	}
	b.WriteString(indent + "}")
}

func printStmt(b *strings.Builder, s Stmt, indent string) {
	switch s := s.(type) {
	case *BlockStmt:
		b.WriteString(indent)
		printBlock(b, s, indent)
		b.WriteString("\n")
	case *VarStmt:
		b.WriteString(indent + "var " + s.Name)
		if s.Init != nil {
			b.WriteString(" = " + ExprString(s.Init))
		}
		b.WriteString(";\n")
	case *AssignStmt:
		b.WriteString(indent + ExprString(s.Target) + " = " + ExprString(s.Value) + ";\n")
	case *ExprStmt:
		b.WriteString(indent + ExprString(s.X) + ";\n")
	case *IfStmt:
		b.WriteString(indent + "if (" + ExprString(s.Cond) + ") ")
		printBlock(b, s.Then, indent)
		switch e := s.Else.(type) {
		case nil:
			b.WriteString("\n")
		case *BlockStmt:
			b.WriteString(" else ")
			printBlock(b, e, indent)
			b.WriteString("\n")
		case *IfStmt:
			b.WriteString(" else ")
			// Flatten "else if" onto one logical line.
			var inner strings.Builder
			printStmt(&inner, e, indent)
			b.WriteString(strings.TrimPrefix(inner.String(), indent))
		}
	case *WhileStmt:
		b.WriteString(indent + "while (" + ExprString(s.Cond) + ") ")
		printBlock(b, s.Body, indent)
		b.WriteString("\n")
	case *ForStmt:
		b.WriteString(indent + "for (")
		if s.Init != nil {
			var tmp strings.Builder
			printStmt(&tmp, s.Init, "")
			b.WriteString(strings.TrimSuffix(strings.TrimSpace(tmp.String()), ";"))
		}
		b.WriteString("; ")
		if s.Cond != nil {
			b.WriteString(ExprString(s.Cond))
		}
		b.WriteString("; ")
		if s.Post != nil {
			var tmp strings.Builder
			printStmt(&tmp, s.Post, "")
			b.WriteString(strings.TrimSuffix(strings.TrimSpace(tmp.String()), ";"))
		}
		b.WriteString(") ")
		printBlock(b, s.Body, indent)
		b.WriteString("\n")
	case *ReturnStmt:
		b.WriteString(indent + "return")
		if s.Value != nil {
			b.WriteString(" " + ExprString(s.Value))
		}
		b.WriteString(";\n")
	case *BreakStmt:
		b.WriteString(indent + "break;\n")
	case *ContinueStmt:
		b.WriteString(indent + "continue;\n")
	default:
		panic(fmt.Sprintf("ast: unknown statement %T", s))
	}
}

// ExprString renders an expression with full parenthesization of nested
// binary operations, so the output is unambiguous.
func ExprString(e Expr) string {
	switch e := e.(type) {
	case *IntLit:
		return fmt.Sprintf("%d", e.Value)
	case *FloatLit:
		s := fmt.Sprintf("%g", e.Value)
		if !strings.ContainsAny(s, ".eE") {
			s += ".0"
		}
		return s
	case *StringLit:
		return fmt.Sprintf("%q", e.Value)
	case *BoolLit:
		if e.Value {
			return "true"
		}
		return "false"
	case *NilLit:
		return "nil"
	case *SelfExpr:
		return "self"
	case *Ident:
		return e.Name
	case *BinaryExpr:
		return "(" + ExprString(e.X) + " " + e.Op.String() + " " + ExprString(e.Y) + ")"
	case *UnaryExpr:
		return "(" + e.Op.String() + ExprString(e.X) + ")"
	case *CallExpr:
		return e.Name + "(" + argList(e.Args) + ")"
	case *MethodCallExpr:
		return ExprString(e.Recv) + "." + e.Method + "(" + argList(e.Args) + ")"
	case *FieldExpr:
		return ExprString(e.Recv) + "." + e.Name
	case *IndexExpr:
		return ExprString(e.Arr) + "[" + ExprString(e.Index) + "]"
	case *NewExpr:
		return "new " + e.Class + "(" + argList(e.Args) + ")"
	case *NewArrayExpr:
		return "new [" + ExprString(e.Len) + "]"
	default:
		panic(fmt.Sprintf("ast: unknown expression %T", e))
	}
}

func argList(args []Expr) string {
	parts := make([]string, len(args))
	for i, a := range args {
		parts[i] = ExprString(a)
	}
	return strings.Join(parts, ", ")
}
