package ast

import (
	"math"

	"objinline/internal/lang/source"
)

// Content hashing for incremental recompilation: HashFuncDecl digests one
// function or method declaration — structure, names, literal values, and
// every node's source position — into a 64-bit FNV-1a fingerprint. Two
// declarations hash equally exactly when lowering them (against identical
// name tables) produces identical IR, positions included, so an edit
// session can skip re-lowering any function whose hash is unchanged.
//
// Positions are part of the digest on purpose: diagnostics, site keys in
// reports, and the profiler all render instruction positions, so a
// function whose text merely *moved* (an edit above it added a line) must
// count as changed. Its re-lowered body then differs from the prior IR
// only in Pos fields, which the incremental lowerer patches in place — see
// internal/lower's shape comparison.

const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

type hasher struct{ h uint64 }

func newHasher() *hasher { return &hasher{h: fnvOffset64} }

func (s *hasher) byte(b byte) {
	s.h = (s.h ^ uint64(b)) * fnvPrime64
}

func (s *hasher) u64(x uint64) {
	for i := 0; i < 8; i++ {
		s.byte(byte(x))
		x >>= 8
	}
}

func (s *hasher) int(x int) { s.u64(uint64(int64(x))) }
func (s *hasher) str(x string) {
	s.int(len(x))
	for i := 0; i < len(x); i++ {
		s.byte(x[i])
	}
}

func (s *hasher) pos(p source.Pos) {
	s.int(p.Line)
	s.int(p.Col)
}

// Node kind tags. The walker writes one before each node so that
// differently-shaped trees cannot collide by concatenation.
const (
	tagNil byte = iota
	tagBlock
	tagVar
	tagAssign
	tagExprStmt
	tagIf
	tagWhile
	tagFor
	tagReturn
	tagBreak
	tagContinue
	tagIntLit
	tagFloatLit
	tagStringLit
	tagBoolLit
	tagNilLit
	tagSelf
	tagIdent
	tagBinary
	tagUnary
	tagCall
	tagMethodCall
	tagField
	tagIndex
	tagNew
	tagNewArray
	tagFunc
	tagParam
)

// HashFuncDecl fingerprints one function or method declaration (body,
// parameters, name, and positions). See the package comment above for the
// equality contract.
func HashFuncDecl(d *FuncDecl) uint64 {
	s := newHasher()
	s.byte(tagFunc)
	s.str(d.Name)
	s.pos(d.NamePos)
	s.int(len(d.Params))
	for _, p := range d.Params {
		s.byte(tagParam)
		s.str(p.Name)
		s.pos(p.NamePos)
	}
	s.stmt(d.Body)
	return s.h
}

// HashGlobalInits fingerprints the global declarations' initializer
// expressions in order — the content of the synthetic $init function the
// lowerer builds from them.
func HashGlobalInits(globals []*VarStmt) uint64 {
	s := newHasher()
	s.int(len(globals))
	for _, g := range globals {
		s.byte(tagVar)
		s.str(g.Name)
		s.pos(g.VarPos)
		s.expr(g.Init)
	}
	return s.h
}

func (s *hasher) stmt(st Stmt) {
	switch st := st.(type) {
	case nil:
		s.byte(tagNil)
	case *BlockStmt:
		s.byte(tagBlock)
		s.pos(st.LBrace)
		s.int(len(st.Stmts))
		for _, sub := range st.Stmts {
			s.stmt(sub)
		}
	case *VarStmt:
		s.byte(tagVar)
		s.str(st.Name)
		s.pos(st.VarPos)
		s.expr(st.Init)
	case *AssignStmt:
		s.byte(tagAssign)
		s.expr(st.Target)
		s.expr(st.Value)
	case *ExprStmt:
		s.byte(tagExprStmt)
		s.expr(st.X)
	case *IfStmt:
		s.byte(tagIf)
		s.pos(st.IfPos)
		s.expr(st.Cond)
		s.stmt(st.Then)
		s.stmt(st.Else)
	case *WhileStmt:
		s.byte(tagWhile)
		s.pos(st.WhilePos)
		s.expr(st.Cond)
		s.stmt(st.Body)
	case *ForStmt:
		s.byte(tagFor)
		s.pos(st.ForPos)
		s.stmt(st.Init)
		s.expr(st.Cond)
		s.stmt(st.Post)
		s.stmt(st.Body)
	case *ReturnStmt:
		s.byte(tagReturn)
		s.pos(st.RetPos)
		s.expr(st.Value)
	case *BreakStmt:
		s.byte(tagBreak)
		s.pos(st.KwPos)
	case *ContinueStmt:
		s.byte(tagContinue)
		s.pos(st.KwPos)
	}
}

func (s *hasher) expr(e Expr) {
	switch e := e.(type) {
	case nil:
		s.byte(tagNil)
	case *IntLit:
		s.byte(tagIntLit)
		s.pos(e.LitPos)
		s.u64(uint64(e.Value))
	case *FloatLit:
		s.byte(tagFloatLit)
		s.pos(e.LitPos)
		s.str(floatBits(e.Value))
	case *StringLit:
		s.byte(tagStringLit)
		s.pos(e.LitPos)
		s.str(e.Value)
	case *BoolLit:
		s.byte(tagBoolLit)
		s.pos(e.LitPos)
		if e.Value {
			s.byte(1)
		} else {
			s.byte(0)
		}
	case *NilLit:
		s.byte(tagNilLit)
		s.pos(e.LitPos)
	case *SelfExpr:
		s.byte(tagSelf)
		s.pos(e.LitPos)
	case *Ident:
		s.byte(tagIdent)
		s.str(e.Name)
		s.pos(e.NamePos)
	case *BinaryExpr:
		s.byte(tagBinary)
		s.int(int(e.Op))
		s.expr(e.X)
		s.expr(e.Y)
	case *UnaryExpr:
		s.byte(tagUnary)
		s.pos(e.OpPos)
		s.int(int(e.Op))
		s.expr(e.X)
	case *CallExpr:
		s.byte(tagCall)
		s.str(e.Name)
		s.pos(e.NamePos)
		s.int(len(e.Args))
		for _, a := range e.Args {
			s.expr(a)
		}
	case *MethodCallExpr:
		s.byte(tagMethodCall)
		s.str(e.Method)
		s.expr(e.Recv)
		s.int(len(e.Args))
		for _, a := range e.Args {
			s.expr(a)
		}
	case *FieldExpr:
		s.byte(tagField)
		s.str(e.Name)
		s.expr(e.Recv)
	case *IndexExpr:
		s.byte(tagIndex)
		s.expr(e.Arr)
		s.expr(e.Index)
	case *NewExpr:
		s.byte(tagNew)
		s.pos(e.NewPos)
		s.str(e.Class)
		s.int(len(e.Args))
		for _, a := range e.Args {
			s.expr(a)
		}
	case *NewArrayExpr:
		s.byte(tagNewArray)
		s.pos(e.NewPos)
		s.expr(e.Len)
	}
}

// floatBits renders a float deterministically for hashing (the raw IEEE
// bits as 8 bytes, avoiding any formatting ambiguity).
func floatBits(f float64) string {
	var b [8]byte
	u := math.Float64bits(f)
	for i := range b {
		b[i] = byte(u >> (8 * i))
	}
	return string(b[:])
}
