// Package ast defines the abstract syntax of Mini-ICC.
//
// The tree is deliberately small: classes with fields and methods (single
// inheritance), top-level functions, and a conventional statement and
// expression language. Every object value is a reference; there is no
// syntax for inline allocation — that is the point: inline allocation is
// performed automatically by the optimizer.
package ast

import "objinline/internal/lang/source"

// Node is implemented by every syntax node.
type Node interface {
	Pos() source.Pos
}

// Program is a whole source program.
type Program struct {
	File    string
	Classes []*ClassDecl
	Funcs   []*FuncDecl
	Globals []*VarStmt // top-level "var" declarations
}

// Pos returns the program start position.
func (p *Program) Pos() source.Pos { return source.Pos{File: p.File, Line: 1, Col: 1} }

// ClassDecl declares a class, optionally extending a superclass.
type ClassDecl struct {
	NamePos source.Pos
	Name    string
	Super   string // "" if none
	Fields  []*FieldDecl
	Methods []*FuncDecl
}

// Pos returns the position of the class name.
func (d *ClassDecl) Pos() source.Pos { return d.NamePos }

// FieldDecl declares one instance variable.
type FieldDecl struct {
	NamePos source.Pos
	Name    string
}

// Pos returns the position of the field name.
func (d *FieldDecl) Pos() source.Pos { return d.NamePos }

// FuncDecl declares a top-level function or (inside a class) a method.
type FuncDecl struct {
	NamePos source.Pos
	Name    string
	Params  []*Param
	Body    *BlockStmt
}

// Pos returns the position of the function name.
func (d *FuncDecl) Pos() source.Pos { return d.NamePos }

// Param is a formal parameter.
type Param struct {
	NamePos source.Pos
	Name    string
}

// Pos returns the position of the parameter name.
func (p *Param) Pos() source.Pos { return p.NamePos }

// Stmt is implemented by all statement nodes.
type Stmt interface {
	Node
	stmt()
}

// BlockStmt is a braced statement sequence.
type BlockStmt struct {
	LBrace source.Pos
	Stmts  []Stmt
}

// VarStmt declares a local or global variable with an optional initializer.
type VarStmt struct {
	VarPos source.Pos
	Name   string
	Init   Expr // may be nil
}

// AssignStmt assigns to a variable, field, or array element.
type AssignStmt struct {
	Target Expr // *Ident, *FieldExpr, or *IndexExpr
	Value  Expr
}

// ExprStmt evaluates an expression for its side effects.
type ExprStmt struct {
	X Expr
}

// IfStmt is a conditional with an optional else branch.
type IfStmt struct {
	IfPos source.Pos
	Cond  Expr
	Then  *BlockStmt
	Else  Stmt // *BlockStmt, *IfStmt, or nil
}

// WhileStmt is a pre-tested loop.
type WhileStmt struct {
	WhilePos source.Pos
	Cond     Expr
	Body     *BlockStmt
}

// ForStmt is a C-style loop; any of Init/Cond/Post may be nil.
type ForStmt struct {
	ForPos source.Pos
	Init   Stmt // *VarStmt, *AssignStmt, *ExprStmt, or nil
	Cond   Expr
	Post   Stmt
	Body   *BlockStmt
}

// ReturnStmt returns from the enclosing function, optionally with a value.
type ReturnStmt struct {
	RetPos source.Pos
	Value  Expr // may be nil
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ KwPos source.Pos }

// ContinueStmt restarts the innermost loop.
type ContinueStmt struct{ KwPos source.Pos }

// Pos implementations for statements.
func (s *BlockStmt) Pos() source.Pos    { return s.LBrace }
func (s *VarStmt) Pos() source.Pos      { return s.VarPos }
func (s *AssignStmt) Pos() source.Pos   { return s.Target.Pos() }
func (s *ExprStmt) Pos() source.Pos     { return s.X.Pos() }
func (s *IfStmt) Pos() source.Pos       { return s.IfPos }
func (s *WhileStmt) Pos() source.Pos    { return s.WhilePos }
func (s *ForStmt) Pos() source.Pos      { return s.ForPos }
func (s *ReturnStmt) Pos() source.Pos   { return s.RetPos }
func (s *BreakStmt) Pos() source.Pos    { return s.KwPos }
func (s *ContinueStmt) Pos() source.Pos { return s.KwPos }

func (*BlockStmt) stmt()    {}
func (*VarStmt) stmt()      {}
func (*AssignStmt) stmt()   {}
func (*ExprStmt) stmt()     {}
func (*IfStmt) stmt()       {}
func (*WhileStmt) stmt()    {}
func (*ForStmt) stmt()      {}
func (*ReturnStmt) stmt()   {}
func (*BreakStmt) stmt()    {}
func (*ContinueStmt) stmt() {}

// Expr is implemented by all expression nodes.
type Expr interface {
	Node
	expr()
}

// IntLit is an integer literal.
type IntLit struct {
	LitPos source.Pos
	Value  int64
}

// FloatLit is a floating-point literal.
type FloatLit struct {
	LitPos source.Pos
	Value  float64
}

// StringLit is a string literal.
type StringLit struct {
	LitPos source.Pos
	Value  string
}

// BoolLit is true or false.
type BoolLit struct {
	LitPos source.Pos
	Value  bool
}

// NilLit is the nil reference.
type NilLit struct{ LitPos source.Pos }

// SelfExpr is the receiver inside a method.
type SelfExpr struct{ LitPos source.Pos }

// Ident references a variable (local, parameter, or global).
type Ident struct {
	NamePos source.Pos
	Name    string
}

// BinaryOp enumerates binary operators.
type BinaryOp int

// Binary operators.
const (
	OpAdd BinaryOp = iota
	OpSub
	OpMul
	OpDiv
	OpMod
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd // && with short-circuit evaluation
	OpOr  // || with short-circuit evaluation
)

var binOpNames = [...]string{"+", "-", "*", "/", "%", "==", "!=", "<", "<=", ">", ">=", "&&", "||"}

// String returns the operator's spelling.
func (op BinaryOp) String() string { return binOpNames[op] }

// BinaryExpr applies a binary operator.
type BinaryExpr struct {
	Op   BinaryOp
	X, Y Expr
}

// UnaryOp enumerates unary operators.
type UnaryOp int

// Unary operators.
const (
	OpNeg UnaryOp = iota // -x
	OpNot                // !x
)

// String returns the operator's spelling.
func (op UnaryOp) String() string {
	if op == OpNeg {
		return "-"
	}
	return "!"
}

// UnaryExpr applies a unary operator.
type UnaryExpr struct {
	OpPos source.Pos
	Op    UnaryOp
	X     Expr
}

// CallExpr calls a top-level function or builtin by name.
type CallExpr struct {
	NamePos source.Pos
	Name    string
	Args    []Expr
}

// MethodCallExpr dynamically dispatches a method on a receiver.
type MethodCallExpr struct {
	Recv   Expr
	Method string
	Args   []Expr
}

// FieldExpr reads a field of an object.
type FieldExpr struct {
	Recv Expr
	Name string
}

// IndexExpr reads an array element.
type IndexExpr struct {
	Arr   Expr
	Index Expr
}

// NewExpr allocates an object and runs its constructor ("init" method).
type NewExpr struct {
	NewPos source.Pos
	Class  string
	Args   []Expr
}

// NewArrayExpr allocates an array of the given length, filled with nil.
type NewArrayExpr struct {
	NewPos source.Pos
	Len    Expr
}

// Pos implementations for expressions.
func (e *IntLit) Pos() source.Pos         { return e.LitPos }
func (e *FloatLit) Pos() source.Pos       { return e.LitPos }
func (e *StringLit) Pos() source.Pos      { return e.LitPos }
func (e *BoolLit) Pos() source.Pos        { return e.LitPos }
func (e *NilLit) Pos() source.Pos         { return e.LitPos }
func (e *SelfExpr) Pos() source.Pos       { return e.LitPos }
func (e *Ident) Pos() source.Pos          { return e.NamePos }
func (e *BinaryExpr) Pos() source.Pos     { return e.X.Pos() }
func (e *UnaryExpr) Pos() source.Pos      { return e.OpPos }
func (e *CallExpr) Pos() source.Pos       { return e.NamePos }
func (e *MethodCallExpr) Pos() source.Pos { return e.Recv.Pos() }
func (e *FieldExpr) Pos() source.Pos      { return e.Recv.Pos() }
func (e *IndexExpr) Pos() source.Pos      { return e.Arr.Pos() }
func (e *NewExpr) Pos() source.Pos        { return e.NewPos }
func (e *NewArrayExpr) Pos() source.Pos   { return e.NewPos }

func (*IntLit) expr()         {}
func (*FloatLit) expr()       {}
func (*StringLit) expr()      {}
func (*BoolLit) expr()        {}
func (*NilLit) expr()         {}
func (*SelfExpr) expr()       {}
func (*Ident) expr()          {}
func (*BinaryExpr) expr()     {}
func (*UnaryExpr) expr()      {}
func (*CallExpr) expr()       {}
func (*MethodCallExpr) expr() {}
func (*FieldExpr) expr()      {}
func (*IndexExpr) expr()      {}
func (*NewExpr) expr()        {}
func (*NewArrayExpr) expr()   {}
