package ast_test

import (
	"strings"
	"testing"

	"objinline/internal/lang/ast"
	"objinline/internal/lang/source"
)

func TestExprStringCoversAllNodes(t *testing.T) {
	pos := source.Pos{Line: 1, Col: 1}
	cases := []struct {
		e    ast.Expr
		want string
	}{
		{&ast.IntLit{Value: 42}, "42"},
		{&ast.FloatLit{Value: 1.5}, "1.5"},
		{&ast.FloatLit{Value: 2}, "2.0"},
		{&ast.StringLit{Value: "a\"b"}, `"a\"b"`},
		{&ast.BoolLit{Value: true}, "true"},
		{&ast.BoolLit{Value: false}, "false"},
		{&ast.NilLit{}, "nil"},
		{&ast.SelfExpr{}, "self"},
		{&ast.Ident{Name: "x"}, "x"},
		{&ast.BinaryExpr{Op: ast.OpAdd, X: &ast.Ident{Name: "a"}, Y: &ast.Ident{Name: "b"}}, "(a + b)"},
		{&ast.UnaryExpr{Op: ast.OpNeg, X: &ast.Ident{Name: "a"}}, "(-a)"},
		{&ast.UnaryExpr{Op: ast.OpNot, X: &ast.Ident{Name: "a"}}, "(!a)"},
		{&ast.CallExpr{Name: "f", Args: []ast.Expr{&ast.IntLit{Value: 1}}}, "f(1)"},
		{&ast.MethodCallExpr{Recv: &ast.Ident{Name: "o"}, Method: "m"}, "o.m()"},
		{&ast.FieldExpr{Recv: &ast.Ident{Name: "o"}, Name: "f"}, "o.f"},
		{&ast.IndexExpr{Arr: &ast.Ident{Name: "a"}, Index: &ast.IntLit{Value: 0}}, "a[0]"},
		{&ast.NewExpr{Class: "C", Args: []ast.Expr{&ast.IntLit{Value: 1}, &ast.IntLit{Value: 2}}}, "new C(1, 2)"},
		{&ast.NewArrayExpr{Len: &ast.IntLit{Value: 9}}, "new [9]"},
	}
	for _, c := range cases {
		if got := ast.ExprString(c.e); got != c.want {
			t.Errorf("ExprString(%T) = %q, want %q", c.e, got, c.want)
		}
	}
	_ = pos
}

func TestBinaryOpSpellings(t *testing.T) {
	want := map[ast.BinaryOp]string{
		ast.OpAdd: "+", ast.OpSub: "-", ast.OpMul: "*", ast.OpDiv: "/", ast.OpMod: "%",
		ast.OpEq: "==", ast.OpNe: "!=", ast.OpLt: "<", ast.OpLe: "<=",
		ast.OpGt: ">", ast.OpGe: ">=", ast.OpAnd: "&&", ast.OpOr: "||",
	}
	for op, s := range want {
		if op.String() != s {
			t.Errorf("%d.String() = %q, want %q", op, op.String(), s)
		}
	}
}

func TestPrintProgramStructure(t *testing.T) {
	p := &ast.Program{
		File:    "t.icc",
		Globals: []*ast.VarStmt{{Name: "g", Init: &ast.IntLit{Value: 1}}},
		Classes: []*ast.ClassDecl{{
			Name: "C", Super: "B",
			Fields:  []*ast.FieldDecl{{Name: "x"}},
			Methods: []*ast.FuncDecl{{Name: "m", Body: &ast.BlockStmt{}}},
		}},
		Funcs: []*ast.FuncDecl{{
			Name:   "main",
			Params: []*ast.Param{{Name: "unusedButPrinted"}},
			Body: &ast.BlockStmt{Stmts: []ast.Stmt{
				&ast.ReturnStmt{Value: &ast.IntLit{Value: 7}},
			}},
		}},
	}
	s := ast.Print(p)
	for _, frag := range []string{"var g = 1;", "class C : B {", "x;", "def m()", "func main(unusedButPrinted)", "return 7;"} {
		if !strings.Contains(s, frag) {
			t.Errorf("Print missing %q:\n%s", frag, s)
		}
	}
}

func TestPosAccessors(t *testing.T) {
	pos := source.Pos{File: "f", Line: 3, Col: 4}
	nodes := []ast.Node{
		&ast.IntLit{LitPos: pos},
		&ast.Ident{NamePos: pos},
		&ast.NewExpr{NewPos: pos},
		&ast.VarStmt{VarPos: pos},
		&ast.IfStmt{IfPos: pos},
		&ast.WhileStmt{WhilePos: pos},
		&ast.ForStmt{ForPos: pos},
		&ast.ReturnStmt{RetPos: pos},
		&ast.BreakStmt{KwPos: pos},
		&ast.ContinueStmt{KwPos: pos},
		&ast.BlockStmt{LBrace: pos},
		&ast.ClassDecl{NamePos: pos},
		&ast.FuncDecl{NamePos: pos},
		&ast.Param{NamePos: pos},
		&ast.FieldDecl{NamePos: pos},
	}
	for _, n := range nodes {
		if n.Pos() != pos {
			t.Errorf("%T.Pos() = %v", n, n.Pos())
		}
	}
}
