package lexer_test

import (
	"strings"
	"testing"

	"objinline/internal/lang/lexer"
	"objinline/internal/lang/source"
	"objinline/internal/lang/token"
)

func lex(t *testing.T, src string) ([]token.Token, *source.ErrorList) {
	t.Helper()
	var errs source.ErrorList
	l := lexer.New("t.icc", src, &errs)
	return l.All(), &errs
}

func kinds(toks []token.Token) []token.Kind {
	out := make([]token.Kind, len(toks))
	for i, tk := range toks {
		out[i] = tk.Kind
	}
	return out
}

func expectKinds(t *testing.T, src string, want ...token.Kind) {
	t.Helper()
	toks, errs := lex(t, src)
	if errs.Len() > 0 {
		t.Fatalf("lex %q: %v", src, errs.Err())
	}
	want = append(want, token.EOF)
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("lex %q: got %v, want %v", src, got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("lex %q: token %d = %v, want %v", src, i, got[i], want[i])
		}
	}
}

func TestOperators(t *testing.T) {
	expectKinds(t, "+ - * / %", token.Plus, token.Minus, token.Star, token.Slash, token.Percent)
	expectKinds(t, "== != < <= > >=", token.Eq, token.NotEq, token.Lt, token.LtEq, token.Gt, token.GtEq)
	expectKinds(t, "&& || !", token.AndAnd, token.OrOr, token.Not)
	expectKinds(t, "= ; , . : ( ) { } [ ]",
		token.Assign, token.Semicolon, token.Comma, token.Dot, token.Colon,
		token.LParen, token.RParen, token.LBrace, token.RBrace, token.LBrack, token.RBrack)
}

func TestKeywordsVsIdents(t *testing.T) {
	expectKinds(t, "class def func var if else while for",
		token.KwClass, token.KwDef, token.KwFunc, token.KwVar,
		token.KwIf, token.KwElse, token.KwWhile, token.KwFor)
	expectKinds(t, "return break continue new self true false nil",
		token.KwReturn, token.KwBreak, token.KwContinue, token.KwNew,
		token.KwSelf, token.KwTrue, token.KwFalse, token.KwNil)
	expectKinds(t, "classy deffo newish selfish", token.Ident, token.Ident, token.Ident, token.Ident)
}

func TestNumbers(t *testing.T) {
	cases := []struct {
		src  string
		kind token.Kind
		lit  string
	}{
		{"0", token.Int, "0"},
		{"12345", token.Int, "12345"},
		{"1.5", token.Float, "1.5"},
		{"0.25", token.Float, "0.25"},
		{"1e3", token.Float, "1e3"},
		{"2.5e-2", token.Float, "2.5e-2"},
		{"7E+4", token.Float, "7E+4"},
	}
	for _, c := range cases {
		toks, errs := lex(t, c.src)
		if errs.Len() > 0 {
			t.Errorf("%q: %v", c.src, errs.Err())
			continue
		}
		if toks[0].Kind != c.kind || toks[0].Lit != c.lit {
			t.Errorf("%q -> %v %q, want %v %q", c.src, toks[0].Kind, toks[0].Lit, c.kind, c.lit)
		}
	}
}

func TestIntDotDigitLexesAsFloat(t *testing.T) {
	expectKinds(t, "1.5", token.Float)
	// But "2.foo()" must lex as Int Dot Ident LParen RParen (method call
	// on an integer literal).
	expectKinds(t, "2.foo()", token.Int, token.Dot, token.Ident, token.LParen, token.RParen)
}

func TestENotFollowedByDigitIsIdentBoundary(t *testing.T) {
	// "1e" is int 1 followed by identifier e.
	expectKinds(t, "1e", token.Int, token.Ident)
	expectKinds(t, "1e+", token.Int, token.Ident, token.Plus)
}

func TestStrings(t *testing.T) {
	toks, errs := lex(t, `"hello" "a\nb" "q\"q" "t\tt" "s\\s"`)
	if errs.Len() > 0 {
		t.Fatal(errs.Err())
	}
	want := []string{"hello", "a\nb", `q"q`, "t\tt", `s\s`}
	for i, w := range want {
		if toks[i].Kind != token.String || toks[i].Lit != w {
			t.Errorf("string %d = %v %q, want %q", i, toks[i].Kind, toks[i].Lit, w)
		}
	}
}

func TestComments(t *testing.T) {
	expectKinds(t, "a // line comment\nb", token.Ident, token.Ident)
	expectKinds(t, "a /* block\n comment */ b", token.Ident, token.Ident)
	expectKinds(t, "a /* nested * slash / inside */ b", token.Ident, token.Ident)
}

func TestPositions(t *testing.T) {
	toks, _ := lex(t, "a\n  b")
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("a at %v", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("b at %v, want 2:3", toks[1].Pos)
	}
}

func TestLexErrors(t *testing.T) {
	cases := []struct {
		src, frag string
	}{
		{`"unterminated`, "unterminated string"},
		{"\"newline\nin\"", "newline in string"},
		{`"bad \q escape"`, "unknown escape"},
		{"/* never closed", "unterminated block comment"},
		{"@", "unexpected character"},
		{"#", "unexpected character"},
	}
	for _, c := range cases {
		_, errs := lex(t, c.src)
		if errs.Len() == 0 {
			t.Errorf("%q: expected error", c.src)
			continue
		}
		if !strings.Contains(errs.Err().Error(), c.frag) {
			t.Errorf("%q: error %q does not mention %q", c.src, errs.Err(), c.frag)
		}
	}
}

func TestSingleAmpersandAndPipeAreErrors(t *testing.T) {
	_, errs := lex(t, "a & b")
	if errs.Len() == 0 {
		t.Error("single & should be an error")
	}
	_, errs2 := lex(t, "a | b")
	if errs2.Len() == 0 {
		t.Error("single | should be an error")
	}
}

func TestEOFIsSticky(t *testing.T) {
	var errs source.ErrorList
	l := lexer.New("t.icc", "x", &errs)
	l.Next() // x
	for i := 0; i < 3; i++ {
		if tk := l.Next(); tk.Kind != token.EOF {
			t.Fatalf("Next after EOF = %v", tk)
		}
	}
}

func TestWhitespaceOnly(t *testing.T) {
	expectKinds(t, "  \t\r\n  ")
}
