// Package lexer turns Mini-ICC source text into tokens.
package lexer

import (
	"objinline/internal/lang/source"
	"objinline/internal/lang/token"
)

// Lexer scans one source file. Create one with New and call Next until EOF.
type Lexer struct {
	file string
	src  string
	off  int // byte offset of the next unread character
	line int
	col  int
	errs *source.ErrorList
}

// New returns a lexer over src. Diagnostics are accumulated on errs, which
// must be non-nil.
func New(file, src string, errs *source.ErrorList) *Lexer {
	return &Lexer{file: file, src: src, line: 1, col: 1, errs: errs}
}

func (l *Lexer) pos() source.Pos {
	return source.Pos{File: l.file, Line: l.line, Col: l.col}
}

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) skipSpaceAndComments() {
	for l.off < len(l.src) {
		switch c := l.peek(); {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			start := l.pos()
			l.advance()
			l.advance()
			closed := false
			for l.off < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				l.errs.Add(start, "unterminated block comment")
			}
		default:
			return
		}
	}
}

func isLetter(c byte) bool {
	return c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z')
}

func isDigit(c byte) bool { return '0' <= c && c <= '9' }

// Next returns the next token. After the end of input it returns EOF
// tokens indefinitely.
func (l *Lexer) Next() token.Token {
	l.skipSpaceAndComments()
	pos := l.pos()
	if l.off >= len(l.src) {
		return token.Token{Kind: token.EOF, Pos: pos}
	}
	c := l.advance()
	switch {
	case isLetter(c):
		start := l.off - 1
		for l.off < len(l.src) && (isLetter(l.peek()) || isDigit(l.peek())) {
			l.advance()
		}
		lit := l.src[start:l.off]
		return token.Token{Kind: token.Lookup(lit), Lit: lit, Pos: pos}
	case isDigit(c):
		return l.number(pos)
	case c == '"':
		return l.stringLit(pos)
	}
	two := func(second byte, pair, single token.Kind) token.Token {
		if l.peek() == second {
			l.advance()
			return token.Token{Kind: pair, Pos: pos}
		}
		return token.Token{Kind: single, Pos: pos}
	}
	switch c {
	case '+':
		return token.Token{Kind: token.Plus, Pos: pos}
	case '-':
		return token.Token{Kind: token.Minus, Pos: pos}
	case '*':
		return token.Token{Kind: token.Star, Pos: pos}
	case '/':
		return token.Token{Kind: token.Slash, Pos: pos}
	case '%':
		return token.Token{Kind: token.Percent, Pos: pos}
	case '=':
		return two('=', token.Eq, token.Assign)
	case '!':
		return two('=', token.NotEq, token.Not)
	case '<':
		return two('=', token.LtEq, token.Lt)
	case '>':
		return two('=', token.GtEq, token.Gt)
	case '&':
		if l.peek() == '&' {
			l.advance()
			return token.Token{Kind: token.AndAnd, Pos: pos}
		}
	case '|':
		if l.peek() == '|' {
			l.advance()
			return token.Token{Kind: token.OrOr, Pos: pos}
		}
	case ';':
		return token.Token{Kind: token.Semicolon, Pos: pos}
	case ',':
		return token.Token{Kind: token.Comma, Pos: pos}
	case '.':
		return token.Token{Kind: token.Dot, Pos: pos}
	case ':':
		return token.Token{Kind: token.Colon, Pos: pos}
	case '(':
		return token.Token{Kind: token.LParen, Pos: pos}
	case ')':
		return token.Token{Kind: token.RParen, Pos: pos}
	case '{':
		return token.Token{Kind: token.LBrace, Pos: pos}
	case '}':
		return token.Token{Kind: token.RBrace, Pos: pos}
	case '[':
		return token.Token{Kind: token.LBrack, Pos: pos}
	case ']':
		return token.Token{Kind: token.RBrack, Pos: pos}
	}
	l.errs.Add(pos, "unexpected character %q", string(rune(c)))
	return token.Token{Kind: token.Illegal, Lit: string(rune(c)), Pos: pos}
}

func (l *Lexer) number(pos source.Pos) token.Token {
	start := l.off - 1
	for l.off < len(l.src) && isDigit(l.peek()) {
		l.advance()
	}
	kind := token.Int
	// A fractional part requires a digit after the dot so that expressions
	// like "2.abs()" (a method call on an integer) still lex as Int Dot Ident.
	if l.peek() == '.' && isDigit(l.peek2()) {
		kind = token.Float
		l.advance()
		for l.off < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
	}
	if l.peek() == 'e' || l.peek() == 'E' {
		save := l.off
		mark := *l
		l.advance()
		if l.peek() == '+' || l.peek() == '-' {
			l.advance()
		}
		if isDigit(l.peek()) {
			kind = token.Float
			for l.off < len(l.src) && isDigit(l.peek()) {
				l.advance()
			}
		} else {
			*l = mark
			l.off = save
		}
	}
	return token.Token{Kind: kind, Lit: l.src[start:l.off], Pos: pos}
}

func (l *Lexer) stringLit(pos source.Pos) token.Token {
	var buf []byte
	for {
		if l.off >= len(l.src) {
			l.errs.Add(pos, "unterminated string literal")
			break
		}
		c := l.advance()
		if c == '"' {
			break
		}
		if c == '\n' {
			l.errs.Add(pos, "newline in string literal")
			break
		}
		if c == '\\' {
			if l.off >= len(l.src) {
				l.errs.Add(pos, "unterminated string literal")
				break
			}
			e := l.advance()
			switch e {
			case 'n':
				buf = append(buf, '\n')
			case 't':
				buf = append(buf, '\t')
			case '\\':
				buf = append(buf, '\\')
			case '"':
				buf = append(buf, '"')
			default:
				l.errs.Add(pos, "unknown escape \\%c", e)
			}
			continue
		}
		buf = append(buf, c)
	}
	return token.Token{Kind: token.String, Lit: string(buf), Pos: pos}
}

// All scans the remaining input and returns every token up to and including
// the EOF token. It is a convenience for tests and tools.
func (l *Lexer) All() []token.Token {
	var toks []token.Token
	for {
		t := l.Next()
		toks = append(toks, t)
		if t.Kind == token.EOF {
			return toks
		}
	}
}
