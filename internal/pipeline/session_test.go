package pipeline

import (
	"sort"
	"strings"
	"testing"

	"objinline/internal/analysis"
)

// sessionBase is a small but representative program: a class hierarchy,
// a container with an inlinable field, globals with initializers, and a
// few functions.
const sessionBase = `
class Point {
  x; y;
  def init(a, b) { self.x = a; self.y = b; }
  def sum() { return self.x + self.y; }
}
class Pair {
  p; tag;
  def init(a, b) { self.p = new Point(a, b); self.tag = "pair"; }
  def total() { return self.p.sum(); }
}
var gScale = 3;
func weight(k) { return k * gScale; }
func build(n) {
  var acc = 0;
  for (var i = 0; i < n; i = i + 1) {
    var q = new Pair(i, i + 1);
    acc = acc + q.total();
  }
  return acc;
}
func main() {
  print(build(10));
  print(weight(7));
}
`

// compiledFingerprint renders everything the differential contract pins:
// analysis report, optimized IR, decision lists, code size, and run output.
func compiledFingerprint(t *testing.T, c *Compiled) string {
	t.Helper()
	var b strings.Builder
	b.WriteString("--program--\n")
	b.WriteString(c.Prog.String())
	b.WriteString("\n--analysis--\n")
	if c.Analysis != nil {
		b.WriteString(c.Analysis.String())
	}
	b.WriteString("\n--optimize--\n")
	if c.Optimize != nil && c.Optimize.Decision != nil {
		for _, k := range c.Optimize.Decision.InlinedKeys() {
			b.WriteString("inlined ")
			b.WriteString(k.String())
			b.WriteString("\n")
		}
		var rejected []string
		for k := range c.Optimize.Decision.Rejected {
			rejected = append(rejected, k.String())
		}
		sort.Strings(rejected)
		for _, r := range rejected {
			b.WriteString("rejected ")
			b.WriteString(r)
			b.WriteString("\n")
		}
	}
	b.WriteString("\n--run--\n")
	var out strings.Builder
	if _, err := c.Run(RunOptions{Out: &out}); err != nil {
		t.Fatalf("run: %v", err)
	}
	b.WriteString(out.String())
	return b.String()
}

// expectIdentical compares a session patch against a cold compile of the
// same source.
func expectIdentical(t *testing.T, sess *Session, src string, cfg Config, wantTier string) IncrementalStats {
	t.Helper()
	warm, st, err := sess.Patch(src)
	if err != nil {
		t.Fatalf("patch: %v", err)
	}
	if wantTier != "" && st.Tier != wantTier {
		t.Fatalf("tier = %q, want %q (stats %+v)", st.Tier, wantTier, st)
	}
	cold, err := Compile("sess.icc", src, cfg)
	if err != nil {
		t.Fatalf("cold compile: %v", err)
	}
	w, c := compiledFingerprint(t, warm), compiledFingerprint(t, cold)
	if w != c {
		t.Fatalf("tier %s output diverged from cold compile\n--- warm ---\n%s\n--- cold ---\n%s", st.Tier, w, c)
	}
	return st
}

func sessionConfigs() map[string]Config {
	return map[string]Config{
		"direct":   {Mode: ModeDirect},
		"baseline": {Mode: ModeBaseline},
		"inline":   {Mode: ModeInline},
		"inline-worklist": {Mode: ModeInline,
			Analysis: analysis.Options{Solver: analysis.SolverWorklist}},
		"inline-parallel": {Mode: ModeInline,
			Analysis: analysis.Options{Solver: analysis.SolverParallel, Jobs: 4}},
	}
}

func TestSessionTiers(t *testing.T) {
	for name, cfg := range sessionConfigs() {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			sess, first, err := NewSession("sess.icc", sessionBase, cfg)
			if err != nil {
				t.Fatalf("new session: %v", err)
			}
			if first == nil {
				t.Fatal("nil initial compile")
			}

			// reuse: identical source.
			_, st, err := sess.Patch(sessionBase)
			if err != nil {
				t.Fatalf("reuse patch: %v", err)
			}
			if st.Tier != TierReuse {
				t.Fatalf("identical source tier = %q, want reuse", st.Tier)
			}

			// patch: change a constant inside one function.
			payload := strings.Replace(sessionBase, "print(weight(7));", "print(weight(9));", 1)
			st = expectIdentical(t, sess, payload, cfg, TierPatch)
			if cfg.Mode != ModeDirect && !st.AnalysisReused {
				t.Fatalf("payload edit should reuse analysis: %+v", st)
			}
			if st.AnalysisInstrEvals != 0 {
				t.Fatalf("payload edit ran analysis: %+v", st)
			}
			if st.PatchedFuncs == 0 {
				t.Fatalf("payload edit patched nothing: %+v", st)
			}

			// solve: change control flow inside one function.
			shape := strings.Replace(payload,
				"func weight(k) { return k * gScale; }",
				"func weight(k) { if (k > 3) { return k * gScale; } return k; }", 1)
			st = expectIdentical(t, sess, shape, cfg, TierSolve)
			if st.AnalysisReused {
				t.Fatalf("shape edit must not reuse analysis: %+v", st)
			}
			if st.ResplicedFuncs == 0 {
				t.Fatalf("shape edit respliced nothing: %+v", st)
			}

			// cold: structural edit (new function).
			structural := shape + "\nfunc extra(a) { return a + 1; }\n"
			st = expectIdentical(t, sess, structural, cfg, TierCold)

			// patch again after the cold rebuild, and on a method this time.
			methodEdit := strings.Replace(structural, `self.tag = "pair";`, `self.tag = "tuple";`, 1)
			st = expectIdentical(t, sess, methodEdit, cfg, TierPatch)

			// Line-shift: an added comment line above everything moves every
			// position. Shapes hold, so the analysis is still reused, but the
			// back end re-runs (reopt) so position-bearing output matches cold.
			shifted := "// shifted\n" + methodEdit
			st = expectIdentical(t, sess, shifted, cfg, TierReopt)
			if st.ResplicedFuncs != 0 {
				t.Fatalf("line shift should be shape-preserving: %+v", st)
			}
			if cfg.Mode != ModeDirect && !st.AnalysisReused {
				t.Fatalf("line shift should reuse analysis: %+v", st)
			}
			if st.AnalysisInstrEvals != 0 {
				t.Fatalf("line shift ran analysis: %+v", st)
			}
		})
	}
}

func TestSessionErrorKeepsState(t *testing.T) {
	sess, _, err := NewSession("sess.icc", sessionBase, Config{Mode: ModeInline})
	if err != nil {
		t.Fatal(err)
	}
	before := sess.Compiled()

	if _, _, err := sess.Patch("def main() { return }"); err == nil {
		t.Fatal("expected parse/check error")
	}
	if sess.Compiled() != before {
		t.Fatal("failed patch replaced the pinned compile")
	}
	// A lowering error (undeclared variable) must also leave state intact.
	bad := strings.Replace(sessionBase, "return k * gScale;", "return k * nope;", 1)
	if _, _, err := sess.Patch(bad); err == nil {
		t.Fatal("expected lowering error")
	}
	if sess.Compiled() != before {
		t.Fatal("failed lowering replaced the pinned compile")
	}

	// And the session still works after errors.
	good := strings.Replace(sessionBase, "build(10)", "build(11)", 1)
	c, st, err := sess.Patch(good)
	if err != nil {
		t.Fatalf("patch after errors: %v", err)
	}
	if c == nil || st.Tier != TierPatch {
		t.Fatalf("post-error patch tier = %q", st.Tier)
	}
}
