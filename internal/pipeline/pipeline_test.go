package pipeline_test

import (
	"strings"
	"testing"

	"objinline/internal/analysis"
	"objinline/internal/cachesim"
	"objinline/internal/pipeline"
	"objinline/internal/vm"
)

// runMode compiles and runs src under a mode, returning output + counters.
func runMode(t *testing.T, src string, mode pipeline.Mode) (string, vm.Counters, *pipeline.Compiled) {
	t.Helper()
	c, err := pipeline.Compile("test.icc", src, pipeline.Config{Mode: mode})
	if err != nil {
		t.Fatalf("%v compile: %v", mode, err)
	}
	var out strings.Builder
	counters, err := c.Run(pipeline.RunOptions{Out: &out, Cache: &cachesim.DefaultConfig, MaxSteps: 200_000_000})
	if err != nil {
		t.Fatalf("%v run: %v\nprogram:\n%s", mode, err, c.Prog.String())
	}
	return out.String(), counters, c
}

// differential asserts that all three modes print identical output, and
// returns the compiled inline pipeline for further inspection.
func differential(t *testing.T, src string) *pipeline.Compiled {
	t.Helper()
	direct, _, _ := runMode(t, src, pipeline.ModeDirect)
	base, _, _ := runMode(t, src, pipeline.ModeBaseline)
	inl, _, ci := runMode(t, src, pipeline.ModeInline)
	if base != direct {
		t.Fatalf("baseline output differs from direct:\n direct: %q\n base:   %q", direct, base)
	}
	if inl != direct {
		t.Fatalf("inline output differs from direct:\n direct: %q\n inline: %q\nprogram:\n%s",
			direct, inl, ci.Prog.String())
	}
	return ci
}

const paperExample = `
class Point {
  x_pos; y_pos;
  def init(x, y) { self.x_pos = x; self.y_pos = y; }
  def area(p) { return abs(self.x_pos - p.x_pos) * abs(self.y_pos - p.y_pos); }
  def absv() { return sqrt(self.x_pos*self.x_pos + self.y_pos*self.y_pos); }
}
class Point3D : Point {
  z_pos;
  def init(x, y, z) { self.x_pos = x; self.y_pos = y; self.z_pos = z; }
  def absv() { return sqrt(self.x_pos*self.x_pos + self.y_pos*self.y_pos + self.z_pos*self.z_pos); }
}
class Rectangle {
  lower_left; upper_right;
  def init(ll, ur) { self.lower_left = ll; self.upper_right = ur; }
  def area() { return self.lower_left.area(self.upper_right); }
}
class List {
  data; next;
  def init(d, n) { self.data = d; self.next = n; }
}
func head(l) { return l.data; }
func do_rectangle(ll, ur) {
  var r = new Rectangle(ll, ur);
  print(r.area());
  var l1 = new List(r.lower_left, nil);
  var l2 = new List(r.upper_right, nil);
  print(head(l1).absv());
  print(head(l2).absv());
}
func main() {
  var p1 = new Point(1.0, 2.0);
  var p2 = new Point(3.0, 4.0);
  do_rectangle(p1, p2);
  var p3 = new Point3D(1.0, 2.0, 3.0);
  var p4 = new Point3D(4.0, 5.0, 6.0);
  do_rectangle(p3, p4);
}
`

// TestPaperExampleInlines is the paper's running example end to end: both
// Rectangle corners must be inlined, output must be preserved, and the
// inlined program must allocate fewer heap objects and dereference less.
func TestPaperExampleInlines(t *testing.T) {
	ci := differential(t, paperExample)
	d := ci.Optimize.Decision
	var inlined []string
	for _, k := range d.InlinedKeys() {
		inlined = append(inlined, k.String())
	}
	joined := strings.Join(inlined, " ")
	for _, want := range []string{"Rectangle.lower_left", "Rectangle.upper_right"} {
		if !strings.Contains(joined, want) {
			t.Errorf("inlined = %v, missing %s (rejected: %v)", inlined, want, d.Rejected)
		}
	}

	_, base, _ := runMode(t, paperExample, pipeline.ModeBaseline)
	_, inl, _ := runMode(t, paperExample, pipeline.ModeInline)
	if inl.ObjectsAllocated >= base.ObjectsAllocated {
		t.Errorf("heap allocations: inline %d >= baseline %d", inl.ObjectsAllocated, base.ObjectsAllocated)
	}
	if inl.StackAllocated == 0 {
		t.Errorf("expected elided temporaries to be stack allocated")
	}
}

// TestRepeatedReadsWin exercises the access pattern the paper's gains come
// from: inlined fields read in a loop need one dereference fewer each time,
// so past a small number of reads the copies pay for themselves.
func TestRepeatedReadsWin(t *testing.T) {
	src := `
class Point {
  x; y;
  def init(x, y) { self.x = x; self.y = y; }
}
class Rect {
  ll; ur;
  def init(a, b) { self.ll = a; self.ur = b; }
  def area() { return (self.ur.x - self.ll.x) * (self.ur.y - self.ll.y); }
}
func main() {
  var r = new Rect(new Point(1.0, 2.0), new Point(5.0, 7.0));
  var s = 0.0;
  for (var i = 0; i < 200; i = i + 1) {
    s = s + r.area();
  }
  print(s);
}
`
	differential(t, src)
	_, base, _ := runMode(t, src, pipeline.ModeBaseline)
	_, inl, _ := runMode(t, src, pipeline.ModeInline)
	if inl.Dereferences >= base.Dereferences {
		t.Errorf("dereferences: inline %d >= baseline %d", inl.Dereferences, base.Dereferences)
	}
	if inl.Cycles >= base.Cycles {
		t.Errorf("cycles: inline %d >= baseline %d", inl.Cycles, base.Cycles)
	}
}

func TestParallelogramSubclass(t *testing.T) {
	// The paper's Figure 3/11: a Rectangle subclass must stay layout-
	// conformant after restructuring.
	src := `
class Point {
  x; y;
  def init(x, y) { self.x = x; self.y = y; }
  def sum() { return self.x + self.y; }
}
class Rectangle {
  ll; ur;
  def init(a, b) { self.ll = a; self.ur = b; }
  def span() { return self.ll.sum() + self.ur.sum(); }
  def describe() { return "rect"; }
}
class Parallelogram : Rectangle {
  ul;
  def init(a, b, c) { self.ll = a; self.ur = b; self.ul = c; }
  def describe() { return "para"; }
  def third() { return self.ul.sum(); }
}
func show(r) { print(r.describe(), r.span()); }
func main() {
  show(new Rectangle(new Point(1, 2), new Point(3, 4)));
  var p = new Parallelogram(new Point(5, 6), new Point(7, 8), new Point(9, 10));
  show(p);
  print(p.third());
}
`
	ci := differential(t, src)
	d := ci.Optimize.Decision
	for _, want := range []string{"Rectangle.ll", "Rectangle.ur", "Parallelogram.ul"} {
		found := false
		for _, k := range d.InlinedKeys() {
			if k.String() == want {
				found = true
			}
		}
		if !found {
			t.Errorf("field %s not inlined; rejected: %v", want, d.Rejected)
		}
	}
}

func TestArrayElementInlining(t *testing.T) {
	// Figure 13: an array of points becomes an array of point state.
	src := `
class Complex {
  re; im;
  def init(r, i) { self.re = r; self.im = i; }
  def magsq() { return self.re*self.re + self.im*self.im; }
}
func main() {
  var n = 16;
  var a = new [n];
  for (var i = 0; i < n; i = i + 1) {
    a[i] = new Complex(floatof(i), floatof(n - i));
  }
  var s = 0.0;
  for (var i = 0; i < n; i = i + 1) {
    s = s + a[i].magsq();
  }
  print(s);
}
`
	ci := differential(t, src)
	d := ci.Optimize.Decision
	foundArr := false
	for _, k := range d.InlinedKeys() {
		if k.Array {
			foundArr = true
		}
	}
	if !foundArr {
		t.Errorf("array site not inlined; rejected: %v", d.Rejected)
	}

	_, base, _ := runMode(t, src, pipeline.ModeBaseline)
	_, inl, _ := runMode(t, src, pipeline.ModeInline)
	if inl.ObjectsAllocated >= base.ObjectsAllocated {
		t.Errorf("heap allocations: inline %d >= baseline %d", inl.ObjectsAllocated, base.ObjectsAllocated)
	}
}

func TestAliasedStoreNotInlined(t *testing.T) {
	// The same point is stored into two rectangles; copying would change
	// aliasing, so assignment specialization must reject the field.
	src := `
class Point {
  x;
  def init(x) { self.x = x; }
  def bump() { self.x = self.x + 1; }
}
class Holder {
  p;
  def init(p) { self.p = p; }
}
func main() {
  var pt = new Point(1);
  var h1 = new Holder(pt);
  var h2 = new Holder(pt);
  h1.p.bump();
  print(h2.p.x);
}
`
	ci := differential(t, src)
	for _, k := range ci.Optimize.Decision.InlinedKeys() {
		if k.String() == "Holder.p" {
			t.Errorf("Holder.p was inlined despite aliasing")
		}
	}
}

func TestUseAfterStoreNotInlined(t *testing.T) {
	src := `
class Box { v; def init(v) { self.v = v; } }
class Cell { x; def init(x) { self.x = x; } def get() { return self.x; } }
func main() {
  var c = new Cell(7);
  var b = new Box(c);
  c.x = 9; // use of the original after the store
  print(b.v.get());
}
`
	ci := differential(t, src)
	for _, k := range ci.Optimize.Decision.InlinedKeys() {
		if k.String() == "Box.v" {
			t.Errorf("Box.v was inlined despite a use after the store")
		}
	}
}

func TestNilFieldNotInlined(t *testing.T) {
	src := `
class Item { v; def init(v) { self.v = v; } }
class Slot { it; def init() { self.it = nil; } def fill(v) { self.it = v; } }
func main() {
  var s = new Slot();
  if (1 < 2) { s.fill(new Item(3)); }
  if (s.it == nil) { print("empty"); } else { print(s.it.v); }
}
`
	ci := differential(t, src)
	for _, k := range ci.Optimize.Decision.InlinedKeys() {
		if k.String() == "Slot.it" {
			t.Errorf("Slot.it was inlined despite holding nil")
		}
	}
}

func TestPolymorphicFieldInlinedViaClassCloning(t *testing.T) {
	// Richards-style: the same field holds different types at different
	// creation sites; class cloning must give each its own container
	// version and still inline.
	src := `
class DevData { count; def init(c) { self.count = c; } def val() { return self.count; } }
class HandlerData { a; b; def init(a, b) { self.a = a; self.b = b; } def val() { return self.a * self.b; } }
class Task {
  data;
  def init(d) { self.data = d; }
  def run() { return self.data.val(); }
}
func main() {
  var t1 = new Task(new DevData(5));
  var t2 = new Task(new HandlerData(3, 4));
  print(t1.run(), t2.run());
}
`
	ci := differential(t, src)
	found := false
	for _, k := range ci.Optimize.Decision.InlinedKeys() {
		if k.String() == "Task.data" {
			found = true
		}
	}
	if !found {
		t.Errorf("polymorphic Task.data not inlined; rejected: %v", ci.Optimize.Decision.Rejected)
	}
	if ci.Optimize.ClassVersions < 2 {
		t.Errorf("expected multiple class versions, got %d", ci.Optimize.ClassVersions)
	}
}

func TestIdentityPreserved(t *testing.T) {
	src := `
class P { x; def init(x) { self.x = x; } }
class R { a; b; def init(a, b) { self.a = a; self.b = b; } }
func main() {
  var r = new R(new P(1), new P(2));
  print(r.a == r.a);
  print(r.a == r.b);
  print(r.a == nil);
  var v = r.a;
  print(v == r.a);
}
`
	differential(t, src)
}

func TestDirectModeStillWorks(t *testing.T) {
	out, counters, _ := runMode(t, paperExample, pipeline.ModeDirect)
	if !strings.Contains(out, "\n") {
		t.Fatalf("no output: %q", out)
	}
	if counters.DynFieldLookups == 0 {
		t.Errorf("direct mode should resolve fields by name, got 0 dynamic lookups")
	}
	_, base, _ := runMode(t, paperExample, pipeline.ModeBaseline)
	if base.DynFieldLookups >= counters.DynFieldLookups {
		t.Errorf("baseline should bind field slots: %d >= %d", base.DynFieldLookups, counters.DynFieldLookups)
	}
}

func TestBaselineDevirtualizes(t *testing.T) {
	_, direct, _ := runMode(t, paperExample, pipeline.ModeDirect)
	_, base, _ := runMode(t, paperExample, pipeline.ModeBaseline)
	if base.Dispatches >= direct.Dispatches {
		t.Errorf("baseline dispatches %d >= direct %d", base.Dispatches, direct.Dispatches)
	}
}

func TestGlobalsThroughPipeline(t *testing.T) {
	src := `
var total = 0;
class Acc { n; def init(n) { self.n = n; } def add() { total = total + self.n; } }
func main() {
  var a = new Acc(5);
  var b = new Acc(7);
  a.add(); b.add(); a.add();
  print(total);
}
`
	differential(t, src)
}

func TestRecursiveStructuresSurvive(t *testing.T) {
	src := `
class Node { v; next; def init(v, n) { self.v = v; self.next = n; } }
func sum(l) {
  var s = 0;
  while (l != nil) { s = s + l.v; l = l.next; }
  return s;
}
func main() {
  var l = nil;
  for (var i = 1; i <= 10; i = i + 1) { l = new Node(i, l); }
  print(sum(l));
}
`
	differential(t, src)
}

func TestContainmentCycleRejected(t *testing.T) {
	src := `
class A { other; def init() { } def set(o) { self.other = o; } }
func main() {
  var x = new A();
  var y = new A();
  x.set(y);
  print(x.other == y);
}
`
	ci := differential(t, src)
	for _, k := range ci.Optimize.Decision.InlinedKeys() {
		if k.String() == "A.other" {
			t.Errorf("self-containing A.other must not inline")
		}
	}
}

func TestNestedInlining(t *testing.T) {
	// Three levels: Outer contains Mid contains Inner.
	src := `
class Inner { v; def init(v) { self.v = v; } def get() { return self.v; } }
class Mid { in; def init(i) { self.in = i; } def get() { return self.in.get(); } }
class Outer { m; def init(m) { self.m = m; } def get() { return self.m.get(); } }
func main() {
  var o = new Outer(new Mid(new Inner(42)));
  print(o.get());
  print(o.m.in.v);
}
`
	ci := differential(t, src)
	names := make(map[string]bool)
	for _, k := range ci.Optimize.Decision.InlinedKeys() {
		names[k.String()] = true
	}
	for _, want := range []string{"Mid.in", "Outer.m"} {
		if !names[want] {
			t.Errorf("nested field %s not inlined; rejected: %v", want, ci.Optimize.Decision.Rejected)
		}
	}
	_, base, _ := runMode(t, src, pipeline.ModeBaseline)
	_, inl, _ := runMode(t, src, pipeline.ModeInline)
	if inl.ObjectsAllocated >= base.ObjectsAllocated {
		t.Errorf("nested inlining should reduce heap allocations: %d >= %d", inl.ObjectsAllocated, base.ObjectsAllocated)
	}
}

func TestParallelArrayLayout(t *testing.T) {
	src := `
class C { re; im; def init(r, i) { self.re = r; self.im = i; } }
func main() {
  var a = new [8];
  for (var i = 0; i < 8; i = i + 1) { a[i] = new C(i, i * 2); }
  var s = 0;
  for (var i = 0; i < 8; i = i + 1) { s = s + a[i].re + a[i].im; }
  print(s);
}
`
	want, _, _ := runMode(t, src, pipeline.ModeDirect)
	c, err := pipeline.Compile("t.icc", src, pipeline.Config{
		Mode:        pipeline.ModeInline,
		ArrayLayout: 1, // core.LayoutParallel
	})
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if _, err := c.Run(pipeline.RunOptions{Out: &out}); err != nil {
		t.Fatalf("parallel run: %v\n%s", err, c.Prog.String())
	}
	if out.String() != want {
		t.Errorf("parallel layout output %q != %q", out.String(), want)
	}
}

func TestPrintBlocksInlining(t *testing.T) {
	// Printing an object that came from a field is an opaque use.
	src := `
class P { x; def init(x) { self.x = x; } }
class H { p; def init(p) { self.p = p; } }
func main() {
  var h = new H(new P(1));
  print(h.p);
}
`
	ci := differential(t, src)
	for _, k := range ci.Optimize.Decision.InlinedKeys() {
		if k.String() == "H.p" {
			t.Errorf("H.p escapes to print; must not inline")
		}
	}
}

func TestAnalysisOptionsRespected(t *testing.T) {
	c, err := pipeline.Compile("t.icc", paperExample, pipeline.Config{
		Mode:     pipeline.ModeInline,
		Analysis: analysis.Options{MaxPasses: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.Analysis.Passes > 2 {
		t.Errorf("Passes = %d, want <= 2", c.Analysis.Passes)
	}
}
