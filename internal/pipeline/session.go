package pipeline

import (
	"context"
	"errors"
	"fmt"

	"objinline/internal/analysis"
	"objinline/internal/lang/parser"
	"objinline/internal/lang/sem"
	"objinline/internal/lower"
	"objinline/internal/trace"
)

// A Session is a pinned compilation that absorbs source edits
// incrementally. It retains the lowered program and the lowerer's name
// tables (a lower.Snapshot) plus the last Compiled, and classifies each
// edit into one of five tiers, cheapest first:
//
//	reuse — the source is byte-identical; return the prior Compiled.
//	patch — every changed function re-lowered to the same IR shape at
//	        the same source positions (only constant values and string
//	        literals moved). Neither the contour analysis nor any
//	        back-end decision reads those payload fields — the analysis
//	        dispatches on Aux only as an operator code, the optimizer's
//	        clone-grouping signatures group only same-method clones
//	        (whose payloads are identical by construction), and every
//	        position string baked into rejection evidence or stack-site
//	        provenance is unchanged. So the entire prior Compiled —
//	        analysis and optimized program — is reused wholesale; the
//	        new constant payloads are forwarded into the optimized
//	        output through clone-provenance links (ir.Instr.Origin).
//	        Cost: one function re-lower plus a pointer walk.
//	reopt — same shape, but source positions shifted (say, an added
//	        comment line). The analysis Result is still exact and is
//	        reused, but the optimize/funcinline/peephole back end
//	        re-runs so the position strings it bakes into reports and
//	        traps match a cold compile. Analysis work is zero
//	        instruction evaluations.
//	solve — some function's IR shape changed within an unchanged
//	        program structure. Changed bodies are spliced in place and
//	        the whole-program fixpoint re-runs from scratch. This is
//	        deliberate conservatism: the multi-pass policy ladder
//	        (splitting decisions carried between passes) is globally
//	        coupled, so partial warm-starts cannot guarantee the
//	        byte-identical-to-cold contract this engine is pinned to.
//	cold  — a structural edit (classes, fields, globals, function set
//	        or signatures) perturbs contour keys and function IDs;
//	        rebuild everything, including the snapshot.
//
// Every tier produces output byte-identical to a cold compile of the
// same source — the differential fuzz tests in this package pin that.
//
// A Session is not safe for concurrent use; callers serialize Patch.
// Patch invalidates previously returned Compiled values (the retained
// IR they share is updated in place); the returned *Compiled is valid
// until the next Patch.
type Session struct {
	File string
	Cfg  Config

	source   string
	snap     *lower.Snapshot
	compiled *Compiled
	// stale is set when a back-end phase failed (typically a deadline)
	// *after* the snapshot IR absorbed an edit: the pinned Compiled no
	// longer matches the IR, so the next patch must rebuild cold.
	stale bool
}

// Tier labels for IncrementalStats.Tier.
const (
	TierReuse = "reuse"
	TierPatch = "patch"
	TierReopt = "reopt"
	TierSolve = "solve"
	TierCold  = "cold"
)

// IncrementalStats reports how a Patch was absorbed.
type IncrementalStats struct {
	// Tier is the cheapest tier that could absorb the edit: "reuse",
	// "patch", "reopt", "solve", or "cold".
	Tier string `json:"tier"`
	// ChangedFuncs lists re-lowered functions ("f", "Class.m", "$init")
	// in declaration order; empty on reuse and cold tiers.
	ChangedFuncs []string `json:"changed_funcs,omitempty"`
	// ReusedFuncs counts functions whose IR was kept untouched.
	ReusedFuncs int `json:"reused_funcs"`
	// PatchedFuncs counts functions updated by in-place payload patching.
	PatchedFuncs int `json:"patched_funcs"`
	// ResplicedFuncs counts functions whose new body was spliced in
	// (shape change — forces the solve tier).
	ResplicedFuncs int `json:"respliced_funcs"`
	// AnalysisReused is true when the prior analysis result was carried
	// over verbatim (reuse, patch, and reopt tiers in analyzing modes).
	AnalysisReused bool `json:"analysis_reused"`
	// AnalysisInstrEvals is the number of instruction transfer-function
	// applications this patch's analysis performed: 0 whenever
	// AnalysisReused, the full fixpoint cost otherwise.
	AnalysisInstrEvals int `json:"analysis_instr_evals"`
}

// NewSession cold-compiles src and pins the state needed for incremental
// patches.
func NewSession(file, src string, cfg Config) (*Session, *Compiled, error) {
	return NewSessionContext(context.Background(), file, src, cfg)
}

// NewSessionContext is NewSession with cancellation (see CompileContext).
func NewSessionContext(ctx context.Context, file, src string, cfg Config) (*Session, *Compiled, error) {
	s := &Session{File: file, Cfg: cfg}
	c, _, err := s.rebuild(ctx, src)
	if err != nil {
		return nil, nil, err
	}
	return s, c, nil
}

// Compiled returns the session's current compilation.
func (s *Session) Compiled() *Compiled { return s.compiled }

// Source returns the session's current source text.
func (s *Session) Source() string { return s.source }

// Patch absorbs an edited full source text. See PatchContext.
func (s *Session) Patch(src string) (*Compiled, IncrementalStats, error) {
	return s.PatchContext(context.Background(), src)
}

// PatchContext recompiles the session at the new source, reusing as much
// prior work as the edit allows. On error (parse, check, lowering, or a
// canceled context) the session keeps its previous state and previous
// Compiled. The returned stats say which tier absorbed the edit.
func (s *Session) PatchContext(ctx context.Context, src string) (*Compiled, IncrementalStats, error) {
	var st IncrementalStats
	if s.stale {
		return s.rebuild(ctx, src)
	}
	if src == s.source {
		st.Tier = TierReuse
		st.ReusedFuncs = len(s.snap.Program().Funcs)
		st.AnalysisReused = s.compiled.Analysis != nil
		return s.compiled, st, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, st, fmt.Errorf("compile canceled: %w", err)
	}

	tr := s.Cfg.Trace
	sp := tr.Start(trace.PhaseParse)
	tree, err := parser.Parse(s.File, src)
	sp.End()
	if err != nil {
		return nil, st, fmt.Errorf("parse: %w", err)
	}
	sp = tr.Start(trace.PhaseCheck)
	info, err := sem.Check(tree)
	sp.End()
	if err != nil {
		return nil, st, fmt.Errorf("check: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return nil, st, fmt.Errorf("compile canceled: %w", err)
	}

	sp = tr.Start(trace.PhaseLower)
	ps, err := s.snap.Patch(info)
	sp.End()
	if errors.Is(err, lower.ErrStructural) {
		c, stats, err := s.rebuild(ctx, src)
		return c, stats, err
	}
	if err != nil {
		return nil, st, fmt.Errorf("lower: %w", err)
	}

	st.ChangedFuncs = ps.Changed
	st.ReusedFuncs = ps.Reused
	st.PatchedFuncs = ps.Patched
	st.ResplicedFuncs = ps.Respliced

	// Tier by lowering outcome (see the type comment for the soundness
	// argument behind each reuse level).
	if !ps.ShapeChanged() && !ps.PosShifted {
		// patch: the prior Compiled is exact except for constant payload
		// values, which the snapshot now holds and the optimized output's
		// clones inherit through their Origin links. The snapshot program
		// itself (Compiled.Source, and Compiled.Prog in direct mode) was
		// already payload-patched in place by snap.Patch.
		st.Tier = TierPatch
		st.AnalysisReused = s.compiled.Analysis != nil
		s.compiled.Prog.RefreshConstPayloads()
		s.source = src
		return s.compiled, st, nil
	}
	var prior *analysis.Result
	if ps.ShapeChanged() {
		st.Tier = TierSolve
	} else {
		st.Tier = TierReopt
		st.AnalysisReused = s.compiled.Analysis != nil
		prior = s.compiled.Analysis
	}

	c, err := compileLowered(ctx, s.snap.Program(), prior, s.Cfg)
	if err != nil {
		// The snapshot IR already absorbed the edit but the pinned
		// Compiled did not; force the next patch to rebuild cold.
		s.stale = true
		return nil, st, err
	}
	if c.Analysis != nil && !st.AnalysisReused {
		st.AnalysisInstrEvals = c.Analysis.Stats().Work.InstrEvals
	}
	s.source = src
	s.compiled = c
	return c, st, nil
}

// rebuild is the cold tier: full parse → check → lower → analyze →
// optimize, replacing the snapshot.
func (s *Session) rebuild(ctx context.Context, src string) (*Compiled, IncrementalStats, error) {
	st := IncrementalStats{Tier: TierCold}
	if err := ctx.Err(); err != nil {
		return nil, st, fmt.Errorf("compile canceled: %w", err)
	}
	tr := s.Cfg.Trace
	sp := tr.Start(trace.PhaseParse)
	tree, err := parser.Parse(s.File, src)
	sp.End()
	if err != nil {
		return nil, st, fmt.Errorf("parse: %w", err)
	}
	sp = tr.Start(trace.PhaseCheck)
	info, err := sem.Check(tree)
	sp.End()
	if err != nil {
		return nil, st, fmt.Errorf("check: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return nil, st, fmt.Errorf("compile canceled: %w", err)
	}
	sp = tr.Start(trace.PhaseLower)
	snap, err := lower.NewSnapshot(info)
	if err != nil {
		sp.End()
		return nil, st, fmt.Errorf("lower: %w", err)
	}
	sp.Counter("instrs", int64(snap.Program().CodeSize()))
	sp.End()
	c, err := compileLowered(ctx, snap.Program(), nil, s.Cfg)
	if err != nil {
		return nil, st, err
	}
	if c.Analysis != nil {
		st.AnalysisInstrEvals = c.Analysis.Stats().Work.InstrEvals
	}
	s.source = src
	s.snap = snap
	s.compiled = c
	s.stale = false
	return c, st, nil
}
