package pipeline_test

// The entire compiler must be deterministic: identical source compiles to
// an identical program, byte for byte, across repeated runs. Map-iteration
// order leaking into contour creation, grouping, or materialization would
// show up here.

import (
	"testing"

	"objinline/internal/bench"
	"objinline/internal/cachesim"
	"objinline/internal/pipeline"
)

func TestCompilationDeterministic(t *testing.T) {
	for _, p := range bench.Programs {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			src, err := p.Source(bench.VariantAuto, bench.ScaleSmall)
			if err != nil {
				t.Fatal(err)
			}
			var firstIR string
			var firstCycles int64
			for i := 0; i < 3; i++ {
				c, err := pipeline.Compile(p.Name, src, pipeline.Config{Mode: pipeline.ModeInline})
				if err != nil {
					t.Fatal(err)
				}
				ir := c.Prog.String()
				counters, err := c.Run(pipeline.RunOptions{Cache: &cachesim.DefaultConfig, MaxSteps: 100_000_000})
				if err != nil {
					t.Fatal(err)
				}
				if i == 0 {
					firstIR = ir
					firstCycles = counters.Cycles
					continue
				}
				if ir != firstIR {
					t.Fatalf("run %d produced different IR", i)
				}
				if counters.Cycles != firstCycles {
					t.Fatalf("run %d produced different cycles: %d vs %d", i, counters.Cycles, firstCycles)
				}
			}
		})
	}
}

func TestAnalysisStatsDeterministic(t *testing.T) {
	p, err := bench.ByName("richards")
	if err != nil {
		t.Fatal(err)
	}
	src, err := p.Source(bench.VariantAuto, bench.ScaleSmall)
	if err != nil {
		t.Fatal(err)
	}
	var first string
	for i := 0; i < 3; i++ {
		c, err := pipeline.Compile("r", src, pipeline.Config{Mode: pipeline.ModeInline})
		if err != nil {
			t.Fatal(err)
		}
		got := c.Analysis.String()
		if i == 0 {
			first = got
		} else if got != first {
			t.Fatalf("analysis dump differs on run %d", i)
		}
	}
}
