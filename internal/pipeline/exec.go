package pipeline

import (
	"context"

	"objinline/internal/emit"
	"objinline/internal/vm"
)

// Engine selects the execution tier for a compiled program: the
// instrumented reference VM (cycle cost model, counters, profiling) or
// the native tier (emit Go from the optimized IR, go build, run on the
// hardware; see internal/emit).
type Engine int

// Execution engines.
const (
	EngineVM Engine = iota
	EngineNative
)

func (e Engine) String() string {
	if e == EngineNative {
		return "native"
	}
	return "vm"
}

// ExecOptions configures Compiled.Execute.
type ExecOptions struct {
	// Run carries the VM options. The native engine honors Out (program
	// stdout) and the context deadline; the cost/cache/step-limit knobs
	// model hardware the native tier replaces with the real thing, and
	// Profile requires the VM's instrumentation.
	Run RunOptions
	// Engine selects the tier; the zero value is the VM.
	Engine Engine
	// Reps, for the native engine, is how many times the program body is
	// executed inside one process for measurement stability (printing is
	// muted after the first repetition). 0 means 1.
	Reps int
	// EmitDir, when non-empty, keeps the emitted native package (main.go,
	// go.mod, binary) in this directory instead of a removed temp dir.
	EmitDir string
	// Builder, when non-nil, routes the native build (callers share an
	// emit.BatchBuilder to coalesce concurrent builds into one toolchain
	// invocation); nil builds directly.
	Builder emit.Builder
}

// NativeRun is the native engine's measurement record: real wall time
// and Go allocator deltas in place of the VM's modeled cycles.
type NativeRun struct {
	WallNanos  int64  // run wall time, all reps
	BuildNanos int64  // emit + go build wall time
	Reps       int    // repetitions executed
	Mallocs    uint64 // runtime.MemStats.Mallocs delta, all reps
	AllocBytes uint64 // runtime.MemStats.TotalAlloc delta, all reps
}

// ExecResult is one execution's outcome on either engine: Counters is
// populated by the VM, Native by the native tier.
type ExecResult struct {
	Engine   Engine
	Counters vm.Counters
	Native   *NativeRun
}

// Execute runs the compiled program on the selected engine. On the VM it
// is RunContext; on the native engine it emits the optimized IR as a Go
// package, builds it, runs the binary under the context's deadline, and
// reports real measurements. A Mini-ICC runtime failure surfaces as
// *vm.RuntimeError or *emit.RuntimeError respectively, with identical
// Error() text.
func (c *Compiled) Execute(ctx context.Context, opts ExecOptions) (ExecResult, error) {
	if opts.Engine != EngineNative {
		counters, err := c.RunContext(ctx, opts.Run)
		return ExecResult{Engine: EngineVM, Counters: counters}, err
	}
	builder := opts.Builder
	if builder == nil {
		builder = emit.DirectBuilder{}
	}
	built, err := builder.Build(ctx, c.Prog, emit.BuildOptions{Dir: opts.EmitDir})
	if err != nil {
		return ExecResult{Engine: EngineNative}, err
	}
	defer built.Close()
	stats, err := built.Run(ctx, opts.Run.Out, opts.Reps)
	if err != nil {
		return ExecResult{Engine: EngineNative}, err
	}
	return ExecResult{Engine: EngineNative, Native: &NativeRun{
		WallNanos:  stats.WallNanos,
		BuildNanos: built.BuildNanos,
		Reps:       stats.Reps,
		Mallocs:    stats.Mallocs,
		AllocBytes: stats.AllocBytes,
	}}, nil
}
