package pipeline_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"objinline/internal/emit"
	"objinline/internal/pipeline"
	"objinline/internal/vm"
)

// TestNativeDifferentialFuzz runs a slice of the fuzz corpus on both
// execution engines and requires identical observable behavior (stdout
// bytes and runtime-error text). The full 200-seed corpus stays on the
// VM-only differential above — each native configuration costs a go
// build — but the same generator drives both, so any corpus program can
// be replayed natively by seed if the VM differential ever disagrees.
func TestNativeDifferentialFuzz(t *testing.T) {
	if testing.Short() {
		t.Skip("builds one native binary per configuration")
	}
	const numPrograms = 6
	for seed := 0; seed < numPrograms; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%02d", seed), func(t *testing.T) {
			t.Parallel()
			g := &progGen{r: rand.New(rand.NewSource(int64(seed)))}
			src := g.generate()

			configs := []struct {
				name string
				cfg  pipeline.Config
			}{
				{"direct", pipeline.Config{Mode: pipeline.ModeDirect}},
				{"baseline", pipeline.Config{Mode: pipeline.ModeBaseline}},
				{"inline", pipeline.Config{Mode: pipeline.ModeInline}},
				{"inline-parallel", pipeline.Config{Mode: pipeline.ModeInline, ArrayLayout: 1}},
			}
			for _, c := range configs {
				comp, err := pipeline.Compile("fuzz.icc", src, c.cfg)
				if err != nil {
					t.Fatalf("%s compile: %v\nprogram:\n%s", c.name, err, src)
				}
				var vmOut strings.Builder
				vmErrText := ""
				if _, err := comp.Run(pipeline.RunOptions{Out: &vmOut, MaxSteps: 5_000_000}); err != nil {
					var re *vm.RuntimeError
					if !errors.As(err, &re) {
						t.Fatalf("%s vm run: %v\nprogram:\n%s", c.name, err, src)
					}
					vmErrText = re.Error()
				}

				ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
				var natOut strings.Builder
				res, err := comp.Execute(ctx, pipeline.ExecOptions{
					Run:    pipeline.RunOptions{Out: &natOut},
					Engine: pipeline.EngineNative,
				})
				cancel()
				natErrText := ""
				if err != nil {
					var re *emit.RuntimeError
					if !errors.As(err, &re) {
						t.Fatalf("%s native run: %v\nprogram:\n%s", c.name, err, src)
					}
					natErrText = re.Error()
				} else if res.Engine != pipeline.EngineNative || res.Native == nil {
					t.Fatalf("%s: ExecResult missing native measurements: %+v", c.name, res)
				}

				if natOut.String() != vmOut.String() {
					t.Errorf("%s: stdout differs\nprogram:\n%s\nvm:\n%q\nnative:\n%q",
						c.name, src, vmOut.String(), natOut.String())
				}
				if natErrText != vmErrText {
					t.Errorf("%s: runtime error differs\nprogram:\n%s\nvm:     %q\nnative: %q",
						c.name, src, vmErrText, natErrText)
				}
			}
		})
	}
}
