// Package pipeline wires the whole compiler together: parse → semantic
// analysis → lowering → contour analysis → cloning/inlining → VM. It is
// the implementation behind the public objinline API and the experiment
// harness.
package pipeline

import (
	"context"
	"fmt"
	"io"

	"objinline/internal/analysis"
	"objinline/internal/cachesim"
	"objinline/internal/core"
	"objinline/internal/funcinline"
	"objinline/internal/ir"
	"objinline/internal/lang/parser"
	"objinline/internal/lang/sem"
	"objinline/internal/lower"
	"objinline/internal/peephole"
	"objinline/internal/trace"
	"objinline/internal/vm"
)

// Mode selects how much optimization runs before execution.
type Mode int

// Pipeline modes, mirroring the paper's three measured configurations.
const (
	// ModeDirect runs the lowered program as-is: the unoptimized uniform
	// object model (every field access resolves by name, every call
	// dispatches dynamically).
	ModeDirect Mode = iota
	// ModeBaseline runs Concert-style type inference + cloning without
	// object inlining (the paper's "Concert Without Inlining" bars).
	ModeBaseline
	// ModeInline additionally runs object inlining (the paper's "Concert
	// With Inlining" bars).
	ModeInline
)

func (m Mode) String() string {
	switch m {
	case ModeDirect:
		return "direct"
	case ModeBaseline:
		return "baseline"
	default:
		return "inline"
	}
}

// Config configures a compilation.
type Config struct {
	Mode        Mode
	ArrayLayout core.Layout
	// Analysis tweaks (zero values mean defaults).
	Analysis analysis.Options
	// Trace, when non-nil, receives one event per compilation phase
	// (wall time plus per-phase counters). A nil sink costs nothing.
	Trace *trace.Sink
}

// Compiled is a ready-to-run program plus everything the harness measures.
type Compiled struct {
	Source   *ir.Program // the lowered, unoptimized program
	Prog     *ir.Program // the program that will execute
	Analysis *analysis.Result
	Optimize *core.Result
	Mode     Mode
	// Trace is the sink the compilation reported its phases to (nil when
	// tracing was off). Run appends the VM's run phase to the same sink.
	Trace *trace.Sink
}

// Compile compiles Mini-ICC source through the configured pipeline.
func Compile(file, src string, cfg Config) (*Compiled, error) {
	return CompileContext(context.Background(), file, src, cfg)
}

// CompileContext is Compile with cancellation: the context is checked
// between phases and threaded into the contour analysis (whose fixpoint
// solvers poll it between contour evaluations), so a compile of an
// adversarial or pathological input stops within a bounded amount of work
// of the deadline. A canceled compilation returns an error wrapping
// ctx.Err(); whatever phase events completed remain on cfg.Trace.
func CompileContext(ctx context.Context, file, src string, cfg Config) (*Compiled, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("compile canceled: %w", err)
	}
	tr := cfg.Trace
	sp := tr.Start(trace.PhaseParse)
	tree, err := parser.Parse(file, src)
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("parse: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("compile canceled: %w", err)
	}
	sp = tr.Start(trace.PhaseCheck)
	info, err := sem.Check(tree)
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("check: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("compile canceled: %w", err)
	}
	sp = tr.Start(trace.PhaseLower)
	prog, err := lower.Lower(info)
	if err != nil {
		sp.End()
		return nil, fmt.Errorf("lower: %w", err)
	}
	sp.Counter("instrs", int64(prog.CodeSize()))
	sp.End()
	return compileLowered(ctx, prog, nil, cfg)
}

// compileLowered runs every phase after lowering: contour analysis (unless
// prior is supplied — the incremental patch tier passes a still-valid prior
// Result), then optimize → funcinline → peephole. It is the shared back
// half of CompileContext and Session recompiles; the input program is
// treated as read-only (the optimizer materializes a fresh output program),
// which is what lets a Session retain it across edits.
func compileLowered(ctx context.Context, prog *ir.Program, prior *analysis.Result, cfg Config) (*Compiled, error) {
	tr := cfg.Trace
	c := &Compiled{Source: prog, Prog: prog, Mode: cfg.Mode, Trace: tr}
	if cfg.Mode == ModeDirect {
		return c, nil
	}

	res := prior
	if res == nil {
		var err error
		res, err = analyzePhase(ctx, prog, cfg)
		if err != nil {
			return nil, err
		}
	}
	c.Analysis = res

	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("compile canceled: %w", err)
	}
	sp := tr.Start(trace.PhaseOptimize)
	opt, err := core.Optimize(prog, res, core.Options{
		Inline:      cfg.Mode == ModeInline,
		ArrayLayout: cfg.ArrayLayout,
	})
	if err != nil {
		sp.End()
		return nil, fmt.Errorf("optimize: %w", err)
	}
	sp.Counter("attempts", int64(opt.Attempts))
	sp.Counter("clones", int64(opt.CloneStats.ClonesAdded))
	sp.Counter("class-versions", int64(opt.ClassVersions))
	if d := opt.Decision; d != nil {
		sp.Counter("inlined", int64(len(d.Inlined)))
		sp.Counter("rejected", int64(len(d.Rejected)))
	}
	sp.End()
	c.Optimize = opt
	c.Prog = opt.Prog

	// Post-specialization cleanup, applied identically to both optimized
	// pipelines (never to ModeDirect, the unoptimized reference): small
	// specialized methods are absorbed into their callers (§6.2.1's "most
	// of the specialized methods are inlined"), then the peephole pass
	// sweeps up the debris.
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("compile canceled: %w", err)
	}
	sp = tr.Start(trace.PhaseFuncInline)
	funcinline.Program(c.Prog, funcinline.DefaultOptions)
	sp.Counter("instrs", int64(c.Prog.CodeSize()))
	sp.End()
	if err := c.Prog.Verify(); err != nil {
		return nil, fmt.Errorf("function inlining broke the program: %w", err)
	}
	sp = tr.Start(trace.PhasePeephole)
	peephole.Program(c.Prog)
	sp.Counter("instrs", int64(c.Prog.CodeSize()))
	sp.End()
	if err := c.Prog.Verify(); err != nil {
		return nil, fmt.Errorf("peephole broke the program: %w", err)
	}
	return c, nil
}

// analyzePhase runs the contour analysis with phase tracing.
func analyzePhase(ctx context.Context, prog *ir.Program, cfg Config) (*analysis.Result, error) {
	tr := cfg.Trace
	aopts := cfg.Analysis
	aopts.Tags = cfg.Mode == ModeInline
	sp := tr.Start(trace.PhaseAnalysis)
	res, err := analysis.AnalyzeContext(ctx, prog, aopts)
	if err != nil {
		sp.End()
		return nil, err
	}
	if tr != nil {
		st := res.Stats()
		sp.Counter("method-contours", int64(st.MethodContours))
		sp.Counter("obj-contours", int64(st.ObjContours))
		sp.Counter("passes", int64(st.Passes))
		sp.Counter("instr-evals", int64(st.Work.InstrEvals))
		// Worklist-solver progress, for the Chrome/Perfetto export.
		sp.Counter("rounds", int64(st.Work.Rounds))
		sp.Counter("contour-evals", int64(st.Work.ContourEvals))
		sp.Counter("enqueues", int64(st.Work.Enqueues))
		// Parallel-solver scheduling, present only when the worker pool
		// actually engaged (SCCs is 0 for the sequential engines).
		if st.Work.SCCs > 0 {
			sp.Counter("sccs", int64(st.Work.SCCs))
			sp.Counter("max-scc-size", int64(st.Work.MaxSCCSize))
			sp.Counter("parallel-rounds", int64(st.Work.ParallelRounds))
			sp.Counter("summary-hits", int64(st.Work.SummaryHits))
		}
	}
	sp.End()
	return res, nil
}

// RunOptions configures one execution.
type RunOptions struct {
	Out      io.Writer
	Cache    *cachesim.Config
	Cost     *vm.CostModel
	MaxSteps uint64
	// Trace overrides the sink the run phase reports to; nil falls back to
	// the compilation's sink (which may itself be nil).
	Trace *trace.Sink
	// Profile, when non-nil, receives per-allocation-site and per-field-path
	// attribution for the run. A nil profile costs nothing.
	Profile *vm.Profile
}

// Run executes the compiled program and returns its dynamic counters.
func (c *Compiled) Run(opts RunOptions) (vm.Counters, error) {
	return c.RunContext(context.Background(), opts)
}

// RunContext is Run with cancellation: the VM's step loop polls the
// context, so an infinite loop returns an error wrapping ctx.Err() within
// microseconds of the deadline (see vm.Machine.RunContext).
func (c *Compiled) RunContext(ctx context.Context, opts RunOptions) (vm.Counters, error) {
	tr := opts.Trace
	if tr == nil {
		tr = c.Trace
	}
	m := vm.New(c.Prog, vm.Options{
		Out:      opts.Out,
		Cache:    opts.Cache,
		Cost:     opts.Cost,
		MaxSteps: opts.MaxSteps,
		Trace:    tr,
		Profile:  opts.Profile,
	})
	return m.RunContext(ctx)
}

// CodeSize returns the executable program's instruction count (the
// Figure 15 metric).
func (c *Compiled) CodeSize() int { return c.Prog.CodeSize() }
