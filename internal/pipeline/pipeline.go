// Package pipeline wires the whole compiler together: parse → semantic
// analysis → lowering → contour analysis → cloning/inlining → VM. It is
// the implementation behind the public objinline API and the experiment
// harness.
package pipeline

import (
	"fmt"
	"io"

	"objinline/internal/analysis"
	"objinline/internal/cachesim"
	"objinline/internal/core"
	"objinline/internal/funcinline"
	"objinline/internal/ir"
	"objinline/internal/lang/parser"
	"objinline/internal/lang/sem"
	"objinline/internal/lower"
	"objinline/internal/peephole"
	"objinline/internal/vm"
)

// Mode selects how much optimization runs before execution.
type Mode int

// Pipeline modes, mirroring the paper's three measured configurations.
const (
	// ModeDirect runs the lowered program as-is: the unoptimized uniform
	// object model (every field access resolves by name, every call
	// dispatches dynamically).
	ModeDirect Mode = iota
	// ModeBaseline runs Concert-style type inference + cloning without
	// object inlining (the paper's "Concert Without Inlining" bars).
	ModeBaseline
	// ModeInline additionally runs object inlining (the paper's "Concert
	// With Inlining" bars).
	ModeInline
)

func (m Mode) String() string {
	switch m {
	case ModeDirect:
		return "direct"
	case ModeBaseline:
		return "baseline"
	default:
		return "inline"
	}
}

// Config configures a compilation.
type Config struct {
	Mode        Mode
	ArrayLayout core.Layout
	// Analysis tweaks (zero values mean defaults).
	Analysis analysis.Options
}

// Compiled is a ready-to-run program plus everything the harness measures.
type Compiled struct {
	Source   *ir.Program // the lowered, unoptimized program
	Prog     *ir.Program // the program that will execute
	Analysis *analysis.Result
	Optimize *core.Result
	Mode     Mode
}

// Compile compiles Mini-ICC source through the configured pipeline.
func Compile(file, src string, cfg Config) (*Compiled, error) {
	tree, err := parser.Parse(file, src)
	if err != nil {
		return nil, fmt.Errorf("parse: %w", err)
	}
	info, err := sem.Check(tree)
	if err != nil {
		return nil, fmt.Errorf("check: %w", err)
	}
	prog, err := lower.Lower(info)
	if err != nil {
		return nil, fmt.Errorf("lower: %w", err)
	}
	c := &Compiled{Source: prog, Prog: prog, Mode: cfg.Mode}
	if cfg.Mode == ModeDirect {
		return c, nil
	}

	aopts := cfg.Analysis
	aopts.Tags = cfg.Mode == ModeInline
	res := analysis.Analyze(prog, aopts)
	c.Analysis = res

	opt, err := core.Optimize(prog, res, core.Options{
		Inline:      cfg.Mode == ModeInline,
		ArrayLayout: cfg.ArrayLayout,
	})
	if err != nil {
		return nil, fmt.Errorf("optimize: %w", err)
	}
	c.Optimize = opt
	c.Prog = opt.Prog

	// Post-specialization cleanup, applied identically to both optimized
	// pipelines (never to ModeDirect, the unoptimized reference): small
	// specialized methods are absorbed into their callers (§6.2.1's "most
	// of the specialized methods are inlined"), then the peephole pass
	// sweeps up the debris.
	funcinline.Program(c.Prog, funcinline.DefaultOptions)
	if err := c.Prog.Verify(); err != nil {
		return nil, fmt.Errorf("function inlining broke the program: %w", err)
	}
	peephole.Program(c.Prog)
	if err := c.Prog.Verify(); err != nil {
		return nil, fmt.Errorf("peephole broke the program: %w", err)
	}
	return c, nil
}

// RunOptions configures one execution.
type RunOptions struct {
	Out      io.Writer
	Cache    *cachesim.Config
	Cost     *vm.CostModel
	MaxSteps uint64
}

// Run executes the compiled program and returns its dynamic counters.
func (c *Compiled) Run(opts RunOptions) (vm.Counters, error) {
	m := vm.New(c.Prog, vm.Options{
		Out:      opts.Out,
		Cache:    opts.Cache,
		Cost:     opts.Cost,
		MaxSteps: opts.MaxSteps,
	})
	return m.Run()
}

// CodeSize returns the executable program's instruction count (the
// Figure 15 metric).
func (c *Compiled) CodeSize() int { return c.Prog.CodeSize() }
