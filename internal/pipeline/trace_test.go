package pipeline

import (
	"testing"

	"objinline/internal/trace"
)

const traceTestSrc = `
class Cell { v; def init(v) { self.v = v; } }
class Box { c; def init(c) { self.c = c; } }
func main() {
  var b = new Box(new Cell(7));
  print(b.c.v);
}
`

func TestCompileRecordsPhases(t *testing.T) {
	sink := &trace.Sink{}
	c, err := Compile("t.icc", traceTestSrc, Config{Mode: ModeInline, Trace: sink})
	if err != nil {
		t.Fatal(err)
	}
	want := []trace.Phase{
		trace.PhaseParse, trace.PhaseCheck, trace.PhaseLower,
		trace.PhaseAnalysis, trace.PhaseOptimize,
		trace.PhaseFuncInline, trace.PhasePeephole,
	}
	evs := sink.Events()
	if len(evs) != len(want) {
		t.Fatalf("got %d events %v, want %d", len(evs), evs, len(want))
	}
	for i, p := range want {
		if evs[i].Phase != p {
			t.Errorf("event[%d] = %s, want %s", i, evs[i].Phase, p)
		}
	}
	counters := func(i int) map[string]int64 {
		m := make(map[string]int64)
		for _, c := range evs[i].Counters {
			m[c.Name] = c.Value
		}
		return m
	}
	if c := counters(3); c["method-contours"] == 0 || c["instr-evals"] == 0 {
		t.Errorf("analysis phase counters missing: %v", evs[3].Counters)
	}
	if c := counters(4); c["inlined"] == 0 {
		t.Errorf("optimize phase did not report inlined fields: %v", evs[4].Counters)
	}

	// The run phase lands on the compilation's sink.
	if _, err := c.Run(RunOptions{}); err != nil {
		t.Fatal(err)
	}
	evs = sink.Events()
	last := evs[len(evs)-1]
	if last.Phase != trace.PhaseRun {
		t.Fatalf("run did not record a run phase: %v", evs)
	}
	rc := make(map[string]int64)
	for _, c := range last.Counters {
		rc[c.Name] = c.Value
	}
	if rc["instructions"] == 0 || rc["cycles"] == 0 {
		t.Errorf("run phase counters missing: %v", last.Counters)
	}
}

func TestDirectModeRecordsFrontEndPhasesOnly(t *testing.T) {
	sink := &trace.Sink{}
	if _, err := Compile("t.icc", traceTestSrc, Config{Mode: ModeDirect, Trace: sink}); err != nil {
		t.Fatal(err)
	}
	evs := sink.Events()
	if len(evs) != 3 || evs[2].Phase != trace.PhaseLower {
		t.Errorf("direct mode phases = %v, want parse/check/lower", evs)
	}
}

// TestNilTraceSinkAddsNoAllocsToCompile asserts the disabled-tracing
// contract: the span operations Compile performs on a nil sink — every
// Start/Counter/End it would issue — allocate nothing, so an untraced
// compilation pays zero for the instrumentation.
func TestNilTraceSinkAddsNoAllocsToCompile(t *testing.T) {
	var tr *trace.Sink
	allocs := testing.AllocsPerRun(500, func() {
		sp := tr.Start(trace.PhaseParse)
		sp.End()
		sp = tr.Start(trace.PhaseCheck)
		sp.End()
		sp = tr.Start(trace.PhaseLower)
		sp.Counter("instrs", 1)
		sp.End()
		sp = tr.Start(trace.PhaseAnalysis)
		sp.End()
		sp = tr.Start(trace.PhaseOptimize)
		sp.Counter("attempts", 1)
		sp.Counter("clones", 1)
		sp.Counter("class-versions", 1)
		sp.Counter("inlined", 1)
		sp.Counter("rejected", 1)
		sp.End()
		sp = tr.Start(trace.PhaseFuncInline)
		sp.Counter("instrs", 1)
		sp.End()
		sp = tr.Start(trace.PhasePeephole)
		sp.Counter("instrs", 1)
		sp.End()
	})
	if allocs != 0 {
		t.Errorf("nil-sink compile span sequence allocates %v allocs/op, want 0", allocs)
	}
}

// BenchmarkCompile compares a traced against an untraced compilation; the
// allocation numbers make the nil-sink overhead visible.
func BenchmarkCompile(b *testing.B) {
	b.Run("nil-sink", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Compile("t.icc", traceTestSrc, Config{Mode: ModeInline}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("traced", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Compile("t.icc", traceTestSrc, Config{Mode: ModeInline, Trace: &trace.Sink{}}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
